// pbc — the PhoneBit artifact compiler (the workstation half of Fig. 2).
//
// Compiles a model into a ready-to-run .pba artifact: the layer graph with
// BN-folded packed weights PLUS the compiled ExecutionPlan (kernel
// selections, fusion rewrites, activation-slot table, exact memory peaks),
// so the phone-side engine loads and runs with zero re-planning.
//
//   pbc compile --model <zoo name> [-o out.pba] [--shrink N] [--seed S]
//               [--classes C] [--no-fuse-conv-pool]
//       Builds a deterministic synthetic checkpoint of the named zoo
//       architecture, converts + compiles it, writes the artifact.
//   pbc compile --pbm model.pbm --input NxHxWxC [-o out.pba] [...]
//       Compiles a converted .pbm model for the given 8-bit input shape.
//   pbc dump <file.pba>
//       Prints the section table, network summary and full plan dump.
//   pbc selfcheck [--model <zoo name>] [...]
//       Compile → save → load → run both plans on the same input and
//       verify bit-exactness; exit 0 on success (the ctest smoke target).
//   pbc serve-check [--model <zoo name>] [--seed S]
//       Serving-robustness smoke: compile two artifact versions, serve a
//       deterministic workload (overload burst, mid-run hot-swap, seeded
//       fault injection) through serve::ModelServer at two different real
//       worker counts, and verify the accounting is bit-identical and the
//       Ok outputs bit-exact; exit 0 on success (the ctest smoke target).
//   pbc cascade-check [--model <zoo name>] [--seed S]
//       Model-cascade smoke (DESIGN.md §13): compile a detector +
//       classifier pair, serve a deterministic trace through a 2-stage
//       ModelServer cascade at two real worker counts, and verify the
//       per-stage walks are bit-identical, both gate classes fire, and
//       later stages reuse the request's packed input planes.
//   pbc compile-fleet --model <zoo name> [--profiles sd855,sd660,...]
//       [-o base] [...]
//       The fleet batch mode: compile the model once, validate + package it
//       per device profile, emitting <base>.<profile>.pba per device with
//       the target profile recorded in the artifact.
//   pbc fleet-check [--model <zoo name>] [--seed S]
//       Fleet-placement smoke: compile one artifact per profile, serve a
//       deterministic trace (steady traffic + overload burst + seeded
//       faults) through serve::FleetServer at two different real worker
//       counts, and verify placement/accounting (including the per-shard
//       assignment histogram) is bit-identical and Ok outputs bit-exact.
//   pbc compress-stats --model <zoo name> [--redundant] [...]
//       Prints the per-layer weight-compression table (DESIGN.md §12):
//       dictionary rows, exact duplicates, delta footprint and the
//       raw/encoded ratio for every binary conv. --redundant synthesizes
//       the clustered checkpoint trained binary nets exhibit; without it a
//       random checkpoint shows the incompressible baseline.
//
// compile/selfcheck accept --compress off|lossless|auto (default off):
// lossless compresses v4 artifact weight storage, auto additionally lets
// the roofline select the partial-popcount reuse kernels.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/phonebit.hpp"
#include "datasets/synthetic.hpp"
#include "models/zoo.hpp"
#include "oclsim/device_profile.hpp"
#include "serve/fleet.hpp"
#include "serve/model_server.hpp"

namespace {

using namespace phonebit;

struct Args {
  std::string mode;
  std::string model = "quicknet";
  std::string pbm;
  std::string out = "model.pba";
  std::string file;  // dump target
  Shape input{};
  bool have_input = false;
  int shrink = 0;
  std::uint64_t seed = 42;
  std::optional<std::int64_t> classes;  // engaged only by --classes
  bool fuse_conv_pool = true;
  std::vector<std::string> profiles;  // --profiles a,b,c
  core::WeightCompress compress = core::WeightCompress::kOff;
  bool redundant = false;  // synthesize a clustered (compressible) checkpoint
};

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  pbc compile --model <quicknet|alexnet|yolov2-tiny|vgg16>\n"
      "              [-o out.pba] [--shrink N] [--seed S]\n"
      "              [--classes C (quicknet only)] [--no-fuse-conv-pool]\n"
      "              [--compress off|lossless|auto] [--redundant]\n"
      "  pbc compile --pbm model.pbm --input NxHxWxC [-o out.pba]\n"
      "  pbc dump <file.pba>\n"
      "  pbc selfcheck [--model <name>] [--shrink N] [--seed S]\n"
      "                [--compress off|lossless|auto] [--redundant]\n"
      "  pbc serve-check [--model <name>] [--shrink N] [--seed S]\n"
      "  pbc cascade-check [--model <name>] [--shrink N] [--seed S]\n"
      "  pbc compile-fleet --model <name> [--profiles sd855,sd660,...]\n"
      "                    [-o base] [--shrink N] [--seed S]\n"
      "  pbc fleet-check [--model <name>] [--shrink N] [--seed S]\n"
      "  pbc compress-stats --model <name> [--redundant] [--shrink N]\n"
      "                     [--seed S]\n");
  return 2;
}

/// Splits a comma-separated --profiles value ("sd855,sd660").
std::vector<std::string> parse_profiles(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(*p);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool parse_shape(const char* s, Shape& out) {
  long long n, h, w, c;
  if (std::sscanf(s, "%lldx%lldx%lldx%lld", &n, &h, &w, &c) != 4) return false;
  out = Shape{n, h, w, c};
  return n > 0 && h > 0 && w > 0 && c > 0;
}

bool parse(int argc, char** argv, Args& a) {
  if (argc < 2) return false;
  a.mode = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--model") {
      const char* v = value();
      if (v == nullptr) return false;
      a.model = v;
    } else if (flag == "--pbm") {
      const char* v = value();
      if (v == nullptr) return false;
      a.pbm = v;
    } else if (flag == "-o" || flag == "--out") {
      const char* v = value();
      if (v == nullptr) return false;
      a.out = v;
    } else if (flag == "--input") {
      const char* v = value();
      if (v == nullptr || !parse_shape(v, a.input)) return false;
      a.have_input = true;
    } else if (flag == "--shrink") {
      const char* v = value();
      if (v == nullptr) return false;
      a.shrink = std::atoi(v);
    } else if (flag == "--seed") {
      const char* v = value();
      if (v == nullptr) return false;
      a.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (flag == "--classes") {
      const char* v = value();
      if (v == nullptr) return false;
      a.classes = std::atoll(v);
    } else if (flag == "--no-fuse-conv-pool") {
      a.fuse_conv_pool = false;
    } else if (flag == "--compress") {
      const char* v = value();
      if (v == nullptr) return false;
      const std::string mode = v;
      if (mode == "off") {
        a.compress = core::WeightCompress::kOff;
      } else if (mode == "lossless") {
        a.compress = core::WeightCompress::kLossless;
      } else if (mode == "auto") {
        a.compress = core::WeightCompress::kAuto;
      } else {
        return false;
      }
    } else if (flag == "--redundant") {
      a.redundant = true;
    } else if (flag == "--profiles") {
      const char* v = value();
      if (v == nullptr) return false;
      a.profiles = parse_profiles(v);
      if (a.profiles.empty()) return false;
    } else if (a.mode == "dump" && a.file.empty() && flag[0] != '-') {
      a.file = flag;
    } else {
      return false;
    }
  }
  return true;
}

/// Builds (network, input shape) from the CLI arguments: either a synthetic
/// checkpoint of a zoo architecture or a converted .pbm from disk.
std::unique_ptr<core::Network> build_network(const Args& a, Shape& input) {
  if (!a.pbm.empty()) {
    PB_CHECK(a.have_input, "--pbm needs --input NxHxWxC (the .pbm format "
                           "does not record the input shape)");
    input = a.input;
    return core::load_model(a.pbm);
  }
  models::ZooOptions zoo;
  zoo.shrink_log2 = a.shrink;
  const auto spec = models::spec_by_name(a.model, zoo, a.classes);
  const auto trained = a.redundant
                           ? core::FloatModel::random_redundant(spec, a.seed)
                           : core::FloatModel::random(spec, a.seed);
  input = spec.input;
  return core::convert_to_phonebit(trained);
}

int compile_mode(const Args& a, bool selfcheck) {
  Shape input;
  auto net = build_network(a, input);

  auto device = std::make_shared<oclsim::Device>(
      oclsim::DeviceProfile::snapdragon855());
  core::EngineOptions opts;
  opts.fuse_conv_pool = a.fuse_conv_pool;
  opts.weight_compress = a.compress;
  core::Engine engine(device, opts);

  const core::BlobDesc desc{core::BlobKind::kU8, input};
  const core::ExecutionPlan plan = net->compile(engine, desc);
  artifact::save(*net, plan, a.out);

  std::printf("compiled '%s' -> %s\n", net->name().c_str(), a.out.c_str());
  std::printf("  input %s, %zu plan steps, %lld param bytes\n",
              desc.str().c_str(), plan.steps().size(),
              static_cast<long long>(net->param_bytes()));
  std::printf("  activation slab %lld B, scratch peak %lld B\n",
              static_cast<long long>(plan.slab_bytes()),
              static_cast<long long>(plan.peak_scratch_bytes()));
  if (!selfcheck) return 0;

  // selfcheck: the loaded artifact must replay the compiled plan
  // bit-exactly (outputs AND modeled time) with zero re-selection.
  const artifact::LoadedArtifact loaded = engine.load_artifact(a.out);
  const U8Tensor image = datasets::random_image(input, a.seed + 1);
  auto s1 = engine.create_session();
  auto s2 = engine.create_session();
  const auto fresh = plan.run(s1, core::Blob{image});
  const auto replay = loaded.plan.run(s2, core::Blob{image});
  if (s2.stats().variant_selections != 0) {
    std::fprintf(stderr, "selfcheck: loaded plan re-selected variants\n");
    return 1;
  }
  const auto* fo = std::get_if<FloatTensor>(&fresh.output);
  const auto* ro = std::get_if<FloatTensor>(&replay.output);
  if (fo != nullptr && ro != nullptr) {
    if (!allclose(*fo, *ro, 0.0f)) {
      std::fprintf(stderr, "selfcheck: loaded forward diverged\n");
      return 1;
    }
  } else if (!(std::get<bitpack::PackedTensor>(fresh.output) ==
               std::get<bitpack::PackedTensor>(replay.output))) {
    std::fprintf(stderr, "selfcheck: loaded packed output diverged\n");
    return 1;
  }
  if (fresh.modeled_ms != replay.modeled_ms) {
    std::fprintf(stderr, "selfcheck: modeled time drifted (%f vs %f)\n",
                 fresh.modeled_ms, replay.modeled_ms);
    return 1;
  }
  std::remove(a.out.c_str());
  std::printf("selfcheck: ok (save -> load -> run bit-exact, "
              "zero re-selection)\n");
  return 0;
}

/// True when the two forward outputs are bit-identical.
bool outputs_bitexact(const core::ForwardResult& x,
                      const core::ForwardResult& y) {
  const auto* xf = std::get_if<FloatTensor>(&x.output);
  const auto* yf = std::get_if<FloatTensor>(&y.output);
  if ((xf != nullptr) != (yf != nullptr)) return false;
  if (xf != nullptr) return allclose(*xf, *yf, 0.0f);
  return std::get<bitpack::PackedTensor>(x.output) ==
         std::get<bitpack::PackedTensor>(y.output);
}

int serve_check_mode(const Args& a) {
  auto device = std::make_shared<oclsim::Device>(
      oclsim::DeviceProfile::snapdragon855());
  core::Engine engine(device);

  // Two artifact versions of the same architecture (different seeded
  // checkpoints) — v2 hot-swaps in mid-trace.
  models::ZooOptions zoo;
  zoo.shrink_log2 = a.shrink;
  const auto spec = models::spec_by_name(a.model, zoo, a.classes);
  const std::string v1_path = a.out + ".serve_check_v1";
  const std::string v2_path = a.out + ".serve_check_v2";
  for (int v = 1; v <= 2; ++v) {
    auto net = core::convert_to_phonebit(core::FloatModel::random(
        spec, a.seed + static_cast<std::uint64_t>(v)));
    const core::ExecutionPlan plan = net->compile(
        engine, core::BlobDesc{core::BlobKind::kU8, spec.input});
    artifact::save(*net, plan, v == 1 ? v1_path : v2_path);
  }
  auto cleanup = [&v1_path, &v2_path] {
    std::remove(v1_path.c_str());
    std::remove(v2_path.c_str());
  };

  // A deterministic trace that exercises the whole control plane: steady
  // traffic, an overload burst past the queue watermark, a mid-run
  // hot-swap, and seeded transient faults + latency spikes.
  auto make_workload = [&a, &spec] {
    std::vector<serve::Request> w;
    auto push = [&w, &a, &spec](std::uint64_t seed, double at) {
      serve::Request r;
      r.model = a.model;
      r.input = core::Blob{datasets::random_image(spec.input, a.seed + seed)};
      r.arrival_ms = at;
      w.push_back(std::move(r));
    };
    for (int i = 0; i < 60; ++i) push(100 + i, 0.9 * i);
    for (int i = 0; i < 24; ++i) push(500 + i, 20.0);  // the burst
    return w;
  };
  const std::vector<serve::SwapEvent> swaps{
      serve::SwapEvent{27.0, a.model, v2_path}};
  serve::FaultPlan faults;
  faults.seed = a.seed * 2654435761u + 1;
  faults.transient_rate = 0.1;
  faults.spike_rate = 0.05;
  faults.spike_ms = 2.0;

  auto serve_once = [&](int exec_workers) {
    serve::ServerConfig cfg;
    cfg.exec_workers = exec_workers;
    cfg.lanes = 4;
    cfg.queue_limit = 6;
    cfg.max_retries = 2;
    cfg.retry_backoff_ms = 0.5;
    serve::ModelServer server(engine, cfg, faults, "serve-check");
    server.load_model(a.model, v1_path);
    return server.run(make_workload(), swaps);
  };

  // The robustness contract: the decision sequence is a pure function of
  // (workload, config, faults) — real execution parallelism must change
  // NOTHING, and every Ok output must be bit-exact across worker counts.
  const serve::ServerSummary s2 = serve_once(2);
  const serve::ServerSummary s4 = serve_once(4);
  if (s2.ok + s2.shed + s2.deadline_exceeded + s2.failed != s2.requests) {
    std::fprintf(stderr, "serve-check: lost requests in the accounting\n");
    cleanup();
    return 1;
  }
  if (s2.ok != s4.ok || s2.shed != s4.shed ||
      s2.deadline_exceeded != s4.deadline_exceeded ||
      s2.failed != s4.failed || s2.retries != s4.retries ||
      s2.max_queue_depth != s4.max_queue_depth) {
    std::fprintf(stderr,
                 "serve-check: accounting drifted across worker counts\n");
    cleanup();
    return 1;
  }
  for (std::size_t i = 0; i < s2.results.size(); ++i) {
    const auto& r2 = s2.results[i];
    const auto& r4 = s4.results[i];
    if (r2.status.code != r4.status.code ||
        r2.plan_version != r4.plan_version ||
        r2.latency_ms != r4.latency_ms) {
      std::fprintf(stderr, "serve-check: request %zu verdict drifted\n", i);
      cleanup();
      return 1;
    }
    if (r2.status.ok() && !outputs_bitexact(r2.result, r4.result)) {
      std::fprintf(stderr, "serve-check: request %zu output drifted\n", i);
      cleanup();
      return 1;
    }
  }
  if (s2.swaps != 1 || s2.shed == 0 || s2.retries == 0) {
    std::fprintf(stderr,
                 "serve-check: trace failed to exercise the control plane "
                 "(swaps %d, shed %d, retries %d)\n",
                 s2.swaps, s2.shed, s2.retries);
    cleanup();
    return 1;
  }
  cleanup();
  std::printf("serve-check: ok — %d requests: %d ok / %d shed / %d deadline "
              "/ %d failed, %d retries, 1 hot-swap; bit-identical at 2 and 4 "
              "workers\n",
              s2.requests, s2.ok, s2.shed, s2.deadline_exceeded, s2.failed,
              s2.retries);
  return 0;
}

/// cascade-check: the model-cascade smoke (DESIGN.md §13). Compiles a
/// detector + classifier pair of seeded checkpoints, runs a deterministic
/// trace through a 2-stage ModelServer cascade at two real worker counts,
/// and verifies (a) the accounting and per-stage walks are bit-identical,
/// (b) both terminal Ok classes appear (gate-stopped AND full runs), and
/// (c) later stages actually reuse the request's packed input planes.
int cascade_check_mode(const Args& a) {
  auto device = std::make_shared<oclsim::Device>(
      oclsim::DeviceProfile::snapdragon855());
  core::Engine engine(device);

  models::ZooOptions zoo;
  zoo.shrink_log2 = a.shrink;
  const auto spec = models::spec_by_name(a.model, zoo, a.classes);
  const std::string det_path = a.out + ".cascade_check_det";
  const std::string cls_path = a.out + ".cascade_check_cls";
  for (int v = 1; v <= 2; ++v) {
    auto net = core::convert_to_phonebit(core::FloatModel::random(
        spec, a.seed + static_cast<std::uint64_t>(v)));
    const core::ExecutionPlan plan = net->compile(
        engine, core::BlobDesc{core::BlobKind::kU8, spec.input});
    artifact::save(*net, plan, v == 1 ? det_path : cls_path);
  }
  auto cleanup = [&det_path, &cls_path] {
    std::remove(det_path.c_str());
    std::remove(cls_path.c_str());
  };

  // Gate threshold at the MEDIAN max-logit over a sample of the actual
  // workload inputs: about half the trace gates out at the detector, half
  // advances — both verdict classes fire whatever the seed.
  const auto det_art = engine.load_artifact_shared(det_path);
  auto probe_session = engine.create_session();
  std::vector<float> peaks;
  for (std::uint64_t i = 0; i < 9; ++i) {
    const core::ForwardResult probe = det_art->plan.run(
        probe_session,
        core::Blob{datasets::random_image(spec.input, a.seed + 100 + i)});
    const FloatTensor& pf = probe.float_output();
    float peak = pf.data()[0];
    for (std::int64_t k = 1; k < pf.elems(); ++k) {
      peak = std::max(peak, pf.data()[k]);
    }
    peaks.push_back(peak);
  }
  std::nth_element(peaks.begin(), peaks.begin() + peaks.size() / 2,
                   peaks.end());
  const float threshold = peaks[peaks.size() / 2];

  serve::CascadeSpec cascade;
  cascade.name = "cascade-check";
  serve::StageGate gate;
  gate.kind = serve::StageGate::Kind::kMaxAtLeast;
  gate.threshold = threshold;
  cascade.stages.push_back(serve::CascadeStageSpec{"det", gate});
  cascade.stages.push_back(serve::CascadeStageSpec{"cls", {}});

  auto make_workload = [&a, &spec] {
    std::vector<serve::Request> w;
    auto push = [&w, &a, &spec](std::uint64_t seed, double at) {
      serve::Request r;
      r.input = core::Blob{datasets::random_image(spec.input, a.seed + seed)};
      r.arrival_ms = at;
      w.push_back(std::move(r));
    };
    for (int i = 0; i < 48; ++i) push(100 + i, 1.2 * i);
    for (int i = 0; i < 16; ++i) push(500 + i, 18.0);  // the burst
    return w;
  };
  serve::FaultPlan faults;
  faults.seed = a.seed * 2654435761u + 9;
  faults.transient_rate = 0.08;
  faults.spike_rate = 0.05;
  faults.spike_ms = 1.5;

  auto serve_once = [&](int exec_workers) {
    serve::ServerConfig cfg;
    cfg.exec_workers = exec_workers;
    cfg.lanes = 4;
    cfg.queue_limit = 6;
    cfg.max_retries = 2;
    cfg.retry_backoff_ms = 0.5;
    serve::ModelServer server(engine, cfg, faults, "cascade-check");
    server.load_model("det", det_path);
    server.load_model("cls", cls_path);
    return server.run_cascade(cascade, make_workload());
  };

  const serve::CascadeSummary s2 = serve_once(2);
  const serve::CascadeSummary s4 = serve_once(4);
  if (s2.ok + s2.shed + s2.deadline_exceeded + s2.failed != s2.requests ||
      s2.ok != s2.gated_out + s2.full_runs) {
    std::fprintf(stderr, "cascade-check: lost requests in the accounting\n");
    cleanup();
    return 1;
  }
  if (s2.ok != s4.ok || s2.shed != s4.shed ||
      s2.deadline_exceeded != s4.deadline_exceeded ||
      s2.failed != s4.failed || s2.retries != s4.retries ||
      s2.gated_out != s4.gated_out || s2.full_runs != s4.full_runs) {
    std::fprintf(stderr,
                 "cascade-check: accounting drifted across worker counts\n");
    cleanup();
    return 1;
  }
  for (std::size_t i = 0; i < s2.results.size(); ++i) {
    const auto& r2 = s2.results[i];
    const auto& r4 = s4.results[i];
    if (r2.status.code != r4.status.code || r2.gated_out != r4.gated_out ||
        r2.latency_ms != r4.latency_ms ||
        r2.stages.size() != r4.stages.size()) {
      std::fprintf(stderr, "cascade-check: request %zu verdict drifted\n", i);
      cleanup();
      return 1;
    }
    for (std::size_t k = 0; k < r2.stages.size(); ++k) {
      if (r2.stages[k].attempts != r4.stages[k].attempts ||
          r2.stages[k].retries != r4.stages[k].retries ||
          r2.stages[k].reused_planes != r4.stages[k].reused_planes ||
          r2.stages[k].latency_ms != r4.stages[k].latency_ms) {
        std::fprintf(stderr, "cascade-check: request %zu stage %zu drifted\n",
                     i, k);
        cleanup();
        return 1;
      }
    }
    if (r2.status.ok() && !outputs_bitexact(r2.result, r4.result)) {
      std::fprintf(stderr, "cascade-check: request %zu output drifted\n", i);
      cleanup();
      return 1;
    }
  }
  const int reused = s2.stages.size() == 2 ? s2.stages[1].reused_planes : 0;
  if (s2.gated_out == 0 || s2.full_runs == 0 || reused == 0) {
    std::fprintf(stderr,
                 "cascade-check: trace failed to exercise the cascade "
                 "(gated %d, full %d, plane reuse %d)\n",
                 s2.gated_out, s2.full_runs, reused);
    cleanup();
    return 1;
  }
  cleanup();
  std::printf(
      "cascade-check: ok — %d requests through det->cls: %d gated out / %d "
      "full runs / %d shed / %d deadline / %d failed, %d retries, %d "
      "plane-reuse stage runs; bit-identical at 2 and 4 workers\n",
      s2.requests, s2.gated_out, s2.full_runs, s2.shed, s2.deadline_exceeded,
      s2.failed, s2.retries, reused);
  return 0;
}

/// compile-fleet: one validated .pba per device profile from one model.
int compile_fleet_mode(const Args& a) {
  Shape input;
  auto net = build_network(a, input);
  core::EngineOptions opts;
  opts.fuse_conv_pool = a.fuse_conv_pool;
  const core::BlobDesc desc{core::BlobKind::kU8, input};

  const std::vector<std::string> profiles =
      a.profiles.empty() ? oclsim::known_profile_names() : a.profiles;
  std::string base = a.out;
  if (base.size() >= 4 && base.compare(base.size() - 4, 4, ".pba") == 0) {
    base.resize(base.size() - 4);
  }
  for (const std::string& key : profiles) {
    const std::string path = base + "." + key + ".pba";
    // compile_for_profile validates the byte-exact RAM fit BEFORE writing —
    // an over-budget (model, profile) pair fails the whole batch loudly
    // instead of shipping an artifact the shard would reject at load.
    const core::ExecutionPlan plan =
        artifact::compile_for_profile(*net, opts, desc, key, path);
    const oclsim::DeviceProfile profile = oclsim::profile_by_name(key);
    std::printf("compiled '%s' for %s (%s, %lld MB) -> %s\n",
                net->name().c_str(), key.c_str(), profile.gpu_name.c_str(),
                static_cast<long long>(profile.ram_mb), path.c_str());
    std::printf("  %lld param B + %lld slab B + %lld scratch B\n",
                static_cast<long long>(net->param_bytes()),
                static_cast<long long>(plan.slab_bytes()),
                static_cast<long long>(plan.peak_scratch_bytes()));
  }
  return 0;
}

int fleet_check_mode(const Args& a) {
  // A flagship, a mid-tier and an entry device by default: distinct speeds
  // AND distinct RAM budgets, so placement has real decisions to make.
  const std::vector<std::string> profiles =
      a.profiles.empty() ? std::vector<std::string>{"sd855", "sd660", "sd625"}
                         : a.profiles;

  models::ZooOptions zoo;
  zoo.shrink_log2 = a.shrink;
  const auto spec = models::spec_by_name(a.model, zoo, a.classes);
  auto net = core::convert_to_phonebit(core::FloatModel::random(spec, a.seed));
  const core::BlobDesc desc{core::BlobKind::kU8, spec.input};

  std::vector<std::string> paths;
  for (const std::string& key : profiles) {
    const std::string path = a.out + ".fleet_check." + key + ".pba";
    artifact::compile_for_profile(*net, core::EngineOptions{}, desc, key,
                                  path);
    paths.push_back(path);
  }
  auto cleanup = [&paths] {
    for (const std::string& p : paths) std::remove(p.c_str());
  };

  // Steady traffic tight enough to queue every shard, then a burst that
  // overflows every admission queue — spillover first, shed at the rim.
  auto make_workload = [&a, &spec] {
    std::vector<serve::Request> w;
    auto push = [&w, &a, &spec](std::uint64_t seed, double at) {
      serve::Request r;
      r.model = a.model;
      r.input = core::Blob{datasets::random_image(spec.input, a.seed + seed)};
      r.arrival_ms = at;
      w.push_back(std::move(r));
    };
    for (int i = 0; i < 60; ++i) push(100 + i, 0.9 * i);
    for (int i = 0; i < 40; ++i) push(500 + i, 15.0);  // the burst
    return w;
  };
  serve::FaultPlan faults;
  faults.seed = a.seed * 2654435761u + 7;
  faults.transient_rate = 0.1;
  faults.spike_rate = 0.05;
  faults.spike_ms = 2.0;

  auto serve_once = [&](int exec_workers) {
    serve::FleetConfig cfg;
    for (const std::string& key : profiles) {
      cfg.shards.push_back(serve::ShardSpec{std::string{}, key, 2});
    }
    cfg.exec_workers = exec_workers;
    cfg.lanes_per_shard = 2;
    cfg.queue_limit = 3;
    cfg.max_retries = 2;
    cfg.retry_backoff_ms = 0.5;
    serve::FleetServer fleet(cfg, faults, "fleet-check");
    fleet.load_model(a.model, paths);
    return fleet.run(make_workload());
  };

  // The fleet contract: placement is a pure function of (workload, config,
  // faults) — real execution parallelism must change NOTHING, including
  // which shard every request landed on.
  const serve::FleetSummary f2 = serve_once(2);
  const serve::FleetSummary f4 = serve_once(4);
  if (f2.ok + f2.shed + f2.deadline_exceeded + f2.failed != f2.requests) {
    std::fprintf(stderr, "fleet-check: lost requests in the accounting\n");
    cleanup();
    return 1;
  }
  if (f2.ok != f4.ok || f2.shed != f4.shed ||
      f2.deadline_exceeded != f4.deadline_exceeded ||
      f2.failed != f4.failed || f2.retries != f4.retries ||
      f2.spillovers != f4.spillovers || f2.assignment != f4.assignment) {
    std::fprintf(stderr,
                 "fleet-check: accounting drifted across worker counts\n");
    cleanup();
    return 1;
  }
  for (std::size_t i = 0; i < f2.results.size(); ++i) {
    const auto& r2 = f2.results[i];
    const auto& r4 = f4.results[i];
    if (r2.status.code != r4.status.code || r2.shard != r4.shard ||
        r2.spillovers != r4.spillovers || r2.latency_ms != r4.latency_ms) {
      std::fprintf(stderr, "fleet-check: request %zu verdict drifted\n", i);
      cleanup();
      return 1;
    }
    if (r2.status.ok() && !outputs_bitexact(r2.result, r4.result)) {
      std::fprintf(stderr, "fleet-check: request %zu output drifted\n", i);
      cleanup();
      return 1;
    }
  }
  int shards_used = 0;
  for (const int n : f2.assignment) shards_used += n > 0 ? 1 : 0;
  if (f2.spillovers == 0 || f2.shed == 0 || f2.retries == 0 ||
      shards_used < 2) {
    std::fprintf(stderr,
                 "fleet-check: trace failed to exercise placement "
                 "(spillovers %d, shed %d, retries %d, shards used %d)\n",
                 f2.spillovers, f2.shed, f2.retries, shards_used);
    cleanup();
    return 1;
  }
  cleanup();
  std::printf("fleet-check: ok — %d requests over %zu profiles: %d ok / %d "
              "shed / %d deadline / %d failed, %d retries, %d spillovers; "
              "assignment [",
              f2.requests, profiles.size(), f2.ok, f2.shed,
              f2.deadline_exceeded, f2.failed, f2.retries, f2.spillovers);
  for (std::size_t i = 0; i < f2.assignment.size(); ++i) {
    std::printf("%s%s=%d", i ? " " : "", profiles[i].c_str(),
                f2.assignment[i]);
  }
  std::printf("] bit-identical at 2 and 4 workers\n");
  return 0;
}

/// compress-stats: the per-layer weight-compression table (DESIGN.md §12).
int compress_stats_mode(const Args& a) {
  Shape input;
  auto net = build_network(a, input);
  std::printf("%-10s %8s %8s %8s %8s %8s %8s %10s %10s %7s\n", "layer",
              "filters", "k_words", "unique", "dups", "dfilt", "dwords",
              "raw_B", "enc_B", "ratio");
  std::int64_t raw_total = 0, enc_total = 0;
  for (const auto& layer : net->layers()) {
    const auto* conv = dynamic_cast<const core::BinaryConv2d*>(layer.get());
    if (conv == nullptr) continue;
    const bitpack::CompressStats& cs = conv->compressed_bank().stats();
    // Storage never grows: an incompressible bank ships raw (mode 0).
    const std::int64_t enc = std::min(cs.encoded_bytes, cs.raw_bytes);
    raw_total += cs.raw_bytes;
    enc_total += enc;
    std::printf("%-10s %8lld %8lld %8lld %8lld %8lld %8lld %10lld %10lld "
                "%6.2fx\n",
                conv->name().c_str(), static_cast<long long>(cs.filters),
                static_cast<long long>(cs.k_words),
                static_cast<long long>(cs.unique_rows),
                static_cast<long long>(cs.exact_dups),
                static_cast<long long>(cs.delta_filters),
                static_cast<long long>(cs.delta_words),
                static_cast<long long>(cs.raw_bytes),
                static_cast<long long>(enc),
                static_cast<double>(cs.raw_bytes) /
                    static_cast<double>(enc));
  }
  if (raw_total == 0) {
    std::printf("(no binary conv layers)\n");
    return 0;
  }
  std::printf("total: %lld -> %lld weight bytes (%.2fx)\n",
              static_cast<long long>(raw_total),
              static_cast<long long>(enc_total),
              static_cast<double>(raw_total) /
                  static_cast<double>(enc_total));
  return 0;
}

int dump_mode(const Args& a) {
  if (a.file.empty()) return usage();
  for (const auto& sec : artifact::section_table(a.file)) {
    std::printf("section %-8s @%-8lld %lld bytes\n",
                artifact::section_name(sec.tag),
                static_cast<long long>(sec.body_offset),
                static_cast<long long>(sec.body_bytes));
  }
  const artifact::LoadedArtifact art = artifact::load(a.file);
  std::printf("network '%s': %zu layers, %lld param bytes\n",
              art.network->name().c_str(), art.network->size(),
              static_cast<long long>(art.network->param_bytes()));
  std::printf("target profile: %s\n",
              art.target_profile.empty() ? "(none)"
                                         : art.target_profile.c_str());
  // Per-layer weight-compression summary for compressing artifacts (the
  // banks here are the loader-adopted ones — nothing re-clusters).
  if (art.plan.options().weight_compress != core::WeightCompress::kOff) {
    for (const auto& layer : art.network->layers()) {
      const auto* conv =
          dynamic_cast<const core::BinaryConv2d*>(layer.get());
      if (conv == nullptr) continue;
      const bitpack::CompressStats& cs = conv->compressed_bank().stats();
      const std::int64_t enc = std::min(cs.encoded_bytes, cs.raw_bytes);
      std::printf("weights %-10s %lld unique rows / %lld filters, "
                  "%lld -> %lld B (%.2fx)\n",
                  conv->name().c_str(),
                  static_cast<long long>(cs.unique_rows),
                  static_cast<long long>(cs.filters),
                  static_cast<long long>(cs.raw_bytes),
                  static_cast<long long>(enc),
                  static_cast<double>(cs.raw_bytes) /
                      static_cast<double>(enc));
    }
  }
  std::printf("%s", art.plan.dump().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, a)) return usage();
  try {
    if (a.mode == "compile") return compile_mode(a, /*selfcheck=*/false);
    if (a.mode == "selfcheck") return compile_mode(a, /*selfcheck=*/true);
    if (a.mode == "serve-check") return serve_check_mode(a);
    if (a.mode == "cascade-check") return cascade_check_mode(a);
    if (a.mode == "compile-fleet") return compile_fleet_mode(a);
    if (a.mode == "fleet-check") return fleet_check_mode(a);
    if (a.mode == "compress-stats") return compress_stats_mode(a);
    if (a.mode == "dump") return dump_mode(a);
  } catch (const phonebit::Error& e) {
    std::fprintf(stderr, "pbc: %s\n", e.what());
    return 1;
  }
  return usage();
}
