// pbc — the PhoneBit artifact compiler (the workstation half of Fig. 2).
//
// Compiles a model into a ready-to-run .pba artifact: the layer graph with
// BN-folded packed weights PLUS the compiled ExecutionPlan (kernel
// selections, fusion rewrites, activation-slot table, exact memory peaks),
// so the phone-side engine loads and runs with zero re-planning.
//
//   pbc compile --model <zoo name> [-o out.pba] [--shrink N] [--seed S]
//               [--classes C] [--no-fuse-conv-pool]
//       Builds a deterministic synthetic checkpoint of the named zoo
//       architecture, converts + compiles it, writes the artifact.
//   pbc compile --pbm model.pbm --input NxHxWxC [-o out.pba] [...]
//       Compiles a converted .pbm model for the given 8-bit input shape.
//   pbc dump <file.pba>
//       Prints the section table, network summary and full plan dump.
//   pbc selfcheck [--model <zoo name>] [...]
//       Compile → save → load → run both plans on the same input and
//       verify bit-exactness; exit 0 on success (the ctest smoke target).
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "core/phonebit.hpp"
#include "datasets/synthetic.hpp"
#include "models/zoo.hpp"

namespace {

using namespace phonebit;

struct Args {
  std::string mode;
  std::string model = "quicknet";
  std::string pbm;
  std::string out = "model.pba";
  std::string file;  // dump target
  Shape input{};
  bool have_input = false;
  int shrink = 0;
  std::uint64_t seed = 42;
  std::optional<std::int64_t> classes;  // engaged only by --classes
  bool fuse_conv_pool = true;
};

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  pbc compile --model <quicknet|alexnet|yolov2-tiny|vgg16>\n"
      "              [-o out.pba] [--shrink N] [--seed S]\n"
      "              [--classes C (quicknet only)] [--no-fuse-conv-pool]\n"
      "  pbc compile --pbm model.pbm --input NxHxWxC [-o out.pba]\n"
      "  pbc dump <file.pba>\n"
      "  pbc selfcheck [--model <name>] [--shrink N] [--seed S]\n");
  return 2;
}

bool parse_shape(const char* s, Shape& out) {
  long long n, h, w, c;
  if (std::sscanf(s, "%lldx%lldx%lldx%lld", &n, &h, &w, &c) != 4) return false;
  out = Shape{n, h, w, c};
  return n > 0 && h > 0 && w > 0 && c > 0;
}

bool parse(int argc, char** argv, Args& a) {
  if (argc < 2) return false;
  a.mode = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--model") {
      const char* v = value();
      if (v == nullptr) return false;
      a.model = v;
    } else if (flag == "--pbm") {
      const char* v = value();
      if (v == nullptr) return false;
      a.pbm = v;
    } else if (flag == "-o" || flag == "--out") {
      const char* v = value();
      if (v == nullptr) return false;
      a.out = v;
    } else if (flag == "--input") {
      const char* v = value();
      if (v == nullptr || !parse_shape(v, a.input)) return false;
      a.have_input = true;
    } else if (flag == "--shrink") {
      const char* v = value();
      if (v == nullptr) return false;
      a.shrink = std::atoi(v);
    } else if (flag == "--seed") {
      const char* v = value();
      if (v == nullptr) return false;
      a.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (flag == "--classes") {
      const char* v = value();
      if (v == nullptr) return false;
      a.classes = std::atoll(v);
    } else if (flag == "--no-fuse-conv-pool") {
      a.fuse_conv_pool = false;
    } else if (a.mode == "dump" && a.file.empty() && flag[0] != '-') {
      a.file = flag;
    } else {
      return false;
    }
  }
  return true;
}

/// Builds (network, input shape) from the CLI arguments: either a synthetic
/// checkpoint of a zoo architecture or a converted .pbm from disk.
std::unique_ptr<core::Network> build_network(const Args& a, Shape& input) {
  if (!a.pbm.empty()) {
    PB_CHECK(a.have_input, "--pbm needs --input NxHxWxC (the .pbm format "
                           "does not record the input shape)");
    input = a.input;
    return core::load_model(a.pbm);
  }
  models::ZooOptions zoo;
  zoo.shrink_log2 = a.shrink;
  const auto spec = models::spec_by_name(a.model, zoo, a.classes);
  const auto trained = core::FloatModel::random(spec, a.seed);
  input = spec.input;
  return core::convert_to_phonebit(trained);
}

int compile_mode(const Args& a, bool selfcheck) {
  Shape input;
  auto net = build_network(a, input);

  auto device = std::make_shared<oclsim::Device>(
      oclsim::DeviceProfile::snapdragon855());
  core::EngineOptions opts;
  opts.fuse_conv_pool = a.fuse_conv_pool;
  core::Engine engine(device, opts);

  const core::BlobDesc desc{core::BlobKind::kU8, input};
  const core::ExecutionPlan plan = net->compile(engine, desc);
  artifact::save(*net, plan, a.out);

  std::printf("compiled '%s' -> %s\n", net->name().c_str(), a.out.c_str());
  std::printf("  input %s, %zu plan steps, %lld param bytes\n",
              desc.str().c_str(), plan.steps().size(),
              static_cast<long long>(net->param_bytes()));
  std::printf("  activation slab %lld B, scratch peak %lld B\n",
              static_cast<long long>(plan.slab_bytes()),
              static_cast<long long>(plan.peak_scratch_bytes()));
  if (!selfcheck) return 0;

  // selfcheck: the loaded artifact must replay the compiled plan
  // bit-exactly (outputs AND modeled time) with zero re-selection.
  const artifact::LoadedArtifact loaded = engine.load_artifact(a.out);
  const U8Tensor image = datasets::random_image(input, a.seed + 1);
  auto s1 = engine.create_session();
  auto s2 = engine.create_session();
  const auto fresh = plan.run(s1, core::Blob{image});
  const auto replay = loaded.plan.run(s2, core::Blob{image});
  if (s2.stats().variant_selections != 0) {
    std::fprintf(stderr, "selfcheck: loaded plan re-selected variants\n");
    return 1;
  }
  const auto* fo = std::get_if<FloatTensor>(&fresh.output);
  const auto* ro = std::get_if<FloatTensor>(&replay.output);
  if (fo != nullptr && ro != nullptr) {
    if (!allclose(*fo, *ro, 0.0f)) {
      std::fprintf(stderr, "selfcheck: loaded forward diverged\n");
      return 1;
    }
  } else if (!(std::get<bitpack::PackedTensor>(fresh.output) ==
               std::get<bitpack::PackedTensor>(replay.output))) {
    std::fprintf(stderr, "selfcheck: loaded packed output diverged\n");
    return 1;
  }
  if (fresh.modeled_ms != replay.modeled_ms) {
    std::fprintf(stderr, "selfcheck: modeled time drifted (%f vs %f)\n",
                 fresh.modeled_ms, replay.modeled_ms);
    return 1;
  }
  std::remove(a.out.c_str());
  std::printf("selfcheck: ok (save -> load -> run bit-exact, "
              "zero re-selection)\n");
  return 0;
}

int dump_mode(const Args& a) {
  if (a.file.empty()) return usage();
  for (const auto& sec : artifact::section_table(a.file)) {
    std::printf("section %-8s @%-8lld %lld bytes\n",
                artifact::section_name(sec.tag),
                static_cast<long long>(sec.body_offset),
                static_cast<long long>(sec.body_bytes));
  }
  const artifact::LoadedArtifact art = artifact::load(a.file);
  std::printf("network '%s': %zu layers, %lld param bytes\n",
              art.network->name().c_str(), art.network->size(),
              static_cast<long long>(art.network->param_bytes()));
  std::printf("%s", art.plan.dump().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, a)) return usage();
  try {
    if (a.mode == "compile") return compile_mode(a, /*selfcheck=*/false);
    if (a.mode == "selfcheck") return compile_mode(a, /*selfcheck=*/true);
    if (a.mode == "dump") return dump_mode(a);
  } catch (const phonebit::Error& e) {
    std::fprintf(stderr, "pbc: %s\n", e.what());
    return 1;
  }
  return usage();
}
