// Ablation — workload optimization (§VI-B, Fig. 4): one work item computing
// 8 filters and packing their byte in private memory, vs a separate packing
// kernel. Also sweeps the channel threshold behaviour: above 256 input
// channels the engine falls back to separate packing on its own.
#include "bench/ablation_util.hpp"

namespace {

using namespace phonebit;

void BM_IntegratedPacking(benchmark::State& state) {
  static const auto fx = bench::ConvFixture::make(26, 128, 128);
  core::EngineOptions opts;
  opts.integrate_packing = true;
  bench::run_ablation(state, fx, opts);
}
BENCHMARK(BM_IntegratedPacking)->Unit(benchmark::kMillisecond);

void BM_SeparatePacking(benchmark::State& state) {
  static const auto fx = bench::ConvFixture::make(26, 128, 128);
  core::EngineOptions opts;
  opts.integrate_packing = false;
  bench::run_ablation(state, fx, opts);
}
BENCHMARK(BM_SeparatePacking)->Unit(benchmark::kMillisecond);

// Channel sweep across the 256-channel private-memory threshold: the engine
// integrates below, separates above (both correct; the launch count in the
// modeled time reflects the switch).
void BM_ChannelThreshold(benchmark::State& state) {
  const auto fx = bench::ConvFixture::make(
      13, state.range(0), 128);
  core::EngineOptions opts;  // default threshold 256
  bench::run_ablation(state, fx, opts);
}
BENCHMARK(BM_ChannelThreshold)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(320)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
