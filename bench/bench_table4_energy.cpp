// Table IV — power (mW) and energy efficiency (FPS/W) for YOLOv2-Tiny on
// the Snapdragon 820, across the full framework roster. Power comes from
// the occupancy-based model of src/energy (the Trepn substitute).
//
// PHONEBIT_BENCH_FAST=1 shrinks the network for a quick smoke run.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "energy/power_model.hpp"

namespace {

using namespace phonebit;

struct Row {
  std::string name;
  double watts_mw = 0.0;
  double fps_per_watt = 0.0;
  bool failed = false;
};

Row run_framework(const baselines::FloatFramework& fw, oclsim::Device& device,
                  const core::FloatModel& model, const U8Tensor& image) {
  Row r;
  r.name = fw.name();
  try {
    oclsim::Device fresh(device.profile());
    // Re-run through a scratch queue to collect this framework's events.
    const auto result = fw.run(fresh, model, image);
    // run() uses its own internal queue; recompute power from per-layer
    // aggregated costs via a replay queue.
    std::vector<oclsim::KernelEvent> events;
    for (const auto& lr : result.layers) {
      oclsim::KernelEvent ev;
      ev.unit = fw.traits().unit;
      ev.cost = lr.cost;
      ev.modeled_ms = lr.modeled_ms;
      events.push_back(ev);
    }
    const auto power =
        energy::estimate_power(events, device.profile(), result.modeled_ms);
    r.watts_mw = power.avg_power_mw;
    r.fps_per_watt = power.fps_per_watt;
  } catch (const Error&) {
    r.failed = true;
  }
  return r;
}

}  // namespace

int main() {
  const int shrink = phonebit::bench::bench_shrink();
  if (shrink != 0) {
    std::printf("[PHONEBIT_BENCH_FAST: network shrunk by 2^%d]\n", shrink);
  }

  const auto profile = oclsim::DeviceProfile::snapdragon820();
  auto device = std::make_shared<oclsim::Device>(profile);
  const auto float_model =
      core::FloatModel::random(models::yolov2_tiny({shrink, false}), 21);
  const auto bnn_model =
      core::FloatModel::random(models::yolov2_tiny({shrink, true}), 21);
  const U8Tensor image =
      datasets::random_image(float_model.spec.input, 22);

  std::vector<Row> rows;
  rows.push_back(run_framework(baselines::FloatFramework::cnndroid_cpu(),
                               *device, float_model, image));
  rows.push_back(run_framework(baselines::FloatFramework::cnndroid_gpu(),
                               *device, float_model, image));
  rows.push_back(run_framework(baselines::FloatFramework::tflite_cpu(),
                               *device, float_model, image));
  rows.push_back(run_framework(baselines::FloatFramework::tflite_gpu(),
                               *device, float_model, image));
  rows.push_back(run_framework(baselines::FloatFramework::tflite_quant(),
                               *device, float_model, image));

  // PhoneBit row from the engine's own profiling events.
  {
    auto net = core::convert_to_phonebit(bnn_model);
    core::Engine engine(device);
    auto session = engine.create_session();
    auto ctx = session.context();
    const auto result = net->forward(ctx, core::Blob{image});
    const auto power = energy::estimate_power(session.queue().events(),
                                              profile, result.modeled_ms);
    rows.push_back(
        Row{"PhoneBit", power.avg_power_mw, power.fps_per_watt, false});
  }

  std::printf("\n=== Table IV: ENERGY PER FRAME, YOLOv2-Tiny @ Snapdragon 820 "
              "===\n");
  std::printf("%-14s %12s %18s\n", "Framework", "Watts(mW)",
              "Efficiency(FPS/W)");
  for (const auto& r : rows) {
    if (r.failed) {
      std::printf("%-14s %12s %18s\n", r.name.c_str(), "-", "-");
    } else {
      std::printf("%-14s %12.1f %18.2f\n", r.name.c_str(), r.watts_mw,
                  r.fps_per_watt);
    }
  }
  std::printf("\npaper Table IV:  CNNdroid-CPU 914 / 0.02   CNNdroid-GPU 573 "
              "/ 1.18\n                 TFLite-CPU 626 / 2.39   TFLite-GPU "
              "540 / 3.97   TFLite-Quant 452 / 4.40\n                 "
              "PhoneBit 225.67 / 105.26\n");
  std::printf("shape checks: PhoneBit draws the least power and its FPS/W "
              "leads by >20x.\n");
  return 0;
}
