// Ablation — bit-packing granularity (§V-A.2): the same 256-channel binary
// conv processed with 8-bit .. 1024-bit vectors. Wider packing must be
// monotonically faster in modeled device time, saturating at the top (the
// ulong16 limit the paper uses).
#include "bench/ablation_util.hpp"

namespace {

using namespace phonebit;

void BM_PackWidth(benchmark::State& state) {
  static const auto fx = bench::ConvFixture::make(26, 256, 256);
  core::EngineOptions opts;
  opts.auto_pack_width = false;
  opts.fixed_pack_width =
      static_cast<bitpack::PackWidth>(state.range(0));
  bench::run_ablation(state, fx, opts);
}
BENCHMARK(BM_PackWidth)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_AutoPackSelection(benchmark::State& state) {
  static const auto fx = bench::ConvFixture::make(26, 256, 256);
  core::EngineOptions opts;  // auto selection (the paper's strategy)
  bench::run_ablation(state, fx, opts);
}
BENCHMARK(BM_AutoPackSelection)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
