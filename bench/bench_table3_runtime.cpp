// Table III — average runtime (ms) of AlexNet / YOLOv2-Tiny / VGG16 under
// CNNdroid (CPU, GPU), TensorFlow Lite (CPU, GPU, CPU-quantized) and
// PhoneBit, on the simulated Snapdragon 820 and 855.
//
// Every cell is a real inference on the simulated device (kernels actually
// execute; times come from the roofline device model). The paper's OOM and
// CRASH cells emerge from the framework gates, not from model-name checks.
//
// PHONEBIT_BENCH_FAST=1 shrinks the networks for a quick smoke run.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"

namespace {

using namespace phonebit;
using bench::Cell;

struct PaperRow {
  const char* name;
  // SD820: cnndroid cpu/gpu, tflite cpu/gpu/quant, phonebit
  const char* p820[6];
  const char* p855[6];
};

constexpr PaperRow kPaper[] = {
    {"AlexNet",
     {"8243", "766", "143", "CRASH", "103", "22.9"},
     {"5621", "369", "87", "CRASH", "24", "9.8"}},
    {"YOLOv2 Tiny",
     {"51313", "1483", "669", "468", "503", "42.1"},
     {"23144", "845", "306", "430", "88", "22.6"}},
    {"VGG16",
     {"OOM", "OOM", "2607", "CRASH", "1907", "152.3"},
     {"OOM", "OOM", "932", "CRASH", "252", "73.8"}},
};

struct NetUnderTest {
  const char* label;
  core::NetworkSpec float_spec;
  core::NetworkSpec bnn_spec;
};

std::vector<Cell> run_device(const oclsim::DeviceProfile& profile,
                             const NetUnderTest& net) {
  auto device = std::make_shared<oclsim::Device>(profile);
  const U8Tensor image = datasets::random_image(net.float_spec.input, 7);

  // Instantiating full VGG16 float weights is ~0.6 GB; do it once per
  // device and release eagerly via scoping.
  std::vector<Cell> cells;
  {
    const auto float_model = core::FloatModel::random(net.float_spec, 11);
    cells.push_back(bench::run_baseline(
        baselines::FloatFramework::cnndroid_cpu(), *device, float_model, image));
    cells.push_back(bench::run_baseline(
        baselines::FloatFramework::cnndroid_gpu(), *device, float_model, image));
    cells.push_back(bench::run_baseline(
        baselines::FloatFramework::tflite_cpu(), *device, float_model, image));
    cells.push_back(bench::run_baseline(
        baselines::FloatFramework::tflite_gpu(), *device, float_model, image));
    cells.push_back(bench::run_baseline(
        baselines::FloatFramework::tflite_quant(), *device, float_model, image));
  }
  {
    const auto bnn_model = core::FloatModel::random(net.bnn_spec, 11);
    auto pb_net = core::convert_to_phonebit(bnn_model);
    core::Engine engine(device);
    cells.push_back(bench::run_phonebit(engine, *pb_net, image));
  }
  return cells;
}

void print_row(const char* name, const std::vector<Cell>& c820,
               const std::vector<Cell>& c855, const PaperRow& paper) {
  auto print_half = [](const std::vector<Cell>& cells, const char* const* ref) {
    for (int i = 0; i < 6; ++i) {
      std::printf("%9s", cells[static_cast<std::size_t>(i)].str().c_str());
    }
    std::printf("  | paper:");
    for (int i = 0; i < 6; ++i) std::printf("%8s", ref[i]);
    std::printf("\n");
  };
  std::printf("%-14s SD820 ", name);
  print_half(c820, paper.p820);
  std::printf("%-14s SD855 ", name);
  print_half(c855, paper.p855);
}

}  // namespace

int main() {
  const int shrink = bench::bench_shrink();
  if (shrink != 0) {
    std::printf("[PHONEBIT_BENCH_FAST: networks shrunk by 2^%d — absolute "
                "numbers are not comparable to the paper]\n",
                shrink);
  }

  const NetUnderTest nets[] = {
      {"AlexNet", models::alexnet({shrink, false}),
       models::alexnet({shrink, true})},
      {"YOLOv2 Tiny", models::yolov2_tiny({shrink, false}),
       models::yolov2_tiny({shrink, true})},
      {"VGG16", models::vgg16({shrink, false}), models::vgg16({shrink, true})},
  };

  std::printf("\n=== Table III: AVERAGE RUNTIME (ms), modeled device time "
              "===\n");
  std::printf("%-20s %9s%9s%9s%9s%9s%9s\n", "", "CNNdr-CPU", "CNNdr-GPU",
              "TFL-CPU", "TFL-GPU", "TFL-Quant", "PhoneBit");

  for (int i = 0; i < 3; ++i) {
    const auto c820 =
        run_device(oclsim::DeviceProfile::snapdragon820(), nets[i]);
    const auto c855 =
        run_device(oclsim::DeviceProfile::snapdragon855(), nets[i]);
    print_row(nets[i].label, c820, c855, kPaper[i]);
  }

  std::printf(
      "\nShape checks (the paper's qualitative claims):\n"
      "  - PhoneBit is the fastest cell in every row\n"
      "  - CNNdroid OOMs on VGG16 (both modes, both devices)\n"
      "  - TFLite GPU crashes on AlexNet (LRN) and VGG16 (buffer cap)\n"
      "  - SD855 beats SD820 in every framework\n");
  return 0;
}
