// Table I — mobile device configurations. Prints the paper's table from the
// simulated device profiles (the substitution substrate of DESIGN.md §2) and
// micro-benchmarks the simulated dispatch path with google-benchmark.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "oclsim/runtime.hpp"

namespace {

using namespace phonebit::oclsim;

void print_table1() {
  std::printf("\n=== Table I: MOBILE DEVICES ===\n");
  std::printf("%-10s %-16s %-8s %-12s %-16s %-12s\n", "Device", "SOC",
              "Memory", "OS", "OpenCL Version", "ALUs in GPU");
  for (const auto& p :
       {DeviceProfile::snapdragon820(), DeviceProfile::snapdragon855()}) {
    std::printf("%-10s %-16s %lldGB     %-12s %-16s %d\n",
                p.device_name.c_str(), p.soc_name.c_str(),
                static_cast<long long>(p.ram_mb / 1024), p.os_version.c_str(),
                p.opencl_version.c_str(), p.total_alus());
  }
  std::printf("(paper Table I: Xiaomi 5 / SD820 / 3GB / Android 7.0 / 2.0 / "
              "256;  Xiaomi 9 / SD855 / 8GB / Android 9.0 / 2.0 / 384)\n\n");
}

void BM_KernelDispatch(benchmark::State& state) {
  Device dev(DeviceProfile::snapdragon855());
  CommandQueue q(dev, ExecUnit::kGpu);
  KernelCost cost;
  cost.scalar_ops = 1e3;
  for (auto _ : state) {
    q.enqueue("noop", NDRange{static_cast<std::int64_t>(state.range(0)), 1, 1},
              cost, [](const WorkItem&) {});
    q.reset_events();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KernelDispatch)->Arg(1)->Arg(1024)->Arg(65536);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
