// Figure 5 — per-layer acceleration of PhoneBit over CNNdroid (GPU) for
// YOLOv2-Tiny's conv1..conv9 on the Snapdragon 855. The paper's bars:
// conv1 23x, conv2 38x, conv3 62x, conv4 34x, conv5 43x, conv6 60x,
// conv7 42x, conv8 41x, conv9 3x. We check ordering and magnitude, not the
// exact Adreno-specific bar heights (see EXPERIMENTS.md).
//
// PHONEBIT_BENCH_FAST=1 shrinks the network for a quick smoke run.
#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.hpp"

namespace {

using namespace phonebit;

constexpr double kPaperBars[9] = {23, 38, 62, 34, 43, 60, 42, 41, 3};

}  // namespace

int main() {
  const int shrink = bench::bench_shrink();
  if (shrink != 0) {
    std::printf("[PHONEBIT_BENCH_FAST: network shrunk by 2^%d]\n", shrink);
  }

  auto device = std::make_shared<oclsim::Device>(
      oclsim::DeviceProfile::snapdragon855());
  const auto float_model =
      core::FloatModel::random(models::yolov2_tiny({shrink, false}), 31);
  const auto bnn_model =
      core::FloatModel::random(models::yolov2_tiny({shrink, true}), 31);
  const U8Tensor image = datasets::random_image(float_model.spec.input, 32);

  // PhoneBit per-conv-layer modeled times. Fig. 5 attributes time per conv
  // layer, so the conv→pool fusion is off here — a fused conv+pool step
  // could not be split back into the figure's per-layer rows.
  auto net = core::convert_to_phonebit(bnn_model);
  core::EngineOptions opts;
  opts.fuse_conv_pool = false;
  core::Engine engine(device, opts);
  auto session = engine.create_session();
  auto ctx = session.context();
  const auto result = net->forward(ctx, core::Blob{image});
  std::map<std::string, double> phonebit_ms;
  for (const auto& r : result.report) phonebit_ms[r.name] = r.modeled_ms;

  // CNNdroid-GPU per-conv-layer modeled times.
  const auto baseline = baselines::FloatFramework::cnndroid_gpu().run(
      *device, float_model, image);
  std::map<std::string, double> cnndroid_ms;
  for (const auto& r : baseline.layers) cnndroid_ms[r.name] = r.modeled_ms;

  std::printf("\n=== Figure 5: PER-LAYER ACCELERATION, YOLOv2-Tiny @ "
              "Snapdragon 855 ===\n");
  std::printf("%-8s %14s %14s %12s %10s\n", "layer", "CNNdroid (ms)",
              "PhoneBit (ms)", "speedup", "paper");
  for (int i = 1; i <= 9; ++i) {
    const std::string name = "conv" + std::to_string(i);
    const double base = cnndroid_ms[name];
    const double ours = phonebit_ms[name];
    const double speedup = ours > 0 ? base / ours : 0.0;
    std::printf("%-8s %14.3f %14.3f %9.1fx %9.0fx", name.c_str(), base, ours,
                speedup, kPaperBars[i - 1]);
    // ASCII bar, 2x per character.
    std::printf("  |");
    for (int b = 0; b < static_cast<int>(speedup / 2.0) && b < 60; ++b) {
      std::printf("#");
    }
    std::printf("\n");
  }
  std::printf(
      "\nshape checks: conv9 (full precision, float4 dot) gains least;\n"
      "conv1 (bit-plane 8x overhead) gains less than the middle binary\n"
      "layers; middle layers gain an order of magnitude or more.\n");
  return 0;
}
