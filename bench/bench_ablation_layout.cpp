// Ablation — data layout (§V-A.1): NHWC (channel-innermost, coalescible
// packed rows) vs the Caffe/Torch NCHW default, which pays the uncoalesced
// gather penalty in the memory model.
#include "bench/ablation_util.hpp"

namespace {

using namespace phonebit;

void BM_LayoutNHWC(benchmark::State& state) {
  static const auto fx = bench::ConvFixture::make(52, 64, 64);
  core::EngineOptions opts;
  opts.layout = Layout::kNHWC;
  bench::run_ablation(state, fx, opts);
}
BENCHMARK(BM_LayoutNHWC)->Unit(benchmark::kMillisecond);

void BM_LayoutNCHW(benchmark::State& state) {
  static const auto fx = bench::ConvFixture::make(52, 64, 64);
  core::EngineOptions opts;
  opts.layout = Layout::kNCHW;
  bench::run_ablation(state, fx, opts);
}
BENCHMARK(BM_LayoutNCHW)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
