// Ablation — layer integration (§V-B): fused conv+BN+binarize in one kernel
// vs the three-kernel pre-integration pipeline with materialized
// intermediates. Fusion must cut both kernel launches and modeled time.
#include "bench/ablation_util.hpp"

namespace {

using namespace phonebit;

void BM_Fused(benchmark::State& state) {
  static const auto fx = bench::ConvFixture::make(26, 128, 128);
  core::EngineOptions opts;
  opts.fuse_bn_binarize = true;
  bench::run_ablation(state, fx, opts);
}
BENCHMARK(BM_Fused)->Unit(benchmark::kMillisecond);

void BM_Unfused(benchmark::State& state) {
  static const auto fx = bench::ConvFixture::make(26, 128, 128);
  core::EngineOptions opts;
  opts.fuse_bn_binarize = false;  // conv -> BN -> binarize -> pack
  bench::run_ablation(state, fx, opts);
}
BENCHMARK(BM_Unfused)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
