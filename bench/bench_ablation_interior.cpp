// Ablation — interior/border specialization and output-x tiling (DESIGN.md
// §4): the interior output rectangle runs a branch-free row-fused window
// (one strided xor+popcount per window) while borders resolve padding per
// filter row. Turning the split off restores the pre-optimization per-tap
// loop; the tile sweep sizes the column run each work item owns.
#include "bench/ablation_util.hpp"

namespace {

using namespace phonebit;

void BM_InteriorSplit(benchmark::State& state) {
  static const auto fx = bench::ConvFixture::make(26, 256, 256);
  core::EngineOptions opts;
  opts.interior_split = true;  // the engine default
  bench::run_ablation(state, fx, opts);
}
BENCHMARK(BM_InteriorSplit)->Unit(benchmark::kMillisecond);

void BM_PerTapLoop(benchmark::State& state) {
  static const auto fx = bench::ConvFixture::make(26, 256, 256);
  core::EngineOptions opts;
  opts.interior_split = false;  // pre-optimization inner loop
  bench::run_ablation(state, fx, opts);
}
BENCHMARK(BM_PerTapLoop)->Unit(benchmark::kMillisecond);

void BM_TileWidth(benchmark::State& state) {
  static const auto fx = bench::ConvFixture::make(26, 256, 256);
  core::EngineOptions opts;
  opts.conv_tile_ow = state.range(0);  // 0 = whole output row per item
  bench::run_ablation(state, fx, opts);
}
BENCHMARK(BM_TileWidth)->Arg(0)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
