// Table II — model size (MB) and precision (%), full precision vs BNN.
//
// Sizes are exact, computed from the real architectures and the PhoneBit
// format's accounting. The precision columns cannot be reproduced without
// CIFAR10/VOC training runs; the paper's numbers are printed as reference
// and the accuracy-gap *shape* is reproduced by the from-scratch trainer on
// the synthetic pattern task (see DESIGN.md §2 and examples/accuracy_gap).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/phonebit.hpp"
#include "datasets/synthetic.hpp"
#include "models/zoo.hpp"
#include "train/trainer.hpp"

namespace {

using namespace phonebit;

struct PaperRow {
  const char* name;
  double full_mb, bnn_mb, full_acc, bnn_acc;
};

constexpr PaperRow kPaper[] = {
    {"AlexNet", 249.5, 16.3, 89.0, 87.2},
    {"YOLOv2 Tiny", 63.4, 2.4, 57.1, 51.7},
    {"VGG16", 553.4, 32.1, 92.5, 87.8},
};

void print_table2() {
  std::printf("\n=== Table II: MODEL SIZE (MB) AND PRECISION ===\n");
  std::printf("%-14s | %12s %12s | %12s %12s\n", "Model", "full (ours)",
              "BNN (ours)", "full (paper)", "BNN (paper)");

  const core::NetworkSpec specs_float[] = {
      models::alexnet({0, false}), models::yolov2_tiny({0, false}),
      models::vgg16({0, false})};
  const core::NetworkSpec specs_bnn[] = {models::alexnet({0, true}),
                                         models::yolov2_tiny({0, true}),
                                         models::vgg16({0, true})};
  for (int i = 0; i < 3; ++i) {
    const double full_mb =
        static_cast<double>(specs_float[i].float_param_bytes()) / 1e6;
    const auto model = core::FloatModel::random(specs_bnn[i], 1);
    const auto net = core::convert_to_phonebit(model);
    const double bnn_mb = static_cast<double>(net->param_bytes()) / 1e6;
    std::printf("%-14s | %10.1fMB %10.2fMB | %10.1fMB %10.1fMB\n",
                kPaper[i].name, full_mb, bnn_mb, kPaper[i].full_mb,
                kPaper[i].bnn_mb);
  }
  std::printf(
      "(AlexNet BNN deviates from the paper's 16.3MB: its binarization\n"
      " convention for the fc layers is unspecified — see EXPERIMENTS.md)\n");

  std::printf("\naccuracy-gap shape (synthetic pattern task, from-scratch "
              "trainer):\n");
  // 10 classes / 250 samples: hard enough that binarization costs points.
  const auto train_set = datasets::PatternDataset::make(250, 10, 10, 123);
  const auto test_set = datasets::PatternDataset::make(200, 10, 10, 456);
  train::TrainConfig cfg;
  cfg.epochs = 25;
  const auto fp = train::train_mlp(train_set, test_set, cfg);
  cfg.binarize = true;
  const auto bin = train::train_mlp(train_set, test_set, cfg);
  std::printf("  full precision: %5.1f%%   binarized: %5.1f%%   gap: %.1f "
              "points\n",
              100.0 * fp.test_accuracy, 100.0 * bin.test_accuracy,
              100.0 * (fp.test_accuracy - bin.test_accuracy));
  std::printf("  (paper gaps: AlexNet 1.8, YOLOv2-Tiny 5.4, VGG16 4.7 "
              "points)\n\n");
}

void BM_ConvertYolo(benchmark::State& state) {
  const auto model =
      core::FloatModel::random(models::yolov2_tiny({2, true}), 2);
  for (auto _ : state) {
    auto net = core::convert_to_phonebit(model);
    benchmark::DoNotOptimize(net);
  }
}
BENCHMARK(BM_ConvertYolo)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
