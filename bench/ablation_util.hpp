// PhoneBit ablation benches — shared fixture.
//
// Each ablation toggles exactly one engine option on a representative
// middle-layer binary convolution (26x26, C channels, 3x3) and reports both
// real host execution time (google-benchmark's measurement) and the modeled
// device time on the simulated Snapdragon 855 (the `modeled_ms` counter).
#pragma once

#include <benchmark/benchmark.h>

#include <memory>

#include "bitpack/pack.hpp"
#include "common/rng.hpp"
#include "core/phonebit.hpp"

namespace phonebit::bench {

struct ConvFixture {
  bitpack::PackedTensor input;
  bitpack::PackedTensor weights;
  std::vector<core::BatchNormParams> bn;
  ConvGeometry geom;

  static ConvFixture make(std::int64_t hw, std::int64_t c_in,
                          std::int64_t c_out) {
    Rng rng(99);
    FloatTensor in(Shape{1, hw, hw, c_in}, Layout::kNHWC);
    FloatTensor w(Shape{c_out, 3, 3, c_in}, Layout::kNHWC);
    for (std::int64_t i = 0; i < in.elems(); ++i) in.data()[i] = rng.sign();
    for (std::int64_t i = 0; i < w.elems(); ++i) w.data()[i] = rng.sign();
    std::vector<core::BatchNormParams> bn;
    for (std::int64_t c = 0; c < c_out; ++c) {
      bn.push_back({rng.uniform(0.3f, 1.5f) * rng.sign(), rng.normal(),
                    rng.normal() * 3.0f, rng.uniform(0.5f, 2.0f)});
    }
    ConvGeometry g;
    g.pad_h = g.pad_w = 1;
    return ConvFixture{bitpack::pack_signs(in), bitpack::pack_filter_signs(w),
                       std::move(bn), g};
  }
};

/// Runs the conv once under `opts`; returns the modeled device ms.
inline double run_conv(const ConvFixture& fx, const core::EngineOptions& opts) {
  static auto device = std::make_shared<oclsim::Device>(
      oclsim::DeviceProfile::snapdragon855());
  core::Engine engine(device, opts);
  auto session = engine.create_session();
  auto ctx = session.context();
  core::BinaryConv2d conv("conv", fx.weights, fx.bn, {}, fx.geom);
  conv.forward(ctx, core::Blob{fx.input});
  return session.queue().total_modeled_ms();
}

/// Benchmark loop shared by every ablation binary.
inline void run_ablation(benchmark::State& state, const ConvFixture& fx,
                         const core::EngineOptions& opts) {
  double modeled = 0.0;
  for (auto _ : state) {
    modeled = run_conv(fx, opts);
    benchmark::DoNotOptimize(modeled);
  }
  state.counters["modeled_ms"] = modeled;
}

}  // namespace phonebit::bench
