// Ablation — branch-divergence avoidance (§VI-C): the Karnaugh-reduced
// branch-free Eqn 9 decision vs the divergent four-way Eqn 8 check, which
// masks half the wave on the simulated GPU.
#include "bench/ablation_util.hpp"

namespace {

using namespace phonebit;

void BM_BranchFreeEqn9(benchmark::State& state) {
  static const auto fx = bench::ConvFixture::make(26, 128, 128);
  core::EngineOptions opts;
  opts.branch_free_binarize = true;
  bench::run_ablation(state, fx, opts);
}
BENCHMARK(BM_BranchFreeEqn9)->Unit(benchmark::kMillisecond);

void BM_DivergentEqn8(benchmark::State& state) {
  static const auto fx = bench::ConvFixture::make(26, 128, 128);
  core::EngineOptions opts;
  opts.branch_free_binarize = false;
  bench::run_ablation(state, fx, opts);
}
BENCHMARK(BM_DivergentEqn8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
