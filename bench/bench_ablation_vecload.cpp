// Ablation — vectorized load/store (§VI-A.1): 128-bit bulk loads vs scalar
// accesses, which waste most of each memory transaction and add per-access
// instruction overhead.
#include "bench/ablation_util.hpp"

namespace {

using namespace phonebit;

void BM_VectorizedLoads(benchmark::State& state) {
  static const auto fx = bench::ConvFixture::make(26, 256, 256);
  core::EngineOptions opts;
  opts.vectorized_loads = true;
  bench::run_ablation(state, fx, opts);
}
BENCHMARK(BM_VectorizedLoads)->Unit(benchmark::kMillisecond);

void BM_ScalarLoads(benchmark::State& state) {
  static const auto fx = bench::ConvFixture::make(26, 256, 256);
  core::EngineOptions opts;
  opts.vectorized_loads = false;
  bench::run_ablation(state, fx, opts);
}
BENCHMARK(BM_ScalarLoads)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
