// Kernel micro-benchmarks — real host throughput of the primitive binary
// operations (xor+popcount spans at every granularity, packing, bit-plane
// splitting). These measure the actual C++ kernels google-benchmark style;
// the table benches measure the modeled phone numbers.
#include <benchmark/benchmark.h>

#include <vector>

#include "bitpack/binary_ops.hpp"
#include "bitpack/pack.hpp"
#include "common/rng.hpp"
#include "datasets/synthetic.hpp"

namespace {

using namespace phonebit;

std::vector<std::uint64_t> random_words(std::int64_t n) {
  Rng rng(5);
  std::vector<std::uint64_t> v(static_cast<std::size_t>(n));
  for (auto& w : v) w = rng();
  return v;
}

void BM_XorPopcount(benchmark::State& state) {
  const std::int64_t nwords = 4096;
  const auto a = random_words(nwords);
  const auto b = random_words(nwords);
  const auto pw = static_cast<bitpack::PackWidth>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bitpack::xor_popcount(a.data(), b.data(), nwords, pw));
  }
  state.SetBytesProcessed(state.iterations() * nwords * 8 * 2);
}
BENCHMARK(BM_XorPopcount)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024);

void BM_BinaryDot(benchmark::State& state) {
  const std::int64_t len = state.range(0);
  const std::int64_t nwords = ceil_div(len, 64);
  const auto a = random_words(nwords);
  const auto b = random_words(nwords);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bitpack::binary_dot(a.data(), b.data(), nwords, len));
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_BinaryDot)->Arg(256)->Arg(1024)->Arg(9216)->Arg(25088);

void BM_PackSigns(benchmark::State& state) {
  Rng rng(6);
  FloatTensor t(Shape{1, 32, 32, state.range(0)}, Layout::kNHWC);
  t.fill_random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitpack::pack_signs(t));
  }
  state.SetItemsProcessed(state.iterations() * t.elems());
}
BENCHMARK(BM_PackSigns)->Arg(64)->Arg(256)->Arg(1024);

void BM_BitPlaneSplit(benchmark::State& state) {
  const U8Tensor img = datasets::random_image(
      Shape{1, state.range(0), state.range(0), 3}, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitpack::split_bit_planes(img));
  }
  state.SetItemsProcessed(state.iterations() * img.elems());
}
BENCHMARK(BM_BitPlaneSplit)->Arg(32)->Arg(128)->Arg(416);

}  // namespace

BENCHMARK_MAIN();
