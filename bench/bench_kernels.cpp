// Kernel micro-benchmarks — real host throughput of the primitive binary
// operations and of the BinaryConv2d layer itself. Unlike the table benches
// (modeled phone numbers via google-benchmark), this binary uses its own
// timing harness so it can emit a machine-readable BENCH_kernels.json whose
// records are tracked in-repo as the perf baseline.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "bitpack/binary_ops.hpp"
#include "bitpack/pack.hpp"
#include "common/rng.hpp"
#include "core/phonebit.hpp"
#include "datasets/synthetic.hpp"
#include "serve/fleet.hpp"

namespace {

using namespace phonebit;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` wall time of fn(), after one warm-up call.
template <typename Fn>
double best_ms(int reps, Fn&& fn) {
  fn();
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_ms();
    fn();
    best = std::min(best, now_ms() - t0);
  }
  return best;
}

std::vector<std::uint64_t> random_words(std::int64_t n) {
  Rng rng(5);
  std::vector<std::uint64_t> v(static_cast<std::size_t>(n));
  for (auto& w : v) w = rng();
  return v;
}

void bench_xor_popcount(std::vector<bench::BenchRecord>& out) {
  const std::int64_t nwords = 4096;
  const auto a = random_words(nwords);
  const auto b = random_words(nwords);
  volatile std::int64_t sink = 0;
  for (const auto pw :
       {bitpack::PackWidth::k8, bitpack::PackWidth::k16, bitpack::PackWidth::k32,
        bitpack::PackWidth::k64, bitpack::PackWidth::k128,
        bitpack::PackWidth::k256, bitpack::PackWidth::k512,
        bitpack::PackWidth::k1024}) {
    const double ms = best_ms(20, [&] {
      std::int64_t total = 0;
      for (int i = 0; i < 64; ++i) {
        total += bitpack::xor_popcount(a.data(), b.data(), nwords, pw);
      }
      sink = total;
    });
    out.push_back({"xor_popcount",
                   "4096w/k" + std::to_string(bitpack::bits(pw)), ms, 0.0});
  }
  (void)sink;
}

void bench_binary_dot(std::vector<bench::BenchRecord>& out) {
  volatile std::int64_t sink = 0;
  for (const std::int64_t len : {256, 1024, 9216, 25088}) {
    const std::int64_t nwords = ceil_div(len, 64);
    const auto a = random_words(nwords);
    const auto b = random_words(nwords);
    const double ms = best_ms(20, [&] {
      std::int64_t total = 0;
      for (int i = 0; i < 4096; ++i) {
        total += bitpack::binary_dot(a.data(), b.data(), nwords, len);
      }
      sink = total;
    });
    out.push_back({"binary_dot", "len" + std::to_string(len), ms, 0.0});
  }
  (void)sink;
}

void bench_pack_signs(std::vector<bench::BenchRecord>& out) {
  for (const std::int64_t c : {64, 256, 1024}) {
    Rng rng(6);
    FloatTensor t(Shape{1, 32, 32, c}, Layout::kNHWC);
    t.fill_random(rng);
    const double ms = best_ms(10, [&] {
      const auto packed = bitpack::pack_signs(t);
      (void)packed;
    });
    out.push_back({"pack_signs", "32x32/c" + std::to_string(c), ms, 0.0});
  }
}

void bench_bit_plane_split(std::vector<bench::BenchRecord>& out) {
  for (const std::int64_t hw : {32, 128, 416}) {
    const U8Tensor img = datasets::random_image(Shape{1, hw, hw, 3}, 7);
    const double ms = best_ms(10, [&] {
      const auto planes = bitpack::split_bit_planes(img);
      (void)planes;
    });
    out.push_back({"split_bit_planes",
                   std::to_string(hw) + "x" + std::to_string(hw) + "/c3", ms,
                   0.0});
  }
}

struct ConvSpec {
  std::string tag;
  std::int64_t hw, c_in, c_out, k, stride, pad;
};

/// Times one BinaryConv2d layer: builds the engine once, then measures the
/// per-forward host kernel time (min over reps) and the modeled device time.
/// `redundant` overlays the filter-row redundancy trained binary nets show
/// (groups of 8 filters share a base; half exact copies, half sparse sign
/// flips) so the /compressed records measure a compressible bank — plain
/// random signs never cluster.
void bench_conv(const ConvSpec& spec, const core::EngineOptions& opts,
                const std::string& variant,
                std::vector<bench::BenchRecord>& out, bool redundant = false) {
  Rng rng(99);
  FloatTensor in(Shape{1, spec.hw, spec.hw, spec.c_in}, Layout::kNHWC);
  FloatTensor w(Shape{spec.c_out, spec.k, spec.k, spec.c_in}, Layout::kNHWC);
  for (std::int64_t i = 0; i < in.elems(); ++i) in.data()[i] = rng.sign();
  for (std::int64_t i = 0; i < w.elems(); ++i) w.data()[i] = rng.sign();
  if (redundant) {
    const std::int64_t fsize = spec.k * spec.k * spec.c_in;
    for (std::int64_t f = 0; f < spec.c_out; ++f) {
      const std::int64_t lane = f % 8;
      if (lane == 0) continue;
      std::memcpy(w.data() + f * fsize, w.data() + (f - lane) * fsize,
                  static_cast<std::size_t>(fsize) * sizeof(float));
      if (lane >= 4) {
        for (std::int64_t t = 0; t < std::max<std::int64_t>(1, fsize / 64);
             ++t) {
          const auto p = static_cast<std::int64_t>(
              rng.below(static_cast<std::uint64_t>(fsize)));
          w.data()[f * fsize + p] = -w.data()[f * fsize + p];
        }
      }
    }
  }
  std::vector<core::BatchNormParams> bn;
  for (std::int64_t c = 0; c < spec.c_out; ++c) {
    bn.push_back({rng.uniform(0.3f, 1.5f) * rng.sign(), rng.normal(),
                  rng.normal() * 3.0f, rng.uniform(0.5f, 2.0f)});
  }
  ConvGeometry g;
  g.kernel_h = g.kernel_w = spec.k;
  g.stride_h = g.stride_w = spec.stride;
  g.pad_h = g.pad_w = spec.pad;

  auto device = std::make_shared<oclsim::Device>(
      oclsim::DeviceProfile::snapdragon855());
  core::Engine engine(device, opts);
  auto session = engine.create_session();
  auto ctx = session.context();
  core::BinaryConv2d conv("bench", bitpack::pack_filter_signs(w), bn, {}, g);
  const core::Blob input{bitpack::pack_signs(in)};

  double modeled = 0.0;
  const double host = best_ms(15, [&] {
    session.reset_profile();
    conv.forward(ctx, input);
    modeled = session.queue().total_modeled_ms();
  });
  // total_host_ms would exclude the enqueue-side setup; report the full
  // forward wall time so host_ms reflects the real hot path.
  bench::BenchRecord rec{"bconv", spec.tag + "/" + variant, host, modeled};
  if (opts.weight_compress != core::WeightCompress::kOff) {
    const bitpack::CompressStats& cs = conv.compressed_bank().stats();
    rec.weights_bytes = std::min(cs.encoded_bytes, cs.raw_bytes);
    rec.weights_ratio = static_cast<double>(cs.raw_bytes) /
                        static_cast<double>(rec.weights_bytes);
  }
  out.push_back(std::move(rec));
}

/// Compiled conv(+pool) layer-chain records: the fused-geometry regression
/// gate for the plan-level conv→pool rewrite. `fused` runs the compiled
/// single-step rewrite (pool OR folded into the conv epilogue, pooled map
/// emitted directly); `unfused` keeps the separate pool step.
void bench_conv_pool(const ConvSpec& spec, std::vector<bench::BenchRecord>& out) {
  Rng rng(101);
  FloatTensor in(Shape{1, spec.hw, spec.hw, spec.c_in}, Layout::kNHWC);
  FloatTensor w(Shape{spec.c_out, spec.k, spec.k, spec.c_in}, Layout::kNHWC);
  for (std::int64_t i = 0; i < in.elems(); ++i) in.data()[i] = rng.sign();
  for (std::int64_t i = 0; i < w.elems(); ++i) w.data()[i] = rng.sign();
  std::vector<core::BatchNormParams> bn;
  for (std::int64_t c = 0; c < spec.c_out; ++c) {
    bn.push_back({rng.uniform(0.3f, 1.5f) * rng.sign(), rng.normal(),
                  rng.normal() * 3.0f, rng.uniform(0.5f, 2.0f)});
  }
  ConvGeometry g;
  g.kernel_h = g.kernel_w = spec.k;
  g.stride_h = g.stride_w = spec.stride;
  g.pad_h = g.pad_w = spec.pad;
  core::Network net("bench-conv-pool");
  net.emplace<core::BinaryConv2d>("conv", bitpack::pack_filter_signs(w), bn,
                                  std::vector<float>{}, g);
  net.emplace<core::MaxPool2d>("pool", core::PoolGeometry{2, 2, 0, false});

  auto device = std::make_shared<oclsim::Device>(
      oclsim::DeviceProfile::snapdragon855());
  const core::Blob input{bitpack::pack_signs(in)};
  const core::BlobDesc desc = core::describe_blob(input);

  for (const bool fuse : {true, false}) {
    core::EngineOptions opts;
    opts.fuse_conv_pool = fuse;
    // Pinned to the window schedule: this record gates the conv→pool
    // rewrite, which only applies to path-A convs — letting kAuto pick the
    // bit-GEMM path here would silently de-fuse the chain.
    opts.conv_path = core::ConvPathPreference::kRowFused;
    core::Engine engine(device, opts);
    const core::ExecutionPlan plan = net.compile(engine, desc);
    auto session = engine.create_session();
    double modeled = 0.0;
    const double host = best_ms(10, [&] {
      session.reset_profile();
      const auto result = plan.run(session, input);
      modeled = result.modeled_ms;
    });
    out.push_back({"bconv+pool",
                   spec.tag + "+p2s2/" + (fuse ? "fused" : "unfused"), host,
                   modeled});
  }
}

/// End-to-end modeled+host time of whole zoo models through the COMPILED
/// path (Network::compile + ExecutionPlan::run): the regression gate for
/// the plan subsystem itself. Modeled time is deterministic, so these
/// records are tracked in BENCH_kernels.json like the kernel records.
/// Each model runs twice: `compiled` under paper defaults (conv→pool
/// fusion + slot-backed borrowed-output forwards — the steady-state
/// serving configuration) and `unfused` with the conv→pool rewrite off,
/// so the fusion win stays visible in the tracked records.
void bench_model_e2e(std::vector<bench::BenchRecord>& out) {
  auto device = std::make_shared<oclsim::Device>(
      oclsim::DeviceProfile::snapdragon855());

  const auto run_model = [&](const std::string& tag,
                             const core::FloatModel& trained,
                             const U8Tensor& image) {
    auto net = core::convert_to_phonebit(trained);
    const core::Blob input{image};
    const core::BlobDesc desc = core::describe_blob(input);
    for (const bool fuse : {true, false}) {
      core::EngineOptions opts;
      opts.fuse_conv_pool = fuse;
      core::Engine engine(device, opts);
      const core::ExecutionPlan plan = net->compile(engine, desc);
      auto session = engine.create_session();
      core::RunOptions ro;
      ro.borrow_output = true;  // steady-state zero-allocation serving mode
      double modeled = 0.0;
      const double host = best_ms(15, [&] {
        session.reset_profile();
        const auto result = plan.run(session, input, ro);
        modeled = result.modeled_ms;
      });
      out.push_back({"model_e2e", tag + (fuse ? "/compiled" : "/unfused"),
                     host, modeled});
    }
    // Batched forward (N=4 images through ONE compiled plan): the record
    // tracks PER-IMAGE time, so the amortized dispatch overhead shows up
    // directly against the N=1 /compiled row.
    const std::int64_t batch_n = 4;
    Shape bs = image.shape();
    bs.n = batch_n;
    U8Tensor batch(bs, image.layout());
    for (std::int64_t b = 0; b < batch_n; ++b) {
      std::memcpy(batch.data() + b * image.elems(), image.data(),
                  static_cast<std::size_t>(image.elems()));
    }
    const core::Blob binput{batch};
    core::Engine engine(device, core::EngineOptions{});
    const core::ExecutionPlan plan =
        net->compile(engine, core::describe_blob(binput));
    auto session = engine.create_session();
    core::RunOptions ro;
    ro.borrow_output = true;
    double modeled = 0.0;
    const double host = best_ms(15, [&] {
      session.reset_profile();
      const auto result = plan.run(session, binput, ro);
      modeled = result.modeled_ms;
    });
    out.push_back({"model_e2e", tag + "/compiled-n4",
                   host / static_cast<double>(batch_n),
                   modeled / static_cast<double>(batch_n)});
  };

  // Weight-compressed serving record: a REDUNDANT model (random_redundant —
  // the clustering structure trained binary nets exhibit) compiled under
  // kAuto, so the row tracks both the modeled time of the reuse kernels and
  // the whole-model weight compression ratio.
  const auto run_model_compressed = [&](const std::string& tag,
                                        const core::FloatModel& trained,
                                        const U8Tensor& image) {
    auto net = core::convert_to_phonebit(trained);
    const core::Blob input{image};
    core::EngineOptions opts;
    opts.weight_compress = core::WeightCompress::kAuto;
    core::Engine engine(device, opts);
    const core::ExecutionPlan plan =
        net->compile(engine, core::describe_blob(input));
    auto session = engine.create_session();
    core::RunOptions ro;
    ro.borrow_output = true;
    double modeled = 0.0;
    const double host = best_ms(15, [&] {
      session.reset_profile();
      const auto result = plan.run(session, input, ro);
      modeled = result.modeled_ms;
    });
    bench::BenchRecord rec{"model_e2e", tag + "/compressed", host, modeled};
    std::int64_t raw = 0, enc = 0;
    for (const auto& layer : net->layers()) {
      if (const auto* conv =
              dynamic_cast<const core::BinaryConv2d*>(layer.get())) {
        const bitpack::CompressStats& cs = conv->compressed_bank().stats();
        raw += cs.raw_bytes;
        enc += std::min(cs.encoded_bytes, cs.raw_bytes);
      }
    }
    if (enc > 0) {
      rec.weights_bytes = enc;
      rec.weights_ratio =
          static_cast<double>(raw) / static_cast<double>(enc);
    }
    out.push_back(std::move(rec));
  };

  run_model("quicknet",
            core::FloatModel::random(models::quicknet(10), 42),
            datasets::cifar_like_image(7));
  run_model_compressed(
      "quicknet", core::FloatModel::random_redundant(models::quicknet(10), 42),
      datasets::cifar_like_image(7));
  models::ZooOptions zoo;
  zoo.shrink_log2 = 3;
  const auto yolo = core::FloatModel::random(models::yolov2_tiny(zoo), 21);
  run_model("yolov2tiny-s3", yolo,
            datasets::voc_like_image(yolo.spec.input.h, 9));
  run_model_compressed(
      "yolov2tiny-s3",
      core::FloatModel::random_redundant(models::yolov2_tiny(zoo), 21),
      datasets::voc_like_image(yolo.spec.input.h, 9));
}

/// Fleet-serving end-to-end record: a fixed quicknet trace placed across
/// three simulated device tiers by serve::FleetServer. The tracked modeled
/// number is the fleet-wide virtual makespan — a pure function of the cost
/// model, the profiles and the placement policy, so any change to either
/// (a kernel getting cheaper, the placement score drifting) moves it and
/// trips the gate. host_ms is the real wall time of the whole trace.
void bench_fleet_e2e(std::vector<bench::BenchRecord>& out) {
  serve::FleetConfig cfg;
  cfg.shards.push_back(serve::ShardSpec{"flag", "sd855", 2});
  cfg.shards.push_back(serve::ShardSpec{"mid", "sd660", 2});
  cfg.shards.push_back(serve::ShardSpec{"entry", "sd625", 2});
  cfg.exec_workers = 4;
  cfg.lanes_per_shard = 2;
  cfg.queue_limit = 6;
  cfg.wait_weight = 1.0;
  serve::FleetServer fleet(cfg);

  auto net = core::convert_to_phonebit(
      core::FloatModel::random(models::quicknet(10), 42));
  const core::BlobDesc desc{core::BlobKind::kU8,
                            Shape{1, 32, 32, 3}};
  std::vector<std::string> paths;
  for (int si = 0; si < fleet.shard_count(); ++si) {
    const std::string path =
        "bench_fleet." + fleet.shard_spec(si).profile + ".pba";
    artifact::compile_for_profile(*net, fleet.engine(si).options(), desc,
                                  fleet.shard_spec(si).profile, path);
    paths.push_back(path);
  }
  fleet.load_model("qn", paths);

  // 150 steady requests slightly past flagship capacity: the trace
  // exercises placement, queueing and spillover, not just raw forwards.
  std::vector<serve::Request> workload;
  for (int i = 0; i < 150; ++i) {
    serve::Request r;
    r.model = "qn";
    r.input = core::Blob{datasets::cifar_like_image(
        static_cast<std::uint64_t>(100 + i))};
    r.arrival_ms = 0.35 * i;
    workload.push_back(std::move(r));
  }
  const double t0 = now_ms();
  const serve::FleetSummary s = fleet.run(std::move(workload));
  const double host = now_ms() - t0;
  out.push_back({"fleet_e2e", "quicknet/3tiers/150req", host,
                 s.makespan_ms});
  for (const std::string& p : paths) std::remove(p.c_str());
}

/// Cascade-serving end-to-end record (DESIGN.md §13): a fixed detector →
/// classifier trace through serve::FleetServer::run_cascade over the same
/// three tiers. The tracked modeled number is the cascade's virtual
/// makespan (the last terminal event across every request's multi-stage
/// walk) — it moves if kernels change cost, placement drifts, the gate
/// threshold semantics change, or plane-reuse pricing changes, so the
/// whole §13 pipeline sits behind the gate. host_ms is real wall time.
void bench_cascade_e2e(std::vector<bench::BenchRecord>& out) {
  serve::FleetConfig cfg;
  cfg.shards.push_back(serve::ShardSpec{"flag", "sd855", 2});
  cfg.shards.push_back(serve::ShardSpec{"mid", "sd660", 2});
  cfg.shards.push_back(serve::ShardSpec{"entry", "sd625", 2});
  cfg.exec_workers = 4;
  cfg.lanes_per_shard = 2;
  cfg.queue_limit = 6;
  cfg.wait_weight = 1.0;
  serve::FleetServer fleet(cfg);

  const core::BlobDesc desc{core::BlobKind::kU8, Shape{1, 32, 32, 3}};
  std::vector<std::string> det_paths, cls_paths;
  for (int v = 0; v < 2; ++v) {
    auto net = core::convert_to_phonebit(core::FloatModel::random(
        models::quicknet(10), 42 + static_cast<std::uint64_t>(v)));
    for (int si = 0; si < fleet.shard_count(); ++si) {
      const std::string path = std::string("bench_cascade.") +
                               (v == 0 ? "det." : "cls.") +
                               fleet.shard_spec(si).profile + ".pba";
      artifact::compile_for_profile(*net, fleet.engine(si).options(), desc,
                                    fleet.shard_spec(si).profile, path);
      (v == 0 ? det_paths : cls_paths).push_back(path);
    }
  }
  fleet.load_model("det", det_paths);
  fleet.load_model("cls", cls_paths);

  // Gate threshold at the median max-logit over a sample of the workload
  // inputs: roughly half the trace gates out, half pays for the
  // classifier, so the makespan tracks both verdict classes.
  const auto det_art = fleet.engine(0).load_artifact_shared(det_paths[0]);
  auto probe_session = fleet.engine(0).create_session();
  std::vector<float> peaks;
  for (std::uint64_t i = 0; i < 9; ++i) {
    const core::ForwardResult probe = det_art->plan.run(
        probe_session, core::Blob{datasets::cifar_like_image(100 + i)});
    const FloatTensor& pf = probe.float_output();
    float peak = pf.data()[0];
    for (std::int64_t k = 1; k < pf.elems(); ++k) {
      peak = std::max(peak, pf.data()[k]);
    }
    peaks.push_back(peak);
  }
  std::nth_element(peaks.begin(), peaks.begin() + peaks.size() / 2,
                   peaks.end());
  const float threshold = peaks[peaks.size() / 2];

  serve::CascadeSpec spec;
  spec.name = "bench";
  serve::StageGate gate;
  gate.kind = serve::StageGate::Kind::kMaxAtLeast;
  gate.threshold = threshold;
  spec.stages.push_back(serve::CascadeStageSpec{"det", gate});
  spec.stages.push_back(serve::CascadeStageSpec{"cls", {}});

  std::vector<serve::Request> workload;
  for (int i = 0; i < 120; ++i) {
    serve::Request r;
    r.input = core::Blob{datasets::cifar_like_image(
        static_cast<std::uint64_t>(100 + i))};
    r.arrival_ms = 0.45 * i;
    workload.push_back(std::move(r));
  }
  const double t0 = now_ms();
  const serve::CascadeSummary s = fleet.run_cascade(spec, std::move(workload));
  const double host = now_ms() - t0;
  double makespan = 0.0;
  for (std::size_t i = 0; i < s.results.size(); ++i) {
    makespan = std::max(makespan, 0.45 * static_cast<double>(i) +
                                      s.results[i].latency_ms);
  }
  out.push_back({"cascade_e2e", "quicknet/det-cls/3tiers/120req", host,
                 makespan});
  for (const std::string& p : det_paths) std::remove(p.c_str());
  for (const std::string& p : cls_paths) std::remove(p.c_str());
}

/// CI regression gate (`--check baseline.json [tolerance_pct]`): re-runs the
/// tracked records and fails when any fresh *modeled* time regresses beyond
/// the noise threshold vs the checked-in baseline. Modeled time is a pure
/// function of counted work and the device profile, so it is deterministic
/// across machines — host_ms is wall-clock on whatever hardware runs the
/// check and is reported but never gated.
int compare_to_baseline(const std::vector<bench::BenchRecord>& fresh,
                        const std::string& baseline_path,
                        double tolerance_pct) {
  std::vector<bench::BenchRecord> baseline;
  if (!bench::read_bench_json(baseline_path, baseline)) return 2;
  // The comparison itself (including the missing-record gate: a tracked
  // record absent from the fresh run fails like a regression) lives in
  // bench_util.hpp so tests/test_bench_compare.cpp can pin its exit
  // behaviour without re-running the benches.
  const bench::CompareSummary sum =
      bench::compare_bench_records(fresh, baseline, tolerance_pct, stdout);
  std::printf("\nbench_compare: %d modeled records checked, %d regressed, "
              "%d missing (tolerance %.1f%%)\n",
              sum.checked, sum.regressions, sum.missing, tolerance_pct);
  return sum.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Modes:
  //   bench_kernels [out.json]                    write fresh records
  //   bench_kernels --check baseline.json [pct]   CI regression gate
  const bool check_mode = argc > 1 && std::string(argv[1]) == "--check";
  if (check_mode && argc < 3) {
    std::fprintf(stderr, "usage: %s --check baseline.json [tolerance_pct]\n",
                 argv[0]);
    return 2;
  }
  // Output path as argv[1] so the tracked repo-root baseline can be updated
  // directly (running from build/ otherwise writes a CWD-local copy).
  const std::string json_path =
      (!check_mode && argc > 1) ? argv[1] : "BENCH_kernels.json";
  std::vector<bench::BenchRecord> records;
  bench_xor_popcount(records);
  bench_binary_dot(records);
  bench_pack_signs(records);
  bench_bit_plane_split(records);

  const std::vector<ConvSpec> specs = {
      {"3x3/s1/p1/26x26/c256->256", 26, 256, 256, 3, 1, 1},
      {"3x3/s1/p1/26x26/c128->128", 26, 128, 128, 3, 1, 1},
      {"1x1/s1/p0/26x26/c256->256", 26, 256, 256, 1, 1, 0},
      {"7x7/s2/p3/56x56/c64->64", 56, 64, 64, 7, 2, 3},
  };
  for (const auto& spec : specs) {
    core::EngineOptions fast;  // row-fused interior path, pack width keyed
                               // on the fused span (pinned so the record
                               // keeps measuring the window schedule now
                               // that kAuto may pick the bit-GEMM path)
    fast.conv_path = core::ConvPathPreference::kRowFused;
    bench_conv(spec, fast, "fast", records);
    core::EngineOptions ckey;  // pack-width-key ablation: C_in keying
    ckey.span_keyed_pack_width = false;
    ckey.conv_path = core::ConvPathPreference::kRowFused;
    bench_conv(spec, ckey, "fast-ckey", records);
    core::EngineOptions taps;  // pre-tentpole inner loop, kept for ablation
    taps.interior_split = false;
    taps.conv_path = core::ConvPathPreference::kRowFused;
    bench_conv(spec, taps, "taps", records);
    core::EngineOptions gemm;  // path D: im2col + register-tiled bit-GEMM
    gemm.conv_path = core::ConvPathPreference::kGemm;
    bench_conv(spec, gemm, "bitgemm", records);
    core::EngineOptions comp;  // weight compression + roofline-selected
                               // partial-popcount reuse on a redundant bank
    comp.weight_compress = core::WeightCompress::kAuto;
    bench_conv(spec, comp, "compressed", records, /*redundant=*/true);
  }
  // Fused-geometry record for the plan-level conv→pool rewrite (2x2/s2
  // pool folded into the conv epilogue) vs the two-step chain.
  bench_conv_pool({"3x3/s1/p1/26x26/c128->128", 26, 128, 128, 3, 1, 1},
                  records);
  bench_model_e2e(records);
  bench_fleet_e2e(records);
  bench_cascade_e2e(records);

  std::printf("%-14s %-30s %12s %12s\n", "op", "geometry", "host_ms",
              "modeled_ms");
  for (const auto& r : records) {
    std::printf("%-14s %-30s %12.4f %12.4f\n", r.op.c_str(),
                r.geometry.c_str(), r.host_ms, r.modeled_ms);
  }
  if (check_mode) {
    const double tolerance = argc > 3 ? std::atof(argv[3]) : 2.0;
    return compare_to_baseline(records, argv[2], tolerance);
  }
  if (!bench::write_bench_json(json_path, "kernels", records)) return 1;
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
