// PhoneBit benches — shared table-printing, JSON-emission and run helpers.
#pragma once

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/framework.hpp"
#include "core/phonebit.hpp"
#include "datasets/synthetic.hpp"
#include "models/zoo.hpp"
#include "oclsim/runtime.hpp"

namespace phonebit::bench {

/// One machine-readable benchmark result row (see BENCH_kernels.json).
struct BenchRecord {
  std::string op;        ///< operation name, e.g. "bconv" or "xor_popcount"
  std::string geometry;  ///< human/grep-able geometry tag
  double host_ms = 0.0;    ///< measured wall time of the real host kernels
  double modeled_ms = 0.0; ///< simulated device time (0 when not modeled)
  /// Serialized weight footprint of the benched model/layer (0 = not a
  /// weight-carrying record). Written to the JSON only when positive, so
  /// pre-existing records keep their exact bytes.
  std::int64_t weights_bytes = 0;
  /// Raw/encoded weight compression ratio (0 = not recorded; 1.0 =
  /// incompressible). Informational — never gated.
  double weights_ratio = 0.0;
};

/// Minimal JSON string escape (quotes and backslashes; tags are ASCII).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Writes benchmark records as a stable, diffable JSON document so the perf
/// trajectory can be tracked in-repo (BENCH_kernels.json baseline).
/// Returns false if the path is not writable.
inline bool write_bench_json(const std::string& path, const std::string& bench,
                             const std::vector<BenchRecord>& records) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  f << "{\n  \"bench\": \"" << json_escape(bench) << "\",\n  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    char ms[160];
    // The optional weight-footprint fields always trail the timing pair so
    // readers that stop after modeled_ms (all pre-existing ones) keep
    // parsing every record.
    if (r.weights_bytes > 0) {
      std::snprintf(ms, sizeof(ms),
                    "\"host_ms\": %.6f, \"modeled_ms\": %.6f, "
                    "\"weights_bytes\": %lld, \"ratio\": %.4f",
                    r.host_ms, r.modeled_ms,
                    static_cast<long long>(r.weights_bytes), r.weights_ratio);
    } else {
      std::snprintf(ms, sizeof(ms), "\"host_ms\": %.6f, \"modeled_ms\": %.6f",
                    r.host_ms, r.modeled_ms);
    }
    f << "    {\"op\": \"" << json_escape(r.op) << "\", \"geometry\": \""
      << json_escape(r.geometry) << "\", " << ms << "}"
      << (i + 1 < records.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  return f.good();
}

/// Reads records back from a write_bench_json document (the checked-in
/// BENCH_kernels.json baseline). Parses only the line-per-record shape that
/// write_bench_json emits; returns false on open/parse failure.
inline bool read_bench_json(const std::string& path,
                            std::vector<BenchRecord>& records) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(f, line)) {
    const auto op_pos = line.find("{\"op\": \"");
    if (op_pos == std::string::npos) continue;
    BenchRecord r;
    std::size_t cur = op_pos + 8;
    std::size_t end = line.find('"', cur);
    if (end == std::string::npos) return false;
    r.op = line.substr(cur, end - cur);
    const auto geo_key = line.find("\"geometry\": \"", end);
    if (geo_key == std::string::npos) return false;
    cur = geo_key + 13;
    end = line.find('"', cur);
    if (end == std::string::npos) return false;
    r.geometry = line.substr(cur, end - cur);
    // The two timing fields are mandatory; the weight-footprint pair is
    // optional (sscanf stops matching at the literal mismatch when a record
    // does not carry it, leaving the count at 2 — trailing unknown fields
    // are likewise tolerated, so old readers survive format growth).
    long long wb = 0;
    const int got = std::sscanf(
        line.c_str() + end,
        "\", \"host_ms\": %lf, \"modeled_ms\": %lf, \"weights_bytes\": %lld, "
        "\"ratio\": %lf",
        &r.host_ms, &r.modeled_ms, &wb, &r.weights_ratio);
    if (got != 2 && got != 4) return false;
    if (got == 4) r.weights_bytes = static_cast<std::int64_t>(wb);
    records.push_back(std::move(r));
  }
  return !records.empty();
}

/// Outcome of one baseline-vs-fresh comparison (bench_kernels --check).
struct CompareSummary {
  int checked = 0;      ///< modeled records gated against the baseline
  int regressions = 0;  ///< modeled time beyond tolerance
  int missing = 0;      ///< baseline records the fresh run did not produce

  /// Exit status of the gate: ANY regression or missing record fails the
  /// check — a tracked record silently disappearing (a bench deleted or
  /// renamed without updating the baseline) must fail CI exactly like a
  /// time regression, otherwise coverage decays unnoticed.
  bool ok() const noexcept { return regressions == 0 && missing == 0; }
};

/// Diffs `fresh` records against the checked-in `baseline` (tolerance in
/// percent on the deterministic modeled times; host-only records — modeled
/// <= 0 — are matched for presence but never time-gated). Pure comparison
/// so the gate is unit-testable; printing stays with the caller via `log`
/// (pass nullptr to silence).
inline CompareSummary compare_bench_records(
    const std::vector<BenchRecord>& fresh,
    const std::vector<BenchRecord>& baseline, double tolerance_pct,
    std::FILE* log) {
  CompareSummary sum;
  for (const auto& b : baseline) {
    const BenchRecord* match = nullptr;
    for (const auto& f : fresh) {
      if (f.op == b.op && f.geometry == b.geometry) {
        match = &f;
        break;
      }
    }
    if (match == nullptr) {
      if (log != nullptr) {
        std::fprintf(log,
                     "MISSING    %-14s %-30s (tracked record no longer "
                     "produced)\n",
                     b.op.c_str(), b.geometry.c_str());
      }
      ++sum.missing;
      continue;
    }
    // Weight-compression ratio suffix: purely informational, printed on
    // EVERY matched line that records one (host-only rows included) so a
    // --check run surfaces compression drift without gating on it.
    char ratio[48] = "";
    if (match->weights_ratio > 0.0) {
      std::snprintf(ratio, sizeof(ratio), ", weights %.2fx",
                    match->weights_ratio);
    }
    if (b.modeled_ms <= 0.0) {
      // Host-only record: never time-gated (host wall time is machine
      // noise), but the relative delta still prints so a --check run shows
      // every tracked record's movement, not just the modeled gate.
      if (log != nullptr && b.host_ms > 0.0) {
        std::fprintf(log,
                     "host-only  %-14s %-30s host %.4f -> %.4f ms "
                     "(%+.2f%%, informational%s)\n",
                     b.op.c_str(), b.geometry.c_str(), b.host_ms,
                     match->host_ms,
                     100.0 * (match->host_ms - b.host_ms) / b.host_ms, ratio);
      }
      continue;
    }
    ++sum.checked;
    const double limit = b.modeled_ms * (1.0 + tolerance_pct / 100.0);
    const double delta_pct =
        100.0 * (match->modeled_ms - b.modeled_ms) / b.modeled_ms;
    if (match->modeled_ms > limit) {
      if (log != nullptr) {
        std::fprintf(log,
                     "REGRESSED  %-14s %-30s modeled %.4f -> %.4f ms "
                     "(%+.2f%% > %.1f%%)\n",
                     b.op.c_str(), b.geometry.c_str(), b.modeled_ms,
                     match->modeled_ms, delta_pct, tolerance_pct);
      }
      ++sum.regressions;
    } else if (log != nullptr) {
      std::fprintf(log,
                   "ok         %-14s %-30s modeled %.4f -> %.4f ms "
                   "(%+.2f%%%s)\n",
                   b.op.c_str(), b.geometry.c_str(), b.modeled_ms,
                   match->modeled_ms, delta_pct, ratio);
    }
  }
  return sum;
}

/// PHONEBIT_BENCH_FAST=1 shrinks networks for quick smoke runs; the default
/// is the paper's full-size networks.
inline int bench_shrink() {
  const char* env = std::getenv("PHONEBIT_BENCH_FAST");
  return (env != nullptr && env[0] == '1') ? 3 : 0;
}

/// Result of one framework cell in Table III: a time or a failure marker.
struct Cell {
  double ms = 0.0;
  std::string marker;  // "OOM" / "CRASH" when the gate fired

  std::string str() const {
    if (!marker.empty()) return marker;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", ms);
    return buf;
  }
};

/// Runs a baseline framework, mapping the simulated failure modes to the
/// paper's table markers.
inline Cell run_baseline(const baselines::FloatFramework& fw,
                         oclsim::Device& device, const core::FloatModel& model,
                         const U8Tensor& image) {
  try {
    return Cell{fw.run(device, model, image).modeled_ms, ""};
  } catch (const OutOfMemoryError&) {
    return Cell{0.0, "OOM"};
  } catch (const UnsupportedOperationError&) {
    return Cell{0.0, "CRASH"};
  }
}

/// Runs the PhoneBit engine on a converted model via a fresh session;
/// returns the modeled ms of the forward.
inline Cell run_phonebit(core::Engine& engine, const core::Network& net,
                         const U8Tensor& image) {
  auto session = engine.create_session();
  auto ctx = session.context();
  const auto result = net.forward(ctx, core::Blob{image});
  result.float_output();  // same end-in-float contract as forward_float
  return Cell{result.modeled_ms, ""};
}

}  // namespace phonebit::bench
