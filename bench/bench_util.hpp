// PhoneBit benches — shared table-printing and run helpers.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "baselines/framework.hpp"
#include "core/phonebit.hpp"
#include "datasets/synthetic.hpp"
#include "models/zoo.hpp"
#include "oclsim/runtime.hpp"

namespace phonebit::bench {

/// PHONEBIT_BENCH_FAST=1 shrinks networks for quick smoke runs; the default
/// is the paper's full-size networks.
inline int bench_shrink() {
  const char* env = std::getenv("PHONEBIT_BENCH_FAST");
  return (env != nullptr && env[0] == '1') ? 3 : 0;
}

/// Result of one framework cell in Table III: a time or a failure marker.
struct Cell {
  double ms = 0.0;
  std::string marker;  // "OOM" / "CRASH" when the gate fired

  std::string str() const {
    if (!marker.empty()) return marker;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", ms);
    return buf;
  }
};

/// Runs a baseline framework, mapping the simulated failure modes to the
/// paper's table markers.
inline Cell run_baseline(const baselines::FloatFramework& fw,
                         oclsim::Device& device, const core::FloatModel& model,
                         const U8Tensor& image) {
  try {
    return Cell{fw.run(device, model, image).modeled_ms, ""};
  } catch (const OutOfMemoryError&) {
    return Cell{0.0, "OOM"};
  } catch (const UnsupportedOperationError&) {
    return Cell{0.0, "CRASH"};
  }
}

/// Runs the PhoneBit engine on a converted model; returns modeled ms and the
/// engine (for event inspection).
inline Cell run_phonebit(core::Engine& engine, core::Network& net,
                         const U8Tensor& image) {
  auto ctx = engine.context();
  net.forward_float(ctx, image);
  return Cell{net.last_modeled_ms(), ""};
}

}  // namespace phonebit::bench
