// PhoneBit — power and energy model (the Trepn-profiler substitute behind
// Table IV; see DESIGN.md §2 for the substitution rationale).
//
// Each profiled kernel event charges an active-power rate chosen by the
// execution unit and its dominant arithmetic (fp32 / int8 / binary bit-ops)
// for the event's modeled duration. Inefficient runtimes draw *more* power,
// not less — stalled waves and uncoalesced replays keep silicon switching —
// modeled as a mild inverse-efficiency factor. Average power over the
// inference window plus the modeled frame time yields the Table IV columns:
// mW and FPS/W.
#pragma once

#include <vector>

#include "oclsim/device_profile.hpp"
#include "oclsim/runtime.hpp"

namespace phonebit::energy {

/// Power/energy summary of one inference run.
struct PowerReport {
  double avg_power_mw = 0.0;       ///< Trepn-style average during inference
  double energy_mj_per_frame = 0.0;
  double frame_ms = 0.0;
  double fps = 0.0;
  double fps_per_watt = 0.0;
};

/// Exponent of the inverse-efficiency activity factor:
/// P_active *= alu_efficiency^(-kInefficiencyExponent), clamped to
/// [1, kMaxInefficiencyFactor]. Zero would mean "stalls are free".
inline constexpr double kInefficiencyExponent = 0.08;
inline constexpr double kMaxInefficiencyFactor = 2.2;

/// Active power (above idle) a single kernel event draws on `profile`.
double event_active_mw(const oclsim::KernelEvent& ev,
                       const oclsim::DeviceProfile& profile);

/// Aggregates a run's profiling events into the Table IV quantities.
/// `frame_ms` defaults to the sum of event modeled times; pass the whole-
/// pipeline time when it differs.
PowerReport estimate_power(const std::vector<oclsim::KernelEvent>& events,
                           const oclsim::DeviceProfile& profile,
                           double frame_ms = 0.0);

}  // namespace phonebit::energy
