#include "energy/power_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "oclsim/cost_model.hpp"

namespace phonebit::energy {

using oclsim::DeviceProfile;
using oclsim::ExecUnit;
using oclsim::KernelEvent;

double event_active_mw(const KernelEvent& ev, const DeviceProfile& profile) {
  const auto& c = ev.cost;
  // Cycle shares by arithmetic type decide the blended rail rate.
  const double bit_cycles = oclsim::bitop_cycles(c);
  const double scalar_cycles = c.scalar_ops;
  const double total = bit_cycles + scalar_cycles;
  if (total <= 0.0) return 0.0;

  double fp_rate = 0.0, bit_rate = 0.0;
  if (ev.unit == ExecUnit::kGpu) {
    fp_rate = profile.gpu_fp_active_mw;
    bit_rate = profile.gpu_bit_active_mw;
  } else {
    fp_rate =
        c.int8_ops ? profile.cpu_int8_active_mw : profile.cpu_fp_active_mw;
    // CPUs execute bit ops on the scalar pipes: cheaper than fp32 but not
    // the GPU's wide-SIMD discount.
    bit_rate = 0.4 * fp_rate;
  }
  const double blended =
      (scalar_cycles * fp_rate + bit_cycles * bit_rate) / total;

  // Inefficient execution keeps the unit switching without retiring work.
  const double factor = std::min(
      kMaxInefficiencyFactor,
      std::pow(std::max(c.alu_efficiency, 1e-6), -kInefficiencyExponent));
  return blended * factor;
}

PowerReport estimate_power(const std::vector<KernelEvent>& events,
                           const DeviceProfile& profile, double frame_ms) {
  PowerReport r;
  double energy_uj = 0.0;  // mW * ms = microjoules
  double busy_ms = 0.0;
  for (const auto& ev : events) {
    const double mw = event_active_mw(ev, profile);
    energy_uj += mw * ev.modeled_ms;
    busy_ms += ev.modeled_ms;
  }

  r.frame_ms = frame_ms > 0.0 ? frame_ms : busy_ms;
  PB_CHECK(r.frame_ms > 0.0, "cannot report power for a zero-length frame");
  // Idle draw persists across the whole frame window.
  energy_uj += profile.idle_mw * r.frame_ms;
  const double energy_mj = energy_uj * 1e-3;

  r.energy_mj_per_frame = energy_mj;
  r.avg_power_mw = energy_mj / r.frame_ms * 1e3;  // mJ/ms -> W -> mW
  r.fps = 1000.0 / r.frame_ms;
  r.fps_per_watt = r.fps / (r.avg_power_mw * 1e-3);
  return r;
}

}  // namespace phonebit::energy
