// PhoneBit — minimal training substrate for the Table II accuracy column.
//
// The paper consumes checkpoints trained elsewhere; its accuracy claim is
// that binarization costs a few points, not tens. Without CIFAR10/VOC or a
// training budget we reproduce that *shape* with a small MLP trained from
// scratch on the synthetic pattern task: one run at full precision and one
// with the middle layer binarized Courbariaux-style (sign weights + sign
// activations, straight-through estimator, hardtanh gradient clipping,
// XNOR-style per-row weight scaling). First and last layers stay full
// precision, exactly like the paper's deployed networks.
#pragma once

#include <cstdint>
#include <vector>

#include "datasets/synthetic.hpp"

namespace phonebit::train {

struct TrainConfig {
  int epochs = 40;
  float lr = 0.05f;
  std::int64_t hidden = 128;
  bool binarize = false;   ///< binarize the middle layer (weights + acts)
  std::uint64_t seed = 7;
};

struct TrainResult {
  float train_accuracy = 0.0f;
  float test_accuracy = 0.0f;
  std::vector<float> loss_curve;  ///< mean cross-entropy per epoch
};

/// Trains a 3-layer MLP (in -> hidden -> hidden -> classes) on the dataset
/// and evaluates on `test`.
TrainResult train_mlp(const datasets::PatternDataset& train_set,
                      const datasets::PatternDataset& test_set,
                      const TrainConfig& config);

}  // namespace phonebit::train
