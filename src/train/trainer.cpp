#include "train/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace phonebit::train {

namespace {

/// Row-major matrix with simple SGD update.
struct Mat {
  std::int64_t rows = 0, cols = 0;
  std::vector<float> v;

  Mat() = default;
  Mat(std::int64_t r, std::int64_t c, Rng* rng = nullptr, float scale = 0.0f)
      : rows(r), cols(c), v(static_cast<std::size_t>(r * c), 0.0f) {
    if (rng != nullptr) {
      for (auto& x : v) x = rng->normal() * scale;
    }
  }
  float& at(std::int64_t r, std::int64_t c) {
    return v[static_cast<std::size_t>(r * cols + c)];
  }
  float at(std::int64_t r, std::int64_t c) const {
    return v[static_cast<std::size_t>(r * cols + c)];
  }
};

std::vector<float> flatten(const FloatTensor& t) {
  std::vector<float> out(static_cast<std::size_t>(t.elems()));
  std::copy(t.data(), t.data() + t.elems(), out.begin());
  return out;
}

/// y = W x + b (W: out x in).
std::vector<float> affine(const Mat& w, const std::vector<float>& b,
                          const std::vector<float>& x) {
  std::vector<float> y(static_cast<std::size_t>(w.rows));
  for (std::int64_t r = 0; r < w.rows; ++r) {
    float acc = b[static_cast<std::size_t>(r)];
    for (std::int64_t c = 0; c < w.cols; ++c) {
      acc += w.at(r, c) * x[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

/// Per-row XNOR-style binarization: sign(w) * mean(|w_row|).
Mat binarize_rows(const Mat& w) {
  Mat b(w.rows, w.cols);
  for (std::int64_t r = 0; r < w.rows; ++r) {
    float alpha = 0.0f;
    for (std::int64_t c = 0; c < w.cols; ++c) alpha += std::fabs(w.at(r, c));
    alpha /= static_cast<float>(w.cols);
    for (std::int64_t c = 0; c < w.cols; ++c) {
      b.at(r, c) = w.at(r, c) >= 0.0f ? alpha : -alpha;
    }
  }
  return b;
}

std::vector<float> softmax(const std::vector<float>& z) {
  const float m = *std::max_element(z.begin(), z.end());
  std::vector<float> p(z.size());
  float sum = 0.0f;
  for (std::size_t i = 0; i < z.size(); ++i) {
    p[i] = std::exp(z[i] - m);
    sum += p[i];
  }
  for (auto& x : p) x /= sum;
  return p;
}

struct Model {
  Mat w1, w2, w3;
  std::vector<float> b1, b2, b3;
};

struct ForwardCache {
  std::vector<float> x, z1, a1, ab, z2, a2, logits, probs;
};

void forward(const Model& m, const Mat& w2_eff, const std::vector<float>& x,
             bool binarize, ForwardCache& f) {
  f.x = x;
  f.z1 = affine(m.w1, m.b1, x);
  f.a1.resize(f.z1.size());
  f.ab.resize(f.z1.size());
  for (std::size_t i = 0; i < f.z1.size(); ++i) {
    f.a1[i] = std::max(0.0f, f.z1[i]);
    // Binarized activations: sign over the hardtanh window.
    f.ab[i] = binarize ? (f.a1[i] >= 0.5f ? 1.0f : -1.0f) : f.a1[i];
  }
  f.z2 = affine(w2_eff, m.b2, f.ab);
  f.a2.resize(f.z2.size());
  for (std::size_t i = 0; i < f.z2.size(); ++i) {
    f.a2[i] = std::max(0.0f, f.z2[i]);
  }
  f.logits = affine(m.w3, m.b3, f.a2);
  f.probs = softmax(f.logits);
}

}  // namespace

TrainResult train_mlp(const datasets::PatternDataset& train_set,
                      const datasets::PatternDataset& test_set,
                      const TrainConfig& config) {
  PB_CHECK(!train_set.images.empty() && !test_set.images.empty(),
           "empty dataset");
  const std::int64_t in_features = train_set.images.front().elems();
  const std::int64_t classes = train_set.classes;
  const std::int64_t hidden = config.hidden;

  Rng rng(config.seed);
  Model m;
  m.w1 = Mat(hidden, in_features, &rng,
             1.0f / std::sqrt(static_cast<float>(in_features)));
  m.w2 = Mat(hidden, hidden, &rng,
             1.0f / std::sqrt(static_cast<float>(hidden)));
  m.w3 = Mat(classes, hidden, &rng,
             1.0f / std::sqrt(static_cast<float>(hidden)));
  m.b1.assign(static_cast<std::size_t>(hidden), 0.0f);
  m.b2.assign(static_cast<std::size_t>(hidden), 0.0f);
  m.b3.assign(static_cast<std::size_t>(classes), 0.0f);

  TrainResult result;
  std::vector<std::size_t> order(train_set.images.size());
  std::iota(order.begin(), order.end(), 0);

  ForwardCache f;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Deterministic shuffle.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    const float lr = config.lr / (1.0f + 0.05f * static_cast<float>(epoch));
    double loss_sum = 0.0;
    int correct = 0;

    for (const std::size_t idx : order) {
      const Mat w2_eff = config.binarize ? binarize_rows(m.w2) : m.w2;
      forward(m, w2_eff, flatten(train_set.images[idx]), config.binarize, f);
      const int label = train_set.labels[idx];
      loss_sum += -std::log(std::max(
          f.probs[static_cast<std::size_t>(label)], 1e-12f));
      const int pred = static_cast<int>(
          std::max_element(f.probs.begin(), f.probs.end()) - f.probs.begin());
      if (pred == label) ++correct;

      // --- backward ---
      std::vector<float> dlogits = f.probs;
      dlogits[static_cast<std::size_t>(label)] -= 1.0f;

      // Layer 3 (full precision).
      std::vector<float> da2(static_cast<std::size_t>(hidden), 0.0f);
      for (std::int64_t r = 0; r < classes; ++r) {
        const float g = dlogits[static_cast<std::size_t>(r)];
        for (std::int64_t c = 0; c < hidden; ++c) {
          da2[static_cast<std::size_t>(c)] += g * m.w3.at(r, c);
          m.w3.at(r, c) -= lr * g * f.a2[static_cast<std::size_t>(c)];
        }
        m.b3[static_cast<std::size_t>(r)] -= lr * g;
      }

      // Layer 2 (binarized in BNN mode; STE through sign(w)).
      std::vector<float> dab(static_cast<std::size_t>(hidden), 0.0f);
      for (std::int64_t r = 0; r < hidden; ++r) {
        const float relu_g = f.z2[static_cast<std::size_t>(r)] > 0.0f ? 1.0f : 0.0f;
        const float g = da2[static_cast<std::size_t>(r)] * relu_g;
        if (g == 0.0f) continue;
        for (std::int64_t c = 0; c < hidden; ++c) {
          dab[static_cast<std::size_t>(c)] += g * w2_eff.at(r, c);
          // STE: gradient wrt the binarized weight applied to the latent
          // float weight, clipped to the hardtanh window.
          if (!config.binarize || std::fabs(m.w2.at(r, c)) <= 1.0f) {
            m.w2.at(r, c) -= lr * g * f.ab[static_cast<std::size_t>(c)];
          }
        }
        m.b2[static_cast<std::size_t>(r)] -= lr * g;
      }

      // Layer 1 (full precision; STE through the activation sign).
      for (std::int64_t r = 0; r < hidden; ++r) {
        float g = dab[static_cast<std::size_t>(r)];
        if (config.binarize) {
          // Pass-through window around the 0.5 threshold.
          if (std::fabs(f.a1[static_cast<std::size_t>(r)] - 0.5f) > 1.0f) g = 0.0f;
        }
        const float relu_g = f.z1[static_cast<std::size_t>(r)] > 0.0f ? 1.0f : 0.0f;
        g *= relu_g;
        if (g == 0.0f) continue;
        for (std::int64_t c = 0; c < in_features; ++c) {
          m.w1.at(r, c) -= lr * g * f.x[static_cast<std::size_t>(c)];
        }
        m.b1[static_cast<std::size_t>(r)] -= lr * g;
      }
    }

    result.loss_curve.push_back(
        static_cast<float>(loss_sum / static_cast<double>(order.size())));
    result.train_accuracy =
        static_cast<float>(correct) / static_cast<float>(order.size());
  }

  // --- evaluation ---
  const Mat w2_eff = config.binarize ? binarize_rows(m.w2) : m.w2;
  int correct = 0;
  for (std::size_t i = 0; i < test_set.images.size(); ++i) {
    forward(m, w2_eff, flatten(test_set.images[i]), config.binarize, f);
    const int pred = static_cast<int>(
        std::max_element(f.probs.begin(), f.probs.end()) - f.probs.begin());
    if (pred == test_set.labels[i]) ++correct;
  }
  result.test_accuracy =
      static_cast<float>(correct) / static_cast<float>(test_set.images.size());
  return result;
}

}  // namespace phonebit::train
