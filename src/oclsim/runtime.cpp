#include "oclsim/runtime.hpp"

#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace phonebit::oclsim {

namespace {

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

}  // namespace

Device::Device(DeviceProfile profile, int host_threads)
    : profile_(std::move(profile)) {
  int threads = host_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 4;
  }
  pool_ = std::make_unique<ThreadPool>(threads);
}

void Device::allocate(std::int64_t bytes, std::int64_t budget_bytes) {
  PB_CHECK(bytes >= 0, "negative allocation");
  const std::int64_t budget =
      budget_bytes > 0 ? budget_bytes : profile_.ram_mb * 1024 * 1024;
  std::lock_guard<std::mutex> lock(alloc_mu_);
  if (allocated_ + bytes > budget) {
    throw OutOfMemoryError(
        "simulated device allocation of " + std::to_string(bytes) +
        " bytes exceeds budget " + std::to_string(budget) + " (" +
        std::to_string(allocated_) + " already allocated) on " +
        profile_.soc_name);
  }
  allocated_ += bytes;
}

void Device::release(std::int64_t bytes) noexcept {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  allocated_ -= bytes;
  if (allocated_ < 0) allocated_ = 0;
}

CommandQueue::CommandQueue(Device& device, ExecUnit unit)
    : device_(device), unit_(unit) {}

void CommandQueue::enqueue(const std::string& name, NDRange range,
                           const KernelCost& cost, const KernelBody& body) {
  enqueue_chunked(name, range, cost,
                  [&range, &body](std::int64_t begin, std::int64_t end) {
                    for (std::int64_t i = begin; i < end; ++i) {
                      WorkItem item;
                      item.x = i % range.x;
                      item.y = (i / range.x) % range.y;
                      item.z = i / (range.x * range.y);
                      body(item);
                    }
                  });
}

void CommandQueue::enqueue_chunked(const std::string& name, NDRange range,
                                   const KernelCost& cost,
                                   const ChunkBody& body) {
  PB_CHECK(range.x > 0 && range.y > 0 && range.z > 0,
           "NDRange dims must be positive");
  const double t0 = now_ms();
  device_.pool().parallel_for(range.items(), body);
  const double t1 = now_ms();

  KernelEvent ev;
  ev.name = name;
  ev.range = range;
  ev.cost = cost;
  ev.unit = unit_;
  ev.modeled_ms = modeled_ms(cost, device_.profile(), unit_);
  ev.host_ms = t1 - t0;
  PB_LOG_DEBUG << "kernel " << name << " range=" << range.items()
               << " modeled=" << ev.modeled_ms << "ms host=" << ev.host_ms
               << "ms";
  events_.push_back(std::move(ev));
}

EventSlice CommandQueue::slice_events(std::size_t begin) const {
  EventSlice s;
  for (std::size_t i = begin; i < events_.size(); ++i) {
    const KernelEvent& ev = events_[i];
    s.modeled_ms += ev.modeled_ms;
    s.host_ms += ev.host_ms;
    s.launches += ev.cost.launches;
    s.cost.accumulate(ev.cost);
  }
  return s;
}

double CommandQueue::total_modeled_ms() const noexcept {
  double s = 0.0;
  for (const auto& e : events_) s += e.modeled_ms;
  return s;
}

double CommandQueue::total_host_ms() const noexcept {
  double s = 0.0;
  for (const auto& e : events_) s += e.host_ms;
  return s;
}

double replay_modeled_ms(const std::vector<KernelEvent>& events,
                         const DeviceProfile& profile) {
  double s = 0.0;
  for (const auto& e : events) s += modeled_ms(e.cost, profile, e.unit);
  return s;
}

}  // namespace phonebit::oclsim
