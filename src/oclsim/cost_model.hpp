// PhoneBit — roofline cost model for simulated kernel dispatches.
//
// Every kernel enqueued on the simulated device carries a KernelCost that
// counts the work the kernel *actually performs* (the engines derive it from
// layer geometry, not from tuning). Device time is the classic roofline
//
//     t = max(t_compute, t_memory) + launch_overhead        (latency hiding)
// or  t = t_compute + t_memory + launch_overhead            (no hiding)
//
// with
//     t_compute = (scalar cycles + bit-op cycles) / (ALUs * clock * eff)
//     t_memory  = bytes / (bandwidth * coalescing)
//
// Bit-op cycles model the paper's packing-granularity argument (§V-A.2):
// a W-bit vector instruction occupies ceil(W/32) cycles of a 32-bit ALU plus
// a fixed per-instruction overhead, so 8-bit packing wastes most of each
// cycle while 1024-bit packing (ulong16) approaches 32 bit-lanes/cycle.
#pragma once

#include <cstdint>

#include "oclsim/device_profile.hpp"

namespace phonebit::oclsim {

/// Which execution resource of the SoC a dispatch runs on.
enum class ExecUnit {
  kGpu,  ///< the OpenCL device (Adreno)
  kCpu,  ///< the Kryo CPU cluster (baseline frameworks' CPU paths)
};

/// Work performed by one kernel dispatch, as counted by the issuing engine.
struct KernelCost {
  /// 32-bit ALU operations: one fp32 MAC, one int32 add/compare, one
  /// float->bit binarization each count 1. Engines running at reduced
  /// precision scale this (int8 MAC = 0.25) — see DESIGN.md §2.
  double scalar_ops = 0;

  /// Total bit-lanes of xor/xnor/and/popcount work (pre-packing count:
  /// one binary MAC over 64-packed channels contributes 64 here).
  double bitop_bits = 0;

  /// Vector width used for the bit ops (8..1024); fixes the cycles/bit rate.
  int pack_width_bits = 64;

  /// Fixed instruction overhead per vector bit-op (loop/address bookkeeping),
  /// in ALU cycles. The packing ablation leaves this constant while varying
  /// pack_width_bits.
  double instr_overhead_cycles = 1.0;

  /// Number of contiguous xor/popcount spans the kernel issues. Each span
  /// pays `span_setup_cycles` of fixed setup (address arithmetic, loop
  /// prologue, final lane reduction), which is what row fusion amortizes:
  /// a fused conv window issues kh spans instead of kh*kw (DESIGN.md §4).
  /// 0 disables span accounting (kernels that predate it).
  double span_count = 0;
  double span_setup_cycles = 0;

  /// DRAM traffic in bytes (after modeling cache reuse, which the engine
  /// chooses per its blocking strategy).
  double bytes_read = 0;
  double bytes_written = 0;

  /// Fraction of peak bandwidth achieved (NHWC unit-stride ~0.85,
  /// NCHW scattered ~0.25; §VI-A.2).
  double coalescing = 0.85;

  /// Fraction of peak ALU throughput achieved (occupancy, divergence).
  double alu_efficiency = 0.5;

  /// Whether the kernel overlaps memory with compute (§VI-A.3). Engines
  /// without latency hiding pay the sum instead of the max.
  bool overlap_mem = true;

  /// Scalar ops are int8 arithmetic (TFLite quantized path); the power
  /// model charges the int8 rail instead of the fp32 rail.
  bool int8_ops = false;

  /// Number of device kernel launches this dispatch represents.
  int launches = 1;

  /// Sum of component costs (used when fusing per-layer costs).
  KernelCost& operator+=(const KernelCost& o);

  /// Identity element for event aggregation. A default KernelCost describes
  /// ONE dispatch (launches = 1), so summing events with += onto a default
  /// instance double-counts the first event's launch baseline. accumulator()
  /// starts from zero launches / zero pack width so `acc.accumulate(ev)`
  /// over an event slice yields exactly the slice's totals.
  static KernelCost accumulator();

  /// Folds one event's cost into this accumulator (same weighted merge as
  /// operator+=). Only meaningful on an instance created by accumulator().
  void accumulate(const KernelCost& o) { *this += o; }
};

/// ALU cycles the bit-op portion of `c` occupies (before efficiency).
double bitop_cycles(const KernelCost& c);

/// Modeled execution time in milliseconds on `unit` of `profile`.
double modeled_ms(const KernelCost& c, const DeviceProfile& profile,
                  ExecUnit unit);

}  // namespace phonebit::oclsim
