// PhoneBit — OpenCL-style simulated runtime.
//
// Mirrors the host-side OpenCL objects PhoneBit uses on a phone:
// Device -> Context/CommandQueue -> NDRange kernel enqueue. Kernels are real
// C++ work-item functions executed in parallel on a host thread pool, so
// results are bit-exact; alongside the real execution each dispatch logs a
// KernelCost from which the device-time model produces the "phone"
// milliseconds reported by the benchmarks (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/threadpool.hpp"
#include "oclsim/cost_model.hpp"
#include "oclsim/device_profile.hpp"

namespace phonebit::oclsim {

/// Global work size of a kernel dispatch (OpenCL NDRange, up to rank 3).
struct NDRange {
  std::int64_t x = 1;
  std::int64_t y = 1;
  std::int64_t z = 1;

  std::int64_t items() const noexcept { return x * y * z; }
};

/// Per-work-item coordinates handed to a kernel body
/// (get_global_id(0..2) in OpenCL C).
struct WorkItem {
  std::int64_t x = 0;
  std::int64_t y = 0;
  std::int64_t z = 0;
};

/// Profiling record of one completed dispatch (cl_event equivalent).
struct KernelEvent {
  std::string name;
  NDRange range;
  KernelCost cost;
  ExecUnit unit = ExecUnit::kGpu;
  double modeled_ms = 0.0;  ///< device-time model output
  double host_ms = 0.0;     ///< wall time of the real host execution
};

/// A simulated SoC: owns the profile, a memory budget and the worker pool.
/// One Device can back many CommandQueues (engines). Allocation accounting
/// is thread-safe: concurrent sessions grow their arenas against the same
/// budget.
class Device {
 public:
  /// `host_threads` <= 0 selects std::thread::hardware_concurrency().
  explicit Device(DeviceProfile profile, int host_threads = 0);

  const DeviceProfile& profile() const noexcept { return profile_; }
  ThreadPool& pool() noexcept { return *pool_; }

  /// Tracks a simulated allocation against `budget_bytes` limits; throws
  /// OutOfMemoryError when the budget would be exceeded. Budget of 0 means
  /// "device RAM". Used by engines to reproduce framework OOM behaviour.
  void allocate(std::int64_t bytes, std::int64_t budget_bytes = 0);

  /// Releases a simulated allocation.
  void release(std::int64_t bytes) noexcept;

  /// Bytes currently allocated on the simulated device.
  std::int64_t allocated_bytes() const noexcept {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    return allocated_;
  }

 private:
  DeviceProfile profile_;
  std::unique_ptr<ThreadPool> pool_;
  mutable std::mutex alloc_mu_;
  std::int64_t allocated_ = 0;
};

/// Aggregate of a contiguous run of profiling events — the per-layer report
/// slice Network::forward cuts out of a session queue's event log.
struct EventSlice {
  double modeled_ms = 0.0;
  double host_ms = 0.0;
  int launches = 0;
  KernelCost cost = KernelCost::accumulator();
};

/// In-order command queue with profiling enabled (the only mode PhoneBit
/// uses). enqueue() runs the kernel to completion; finish() is a no-op kept
/// for API parity but retained so engine code reads like OpenCL host code.
class CommandQueue {
 public:
  /// Kernel body type: called once per work item.
  using KernelBody = std::function<void(const WorkItem&)>;

  CommandQueue(Device& device, ExecUnit unit);

  /// Executes `body` over `range` on the device pool and records an event
  /// with both modeled device time and measured host time.
  void enqueue(const std::string& name, NDRange range, const KernelCost& cost,
               const KernelBody& body);

  /// Like enqueue(), but the body receives a contiguous chunk
  /// [begin, end) of the *flattened* range — cheaper for very fine-grained
  /// kernels (one virtual call per chunk instead of per item).
  using ChunkBody = std::function<void(std::int64_t, std::int64_t)>;
  void enqueue_chunked(const std::string& name, NDRange range,
                       const KernelCost& cost, const ChunkBody& body);

  /// Waits for queued work (kept for OpenCL parity; execution is eager).
  void finish() {}

  /// Profiling log of every dispatch since the last reset.
  const std::vector<KernelEvent>& events() const noexcept { return events_; }
  void reset_events() { events_.clear(); }

  /// Index of the next event to be recorded; pair with slice_events() to
  /// aggregate the dispatches of one logical step (a layer, a forward).
  std::size_t event_mark() const noexcept { return events_.size(); }

  /// Aggregates events [begin, events().size()) — launches sum exactly (no
  /// re-count of the accumulator's launch baseline).
  EventSlice slice_events(std::size_t begin) const;

  /// Sum of modeled device milliseconds over all logged events.
  double total_modeled_ms() const noexcept;
  /// Sum of host wall milliseconds over all logged events.
  double total_host_ms() const noexcept;

  Device& device() noexcept { return device_; }
  ExecUnit unit() const noexcept { return unit_; }

 private:
  Device& device_;
  ExecUnit unit_;
  std::vector<KernelEvent> events_;
};

/// Re-prices a recorded event log for a *different* device profile: the sum
/// of modeled_ms(event.cost, profile, event.unit) over `events`. Because a
/// KernelCost is a pure function of geometry + plan options (never of the
/// device it ran on), this equals exactly the total_modeled_ms() a live run
/// of the same plan would report on `profile` — one probe forward prices a
/// plan for a whole fleet of heterogeneous profiles without standing up an
/// engine per device. Fleet placement (serve::FleetServer) is built on this.
double replay_modeled_ms(const std::vector<KernelEvent>& events,
                         const DeviceProfile& profile);

}  // namespace phonebit::oclsim
