// PhoneBit — simulated mobile SoC profiles.
//
// These encode Table I of the paper plus the public microarchitectural
// parameters needed by the roofline time model and the power model:
//
//   Device    SoC             Memory  OS           OpenCL  ALUs in GPU
//   Xiaomi 5  Snapdragon 820  3GB     Android 7.0  2.0     256   (Adreno 530)
//   Xiaomi 9  Snapdragon 855  8GB     Android 9.0  2.0     384   (Adreno 640)
//
// Clocks and bandwidths are the published values for the SoCs; they are the
// only "hardware" this reproduction has, per the substitution note in
// DESIGN.md §2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace phonebit::oclsim {

/// Static description of a simulated phone SoC (CPU + GPU + memory).
struct DeviceProfile {
  // --- identity (Table I columns) ---
  std::string device_name;      ///< e.g. "Xiaomi 5"
  std::string soc_name;         ///< e.g. "Snapdragon 820"
  std::string gpu_name;         ///< e.g. "Adreno 530"
  std::string cpu_name;         ///< e.g. "Kryo"
  std::string os_version;       ///< e.g. "Android 7.0"
  std::string opencl_version;   ///< e.g. "2.0"
  std::int64_t ram_mb = 0;      ///< system memory

  // --- GPU microarchitecture ---
  int compute_units = 1;        ///< parallel CUs (Fig. 1)
  int alus_per_cu = 1;          ///< SIMD ALUs per CU
  double gpu_clock_ghz = 0.5;   ///< shader clock
  double mem_bandwidth_gbps = 10.0;  ///< LPDDR bandwidth, GB/s
  double gpu_launch_overhead_ms = 0.03;  ///< per-kernel dispatch cost

  // --- CPU ---
  int cpu_cores = 4;
  double cpu_clock_ghz = 2.0;
  int cpu_simd_fp32_lanes = 4;  ///< NEON: 128-bit = 4 fp32 lanes
  double cpu_layer_overhead_ms = 0.01;  ///< per-op interpreter dispatch

  // --- power model parameters (see src/energy/power_model.hpp) ---
  // Active-power rates by execution unit and dominant arithmetic: what the
  // rail draws above idle while that kind of kernel occupies the unit.
  // Binary (xor/popcount) kernels switch far less silicon per cycle than
  // fp32 MACs — the root of the paper's Table IV power gap.
  double idle_mw = 80.0;            ///< platform baseline during inference
  double gpu_fp_active_mw = 400.0;  ///< GPU running float kernels
  double gpu_bit_active_mw = 90.0;  ///< GPU running bit-op kernels
  double cpu_fp_active_mw = 450.0;  ///< CPU running float kernels
  double cpu_int8_active_mw = 300.0;  ///< CPU running int8 kernels

  /// Total GPU ALUs (the Table I "ALUs in GPU" column).
  int total_alus() const noexcept { return compute_units * alus_per_cu; }

  /// Peak 32-bit ALU cycles per second across the whole GPU.
  double gpu_cycles_per_sec() const noexcept {
    return static_cast<double>(total_alus()) * gpu_clock_ghz * 1e9;
  }

  /// Peak fp32-equivalent CPU ops per second (all cores, NEON lanes).
  double cpu_ops_per_sec() const noexcept {
    return static_cast<double>(cpu_cores) * cpu_clock_ghz * 1e9 *
           cpu_simd_fp32_lanes;
  }

  /// Xiaomi 5 / Snapdragon 820 / Adreno 530 (Table I row 1).
  static DeviceProfile snapdragon820();
  /// Xiaomi 9 / Snapdragon 855 / Adreno 640 (Table I row 2, Fig. 1).
  static DeviceProfile snapdragon855();
  /// Mid-tier fleet member: Snapdragon 660 / Adreno 512, 4GB.
  static DeviceProfile snapdragon660();
  /// Entry-tier fleet member: Snapdragon 625 / Adreno 506, 2GB.
  static DeviceProfile snapdragon625();
};

/// Fleet profile registry: resolves a short key ("sd855", "sd820", "sd660",
/// "sd625") to its factory profile. These keys are the vocabulary shared by
/// `pbc compile-fleet --profiles`, `.pba` target sections and
/// serve::FleetServer shard specs. Throws InvalidArgument naming the known
/// keys for an unrecognized name.
DeviceProfile profile_by_name(const std::string& name);

/// The keys profile_by_name() accepts, largest RAM budget first.
std::vector<std::string> known_profile_names();

}  // namespace phonebit::oclsim
