#include "oclsim/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace phonebit::oclsim {

KernelCost KernelCost::accumulator() {
  KernelCost zero;
  zero.launches = 0;
  // Minimum legal vector width so the max-merge in accumulate() adopts the
  // first event's width instead of the 64-bit default.
  zero.pack_width_bits = 8;
  return zero;
}

KernelCost& KernelCost::operator+=(const KernelCost& o) {
  // Aggregation keeps the weighted character of the slower component:
  // rates (coalescing, efficiency) are averaged weighted by their traffic.
  const double total_bytes = bytes_read + bytes_written + o.bytes_read + o.bytes_written;
  if (total_bytes > 0) {
    coalescing = ((bytes_read + bytes_written) * coalescing +
                  (o.bytes_read + o.bytes_written) * o.coalescing) /
                 total_bytes;
  }
  const double total_ops = scalar_ops + bitop_bits + o.scalar_ops + o.bitop_bits;
  if (total_ops > 0) {
    alu_efficiency = ((scalar_ops + bitop_bits) * alu_efficiency +
                      (o.scalar_ops + o.bitop_bits) * o.alu_efficiency) /
                     total_ops;
  }
  scalar_ops += o.scalar_ops;
  bitop_bits += o.bitop_bits;
  span_setup_cycles = std::max(span_setup_cycles, o.span_setup_cycles);
  span_count += o.span_count;
  bytes_read += o.bytes_read;
  bytes_written += o.bytes_written;
  launches += o.launches;
  overlap_mem = overlap_mem && o.overlap_mem;
  int8_ops = int8_ops || o.int8_ops;
  pack_width_bits = std::max(pack_width_bits, o.pack_width_bits);
  return *this;
}

double bitop_cycles(const KernelCost& c) {
  if (c.bitop_bits <= 0) return 0.0;
  PB_CHECK(c.pack_width_bits >= 8 && c.pack_width_bits <= 1024,
           "pack width must be in [8,1024] bits, got " << c.pack_width_bits);
  const double instructions = c.bitop_bits / c.pack_width_bits;
  const double cycles_per_instr =
      static_cast<double>(ceil_div(c.pack_width_bits, 32)) +
      c.instr_overhead_cycles;
  return instructions * cycles_per_instr + c.span_count * c.span_setup_cycles;
}

double modeled_ms(const KernelCost& c, const DeviceProfile& profile,
                  ExecUnit unit) {
  PB_CHECK(c.alu_efficiency > 0 && c.alu_efficiency <= 1.0,
           "alu_efficiency must be in (0,1]");
  PB_CHECK(c.coalescing > 0 && c.coalescing <= 1.0,
           "coalescing must be in (0,1]");

  double compute_s = 0.0;
  double memory_s = 0.0;
  double overhead_s = 0.0;

  if (unit == ExecUnit::kGpu) {
    const double cycles = c.scalar_ops + bitop_cycles(c);
    compute_s = cycles / (profile.gpu_cycles_per_sec() * c.alu_efficiency);
    memory_s = (c.bytes_read + c.bytes_written) /
               (profile.mem_bandwidth_gbps * 1e9 * c.coalescing);
    overhead_s = c.launches * profile.gpu_launch_overhead_ms * 1e-3;
  } else {
    // CPU path: NEON gives cpu_simd_fp32_lanes fp32-equivalent ops/cycle per
    // core; bit ops run on 64-bit scalar registers (2x32-bit lanes/cycle).
    const double fp_s =
        c.scalar_ops / (profile.cpu_ops_per_sec() * c.alu_efficiency);
    const double bit_cycles = bitop_cycles(c) / 2.0;
    const double bit_s = bit_cycles / (profile.cpu_cores *
                                       profile.cpu_clock_ghz * 1e9 *
                                       c.alu_efficiency);
    compute_s = fp_s + bit_s;
    memory_s = (c.bytes_read + c.bytes_written) /
               (profile.mem_bandwidth_gbps * 1e9 * c.coalescing);
    overhead_s = c.launches * profile.cpu_layer_overhead_ms * 1e-3;
  }

  const double body_s =
      c.overlap_mem ? std::max(compute_s, memory_s) : compute_s + memory_s;
  return (body_s + overhead_s) * 1e3;
}

}  // namespace phonebit::oclsim
