#include "oclsim/device_profile.hpp"

#include <sstream>

#include "common/error.hpp"

namespace phonebit::oclsim {

DeviceProfile DeviceProfile::snapdragon820() {
  DeviceProfile p;
  p.device_name = "Xiaomi 5";
  p.soc_name = "Snapdragon 820";
  p.gpu_name = "Adreno 530";
  p.cpu_name = "Kryo";
  p.os_version = "Android 7.0";
  p.opencl_version = "2.0";
  p.ram_mb = 3 * 1024;

  // Adreno 530: 256 ALUs (Table I), organized as 4 CUs x 64, 624 MHz.
  p.compute_units = 4;
  p.alus_per_cu = 64;
  p.gpu_clock_ghz = 0.624;
  p.mem_bandwidth_gbps = 25.6;  // LPDDR4 2x32 @ 1803 MHz
  p.gpu_launch_overhead_ms = 0.04;

  p.cpu_cores = 4;  // 2x2.15 + 2x1.6 GHz Kryo; modeled at the mean
  p.cpu_clock_ghz = 1.9;
  p.cpu_simd_fp32_lanes = 4;
  p.cpu_layer_overhead_ms = 0.015;

  // Power calibration (see src/energy/power_model.*): chosen so the modeled
  // Table IV column lands in the paper's measured range on this SoC.
  p.idle_mw = 120.0;
  p.gpu_fp_active_mw = 360.0;
  p.gpu_bit_active_mw = 95.0;
  p.cpu_fp_active_mw = 500.0;
  p.cpu_int8_active_mw = 330.0;
  return p;
}

DeviceProfile DeviceProfile::snapdragon855() {
  DeviceProfile p;
  p.device_name = "Xiaomi 9";
  p.soc_name = "Snapdragon 855";
  p.gpu_name = "Adreno 640";
  p.cpu_name = "Kryo 485";
  p.os_version = "Android 9.0";
  p.opencl_version = "2.0";
  p.ram_mb = 8 * 1024;

  // Adreno 640: 2 CUs x 192 ALUs = 384 ALUs (paper Fig. 1 / Table I), 585 MHz.
  p.compute_units = 2;
  p.alus_per_cu = 192;
  p.gpu_clock_ghz = 0.585;
  p.mem_bandwidth_gbps = 34.1;  // LPDDR4X 4x16 @ 2133 MHz
  p.gpu_launch_overhead_ms = 0.025;

  p.cpu_cores = 8;  // 1+3+4 Kryo 485; modeled at the mean
  p.cpu_clock_ghz = 2.2;
  p.cpu_simd_fp32_lanes = 4;
  p.cpu_layer_overhead_ms = 0.01;

  // 7 nm process: lower rails across the board.
  p.idle_mw = 100.0;
  p.gpu_fp_active_mw = 320.0;
  p.gpu_bit_active_mw = 80.0;
  p.cpu_fp_active_mw = 420.0;
  p.cpu_int8_active_mw = 280.0;
  return p;
}

DeviceProfile DeviceProfile::snapdragon660() {
  DeviceProfile p;
  p.device_name = "Redmi Note 7";
  p.soc_name = "Snapdragon 660";
  p.gpu_name = "Adreno 512";
  p.cpu_name = "Kryo 260";
  p.os_version = "Android 9.0";
  p.opencl_version = "2.0";
  p.ram_mb = 4 * 1024;

  // Adreno 512: 128 ALUs as 2 CUs x 64, 650 MHz.
  p.compute_units = 2;
  p.alus_per_cu = 64;
  p.gpu_clock_ghz = 0.65;
  p.mem_bandwidth_gbps = 14.9;  // LPDDR4 2x16 @ 1866 MHz
  p.gpu_launch_overhead_ms = 0.05;

  p.cpu_cores = 8;  // 4+4 Kryo 260; modeled at the mean
  p.cpu_clock_ghz = 1.95;
  p.cpu_simd_fp32_lanes = 4;
  p.cpu_layer_overhead_ms = 0.015;

  // 14 nm mid-tier: rails between the 820 and 855 calibrations.
  p.idle_mw = 110.0;
  p.gpu_fp_active_mw = 340.0;
  p.gpu_bit_active_mw = 90.0;
  p.cpu_fp_active_mw = 460.0;
  p.cpu_int8_active_mw = 310.0;
  return p;
}

DeviceProfile DeviceProfile::snapdragon625() {
  DeviceProfile p;
  p.device_name = "Redmi 4 Prime";
  p.soc_name = "Snapdragon 625";
  p.gpu_name = "Adreno 506";
  p.cpu_name = "Cortex-A53";
  p.os_version = "Android 7.1";
  p.opencl_version = "2.0";
  p.ram_mb = 2 * 1024;

  // Adreno 506: 96 ALUs as 1 CU x 96, 650 MHz.
  p.compute_units = 1;
  p.alus_per_cu = 96;
  p.gpu_clock_ghz = 0.65;
  p.mem_bandwidth_gbps = 7.4;  // LPDDR3 1x32 @ 933 MHz
  p.gpu_launch_overhead_ms = 0.06;

  p.cpu_cores = 8;  // 8x A53 @ 2.0 GHz
  p.cpu_clock_ghz = 2.0;
  p.cpu_simd_fp32_lanes = 4;
  p.cpu_layer_overhead_ms = 0.02;

  // 14 nm entry tier: low absolute draw, but slow — energy per inference
  // still lands above the flagships for the same model.
  p.idle_mw = 90.0;
  p.gpu_fp_active_mw = 260.0;
  p.gpu_bit_active_mw = 75.0;
  p.cpu_fp_active_mw = 380.0;
  p.cpu_int8_active_mw = 260.0;
  return p;
}

DeviceProfile profile_by_name(const std::string& name) {
  if (name == "sd855") return DeviceProfile::snapdragon855();
  if (name == "sd820") return DeviceProfile::snapdragon820();
  if (name == "sd660") return DeviceProfile::snapdragon660();
  if (name == "sd625") return DeviceProfile::snapdragon625();
  std::ostringstream os;
  os << "unknown device profile '" << name << "'; known profiles:";
  for (const auto& known : known_profile_names()) os << " " << known;
  throw InvalidArgument(os.str());
}

std::vector<std::string> known_profile_names() {
  return {"sd855", "sd660", "sd820", "sd625"};
}

}  // namespace phonebit::oclsim
