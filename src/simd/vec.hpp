// PhoneBit — portable OpenCL-style vector types.
//
// PhoneBit's kernels are written against the OpenCL C vector vocabulary
// (uchar16, uint4, ulong16, popcount, select, isless/isgreater/isequal,
// vloadN/vstoreN). On a phone these map to Adreno SIMD lanes; in this
// reproduction they are value types the host compiler auto-vectorizes.
// The widest type, ulong16, gives the paper's 1024-bit packing granularity.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace phonebit::simd {

/// Fixed-width vector of N lanes of T (N in {2,4,8,16} like OpenCL).
/// Aggregate, trivially copyable; all lane operations are elementwise.
template <typename T, int N>
struct vec {
  static_assert(N == 2 || N == 4 || N == 8 || N == 16,
                "OpenCL vector widths are 2, 4, 8, 16");
  using lane_type = T;
  static constexpr int lanes = N;

  std::array<T, N> v{};

  constexpr vec() = default;

  /// Broadcast constructor (OpenCL scalar widening).
  constexpr explicit vec(T s) {
    for (auto& x : v) x = s;
  }

  /// Lane-list constructor.
  template <typename... Ts>
    requires(sizeof...(Ts) == N)
  constexpr vec(Ts... lanes_) : v{static_cast<T>(lanes_)...} {}

  constexpr T& operator[](int i) { return v[static_cast<std::size_t>(i)]; }
  constexpr const T& operator[](int i) const {
    return v[static_cast<std::size_t>(i)];
  }

  friend constexpr bool operator==(const vec& a, const vec& b) {
    return a.v == b.v;
  }
};

// --- elementwise arithmetic / bitwise operators ---------------------------

#define PB_SIMD_BINOP(op)                                            \
  template <typename T, int N>                                       \
  constexpr vec<T, N> operator op(const vec<T, N>& a,                \
                                  const vec<T, N>& b) {              \
    vec<T, N> r;                                                     \
    for (int i = 0; i < N; ++i) r[i] = static_cast<T>(a[i] op b[i]); \
    return r;                                                        \
  }                                                                  \
  template <typename T, int N>                                       \
  constexpr vec<T, N> operator op(const vec<T, N>& a, T s) {         \
    vec<T, N> r;                                                     \
    for (int i = 0; i < N; ++i) r[i] = static_cast<T>(a[i] op s);    \
    return r;                                                        \
  }

PB_SIMD_BINOP(+)
PB_SIMD_BINOP(-)
PB_SIMD_BINOP(*)
#undef PB_SIMD_BINOP

#define PB_SIMD_INT_BINOP(op)                                        \
  template <typename T, int N>                                       \
    requires std::is_integral_v<T>                                   \
  constexpr vec<T, N> operator op(const vec<T, N>& a,                \
                                  const vec<T, N>& b) {              \
    vec<T, N> r;                                                     \
    for (int i = 0; i < N; ++i) r[i] = static_cast<T>(a[i] op b[i]); \
    return r;                                                        \
  }

PB_SIMD_INT_BINOP(^)
PB_SIMD_INT_BINOP(&)
PB_SIMD_INT_BINOP(|)
#undef PB_SIMD_INT_BINOP

/// Elementwise bitwise NOT (integral lanes only).
template <typename T, int N>
  requires std::is_integral_v<T>
constexpr vec<T, N> operator~(const vec<T, N>& a) {
  vec<T, N> r;
  for (int i = 0; i < N; ++i) r[i] = static_cast<T>(~a[i]);
  return r;
}

// --- OpenCL built-ins ------------------------------------------------------

/// OpenCL popcount: per-lane set-bit count, returned in the same lane type.
template <typename T, int N>
  requires std::is_unsigned_v<T>
constexpr vec<T, N> popcount(const vec<T, N>& a) {
  vec<T, N> r;
  for (int i = 0; i < N; ++i) r[i] = static_cast<T>(phonebit::popcount(a[i]));
  return r;
}

/// Horizontal add of all lanes into a wide accumulator.
template <typename T, int N>
constexpr std::int64_t reduce_add(const vec<T, N>& a) {
  std::int64_t s = 0;
  for (int i = 0; i < N; ++i) s += static_cast<std::int64_t>(a[i]);
  return s;
}

/// Total set bits across all lanes: popcount + horizontal add fused.
template <typename T, int N>
  requires std::is_unsigned_v<T>
constexpr int popcount_total(const vec<T, N>& a) {
  int s = 0;
  for (int i = 0; i < N; ++i) s += phonebit::popcount(a[i]);
  return s;
}

/// Lane-wise popcount accumulation: acc[i] += popcount(a[i]). The counts
/// stay vectorized across the whole span and the caller reduces once (per
/// row, not per vector) with reduce_add — the accumulation schedule the
/// row-fused conv kernels use. With 64-bit lanes each step adds at most 64,
/// so overflow needs ~2^57 accumulations and is not a practical concern.
template <typename T, int N>
  requires std::is_unsigned_v<T>
constexpr void popcount_accumulate(vec<T, N>& acc, const vec<T, N>& a) {
  for (int i = 0; i < N; ++i) {
    acc[i] = static_cast<T>(acc[i] + static_cast<T>(phonebit::popcount(a[i])));
  }
}

/// OpenCL select(a, b, c): per lane, c ? b : a (MSB semantics reduced to
/// boolean lanes here since our masks are 0/1).
template <typename T, int N, typename M>
constexpr vec<T, N> select(const vec<T, N>& a, const vec<T, N>& b,
                           const vec<M, N>& c) {
  vec<T, N> r;
  for (int i = 0; i < N; ++i) r[i] = (c[i] != 0) ? b[i] : a[i];
  return r;
}

// --- scalar relational built-ins (used by the Eqn 9 branch-free path) ------

/// OpenCL isless for scalars: 1 if a < b else 0.
constexpr int isless(float a, float b) noexcept { return a < b ? 1 : 0; }
/// OpenCL isgreater: 1 if a > b else 0.
constexpr int isgreater(float a, float b) noexcept { return a > b ? 1 : 0; }
/// OpenCL isequal: 1 if a == b else 0.
constexpr int isequal(float a, float b) noexcept { return a == b ? 1 : 0; }

// --- vloadN / vstoreN -------------------------------------------------------

/// OpenCL vloadN(offset, p): reads lanes from p + offset*N.
template <typename T, int N>
inline vec<T, N> vload(std::size_t offset, const T* p) {
  vec<T, N> r;
  std::memcpy(r.v.data(), p + offset * N, sizeof(T) * N);
  return r;
}

/// OpenCL vstoreN(x, offset, p): writes lanes to p + offset*N.
template <typename T, int N>
inline void vstore(const vec<T, N>& x, std::size_t offset, T* p) {
  std::memcpy(p + offset * N, x.v.data(), sizeof(T) * N);
}

// --- OpenCL type aliases ----------------------------------------------------

using uchar = std::uint8_t;
using ushort = std::uint16_t;
using uint = std::uint32_t;
using ulong = std::uint64_t;

using uchar2 = vec<uchar, 2>;
using uchar4 = vec<uchar, 4>;
using uchar8 = vec<uchar, 8>;
using uchar16 = vec<uchar, 16>;
using ushort2 = vec<ushort, 2>;
using ushort4 = vec<ushort, 4>;
using ushort8 = vec<ushort, 8>;
using ushort16 = vec<ushort, 16>;
using uint2 = vec<uint, 2>;
using uint4 = vec<uint, 4>;
using uint8 = vec<uint, 8>;
using uint16 = vec<uint, 16>;
using ulong2 = vec<ulong, 2>;
using ulong4 = vec<ulong, 4>;
using ulong8 = vec<ulong, 8>;
using ulong16 = vec<ulong, 16>;
using float2 = vec<float, 2>;
using float4 = vec<float, 4>;
using float8 = vec<float, 8>;
using float16 = vec<float, 16>;

/// OpenCL dot built-in for float4 (used by the full-precision last layer,
/// Section VII "conv9 ... using SIMD operation on build-in dot product").
constexpr float dot(const float4& a, const float4& b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2] + a[3] * b[3];
}

/// Bit width of a vector type (e.g. 1024 for ulong16).
template <typename V>
constexpr int bit_width() {
  return static_cast<int>(sizeof(typename V::lane_type)) * 8 * V::lanes;
}

}  // namespace phonebit::simd
