#include "models/zoo.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace phonebit::models {

using core::Activation;
using core::ConvLayerSpec;
using core::DenseLayerSpec;
using core::NetworkSpec;
using core::PoolLayerSpec;

namespace {

std::int64_t shrink_channels(std::int64_t c, int log2) {
  // Keep multiples of 8 so the byte-packed workload strategy stays legal.
  return std::max<std::int64_t>(8, (c >> log2) & ~std::int64_t{7});
}

// Every architecture has a minimum input extent below which its pooling
// chain underflows; shrunken variants clamp there.
std::int64_t shrink_extent(std::int64_t e, int log2, std::int64_t floor) {
  return std::max<std::int64_t>(floor, e >> log2);
}

ConvLayerSpec conv(std::string name, std::int64_t c_in, std::int64_t c_out,
                   std::int64_t k, std::int64_t stride, std::int64_t pad,
                   bool bn, Activation act, bool lrn = false) {
  ConvLayerSpec c;
  c.name = std::move(name);
  c.c_in = c_in;
  c.c_out = c_out;
  c.geom.kernel_h = c.geom.kernel_w = k;
  c.geom.stride_h = c.geom.stride_w = stride;
  c.geom.pad_h = c.geom.pad_w = pad;
  c.batch_norm = bn;
  c.act = act;
  c.lrn_after = lrn;
  return c;
}

PoolLayerSpec pool(std::string name, std::int64_t size, std::int64_t stride,
                   bool tail_pad = false) {
  PoolLayerSpec p;
  p.name = std::move(name);
  p.geom.size = size;
  p.geom.stride = stride;
  p.geom.pad = 0;
  p.geom.tail_pad = tail_pad;
  return p;
}

DenseLayerSpec dense(std::string name, std::int64_t in, std::int64_t out,
                     bool bn, Activation act) {
  DenseLayerSpec d;
  d.name = std::move(name);
  d.in_features = in;
  d.out_features = out;
  d.batch_norm = bn;
  d.act = act;
  return d;
}

}  // namespace

NetworkSpec alexnet(const ZooOptions& opts) {
  const int s = opts.shrink_log2;
  const bool bn = opts.bnn_batch_norm;
  // LRN only survives in the classic (non-BN) form; a BNN training run
  // replaces it with batch-norm (and the TFLite GPU delegate gate keys on
  // its presence in the float graph).
  const bool lrn = !bn;
  NetworkSpec net;
  net.name = "alexnet";
  // 227 input so conv1 (11x11, stride 4, pad 0) lands exactly on 55.
  // Floor 67: the smallest input that survives conv1 + three 3/2 pools.
  const std::int64_t in_hw = s == 0 ? 227 : shrink_extent(227, s, 67);
  net.input = Shape{1, in_hw, in_hw, 3};

  const std::int64_t c1 = shrink_channels(96, s);
  const std::int64_t c2 = shrink_channels(256, s);
  const std::int64_t c3 = shrink_channels(384, s);
  const std::int64_t c5 = shrink_channels(256, s);

  net.layers.push_back(conv("conv1", 3, c1, 11, 4, 0, bn, Activation::kRelu, lrn));
  net.layers.push_back(pool("pool1", 3, 2));
  net.layers.push_back(conv("conv2", c1, c2, 5, 1, 2, bn, Activation::kRelu, lrn));
  net.layers.push_back(pool("pool2", 3, 2));
  net.layers.push_back(conv("conv3", c2, c3, 3, 1, 1, bn, Activation::kRelu));
  net.layers.push_back(conv("conv4", c3, c3, 3, 1, 1, bn, Activation::kRelu));
  net.layers.push_back(conv("conv5", c3, c5, 3, 1, 1, bn, Activation::kRelu));
  net.layers.push_back(pool("pool5", 3, 2));

  // Feature extent after the three 3/2 pools (55 -> 27 -> 13 -> 6 at full
  // size); computed generically so shrunken variants stay consistent.
  std::int64_t hw = ConvGeometry{11, 11, 4, 4, 0, 0}.out_h(in_hw);
  hw = core::PoolGeometry{3, 2, 0, false}.out_dim(hw);
  hw = core::PoolGeometry{3, 2, 0, false}.out_dim(hw);
  hw = core::PoolGeometry{3, 2, 0, false}.out_dim(hw);

  const std::int64_t fc = shrink_channels(4096, s);
  net.layers.push_back(dense("fc6", hw * hw * c5, fc, bn, Activation::kRelu));
  net.layers.push_back(dense("fc7", fc, fc, bn, Activation::kRelu));
  net.layers.push_back(dense("fc8", fc, 1000, false, Activation::kNone));
  return net;
}

NetworkSpec yolov2_tiny(const ZooOptions& opts) {
  const int s = opts.shrink_log2;
  const bool bn = opts.bnn_batch_norm;
  NetworkSpec net;
  net.name = "yolov2-tiny";
  // Floor 35: five stride-2 pools + the stride-1 pool6 need >= 2^5.
  const std::int64_t in_hw = s == 0 ? 416 : shrink_extent(416, s, 35);
  net.input = Shape{1, in_hw, in_hw, 3};

  const std::int64_t ch[8] = {
      shrink_channels(16, s),   shrink_channels(32, s),
      shrink_channels(64, s),   shrink_channels(128, s),
      shrink_channels(256, s),  shrink_channels(512, s),
      shrink_channels(1024, s), shrink_channels(1024, s)};

  std::int64_t c_in = 3;
  for (int i = 0; i < 6; ++i) {
    net.layers.push_back(conv("conv" + std::to_string(i + 1), c_in, ch[i], 3,
                              1, 1, bn, Activation::kLeakyRelu));
    // pool6 is the darknet stride-1 "same" pool that keeps 13x13.
    const bool last = i == 5;
    net.layers.push_back(pool("pool" + std::to_string(i + 1), 2,
                              last ? 1 : 2, last));
    c_in = ch[i];
  }
  net.layers.push_back(
      conv("conv7", ch[5], ch[6], 3, 1, 1, bn, Activation::kLeakyRelu));
  net.layers.push_back(
      conv("conv8", ch[6], ch[7], 3, 1, 1, bn, Activation::kLeakyRelu));
  // Detection head: 125 = 5 boxes x (4 + 1 + 20 VOC classes), full precision.
  net.layers.push_back(
      conv("conv9", ch[7], 125, 1, 1, 0, false, Activation::kNone));
  return net;
}

NetworkSpec vgg16(const ZooOptions& opts) {
  const int s = opts.shrink_log2;
  const bool bn = opts.bnn_batch_norm;
  NetworkSpec net;
  net.name = "vgg16";
  // Floor 35: five stride-2 pools need >= 2^5.
  const std::int64_t in_hw = s == 0 ? 224 : shrink_extent(224, s, 35);
  net.input = Shape{1, in_hw, in_hw, 3};

  const std::int64_t stage_c[5] = {
      shrink_channels(64, s), shrink_channels(128, s), shrink_channels(256, s),
      shrink_channels(512, s), shrink_channels(512, s)};
  const int stage_n[5] = {2, 2, 3, 3, 3};

  std::int64_t c_in = 3;
  int idx = 1;
  std::int64_t hw = in_hw;
  for (int stage = 0; stage < 5; ++stage) {
    for (int i = 0; i < stage_n[stage]; ++i) {
      net.layers.push_back(conv("conv" + std::to_string(idx), c_in,
                                stage_c[stage], 3, 1, 1, bn,
                                Activation::kRelu));
      c_in = stage_c[stage];
      ++idx;
    }
    net.layers.push_back(pool("pool" + std::to_string(stage + 1), 2, 2));
    hw = core::PoolGeometry{2, 2, 0, false}.out_dim(hw);
  }

  const std::int64_t fc = shrink_channels(4096, s);
  net.layers.push_back(dense("fc1", hw * hw * c_in, fc, bn, Activation::kRelu));
  net.layers.push_back(dense("fc2", fc, fc, bn, Activation::kRelu));
  net.layers.push_back(dense("fc3", fc, 1000, false, Activation::kNone));
  return net;
}

NetworkSpec spec_by_name(const std::string& name, const ZooOptions& opts,
                         std::optional<std::int64_t> classes) {
  if (name == "quicknet") {
    // quicknet is already CIFAR-sized and has no shrunken variant —
    // dropping the flag silently would emit an unexpected artifact.
    PB_CHECK(opts.shrink_log2 == 0,
             "quicknet has no shrunken variant — shrink applies to the "
             "paper networks");
    return quicknet(classes.value_or(10));
  }
  // The paper networks carry fixed heads (1000-way ImageNet fc, the
  // 125-channel VOC detector): silently ignoring a class override — ANY
  // explicit value, including quicknet's default — would emit an artifact
  // with the wrong head, so reject it instead.
  PB_CHECK(!classes.has_value(),
           "'" << name << "' has a fixed classification head — a class "
                          "count applies only to quicknet");
  if (name == "alexnet") return alexnet(opts);
  if (name == "yolov2-tiny" || name == "yolov2_tiny") {
    return yolov2_tiny(opts);
  }
  if (name == "vgg16") return vgg16(opts);
  throw InvalidArgument("unknown zoo model '" + name +
                        "' (known: quicknet, alexnet, yolov2-tiny, vgg16)");
}

NetworkSpec quicknet(std::int64_t classes) {
  PB_CHECK(classes > 0, "quicknet needs at least one class");
  NetworkSpec net;
  net.name = "quicknet";
  net.input = Shape{1, 32, 32, 3};
  net.layers.push_back(conv("conv1", 3, 32, 3, 1, 1, true, Activation::kRelu));
  net.layers.push_back(pool("pool1", 2, 2));
  net.layers.push_back(conv("conv2", 32, 64, 3, 1, 1, true, Activation::kRelu));
  net.layers.push_back(pool("pool2", 2, 2));
  net.layers.push_back(conv("conv3", 64, 64, 3, 1, 1, true, Activation::kRelu));
  net.layers.push_back(pool("pool3", 2, 2));
  net.layers.push_back(dense("fc1", 4 * 4 * 64, 128, true, Activation::kRelu));
  net.layers.push_back(dense("fc2", 128, classes, false, Activation::kNone));
  return net;
}

}  // namespace phonebit::models
