// PhoneBit — the benchmark model zoo (the paper's three networks).
//
// Architecture definitions for AlexNet, YOLOv2-Tiny (VOC) and VGG16, plus a
// small quickstart CNN. The float-parameter counts reproduce the paper's
// Table II full-precision sizes exactly for YOLOv2-Tiny (63.4 MB) and VGG16
// (553.4 MB), and AlexNet with its 1000-way fc8 (249.5 MB) — the counts
// only match the paper's numbers with the original ImageNet-shape heads,
// which is evidence the authors benchmarked the unmodified architectures.
//
// `scale` shrinks channel counts and input resolution by powers of two for
// fast tests (1 = paper-size). Channel counts never drop below 8 so the
// 8-filters-per-thread packing stays legal.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/float_model.hpp"

namespace phonebit::models {

/// Scaling for fast test variants: divide channels and input extent by
/// 2^shrink_log2 (0 = the paper's full-size network).
struct ZooOptions {
  int shrink_log2 = 0;
  /// Add batch-norm to every hidden layer (what a BNN training run would
  /// produce). The classic float baselines keep their original form when
  /// false.
  bool bnn_batch_norm = true;
};

/// AlexNet, 227x227x3 input, LRN after conv1/conv2, 1000-way fc8.
core::NetworkSpec alexnet(const ZooOptions& opts = {});

/// YOLOv2-Tiny for VOC: 416x416x3 input, 9 convs, 125-channel 1x1 head.
core::NetworkSpec yolov2_tiny(const ZooOptions& opts = {});

/// VGG16: 224x224x3 input, 13 convs + 3 fc, 1000-way head.
core::NetworkSpec vgg16(const ZooOptions& opts = {});

/// A small CIFAR-sized CNN for the quickstart example and the trainer.
core::NetworkSpec quicknet(std::int64_t classes = 10);

/// Looks an architecture up by name ("quicknet", "alexnet", "yolov2-tiny",
/// "vgg16") — the registry behind the `pbc` compile-to-artifact CLI.
/// Throws InvalidArgument for unknown names (listing the known ones) and
/// for option overrides the architecture cannot honor: `classes` (engaged
/// only when the caller explicitly set it) applies to quicknet alone —
/// the paper networks carry fixed heads — and quicknet has no shrunken
/// variant.
core::NetworkSpec spec_by_name(
    const std::string& name, const ZooOptions& opts = {},
    std::optional<std::int64_t> classes = std::nullopt);

}  // namespace phonebit::models
