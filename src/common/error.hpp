// PhoneBit — error handling primitives.
//
// The public API reports contract violations and environmental failures with
// exceptions (C++ Core Guidelines E.2). Internal invariants use PB_ASSERT,
// which is compiled out in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace phonebit {

/// Root of the PhoneBit exception hierarchy. Everything the library throws
/// derives from this, so callers can catch one type.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad shape, bad argument).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A simulated device ran out of its modeled memory budget. Used by the
/// baseline engines to reproduce the paper's OOM rows (Table III).
class OutOfMemoryError : public Error {
 public:
  explicit OutOfMemoryError(const std::string& what) : Error(what) {}
};

/// A simulated framework hit an operation outside its supported set. Used to
/// reproduce the paper's CRASH rows for the TFLite GPU delegate (Table III).
class UnsupportedOperationError : public Error {
 public:
  explicit UnsupportedOperationError(const std::string& what) : Error(what) {}
};

/// Model file parsing / serialization failure.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "PB_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}

}  // namespace detail
}  // namespace phonebit

/// Precondition check that always runs; throws InvalidArgument on failure.
/// Usage: PB_CHECK(n > 0, "n must be positive, got " << n);
#define PB_CHECK(cond, msg)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream pb_check_os_;                                       \
      pb_check_os_ << msg;                                                   \
      ::phonebit::detail::throw_check_failure(#cond, __FILE__, __LINE__,     \
                                              pb_check_os_.str());           \
    }                                                                        \
  } while (0)

/// Internal invariant; active only in debug builds.
#ifndef NDEBUG
#define PB_ASSERT(cond, msg) PB_CHECK(cond, msg)
#else
#define PB_ASSERT(cond, msg) \
  do {                       \
  } while (0)
#endif
