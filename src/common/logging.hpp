// PhoneBit — minimal leveled logging to stderr.
//
// Logging is intentionally tiny: benchmarks and tests must be quiet by
// default, so the default level is kWarn. Set PHONEBIT_LOG=info|debug in the
// environment or call set_log_level() to see engine traces.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace phonebit {

/// Severity levels, ordered.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Returns the process-wide log level (reads PHONEBIT_LOG once).
LogLevel log_level();

/// Overrides the process-wide log level.
void set_log_level(LogLevel level);

namespace detail {

void log_line(LogLevel level, const std::string& msg);

/// Stream-style log statement collector; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, os_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace phonebit

#define PB_LOG(level)                                        \
  if (::phonebit::log_level() <= ::phonebit::LogLevel::level) \
  ::phonebit::detail::LogMessage(::phonebit::LogLevel::level)

#define PB_LOG_DEBUG PB_LOG(kDebug)
#define PB_LOG_INFO PB_LOG(kInfo)
#define PB_LOG_WARN PB_LOG(kWarn)
#define PB_LOG_ERROR PB_LOG(kError)
