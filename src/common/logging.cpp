#include "common/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace phonebit {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("PHONEBIT_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(initial_level())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load()); }

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level));
}

namespace detail {

void log_line(LogLevel level, const std::string& msg) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::cerr << "[phonebit:" << level_name(level) << "] " << msg << "\n";
}

}  // namespace detail
}  // namespace phonebit
