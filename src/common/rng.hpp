// PhoneBit — deterministic random number generation.
//
// All synthetic weights, images and datasets in the reproduction are seeded,
// so every test, example and benchmark is bit-reproducible run to run.
#pragma once

#include <cstdint>
#include <limits>

namespace phonebit {

/// xoshiro256** — fast, high-quality, deterministic PRNG.
/// Satisfies UniformRandomBitGenerator so it plugs into <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via splitmix64 so nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 random bits.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform float in [0, 1).
  float uniform() noexcept {
    return static_cast<float>((*this)() >> 40) * (1.0f / 16777216.0f);
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Approximately standard normal float (sum of uniforms, CLT; adequate for
  /// synthetic weight initialization and fully deterministic).
  float normal() noexcept {
    float s = 0.0f;
    for (int i = 0; i < 12; ++i) s += uniform();
    return s - 6.0f;
  }

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t below(std::uint64_t n) noexcept { return (*this)() % n; }

  /// Random sign: +1 or -1.
  float sign() noexcept { return ((*this)() & 1) != 0 ? 1.0f : -1.0f; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace phonebit
