// PhoneBit — buffer-allocation accounting.
//
// The zero-allocation contract of compiled forwards (DESIGN.md §7) is
// asserted through this counter: every owning tensor-buffer allocation
// (Tensor, PackedTensor) and every scratch-arena pool growth bumps it, so a
// test can snapshot the count, run warm forwards, and prove the hot path
// allocated nothing. The counter tracks *buffer* (device-model) memory —
// the simulated runtime's host-side profiling log is not device memory and
// is not counted.
#pragma once

#include <atomic>
#include <cstdint>

namespace phonebit {

/// Process-wide count of owning buffer allocations (monotone).
inline std::atomic<std::int64_t>& buffer_alloc_counter() noexcept {
  static std::atomic<std::int64_t> count{0};
  return count;
}

/// Records one owning buffer allocation.
inline void count_buffer_alloc() noexcept {
  buffer_alloc_counter().fetch_add(1, std::memory_order_relaxed);
}

/// Current allocation count; diff two snapshots around a code region to
/// count its buffer allocations.
inline std::int64_t buffer_alloc_count() noexcept {
  return buffer_alloc_counter().load(std::memory_order_relaxed);
}

}  // namespace phonebit
