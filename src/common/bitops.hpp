// PhoneBit — scalar bit-manipulation helpers used by the packing kernels.
//
// These mirror the OpenCL built-ins the paper's kernels rely on (popcount on
// integer scalars/vectors); the vector forms live in src/simd.
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

namespace phonebit {

/// Number of set bits in an unsigned integer (OpenCL `popcount`).
template <typename T>
  requires std::is_unsigned_v<T>
constexpr int popcount(T v) noexcept {
  return std::popcount(v);
}

/// Rounds `n` up to the next multiple of `m` (m > 0).
constexpr std::int64_t round_up(std::int64_t n, std::int64_t m) noexcept {
  return ((n + m - 1) / m) * m;
}

/// Ceiling division for non-negative integers.
constexpr std::int64_t ceil_div(std::int64_t n, std::int64_t m) noexcept {
  return (n + m - 1) / m;
}

/// Sets bit `i` (0 = LSB) of `word` to `bit`.
template <typename T>
  requires std::is_unsigned_v<T>
constexpr T set_bit(T word, int i, bool bit) noexcept {
  const T mask = static_cast<T>(T{1} << i);
  return bit ? static_cast<T>(word | mask) : static_cast<T>(word & ~mask);
}

/// Reads bit `i` (0 = LSB) of `word`.
template <typename T>
  requires std::is_unsigned_v<T>
constexpr bool get_bit(T word, int i) noexcept {
  return ((word >> i) & T{1}) != 0;
}

/// Mask with the low `n` bits set (n in [0, bits-of-T]).
template <typename T>
  requires std::is_unsigned_v<T>
constexpr T low_mask(int n) noexcept {
  if (n <= 0) return T{0};
  if (n >= static_cast<int>(sizeof(T) * 8)) return static_cast<T>(~T{0});
  return static_cast<T>((T{1} << n) - T{1});
}

}  // namespace phonebit
