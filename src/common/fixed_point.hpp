// PhoneBit — 8-bit fixed-point helpers.
//
// The paper's first convolution layer consumes 8-bit integer images
// (Section III-B / Eqn 2) and the TFLite-like baseline uses affine int8
// quantization; both share these conversions.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace phonebit {

/// Affine quantization parameters mapping float x to uint8 q:
///   q = clamp(round(x / scale) + zero_point, 0, 255).
struct QuantParams {
  float scale = 1.0f / 255.0f;
  int zero_point = 0;

  /// Chooses scale/zero-point covering [lo, hi] (lo <= 0 <= hi enforced by
  /// widening the range, as TFLite does so that zero is exactly encodable).
  static QuantParams for_range(float lo, float hi) {
    lo = std::min(lo, 0.0f);
    hi = std::max(hi, 0.0f);
    if (hi - lo < 1e-12f) hi = lo + 1.0f;
    QuantParams p;
    p.scale = (hi - lo) / 255.0f;
    p.zero_point = static_cast<int>(std::lround(-lo / p.scale));
    p.zero_point = std::clamp(p.zero_point, 0, 255);
    return p;
  }

  /// Float -> uint8.
  std::uint8_t quantize(float x) const {
    const long q = std::lround(x / scale) + zero_point;
    return static_cast<std::uint8_t>(std::clamp<long>(q, 0, 255));
  }

  /// uint8 -> float.
  float dequantize(std::uint8_t q) const {
    return (static_cast<int>(q) - zero_point) * scale;
  }
};

/// Converts a float in [0,1] to the 8-bit integer pixel domain used by the
/// bit-plane first layer (Eqn 2).
inline std::uint8_t to_u8_pixel(float x) {
  const long q = std::lround(x * 255.0f);
  return static_cast<std::uint8_t>(std::clamp<long>(q, 0, 255));
}

}  // namespace phonebit
