// PhoneBit — fixed-size thread pool used by the oclsim device to execute
// NDRange kernel dispatches across simulated compute units.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace phonebit {

/// A simple work-stealing-free thread pool: tasks are pushed to a shared
/// queue; completion is tracked per caller (parallel_for's per-call group).
/// Sized once at construction (the oclsim device sizes it to its
/// compute-unit count).
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution. Callers that need to join
  /// their tasks track completion themselves (see parallel_for's per-call
  /// group) — the pool keeps no global in-flight count, so independent
  /// callers never serialize on each other's completion.
  void submit(std::function<void()> task);

  /// Number of worker threads.
  int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// Splits [0, n) into roughly equal chunks, runs `fn(begin, end)` on the
  /// pool, and waits for completion. Runs inline when n is small.
  ///
  /// Thread-safe and group-local: concurrent parallel_for calls (e.g. two
  /// execution sessions dispatching kernels on one device) each wait only on
  /// their own chunks, not on the global in-flight count — so one session's
  /// dispatch never blocks on another session's queue depth.
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  bool stop_ = false;
};

}  // namespace phonebit
