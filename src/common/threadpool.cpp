#include "common/threadpool.hpp"

#include <algorithm>
#include <memory>

#include "common/error.hpp"

namespace phonebit {

ThreadPool::ThreadPool(int num_threads) {
  PB_CHECK(num_threads >= 1, "thread pool needs >= 1 thread, got " << num_threads);
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::parallel_for(
    std::int64_t n, const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (n <= 0) return;
  const std::int64_t workers = size();
  // Small ranges are not worth the dispatch overhead.
  if (n < 2 * workers || workers == 1) {
    fn(0, n);
    return;
  }
  // Over-decompose ~4 chunks per worker so one slow chunk rides alongside
  // the rest instead of serializing the whole dispatch (with exactly one
  // chunk per worker, the dispatch lasts as long as its unluckiest chunk).
  // The minimum chunk size keeps queue traffic bounded for small ranges.
  constexpr std::int64_t kChunksPerWorker = 4;
  constexpr std::int64_t kMinChunk = 16;
  // The floor never exceeds one chunk per worker, so small ranges that pass
  // the inline threshold above still fan out across the whole pool.
  const std::int64_t per_worker = (n + workers - 1) / workers;
  const std::int64_t chunk = std::max(
      std::min(kMinChunk, per_worker),
      (n + workers * kChunksPerWorker - 1) / (workers * kChunksPerWorker));
  // Per-call completion group: the caller waits for *its* chunks only.
  // Waiting on the pool-global in-flight count would couple independent
  // callers — session A's dispatch stalling until session B's queue drains.
  struct Group {
    std::mutex mu;
    std::condition_variable cv;
    std::int64_t pending = 0;
  };
  auto group = std::make_shared<Group>();
  group->pending = (n + chunk - 1) / chunk;
  for (std::int64_t begin = 0; begin < n; begin += chunk) {
    const std::int64_t end = std::min(begin + chunk, n);
    submit([group, &fn, begin, end] {
      fn(begin, end);
      std::lock_guard<std::mutex> lock(group->mu);
      if (--group->pending == 0) group->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(group->mu);
  group->cv.wait(lock, [&group] { return group->pending == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace phonebit
