#include "baselines/bnn_reference.hpp"

#include "baselines/float_ops.hpp"
#include "core/binarize.hpp"
#include "core/bn_fold.hpp"

namespace phonebit::baselines {

using core::Activation;
using core::ConvLayerSpec;
using core::DenseLayerSpec;
using core::FloatModel;
using core::PoolLayerSpec;

namespace {

/// Elementwise sign of a tensor, as ±1 floats (weight binarization).
FloatTensor sign_of(const FloatTensor& t) {
  FloatTensor out(t.shape(), t.layout());
  const Shape& s = t.shape();
  for (std::int64_t n = 0; n < s.n; ++n)
    for (std::int64_t h = 0; h < s.h; ++h)
      for (std::int64_t w = 0; w < s.w; ++w)
        for (std::int64_t c = 0; c < s.c; ++c)
          out(n, h, w, c) = t(n, h, w, c) >= 0.0f ? 1.0f : -1.0f;
  return out;
}

/// Folded BN + Eqn 8 binarization over channels, emitting ±1 floats.
FloatTensor fold_and_binarize(const FloatTensor& x1,
                              const std::vector<core::BatchNormParams>& bn,
                              const std::vector<float>& bias) {
  const auto folded = core::fold_batch_norm(bn, bias);
  FloatTensor out(x1.shape(), x1.layout());
  const Shape& s = x1.shape();
  for (std::int64_t n = 0; n < s.n; ++n)
    for (std::int64_t h = 0; h < s.h; ++h)
      for (std::int64_t w = 0; w < s.w; ++w)
        for (std::int64_t c = 0; c < s.c; ++c) {
          const std::size_t ci = static_cast<std::size_t>(c);
          out(n, h, w, c) = core::binarize_eqn8(x1(n, h, w, c), folded.xi[ci],
                                                folded.gamma_pos[ci] != 0)
                                ? 1.0f
                                : -1.0f;
        }
  return out;
}

std::vector<core::BatchNormParams> bn_or_identity(
    const std::vector<core::BatchNormParams>& bn, std::int64_t channels) {
  if (!bn.empty()) return bn;
  return std::vector<core::BatchNormParams>(
      static_cast<std::size_t>(channels),
      core::BatchNormParams{1.0f, 0.0f, 0.0f, 1.0f});
}

}  // namespace

BnnReferenceResult bnn_reference_forward(const FloatModel& model,
                                         const U8Tensor& image) {
  const auto& spec = model.spec;
  PB_CHECK(model.weights.size() == spec.layers.size(),
           "bnn_reference: malformed model");

  // Last parameterized layer stays full precision (mirrors the converter).
  std::size_t last_param = spec.layers.size();
  for (std::size_t i = spec.layers.size(); i-- > 0;) {
    if (!std::holds_alternative<PoolLayerSpec>(spec.layers[i])) {
      last_param = i;
      break;
    }
  }

  BnnReferenceResult result;
  FloatTensor x = u8_to_float(image);  // 0..255 integer pixel domain
  bool first_conv_seen = false;

  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    if (const auto* c = std::get_if<ConvLayerSpec>(&spec.layers[i])) {
      const auto* w = std::get_if<core::ConvWeights>(&model.weights[i]);
      PB_CHECK(w != nullptr, c->name << ": missing weights");
      if (i == last_param) {
        x = conv2d_ref(x, w->w, w->bias, c->geom, 0.0f);
      } else if (!first_conv_seen) {
        first_conv_seen = true;
        // First layer: integer input, ±1 weights, zero padding (Eqn 2's
        // bit-plane decomposition computes exactly this sum).
        const FloatTensor x1 = conv2d_ref(x, sign_of(w->w), {}, c->geom, 0.0f);
        x = fold_and_binarize(x1, bn_or_identity(w->bn, c->c_out), w->bias);
      } else {
        // Binary conv: ±1 input, ±1 weights, -1 padding.
        const FloatTensor x1 =
            conv2d_ref(x, sign_of(w->w), {}, c->geom, -1.0f);
        x = fold_and_binarize(x1, bn_or_identity(w->bn, c->c_out), w->bias);
      }
    } else if (const auto* p = std::get_if<PoolLayerSpec>(&spec.layers[i])) {
      x = maxpool_ref(x, p->geom, -1.0f);
    } else if (const auto* d = std::get_if<DenseLayerSpec>(&spec.layers[i])) {
      const auto* w = std::get_if<core::DenseWeights>(&model.weights[i]);
      PB_CHECK(w != nullptr, d->name << ": missing weights");
      if (i == last_param) {
        x = dense_ref(x, w->w, w->bias);
      } else {
        const FloatTensor x1 = dense_ref(x, sign_of(w->w), {});
        x = fold_and_binarize(x1, bn_or_identity(w->bn, d->out_features),
                              w->bias);
      }
    }
    result.activations.push_back(x);
  }
  result.output = x;
  return result;
}

}  // namespace phonebit::baselines
