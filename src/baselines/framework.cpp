#include "baselines/framework.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "baselines/float_ops.hpp"
#include "common/fixed_point.hpp"

namespace phonebit::baselines {

using core::Activation;
using core::ConvLayerSpec;
using core::DenseLayerSpec;
using core::FloatModel;
using core::PoolLayerSpec;
using oclsim::ExecUnit;
using oclsim::KernelCost;
using oclsim::NDRange;
using oclsim::WorkItem;

namespace {

double cpu_eff(const FrameworkTraits& t, const oclsim::DeviceProfile& p) {
  if (!t.java_style) return t.cpu_alu_eff;
  // Single-threaded scalar runtime: undo the cores * lanes in the peak.
  return t.cpu_alu_eff /
         (static_cast<double>(p.cpu_cores) * p.cpu_simd_fp32_lanes);
}

double unit_eff(const FrameworkTraits& t, const oclsim::DeviceProfile& p) {
  return t.unit == ExecUnit::kGpu ? t.gpu_alu_eff : cpu_eff(t, p);
}

/// Bytes a tensor of `elems` elements moves under this framework's
/// precision.
double tensor_bytes(const FrameworkTraits& t, double elems) {
  return elems * (t.quantized_int8 ? 1.0 : 4.0);
}

struct RunState {
  oclsim::CommandQueue queue;
  const FrameworkTraits& traits;
  double eff;
  RunState(oclsim::Device& dev, const FrameworkTraits& t)
      : queue(dev, t.unit), traits(t),
        eff(unit_eff(t, dev.profile())) {}
};

KernelCost base_cost(const RunState& st) {
  KernelCost c;
  c.coalescing = st.traits.coalescing;
  c.alu_efficiency = st.eff;
  c.overlap_mem = st.traits.overlap_mem;
  c.int8_ops = st.traits.quantized_int8;
  return c;
}

/// Parallel direct convolution (+ fused bias/activation when the framework
/// fuses them). Weights stay float even on the int8 path — the quantization
/// arithmetic is modeled in the cost and checked separately by the
/// quantization tests, keeping this executor a single source of numerics.
FloatTensor conv_forward(RunState& st, const FloatTensor& in,
                         const ConvLayerSpec& spec,
                         const core::ConvWeights& w) {
  const Shape& is = in.shape();
  const std::int64_t oh = spec.geom.out_h(is.h);
  const std::int64_t ow = spec.geom.out_w(is.w);
  FloatTensor out(Shape{is.n, oh, ow, spec.c_out}, in.layout());

  const double outputs = static_cast<double>(is.n) * oh * ow * spec.c_out;
  const double macs =
      outputs * static_cast<double>(spec.geom.kernel_h * spec.geom.kernel_w *
                                    is.c);
  KernelCost cost = base_cost(st);
  cost.scalar_ops = macs * (st.traits.quantized_int8 ? 0.25 : 1.0);
  cost.bytes_read = tensor_bytes(st.traits, static_cast<double>(is.elems())) +
                    tensor_bytes(st.traits,
                                 static_cast<double>(w.w.shape().elems()));
  cost.bytes_written = tensor_bytes(st.traits, outputs);
  if (st.traits.fuse_bias_act) cost.scalar_ops += outputs * 2.0;

  const bool fuse = st.traits.fuse_bias_act;
  const Activation act = spec.act;
  st.queue.enqueue(
      spec.name + ".conv", NDRange{ow, oh, is.n * spec.c_out}, cost,
      [&, oh, ow, fuse, act](const WorkItem& it) {
        const std::int64_t n = it.z / spec.c_out;
        const std::int64_t co = it.z % spec.c_out;
        float acc = 0.0f;
        for (std::int64_t ky = 0; ky < spec.geom.kernel_h; ++ky) {
          const std::int64_t iy = it.y * spec.geom.stride_h - spec.geom.pad_h + ky;
          if (iy < 0 || iy >= is.h) continue;
          for (std::int64_t kx = 0; kx < spec.geom.kernel_w; ++kx) {
            const std::int64_t ix =
                it.x * spec.geom.stride_w - spec.geom.pad_w + kx;
            if (ix < 0 || ix >= is.w) continue;
            for (std::int64_t c = 0; c < is.c; ++c) {
              acc += in(n, iy, ix, c) * w.w(co, ky, kx, c);
            }
          }
        }
        if (fuse) {
          acc += w.bias.empty() ? 0.0f : w.bias[static_cast<std::size_t>(co)];
        }
        out(n, it.y, it.x, co) = acc;
      });

  if (!fuse && !w.bias.empty()) {
    // CNNdroid-style separate bias kernel.
    KernelCost bcost = base_cost(st);
    bcost.scalar_ops = outputs;
    bcost.bytes_read = tensor_bytes(st.traits, outputs);
    bcost.bytes_written = tensor_bytes(st.traits, outputs);
    st.queue.enqueue(spec.name + ".bias", NDRange{ow, oh, is.n * spec.c_out},
                     bcost, [&](const WorkItem& it) {
                       const std::int64_t n = it.z / spec.c_out;
                       const std::int64_t co = it.z % spec.c_out;
                       out(n, it.y, it.x, co) +=
                           w.bias[static_cast<std::size_t>(co)];
                     });
  }
  return out;
}

FloatTensor pointwise(RunState& st, const std::string& name,
                      const FloatTensor& in, double ops_per_elem,
                      const std::function<float(std::int64_t c, float)>& fn) {
  const Shape& is = in.shape();
  FloatTensor out(is, in.layout());
  KernelCost cost = base_cost(st);
  cost.scalar_ops = static_cast<double>(is.elems()) * ops_per_elem;
  cost.bytes_read = tensor_bytes(st.traits, static_cast<double>(is.elems()));
  cost.bytes_written = cost.bytes_read;
  st.queue.enqueue(name, NDRange{is.w, is.h, is.n}, cost,
                   [&](const WorkItem& it) {
                     for (std::int64_t c = 0; c < is.c; ++c) {
                       out(it.z, it.y, it.x, c) =
                           fn(c, in(it.z, it.y, it.x, c));
                     }
                   });
  return out;
}

}  // namespace

FrameworkResult FloatFramework::run(oclsim::Device& device,
                                    const FloatModel& model,
                                    const U8Tensor& image) const {
  const auto& spec = model.spec;
  PB_CHECK(model.weights.size() == spec.layers.size(),
           name_ << ": malformed model");

  // --- gate 1: app memory budget (weights held `weight_copies` times) ---
  if (traits_.app_budget_mb > 0) {
    const double weight_bytes =
        static_cast<double>(spec.float_param_bytes()) * traits_.weight_copies;
    if (weight_bytes > static_cast<double>(traits_.app_budget_mb) * 1024 *
                           1024) {
      throw OutOfMemoryError(
          name_ + ": model weights (x" + std::to_string(traits_.weight_copies) +
          " resident copies) exceed the app memory budget");
    }
  }

  // --- gates 2/3: GPU delegate op support and buffer limits ---
  if (traits_.reject_lrn || traits_.max_buffer_bytes > 0) {
    for (std::size_t i = 0; i < spec.layers.size(); ++i) {
      if (const auto* c = std::get_if<ConvLayerSpec>(&spec.layers[i])) {
        if (traits_.reject_lrn && c->lrn_after) {
          throw UnsupportedOperationError(
              name_ + ": graph contains LRN, unsupported by the GPU delegate");
        }
      }
      if (traits_.max_buffer_bytes > 0) {
        std::int64_t bytes = 0;
        if (const auto* w = std::get_if<core::ConvWeights>(&model.weights[i])) {
          bytes = w->w.bytes();
        } else if (const auto* w =
                       std::get_if<core::DenseWeights>(&model.weights[i])) {
          bytes = w->w.bytes();
        }
        if (bytes > traits_.max_buffer_bytes) {
          throw UnsupportedOperationError(
              name_ + ": tensor buffer exceeds the delegate allocation limit");
        }
      }
    }
  }

  RunState st(device, traits_);

  // Input image -> float in the framework's layout, 0..255 pixel domain.
  FloatTensor x = u8_to_float(image);
  if (traits_.layout != Layout::kNHWC) x = x.to_layout(traits_.layout);

  FrameworkResult result;
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    const std::size_t events_before = st.queue.event_mark();
    const auto& layer = spec.layers[i];
    std::string lname;

    if (const auto* c = std::get_if<ConvLayerSpec>(&layer)) {
      lname = c->name;
      const auto* w = std::get_if<core::ConvWeights>(&model.weights[i]);
      PB_CHECK(w != nullptr, c->name << ": missing weights");
      x = conv_forward(st, x, *c, *w);
      if (c->batch_norm && !w->bn.empty()) {
        const auto& bn = w->bn;
        x = pointwise(st, c->name + ".bn", x, 4.0,
                      [&bn](std::int64_t ch, float v) {
                        const auto& p = bn[static_cast<std::size_t>(ch)];
                        return p.gamma * (v - p.mu) / p.sigma + p.beta;
                      });
      }
      if (c->act != Activation::kNone) {
        const float alpha = c->act == Activation::kLeakyRelu ? 0.1f : 0.0f;
        x = pointwise(st, c->name + ".act", x, 1.0,
                      [alpha](std::int64_t, float v) {
                        return v >= 0.0f ? v : alpha * v;
                      });
      }
      if (c->lrn_after) {
        // LRN stays a reference kernel (AlexNet only, cheap).
        KernelCost cost = base_cost(st);
        cost.scalar_ops = static_cast<double>(x.elems()) * 12.0;
        cost.bytes_read = tensor_bytes(traits_, static_cast<double>(x.elems()));
        cost.bytes_written = cost.bytes_read;
        FloatTensor y;
        st.queue.enqueue_chunked(c->name + ".lrn", NDRange{1, 1, 1}, cost,
                                 [&](std::int64_t, std::int64_t) {
                                   y = lrn_ref(x);
                                 });
        x = std::move(y);
      }
    } else if (const auto* p = std::get_if<PoolLayerSpec>(&layer)) {
      lname = p->name;
      const Shape& is = x.shape();
      const std::int64_t oh = p->geom.out_dim(is.h);
      const std::int64_t ow = p->geom.out_dim(is.w);
      FloatTensor out(Shape{is.n, oh, ow, is.c}, x.layout());
      KernelCost cost = base_cost(st);
      const double owc = static_cast<double>(is.n) * oh * ow * is.c;
      cost.scalar_ops = owc * static_cast<double>(p->geom.size * p->geom.size);
      cost.bytes_read = tensor_bytes(traits_, static_cast<double>(is.elems()));
      cost.bytes_written = tensor_bytes(traits_, owc);
      const core::PoolGeometry g = p->geom;
      st.queue.enqueue(p->name + ".maxpool", NDRange{ow, oh, is.n}, cost,
                       [&, g](const WorkItem& it) {
                         for (std::int64_t c = 0; c < is.c; ++c) {
                           float best = -3.4e38f;
                           for (std::int64_t ky = 0; ky < g.size; ++ky) {
                             const std::int64_t iy =
                                 it.y * g.stride - g.lead_pad() + ky;
                             if (iy < 0 || iy >= is.h) continue;
                             for (std::int64_t kx = 0; kx < g.size; ++kx) {
                               const std::int64_t ix =
                                   it.x * g.stride - g.lead_pad() + kx;
                               if (ix < 0 || ix >= is.w) continue;
                               best = std::max(best, x(it.z, iy, ix, c));
                             }
                           }
                           out(it.z, it.y, it.x, c) = best;
                         }
                       });
      x = std::move(out);
    } else if (const auto* d = std::get_if<DenseLayerSpec>(&layer)) {
      lname = d->name;
      const auto* w = std::get_if<core::DenseWeights>(&model.weights[i]);
      PB_CHECK(w != nullptr, d->name << ": missing weights");
      // Canonical NHWC flatten so all engines agree on feature order.
      const FloatTensor flat_src = x.to_layout(Layout::kNHWC);
      const Shape& is = flat_src.shape();
      const std::int64_t features = is.h * is.w * is.c;
      PB_CHECK(features == d->in_features, d->name << ": feature mismatch");
      FloatTensor out(Shape{is.n, 1, 1, d->out_features}, Layout::kNHWC);
      KernelCost cost = base_cost(st);
      const double macs =
          static_cast<double>(is.n) * d->out_features * features;
      cost.scalar_ops = macs * (traits_.quantized_int8 ? 0.25 : 1.0);
      cost.bytes_read =
          tensor_bytes(traits_, static_cast<double>(is.elems())) +
          tensor_bytes(traits_, static_cast<double>(w->w.shape().elems()));
      cost.bytes_written =
          tensor_bytes(traits_, static_cast<double>(is.n) * d->out_features);
      st.queue.enqueue(
          d->name + ".dense", NDRange{d->out_features, is.n, 1}, cost,
          [&, features](const WorkItem& it) {
            const float* px = &flat_src(it.y, 0, 0, 0);
            const float* wt = &w->w(it.x, 0, 0, 0);
            float acc =
                w->bias.empty() ? 0.0f : w->bias[static_cast<std::size_t>(it.x)];
            for (std::int64_t f = 0; f < features; ++f) acc += px[f] * wt[f];
            out(it.y, 0, 0, it.x) = acc;
          });
      if (d->batch_norm && !w->bn.empty()) {
        const auto& bn = w->bn;
        x = std::move(out);
        x = pointwise(st, d->name + ".bn", x, 4.0,
                      [&bn](std::int64_t ch, float v) {
                        const auto& p = bn[static_cast<std::size_t>(ch)];
                        return p.gamma * (v - p.mu) / p.sigma + p.beta;
                      });
      } else {
        x = std::move(out);
      }
      if (d->act != Activation::kNone) {
        const float alpha = d->act == Activation::kLeakyRelu ? 0.1f : 0.0f;
        x = pointwise(st, d->name + ".act", x, 1.0,
                      [alpha](std::int64_t, float v) {
                        return v >= 0.0f ? v : alpha * v;
                      });
      }
    }

    const oclsim::EventSlice s = st.queue.slice_events(events_before);
    core::LayerReport r;
    r.name = lname;
    r.modeled_ms = s.modeled_ms;
    r.host_ms = s.host_ms;
    r.launches = s.launches;
    r.cost = s.cost;
    result.layers.push_back(std::move(r));
  }

  result.modeled_ms = st.queue.total_modeled_ms();
  result.host_ms = st.queue.total_host_ms();
  result.output = x.to_layout(Layout::kNHWC);
  return result;
}

// --- framework roster (calibration notes in EXPERIMENTS.md) -----------------

FloatFramework FloatFramework::cnndroid_cpu() {
  FrameworkTraits t;
  t.unit = ExecUnit::kCpu;
  t.layout = Layout::kNCHW;
  t.cpu_alu_eff = 0.07;   // Java loop, single thread, no SIMD
  t.java_style = true;
  t.fuse_bias_act = false;
  t.overlap_mem = false;
  t.coalescing = 0.35;
  t.app_budget_mb = 1024;
  t.weight_copies = 2.0;  // Java-heap copy + RenderScript allocation
  return FloatFramework("CNNdroid-CPU", t);
}

FloatFramework FloatFramework::cnndroid_gpu() {
  FrameworkTraits t;
  t.unit = ExecUnit::kGpu;
  t.layout = Layout::kNCHW;
  t.gpu_alu_eff = 0.02;   // RenderScript occupancy on Adreno
  t.fuse_bias_act = false;
  t.overlap_mem = false;
  t.coalescing = 0.25;
  t.app_budget_mb = 1024;
  t.weight_copies = 2.0;
  return FloatFramework("CNNdroid-GPU", t);
}

FloatFramework FloatFramework::tflite_cpu() {
  FrameworkTraits t;
  t.unit = ExecUnit::kCpu;
  t.layout = Layout::kNHWC;
  t.cpu_alu_eff = 0.16;   // NEON float kernels (2019-era TFLite)
  t.fuse_bias_act = true;
  t.overlap_mem = true;
  t.coalescing = 0.6;
  return FloatFramework("TFLite-CPU", t);
}

FloatFramework FloatFramework::tflite_gpu() {
  FrameworkTraits t;
  t.unit = ExecUnit::kGpu;
  t.layout = Layout::kNHWC;
  t.gpu_alu_eff = 0.036;  // GL compute delegate
  t.fuse_bias_act = true;
  t.overlap_mem = true;
  t.coalescing = 0.7;
  t.reject_lrn = true;
  t.max_buffer_bytes = 256ll * 1024 * 1024;
  return FloatFramework("TFLite-GPU", t);
}

FloatFramework FloatFramework::tflite_quant() {
  FrameworkTraits t;
  t.unit = ExecUnit::kCpu;
  t.layout = Layout::kNHWC;
  t.cpu_alu_eff = 0.14;   // int8 NEON kernels
  t.quantized_int8 = true;
  t.fuse_bias_act = true;
  t.overlap_mem = true;
  t.coalescing = 0.6;
  return FloatFramework("TFLite-Quant", t);
}

}  // namespace phonebit::baselines
