#include "baselines/float_ops.hpp"

#include <algorithm>
#include <cmath>

namespace phonebit::baselines {

FloatTensor conv2d_ref(const FloatTensor& in, const FloatTensor& weights,
                       const std::vector<float>& bias,
                       const ConvGeometry& geom, float pad_value) {
  const Shape& is = in.shape();
  const Shape& ws = weights.shape();
  PB_CHECK(ws.c == is.c, "conv2d_ref: channel mismatch " << ws.c << " vs "
                                                         << is.c);
  PB_CHECK(bias.empty() || static_cast<std::int64_t>(bias.size()) == ws.n,
           "conv2d_ref: bias size mismatch");
  const std::int64_t oh = geom.out_h(is.h);
  const std::int64_t ow = geom.out_w(is.w);
  FloatTensor out(Shape{is.n, oh, ow, ws.n}, in.layout());
  for (std::int64_t n = 0; n < is.n; ++n)
    for (std::int64_t oy = 0; oy < oh; ++oy)
      for (std::int64_t ox = 0; ox < ow; ++ox)
        for (std::int64_t co = 0; co < ws.n; ++co) {
          float acc = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(co)];
          for (std::int64_t ky = 0; ky < geom.kernel_h; ++ky) {
            const std::int64_t iy = oy * geom.stride_h - geom.pad_h + ky;
            for (std::int64_t kx = 0; kx < geom.kernel_w; ++kx) {
              const std::int64_t ix = ox * geom.stride_w - geom.pad_w + kx;
              const bool inside =
                  iy >= 0 && iy < is.h && ix >= 0 && ix < is.w;
              for (std::int64_t c = 0; c < is.c; ++c) {
                const float v = inside ? in(n, iy, ix, c) : pad_value;
                acc += v * weights(co, ky, kx, c);
              }
            }
          }
          out(n, oy, ox, co) = acc;
        }
  return out;
}

FloatTensor maxpool_ref(const FloatTensor& in, const core::PoolGeometry& geom,
                        float lowest) {
  const Shape& is = in.shape();
  const std::int64_t oh = geom.out_dim(is.h);
  const std::int64_t ow = geom.out_dim(is.w);
  FloatTensor out(Shape{is.n, oh, ow, is.c}, in.layout());
  for (std::int64_t n = 0; n < is.n; ++n)
    for (std::int64_t oy = 0; oy < oh; ++oy)
      for (std::int64_t ox = 0; ox < ow; ++ox)
        for (std::int64_t c = 0; c < is.c; ++c) {
          float best = lowest;
          for (std::int64_t ky = 0; ky < geom.size; ++ky) {
            const std::int64_t iy = oy * geom.stride - geom.lead_pad() + ky;
            if (iy < 0 || iy >= is.h) continue;
            for (std::int64_t kx = 0; kx < geom.size; ++kx) {
              const std::int64_t ix = ox * geom.stride - geom.lead_pad() + kx;
              if (ix < 0 || ix >= is.w) continue;
              best = std::max(best, in(n, iy, ix, c));
            }
          }
          out(n, oy, ox, c) = best;
        }
  return out;
}

FloatTensor dense_ref(const FloatTensor& in, const FloatTensor& weights,
                      const std::vector<float>& bias) {
  const Shape& is = in.shape();
  const Shape& ws = weights.shape();
  const std::int64_t features = is.h * is.w * is.c;
  PB_CHECK(ws.c == features, "dense_ref: feature mismatch " << ws.c << " vs "
                                                            << features);
  FloatTensor out(Shape{is.n, 1, 1, ws.n}, Layout::kNHWC);
  for (std::int64_t n = 0; n < is.n; ++n)
    for (std::int64_t u = 0; u < ws.n; ++u) {
      float acc = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(u)];
      std::int64_t f = 0;
      for (std::int64_t h = 0; h < is.h; ++h)
        for (std::int64_t w = 0; w < is.w; ++w)
          for (std::int64_t c = 0; c < is.c; ++c, ++f)
            acc += in(n, h, w, c) * weights(u, 0, 0, f);
      out(n, 0, 0, u) = acc;
    }
  return out;
}

FloatTensor batch_norm_ref(const FloatTensor& in,
                           const std::vector<core::BatchNormParams>& bn) {
  const Shape& is = in.shape();
  PB_CHECK(static_cast<std::int64_t>(bn.size()) == is.c,
           "batch_norm_ref: channel mismatch");
  FloatTensor out(is, in.layout());
  for (std::int64_t n = 0; n < is.n; ++n)
    for (std::int64_t h = 0; h < is.h; ++h)
      for (std::int64_t w = 0; w < is.w; ++w)
        for (std::int64_t c = 0; c < is.c; ++c) {
          const auto& p = bn[static_cast<std::size_t>(c)];
          out(n, h, w, c) = p.gamma * (in(n, h, w, c) - p.mu) / p.sigma +
                            p.beta;
        }
  return out;
}

FloatTensor activate_ref(const FloatTensor& in, core::Activation act) {
  if (act == core::Activation::kNone) return in;
  FloatTensor out(in.shape(), in.layout());
  const float alpha = act == core::Activation::kLeakyRelu ? 0.1f : 0.0f;
  const Shape& is = in.shape();
  for (std::int64_t n = 0; n < is.n; ++n)
    for (std::int64_t h = 0; h < is.h; ++h)
      for (std::int64_t w = 0; w < is.w; ++w)
        for (std::int64_t c = 0; c < is.c; ++c) {
          const float v = in(n, h, w, c);
          out(n, h, w, c) = v >= 0.0f ? v : alpha * v;
        }
  return out;
}

FloatTensor lrn_ref(const FloatTensor& in) {
  constexpr std::int64_t kRadius = 2;  // n = 5
  constexpr float kK = 2.0f, kAlpha = 1e-4f, kBeta = 0.75f;
  const Shape& is = in.shape();
  FloatTensor out(is, in.layout());
  for (std::int64_t n = 0; n < is.n; ++n)
    for (std::int64_t h = 0; h < is.h; ++h)
      for (std::int64_t w = 0; w < is.w; ++w)
        for (std::int64_t c = 0; c < is.c; ++c) {
          float sq = 0.0f;
          const std::int64_t lo = std::max<std::int64_t>(0, c - kRadius);
          const std::int64_t hi = std::min<std::int64_t>(is.c - 1, c + kRadius);
          for (std::int64_t j = lo; j <= hi; ++j) {
            const float v = in(n, h, w, j);
            sq += v * v;
          }
          out(n, h, w, c) =
              in(n, h, w, c) / std::pow(kK + kAlpha / 5.0f * sq, kBeta);
        }
  return out;
}

FloatTensor u8_to_float(const U8Tensor& in) {
  FloatTensor out(in.shape(), in.layout());
  const Shape& is = in.shape();
  for (std::int64_t n = 0; n < is.n; ++n)
    for (std::int64_t h = 0; h < is.h; ++h)
      for (std::int64_t w = 0; w < is.w; ++w)
        for (std::int64_t c = 0; c < is.c; ++c)
          out(n, h, w, c) = static_cast<float>(in(n, h, w, c));
  return out;
}

}  // namespace phonebit::baselines
