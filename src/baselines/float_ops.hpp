// PhoneBit — reference full-precision operators.
//
// Plain, obviously-correct implementations of every layer the benchmark
// networks use. They serve two roles: (1) the compute bodies of the
// CNNdroid-like and TFLite-like baseline engines, and (2) the ground truth
// the test suite checks the binary engine against.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bn_fold.hpp"
#include "core/float_model.hpp"
#include "core/pooling.hpp"
#include "tensor/tensor.hpp"

namespace phonebit::baselines {

/// Direct convolution with zero padding (pad_value overridable: the binary
/// reference pads with -1, the ±1 domain's representation of "nothing").
FloatTensor conv2d_ref(const FloatTensor& in, const FloatTensor& weights,
                       const std::vector<float>& bias,
                       const ConvGeometry& geom, float pad_value = 0.0f);

/// Max pooling; `lowest` is the identity element used for padded taps.
FloatTensor maxpool_ref(const FloatTensor& in, const core::PoolGeometry& geom,
                        float lowest = -3.4e38f);

/// Fully connected: weights (units,1,1,features); input flattened in
/// canonical NHWC order regardless of the tensor's memory layout.
FloatTensor dense_ref(const FloatTensor& in, const FloatTensor& weights,
                      const std::vector<float>& bias);

/// Per-channel batch normalization (Eqn 4; sigma = std).
FloatTensor batch_norm_ref(const FloatTensor& in,
                           const std::vector<core::BatchNormParams>& bn);

/// ReLU / leaky-ReLU (alpha = 0.1, the darknet constant).
FloatTensor activate_ref(const FloatTensor& in, core::Activation act);

/// AlexNet cross-channel local response normalization
/// (n=5, k=2, alpha=1e-4, beta=0.75).
FloatTensor lrn_ref(const FloatTensor& in);

/// uint8 image -> float tensor in the 0..255 pixel domain (matching the
/// integer domain the bit-plane first layer computes in).
FloatTensor u8_to_float(const U8Tensor& in);

}  // namespace phonebit::baselines
