#include "baselines/quantized_ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace phonebit::baselines {

QuantizedTensor QuantizedTensor::from_float(const FloatTensor& t) {
  PB_CHECK(t.layout() == Layout::kNHWC, "quantize NHWC tensors only");
  float lo = 0.0f, hi = 0.0f;
  const Shape& s = t.shape();
  for (std::int64_t i = 0; i < s.elems(); ++i) {
    lo = std::min(lo, t.data()[i]);
    hi = std::max(hi, t.data()[i]);
  }
  QuantizedTensor q;
  q.params = QuantParams::for_range(lo, hi);
  q.values = U8Tensor(s, Layout::kNHWC);
  for (std::int64_t i = 0; i < s.elems(); ++i) {
    q.values.data()[i] = q.params.quantize(t.data()[i]);
  }
  return q;
}

FloatTensor QuantizedTensor::to_float() const {
  FloatTensor out(values.shape(), Layout::kNHWC);
  for (std::int64_t i = 0; i < values.elems(); ++i) {
    out.data()[i] = params.dequantize(values.data()[i]);
  }
  return out;
}

QuantizedFilter QuantizedFilter::from_float(const FloatTensor& w) {
  PB_CHECK(w.layout() == Layout::kNHWC, "quantize NHWC filters only");
  const Shape& s = w.shape();
  QuantizedFilter q;
  q.values = Tensor<std::int8_t>(s, Layout::kNHWC);
  q.scales.resize(static_cast<std::size_t>(s.n));
  const std::int64_t per_filter = s.h * s.w * s.c;
  for (std::int64_t co = 0; co < s.n; ++co) {
    const float* src = w.data() + co * per_filter;
    float amax = 1e-12f;
    for (std::int64_t i = 0; i < per_filter; ++i) {
      amax = std::max(amax, std::fabs(src[i]));
    }
    const float scale = amax / 127.0f;
    q.scales[static_cast<std::size_t>(co)] = scale;
    std::int8_t* dst = q.values.data() + co * per_filter;
    for (std::int64_t i = 0; i < per_filter; ++i) {
      const long v = std::lround(src[i] / scale);
      dst[i] = static_cast<std::int8_t>(std::clamp<long>(v, -127, 127));
    }
  }
  return q;
}

FloatTensor quantized_conv2d(const QuantizedTensor& in,
                             const QuantizedFilter& w,
                             const std::vector<float>& bias,
                             const ConvGeometry& geom) {
  const Shape& is = in.values.shape();
  const Shape& ws = w.values.shape();
  PB_CHECK(ws.c == is.c, "quantized_conv2d: channel mismatch");
  const std::int64_t oh = geom.out_h(is.h);
  const std::int64_t ow = geom.out_w(is.w);
  FloatTensor out(Shape{is.n, oh, ow, ws.n}, Layout::kNHWC);
  const int zp = in.params.zero_point;

  for (std::int64_t n = 0; n < is.n; ++n)
    for (std::int64_t oy = 0; oy < oh; ++oy)
      for (std::int64_t ox = 0; ox < ow; ++ox)
        for (std::int64_t co = 0; co < ws.n; ++co) {
          std::int64_t acc = 0;      // sum q_in * q_w
          std::int64_t wsum = 0;     // sum q_w (zero-point correction)
          for (std::int64_t ky = 0; ky < geom.kernel_h; ++ky) {
            const std::int64_t iy = oy * geom.stride_h - geom.pad_h + ky;
            for (std::int64_t kx = 0; kx < geom.kernel_w; ++kx) {
              const std::int64_t ix = ox * geom.stride_w - geom.pad_w + kx;
              const bool inside =
                  iy >= 0 && iy < is.h && ix >= 0 && ix < is.w;
              for (std::int64_t c = 0; c < is.c; ++c) {
                const int qw = w.values(co, ky, kx, c);
                wsum += qw;
                // Zero padding quantizes to the zero point, which the
                // correction term cancels exactly.
                const int qx = inside ? in.values(n, iy, ix, c) : zp;
                acc += static_cast<std::int64_t>(qx) * qw;
              }
            }
          }
          const float scale =
              in.params.scale * w.scales[static_cast<std::size_t>(co)];
          float v = scale * static_cast<float>(acc - zp * wsum);
          if (!bias.empty()) v += bias[static_cast<std::size_t>(co)];
          out(n, oy, ox, co) = v;
        }
  return out;
}

}  // namespace phonebit::baselines
