// PhoneBit — real int8 quantized inference arithmetic.
//
// The TFLite-like executor models quantized cost analytically; this module
// implements the actual affine-uint8 / symmetric-int8 arithmetic so the
// test suite can verify the quantization-error claim behind the Table III
// "Quant" column (close-to-float outputs at 4x the arithmetic density).
#pragma once

#include <cstdint>
#include <vector>

#include "common/fixed_point.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace phonebit::baselines {

/// Per-tensor affine quantization of activations to uint8.
struct QuantizedTensor {
  U8Tensor values;
  QuantParams params;

  static QuantizedTensor from_float(const FloatTensor& t);
  FloatTensor to_float() const;
};

/// Per-output-channel symmetric int8 weight quantization.
struct QuantizedFilter {
  Tensor<std::int8_t> values;          ///< (C_out, KH, KW, C_in)
  std::vector<float> scales;           ///< per output channel

  static QuantizedFilter from_float(const FloatTensor& w);
};

/// int8 convolution with int32 accumulation, dequantized float output
/// (zero-point-corrected; bias added in float).
FloatTensor quantized_conv2d(const QuantizedTensor& in,
                             const QuantizedFilter& w,
                             const std::vector<float>& bias,
                             const ConvGeometry& geom);

}  // namespace phonebit::baselines
