// PhoneBit — baseline mobile-framework engines (Table III comparators).
//
// One parameterized full-precision executor plays the role of CNNdroid and
// TensorFlow Lite. Each framework is a FrameworkTraits bundle: where it
// runs (CPU/GPU), its data layout, its measured efficiency envelope, and its
// *mechanical* failure gates — an app memory budget (CNNdroid's duplicated
// Java + RenderScript weight allocations) and the GPU delegate's
// unsupported-op / max-buffer limits (TFLite). The paper's OOM and CRASH
// rows fall out of the gates, not out of model-name special cases.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/float_model.hpp"
#include "core/layer.hpp"
#include "oclsim/runtime.hpp"
#include "tensor/tensor.hpp"

namespace phonebit::baselines {

/// Behaviour envelope of one framework configuration.
struct FrameworkTraits {
  oclsim::ExecUnit unit = oclsim::ExecUnit::kCpu;
  Layout layout = Layout::kNHWC;

  /// GPU-path fraction of peak ALU throughput (measured envelope; see
  /// EXPERIMENTS.md calibration notes).
  double gpu_alu_eff = 0.3;
  /// CPU-path fraction of peak (all cores, NEON). For single-threaded
  /// scalar runtimes (CNNdroid's Java loops) set java_style = true and the
  /// efficiency is divided by cores * SIMD lanes at run time.
  double cpu_alu_eff = 0.3;
  bool java_style = false;

  /// int8 inference (TFLite quantized): MACs cost 0.25 fp32-equivalent ops
  /// and tensors move as 1 byte/element.
  bool quantized_int8 = false;

  /// Bias/activation fused into the conv kernel (TFLite) or issued as
  /// separate kernels (CNNdroid): extra launches + intermediate traffic.
  bool fuse_bias_act = true;

  /// Memory/compute overlap (latency hiding).
  bool overlap_mem = true;

  /// Effective-bandwidth fraction (layout + access pattern).
  double coalescing = 0.6;

  /// App memory budget in MB (0 = unlimited). Weights count
  /// `weight_copies` times (Java heap + RenderScript allocation).
  std::int64_t app_budget_mb = 0;
  double weight_copies = 1.0;

  /// GPU-delegate gates (TFLite): ops outside the supported set and
  /// single buffers above the allocation limit abort graph preparation.
  bool reject_lrn = false;
  std::int64_t max_buffer_bytes = 0;  // 0 = unlimited
};

/// Outcome of one inference.
struct FrameworkResult {
  FloatTensor output;
  double modeled_ms = 0.0;  ///< device-time model total
  double host_ms = 0.0;     ///< wall time of the real host execution
  std::vector<core::LayerReport> layers;
};

/// A baseline deep-learning framework (CNNdroid / TFLite flavor).
class FloatFramework {
 public:
  FloatFramework(std::string name, FrameworkTraits traits)
      : name_(std::move(name)), traits_(traits) {}

  const std::string& name() const noexcept { return name_; }
  const FrameworkTraits& traits() const noexcept { return traits_; }

  /// Runs the full-precision model on the simulated device. Throws
  /// OutOfMemoryError / UnsupportedOperationError per the traits' gates.
  FrameworkResult run(oclsim::Device& device, const core::FloatModel& model,
                      const U8Tensor& image) const;

  // --- the Table III framework roster ---
  static FloatFramework cnndroid_cpu();
  static FloatFramework cnndroid_gpu();
  static FloatFramework tflite_cpu();
  static FloatFramework tflite_gpu();
  static FloatFramework tflite_quant();

 private:
  std::string name_;
  FrameworkTraits traits_;
};

}  // namespace phonebit::baselines
