// PhoneBit — float-domain BNN reference forward pass (the test oracle).
//
// Computes exactly what the packed PhoneBit engine should compute, but in
// plain float arithmetic over explicit ±1 tensors: sign-binarized weights,
// -1 padding for binary convs (the packed engine's zero words), the integer
// pixel domain for the first layer, folded-BN thresholds and the Eqn 8
// decision. Every activation is recorded so tests can compare layer by
// layer, not just end to end.
#pragma once

#include <vector>

#include "core/float_model.hpp"
#include "tensor/tensor.hpp"

namespace phonebit::baselines {

struct BnnReferenceResult {
  /// Final full-precision output (last layer).
  FloatTensor output;
  /// Post-layer activations, parallel to the model's layer list; binary
  /// layers store ±1 floats.
  std::vector<FloatTensor> activations;
};

/// Runs `model` in the binarized float domain on `image`.
BnnReferenceResult bnn_reference_forward(const core::FloatModel& model,
                                         const U8Tensor& image);

}  // namespace phonebit::baselines
