#include "core/artifact.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "bitpack/compress.hpp"
#include "core/binary_conv.hpp"
#include "core/dense.hpp"
#include "core/engine.hpp"
#include "core/float_conv.hpp"
#include "core/input_conv.hpp"
#include "core/pooling.hpp"
#include "core/wire.hpp"

namespace phonebit::artifact {

namespace {

using core::ActivationSlot;
using core::BlobDesc;
using core::BlobKind;
using core::EngineOptions;
using core::KernelVariant;
using core::Layer;
using core::Network;
using core::PlanStep;
using core::ScratchNeed;
using core::wire::ByteReader;
using core::wire::ByteWriter;
using core::wire::LayerKind;  // shared with the .pbm format — one numbering

/// Upper bound on any serialized count (layers, steps, slots): far above
/// every real network, low enough that a corrupted count field fails fast
/// instead of driving a giant loop.
constexpr std::uint32_t kMaxCount = 65536;

[[noreturn]] void fail_at(const std::string& path, const char* section,
                          std::int64_t offset, const std::string& what) {
  std::ostringstream os;
  os << "artifact '" << path << "': " << what << " (section '" << section
     << "', byte offset " << offset << ")";
  throw InvalidArgument(os.str());
}

/// Reader whose failures throw InvalidArgument prefixed with the path (the
/// reader itself appends the section + byte offset).
ByteReader make_reader(const std::vector<std::uint8_t>& buf,
                       const std::string& path) {
  return ByteReader(buf.data(), buf.size(), [path](const std::string& msg) {
    throw InvalidArgument("artifact '" + path + "': " + msg);
  });
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  return core::wire::read_file(path, [](const std::string& msg) {
    throw InvalidArgument("artifact: " + msg);
  });
}

/// Runs `fn` — a LAYER CONSTRUCTOR call, never a reader call — converting
/// the PhoneBit exception a constructor PB_CHECK throws (which has no file
/// context) into a reader failure carrying the section and byte offset.
/// Reader methods must NOT be routed through this: their failures already
/// carry section + offset, and re-wrapping would stack a second, wrong
/// offset onto the message.
template <typename Fn>
auto contextualized(ByteReader& r, Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const Error& e) {
    r.fail(e.what());
  }
}

bool read_bool(ByteReader& r) {
  const auto v = r.pod<std::uint8_t>();
  if (v > 1) r.fail("corrupt boolean flag");
  return v != 0;
}

bitpack::PackWidth read_pack_width(ByteReader& r) {
  const auto bits = r.pod<std::uint32_t>();
  switch (bits) {
    case 8: return bitpack::PackWidth::k8;
    case 16: return bitpack::PackWidth::k16;
    case 32: return bitpack::PackWidth::k32;
    case 64: return bitpack::PackWidth::k64;
    case 128: return bitpack::PackWidth::k128;
    case 256: return bitpack::PackWidth::k256;
    case 512: return bitpack::PackWidth::k512;
    case 1024: return bitpack::PackWidth::k1024;
    default: r.fail("invalid pack width " + std::to_string(bits) + " bits");
  }
}

// --- blob descriptors ------------------------------------------------------

void write_blob_desc(ByteWriter& w, const BlobDesc& d) {
  w.pod<std::uint8_t>(static_cast<std::uint8_t>(d.kind));
  w.shape(d.shape);
}

/// `materialized`: the descriptor must describe a real blob (positive dims).
/// The only non-materialized descriptor in the format is the fused_mid of an
/// unfused step, which is a placeholder.
BlobDesc read_blob_desc(ByteReader& r, bool materialized) {
  const auto kind = r.pod<std::uint8_t>();
  if (kind > static_cast<std::uint8_t>(BlobKind::kPacked)) {
    r.fail("invalid blob kind " + std::to_string(kind));
  }
  BlobDesc d;
  d.kind = static_cast<BlobKind>(kind);
  d.shape = materialized ? r.positive_shape() : r.shape();
  return d;
}

// --- network section -------------------------------------------------------

/// Mode-1 BinaryConv2d weight storage (format v4, DESIGN.md §12): the
/// dictionary/index/delta factorization instead of the raw packed words.
/// Framed exactly as compressed_encoded_bytes() accounts it, after the
/// filter-bank shape.
void write_compressed_bank(ByteWriter& w,
                           const bitpack::CompressedFilterBank& bank) {
  w.shape(bank.filter_shape());
  w.pod<std::int64_t>(bank.k_words());
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(bank.unique_rows()));
  w.raw(bank.dict().data(), bank.dict().size() * 8);
  for (const std::uint32_t idx : bank.row_index()) w.pod<std::uint32_t>(idx);
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(bank.deltas().size()));
  for (const std::uint32_t b : bank.delta_begin()) w.pod<std::uint32_t>(b);
  for (const bitpack::FilterDelta& d : bank.deltas()) {
    w.pod<std::uint32_t>(d.word);
    w.pod<std::uint64_t>(d.mask);
  }
}

void write_network(ByteWriter& w, const Network& net, std::uint32_t version) {
  w.str(net.name());
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(net.size()));
  for (const auto& layer : net.layers()) {
    if (const auto* l = dynamic_cast<const core::InputConv2d*>(layer.get())) {
      w.pod(static_cast<std::uint8_t>(LayerKind::kInputConv));
      w.str(l->name());
      w.geom(l->geometry());
      w.packed(l->weights());
      w.bn_params(l->raw_bn());
      w.floats(l->bias());
    } else if (const auto* l =
                   dynamic_cast<const core::BinaryConv2d*>(layer.get())) {
      w.pod(static_cast<std::uint8_t>(LayerKind::kBinaryConv));
      w.str(l->name());
      w.geom(l->geometry());
      if (version >= 4) {
        // Storage-mode byte: 1 (dictionary/index/delta) only when the
        // encoding is STRICTLY smaller than the raw words — incompressible
        // banks keep mode 0, so compression never grows a file.
        const bitpack::CompressedFilterBank& bank = l->compressed_bank();
        const bool compressed =
            bank.stats().encoded_bytes < bank.stats().raw_bytes;
        w.pod<std::uint8_t>(compressed ? 1 : 0);
        if (compressed) {
          write_compressed_bank(w, bank);
        } else {
          w.packed(l->weights());
        }
      } else {
        w.packed(l->weights());
      }
      w.bn_params(l->raw_bn());
      w.floats(l->bias());
    } else if (const auto* l =
                   dynamic_cast<const core::MaxPool2d*>(layer.get())) {
      w.pod(static_cast<std::uint8_t>(LayerKind::kMaxPool));
      w.str(l->name());
      w.pod<std::int64_t>(l->geometry().size);
      w.pod<std::int64_t>(l->geometry().stride);
      w.pod<std::int64_t>(l->geometry().pad);
      w.pod<std::uint8_t>(l->geometry().tail_pad ? 1 : 0);
    } else if (const auto* l =
                   dynamic_cast<const core::BinaryDense*>(layer.get())) {
      w.pod(static_cast<std::uint8_t>(LayerKind::kBinaryDense));
      w.str(l->name());
      w.packed(l->weights());
      w.bn_params(l->raw_bn());
      w.floats(l->bias());
    } else if (const auto* l =
                   dynamic_cast<const core::FloatConv2d*>(layer.get())) {
      w.pod(static_cast<std::uint8_t>(LayerKind::kFloatConv));
      w.str(l->name());
      w.geom(l->geometry());
      w.float_tensor(l->weights());
      w.floats(l->bias());
    } else if (const auto* l =
                   dynamic_cast<const core::FloatDense*>(layer.get())) {
      w.pod(static_cast<std::uint8_t>(LayerKind::kFloatDense));
      w.str(l->name());
      w.float_tensor(l->weights());
      w.floats(l->bias());
    } else {
      throw InvalidArgument("layer '" + layer->name() +
                            "' is not artifact-serializable");
    }
  }
}

/// Packed weight banks must arrive with the pad-word invariant intact: bits
/// beyond the true channel count are zero, or the Eqn-1 dot silently counts
/// phantom channels. Checked per deserialized bank, at its file position.
bitpack::PackedTensor read_weights(ByteReader& r, const std::string& name) {
  bitpack::PackedTensor p = r.packed();
  if (!p.padding_clear()) {
    r.fail("corrupted weight words: pad bits beyond channel " +
           std::to_string(p.channels()) + " are set in layer '" + name + "'");
  }
  return p;
}

/// Mode-1 decoder: revalidates EVERY structural invariant build() guarantees
/// before handing the parts to the bank constructor — a resealed edit to any
/// section (dictionary, index, CSR offsets, delta entries) fails here with
/// the section + byte offset, never inside a kernel. Allocation is always
/// preceded by a need_ahead() against the remaining bytes, so corrupt counts
/// fail as truncation instead of giant allocation attempts.
std::shared_ptr<const bitpack::CompressedFilterBank> read_compressed_bank(
    ByteReader& r, const std::string& name) {
  const Shape s = r.positive_shape();
  const std::int64_t k_words = s.h * s.w * ceil_div(s.c, bitpack::kWordBits);
  const auto stored_k = r.pod<std::int64_t>();
  if (stored_k != k_words) {
    r.fail("compressed bank records " + std::to_string(stored_k) +
           " words per filter, shape " + s.str() + " implies " +
           std::to_string(k_words) + " in layer '" + name + "'");
  }
  const auto unique = r.pod<std::uint32_t>();
  if (unique == 0 || static_cast<std::int64_t>(unique) > s.n) {
    r.fail("implausible dictionary size " + std::to_string(unique) + " for " +
           std::to_string(s.n) + " filters in layer '" + name + "'");
  }
  r.need_ahead(static_cast<std::size_t>(unique) *
               static_cast<std::size_t>(k_words) * 8);
  std::vector<std::uint64_t> dict(static_cast<std::size_t>(unique) *
                                  static_cast<std::size_t>(k_words));
  r.raw(dict.data(), dict.size() * 8);

  const std::size_t nf = static_cast<std::size_t>(s.n);
  r.need_ahead(nf * 4);
  std::vector<std::uint32_t> row_index(nf);
  r.raw(row_index.data(), nf * 4);
  std::vector<std::uint8_t> referenced(unique, 0);
  for (std::size_t f = 0; f < nf; ++f) {
    if (row_index[f] >= unique) {
      r.fail("filter " + std::to_string(f) + " references dictionary row " +
             std::to_string(row_index[f]) + " of " + std::to_string(unique) +
             " in layer '" + name + "'");
    }
    referenced[row_index[f]] = 1;
  }
  // Canonical-encoding check: build() never emits an orphan row, so one in a
  // file means the dictionary or index section was tampered with.
  for (std::uint32_t u = 0; u < unique; ++u) {
    if (referenced[u] == 0) {
      r.fail("dictionary row " + std::to_string(u) +
             " is referenced by no filter in layer '" + name + "'");
    }
  }

  const auto total = r.pod<std::uint32_t>();
  if (static_cast<std::int64_t>(total) > s.n * k_words) {
    r.fail("implausible delta count " + std::to_string(total) +
           " in layer '" + name + "'");
  }
  r.need_ahead((nf + 1) * 4);
  std::vector<std::uint32_t> delta_begin(nf + 1);
  r.raw(delta_begin.data(), (nf + 1) * 4);
  if (delta_begin[0] != 0) {
    r.fail("delta offsets must start at 0 in layer '" + name + "'");
  }
  for (std::size_t f = 1; f <= nf; ++f) {
    if (delta_begin[f] < delta_begin[f - 1]) {
      r.fail("delta offsets decrease at filter " + std::to_string(f) +
             " in layer '" + name + "'");
    }
  }
  if (delta_begin[nf] != total) {
    r.fail("delta offsets end at " + std::to_string(delta_begin[nf]) +
           ", delta count says " + std::to_string(total) + " in layer '" +
           name + "'");
  }

  r.need_ahead(static_cast<std::size_t>(total) * 12);
  std::vector<bitpack::FilterDelta> deltas;
  deltas.reserve(total);
  for (std::size_t f = 0; f < nf; ++f) {
    std::int64_t prev = -1;
    for (std::uint32_t i = delta_begin[f]; i < delta_begin[f + 1]; ++i) {
      bitpack::FilterDelta d;
      d.word = r.pod<std::uint32_t>();
      d.mask = r.pod<std::uint64_t>();
      if (static_cast<std::int64_t>(d.word) >= k_words ||
          static_cast<std::int64_t>(d.word) <= prev) {
        r.fail("filter " + std::to_string(f) + " delta word " +
               std::to_string(d.word) +
               " out of order or out of range in layer '" + name + "'");
      }
      if (d.mask == 0) {
        r.fail("filter " + std::to_string(f) +
               " carries an empty delta mask in layer '" + name + "'");
      }
      prev = static_cast<std::int64_t>(d.word);
      deltas.push_back(d);
    }
  }
  return contextualized(r, [&] {
    return std::make_shared<const bitpack::CompressedFilterBank>(
        s, std::move(dict), std::move(row_index), std::move(delta_begin),
        std::move(deltas));
  });
}

std::unique_ptr<Network> read_network(ByteReader& r, std::uint32_t version) {
  auto net = std::make_unique<Network>(r.str());
  const auto count = r.pod<std::uint32_t>();
  if (count == 0 || count > kMaxCount) {
    r.fail("implausible layer count " + std::to_string(count));
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto kind = r.pod<std::uint8_t>();
    if (kind > static_cast<std::uint8_t>(LayerKind::kFloatDense)) {
      r.fail("unknown layer kind " + std::to_string(kind));
    }
    const std::string name = r.str();
    switch (static_cast<LayerKind>(kind)) {
      case LayerKind::kInputConv: {
        const ConvGeometry g = r.geom();
        auto weights = read_weights(r, name);
        auto bn = r.bn_params();
        auto bias = r.floats();
        contextualized(r, [&] {
          net->emplace<core::InputConv2d>(name, std::move(weights),
                                          std::move(bn), std::move(bias), g);
          return 0;
        });
        break;
      }
      case LayerKind::kBinaryConv: {
        const ConvGeometry g = r.geom();
        bool compressed = false;
        if (version >= 4) {
          const auto mode = r.pod<std::uint8_t>();
          if (mode > 1) {
            r.fail("invalid weight storage mode " + std::to_string(mode) +
                   " in layer '" + name + "'");
          }
          compressed = mode == 1;
        }
        if (compressed) {
          auto bank = read_compressed_bank(r, name);
          // Reconstruct the exact packed bank and hold it to the same
          // pad-word invariant raw weights are held to — then hand the
          // decoded bank to the layer so loading never re-clusters.
          bitpack::PackedTensor weights = bank->reconstruct();
          if (!weights.padding_clear()) {
            r.fail("corrupted compressed weights: pad bits beyond channel " +
                   std::to_string(weights.channels()) +
                   " are set in layer '" + name + "'");
          }
          auto bn = r.bn_params();
          auto bias = r.floats();
          contextualized(r, [&] {
            auto& conv = net->emplace<core::BinaryConv2d>(
                name, std::move(weights), std::move(bn), std::move(bias), g);
            conv.adopt_bank(std::move(bank));
            return 0;
          });
        } else {
          auto weights = read_weights(r, name);
          auto bn = r.bn_params();
          auto bias = r.floats();
          contextualized(r, [&] {
            net->emplace<core::BinaryConv2d>(name, std::move(weights),
                                             std::move(bn), std::move(bias),
                                             g);
            return 0;
          });
        }
        break;
      }
      case LayerKind::kMaxPool: {
        core::PoolGeometry g;
        g.size = r.pod<std::int64_t>();
        g.stride = r.pod<std::int64_t>();
        g.pad = r.pod<std::int64_t>();
        g.tail_pad = read_bool(r);
        if (g.size <= 0 || g.stride <= 0 || g.pad < 0) {
          r.fail("invalid pool geometry in layer '" + name + "'");
        }
        net->emplace<core::MaxPool2d>(name, g);
        break;
      }
      case LayerKind::kBinaryDense: {
        auto weights = read_weights(r, name);
        auto bn = r.bn_params();
        auto bias = r.floats();
        contextualized(r, [&] {
          net->emplace<core::BinaryDense>(name, std::move(weights),
                                          std::move(bn), std::move(bias));
          return 0;
        });
        break;
      }
      case LayerKind::kFloatConv: {
        const ConvGeometry g = r.geom();
        auto weights = r.float_tensor();
        auto bias = r.floats();
        contextualized(r, [&] {
          net->emplace<core::FloatConv2d>(name, std::move(weights),
                                          std::move(bias), g);
          return 0;
        });
        break;
      }
      case LayerKind::kFloatDense: {
        auto weights = r.float_tensor();
        auto bias = r.floats();
        contextualized(r, [&] {
          net->emplace<core::FloatDense>(name, std::move(weights),
                                         std::move(bias));
          return 0;
        });
        break;
      }
    }
  }
  return net;
}

// --- options section -------------------------------------------------------

void write_options(ByteWriter& w, const EngineOptions& o,
                   std::uint32_t version) {
  w.pod<std::uint8_t>(o.fuse_bn_binarize ? 1 : 0);
  w.pod<std::uint8_t>(o.branch_free_binarize ? 1 : 0);
  w.pod<std::uint8_t>(o.integrate_packing ? 1 : 0);
  w.pod<std::uint8_t>(o.fuse_conv_pool ? 1 : 0);
  w.pod<std::int64_t>(o.packing_channel_threshold);
  w.pod<std::uint8_t>(o.interior_split ? 1 : 0);
  w.pod<std::int64_t>(o.conv_tile_ow);
  w.pod<std::uint8_t>(o.auto_pack_width ? 1 : 0);
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(
      bitpack::bits(o.fixed_pack_width)));
  w.pod<std::uint8_t>(o.span_keyed_pack_width ? 1 : 0);
  w.pod<std::uint8_t>(o.vectorized_loads ? 1 : 0);
  w.pod<std::uint8_t>(o.layout == Layout::kNCHW ? 1 : 0);
  w.pod<std::uint8_t>(static_cast<std::uint8_t>(o.conv_path));
  if (version >= 4) {
    w.pod<std::uint8_t>(static_cast<std::uint8_t>(o.weight_compress));
  } else {
    // save() only picks v3 when compression is off; a v3 record cannot
    // carry the knob, so anything else here would be silently dropped.
    PB_CHECK(o.weight_compress == core::WeightCompress::kOff,
             "v3 artifact cannot record weight compression");
  }
}

EngineOptions read_options(ByteReader& r, std::uint32_t version) {
  EngineOptions o;
  o.fuse_bn_binarize = read_bool(r);
  o.branch_free_binarize = read_bool(r);
  o.integrate_packing = read_bool(r);
  o.fuse_conv_pool = read_bool(r);
  o.packing_channel_threshold = r.pod<std::int64_t>();
  if (o.packing_channel_threshold < 0) r.fail("negative packing threshold");
  o.interior_split = read_bool(r);
  o.conv_tile_ow = r.pod<std::int64_t>();
  if (o.conv_tile_ow < 0) r.fail("negative conv tile width");
  o.auto_pack_width = read_bool(r);
  o.fixed_pack_width = read_pack_width(r);
  o.span_keyed_pack_width = read_bool(r);
  o.vectorized_loads = read_bool(r);
  o.layout = read_bool(r) ? Layout::kNCHW : Layout::kNHWC;
  const auto conv_path = r.pod<std::uint8_t>();
  if (conv_path > static_cast<std::uint8_t>(core::ConvPathPreference::kGemm)) {
    r.fail("invalid conv path preference " + std::to_string(conv_path));
  }
  o.conv_path = static_cast<core::ConvPathPreference>(conv_path);
  if (version >= 4) {
    const auto wc = r.pod<std::uint8_t>();
    if (wc > static_cast<std::uint8_t>(core::WeightCompress::kAuto)) {
      r.fail("invalid weight compression mode " + std::to_string(wc));
    }
    o.weight_compress = static_cast<core::WeightCompress>(wc);
  }
  return o;
}

// --- kernel variants / scratch ---------------------------------------------

void write_variant(ByteWriter& w, const KernelVariant& v,
                   std::uint32_t version) {
  w.pod<std::uint8_t>(static_cast<std::uint8_t>(v.path));
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(bits(v.pack_width)));
  w.pod<std::uint8_t>(v.interior_split ? 1 : 0);
  if (version >= 4) {
    w.pod<std::uint8_t>(v.reuse ? 1 : 0);
  } else {
    PB_CHECK(!v.reuse, "v3 artifact cannot record a reuse kernel variant");
  }
  w.pod<std::int64_t>(v.tile_ow);
  w.str(v.kernel);
}

KernelVariant read_variant(ByteReader& r, std::uint32_t version) {
  KernelVariant v;
  const auto path = r.pod<std::uint8_t>();
  if (path > static_cast<std::uint8_t>(KernelVariant::Path::kConvGemm)) {
    r.fail("invalid kernel path " + std::to_string(path));
  }
  v.path = static_cast<KernelVariant::Path>(path);
  v.pack_width = read_pack_width(r);
  v.interior_split = read_bool(r);
  if (version >= 4) v.reuse = read_bool(r);
  v.tile_ow = r.pod<std::int64_t>();
  if (v.tile_ow < 0) r.fail("negative kernel tile width");
  v.kernel = r.str();
  return v;
}

void write_scratch(ByteWriter& w, const ScratchNeed& s) {
  w.pod<std::int64_t>(s.i32);
  w.pod<std::int64_t>(s.f32);
  w.pod<std::int64_t>(s.u8);
  w.pod<std::int64_t>(s.words);
}

ScratchNeed read_scratch(ByteReader& r) {
  ScratchNeed s;
  s.i32 = r.pod<std::int64_t>();
  s.f32 = r.pod<std::int64_t>();
  s.u8 = r.pod<std::int64_t>();
  s.words = r.pod<std::int64_t>();
  if (s.i32 < 0 || s.f32 < 0 || s.u8 < 0 || s.words < 0) {
    r.fail("negative scratch requirement");
  }
  return s;
}

}  // namespace

const char* section_name(Section s) noexcept {
  switch (s) {
    case Section::kNetwork: return "network";
    case Section::kOptions: return "options";
    case Section::kInput: return "input";
    case Section::kPlan: return "plan";
    case Section::kTarget: return "target";
  }
  return "?";
}

std::uint64_t checksum(const void* data, std::size_t n) noexcept {
  return core::wire::fnv1a64(data, n);
}

/// Friend of ExecutionPlan (plan.hpp): the one deserialization path allowed
/// to rebuild a plan field by field. Decode VALIDATES the full structural
/// contract — step edges, slot-table layout, scratch peaks — so a loaded
/// plan is indistinguishable from a freshly compiled one.
class PlanCodec {
 public:
  static void encode(ByteWriter& w, const Network& net,
                     const core::ExecutionPlan& p, std::uint32_t version) {
    PB_CHECK(p.network_name() == net.name(),
             "plan '" << p.network_name()
                      << "' was not compiled from network '" << net.name()
                      << "'");
    w.str(p.name_);
    w.pod<std::uint32_t>(static_cast<std::uint32_t>(p.steps_.size()));
    for (const PlanStep& step : p.steps_) {
      const std::ptrdiff_t idx = net.index_of(step.layer);
      PB_CHECK(idx >= 0, "plan step '"
                             << step.name()
                             << "' references a layer that is not part of "
                                "network '"
                             << net.name() << "'");
      w.pod<std::uint32_t>(static_cast<std::uint32_t>(idx));
      std::ptrdiff_t fused = -1;
      if (step.fused_pool != nullptr) {
        fused = net.index_of(step.fused_pool);
        PB_CHECK(fused >= 0, "plan step '" << step.name()
                                           << "' fuses a foreign pool layer");
      }
      w.pod<std::int32_t>(static_cast<std::int32_t>(fused));
      write_blob_desc(w, step.in);
      write_blob_desc(w, step.out);
      write_blob_desc(w, step.fused_mid);
      write_variant(w, step.variant, version);
      write_scratch(w, step.scratch);
      if (version >= 4) {
        w.pod<std::int64_t>(step.wcomp.unique_rows);
        w.pod<std::int64_t>(step.wcomp.raw_bytes);
        w.pod<std::int64_t>(step.wcomp.encoded_bytes);
      }
      w.pod<std::int32_t>(step.slot);
      w.str(step.display);
    }
    w.pod<std::uint32_t>(static_cast<std::uint32_t>(p.slots_.size()));
    for (const ActivationSlot& s : p.slots_) {
      w.pod<std::int64_t>(s.bytes);
      w.pod<std::int64_t>(s.offset);
    }
    write_scratch(w, p.scratch_peak_);
    w.pod<std::int64_t>(p.slab_bytes_);
    w.pod<std::int64_t>(p.output_offset_);
  }

  static core::ExecutionPlan decode(ByteReader& r, const Network& net,
                                    const EngineOptions& opts,
                                    const BlobDesc& input,
                                    std::uint32_t version) {
    core::ExecutionPlan p;
    p.name_ = r.str();
    if (p.name_ != net.name()) {
      r.fail("plan network name '" + p.name_ +
             "' disagrees with serialized network '" + net.name() + "'");
    }
    p.opts_ = opts;
    p.input_ = input;

    const auto step_count = r.pod<std::uint32_t>();
    if (step_count == 0 || step_count > kMaxCount) {
      r.fail("implausible step count " + std::to_string(step_count));
    }
    p.steps_.reserve(step_count);
    for (std::uint32_t i = 0; i < step_count; ++i) {
      PlanStep step;
      const auto layer_idx = r.pod<std::uint32_t>();
      if (layer_idx >= net.size()) {
        r.fail("step " + std::to_string(i) + " layer index " +
               std::to_string(layer_idx) + " out of range (network has " +
               std::to_string(net.size()) + " layers)");
      }
      step.layer = net.layers()[layer_idx].get();
      const auto fused_idx = r.pod<std::int32_t>();
      if (fused_idx < -1 ||
          fused_idx >= static_cast<std::int32_t>(net.size())) {
        r.fail("step " + std::to_string(i) + " fused pool index " +
               std::to_string(fused_idx) + " out of range");
      }
      step.in = read_blob_desc(r, /*materialized=*/true);
      step.out = read_blob_desc(r, /*materialized=*/true);
      const bool fused = fused_idx >= 0;
      step.fused_mid = read_blob_desc(r, /*materialized=*/fused);
      // Step edges must chain exactly: the plan's dataflow is part of the
      // contract, not re-inferred at load.
      const BlobDesc& expected_in =
          i == 0 ? input : p.steps_.back().out;
      if (!(step.in == expected_in)) {
        r.fail("step " + std::to_string(i) + " input " + step.in.str() +
               " breaks the pipeline edge (expected " + expected_in.str() +
               ")");
      }
      step.variant = read_variant(r, version);
      // Conv-path kernels partition output columns by the tile: a resealed
      // zero would reach ceil_div(ow, 0). Non-conv layers (path kDefault)
      // legitimately record 0 ("does not tile") and never divide by it.
      if (step.variant.path != KernelVariant::Path::kDefault &&
          step.variant.tile_ow < 1) {
        r.fail("step " + std::to_string(i) +
               " conv variant records tile width " +
               std::to_string(step.variant.tile_ow) +
               " (conv kernels tile by it; must be >= 1)");
      }
      if (step.variant.reuse) {
        // Reuse variants are only ever selected for binary convs under
        // kAuto. The GEMM-reuse kernel additionally indexes a FIXED stack
        // partial buffer by dictionary row, so the cap is a memory-safety
        // bound against resealed files (the bank here is the loader-adopted
        // one — honest reuse layers always ship mode-1 weights, so this
        // does not re-cluster).
        const auto* conv =
            dynamic_cast<const core::BinaryConv2d*>(step.layer);
        if (conv == nullptr ||
            opts.weight_compress != core::WeightCompress::kAuto) {
          r.fail("step " + std::to_string(i) +
                 " records a reuse kernel outside auto weight compression");
        }
        if (step.variant.path == KernelVariant::Path::kConvGemm &&
            conv->compressed_bank().unique_rows() > bitpack::kReuseMaxDict) {
          r.fail("step " + std::to_string(i) +
                 " reuse dictionary exceeds the kernel cap " +
                 std::to_string(bitpack::kReuseMaxDict));
        }
      }
      if (fused) {
        step.fused_pool = net.layers()[static_cast<std::size_t>(fused_idx)]
                              .get();
        const auto* mp =
            dynamic_cast<const core::MaxPool2d*>(step.fused_pool);
        if (mp == nullptr) {
          r.fail("step " + std::to_string(i) +
                 " fused pool index does not name a MaxPool2d layer");
        }
        if (step.variant.path != KernelVariant::Path::kConvFused) {
          r.fail("step " + std::to_string(i) +
                 " records a fused pool on a non-path-A conv");
        }
        // Re-run the compile-time legality predicate and the tile cap: the
        // fused kernel indexes a FIXED stack row buffer by this geometry
        // and tile, so these are memory-safety bounds, not preferences —
        // they must hold even against a checksum-resealed file.
        if (!core::fused_pool_geometry_legal(mp->geometry())) {
          r.fail("step " + std::to_string(i) +
                 " fuses a pool whose geometry is not fusable (stride must "
                 "equal size, size 2..3)");
        }
        if (step.variant.tile_ow < 1 ||
            step.variant.tile_ow > core::max_fused_tile(mp->geometry())) {
          r.fail("step " + std::to_string(i) + " fused tile width " +
                 std::to_string(step.variant.tile_ow) +
                 " exceeds the fused row-buffer cap " +
                 std::to_string(core::max_fused_tile(mp->geometry())));
        }
      }
      step.scratch = read_scratch(r);
      if (version >= 4) {
        step.wcomp.unique_rows = r.pod<std::int64_t>();
        step.wcomp.raw_bytes = r.pod<std::int64_t>();
        step.wcomp.encoded_bytes = r.pod<std::int64_t>();
        // Compression stats are recorded exactly when compile records them:
        // for binary convs under a compressing plan, and nowhere else. The
        // cheap invariants (raw bytes match the layer's weight bank, the
        // dictionary is 1..C_out rows) catch resealed edits without
        // re-clustering anything at load.
        const auto* conv =
            dynamic_cast<const core::BinaryConv2d*>(step.layer);
        if (conv != nullptr &&
            opts.weight_compress != core::WeightCompress::kOff) {
          if (step.wcomp.raw_bytes != conv->weights().bytes() ||
              step.wcomp.unique_rows < 1 ||
              step.wcomp.unique_rows > conv->out_channels() ||
              step.wcomp.encoded_bytes <= 0) {
            r.fail("step " + std::to_string(i) +
                   " compression stats disagree with the layer's weight "
                   "bank");
          }
        } else if (step.wcomp.unique_rows != 0 ||
                   step.wcomp.raw_bytes != 0 ||
                   step.wcomp.encoded_bytes != 0) {
          r.fail("step " + std::to_string(i) +
                 " records compression stats on a step that has none");
        }
      }
      step.slot = r.pod<std::int32_t>();
      step.display = r.str();
      // Shape replay: the descriptors are not free data either — each
      // layer's own plan() must infer EXACTLY the recorded output from the
      // recorded input (and, for fused steps, the pool must map fused_mid
      // to the pooled output). A consistently resealed shape edit would
      // otherwise pass the slot/slab arithmetic while silently voiding the
      // zero-allocation guarantee at run time (undersized slots degrade to
      // heap fallbacks). Kernel VARIANTS are deliberately NOT replayed:
      // pinning the ahead-of-time selection is the artifact's purpose.
      {
        core::PlanContext pc(step.in, opts, /*stats=*/nullptr);
        try {
          step.layer->plan(pc);
        } catch (const Error& e) {
          r.fail("step " + std::to_string(i) + " shape replay failed: " +
                 e.what());
        }
        const BlobDesc& direct = pc.out_;
        if (fused) {
          if (!(direct == step.fused_mid)) {
            r.fail("step " + std::to_string(i) + " fused_mid " +
                   step.fused_mid.str() +
                   " disagrees with the conv's shape inference " +
                   direct.str());
          }
          core::PlanContext pool_pc(step.fused_mid, opts, /*stats=*/nullptr);
          try {
            step.fused_pool->plan(pool_pc);
          } catch (const Error& e) {
            r.fail("step " + std::to_string(i) +
                   " fused pool shape replay failed: " + e.what());
          }
          if (!(pool_pc.out_ == step.out)) {
            r.fail("step " + std::to_string(i) + " pooled output " +
                   step.out.str() +
                   " disagrees with the pool's shape inference " +
                   pool_pc.out_.str());
          }
        } else if (!(direct == step.out)) {
          r.fail("step " + std::to_string(i) + " output " + step.out.str() +
                 " disagrees with the layer's shape inference " +
                 direct.str());
        }
        // Scratch replay: compile copied step.scratch from this same
        // plan() call (selection is deterministic in opts + geometry), so
        // equality is guaranteed for honest files — and without it the
        // peak check below is circular: a resealed artifact could zero
        // every requirement AND the stored peak, under-reserve the arena
        // and under-count the device-RAM fit test. An artifact from a
        // build with different planning heuristics fails here by design:
        // pre-1.0 policy is re-run the converter, not decode old plans.
        if (pc.scratch_.i32 != step.scratch.i32 ||
            pc.scratch_.f32 != step.scratch.f32 ||
            pc.scratch_.u8 != step.scratch.u8 ||
            pc.scratch_.words != step.scratch.words) {
          r.fail("step " + std::to_string(i) +
                 " scratch requirement disagrees with plan replay "
                 "(re-run the converter against this build)");
        }
      }
      p.steps_.push_back(std::move(step));
    }
    if (p.steps_.back().slot != -1) {
      r.fail("final step must write the network output (slot -1), found "
             "slot " +
             std::to_string(p.steps_.back().slot));
    }

    // Slot table: the offsets are not free data — they must reproduce the
    // exact sequential 8-byte-aligned layout the liveness pass emits, and
    // each slot must be sized to the largest step output assigned to it.
    // Any bit flip in the table breaks one of these equalities.
    const auto slot_count = r.pod<std::uint32_t>();
    if (slot_count > kMaxCount) {
      r.fail("implausible slot count " + std::to_string(slot_count));
    }
    std::vector<std::int64_t> want_bytes(slot_count, 0);
    for (std::uint32_t i = 0; i + 1 < step_count; ++i) {
      const std::int32_t slot = p.steps_[i].slot;
      if (slot < 0 || slot >= static_cast<std::int32_t>(slot_count)) {
        r.fail("step " + std::to_string(i) + " activation slot " +
               std::to_string(slot) + " out of range (" +
               std::to_string(slot_count) + " slots)");
      }
      // Ping-pong discipline: step i+1 READS slot i while WRITING its own
      // slot, so adjacent steps sharing a slot would alias input and
      // output in place — a resealed slot edit must not be able to make
      // run() silently compute over its own half-written output.
      if (i > 0 && slot == p.steps_[i - 1].slot) {
        r.fail("steps " + std::to_string(i - 1) + " and " +
               std::to_string(i) + " share activation slot " +
               std::to_string(slot) + " (in-place aliasing)");
      }
      auto& want = want_bytes[static_cast<std::size_t>(slot)];
      want = std::max(want, p.steps_[i].out.bytes());
    }
    std::int64_t off = 0;
    p.slots_.reserve(slot_count);
    for (std::uint32_t i = 0; i < slot_count; ++i) {
      ActivationSlot s;
      s.bytes = r.pod<std::int64_t>();
      s.offset = r.pod<std::int64_t>();
      // Every declared slot must be referenced by a step: compile never
      // emits an unused slot, and a phantom zero-byte entry would slip
      // through the equality checks below (slab_align(0) == 0).
      if (want_bytes[i] <= 0) {
        r.fail("slot " + std::to_string(i) +
               " is not referenced by any step");
      }
      if (s.bytes != want_bytes[i]) {
        r.fail("slot table corrupt: slot " + std::to_string(i) + " holds " +
               std::to_string(s.bytes) + " bytes, assigned steps need " +
               std::to_string(want_bytes[i]));
      }
      if (s.offset != off) {
        r.fail("slot table corrupt: slot " + std::to_string(i) +
               " offset " + std::to_string(s.offset) + ", layout expects " +
               std::to_string(off));
      }
      off += core::slab_align(s.bytes);
      p.slots_.push_back(s);
    }

    // Peaks: recomputed from the steps and compared exactly — the plan's
    // reserve must stay byte-exact on the loading device.
    ScratchNeed peak;
    for (const PlanStep& step : p.steps_) peak.max_with(step.scratch);
    const ScratchNeed stored = read_scratch(r);
    if (stored.i32 != peak.i32 || stored.f32 != peak.f32 ||
        stored.u8 != peak.u8 || stored.words != peak.words) {
      r.fail("scratch peak disagrees with the per-step requirements");
    }
    p.scratch_peak_ = stored;
    p.slab_bytes_ = r.pod<std::int64_t>();
    p.output_offset_ = r.pod<std::int64_t>();
    if (p.output_offset_ != off) {
      r.fail("output staging offset " + std::to_string(p.output_offset_) +
             " disagrees with slot layout end " + std::to_string(off));
    }
    const std::int64_t want_slab =
        off + core::slab_align(p.steps_.back().out.bytes());
    if (p.slab_bytes_ != want_slab) {
      r.fail("slab size " + std::to_string(p.slab_bytes_) +
             " disagrees with recomputed layout " +
             std::to_string(want_slab));
    }
    return p;
  }
};

namespace {

/// Appends one framed section: tag, body length (back-patched), body.
template <typename Body>
void write_section(ByteWriter& w, Section tag, Body&& body) {
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(tag));
  const std::int64_t len_at = w.offset();
  w.pod<std::uint64_t>(0);
  const std::int64_t start = w.offset();
  body(w);
  const std::uint64_t len = static_cast<std::uint64_t>(w.offset() - start);
  w.patch(len_at, &len, sizeof(len));
}

/// Reads one section frame, checks the tag and hands the body bounds back.
std::int64_t open_section(ByteReader& r, Section expected) {
  r.set_section("sections");
  const auto tag = r.pod<std::uint32_t>();
  if (tag != static_cast<std::uint32_t>(expected)) {
    r.fail(std::string("expected section '") + section_name(expected) +
           "' (tag " +
           std::to_string(static_cast<std::uint32_t>(expected)) +
           "), found tag " + std::to_string(tag));
  }
  const auto body = r.pod<std::uint64_t>();
  // Compare UNSIGNED: a corrupt length >= 2^63 would wrap negative under a
  // signed cast and sail past this bound.
  if (body > static_cast<std::uint64_t>(r.remaining())) {
    r.fail(std::string("section '") + section_name(expected) +
           "' body runs past end of file: " + std::to_string(body) +
           " bytes declared, " + std::to_string(r.remaining()) + " remain");
  }
  r.set_section(section_name(expected));
  return static_cast<std::int64_t>(body);
}

void close_section(ByteReader& r, Section sec, std::int64_t body_start,
                   std::int64_t body_bytes) {
  if (r.offset() != body_start + body_bytes) {
    r.fail(std::string("section '") + section_name(sec) +
           "' body length mismatch: declared " + std::to_string(body_bytes) +
           " bytes, decoded " + std::to_string(r.offset() - body_start));
  }
}

/// Header checks shared by load() and section_table(); returns the format
/// version (within [kMinFormatVersion, kFormatVersion]) so the section
/// decoders know which record layout to expect.
std::uint32_t check_header(ByteReader& r, const std::vector<std::uint8_t>& buf,
                           const std::string& path) {
  r.set_section("header");
  // Reject short files up front: the payload-length comparison below and
  // load()'s direct checksum read both assume at least a full header, and
  // `buf.size() - kHeaderBytes` would wrap on anything shorter.
  if (buf.size() < static_cast<std::size_t>(kHeaderBytes)) {
    fail_at(path, "header", static_cast<std::int64_t>(buf.size()),
            "truncated header: " + std::to_string(buf.size()) +
                " bytes, need " + std::to_string(kHeaderBytes));
  }
  const auto magic = r.pod<std::uint32_t>();
  if (magic != kMagic) {
    fail_at(path, "header", kMagicOffset,
            "bad magic (not a PhoneBit artifact)");
  }
  const auto version = r.pod<std::uint32_t>();
  if (version < kMinFormatVersion || version > kFormatVersion) {
    fail_at(path, "header", kVersionOffset,
            "unsupported artifact format version " + std::to_string(version) +
                " (this build reads versions " +
                std::to_string(kMinFormatVersion) + ".." +
                std::to_string(kFormatVersion) + ")");
  }
  const auto endian = r.pod<std::uint32_t>();
  if (endian != kEndianMark) {
    fail_at(path, "header", kEndianOffset,
            endian == 0x04030201u
                ? std::string("endianness mismatch: artifact was written on "
                              "a foreign-endian machine")
                : "corrupt endianness marker");
  }
  const auto header_bytes = r.pod<std::uint32_t>();
  if (header_bytes != static_cast<std::uint32_t>(kHeaderBytes)) {
    fail_at(path, "header", kHeaderBytesOffset,
            "unexpected header size " + std::to_string(header_bytes));
  }
  const auto payload_bytes = r.pod<std::uint64_t>();
  if (payload_bytes !=
      static_cast<std::uint64_t>(buf.size()) -
          static_cast<std::uint64_t>(kHeaderBytes)) {
    fail_at(path, "header", kPayloadBytesOffset,
            "payload length mismatch: header declares " +
                std::to_string(payload_bytes) + " bytes, file carries " +
                std::to_string(buf.size() - kHeaderBytes));
  }
  return version;
}

}  // namespace

void save(const Network& net, const core::ExecutionPlan& plan,
          const std::string& path, const std::string& target_profile) {
  // Dual-write: a plan compiled with weight compression off serializes as
  // v3, byte-identical to pre-v4 producers — default-configuration artifact
  // checksums are stable across this format revision. Any compressing plan
  // needs the v4 record extensions.
  const std::uint32_t version =
      plan.options().weight_compress == core::WeightCompress::kOff
          ? kMinFormatVersion
          : kFormatVersion;
  ByteWriter payload;
  write_section(payload, Section::kNetwork,
                [&](ByteWriter& w) { write_network(w, net, version); });
  write_section(payload, Section::kOptions, [&](ByteWriter& w) {
    write_options(w, plan.options(), version);
  });
  write_section(payload, Section::kInput,
                [&](ByteWriter& w) { write_blob_desc(w, plan.input()); });
  write_section(payload, Section::kPlan, [&](ByteWriter& w) {
    PlanCodec::encode(w, net, plan, version);
  });
  // Always framed, even when empty: every v2 artifact has exactly five
  // sections, so readers need no optional-section logic.
  write_section(payload, Section::kTarget,
                [&](ByteWriter& w) { w.str(target_profile); });

  ByteWriter header;
  header.pod<std::uint32_t>(kMagic);
  header.pod<std::uint32_t>(version);
  header.pod<std::uint32_t>(kEndianMark);
  header.pod<std::uint32_t>(static_cast<std::uint32_t>(kHeaderBytes));
  header.pod<std::uint64_t>(
      static_cast<std::uint64_t>(payload.buffer().size()));
  header.pod<std::uint64_t>(
      checksum(payload.buffer().data(), payload.buffer().size()));

  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw FormatError("cannot open '" + path + "' for writing");
  os.write(reinterpret_cast<const char*>(header.buffer().data()),
           static_cast<std::streamsize>(header.buffer().size()));
  os.write(reinterpret_cast<const char*>(payload.buffer().data()),
           static_cast<std::streamsize>(payload.buffer().size()));
  if (!os) throw FormatError("write failure on '" + path + "'");
}

LoadedArtifact load(const std::string& path) {
  const std::vector<std::uint8_t> buf = read_file(path);
  ByteReader r = make_reader(buf, path);
  const std::uint32_t version = check_header(r, buf, path);

  const std::uint64_t stored = [&] {
    std::uint64_t v;
    std::memcpy(&v, buf.data() + kChecksumOffset, sizeof(v));
    return v;
  }();
  const std::uint64_t computed =
      checksum(buf.data() + kHeaderBytes, buf.size() - kHeaderBytes);
  if (stored != computed) {
    std::ostringstream os;
    os << "payload checksum mismatch (stored 0x" << std::hex << stored
       << ", computed 0x" << computed << ") — the file is corrupt";
    fail_at(path, "checksum", kChecksumOffset, os.str());
  }
  r.skip(sizeof(std::uint64_t));  // past the verified checksum field

  std::unique_ptr<Network> network;
  {
    const std::int64_t body = open_section(r, Section::kNetwork);
    const std::int64_t start = r.offset();
    network = read_network(r, version);
    close_section(r, Section::kNetwork, start, body);
  }
  EngineOptions opts;
  {
    const std::int64_t body = open_section(r, Section::kOptions);
    const std::int64_t start = r.offset();
    opts = read_options(r, version);
    close_section(r, Section::kOptions, start, body);
  }
  BlobDesc input;
  {
    const std::int64_t body = open_section(r, Section::kInput);
    const std::int64_t start = r.offset();
    input = read_blob_desc(r, /*materialized=*/true);
    close_section(r, Section::kInput, start, body);
  }
  core::ExecutionPlan plan = [&] {
    const std::int64_t body = open_section(r, Section::kPlan);
    const std::int64_t start = r.offset();
    core::ExecutionPlan p =
        PlanCodec::decode(r, *network, opts, input, version);
    close_section(r, Section::kPlan, start, body);
    return p;
  }();
  std::string target;
  {
    const std::int64_t body = open_section(r, Section::kTarget);
    const std::int64_t start = r.offset();
    target = r.str();
    close_section(r, Section::kTarget, start, body);
  }
  r.set_section("trailer");
  if (r.remaining() != 0) {
    r.fail("trailing bytes after the last section");
  }
  return LoadedArtifact{std::move(network), std::move(plan),
                        std::move(target)};
}

std::vector<SectionInfo> section_table(const std::string& path) {
  const std::vector<std::uint8_t> buf = read_file(path);
  ByteReader r = make_reader(buf, path);
  check_header(r, buf, path);
  r.skip(sizeof(std::uint64_t));  // checksum (not verified here)
  std::vector<SectionInfo> table;
  r.set_section("sections");
  while (r.remaining() > 0) {
    SectionInfo info;
    const auto tag = r.pod<std::uint32_t>();
    if (tag < static_cast<std::uint32_t>(Section::kNetwork) ||
        tag > static_cast<std::uint32_t>(Section::kTarget)) {
      r.fail("unknown section tag " + std::to_string(tag));
    }
    info.tag = static_cast<Section>(tag);
    const auto body = r.pod<std::uint64_t>();
    if (body > static_cast<std::uint64_t>(r.remaining())) {
      r.fail("section body runs past end of file");
    }
    info.body_offset = r.offset();
    info.body_bytes = static_cast<std::int64_t>(body);
    r.skip(body);
    table.push_back(info);
  }
  return table;
}

void check_profile_fit(const core::Network& net,
                       const core::ExecutionPlan& plan,
                       const oclsim::DeviceProfile& profile,
                       const std::string& context) {
  const std::int64_t budget = profile.ram_mb << 20;
  if (budget <= 0) return;  // profile publishes no RAM figure
  const std::int64_t params = net.param_bytes();
  const std::int64_t slab = plan.slab_bytes();
  const std::int64_t scratch = plan.peak_scratch_bytes();
  const std::int64_t need = params + slab + scratch;
  if (need <= budget) return;
  // Itemized so a fleet operator can see WHICH component blows the budget
  // (params are fixed per model; slab/scratch scale with the input shape).
  std::ostringstream os;
  os << context << " needs " << need << " bytes but profile '"
     << profile.soc_name << " / " << profile.gpu_name << "' has " << budget
     << " bytes of RAM (" << profile.ram_mb << " MB); breakdown: " << params
     << " param bytes + " << slab << " activation-slab bytes + " << scratch
     << " scratch-peak bytes, over budget by " << (need - budget)
     << " bytes";
  throw OutOfMemoryError(os.str());
}

core::ExecutionPlan compile_for_profile(const core::Network& net,
                                        const core::EngineOptions& opts,
                                        const core::BlobDesc& input,
                                        const std::string& profile_key,
                                        const std::string& path) {
  const oclsim::DeviceProfile profile = oclsim::profile_by_name(profile_key);
  core::ExecutionPlan plan = net.compile(opts, input);
  check_profile_fit(net, plan, profile,
                    "artifact '" + path + "' (target '" + profile_key + "')");
  save(net, plan, path, profile_key);
  return plan;
}

}  // namespace phonebit::artifact

namespace phonebit::core {

artifact::LoadedArtifact Engine::load_artifact(const std::string& path) const {
  artifact::LoadedArtifact art = artifact::load(path);
  // Device-profile validation: the artifact records byte-exact peaks, so
  // the fit test is exact too — params + activation slab + scratch must fit
  // the simulated phone's RAM (profiles with no RAM figure skip the check).
  artifact::check_profile_fit(*art.network, art.plan, device_->profile(),
                              "artifact '" + path + "'");
  return art;
}

std::shared_ptr<const artifact::LoadedArtifact> Engine::load_artifact_shared(
    const std::string& path) const {
  return std::make_shared<const artifact::LoadedArtifact>(
      load_artifact(path));
}

}  // namespace phonebit::core
