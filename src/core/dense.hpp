// PhoneBit — dense (fully connected) layers.
//
// BinaryDense is the xor+popcount GEMV with the same fused BN+binarize and
// 8-units-per-item packing as the binary conv; FloatDense is the full-
// precision classifier head using the float4 dot built-in. Packed feature
// maps are flattened channel-innermost (NHWC), so when C % 64 == 0 the
// flatten is a plain copy of the packed words.
#pragma once

#include <string>
#include <vector>

#include "bitpack/packed_tensor.hpp"
#include "core/bn_fold.hpp"
#include "core/layer.hpp"
#include "core/plan.hpp"

namespace phonebit::core {

/// Binary fully connected layer: packed ±1 weights, fused BN + binarize,
/// packed output of `units` bits per sample.
class BinaryDense final : public Layer {
 public:
  /// `weights`: packed (units, 1, 1, in_features).
  BinaryDense(std::string name, bitpack::PackedTensor weights,
              std::vector<BatchNormParams> bn, std::vector<float> bias);

  const std::string& name() const override { return name_; }
  Blob forward(ExecContext& ctx, const Blob& in) const override;
  void plan(PlanContext& pc) const override;
  Blob run(ExecContext& ctx, const Blob& in,
           const PlanStep& step) const override;

  std::int64_t param_bytes() const override;
  std::int64_t param_count() const override;

  std::int64_t units() const noexcept { return weights_.shape().n; }
  std::int64_t in_features() const noexcept { return weights_.shape().c; }
  const bitpack::PackedTensor& weights() const noexcept { return weights_; }
  const FoldedBatchNorm& folded_bn() const noexcept { return folded_; }
  const std::vector<BatchNormParams>& raw_bn() const noexcept { return bn_; }
  const std::vector<float>& bias() const noexcept { return bias_; }

 private:
  /// Span-keyed granularity of the GEMV's fused feature span.
  bitpack::PackWidth dense_pack_width(const EngineOptions& opts) const;
  const bitpack::PackedTensor& checked_input(const Blob& in) const;
  bitpack::PackedTensor execute(ExecContext& ctx,
                                const bitpack::PackedTensor& in,
                                const KernelVariant& v) const;

  std::string name_;
  bitpack::PackedTensor weights_;
  std::vector<BatchNormParams> bn_;
  std::vector<float> bias_;
  FoldedBatchNorm folded_;
};

/// Full-precision dense layer (logit head). Accepts packed (expanded to ±1)
/// or float input; emits float scores.
class FloatDense final : public Layer {
 public:
  /// `weights`: float (units, 1, 1, in_features).
  FloatDense(std::string name, FloatTensor weights, std::vector<float> bias);

  const std::string& name() const override { return name_; }
  Blob forward(ExecContext& ctx, const Blob& in) const override;
  void plan(PlanContext& pc) const override;

  std::int64_t param_bytes() const override;
  std::int64_t param_count() const override;

  std::int64_t units() const noexcept { return weights_.shape().n; }
  std::int64_t in_features() const noexcept { return weights_.shape().c; }
  const FloatTensor& weights() const noexcept { return weights_; }
  const std::vector<float>& bias() const noexcept { return bias_; }

 private:
  std::string name_;
  FloatTensor weights_;
  std::vector<float> bias_;
};

}  // namespace phonebit::core
