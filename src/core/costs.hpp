// PhoneBit — cost accounting for the engine's kernels.
//
// Each forward pass counts the work its kernels genuinely perform (bit-lane
// ops, scalar ops, DRAM traffic, launches) and hands the tally to the oclsim
// roofline model. The efficiency constants below are the only calibrated
// quantities; they are engine-wide (never per-network or per-layer), so
// every relative result — speedups between engines, fusion/packing/layout
// ablations — emerges from counted work, not tuning. Calibration rationale
// is documented in EXPERIMENTS.md.
#pragma once

#include <cstdint>

#include "core/options.hpp"
#include "oclsim/cost_model.hpp"
#include "tensor/shape.hpp"

namespace phonebit::core::costs {

/// Fraction of peak ALU throughput PhoneBit's hand-tuned binary kernels
/// reach on Adreno (occupancy, addressing, barriers).
inline constexpr double kBinaryKernelEff = 0.18;

/// Efficiency of the full-precision last-layer kernel using the OpenCL
/// float4 `dot` built-in (the paper credits conv9's 3x over the baseline to
/// this SIMD issue advantage).
inline constexpr double kFloatDotEff = 0.06;

/// Efficiency of auxiliary scalar kernels (packing, pooling, bit-plane
/// splitting) — memory-bound, modest ALU pressure.
inline constexpr double kAuxKernelEff = 0.30;

/// Effective-bandwidth fractions for the two layouts (§V-A.1, §VI-A.2):
/// NHWC packed rows are unit-stride and coalesce; NCHW channel gathers
/// hit one word per cache line.
inline constexpr double kCoalesceNHWC = 0.85;
inline constexpr double kCoalesceNCHW = 0.25;

/// Extra bandwidth derating when vectorized (128-bit) load/store is
/// disabled (§VI-A.1): scalar accesses waste most of each memory
/// transaction.
inline constexpr double kScalarLoadPenalty = 0.45;

/// Per-vector-instruction loop/bookkeeping overhead in ALU cycles; constant
/// across pack widths, which is why wide packing wins (§V-A.2).
inline constexpr double kInstrOverheadCycles = 1.0;

/// Fixed setup cost of one contiguous xor+popcount span: address arithmetic,
/// loop prologue and the final lane reduction, in ALU cycles. Row fusion
/// (DESIGN.md §4) wins by issuing kh spans per conv window instead of kh*kw,
/// so each window amortizes this constant kw times better.
inline constexpr double kSpanSetupCycles = 6.0;

/// Per-vector-instruction overhead of the lane-accumulating row-fused inner
/// loop: the horizontal popcount reduction is hoisted out of the loop
/// (one reduce per span, charged in kSpanSetupCycles), leaving only the
/// address increment per vector op.
inline constexpr double kRowFusedInstrOverheadCycles = 0.5;

/// Span-setup units per OUTPUT of the shared-window interior schedule
/// (8-filter workload groups, Fig. 4): the group-window streams its kh
/// input row spans ONCE (setup amortized over the 8 filters that score
/// against them) and pays one lane-accumulator reduction per filter —
/// versus `kh` full span setups per filter when each filter re-walks the
/// window independently.
inline double shared_window_spans(double kh) { return kh / 8.0 + 1.0; }

/// Per-vector-op overhead of the register-tiled bit-GEMM inner loop
/// (DESIGN.md §11): the MRx8 accumulator tile lives in registers for the
/// whole K reduction, so the loop body is pure xor+popcount+add with the
/// loads amortized over the tile (4 a-words + 8 b-words feed 32 ops) —
/// below even the row-fused lane-accumulator rate.
inline constexpr double kGemmInstrOverheadCycles = 0.25;

/// Fixed setup of one MRx8 GEMM register tile: zeroing the accumulator
/// block, panel address setup, and the per-filter epilogue reduction, in
/// ALU cycles. Charged once per tile (span_count), not per output.
inline constexpr double kGemmTileSetupCycles = 8.0;

/// Work charged per delta-word correction of the partial-popcount reuse
/// schedule (DESIGN.md §12), in equivalent 64-bit lane ops: load the patched
/// a-word and dict word, two xors, two popcounts, and the signed fixup —
/// about four word ops where the plain kernel spends one per K word. Reuse
/// wins exactly when unique_rows * k_words + deltas * this constant beats
/// c_out * k_words, which is what modeled selection compares.
inline constexpr double kReuseDeltaWordOps = 4.0;

/// Bit-lane ops of one im2col panel scored by the reuse schedule: every
/// unique dictionary row pays the full 2-op/word xor+popcount reduction per
/// panel row (stage 1, computed once per m-tile), and every delta entry pays
/// the word-granular correction per panel row (stage 2). Bit-exact with the
/// tallies forward_gemm's reuse branch charges.
inline double reuse_gemm_bitop_bits(double m, double unique_rows,
                                    double k_words, double delta_words) {
  return m * (unique_rows * 2.0 * k_words * 64.0 +
              delta_words * kReuseDeltaWordOps * 64.0);
}

/// Span-setup units per OUTPUT of the dedup'd shared-window interior
/// schedule (path A with an intra-group duplicate-lane table): only the
/// `distinct_frac` fraction of a group's 8 lanes streams its kh row spans;
/// duplicate lanes copy an earlier lane's mismatch counts for free.
inline double dedup_window_spans(double kh, double distinct_frac) {
  return kh * distinct_frac;
}

/// Additional instruction overhead when vectorized loads are off (each
/// operand arrives in pieces).
inline constexpr double kScalarLoadInstrOverhead = 2.0;

/// Additional per-vector-op overhead under NCHW: channel bits are strided,
/// so every packed operand needs gather address arithmetic on top of the
/// bandwidth penalty (§V-A.1).
inline constexpr double kNchwGatherInstrOverhead = 1.5;

/// ALU derating of the divergent Eqn-8 binarization: half the wave idles
/// while each branch path retires (§VI-C). Applied to the whole fused
/// kernel's efficiency when branch-free mode is off.
inline constexpr double kDivergencePenalty = 0.55;

/// Coalescing / efficiency helpers reading the engine options.
inline double coalescing(const EngineOptions& o) {
  double c = o.layout == Layout::kNHWC ? kCoalesceNHWC : kCoalesceNCHW;
  if (!o.vectorized_loads) c *= kScalarLoadPenalty;
  return c;
}

inline double instr_overhead(const EngineOptions& o) {
  double cycles = kInstrOverheadCycles;
  if (!o.vectorized_loads) cycles += kScalarLoadInstrOverhead;
  if (o.layout == Layout::kNCHW) cycles += kNchwGatherInstrOverhead;
  return cycles;
}

/// Instruction overhead of the row-fused conv inner loop: the base
/// per-vector bookkeeping drops to the lane-accumulating rate, layout and
/// load penalties still apply.
inline double instr_overhead_fused(const EngineOptions& o) {
  return instr_overhead(o) - (kInstrOverheadCycles -
                              kRowFusedInstrOverheadCycles);
}

/// Instruction overhead of the bit-GEMM inner loop: register-tile rate plus
/// the same layout / scalar-load penalties as every other binary kernel.
inline double instr_overhead_gemm(const EngineOptions& o) {
  return instr_overhead(o) -
         (kInstrOverheadCycles - kGemmInstrOverheadCycles);
}

inline double binary_kernel_eff(const EngineOptions& o) {
  return o.branch_free_binarize ? kBinaryKernelEff
                                : kBinaryKernelEff * kDivergencePenalty;
}

}  // namespace phonebit::core::costs
