// PhoneBit — reusable scratch arena for intermediate kernel buffers AND the
// slot-backed activation slab of compiled forwards.
//
// Path B/C of the binary conv (and any layer needing a materialized
// intermediate) used to heap-allocate activation-sized vectors on every
// forward — exactly the hot-path overhead the fast mobile engines avoid by
// reserving intermediates once per engine. The arena keeps one typed pool
// per element kind, grown geometrically to the high-water mark of the
// network and then reused verbatim across Network::forward calls. Growth is
// accounted against the simulated device via Device::allocate so the OOM
// behaviour of real GPU buffers is preserved, and growth events are counted
// (and fed to the buffer-allocation hook, common/alloc_count.hpp) so tests
// can assert the hot path stops allocating after warm-up.
//
// Lifetime contract: a span returned by i32()/f32()/u8()/words() stays valid
// until the *next* request of the same kind — layers grab their buffers up
// front and kernels (eagerly executed) consume them within the same forward.
// The SLAB pool is different: it backs the compiled plan's activation slots
// (ExecutionPlan hands layers disjoint slot offsets into it), so its
// contents stay live across the steps of one forward and are clobbered by
// the next forward on the same session.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/alloc_count.hpp"
#include "common/bitops.hpp"
#include "common/error.hpp"
#include "oclsim/runtime.hpp"

namespace phonebit::core {

class ScratchArena {
 public:
  /// `device` (optional) receives simulated-allocation accounting.
  explicit ScratchArena(oclsim::Device* device = nullptr) : device_(device) {}

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  ~ScratchArena() {
    if (device_ != nullptr) device_->release(accounted_bytes_);
  }

  /// int32 scratch of at least `n` elements (conv sums, pooling counts).
  std::int32_t* i32(std::int64_t n) { return ensure(i32_, n); }

  /// float scratch of at least `n` elements (full-precision head
  /// intermediates: unpacked ±1 activations, flattened feature vectors).
  float* f32(std::int64_t n) { return ensure(f32_, n); }

  /// byte scratch of at least `n` elements (unpacked 0/1 bit maps).
  std::uint8_t* u8(std::int64_t n) { return ensure(u8_, n); }

  /// uint64 scratch of at least `n` words.
  std::uint64_t* words(std::int64_t n) { return ensure(words_, n); }

  /// uint64 scratch of `n` words, cleared to zero (the packed all-(-1)
  /// padding span). The memset is O(words_per_pixel), not an allocation.
  std::uint64_t* zero_words(std::int64_t n) {
    std::uint64_t* p = ensure(words_, n);
    std::memset(p, 0, static_cast<std::size_t>(n) * sizeof(std::uint64_t));
    return p;
  }

  /// The activation slab of at least `bytes` bytes (8-byte aligned words):
  /// backs the compiled plan's activation slots. Unlike the scratch pools,
  /// slab contents persist across the steps of one forward.
  std::uint64_t* slab(std::int64_t bytes) {
    return ensure(slab_, ceil_div(bytes, 8));
  }

  /// Pre-grows the typed pools to EXACTLY the given element counts (no
  /// geometric rounding), so a compiled plan's liveness prediction matches
  /// capacity_bytes() byte-for-byte on a fresh arena. A strict no-op — no
  /// growth event, no device-accounting movement, no resize — whenever the
  /// pools already cover the request, so re-running a plan on a warm
  /// session with identical peaks costs nothing. Growth (warm-up only, not
  /// hot path) is counted like any other growth.
  void reserve(std::int64_t i32_elems, std::int64_t f32_elems,
               std::int64_t u8_elems, std::int64_t word_elems,
               std::int64_t slab_bytes) {
    reserve_pool(i32_, i32_elems);
    reserve_pool(f32_, f32_elems);
    reserve_pool(u8_, u8_elems);
    reserve_pool(words_, word_elems);
    reserve_pool(slab_, ceil_div(slab_bytes, 8));
  }

  /// Number of times any pool had to grow since construction. Stable after
  /// warm-up: the no-allocation-on-the-hot-path test asserts this does not
  /// move across repeated forwards.
  int growth_events() const noexcept { return growth_events_; }

  /// Total bytes currently reserved across all pools (slab included).
  std::int64_t capacity_bytes() const noexcept { return accounted_bytes_; }

 private:
  template <typename T>
  T* ensure(std::vector<T>& pool, std::int64_t n) {
    PB_CHECK(n >= 0, "negative scratch request");
    const auto need = static_cast<std::size_t>(n);
    if (pool.size() < need) {
      // Geometric growth so a pyramid of layer sizes settles in O(log) grows.
      std::size_t cap = pool.size() < 64 ? 64 : pool.size();
      while (cap < need) cap *= 2;
      grow(pool, cap);
    }
    return pool.data();
  }

  template <typename T>
  void reserve_pool(std::vector<T>& pool, std::int64_t n) {
    PB_CHECK(n >= 0, "negative scratch reservation");
    const auto need = static_cast<std::size_t>(n);
    if (pool.size() >= need) return;  // warm no-op: nothing moves
    grow(pool, need);
  }

  template <typename T>
  void grow(std::vector<T>& pool, std::size_t to) {
    const std::int64_t delta =
        static_cast<std::int64_t>((to - pool.size()) * sizeof(T));
    if (device_ != nullptr) device_->allocate(delta);
    accounted_bytes_ += delta;
    pool.resize(to);
    ++growth_events_;
    count_buffer_alloc();  // the zero-allocation proof hook
  }

  oclsim::Device* device_;
  std::vector<std::int32_t> i32_;
  std::vector<float> f32_;
  std::vector<std::uint8_t> u8_;
  std::vector<std::uint64_t> words_;
  std::vector<std::uint64_t> slab_;
  std::int64_t accounted_bytes_ = 0;
  int growth_events_ = 0;
};

/// Engine-owned pool of warm scratch arenas, checked out one per execution
/// session. A session returns its arena on destruction, so the next session
/// inherits the high-water-mark buffers instead of re-growing them — with a
/// bounded number of concurrent sessions, device-memory accounting is flat
/// after warm-up. Thread-safe: sessions are created/destroyed from worker
/// threads (serve::BatchRunner).
class ArenaPool {
 public:
  /// `device` (optional) receives the simulated-allocation accounting of
  /// every arena created by this pool.
  explicit ArenaPool(oclsim::Device* device = nullptr) : device_(device) {}

  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  /// Pops a warm arena, or creates a cold one when every arena is in use.
  std::unique_ptr<ScratchArena> acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!idle_.empty()) {
        auto arena = std::move(idle_.back());
        idle_.pop_back();
        return arena;
      }
      ++created_;
    }
    count_buffer_alloc();  // cold arena minted — warm checkout is free
    return std::make_unique<ScratchArena>(device_);
  }

  /// Returns an arena to the pool for reuse (keeps its grown buffers warm).
  void release(std::unique_ptr<ScratchArena> arena) {
    if (arena == nullptr) return;
    std::lock_guard<std::mutex> lock(mu_);
    idle_.push_back(std::move(arena));
  }

  /// Arenas created over the pool's lifetime. Stable once enough arenas
  /// exist to cover peak session concurrency — the pool-level analogue of
  /// ScratchArena::growth_events().
  int created() const {
    std::lock_guard<std::mutex> lock(mu_);
    return created_;
  }

  /// Arenas currently checked in (idle, warm).
  std::size_t idle_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return idle_.size();
  }

 private:
  oclsim::Device* device_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ScratchArena>> idle_;
  int created_ = 0;
};

}  // namespace phonebit::core
