// PhoneBit — trained-model converter (the "Convert to PhoneBit format" step
// of Fig. 2). Binarizes weights by sign, folds batch-norm + bias into the
// per-channel threshold ξ, and assembles the runnable Network:
//   first conv  -> InputConv2d (8-bit bit-plane path, Eqn 2)
//   middle conv -> BinaryConv2d (fused xor/popcount path)
//   pool        -> MaxPool2d (packed OR)
//   middle fc   -> BinaryDense
//   last layer  -> FloatConv2d / FloatDense (kept full precision, §VII)
// Activations on binary layers are subsumed by binarization (standard BNN
// conversion); the last layer must be linear.
#pragma once

#include <memory>

#include "core/float_model.hpp"
#include "core/network.hpp"

namespace phonebit::core {

/// Converts a trained full-precision model into a PhoneBit binary network.
std::unique_ptr<Network> convert_to_phonebit(const FloatModel& model);

}  // namespace phonebit::core
