// PhoneBit — the inference engine and its execution sessions.
//
// The Engine is the immutable-at-inference-time host state: the simulated
// device, the engine options, and a pool of warm scratch arenas. All mutable
// per-invocation state (command queue + profiling events, scratch arena,
// options snapshot) lives in an ExecSession, so one Engine can serve many
// concurrent forwards — each thread creates its own session and runs
// Network::forward (const) through it. This is the same compiled-model /
// per-invocation-interpreter cut Larq Compute Engine and daBNN make.
#pragma once

#include <memory>
#include <utility>

#include <string>

#include "core/arena.hpp"
#include "core/layer.hpp"
#include "core/options.hpp"
#include "oclsim/runtime.hpp"

namespace phonebit::artifact {
struct LoadedArtifact;  // artifact.hpp — deserialized network + plan
}

namespace phonebit::core {

/// One execution stream on an Engine: owns its own command queue (profiling
/// events), a scratch arena checked out of the engine's pool, and a snapshot
/// of the engine options taken at creation time.
///
/// Sessions are cheap (the arena arrives warm after the pool's first
/// generation) and single-threaded: one session serves one forward at a
/// time. For parallelism, create one session per thread — sessions of the
/// same engine never share mutable state. The arena returns to the pool on
/// destruction, so steady-state device-memory accounting is flat.
class ExecSession {
 public:
  ExecSession(ExecSession&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)),
        queue_(std::move(other.queue_)), arena_(std::move(other.arena_)),
        opts_(other.opts_), stats_(other.stats_) {}
  ExecSession& operator=(ExecSession&&) = delete;
  ExecSession(const ExecSession&) = delete;
  ExecSession& operator=(const ExecSession&) = delete;

  ~ExecSession() {
    if (pool_ != nullptr) pool_->release(std::move(arena_));
  }

  /// Execution context for Network::forward / Layer::forward. References
  /// session-owned state: must not outlive this session.
  ExecContext context() {
    return ExecContext{*queue_, opts_, *arena_, &stats_};
  }

  /// The session's private command queue (profiling event log).
  oclsim::CommandQueue& queue() noexcept { return *queue_; }

  /// The scratch arena checked out for this session's lifetime.
  ScratchArena& arena() noexcept { return *arena_; }

  /// The EngineOptions snapshot taken when the session was created.
  const EngineOptions& options() const noexcept { return opts_; }

  /// Clears the session's profiling event log.
  void reset_profile() { queue_->reset_events(); }

  /// Compile/selection counters of every forward driven through this
  /// session (the zero-re-selection contract is asserted on these).
  const SessionStats& stats() const noexcept { return stats_; }

 private:
  friend class Engine;

  ExecSession(ArenaPool& pool, oclsim::Device& device, oclsim::ExecUnit unit,
              const EngineOptions& opts)
      : pool_(&pool),
        queue_(std::make_unique<oclsim::CommandQueue>(device, unit)),
        arena_(pool.acquire()), opts_(opts) {}

  ArenaPool* pool_;  // null only in the moved-from shell
  std::unique_ptr<oclsim::CommandQueue> queue_;
  std::unique_ptr<ScratchArena> arena_;
  const EngineOptions opts_;  // snapshot — engine mutation can't reach it
  SessionStats stats_{};
};

/// The engine: device + options + arena pool. Immutable during inference —
/// all execution goes through sessions. One Engine can run many Networks on
/// many sessions concurrently.
class Engine {
 public:
  /// Creates an engine on `device` (the GPU of the simulated SoC).
  explicit Engine(std::shared_ptr<oclsim::Device> device,
                  EngineOptions opts = {})
      : device_(std::move(device)), opts_(opts), arena_pool_(device_.get()) {
    PB_CHECK(device_ != nullptr, "engine needs a device");
  }

  /// Creates an execution session: a private command queue, a warm arena
  /// from the pool, and a snapshot of the current options. Thread-safe
  /// against other create_session() calls and running sessions; do not
  /// mutate options() concurrently with session creation.
  ExecSession create_session() {
    return ExecSession(arena_pool_, *device_, oclsim::ExecUnit::kGpu, opts_);
  }

  /// Loads a compiled artifact (.pba, artifact.hpp) and validates it
  /// against this engine's device profile: the plan's exact activation
  /// slab + scratch peak plus the packed parameters must fit the device's
  /// RAM budget (throws OutOfMemoryError when they cannot — the artifact
  /// was compiled for a bigger phone). Format/structure mismatches throw
  /// InvalidArgument naming the offending section and byte offset. The
  /// returned plan runs on this engine's sessions with zero re-planning.
  /// Defined in artifact.cpp.
  ::phonebit::artifact::LoadedArtifact load_artifact(
      const std::string& path) const;

  /// load_artifact, wrapped for repositories: the shared_ptr form every
  /// multi-request consumer wants (serve::BatchRunner pins plans through
  /// it, serve::ModelServer's hot-swap replaces entries with it while
  /// in-flight requests keep the old artifact alive). Same validation and
  /// exceptions as load_artifact. Defined in artifact.cpp.
  std::shared_ptr<const ::phonebit::artifact::LoadedArtifact>
  load_artifact_shared(const std::string& path) const;

  const EngineOptions& options() const noexcept { return opts_; }
  /// Mutable options — configuration phase only. Existing sessions hold
  /// their creation-time snapshot and are unaffected.
  EngineOptions& options() noexcept { return opts_; }

  oclsim::Device& device() noexcept { return *device_; }

  /// The warm-arena pool (exposed for pool-lifecycle tests/metrics).
  ArenaPool& arena_pool() noexcept { return arena_pool_; }

 private:
  std::shared_ptr<oclsim::Device> device_;
  EngineOptions opts_;
  ArenaPool arena_pool_;
};

}  // namespace phonebit::core
