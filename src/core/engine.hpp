// PhoneBit — the inference engine: a simulated device + command queue +
// engine options, matching the host-side state the OpenCL engine keeps on a
// phone. One Engine can run many Networks.
#pragma once

#include <memory>

#include "core/layer.hpp"
#include "core/options.hpp"
#include "oclsim/runtime.hpp"

namespace phonebit::core {

class Engine {
 public:
  /// Creates an engine on `device` (the GPU of the simulated SoC).
  explicit Engine(std::shared_ptr<oclsim::Device> device,
                  EngineOptions opts = {})
      : device_(std::move(device)),
        queue_(*device_, oclsim::ExecUnit::kGpu), opts_(opts),
        arena_(device_.get()) {
    PB_CHECK(device_ != nullptr, "engine needs a device");
  }

  /// Execution context for Network::forward.
  ExecContext context() { return ExecContext{queue_, opts_, arena_}; }

  /// Engine-lifetime scratch arena (reused by every forward on this engine).
  ScratchArena& arena() noexcept { return arena_; }

  oclsim::CommandQueue& queue() noexcept { return queue_; }
  const EngineOptions& options() const noexcept { return opts_; }
  EngineOptions& options() noexcept { return opts_; }
  oclsim::Device& device() noexcept { return *device_; }

  /// Clears the profiling event log.
  void reset_profile() { queue_.reset_events(); }

 private:
  std::shared_ptr<oclsim::Device> device_;
  oclsim::CommandQueue queue_;
  EngineOptions opts_;
  ScratchArena arena_;
};

}  // namespace phonebit::core
