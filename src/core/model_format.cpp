#include "core/model_format.hpp"

#include <cstdint>
#include <fstream>
#include <vector>

#include "core/binary_conv.hpp"
#include "core/dense.hpp"
#include "core/float_conv.hpp"
#include "core/input_conv.hpp"
#include "core/pooling.hpp"

namespace phonebit::core {
namespace {

constexpr std::uint32_t kMagic = 0x54494250u;  // "PBIT" little-endian
constexpr std::uint32_t kVersion = 1;

enum class LayerKind : std::uint8_t {
  kInputConv = 0,
  kBinaryConv = 1,
  kMaxPool = 2,
  kBinaryDense = 3,
  kFloatConv = 4,
  kFloatDense = 5,
};

// --- little-endian primitive I/O -------------------------------------------

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw FormatError("unexpected end of model file");
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const auto len = read_pod<std::uint32_t>(is);
  if (len > (1u << 20)) throw FormatError("implausible string length");
  std::string s(len, '\0');
  is.read(s.data(), len);
  if (!is) throw FormatError("unexpected end of model file");
  return s;
}

void write_shape(std::ostream& os, const Shape& s) {
  write_pod<std::int64_t>(os, s.n);
  write_pod<std::int64_t>(os, s.h);
  write_pod<std::int64_t>(os, s.w);
  write_pod<std::int64_t>(os, s.c);
}

Shape read_shape(std::istream& is) {
  Shape s;
  s.n = read_pod<std::int64_t>(is);
  s.h = read_pod<std::int64_t>(is);
  s.w = read_pod<std::int64_t>(is);
  s.c = read_pod<std::int64_t>(is);
  return s;
}

void write_geom(std::ostream& os, const ConvGeometry& g) {
  write_pod<std::int64_t>(os, g.kernel_h);
  write_pod<std::int64_t>(os, g.kernel_w);
  write_pod<std::int64_t>(os, g.stride_h);
  write_pod<std::int64_t>(os, g.stride_w);
  write_pod<std::int64_t>(os, g.pad_h);
  write_pod<std::int64_t>(os, g.pad_w);
}

ConvGeometry read_geom(std::istream& is) {
  ConvGeometry g;
  g.kernel_h = read_pod<std::int64_t>(is);
  g.kernel_w = read_pod<std::int64_t>(is);
  g.stride_h = read_pod<std::int64_t>(is);
  g.stride_w = read_pod<std::int64_t>(is);
  g.pad_h = read_pod<std::int64_t>(is);
  g.pad_w = read_pod<std::int64_t>(is);
  return g;
}

void write_packed(std::ostream& os, const bitpack::PackedTensor& p) {
  write_shape(os, p.shape());
  write_pod<std::int64_t>(os, p.total_words());
  os.write(reinterpret_cast<const char*>(p.data()),
           static_cast<std::streamsize>(p.total_words() * 8));
}

bitpack::PackedTensor read_packed(std::istream& is) {
  const Shape s = read_shape(is);
  bitpack::PackedTensor p(s);
  const auto words = read_pod<std::int64_t>(is);
  if (words != p.total_words()) throw FormatError("packed word count mismatch");
  is.read(reinterpret_cast<char*>(p.data()),
          static_cast<std::streamsize>(words * 8));
  if (!is) throw FormatError("unexpected end of packed data");
  return p;
}

void write_floats(std::ostream& os, const std::vector<float>& v) {
  write_pod<std::uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * 4));
}

std::vector<float> read_floats(std::istream& is) {
  const auto n = read_pod<std::uint64_t>(is);
  std::vector<float> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * 4));
  if (!is) throw FormatError("unexpected end of float data");
  return v;
}

void write_float_tensor(std::ostream& os, const FloatTensor& t) {
  PB_CHECK(t.layout() == Layout::kNHWC, "serialize NHWC tensors only");
  write_shape(os, t.shape());
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.bytes()));
}

FloatTensor read_float_tensor(std::istream& is) {
  const Shape s = read_shape(is);
  FloatTensor t(s, Layout::kNHWC);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.bytes()));
  if (!is) throw FormatError("unexpected end of tensor data");
  return t;
}

void write_folded_bn(std::ostream& os, const FoldedBatchNorm& f) {
  write_floats(os, f.xi);
  write_pod<std::uint64_t>(os, f.gamma_pos.size());
  os.write(reinterpret_cast<const char*>(f.gamma_pos.data()),
           static_cast<std::streamsize>(f.gamma_pos.size()));
}

FoldedBatchNorm read_folded_bn(std::istream& is) {
  FoldedBatchNorm f;
  f.xi = read_floats(is);
  const auto n = read_pod<std::uint64_t>(is);
  f.gamma_pos.resize(n);
  is.read(reinterpret_cast<char*>(f.gamma_pos.data()),
          static_cast<std::streamsize>(n));
  if (!is) throw FormatError("unexpected end of BN data");
  if (f.xi.size() != f.gamma_pos.size()) {
    throw FormatError("folded BN arrays disagree in length");
  }
  return f;
}

/// Raw BN parameters that binarize identically to the folded constants:
/// gamma = ±1, sigma = 1, mu = xi, beta = 0, bias = 0
/// => x3 = ±(x1 - xi), whose sign test is exactly Eqn 8.
std::vector<BatchNormParams> synthesize_bn(const FoldedBatchNorm& f) {
  std::vector<BatchNormParams> bn;
  bn.reserve(f.xi.size());
  for (std::size_t c = 0; c < f.xi.size(); ++c) {
    BatchNormParams p;
    p.gamma = f.gamma_pos[c] != 0 ? 1.0f : -1.0f;
    p.beta = 0.0f;
    p.mu = f.xi[c];
    p.sigma = 1.0f;
    bn.push_back(p);
  }
  return bn;
}

}  // namespace

void save_model(const Network& net, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw FormatError("cannot open '" + path + "' for writing");
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_string(os, net.name());
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(net.size()));

  for (const auto& layer : net.layers()) {
    if (const auto* l = dynamic_cast<const InputConv2d*>(layer.get())) {
      write_pod(os, static_cast<std::uint8_t>(LayerKind::kInputConv));
      write_string(os, l->name());
      write_geom(os, l->geometry());
      write_packed(os, l->weights());
      write_folded_bn(os, l->folded_bn());
    } else if (const auto* l = dynamic_cast<const BinaryConv2d*>(layer.get())) {
      write_pod(os, static_cast<std::uint8_t>(LayerKind::kBinaryConv));
      write_string(os, l->name());
      write_geom(os, l->geometry());
      write_packed(os, l->weights());
      write_folded_bn(os, l->folded_bn());
    } else if (const auto* l = dynamic_cast<const MaxPool2d*>(layer.get())) {
      write_pod(os, static_cast<std::uint8_t>(LayerKind::kMaxPool));
      write_string(os, l->name());
      write_pod<std::int64_t>(os, l->geometry().size);
      write_pod<std::int64_t>(os, l->geometry().stride);
      write_pod<std::int64_t>(os, l->geometry().pad);
      write_pod<std::uint8_t>(os, l->geometry().tail_pad ? 1 : 0);
    } else if (const auto* l = dynamic_cast<const BinaryDense*>(layer.get())) {
      write_pod(os, static_cast<std::uint8_t>(LayerKind::kBinaryDense));
      write_string(os, l->name());
      write_packed(os, l->weights());
      write_folded_bn(os, l->folded_bn());
    } else if (const auto* l = dynamic_cast<const FloatConv2d*>(layer.get())) {
      write_pod(os, static_cast<std::uint8_t>(LayerKind::kFloatConv));
      write_string(os, l->name());
      write_geom(os, l->geometry());
      write_float_tensor(os, l->weights());
      write_floats(os, l->bias());
    } else if (const auto* l = dynamic_cast<const FloatDense*>(layer.get())) {
      write_pod(os, static_cast<std::uint8_t>(LayerKind::kFloatDense));
      write_string(os, l->name());
      write_float_tensor(os, l->weights());
      write_floats(os, l->bias());
    } else {
      throw InvalidArgument("layer '" + layer->name() +
                            "' is not serializable");
    }
  }
  if (!os) throw FormatError("write failure on '" + path + "'");
}

std::unique_ptr<Network> load_model(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw FormatError("cannot open '" + path + "'");
  if (read_pod<std::uint32_t>(is) != kMagic) {
    throw FormatError("'" + path + "' is not a PhoneBit model (bad magic)");
  }
  if (read_pod<std::uint32_t>(is) != kVersion) {
    throw FormatError("unsupported PhoneBit model version");
  }
  auto net = std::make_unique<Network>(read_string(is));
  const auto count = read_pod<std::uint32_t>(is);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto kind = static_cast<LayerKind>(read_pod<std::uint8_t>(is));
    const std::string name = read_string(is);
    switch (kind) {
      case LayerKind::kInputConv: {
        const ConvGeometry g = read_geom(is);
        auto w = read_packed(is);
        const FoldedBatchNorm f = read_folded_bn(is);
        net->add(std::make_unique<InputConv2d>(name, std::move(w),
                                               synthesize_bn(f),
                                               std::vector<float>{}, g));
        break;
      }
      case LayerKind::kBinaryConv: {
        const ConvGeometry g = read_geom(is);
        auto w = read_packed(is);
        const FoldedBatchNorm f = read_folded_bn(is);
        net->add(std::make_unique<BinaryConv2d>(name, std::move(w),
                                                synthesize_bn(f),
                                                std::vector<float>{}, g));
        break;
      }
      case LayerKind::kMaxPool: {
        PoolGeometry g;
        g.size = read_pod<std::int64_t>(is);
        g.stride = read_pod<std::int64_t>(is);
        g.pad = read_pod<std::int64_t>(is);
        g.tail_pad = read_pod<std::uint8_t>(is) != 0;
        net->add(std::make_unique<MaxPool2d>(name, g));
        break;
      }
      case LayerKind::kBinaryDense: {
        auto w = read_packed(is);
        const FoldedBatchNorm f = read_folded_bn(is);
        net->add(std::make_unique<BinaryDense>(name, std::move(w),
                                               synthesize_bn(f),
                                               std::vector<float>{}));
        break;
      }
      case LayerKind::kFloatConv: {
        const ConvGeometry g = read_geom(is);
        auto w = read_float_tensor(is);
        auto bias = read_floats(is);
        net->add(std::make_unique<FloatConv2d>(name, std::move(w),
                                               std::move(bias), g));
        break;
      }
      case LayerKind::kFloatDense: {
        auto w = read_float_tensor(is);
        auto bias = read_floats(is);
        net->add(std::make_unique<FloatDense>(name, std::move(w),
                                              std::move(bias)));
        break;
      }
      default:
        throw FormatError("unknown layer kind in '" + path + "'");
    }
  }
  return net;
}

}  // namespace phonebit::core
