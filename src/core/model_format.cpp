#include "core/model_format.hpp"

#include <cstdint>
#include <fstream>
#include <vector>

#include "core/binary_conv.hpp"
#include "core/dense.hpp"
#include "core/float_conv.hpp"
#include "core/input_conv.hpp"
#include "core/pooling.hpp"
#include "core/wire.hpp"

namespace phonebit::core {
namespace {

using wire::ByteReader;
using wire::ByteWriter;
using wire::LayerKind;  // shared with the .pba artifact — one numbering

constexpr std::uint32_t kMagic = 0x54494250u;  // "PBIT" little-endian
constexpr std::uint32_t kVersion = 1;

/// Raw BN parameters that binarize identically to the folded constants:
/// gamma = ±1, sigma = 1, mu = xi, beta = 0, bias = 0
/// => x3 = ±(x1 - xi), whose sign test is exactly Eqn 8.
std::vector<BatchNormParams> synthesize_bn(const FoldedBatchNorm& f) {
  std::vector<BatchNormParams> bn;
  bn.reserve(f.xi.size());
  for (std::size_t c = 0; c < f.xi.size(); ++c) {
    BatchNormParams p;
    p.gamma = f.gamma_pos[c] != 0 ? 1.0f : -1.0f;
    p.beta = 0.0f;
    p.mu = f.xi[c];
    p.sigma = 1.0f;
    bn.push_back(p);
  }
  return bn;
}

}  // namespace

void save_model(const Network& net, const std::string& path) {
  ByteWriter w;
  w.pod(kMagic);
  w.pod(kVersion);
  w.str(net.name());
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(net.size()));

  for (const auto& layer : net.layers()) {
    if (const auto* l = dynamic_cast<const InputConv2d*>(layer.get())) {
      w.pod(static_cast<std::uint8_t>(LayerKind::kInputConv));
      w.str(l->name());
      w.geom(l->geometry());
      w.packed(l->weights());
      w.folded_bn(l->folded_bn());
    } else if (const auto* l = dynamic_cast<const BinaryConv2d*>(layer.get())) {
      w.pod(static_cast<std::uint8_t>(LayerKind::kBinaryConv));
      w.str(l->name());
      w.geom(l->geometry());
      w.packed(l->weights());
      w.folded_bn(l->folded_bn());
    } else if (const auto* l = dynamic_cast<const MaxPool2d*>(layer.get())) {
      w.pod(static_cast<std::uint8_t>(LayerKind::kMaxPool));
      w.str(l->name());
      w.pod<std::int64_t>(l->geometry().size);
      w.pod<std::int64_t>(l->geometry().stride);
      w.pod<std::int64_t>(l->geometry().pad);
      w.pod<std::uint8_t>(l->geometry().tail_pad ? 1 : 0);
    } else if (const auto* l = dynamic_cast<const BinaryDense*>(layer.get())) {
      w.pod(static_cast<std::uint8_t>(LayerKind::kBinaryDense));
      w.str(l->name());
      w.packed(l->weights());
      w.folded_bn(l->folded_bn());
    } else if (const auto* l = dynamic_cast<const FloatConv2d*>(layer.get())) {
      w.pod(static_cast<std::uint8_t>(LayerKind::kFloatConv));
      w.str(l->name());
      w.geom(l->geometry());
      w.float_tensor(l->weights());
      w.floats(l->bias());
    } else if (const auto* l = dynamic_cast<const FloatDense*>(layer.get())) {
      w.pod(static_cast<std::uint8_t>(LayerKind::kFloatDense));
      w.str(l->name());
      w.float_tensor(l->weights());
      w.floats(l->bias());
    } else {
      throw InvalidArgument("layer '" + layer->name() +
                            "' is not serializable");
    }
  }

  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw FormatError("cannot open '" + path + "' for writing");
  os.write(reinterpret_cast<const char*>(w.buffer().data()),
           static_cast<std::streamsize>(w.buffer().size()));
  if (!os) throw FormatError("write failure on '" + path + "'");
}

std::unique_ptr<Network> load_model(const std::string& path) {
  // Model-file failures are FormatError (the historical .pbm contract);
  // the reader still reports the section + byte offset.
  const std::vector<std::uint8_t> buf = wire::read_file(
      path, [](const std::string& msg) { throw FormatError(msg); });
  ByteReader r(buf.data(), buf.size(), [&path](const std::string& msg) {
    throw FormatError("model '" + path + "': " + msg);
  });

  if (r.pod<std::uint32_t>() != kMagic) {
    throw FormatError("'" + path + "' is not a PhoneBit model (bad magic)");
  }
  if (r.pod<std::uint32_t>() != kVersion) {
    throw FormatError("unsupported PhoneBit model version");
  }
  auto net = std::make_unique<Network>(r.str());
  const auto count = r.pod<std::uint32_t>();
  r.set_section("layers");
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto kind = static_cast<LayerKind>(r.pod<std::uint8_t>());
    const std::string name = r.str();
    switch (kind) {
      case LayerKind::kInputConv: {
        const ConvGeometry g = r.geom();
        auto w = r.packed();
        const FoldedBatchNorm f = r.folded_bn();
        net->add(std::make_unique<InputConv2d>(name, std::move(w),
                                               synthesize_bn(f),
                                               std::vector<float>{}, g));
        break;
      }
      case LayerKind::kBinaryConv: {
        const ConvGeometry g = r.geom();
        auto w = r.packed();
        const FoldedBatchNorm f = r.folded_bn();
        net->add(std::make_unique<BinaryConv2d>(name, std::move(w),
                                                synthesize_bn(f),
                                                std::vector<float>{}, g));
        break;
      }
      case LayerKind::kMaxPool: {
        PoolGeometry g;
        g.size = r.pod<std::int64_t>();
        g.stride = r.pod<std::int64_t>();
        g.pad = r.pod<std::int64_t>();
        g.tail_pad = r.pod<std::uint8_t>() != 0;
        net->add(std::make_unique<MaxPool2d>(name, g));
        break;
      }
      case LayerKind::kBinaryDense: {
        auto w = r.packed();
        const FoldedBatchNorm f = r.folded_bn();
        net->add(std::make_unique<BinaryDense>(name, std::move(w),
                                               synthesize_bn(f),
                                               std::vector<float>{}));
        break;
      }
      case LayerKind::kFloatConv: {
        const ConvGeometry g = r.geom();
        auto w = r.float_tensor();
        auto bias = r.floats();
        net->add(std::make_unique<FloatConv2d>(name, std::move(w),
                                               std::move(bias), g));
        break;
      }
      case LayerKind::kFloatDense: {
        auto w = r.float_tensor();
        auto bias = r.floats();
        net->add(std::make_unique<FloatDense>(name, std::move(w),
                                              std::move(bias)));
        break;
      }
      default:
        throw FormatError("unknown layer kind in '" + path + "'");
    }
  }
  return net;
}

}  // namespace phonebit::core
