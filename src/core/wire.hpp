// PhoneBit — wire-format primitives shared by the on-disk containers
// (model_format.cpp's .pbm checkpoints and artifact.cpp's .pba compiled
// artifacts).
//
// Both formats are compact little-endian binary containers; this header
// owns the primitive encode/decode layer so the two cannot drift:
//
//   ByteWriter — appends PODs/strings/tensors to an in-memory payload
//     buffer. Building the payload in memory (rather than streaming to the
//     file) is what makes the artifact checksum and the exact
//     payload-length header field cheap to produce.
//   ByteReader — consumes a fully-loaded buffer, tracking the absolute
//     byte offset and a caller-maintained section label. EVERY decode
//     failure (truncation, implausible length, invalid enum, violated
//     invariant) funnels through fail(), which formats
//     "<what> (section '<name>', byte offset <off>)" and hands the message
//     to the caller-supplied thrower — model_format throws FormatError,
//     the artifact loader throws InvalidArgument, both with the same
//     diagnosable section + offset payload.
//
// Byte order: fields are memcpy'd in host order. Containers that must be
// portable record an endianness marker in their header (artifact.hpp) so a
// foreign-endian file fails loudly instead of decoding garbage.
#pragma once

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bitpack/packed_tensor.hpp"
#include "common/error.hpp"
#include "core/bn_fold.hpp"
#include "tensor/tensor.hpp"

namespace phonebit::core::wire {

/// FNV-1a 64-bit hash — the artifact payload checksum. Stable, dependency
/// free, and byte-order independent (it hashes the serialized bytes).
inline std::uint64_t fnv1a64(const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Guard against decoding a corrupted length field into a giant allocation:
/// no serialized string/array in either container is anywhere near this.
inline constexpr std::uint64_t kMaxWireString = 1u << 20;

/// Largest element count a deserialized tensor shape may describe. Checked
/// dimension by dimension (overflow-safe) before any allocation.
inline constexpr std::int64_t kMaxWireElems = std::int64_t{1} << 40;

/// Layer discriminators shared by BOTH on-disk containers (.pbm model
/// checkpoints and .pba compiled artifacts): one numbering, defined once,
/// so the formats cannot drift.
enum class LayerKind : std::uint8_t {
  kInputConv = 0,
  kBinaryConv = 1,
  kMaxPool = 2,
  kBinaryDense = 3,
  kFloatConv = 4,
  kFloatDense = 5,
};

/// Slurps a whole file; `fail` (must throw) receives the error message.
/// Shared by both container loaders so the I/O path cannot diverge.
inline std::vector<std::uint8_t> read_file(
    const std::string& path,
    const std::function<void(const std::string&)>& fail) {
  // ifstream happily opens directories on Linux and tellg() then reports a
  // garbage "size" (huge on tmpfs, -1 elsewhere) — gate on the file type
  // first so a wrong path fails with the contractual exception instead of
  // a bad_alloc from sizing a bogus buffer.
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) {
    fail("cannot read '" + path + "' (not a regular file)");
  }
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) fail("cannot open '" + path + "'");
  const std::streamoff size = is.tellg();
  if (size < 0) fail("cannot read '" + path + "'");
  is.seekg(0);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
  if (size > 0) is.read(reinterpret_cast<char*>(buf.data()), size);
  if (!is) fail("cannot read '" + path + "'");
  return buf;
}

class ByteWriter {
 public:
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    raw(&v, sizeof(T));
  }

  void raw(const void* data, std::size_t n) {
    if (n == 0) return;  // empty bias/array: data may be null
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  void str(const std::string& s) {
    PB_CHECK(s.size() <= kMaxWireString, "string too long to serialize");
    pod<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  void shape(const Shape& s) {
    pod<std::int64_t>(s.n);
    pod<std::int64_t>(s.h);
    pod<std::int64_t>(s.w);
    pod<std::int64_t>(s.c);
  }

  void geom(const ConvGeometry& g) {
    pod<std::int64_t>(g.kernel_h);
    pod<std::int64_t>(g.kernel_w);
    pod<std::int64_t>(g.stride_h);
    pod<std::int64_t>(g.stride_w);
    pod<std::int64_t>(g.pad_h);
    pod<std::int64_t>(g.pad_w);
  }

  void packed(const bitpack::PackedTensor& p) {
    shape(p.shape());
    pod<std::int64_t>(p.total_words());
    raw(p.data(), static_cast<std::size_t>(p.total_words()) * 8);
  }

  void floats(const std::vector<float>& v) {
    // Mirror the reader's cap: a file we can write but never read back
    // would fail at the wrong end, blaming the loader.
    PB_CHECK(v.size() <= kMaxWireString, "float array too long to serialize");
    pod<std::uint64_t>(v.size());
    raw(v.data(), v.size() * 4);
  }

  void float_tensor(const FloatTensor& t) {
    PB_CHECK(t.layout() == Layout::kNHWC, "serialize NHWC tensors only");
    shape(t.shape());
    raw(t.data(), static_cast<std::size_t>(t.bytes()));
  }

  void folded_bn(const FoldedBatchNorm& f) {
    floats(f.xi);
    PB_CHECK(f.gamma_pos.size() <= kMaxWireString,
             "BN array too long to serialize");
    pod<std::uint64_t>(f.gamma_pos.size());
    raw(f.gamma_pos.data(), f.gamma_pos.size());
  }

  /// Raw (unfolded) batch-norm parameters: the artifact stores these so a
  /// reconstructed layer re-folds to bit-identical constants AND keeps the
  /// exact float parameters the no-integration ablation path consumes.
  void bn_params(const std::vector<BatchNormParams>& bn) {
    PB_CHECK(bn.size() <= kMaxWireString,
             "BN param array too long to serialize");
    pod<std::uint64_t>(bn.size());
    for (const BatchNormParams& p : bn) {
      pod<float>(p.gamma);
      pod<float>(p.beta);
      pod<float>(p.mu);
      pod<float>(p.sigma);
    }
  }

  const std::vector<std::uint8_t>& buffer() const noexcept { return buf_; }
  std::int64_t offset() const noexcept {
    return static_cast<std::int64_t>(buf_.size());
  }

  /// Overwrites `n` previously written bytes at `at` (header back-patching).
  void patch(std::int64_t at, const void* data, std::size_t n) {
    PB_CHECK(at >= 0 && static_cast<std::size_t>(at) + n <= buf_.size(),
             "patch outside written region");
    std::memcpy(buf_.data() + at, data, n);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  /// `fail` receives the fully formatted message and MUST throw.
  using Thrower = std::function<void(const std::string&)>;

  ByteReader(const std::uint8_t* data, std::size_t size, Thrower fail)
      : data_(data), size_(size), fail_(std::move(fail)) {}

  /// Labels subsequent failures ("header", "network", "plan", ...).
  void set_section(std::string name) { section_ = std::move(name); }
  const std::string& section() const noexcept { return section_; }

  std::int64_t offset() const noexcept {
    return static_cast<std::int64_t>(cursor_);
  }
  std::int64_t remaining() const noexcept {
    return static_cast<std::int64_t>(size_ - cursor_);
  }

  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream os;
    os << what << " (section '" << section_ << "', byte offset " << offset()
       << ")";
    fail_(os.str());
    // The thrower's contract is to throw; if a buggy caller returns, keep
    // the [[noreturn]] promise honest rather than continuing to decode.
    std::abort();
  }

  void need(std::size_t n) const {
    if (size_ - cursor_ < n) {
      std::ostringstream os;
      os << "truncated input: need " << n << " bytes, " << (size_ - cursor_)
         << " remain";
      fail(os.str());
    }
  }

  /// Like need(), for storage a decoded length field implies: checked
  /// before the allocation, so corrupt lengths fail as truncation errors
  /// rather than multi-gigabyte allocation attempts.
  void need_ahead(std::size_t n) const { need(n); }

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    need(sizeof(T));
    std::memcpy(&v, data_ + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return v;
  }

  void raw(void* dst, std::size_t n) {
    if (n == 0) return;  // empty array: dst may be null
    need(n);
    std::memcpy(dst, data_ + cursor_, n);
    cursor_ += n;
  }

  void skip(std::size_t n) {
    need(n);
    cursor_ += n;
  }

  std::string str() {
    const auto len = pod<std::uint32_t>();
    if (len > kMaxWireString) fail("implausible string length");
    std::string s(len, '\0');
    raw(s.data(), len);
    return s;
  }

  Shape shape() {
    Shape s;
    s.n = pod<std::int64_t>();
    s.h = pod<std::int64_t>();
    s.w = pod<std::int64_t>();
    s.c = pod<std::int64_t>();
    return s;
  }

  /// A shape that must describe a real tensor (every dim positive, total
  /// element count bounded). The product is accumulated with an
  /// overflow-safe guard — Shape::elems() would signed-overflow (UB) on
  /// adversarial dims and a wrapped product could sneak past the cap.
  Shape positive_shape() {
    const Shape s = shape();
    std::int64_t elems = 1;
    for (const std::int64_t d : {s.n, s.h, s.w, s.c}) {
      if (d <= 0 || d > kMaxWireElems / elems) {
        fail("invalid tensor shape " + s.str());
      }
      elems *= d;
    }
    return s;
  }

  ConvGeometry geom() {
    ConvGeometry g;
    g.kernel_h = pod<std::int64_t>();
    g.kernel_w = pod<std::int64_t>();
    g.stride_h = pod<std::int64_t>();
    g.stride_w = pod<std::int64_t>();
    g.pad_h = pod<std::int64_t>();
    g.pad_w = pod<std::int64_t>();
    if (g.kernel_h <= 0 || g.kernel_w <= 0 || g.stride_h <= 0 ||
        g.stride_w <= 0 || g.pad_h < 0 || g.pad_w < 0) {
      fail("invalid conv geometry");
    }
    return g;
  }

  bitpack::PackedTensor packed() {
    const Shape s = positive_shape();
    // Bound the implied storage against the remaining bytes BEFORE
    // allocating, so a corrupted shape fails as a truncation instead of a
    // giant allocation attempt.
    const std::int64_t words =
        s.n * s.h * s.w * ceil_div(s.c, bitpack::kWordBits);
    need_ahead(static_cast<std::size_t>(words) * 8 + 8);
    bitpack::PackedTensor p(s);
    if (pod<std::int64_t>() != p.total_words()) {
      fail("packed word count mismatch");
    }
    raw(p.data(), static_cast<std::size_t>(words) * 8);
    return p;
  }

  std::vector<float> floats() {
    const auto n = pod<std::uint64_t>();
    if (n > kMaxWireString) fail("implausible float array length");
    need_ahead(n * 4);
    std::vector<float> v(n);
    raw(v.data(), n * 4);
    return v;
  }

  FloatTensor float_tensor() {
    const Shape s = positive_shape();
    need_ahead(static_cast<std::size_t>(s.elems()) * 4);
    FloatTensor t(s, Layout::kNHWC);
    raw(t.data(), static_cast<std::size_t>(t.bytes()));
    return t;
  }

  FoldedBatchNorm folded_bn() {
    FoldedBatchNorm f;
    f.xi = floats();
    const auto n = pod<std::uint64_t>();
    if (n > kMaxWireString) fail("implausible BN array length");
    f.gamma_pos.resize(n);
    raw(f.gamma_pos.data(), n);
    if (f.xi.size() != f.gamma_pos.size()) {
      fail("folded BN arrays disagree in length");
    }
    return f;
  }

  std::vector<BatchNormParams> bn_params() {
    const auto n = pod<std::uint64_t>();
    if (n > kMaxWireString) fail("implausible BN param count");
    std::vector<BatchNormParams> bn(n);
    for (BatchNormParams& p : bn) {
      p.gamma = pod<float>();
      p.beta = pod<float>();
      p.mu = pod<float>();
      p.sigma = pod<float>();
    }
    return bn;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t cursor_ = 0;
  std::string section_ = "header";
  Thrower fail_;
};

}  // namespace phonebit::core::wire
