#include "core/converter.hpp"

#include "bitpack/pack.hpp"
#include "core/binary_conv.hpp"
#include "core/dense.hpp"
#include "core/float_conv.hpp"
#include "core/input_conv.hpp"
#include "core/pooling.hpp"

namespace phonebit::core {

namespace {

/// BN vector for layers trained without batch-norm: identity statistics so
/// folding yields xi = -bias (conv bias still folds into the threshold).
std::vector<BatchNormParams> identity_bn(std::int64_t channels) {
  return std::vector<BatchNormParams>(static_cast<std::size_t>(channels),
                                      BatchNormParams{1.0f, 0.0f, 0.0f, 1.0f});
}

}  // namespace

std::unique_ptr<Network> convert_to_phonebit(const FloatModel& model) {
  const NetworkSpec& spec = model.spec;
  PB_CHECK(!spec.layers.empty(), "cannot convert an empty model");
  PB_CHECK(model.weights.size() == spec.layers.size(),
           "weights list does not parallel the layer specs");

  auto net = std::make_unique<Network>(spec.name + "-bnn");

  // Index of the last parameterized layer: stays full precision.
  std::size_t last_param = spec.layers.size();
  for (std::size_t i = spec.layers.size(); i-- > 0;) {
    if (!std::holds_alternative<PoolLayerSpec>(spec.layers[i])) {
      last_param = i;
      break;
    }
  }
  PB_CHECK(last_param < spec.layers.size(),
           "model has no parameterized layers");

  bool first_conv_seen = false;
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    const LayerSpec& layer = spec.layers[i];
    if (const auto* c = std::get_if<ConvLayerSpec>(&layer)) {
      const auto* w = std::get_if<ConvWeights>(&model.weights[i]);
      PB_CHECK(w != nullptr, c->name << ": missing conv weights");
      if (i == last_param) {
        PB_CHECK(c->act == Activation::kNone,
                 c->name << ": the full-precision output layer must be linear");
        net->add(std::make_unique<FloatConv2d>(c->name, w->w, w->bias,
                                               c->geom));
        continue;
      }
      auto packed = bitpack::pack_filter_signs(w->w);
      auto bn = w->bn.empty() ? identity_bn(c->c_out) : w->bn;
      if (!first_conv_seen) {
        first_conv_seen = true;
        net->add(std::make_unique<InputConv2d>(c->name, std::move(packed),
                                               std::move(bn), w->bias,
                                               c->geom));
      } else {
        net->add(std::make_unique<BinaryConv2d>(c->name, std::move(packed),
                                                std::move(bn), w->bias,
                                                c->geom));
      }
    } else if (const auto* p = std::get_if<PoolLayerSpec>(&layer)) {
      net->add(std::make_unique<MaxPool2d>(p->name, p->geom));
    } else if (const auto* d = std::get_if<DenseLayerSpec>(&layer)) {
      const auto* w = std::get_if<DenseWeights>(&model.weights[i]);
      PB_CHECK(w != nullptr, d->name << ": missing dense weights");
      if (i == last_param) {
        PB_CHECK(d->act == Activation::kNone,
                 d->name << ": the full-precision output layer must be linear");
        net->add(std::make_unique<FloatDense>(d->name, w->w, w->bias));
        continue;
      }
      auto packed = bitpack::pack_filter_signs(w->w);
      auto bn = w->bn.empty() ? identity_bn(d->out_features) : w->bn;
      net->add(std::make_unique<BinaryDense>(d->name, std::move(packed),
                                             std::move(bn), w->bias));
    }
  }
  return net;
}

}  // namespace phonebit::core
