#include "core/float_conv.hpp"

#include "bitpack/pack.hpp"
#include "core/costs.hpp"
#include "simd/vec.hpp"

namespace phonebit::core {

using bitpack::PackedTensor;
using oclsim::KernelCost;
using oclsim::NDRange;
using oclsim::WorkItem;

FloatConv2d::FloatConv2d(std::string name, FloatTensor weights,
                         std::vector<float> bias, ConvGeometry geom)
    : name_(std::move(name)), weights_(std::move(weights)),
      bias_(std::move(bias)), geom_(geom) {
  PB_CHECK(weights_.layout() == Layout::kNHWC,
           name_ << ": float filters must be NHWC");
  PB_CHECK(bias_.empty() ||
               static_cast<std::int64_t>(bias_.size()) == weights_.shape().n,
           name_ << ": bias count mismatch");
  PB_CHECK(weights_.shape().h == geom_.kernel_h &&
               weights_.shape().w == geom_.kernel_w,
           name_ << ": filter bank spatial dims disagree with geometry");
}

std::int64_t FloatConv2d::param_bytes() const {
  return weights_.bytes() +
         static_cast<std::int64_t>(bias_.size()) * 4;
}

std::int64_t FloatConv2d::param_count() const {
  const Shape& s = weights_.shape();
  return s.n * s.h * s.w * s.c + static_cast<std::int64_t>(bias_.size());
}

void FloatConv2d::plan(PlanContext& pc) const {
  const BlobDesc& in = pc.in();
  PB_CHECK(in.kind == BlobKind::kPacked || in.kind == BlobKind::kFloat,
           name_ << ": expects packed or float input, got " << in.str());
  PB_CHECK(in.shape.c == in_channels(),
           name_ << ": input has " << in.shape.c << " channels, filter "
                 << in_channels());
  // A packed input is unpacked to ±1 floats in arena f32 scratch first.
  if (in.kind == BlobKind::kPacked) pc.need_f32(in.shape.elems());
  KernelVariant v;
  v.kernel = in.kind == BlobKind::kPacked ? "unpack+fconv_dot" : "fconv_dot";
  pc.select(std::move(v));
  pc.produce(BlobDesc{BlobKind::kFloat,
                      Shape{in.shape.n, geom_.out_h(in.shape.h),
                            geom_.out_w(in.shape.w), out_channels()}});
}

Blob FloatConv2d::forward(ExecContext& ctx, const Blob& in) const {
  if (const auto* packed = std::get_if<PackedTensor>(&in)) {
    // Unpack kernel: packed bits -> ±1 floats, into arena f32 scratch.
    const Shape s = packed->shape();
    FloatTensor expanded(s, Layout::kNHWC, ctx.arena.f32(s.elems()));
    KernelCost cost;
    cost.scalar_ops = static_cast<double>(s.elems());
    cost.bytes_read = static_cast<double>(packed->bytes());
    cost.bytes_written = static_cast<double>(expanded.bytes());
    cost.coalescing = costs::coalescing(ctx.opts);
    cost.alu_efficiency = costs::kAuxKernelEff;
    ctx.queue.enqueue(name_ + ".unpack", NDRange{s.w, s.h, s.n}, cost,
                      [&](const WorkItem& it) {
                        for (std::int64_t c = 0; c < s.c; ++c) {
                          expanded(it.z, it.y, it.x, c) =
                              packed->get(it.z, it.y, it.x, c) ? 1.0f : -1.0f;
                        }
                      });
    return conv(ctx, expanded);
  }
  const auto* f = std::get_if<FloatTensor>(&in);
  PB_CHECK(f != nullptr, name_ << ": expects packed or float input");
  return conv(ctx, *f);
}

FloatTensor FloatConv2d::conv(ExecContext& ctx, const FloatTensor& in) const {
  PB_CHECK(in.layout() == Layout::kNHWC, name_ << ": input must be NHWC");
  const Shape& is = in.shape();
  PB_CHECK(is.c == in_channels(), name_ << ": channel mismatch");
  const std::int64_t oh = geom_.out_h(is.h);
  const std::int64_t ow = geom_.out_w(is.w);
  const std::int64_t c_out = out_channels();
  const std::int64_t kh = geom_.kernel_h, kw = geom_.kernel_w;
  FloatTensor out = ctx.make_float(Shape{is.n, oh, ow, c_out}, Layout::kNHWC);

  KernelCost cost;
  const double outputs = static_cast<double>(is.n) * oh * ow * c_out;
  cost.scalar_ops = outputs * static_cast<double>(kh * kw * is.c);
  cost.bytes_read =
      static_cast<double>(in.bytes()) + static_cast<double>(weights_.bytes());
  cost.bytes_written = static_cast<double>(out.bytes());
  cost.coalescing = costs::coalescing(ctx.opts);
  cost.alu_efficiency = costs::kFloatDotEff;  // float4 dot built-in (§VII)

  const std::vector<float>& bias = bias_;
  ctx.queue.enqueue(
      name_ + ".fconv_dot", NDRange{ow, oh, is.n * c_out}, cost,
      [&, oh, ow, kh, kw, c_out](const WorkItem& it) {
        const std::int64_t n = it.z / c_out;
        const std::int64_t co = it.z % c_out;
        float acc = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(co)];
        for (std::int64_t ky = 0; ky < kh; ++ky) {
          const std::int64_t iy = it.y * geom_.stride_h - geom_.pad_h + ky;
          if (iy < 0 || iy >= is.h) continue;  // zero padding
          for (std::int64_t kx = 0; kx < kw; ++kx) {
            const std::int64_t ix = it.x * geom_.stride_w - geom_.pad_w + kx;
            if (ix < 0 || ix >= is.w) continue;
            const float* px = &in(n, iy, ix, 0);
            const float* wt = &weights_(co, ky, kx, 0);
            std::int64_t c = 0;
            // float4 dot main loop + scalar tail, as the OpenCL kernel does.
            for (; c + 4 <= is.c; c += 4) {
              const auto a = simd::vload<float, 4>(0, px + c);
              const auto b = simd::vload<float, 4>(0, wt + c);
              acc += simd::dot(a, b);
            }
            for (; c < is.c; ++c) acc += px[c] * wt[c];
          }
        }
        out(n, it.y, it.x, co) = acc;
      });
  return out;
}

}  // namespace phonebit::core
