#include "core/float_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/rng.hpp"

namespace phonebit::core {

std::int64_t NetworkSpec::float_param_count() const {
  std::int64_t total = 0;
  for (const auto& layer : layers) {
    if (const auto* c = std::get_if<ConvLayerSpec>(&layer)) {
      total += c->c_out * c->geom.kernel_h * c->geom.kernel_w * c->c_in;
      total += c->c_out;                       // bias
      if (c->batch_norm) total += 4 * c->c_out;  // gamma,beta,mu,sigma
    } else if (const auto* d = std::get_if<DenseLayerSpec>(&layer)) {
      total += d->out_features * d->in_features + d->out_features;
      if (d->batch_norm) total += 4 * d->out_features;
    }
  }
  return total;
}

namespace {

std::vector<BatchNormParams> random_bn(Rng& rng, std::int64_t channels) {
  std::vector<BatchNormParams> bn;
  bn.reserve(static_cast<std::size_t>(channels));
  for (std::int64_t c = 0; c < channels; ++c) {
    BatchNormParams p;
    // Realistic trained ranges; gamma occasionally negative so the
    // sign-of-gamma path (Eqn 8) is genuinely exercised.
    p.gamma = rng.uniform(0.4f, 1.6f) * (rng.uniform() < 0.15f ? -1.0f : 1.0f);
    p.beta = rng.normal() * 0.3f;
    p.mu = rng.normal() * 2.0f;
    p.sigma = rng.uniform(0.5f, 3.0f);
    bn.push_back(p);
  }
  return bn;
}

std::vector<float> random_bias(Rng& rng, std::int64_t channels) {
  std::vector<float> b(static_cast<std::size_t>(channels));
  for (auto& x : b) x = rng.normal() * 0.1f;
  return b;
}

}  // namespace

FloatModel FloatModel::random(NetworkSpec spec, std::uint64_t seed) {
  Rng rng(seed);
  FloatModel model;
  model.weights.reserve(spec.layers.size());
  for (const auto& layer : spec.layers) {
    if (const auto* c = std::get_if<ConvLayerSpec>(&layer)) {
      ConvWeights w;
      w.w = FloatTensor(
          Shape{c->c_out, c->geom.kernel_h, c->geom.kernel_w, c->c_in},
          Layout::kNHWC);
      const float scale = 1.0f / std::sqrt(static_cast<float>(
                              c->geom.kernel_h * c->geom.kernel_w * c->c_in));
      w.w.fill_random(rng, scale);
      w.bias = random_bias(rng, c->c_out);
      if (c->batch_norm) w.bn = random_bn(rng, c->c_out);
      model.weights.emplace_back(std::move(w));
    } else if (const auto* d = std::get_if<DenseLayerSpec>(&layer)) {
      DenseWeights w;
      w.w = FloatTensor(Shape{d->out_features, 1, 1, d->in_features},
                        Layout::kNHWC);
      const float scale =
          1.0f / std::sqrt(static_cast<float>(d->in_features));
      w.w.fill_random(rng, scale);
      w.bias = random_bias(rng, d->out_features);
      if (d->batch_norm) w.bn = random_bn(rng, d->out_features);
      model.weights.emplace_back(std::move(w));
    } else {
      model.weights.emplace_back(std::monostate{});
    }
  }
  model.spec = std::move(spec);
  return model;
}

FloatModel FloatModel::random_redundant(NetworkSpec spec, std::uint64_t seed) {
  FloatModel model = random(std::move(spec), seed);
  // A separate stream for the redundancy overlay keeps random()'s draws —
  // and everything pinned to them — untouched.
  Rng rng(seed ^ 0xc2b2ae3d27d4eb4full);
  for (LayerWeights& lw : model.weights) {
    auto* cw = std::get_if<ConvWeights>(&lw);
    if (cw == nullptr) continue;
    const Shape& s = cw->w.shape();
    const std::int64_t fsize = s.h * s.w * s.c;  // taps per filter
    float* data = cw->w.data();
    for (std::int64_t f = 0; f < s.n; ++f) {
      const std::int64_t lane = f % 8;
      if (lane == 0) continue;  // the group base keeps its own draw
      std::memcpy(data + f * fsize, data + (f - lane) * fsize,
                  static_cast<std::size_t>(fsize) * sizeof(float));
      if (lane >= 4) {
        // Sparse sign flips: a small Hamming distance from the base, so
        // binarization yields a dictionary row plus a few-word XOR delta.
        const std::int64_t flips = std::max<std::int64_t>(1, fsize / 64);
        for (std::int64_t k = 0; k < flips; ++k) {
          const auto t = static_cast<std::int64_t>(
              rng.below(static_cast<std::uint64_t>(fsize)));
          data[f * fsize + t] = -data[f * fsize + t];
        }
      }
    }
  }
  return model;
}

}  // namespace phonebit::core
