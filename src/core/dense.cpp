#include "core/dense.hpp"

#include "bitpack/binary_ops.hpp"
#include "bitpack/flatten.hpp"
#include "core/binarize.hpp"
#include "core/costs.hpp"
#include "simd/vec.hpp"

namespace phonebit::core {

using bitpack::PackedTensor;
using oclsim::KernelCost;
using oclsim::NDRange;
using oclsim::WorkItem;

BinaryDense::BinaryDense(std::string name, PackedTensor weights,
                         std::vector<BatchNormParams> bn,
                         std::vector<float> bias)
    : name_(std::move(name)), weights_(std::move(weights)), bn_(std::move(bn)),
      bias_(std::move(bias)) {
  PB_CHECK(weights_.shape().h == 1 && weights_.shape().w == 1,
           name_ << ": dense weights must be (units,1,1,features)");
  PB_CHECK(static_cast<std::int64_t>(bn_.size()) == weights_.shape().n,
           name_ << ": BN channel count mismatch");
  PB_CHECK(weights_.shape().n % 8 == 0,
           name_ << ": units must be a multiple of 8 for byte packing");
  folded_ = fold_batch_norm(bn_, bias_);
}

std::int64_t BinaryDense::param_bytes() const {
  return weights_.bytes() + units() * 4 + ceil_div(units(), 8);
}

std::int64_t BinaryDense::param_count() const {
  return units() * in_features() + 5 * units();
}

void BinaryDense::plan(PlanContext& pc) const {
  const BlobDesc& in = pc.in();
  PB_CHECK(in.kind == BlobKind::kPacked,
           name_ << ": binary dense expects packed input, got " << in.str());
  const std::int64_t features = in.shape.h * in.shape.w * in.shape.c;
  PB_CHECK(features == in_features(), name_ << ": input features " << features
                                            << " != " << in_features());
  KernelVariant v;
  v.kernel = "bdense_fused";
  v.pack_width = dense_pack_width(pc.opts());
  pc.select(std::move(v));
  pc.produce(BlobDesc{BlobKind::kPacked, Shape{in.shape.n, 1, 1, units()}});
}

bitpack::PackWidth BinaryDense::dense_pack_width(
    const EngineOptions& opts) const {
  // The GEMV streams the whole flattened feature vector per unit — one
  // fused span of `words_per_pixel` words, so span keying applies exactly
  // as in the row-fused convs.
  return opts.pack_width_for_span(in_features(), weights_.words_per_pixel());
}

const PackedTensor& BinaryDense::checked_input(const Blob& in) const {
  const auto* packed = std::get_if<PackedTensor>(&in);
  PB_CHECK(packed != nullptr, name_ << ": binary dense expects packed input");
  return *packed;
}

Blob BinaryDense::forward(ExecContext& ctx, const Blob& in) const {
  const PackedTensor& packed = checked_input(in);
  if (ctx.stats != nullptr) ++ctx.stats->variant_selections;
  KernelVariant v;
  v.pack_width = dense_pack_width(ctx.opts);
  return execute(ctx, packed, v);
}

Blob BinaryDense::run(ExecContext& ctx, const Blob& in,
                      const PlanStep& step) const {
  return execute(ctx, checked_input(in), step.variant);
}

PackedTensor BinaryDense::execute(ExecContext& ctx, const PackedTensor& in,
                                  const KernelVariant& v) const {
  const PackedTensor flat = bitpack::flatten_packed(in);
  PB_CHECK(flat.shape().c == in_features(),
           name_ << ": input features " << flat.shape().c << " != "
                 << in_features());

  const std::int64_t n = flat.shape().n;
  const std::int64_t u = units();
  const std::int64_t words = weights_.words_per_pixel();
  const std::int64_t groups = u / 8;
  const auto pw = v.pack_width;
  const bool branch_free = ctx.opts.branch_free_binarize;
  PackedTensor out(Shape{n, 1, 1, u});
  const FoldedBatchNorm& fb = folded_;

  KernelCost cost;
  cost.bitop_bits =
      2.0 * static_cast<double>(n * u) *
      static_cast<double>(ceil_div(in_features(), bitpack::bits(pw)) *
                          bitpack::bits(pw));
  cost.scalar_ops = static_cast<double>(n * u) * 4.0;
  cost.pack_width_bits = bitpack::bits(pw);
  cost.instr_overhead_cycles = costs::instr_overhead(ctx.opts);
  cost.bytes_read = static_cast<double>(flat.bytes() + weights_.bytes());
  cost.bytes_written = static_cast<double>(out.bytes());
  cost.coalescing = costs::coalescing(ctx.opts);
  cost.alu_efficiency = costs::binary_kernel_eff(ctx.opts);

  auto* out_bytes = reinterpret_cast<std::uint8_t*>(out.data());
  const std::int64_t features = in_features();
  ctx.queue.enqueue(
      name_ + ".bdense_fused", NDRange{groups, n, 1}, cost,
      [&, words, groups, branch_free, pw, features](const WorkItem& it) {
        const std::int64_t sample = it.y;
        const std::uint64_t* x = flat.pixel(sample, 0, 0);
        std::uint8_t byte = 0;
        for (int f = 0; f < 8; ++f) {
          const std::int64_t unit = it.x * 8 + f;
          const std::int64_t mism =
              bitpack::xor_popcount(x, weights_.pixel(unit, 0, 0), words, pw);
          const float x1 = static_cast<float>(features - 2 * mism);
          const std::size_t ci = static_cast<std::size_t>(unit);
          const bool bit =
              branch_free
                  ? binarize_eqn9(x1, fb.xi[ci], fb.gamma_pos[ci] != 0)
                  : binarize_eqn8(x1, fb.xi[ci], fb.gamma_pos[ci] != 0);
          if (bit) byte = static_cast<std::uint8_t>(byte | (1u << f));
        }
        out_bytes[out.word_offset(sample, 0, 0, 0) * 8 + it.x] = byte;
      });
  return out;
}

FloatDense::FloatDense(std::string name, FloatTensor weights,
                       std::vector<float> bias)
    : name_(std::move(name)), weights_(std::move(weights)),
      bias_(std::move(bias)) {
  PB_CHECK(weights_.shape().h == 1 && weights_.shape().w == 1,
           name_ << ": dense weights must be (units,1,1,features)");
  PB_CHECK(bias_.empty() ||
               static_cast<std::int64_t>(bias_.size()) == weights_.shape().n,
           name_ << ": bias count mismatch");
}

std::int64_t FloatDense::param_bytes() const {
  return weights_.bytes() + static_cast<std::int64_t>(bias_.size()) * 4;
}

std::int64_t FloatDense::param_count() const {
  return units() * in_features() + static_cast<std::int64_t>(bias_.size());
}

void FloatDense::plan(PlanContext& pc) const {
  const BlobDesc& in = pc.in();
  PB_CHECK(in.kind == BlobKind::kPacked || in.kind == BlobKind::kFloat,
           name_ << ": expects packed or float input, got " << in.str());
  const std::int64_t features = in.shape.h * in.shape.w * in.shape.c;
  PB_CHECK(features == in_features(), name_ << ": input features " << features
                                            << " != " << in_features());
  KernelVariant v;
  v.kernel = in.kind == BlobKind::kPacked ? "unpack+fdense_dot" : "fdense_dot";
  pc.select(std::move(v));
  pc.produce(BlobDesc{BlobKind::kFloat, Shape{in.shape.n, 1, 1, units()}});
}

Blob FloatDense::forward(ExecContext& ctx, const Blob& in) const {
  // Expand packed input to ±1 floats; flatten float input if spatial.
  FloatTensor x;
  if (const auto* packed = std::get_if<PackedTensor>(&in)) {
    const PackedTensor flat = bitpack::flatten_packed(*packed);
    x = FloatTensor(flat.shape(), Layout::kNHWC);
    KernelCost cost;
    cost.scalar_ops = static_cast<double>(flat.shape().elems());
    cost.bytes_read = static_cast<double>(flat.bytes());
    cost.bytes_written = static_cast<double>(x.bytes());
    cost.alu_efficiency = costs::kAuxKernelEff;
    cost.coalescing = costs::coalescing(ctx.opts);
    ctx.queue.enqueue_chunked(
        name_ + ".unpack", NDRange{flat.shape().elems() / flat.shape().c,
                                   1, 1},
        cost, [&](std::int64_t begin, std::int64_t end) {
          const std::int64_t c = flat.shape().c;
          (void)begin;
          (void)end;
          for (std::int64_t s = begin; s < end; ++s) {
            for (std::int64_t i = 0; i < c; ++i) {
              x(s, 0, 0, i) = flat.get(s, 0, 0, i) ? 1.0f : -1.0f;
            }
          }
        });
  } else {
    const auto* f = std::get_if<FloatTensor>(&in);
    PB_CHECK(f != nullptr, name_ << ": expects packed or float input");
    const Shape s = f->shape();
    x = FloatTensor(Shape{s.n, 1, 1, s.h * s.w * s.c}, Layout::kNHWC);
    PB_CHECK(f->layout() == Layout::kNHWC, name_ << ": input must be NHWC");
    std::copy(f->data(), f->data() + s.elems(), x.data());
  }
  PB_CHECK(x.shape().c == in_features(),
           name_ << ": input features " << x.shape().c << " != "
                 << in_features());

  const std::int64_t n = x.shape().n;
  const std::int64_t u = units();
  const std::int64_t features = in_features();
  FloatTensor out(Shape{n, 1, 1, u}, Layout::kNHWC);

  KernelCost cost;
  cost.scalar_ops = static_cast<double>(n * u * features);
  cost.bytes_read =
      static_cast<double>(x.bytes()) + static_cast<double>(weights_.bytes());
  cost.bytes_written = static_cast<double>(out.bytes());
  cost.coalescing = costs::coalescing(ctx.opts);
  cost.alu_efficiency = costs::kFloatDotEff;

  const std::vector<float>& bias = bias_;
  ctx.queue.enqueue(
      name_ + ".fdense_dot", NDRange{u, n, 1}, cost,
      [&, features](const WorkItem& it) {
        const float* px = &x(it.y, 0, 0, 0);
        const float* wt = &weights_(it.x, 0, 0, 0);
        float acc = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(it.x)];
        std::int64_t c = 0;
        for (; c + 4 <= features; c += 4) {
          const auto a = simd::vload<float, 4>(0, px + c);
          const auto b = simd::vload<float, 4>(0, wt + c);
          acc += simd::dot(a, b);
        }
        for (; c < features; ++c) acc += px[c] * wt[c];
        out(it.y, 0, 0, it.x) = acc;
      });
  return out;
}

}  // namespace phonebit::core
