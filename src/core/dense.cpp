#include "core/dense.hpp"

#include <algorithm>
#include <cstring>

#include "bitpack/binary_ops.hpp"
#include "core/binarize.hpp"
#include "core/costs.hpp"
#include "simd/vec.hpp"

namespace phonebit::core {

using bitpack::PackedTensor;
using oclsim::KernelCost;
using oclsim::NDRange;
using oclsim::WorkItem;

BinaryDense::BinaryDense(std::string name, PackedTensor weights,
                         std::vector<BatchNormParams> bn,
                         std::vector<float> bias)
    : name_(std::move(name)), weights_(std::move(weights)), bn_(std::move(bn)),
      bias_(std::move(bias)) {
  PB_CHECK(weights_.shape().h == 1 && weights_.shape().w == 1,
           name_ << ": dense weights must be (units,1,1,features)");
  PB_CHECK(static_cast<std::int64_t>(bn_.size()) == weights_.shape().n,
           name_ << ": BN channel count mismatch");
  PB_CHECK(weights_.shape().n % 8 == 0,
           name_ << ": units must be a multiple of 8 for byte packing");
  folded_ = fold_batch_norm(bn_, bias_);
}

std::int64_t BinaryDense::param_bytes() const {
  return weights_.bytes() + units() * 4 + ceil_div(units(), 8);
}

std::int64_t BinaryDense::param_count() const {
  return units() * in_features() + 5 * units();
}

void BinaryDense::plan(PlanContext& pc) const {
  const BlobDesc& in = pc.in();
  PB_CHECK(in.kind == BlobKind::kPacked,
           name_ << ": binary dense expects packed input, got " << in.str());
  const std::int64_t features = in.shape.h * in.shape.w * in.shape.c;
  PB_CHECK(features == in_features(), name_ << ": input features " << features
                                            << " != " << in_features());
  // Word-aligned channels flatten zero-copy (the packed words of one NHWC
  // sample ARE the flattened bit vector); otherwise the bits re-pack into
  // arena words scratch to close the per-pixel padding gaps.
  if (in.shape.c % bitpack::kWordBits != 0) {
    pc.need_words(in.shape.n * weights_.words_per_pixel());
  }
  KernelVariant v;
  v.kernel = "bdense_fused";
  v.pack_width = dense_pack_width(pc.opts());
  pc.select(std::move(v));
  pc.produce(BlobDesc{BlobKind::kPacked, Shape{in.shape.n, 1, 1, units()}});
}

bitpack::PackWidth BinaryDense::dense_pack_width(
    const EngineOptions& opts) const {
  // The GEMV streams the whole flattened feature vector per unit — one
  // fused span of `words_per_pixel` words, so span keying applies exactly
  // as in the row-fused convs.
  return opts.pack_width_for_span(in_features(), weights_.words_per_pixel());
}

const PackedTensor& BinaryDense::checked_input(const Blob& in) const {
  const auto* packed = std::get_if<PackedTensor>(&in);
  PB_CHECK(packed != nullptr, name_ << ": binary dense expects packed input");
  return *packed;
}

Blob BinaryDense::forward(ExecContext& ctx, const Blob& in) const {
  const PackedTensor& packed = checked_input(in);
  if (ctx.stats != nullptr) ++ctx.stats->variant_selections;
  KernelVariant v;
  v.pack_width = dense_pack_width(ctx.opts);
  return execute(ctx, packed, v);
}

Blob BinaryDense::run(ExecContext& ctx, const Blob& in,
                      const PlanStep& step) const {
  return execute(ctx, checked_input(in), step.variant);
}

PackedTensor BinaryDense::execute(ExecContext& ctx, const PackedTensor& in,
                                  const KernelVariant& v) const {
  const Shape& is = in.shape();
  const std::int64_t features = is.h * is.w * is.c;
  PB_CHECK(features == in_features(), name_ << ": input features " << features
                                            << " != " << in_features());

  const std::int64_t n = is.n;
  const std::int64_t u = units();
  const std::int64_t words = weights_.words_per_pixel();

  // Flatten. NHWC channel-innermost packing means that when C is word-
  // aligned, the packed words of one sample ARE the flattened feature bit
  // vector — the GEMV reads the input words in place, no copy, no
  // allocation. Unaligned channels re-pack into arena words scratch
  // (declared at plan time) to close the per-pixel padding gaps.
  const std::uint64_t* flat = in.data();
  if (is.c % bitpack::kWordBits != 0) {
    std::uint64_t* repacked = ctx.arena.words(n * words);
    std::memset(repacked, 0, static_cast<std::size_t>(n * words) * 8);
    for (std::int64_t s = 0; s < n; ++s) {
      std::int64_t bit = 0;
      for (std::int64_t h = 0; h < is.h; ++h)
        for (std::int64_t w = 0; w < is.w; ++w)
          for (std::int64_t c = 0; c < is.c; ++c, ++bit)
            if (in.get(s, h, w, c)) {
              repacked[s * words + bit / bitpack::kWordBits] |=
                  std::uint64_t{1} << (bit % bitpack::kWordBits);
            }
    }
    flat = repacked;
  }

  const std::int64_t groups = u / 8;
  const auto pw = v.pack_width;
  const bool branch_free = ctx.opts.branch_free_binarize;
  PackedTensor out = ctx.make_packed(Shape{n, 1, 1, u});
  const FoldedBatchNorm& fb = folded_;

  KernelCost cost;
  cost.bitop_bits =
      2.0 * static_cast<double>(n * u) *
      static_cast<double>(ceil_div(in_features(), bitpack::bits(pw)) *
                          bitpack::bits(pw));
  cost.scalar_ops = static_cast<double>(n * u) * 4.0;
  cost.pack_width_bits = bitpack::bits(pw);
  cost.instr_overhead_cycles = costs::instr_overhead(ctx.opts);
  cost.bytes_read = static_cast<double>(n * words * 8 + weights_.bytes());
  cost.bytes_written = static_cast<double>(out.bytes());
  cost.coalescing = costs::coalescing(ctx.opts);
  cost.alu_efficiency = costs::binary_kernel_eff(ctx.opts);

  auto* out_bytes = reinterpret_cast<std::uint8_t*>(out.data());
  ctx.queue.enqueue(
      name_ + ".bdense_fused", NDRange{groups, n, 1}, cost,
      [&, words, groups, branch_free, pw, features, flat](const WorkItem& it) {
        const std::int64_t sample = it.y;
        const std::uint64_t* x = flat + sample * words;
        std::uint8_t byte = 0;
        for (int f = 0; f < 8; ++f) {
          const std::int64_t unit = it.x * 8 + f;
          const std::int64_t mism =
              bitpack::xor_popcount(x, weights_.pixel(unit, 0, 0), words, pw);
          const float x1 = static_cast<float>(features - 2 * mism);
          const std::size_t ci = static_cast<std::size_t>(unit);
          const bool bit =
              branch_free
                  ? binarize_eqn9(x1, fb.xi[ci], fb.gamma_pos[ci] != 0)
                  : binarize_eqn8(x1, fb.xi[ci], fb.gamma_pos[ci] != 0);
          if (bit) byte = static_cast<std::uint8_t>(byte | (1u << f));
        }
        out_bytes[out.word_offset(sample, 0, 0, 0) * 8 + it.x] = byte;
      });
  return out;
}

FloatDense::FloatDense(std::string name, FloatTensor weights,
                       std::vector<float> bias)
    : name_(std::move(name)), weights_(std::move(weights)),
      bias_(std::move(bias)) {
  PB_CHECK(weights_.shape().h == 1 && weights_.shape().w == 1,
           name_ << ": dense weights must be (units,1,1,features)");
  PB_CHECK(bias_.empty() ||
               static_cast<std::int64_t>(bias_.size()) == weights_.shape().n,
           name_ << ": bias count mismatch");
}

std::int64_t FloatDense::param_bytes() const {
  return weights_.bytes() + static_cast<std::int64_t>(bias_.size()) * 4;
}

std::int64_t FloatDense::param_count() const {
  return units() * in_features() + static_cast<std::int64_t>(bias_.size());
}

void FloatDense::plan(PlanContext& pc) const {
  const BlobDesc& in = pc.in();
  PB_CHECK(in.kind == BlobKind::kPacked || in.kind == BlobKind::kFloat,
           name_ << ": expects packed or float input, got " << in.str());
  const std::int64_t features = in.shape.h * in.shape.w * in.shape.c;
  PB_CHECK(features == in_features(), name_ << ": input features " << features
                                            << " != " << in_features());
  // The flattened (packed: unpacked-to-±1) input vector lives in arena f32
  // scratch, not a per-forward heap tensor.
  pc.need_f32(in.shape.n * features);
  KernelVariant v;
  v.kernel = in.kind == BlobKind::kPacked ? "unpack+fdense_dot" : "fdense_dot";
  pc.select(std::move(v));
  pc.produce(BlobDesc{BlobKind::kFloat, Shape{in.shape.n, 1, 1, units()}});
}

Blob FloatDense::forward(ExecContext& ctx, const Blob& in) const {
  // Expand packed input to ±1 floats / flatten float input, into arena f32
  // scratch (never a per-forward heap tensor).
  FloatTensor x;
  if (const auto* packed = std::get_if<PackedTensor>(&in)) {
    const Shape ps = packed->shape();
    const std::int64_t feat = ps.h * ps.w * ps.c;
    x = FloatTensor(Shape{ps.n, 1, 1, feat}, Layout::kNHWC,
                    ctx.arena.f32(ps.n * feat));
    KernelCost cost;
    cost.scalar_ops = static_cast<double>(ps.n * feat);
    cost.bytes_read = static_cast<double>(packed->bytes());
    cost.bytes_written = static_cast<double>(x.bytes());
    cost.alu_efficiency = costs::kAuxKernelEff;
    cost.coalescing = costs::coalescing(ctx.opts);
    ctx.queue.enqueue_chunked(
        name_ + ".unpack", NDRange{ps.n, 1, 1}, cost,
        [&, ps](std::int64_t begin, std::int64_t end) {
          for (std::int64_t s = begin; s < end; ++s) {
            std::int64_t i = 0;
            for (std::int64_t h = 0; h < ps.h; ++h)
              for (std::int64_t w = 0; w < ps.w; ++w)
                for (std::int64_t c = 0; c < ps.c; ++c, ++i)
                  x(s, 0, 0, i) = packed->get(s, h, w, c) ? 1.0f : -1.0f;
          }
        });
  } else {
    const auto* f = std::get_if<FloatTensor>(&in);
    PB_CHECK(f != nullptr, name_ << ": expects packed or float input");
    const Shape s = f->shape();
    x = FloatTensor(Shape{s.n, 1, 1, s.h * s.w * s.c}, Layout::kNHWC,
                    ctx.arena.f32(s.elems()));
    PB_CHECK(f->layout() == Layout::kNHWC, name_ << ": input must be NHWC");
    std::copy(f->data(), f->data() + s.elems(), x.data());
  }
  PB_CHECK(x.shape().c == in_features(),
           name_ << ": input features " << x.shape().c << " != "
                 << in_features());

  const std::int64_t n = x.shape().n;
  const std::int64_t u = units();
  const std::int64_t features = in_features();
  FloatTensor out = ctx.make_float(Shape{n, 1, 1, u}, Layout::kNHWC);

  KernelCost cost;
  cost.scalar_ops = static_cast<double>(n * u * features);
  cost.bytes_read =
      static_cast<double>(x.bytes()) + static_cast<double>(weights_.bytes());
  cost.bytes_written = static_cast<double>(out.bytes());
  cost.coalescing = costs::coalescing(ctx.opts);
  cost.alu_efficiency = costs::kFloatDotEff;

  const std::vector<float>& bias = bias_;
  ctx.queue.enqueue(
      name_ + ".fdense_dot", NDRange{u, n, 1}, cost,
      [&, features](const WorkItem& it) {
        const float* px = &x(it.y, 0, 0, 0);
        const float* wt = &weights_(it.x, 0, 0, 0);
        float acc = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(it.x)];
        std::int64_t c = 0;
        for (; c + 4 <= features; c += 4) {
          const auto a = simd::vload<float, 4>(0, px + c);
          const auto b = simd::vload<float, 4>(0, wt + c);
          acc += simd::dot(a, b);
        }
        for (; c < features; ++c) acc += px[c] * wt[c];
        out(it.y, 0, 0, it.x) = acc;
      });
  return out;
}

}  // namespace phonebit::core
