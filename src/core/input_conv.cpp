#include "core/input_conv.hpp"

#include <algorithm>
#include <array>

#include "bitpack/binary_ops.hpp"
#include "bitpack/pack.hpp"
#include "core/binarize.hpp"
#include "core/costs.hpp"

namespace phonebit::core {

using bitpack::PackedTensor;
using oclsim::KernelCost;
using oclsim::NDRange;
using oclsim::WorkItem;

InputConv2d::InputConv2d(std::string name, PackedTensor weights,
                         std::vector<BatchNormParams> bn,
                         std::vector<float> bias, ConvGeometry geom)
    : name_(std::move(name)), weights_(std::move(weights)), bn_(std::move(bn)),
      bias_(std::move(bias)), geom_(geom) {
  PB_CHECK(static_cast<std::int64_t>(bn_.size()) == weights_.shape().n,
           name_ << ": BN channel count mismatch");
  PB_CHECK(weights_.shape().h == geom_.kernel_h &&
               weights_.shape().w == geom_.kernel_w,
           name_ << ": filter bank spatial dims disagree with geometry");
  folded_ = fold_batch_norm(bn_, bias_);
}

std::int64_t InputConv2d::param_bytes() const {
  const std::int64_t c_out = weights_.shape().n;
  return weights_.bytes() + c_out * 4 + ceil_div(c_out, 8);
}

std::int64_t InputConv2d::param_count() const {
  const Shape& s = weights_.shape();
  return s.n * s.h * s.w * s.c + 5 * s.n;
}

Blob InputConv2d::forward(ExecContext& ctx, const Blob& in) const {
  const auto* image = std::get_if<U8Tensor>(&in);
  PB_CHECK(image != nullptr, name_ << ": input conv expects an 8-bit image");
  const Shape& is = image->shape();
  PB_CHECK(is.c == in_channels(), name_ << ": image has " << is.c
                                        << " channels, filter expects "
                                        << in_channels());

  const std::int64_t oh = geom_.out_h(is.h);
  const std::int64_t ow = geom_.out_w(is.w);
  const std::int64_t c_out = out_channels();
  const std::int64_t kh = geom_.kernel_h, kw = geom_.kernel_w;
  const std::int64_t words = ceil_div(is.c, bitpack::kWordBits);
  const auto pw = ctx.opts.pack_width_for(is.c);

  // Kernel 1: bit-plane split (one work item per pixel owns all its words,
  // so plane words are written race-free).
  auto planes_storage = std::make_shared<std::array<PackedTensor, 8>>(
      std::array<PackedTensor, 8>{PackedTensor(is), PackedTensor(is),
                                  PackedTensor(is), PackedTensor(is),
                                  PackedTensor(is), PackedTensor(is),
                                  PackedTensor(is), PackedTensor(is)});
  auto& planes = *planes_storage;
  {
    KernelCost split_cost;
    split_cost.scalar_ops = static_cast<double>(is.elems()) * 8.0;
    split_cost.bytes_read = static_cast<double>(is.elems());
    split_cost.bytes_written = static_cast<double>(planes[0].bytes()) * 8.0;
    split_cost.coalescing = costs::coalescing(ctx.opts);
    split_cost.alu_efficiency = costs::kAuxKernelEff;
    ctx.queue.enqueue(
        name_ + ".bitplane_split", NDRange{is.w, is.h, is.n}, split_cost,
        [&](const WorkItem& it) {
          for (std::int64_t j = 0; j < words; ++j) {
            std::array<std::uint64_t, 8> acc{};
            const std::int64_t c0 = j * bitpack::kWordBits;
            const std::int64_t limit =
                std::min<std::int64_t>(bitpack::kWordBits, is.c - c0);
            for (std::int64_t b = 0; b < limit; ++b) {
              const std::uint8_t px = (*image)(it.z, it.y, it.x, c0 + b);
              for (int k = 0; k < 8; ++k) {
                if ((px >> k) & 1) {
                  acc[static_cast<std::size_t>(k)] |= (std::uint64_t{1} << b);
                }
              }
            }
            for (int k = 0; k < 8; ++k) {
              planes[static_cast<std::size_t>(k)]
                  .data()[planes[0].word_offset(it.z, it.y, it.x, j)] =
                  acc[static_cast<std::size_t>(k)];
            }
          }
        });
  }

  // Kernel 2: fused plane conv + BN + binarize + pack (Fig. 4 workload:
  // 8 filters per item when C_out allows).
  PB_CHECK(c_out % 8 == 0, name_ << ": C_out must be a multiple of 8");
  PackedTensor out(Shape{is.n, oh, ow, c_out});
  const std::int64_t groups = c_out / 8;
  const bool branch_free = ctx.opts.branch_free_binarize;
  const FoldedBatchNorm& fb = folded_;

  KernelCost cost;
  const double outputs = static_cast<double>(is.n) * oh * ow * c_out;
  // 8 planes of and+popcount per output window. Costed as the window-packed
  // schedule the production kernel uses for narrow first layers: the whole
  // KxKxC window's bits are processed contiguously at the vector width
  // chosen for KxKxC (e.g. YOLO conv1: 27 bits -> 32-bit vectors), rather
  // than one padded vector per 3-channel tap.
  const auto window_pw = ctx.opts.pack_width_for(kh * kw * is.c);
  const double window_bits = static_cast<double>(
      ceil_div(kh * kw * is.c, bitpack::bits(window_pw)) *
      bitpack::bits(window_pw));
  cost.bitop_bits = outputs * 8.0 * 2.0 * window_bits;
  cost.scalar_ops = outputs * (8.0 + 4.0);
  cost.pack_width_bits = bitpack::bits(window_pw);
  cost.instr_overhead_cycles = costs::instr_overhead(ctx.opts);
  cost.bytes_read = static_cast<double>(planes[0].bytes()) * 8.0 +
                    static_cast<double>(weights_.bytes());
  cost.bytes_written = static_cast<double>(out.bytes());
  cost.coalescing = costs::coalescing(ctx.opts);
  cost.alu_efficiency = costs::binary_kernel_eff(ctx.opts);

  auto* out_bytes = reinterpret_cast<std::uint8_t*>(out.data());
  const std::uint64_t* zeros = ctx.arena.zero_words(words);
  ctx.queue.enqueue(
      name_ + ".bitplane_conv_fused", NDRange{ow, oh, is.n * groups}, cost,
      [&, oh, ow, kh, kw, words, groups, branch_free, pw](const WorkItem& it) {
        const std::int64_t n = it.z / groups;
        const std::int64_t g = it.z % groups;

        // Hoisted weight-independent term: integer pixel sum of the window.
        std::int64_t window_sum = 0;
        for (std::int64_t ky = 0; ky < kh; ++ky) {
          const std::int64_t iy = it.y * geom_.stride_h - geom_.pad_h + ky;
          if (iy < 0 || iy >= is.h) continue;  // zero padding: planes are 0
          for (std::int64_t kx = 0; kx < kw; ++kx) {
            const std::int64_t ix = it.x * geom_.stride_w - geom_.pad_w + kx;
            if (ix < 0 || ix >= is.w) continue;
            for (int k = 0; k < 8; ++k) {
              window_sum += (std::int64_t{1} << k) *
                            bitpack::popcount_words(
                                planes[static_cast<std::size_t>(k)].pixel(
                                    n, iy, ix),
                                words);
            }
          }
        }

        std::uint8_t byte = 0;
        for (int f = 0; f < 8; ++f) {
          const std::int64_t co = g * 8 + f;
          std::int64_t weighted_and = 0;
          for (std::int64_t ky = 0; ky < kh; ++ky) {
            const std::int64_t iy = it.y * geom_.stride_h - geom_.pad_h + ky;
            for (std::int64_t kx = 0; kx < kw; ++kx) {
              const std::int64_t ix = it.x * geom_.stride_w - geom_.pad_w + kx;
              const bool inside = iy >= 0 && iy < is.h && ix >= 0 && ix < is.w;
              const std::uint64_t* wspan = weights_.pixel(co, ky, kx);
              for (int k = 0; k < 8; ++k) {
                const std::uint64_t* pspan =
                    inside
                        ? planes[static_cast<std::size_t>(k)].pixel(n, iy, ix)
                        : zeros;
                weighted_and +=
                    (std::int64_t{1} << k) *
                    bitpack::and_popcount(pspan, wspan, words, pw);
              }
            }
          }
          // s = sum_k 2^k (2*popcount(p&w) - popcount(p))  (Eqn 2)
          const float x1 = static_cast<float>(2 * weighted_and - window_sum);
          const std::size_t ci = static_cast<std::size_t>(co);
          const bool bit =
              branch_free
                  ? binarize_eqn9(x1, fb.xi[ci], fb.gamma_pos[ci] != 0)
                  : binarize_eqn8(x1, fb.xi[ci], fb.gamma_pos[ci] != 0);
          if (bit) byte = static_cast<std::uint8_t>(byte | (1u << f));
        }
        out_bytes[out.word_offset(n, it.y, it.x, 0) * 8 + g] = byte;
      });
  return out;
}

}  // namespace phonebit::core
