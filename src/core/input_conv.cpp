#include "core/input_conv.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "bitpack/binary_ops.hpp"
#include "bitpack/pack.hpp"
#include "core/binarize.hpp"
#include "core/costs.hpp"

namespace phonebit::core {

using bitpack::PackedTensor;
using oclsim::KernelCost;
using oclsim::NDRange;
using oclsim::WorkItem;

InputConv2d::InputConv2d(std::string name, PackedTensor weights,
                         std::vector<BatchNormParams> bn,
                         std::vector<float> bias, ConvGeometry geom)
    : name_(std::move(name)), weights_(std::move(weights)), bn_(std::move(bn)),
      bias_(std::move(bias)), geom_(geom) {
  PB_CHECK(static_cast<std::int64_t>(bn_.size()) == weights_.shape().n,
           name_ << ": BN channel count mismatch");
  PB_CHECK(weights_.shape().h == geom_.kernel_h &&
               weights_.shape().w == geom_.kernel_w,
           name_ << ": filter bank spatial dims disagree with geometry");
  folded_ = fold_batch_norm(bn_, bias_);
}

std::int64_t InputConv2d::param_bytes() const {
  const std::int64_t c_out = weights_.shape().n;
  return weights_.bytes() + c_out * 4 + ceil_div(c_out, 8);
}

std::int64_t InputConv2d::param_count() const {
  const Shape& s = weights_.shape();
  return s.n * s.h * s.w * s.c + 5 * s.n;
}

const U8Tensor& InputConv2d::checked_input(const Blob& in) const {
  const auto* image = std::get_if<U8Tensor>(&in);
  PB_CHECK(image != nullptr, name_ << ": input conv expects an 8-bit image");
  PB_CHECK(image->shape().c == in_channels(),
           name_ << ": image has " << image->shape().c
                 << " channels, filter expects " << in_channels());
  return *image;
}

KernelVariant InputConv2d::select_variant(const Shape& in_shape,
                                         const EngineOptions& opts) const {
  KernelVariant v;
  v.interior_split = opts.interior_split;
  v.pack_width = opts.conv_pack_width(in_shape.c, geom_.kernel_w);
  v.kernel = "bitplane_split+conv_fused";
  return v;
}

std::int64_t InputConv2d::scratch_words(const Shape& in_shape,
                                        bool split) const {
  const std::int64_t words = ceil_div(in_shape.c, bitpack::kWordBits);
  const std::int64_t plane_words =
      in_shape.n * in_shape.h * in_shape.w * words;
  // 8 bit planes, plus the legacy per-tap path's all-zero padding span
  // (the row-fused border path never reads padding: AND against a zero
  // plane contributes nothing, so out-of-bounds taps are simply skipped).
  return plane_words * 8 + (split ? 0 : words);
}

void InputConv2d::plan(PlanContext& pc) const {
  const BlobDesc& in = pc.in();
  PB_CHECK(in.kind == BlobKind::kU8,
           name_ << ": input conv expects an 8-bit image, got " << in.str());
  PB_CHECK(in.shape.c == in_channels(),
           name_ << ": image has " << in.shape.c
                 << " channels, filter expects " << in_channels());
  PB_CHECK(out_channels() % 8 == 0, name_ << ": C_out must be a multiple of 8");
  const std::int64_t oh = geom_.out_h(in.shape.h);
  const std::int64_t ow = geom_.out_w(in.shape.w);
  KernelVariant v = select_variant(in.shape, pc.opts());
  pc.need_words(scratch_words(in.shape, v.interior_split));
  pc.select(std::move(v));
  pc.produce(BlobDesc{BlobKind::kPacked,
                      Shape{in.shape.n, oh, ow, out_channels()}});
}

Blob InputConv2d::forward(ExecContext& ctx, const Blob& in) const {
  const U8Tensor& image = checked_input(in);
  if (ctx.stats != nullptr) ++ctx.stats->variant_selections;
  return execute(ctx, image, select_variant(image.shape(), ctx.opts));
}

Blob InputConv2d::run(ExecContext& ctx, const Blob& in,
                      const PlanStep& step) const {
  return execute(ctx, checked_input(in), step.variant);
}

PackedTensor InputConv2d::execute(ExecContext& ctx, const U8Tensor& image,
                                  const KernelVariant& v) const {
  const Shape& is = image.shape();
  const std::int64_t oh = geom_.out_h(is.h);
  const std::int64_t ow = geom_.out_w(is.w);
  const std::int64_t c_out = out_channels();
  const std::int64_t kh = geom_.kernel_h, kw = geom_.kernel_w;
  const std::int64_t sh = geom_.stride_h, sw = geom_.stride_w;
  const std::int64_t ph = geom_.pad_h, pw_pad = geom_.pad_w;
  const std::int64_t words = ceil_div(is.c, bitpack::kWordBits);
  const bool split = v.interior_split;
  const auto pw = v.pack_width;

  // The 8 bit planes live in the session arena (one contiguous words-pool
  // span — a single request, honouring the one-live-span-per-kind
  // contract), with the legacy zeros span appended when the per-tap
  // ablation path needs it.
  const std::int64_t plane_words = is.n * is.h * is.w * words;
  // Cascade reuse seam: a caller-attached plane cache replaces the arena
  // span. A filled cache over the same geometry short-circuits the split
  // kernel entirely (deterministically cheaper modeled time); an empty or
  // stale one is (re)filled by the split kernel at the normal cost. Only
  // the split (row-fused) path participates — the per-tap ablation path
  // needs its zeros span contiguous with the planes in the arena.
  InputPlaneCache* cache = split ? ctx.planes : nullptr;
  const bool cache_hit =
      cache != nullptr && cache->filled && cache->shape == is;
  std::uint64_t* planes = nullptr;
  std::uint64_t* zeros = nullptr;
  if (cache != nullptr) {
    if (!cache_hit) {
      cache->words.resize(static_cast<std::size_t>(plane_words) * 8);
      cache->shape = is;
      cache->filled = false;
    }
    planes = cache->words.data();
  } else {
    planes = ctx.arena.words(scratch_words(is, split));
    zeros = split ? nullptr : planes + plane_words * 8;
    if (!split) {
      std::memset(zeros, 0, static_cast<std::size_t>(words) * 8);
    }
  }
  const std::int64_t row_pitch = is.w * words;  // plane words per image row
  const auto plane_span = [planes, plane_words, row_pitch, words,
                           &is](int k, std::int64_t n, std::int64_t iy,
                                std::int64_t ix) -> const std::uint64_t* {
    return planes + k * plane_words + (n * is.h + iy) * row_pitch + ix * words;
  };

  // Kernel 1: bit-plane split (one work item per pixel owns all its words,
  // so plane words are written race-free). Skipped outright on a plane-cache
  // hit — the planes are a pure function of the input bytes.
  if (!cache_hit) {
    KernelCost split_cost;
    split_cost.scalar_ops = static_cast<double>(is.elems()) * 8.0;
    split_cost.bytes_read = static_cast<double>(is.elems());
    split_cost.bytes_written = static_cast<double>(plane_words) * 8.0 * 8.0;
    split_cost.coalescing = costs::coalescing(ctx.opts);
    split_cost.alu_efficiency = costs::kAuxKernelEff;
    ctx.queue.enqueue(
        name_ + ".bitplane_split", NDRange{is.w, is.h, is.n}, split_cost,
        [&, words](const WorkItem& it) {
          for (std::int64_t j = 0; j < words; ++j) {
            std::array<std::uint64_t, 8> acc{};
            const std::int64_t c0 = j * bitpack::kWordBits;
            const std::int64_t limit =
                std::min<std::int64_t>(bitpack::kWordBits, is.c - c0);
            for (std::int64_t b = 0; b < limit; ++b) {
              const std::uint8_t px = image(it.z, it.y, it.x, c0 + b);
              for (int k = 0; k < 8; ++k) {
                if ((px >> k) & 1) {
                  acc[static_cast<std::size_t>(k)] |= (std::uint64_t{1} << b);
                }
              }
            }
            std::uint64_t* base =
                planes + (it.z * is.h + it.y) * row_pitch + it.x * words + j;
            for (int k = 0; k < 8; ++k) {
              base[k * plane_words] = acc[static_cast<std::size_t>(k)];
            }
          }
        });
    if (cache != nullptr) cache->filled = true;
  }

  // Kernel 2: fused plane conv + BN + binarize + pack (Fig. 4 workload:
  // 8 filters per item when C_out allows).
  PB_CHECK(c_out % 8 == 0, name_ << ": C_out must be a multiple of 8");
  PackedTensor out = ctx.make_packed(Shape{is.n, oh, ow, c_out});
  const std::int64_t groups = c_out / 8;
  const bool branch_free = ctx.opts.branch_free_binarize;
  const FoldedBatchNorm& fb = folded_;

  // Interior output box: same shared geometry as the binary conv's split.
  const InteriorBox box = interior_box(geom_, is.h, is.w, oh, ow);
  const std::int64_t y0 = box.y0, y1 = box.y1, x0 = box.x0, x1 = box.x1;

  KernelCost cost;
  const double outputs = static_cast<double>(is.n) * oh * ow * c_out;
  const double opixels = static_cast<double>(is.n) * oh * ow;
  if (split) {
    // Row-fused schedule: per plane, an interior window is kh spans of
    // kw*words words (one strided and_popcount with a scalar tail, so the
    // exact word bits are charged); the hoisted window sum adds kh popcount
    // spans per plane per output pixel. The filter-side spans run the
    // shared-window schedule (and_popcount_2d_x8): each plane span is
    // loaded once per group and scored against all 8 filters, so its setup
    // amortizes 8x (costs::shared_window_spans).
    const double row_bits =
        static_cast<double>(kw * words * bitpack::kWordBits);
    cost.bitop_bits = outputs * 8.0 * 2.0 * static_cast<double>(kh) * row_bits;
    cost.span_count =
        outputs * 8.0 *
            costs::shared_window_spans(static_cast<double>(kh)) +
        opixels * 8.0 * static_cast<double>(kh);
    cost.span_setup_cycles = costs::kSpanSetupCycles;
    cost.instr_overhead_cycles = costs::instr_overhead_fused(ctx.opts);
    cost.pack_width_bits =
        bitpack::bits(bitpack::cap_pack_width_to_span(pw, kw * words));
  } else {
    // Per-tap ablation arm, costed as the window-packed schedule: the whole
    // KxKxC window's bits processed contiguously at the vector width chosen
    // for KxKxC (e.g. YOLO conv1: 27 bits -> 32-bit vectors).
    const auto window_pw = ctx.opts.pack_width_for(kh * kw * is.c);
    const double window_bits = static_cast<double>(
        ceil_div(kh * kw * is.c, bitpack::bits(window_pw)) *
        bitpack::bits(window_pw));
    cost.bitop_bits = outputs * 8.0 * 2.0 * window_bits;
    cost.instr_overhead_cycles = costs::instr_overhead(ctx.opts);
    cost.pack_width_bits = bitpack::bits(window_pw);
  }
  cost.scalar_ops = outputs * (8.0 + 4.0);
  cost.bytes_read = static_cast<double>(plane_words) * 8.0 * 8.0 +
                    static_cast<double>(weights_.bytes());
  cost.bytes_written = static_cast<double>(out.bytes());
  cost.coalescing = costs::coalescing(ctx.opts);
  cost.alu_efficiency = costs::binary_kernel_eff(ctx.opts);

  auto* out_bytes = reinterpret_cast<std::uint8_t*>(out.data());
  ctx.queue.enqueue(
      name_ + ".bitplane_conv_fused", NDRange{ow, oh, is.n * groups}, cost,
      [&, oh, ow, kh, kw, sh, sw, ph, pw_pad, words, groups, branch_free, pw,
       split, y0, y1, x0, x1, row_pitch, zeros](const WorkItem& it) {
        const std::int64_t n = it.z / groups;
        const std::int64_t g = it.z % groups;
        const std::int64_t iy0 = it.y * sh - ph;
        const std::int64_t ix0 = it.x * sw - pw_pad;
        const bool interior = split && it.y >= y0 && it.y < y1 &&
                              it.x >= x0 && it.x < x1;
        // Border rows clamp each filter row to its in-bounds tap run; the
        // 0/1 planes make padding free (AND against zero contributes 0).
        const std::int64_t lo = std::clamp<std::int64_t>(-ix0, 0, kw);
        const std::int64_t hi = std::clamp<std::int64_t>(is.w - ix0, 0, kw);

        // Hoisted weight-independent term: integer pixel sum of the window.
        std::int64_t window_sum = 0;
        if (interior) {
          for (int k = 0; k < 8; ++k) {
            std::int64_t bits_set = 0;
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              bits_set += bitpack::popcount_words(
                  plane_span(k, n, iy0 + ky, ix0), kw * words);
            }
            window_sum += (std::int64_t{1} << k) * bits_set;
          }
        } else if (split) {
          for (std::int64_t ky = 0; ky < kh; ++ky) {
            const std::int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= is.h || hi <= lo) continue;
            for (int k = 0; k < 8; ++k) {
              window_sum += (std::int64_t{1} << k) *
                            bitpack::popcount_words(
                                plane_span(k, n, iy, ix0 + lo),
                                (hi - lo) * words);
            }
          }
        } else {
          for (std::int64_t ky = 0; ky < kh; ++ky) {
            const std::int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= is.h) continue;  // zero padding: planes are 0
            for (std::int64_t kx = 0; kx < kw; ++kx) {
              const std::int64_t ix = ix0 + kx;
              if (ix < 0 || ix >= is.w) continue;
              for (int k = 0; k < 8; ++k) {
                window_sum += (std::int64_t{1} << k) *
                              bitpack::popcount_words(plane_span(k, n, iy, ix),
                                                      words);
              }
            }
          }
        }

        std::int64_t weighted[8] = {};
        if (interior) {
          // Shared-window schedule: each plane's whole-window span set is
          // streamed ONCE and scored against the 8 contiguous filters of
          // the group (and_popcount_2d_x8) — kh plane rows (pitch
          // row_pitch) against kh contiguous filter rows, instead of the 8
          // filters each re-reading the same plane spans.
          for (int k = 0; k < 8; ++k) {
            std::int64_t adds[8];
            bitpack::and_popcount_2d_x8(
                plane_span(k, n, iy0, ix0), row_pitch,
                weights_.pixel(g * 8, 0, 0), kh * kw * words, kw * words,
                kw * words, kh, pw, adds);
            for (int f = 0; f < 8; ++f) {
              weighted[f] += (std::int64_t{1} << k) * adds[f];
            }
          }
        } else if (split) {
          for (int f = 0; f < 8; ++f) {
            const std::int64_t co = g * 8 + f;
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              const std::int64_t iy = iy0 + ky;
              if (iy < 0 || iy >= is.h || hi <= lo) continue;
              const std::uint64_t* wrow = weights_.pixel(co, ky, 0);
              for (int k = 0; k < 8; ++k) {
                weighted[f] +=
                    (std::int64_t{1} << k) *
                    bitpack::and_popcount(plane_span(k, n, iy, ix0 + lo),
                                          wrow + lo * words, (hi - lo) * words,
                                          pw);
              }
            }
          }
        } else {
          for (int f = 0; f < 8; ++f) {
            const std::int64_t co = g * 8 + f;
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              const std::int64_t iy = iy0 + ky;
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t ix = ix0 + kx;
                const bool inside =
                    iy >= 0 && iy < is.h && ix >= 0 && ix < is.w;
                const std::uint64_t* wspan = weights_.pixel(co, ky, kx);
                for (int k = 0; k < 8; ++k) {
                  const std::uint64_t* pspan =
                      inside ? plane_span(k, n, iy, ix) : zeros;
                  weighted[f] += (std::int64_t{1} << k) *
                                 bitpack::and_popcount(pspan, wspan, words,
                                                       pw);
                }
              }
            }
          }
        }
        std::uint8_t byte = 0;
        for (int f = 0; f < 8; ++f) {
          // s = sum_k 2^k (2*popcount(p&w) - popcount(p))  (Eqn 2)
          const float x1v = static_cast<float>(2 * weighted[f] - window_sum);
          const std::size_t ci = static_cast<std::size_t>(g * 8 + f);
          const bool bit =
              branch_free
                  ? binarize_eqn9(x1v, fb.xi[ci], fb.gamma_pos[ci] != 0)
                  : binarize_eqn8(x1v, fb.xi[ci], fb.gamma_pos[ci] != 0);
          if (bit) byte = static_cast<std::uint8_t>(byte | (1u << f));
        }
        out_bytes[out.word_offset(n, it.y, it.x, 0) * 8 + g] = byte;
      });
  return out;
}

}  // namespace phonebit::core
