// PhoneBit — network container and forward pass.
//
// A Network is an ordered pipeline of layers (Fig. 3's hand-written layer
// calls, behind a builder API). forward() threads a Blob through the layers
// and slices the queue's profiling events into per-layer reports — the data
// behind Table III and Fig. 5.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/layer.hpp"

namespace phonebit::core {

class Network {
 public:
  explicit Network(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Appends a layer; returns *this for chaining.
  Network& add(std::unique_ptr<Layer> layer) {
    PB_CHECK(layer != nullptr, "null layer");
    layers_.push_back(std::move(layer));
    return *this;
  }

  /// Constructs a layer in place and appends it.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  /// Runs every layer in order. Also populates last_report().
  Blob forward(ExecContext& ctx, Blob input);

  /// Convenience: forward an 8-bit image and return the float output blob
  /// (throws if the network does not end in a full-precision layer).
  FloatTensor forward_float(ExecContext& ctx, const U8Tensor& image);

  const std::vector<std::unique_ptr<Layer>>& layers() const noexcept {
    return layers_;
  }
  std::size_t size() const noexcept { return layers_.size(); }

  /// Serialized parameter footprint (Table II model size).
  std::int64_t param_bytes() const;
  /// Trained parameter count.
  std::int64_t param_count() const;

  /// Per-layer timing of the most recent forward().
  const std::vector<LayerReport>& last_report() const noexcept {
    return report_;
  }

  /// Modeled device milliseconds of the most recent forward().
  double last_modeled_ms() const;
  /// Host wall milliseconds of the most recent forward().
  double last_host_ms() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<LayerReport> report_;
};

}  // namespace phonebit::core
