// PhoneBit — network container and forward pass.
//
// A Network is an ordered pipeline of layers (Fig. 3's hand-written layer
// calls, behind a builder API). After construction a Network is immutable at
// inference time: forward() is const and returns a ForwardResult carrying
// the output blob plus the per-layer timing report (the data behind Table
// III and Fig. 5), so many sessions can forward one Network concurrently.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/layer.hpp"

namespace phonebit::core {

class Engine;         // engine.hpp
class ExecutionPlan;  // plan.hpp
struct BlobDesc;      // plan.hpp

/// Everything one forward pass produced: the output blob and the profiling
/// report sliced from the session queue's events. Owned by the caller —
/// nothing is stashed on the Network, so concurrent forwards don't race.
struct ForwardResult {
  Blob output;
  std::vector<LayerReport> report;
  double modeled_ms = 0.0;  ///< total modeled device ms over all layers
  double host_ms = 0.0;     ///< total host wall ms over all kernel bodies

  /// The output as a float tensor (throws InvalidArgument when the network
  /// did not end in a full-precision layer). Ref-qualified so a temporary
  /// result hands out a value, never a dangling reference.
  const FloatTensor& float_output() const& {
    const auto* f = std::get_if<FloatTensor>(&output);
    PB_CHECK(f != nullptr, "network output is not a full-precision tensor");
    return *f;
  }
  FloatTensor float_output() && {
    auto* f = std::get_if<FloatTensor>(&output);
    PB_CHECK(f != nullptr, "network output is not a full-precision tensor");
    return std::move(*f);
  }
};

class Network {
 public:
  explicit Network(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Appends a layer; returns *this for chaining.
  Network& add(std::unique_ptr<Layer> layer) {
    PB_CHECK(layer != nullptr, "null layer");
    layers_.push_back(std::move(layer));
    return *this;
  }

  /// Constructs a layer in place and appends it.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  /// Compiles the pipeline for inputs matching `input` against the engine's
  /// current options: shape inference + validation, buffer liveness/slot
  /// assignment, ahead-of-time kernel-variant selection (plan.hpp). The
  /// returned plan is immutable and shareable across sessions; it must not
  /// outlive this network.
  ExecutionPlan compile(const Engine& engine, const BlobDesc& input) const;
  /// Same, against an explicit options snapshot. `stats` (optional)
  /// receives the compile/selection counters.
  ExecutionPlan compile(const EngineOptions& opts, const BlobDesc& input,
                        SessionStats* stats = nullptr) const;

  /// Runs every layer in order on the session behind `ctx`. Const: the
  /// network is shared read-only state, all mutation happens in the
  /// session's queue/arena, and the report comes back in the result.
  ///
  /// Uncompiled compatibility path: a thin compile-and-run wrapper — every
  /// call re-plans from ctx.opts, so steady-state callers should compile()
  /// once and reuse the plan.
  ForwardResult forward(ExecContext& ctx, Blob input) const;

  /// Convenience: forward an 8-bit image and return just the float output
  /// (throws if the network does not end in a full-precision layer).
  FloatTensor forward_float(ExecContext& ctx, const U8Tensor& image) const;

  const std::vector<std::unique_ptr<Layer>>& layers() const noexcept {
    return layers_;
  }
  std::size_t size() const noexcept { return layers_.size(); }

  /// Position of `layer` in the pipeline, or -1 when it is not one of this
  /// network's layers. The artifact codec uses this to serialize a plan's
  /// layer pointers as stable indices (and to reject a plan that was
  /// compiled from a different network).
  std::ptrdiff_t index_of(const Layer* layer) const noexcept {
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      if (layers_[i].get() == layer) return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
  }

  /// Serialized parameter footprint (Table II model size).
  std::int64_t param_bytes() const;
  /// Trained parameter count.
  std::int64_t param_count() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace phonebit::core
