// PhoneBit — the on-disk model format (the artifact Fig. 2 uploads to the
// phone). A compact little-endian binary container:
//
//   magic "PBIT" | u32 version | u32 layer_count | layers...
//
// Binary layers store packed 1-bit weights plus the folded (xi, sign-gamma)
// constants — the only BN state the runtime needs, which is what makes the
// format 1/32nd the float checkpoint. Full-precision layers store fp32.
// load_model() reconstructs a runnable Network; for the no-integration
// ablation the folded constants are re-expressed as equivalent raw BN
// parameters (gamma = ±1, sigma = 1, mu = xi), which binarize identically.
//
// Primitive encode/decode lives in core/wire.hpp, shared with the compiled
// artifact container (core/artifact.hpp) — .pbm ships the network, .pba
// ships the network PLUS its compiled ExecutionPlan.
#pragma once

#include <memory>
#include <string>

#include "core/network.hpp"

namespace phonebit::core {

/// Serializes a converted network to `path`. Throws FormatError on I/O
/// failure and InvalidArgument for unserializable layers.
void save_model(const Network& net, const std::string& path);

/// Loads a network previously written by save_model().
std::unique_ptr<Network> load_model(const std::string& path);

}  // namespace phonebit::core
