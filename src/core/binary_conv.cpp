#include "core/binary_conv.hpp"

#include <bit>
#include <cstring>

#include "bitpack/binary_ops.hpp"
#include "core/binarize.hpp"
#include "core/costs.hpp"

namespace phonebit::core {

static_assert(std::endian::native == std::endian::little,
              "byte-granular packing assumes little-endian words");

using bitpack::PackedTensor;
using oclsim::KernelCost;
using oclsim::NDRange;
using oclsim::WorkItem;

BinaryConv2d::BinaryConv2d(std::string name, PackedTensor weights,
                           std::vector<BatchNormParams> bn,
                           std::vector<float> bias, ConvGeometry geom)
    : name_(std::move(name)), weights_(std::move(weights)), bn_(std::move(bn)),
      bias_(std::move(bias)), geom_(geom) {
  const std::int64_t c_out = weights_.shape().n;
  PB_CHECK(static_cast<std::int64_t>(bn_.size()) == c_out,
           name_ << ": BN channel count " << bn_.size() << " != C_out "
                 << c_out);
  PB_CHECK(weights_.shape().h == geom_.kernel_h &&
               weights_.shape().w == geom_.kernel_w,
           name_ << ": filter bank spatial dims disagree with geometry");
  folded_ = fold_batch_norm(bn_, bias_);
}

std::int64_t BinaryConv2d::param_bytes() const {
  // Packed 1-bit weights + per-channel float xi + 1 gamma-sign bit/channel.
  const std::int64_t c_out = weights_.shape().n;
  return weights_.bytes() + c_out * 4 + ceil_div(c_out, 8);
}

std::int64_t BinaryConv2d::param_count() const {
  const Shape& s = weights_.shape();
  return s.n * s.h * s.w * s.c + 5 * s.n;  // weights + (gamma,beta,mu,sigma,b)
}

Blob BinaryConv2d::forward(ExecContext& ctx, const Blob& in) {
  const auto* packed = std::get_if<PackedTensor>(&in);
  PB_CHECK(packed != nullptr,
           name_ << ": binary conv expects a packed binary input");
  PB_CHECK(packed->shape().c == in_channels(),
           name_ << ": input has " << packed->shape().c << " channels, filter "
                 << in_channels());
  if (!ctx.opts.fuse_bn_binarize) return forward_unfused(ctx, *packed);
  const bool integrate = ctx.opts.integrate_packing &&
                         in_channels() <= ctx.opts.packing_channel_threshold &&
                         out_channels() % 8 == 0;
  return forward_fused(ctx, *packed, integrate);
}

namespace {

/// Shared geometry snapshot the kernel bodies capture by value.
struct ConvDims {
  std::int64_t n, ih, iw, c_in, oh, ow, c_out, kh, kw, sh, sw, ph, pw, words;
};

ConvDims make_dims(const PackedTensor& in, const PackedTensor& weights,
                   const ConvGeometry& g) {
  ConvDims d{};
  d.n = in.shape().n;
  d.ih = in.shape().h;
  d.iw = in.shape().w;
  d.c_in = in.shape().c;
  d.oh = g.out_h(d.ih);
  d.ow = g.out_w(d.iw);
  d.c_out = weights.shape().n;
  d.kh = g.kernel_h;
  d.kw = g.kernel_w;
  d.sh = g.stride_h;
  d.sw = g.stride_w;
  d.ph = g.pad_h;
  d.pw = g.pad_w;
  d.words = in.words_per_pixel();
  return d;
}

/// xor-popcount accumulation of one filter over one output window;
/// out-of-bounds input pixels use the all-zero span (-1 padding).
inline std::int64_t window_mismatches(const PackedTensor& in,
                                      const PackedTensor& weights,
                                      const ConvDims& d, std::int64_t n,
                                      std::int64_t oy, std::int64_t ox,
                                      std::int64_t co,
                                      const std::uint64_t* zeros,
                                      bitpack::PackWidth pw) {
  std::int64_t mism = 0;
  for (std::int64_t kh = 0; kh < d.kh; ++kh) {
    const std::int64_t iy = oy * d.sh - d.ph + kh;
    for (std::int64_t kw = 0; kw < d.kw; ++kw) {
      const std::int64_t ix = ox * d.sw - d.pw + kw;
      const bool inside = iy >= 0 && iy < d.ih && ix >= 0 && ix < d.iw;
      const std::uint64_t* span = inside ? in.pixel(n, iy, ix) : zeros;
      mism += bitpack::xor_popcount(span, weights.pixel(co, kh, kw), d.words,
                                    pw);
    }
  }
  return mism;
}

}  // namespace

PackedTensor BinaryConv2d::forward_fused(ExecContext& ctx,
                                         const PackedTensor& in,
                                         bool integrate_packing) {
  const ConvDims d = make_dims(in, weights_, geom_);
  PackedTensor out(Shape{d.n, d.oh, d.ow, d.c_out});
  const std::vector<std::uint64_t> zeros(static_cast<std::size_t>(d.words), 0);
  const auto pw = ctx.opts.pack_width_for(d.c_in);
  const bool branch_free = ctx.opts.branch_free_binarize;
  const std::int64_t len = d.kh * d.kw * d.c_in;
  const FoldedBatchNorm& fb = folded_;

  // Work tally (see costs.hpp): xor + popcount bit-lanes per window tap,
  // padded to the processing vector width (narrow layers waste the tail
  // lanes of one vector, not a whole 64-bit word), plus window accumulation
  // and the threshold test per output value.
  const double outputs = static_cast<double>(d.n) * d.oh * d.ow * d.c_out;
  const double tap_bits = static_cast<double>(
      ceil_div(d.c_in, bitpack::bits(pw)) * bitpack::bits(pw));
  KernelCost cost;
  cost.bitop_bits =
      2.0 * outputs * static_cast<double>(d.kh * d.kw) * tap_bits;
  cost.scalar_ops = outputs * static_cast<double>(d.kh * d.kw + 4);
  cost.pack_width_bits = bitpack::bits(pw);
  cost.instr_overhead_cycles = costs::instr_overhead(ctx.opts);
  cost.bytes_read = static_cast<double>(in.bytes() + weights_.bytes()) +
                    static_cast<double>(d.c_out) * 5.0;
  cost.coalescing = costs::coalescing(ctx.opts);
  cost.alu_efficiency = costs::binary_kernel_eff(ctx.opts);

  if (integrate_packing) {
    // Path A — Fig. 4: one work item owns 8 filters and stores one byte.
    const std::int64_t groups = d.c_out / 8;
    cost.bytes_written = static_cast<double>(out.bytes());
    auto* out_bytes = reinterpret_cast<std::uint8_t*>(out.data());
    ctx.queue.enqueue(
        name_ + ".bconv_fused", NDRange{d.ow, d.oh, d.n * groups}, cost,
        [&, d, pw, branch_free, len, groups](const WorkItem& it) {
          const std::int64_t n = it.z / groups;
          const std::int64_t g = it.z % groups;
          std::uint8_t byte = 0;
          for (int f = 0; f < 8; ++f) {
            const std::int64_t co = g * 8 + f;
            const std::int64_t mism = window_mismatches(
                in, weights_, d, n, it.y, it.x, co, zeros.data(), pw);
            const float x1 = static_cast<float>(len - 2 * mism);
            const std::size_t ci = static_cast<std::size_t>(co);
            const bool bit =
                branch_free
                    ? binarize_eqn9(x1, fb.xi[ci], fb.gamma_pos[ci] != 0)
                    : binarize_eqn8(x1, fb.xi[ci], fb.gamma_pos[ci] != 0);
            if (bit) byte = static_cast<std::uint8_t>(byte | (1u << f));
          }
          out_bytes[out.word_offset(n, it.y, it.x, 0) * 8 + g] = byte;
        });
    return out;
  }

  // Path B — fused math, separate packing kernel (wide layers, §VI-B).
  std::vector<std::uint8_t> bits(
      static_cast<std::size_t>(d.n * d.oh * d.ow * d.c_out));
  KernelCost conv_cost = cost;
  conv_cost.bytes_written = static_cast<double>(bits.size());
  ctx.queue.enqueue(
      name_ + ".bconv_nopack", NDRange{d.ow, d.oh, d.n * d.c_out}, conv_cost,
      [&, d, pw, branch_free, len](const WorkItem& it) {
        const std::int64_t n = it.z / d.c_out;
        const std::int64_t co = it.z % d.c_out;
        const std::int64_t mism = window_mismatches(in, weights_, d, n, it.y,
                                                    it.x, co, zeros.data(), pw);
        const float x1 = static_cast<float>(len - 2 * mism);
        const std::size_t ci = static_cast<std::size_t>(co);
        const bool bit =
            branch_free ? binarize_eqn9(x1, fb.xi[ci], fb.gamma_pos[ci] != 0)
                        : binarize_eqn8(x1, fb.xi[ci], fb.gamma_pos[ci] != 0);
        bits[static_cast<std::size_t>(
            ((n * d.oh + it.y) * d.ow + it.x) * d.c_out + co)] = bit ? 1 : 0;
      });

  // Packing pass: one work item per output word.
  const std::int64_t owords = out.words_per_pixel();
  KernelCost pack_cost;
  pack_cost.scalar_ops = static_cast<double>(d.n * d.oh * d.ow * d.c_out);
  pack_cost.bytes_read = static_cast<double>(bits.size());
  pack_cost.bytes_written = static_cast<double>(out.bytes());
  pack_cost.coalescing = costs::coalescing(ctx.opts);
  pack_cost.alu_efficiency = costs::kAuxKernelEff;
  ctx.queue.enqueue(
      name_ + ".pack", NDRange{d.ow, d.oh, d.n * owords}, pack_cost,
      [&, d, owords](const WorkItem& it) {
        const std::int64_t n = it.z / owords;
        const std::int64_t j = it.z % owords;
        std::uint64_t word = 0;
        const std::int64_t base =
            ((n * d.oh + it.y) * d.ow + it.x) * d.c_out + j * 64;
        const std::int64_t limit = std::min<std::int64_t>(64, d.c_out - j * 64);
        for (std::int64_t b = 0; b < limit; ++b) {
          if (bits[static_cast<std::size_t>(base + b)] != 0) {
            word |= (std::uint64_t{1} << b);
          }
        }
        out.data()[out.word_offset(n, it.y, it.x, j)] = word;
      });
  return out;
}

PackedTensor BinaryConv2d::forward_unfused(ExecContext& ctx,
                                           const PackedTensor& in) {
  // Path C — the pre-integration pipeline: three kernels and two
  // materialized intermediates (what §V-B's fusion eliminates).
  const ConvDims d = make_dims(in, weights_, geom_);
  PackedTensor out(Shape{d.n, d.oh, d.ow, d.c_out});
  const std::vector<std::uint64_t> zeros(static_cast<std::size_t>(d.words), 0);
  const auto pw = ctx.opts.pack_width_for(d.c_in);
  const std::int64_t len = d.kh * d.kw * d.c_in;
  const double outputs = static_cast<double>(d.n) * d.oh * d.ow * d.c_out;

  // Kernel 1: raw binary convolution, int32 sums out.
  std::vector<std::int32_t> sums(static_cast<std::size_t>(
      d.n * d.oh * d.ow * d.c_out));
  KernelCost conv_cost;
  conv_cost.bitop_bits =
      2.0 * outputs * static_cast<double>(d.kh * d.kw) *
      static_cast<double>(ceil_div(d.c_in, bitpack::bits(pw)) *
                          bitpack::bits(pw));
  conv_cost.scalar_ops = outputs * static_cast<double>(d.kh * d.kw);
  conv_cost.pack_width_bits = bitpack::bits(pw);
  conv_cost.instr_overhead_cycles = costs::instr_overhead(ctx.opts);
  conv_cost.bytes_read = static_cast<double>(in.bytes() + weights_.bytes());
  conv_cost.bytes_written = outputs * 4.0;
  conv_cost.coalescing = costs::coalescing(ctx.opts);
  conv_cost.alu_efficiency = costs::binary_kernel_eff(ctx.opts);
  ctx.queue.enqueue(
      name_ + ".bconv_raw", NDRange{d.ow, d.oh, d.n * d.c_out}, conv_cost,
      [&, d, pw, len](const WorkItem& it) {
        const std::int64_t n = it.z / d.c_out;
        const std::int64_t co = it.z % d.c_out;
        const std::int64_t mism = window_mismatches(in, weights_, d, n, it.y,
                                                    it.x, co, zeros.data(), pw);
        sums[static_cast<std::size_t>(
            ((n * d.oh + it.y) * d.ow + it.x) * d.c_out + co)] =
            static_cast<std::int32_t>(len - 2 * mism);
      });

  // Kernel 2: full floating-point batch-norm + sign binarization.
  std::vector<std::uint8_t> bits(sums.size());
  KernelCost bn_cost;
  bn_cost.scalar_ops = outputs * 6.0;  // add, sub, div, mul, add, compare
  bn_cost.bytes_read = outputs * 4.0 + static_cast<double>(d.c_out) * 20.0;
  bn_cost.bytes_written = static_cast<double>(bits.size());
  bn_cost.coalescing = costs::coalescing(ctx.opts);
  bn_cost.alu_efficiency = costs::kAuxKernelEff;
  const std::vector<BatchNormParams>& bn = bn_;
  const std::vector<float>& bias = bias_;
  ctx.queue.enqueue_chunked(
      name_ + ".bn_binarize", NDRange{static_cast<std::int64_t>(sums.size())},
      bn_cost, [&, d](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          const std::size_t ci = static_cast<std::size_t>(i % d.c_out);
          const float x3 = batch_norm_reference(
              static_cast<float>(sums[static_cast<std::size_t>(i)]), bn[ci],
              bias.empty() ? 0.0f : bias[ci]);
          bits[static_cast<std::size_t>(i)] = binarize_sign(x3) ? 1 : 0;
        }
      });

  // Kernel 3: packing (same as path B's second kernel).
  const std::int64_t owords = out.words_per_pixel();
  KernelCost pack_cost;
  pack_cost.scalar_ops = outputs;
  pack_cost.bytes_read = static_cast<double>(bits.size());
  pack_cost.bytes_written = static_cast<double>(out.bytes());
  pack_cost.coalescing = costs::coalescing(ctx.opts);
  pack_cost.alu_efficiency = costs::kAuxKernelEff;
  ctx.queue.enqueue(
      name_ + ".pack", NDRange{d.ow, d.oh, d.n * owords}, pack_cost,
      [&, d, owords](const WorkItem& it) {
        const std::int64_t n = it.z / owords;
        const std::int64_t j = it.z % owords;
        std::uint64_t word = 0;
        const std::int64_t base =
            ((n * d.oh + it.y) * d.ow + it.x) * d.c_out + j * 64;
        const std::int64_t limit = std::min<std::int64_t>(64, d.c_out - j * 64);
        for (std::int64_t b = 0; b < limit; ++b) {
          if (bits[static_cast<std::size_t>(base + b)] != 0) {
            word |= (std::uint64_t{1} << b);
          }
        }
        out.data()[out.word_offset(n, it.y, it.x, j)] = word;
      });
  return out;
}

}  // namespace phonebit::core
