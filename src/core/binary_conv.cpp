#include "core/binary_conv.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

#include "bitpack/binary_ops.hpp"
#include "core/binarize.hpp"
#include "core/costs.hpp"
#include "core/pooling.hpp"

namespace phonebit::core {

static_assert(std::endian::native == std::endian::little,
              "byte-granular packing assumes little-endian words");

using bitpack::PackedTensor;
using oclsim::KernelCost;
using oclsim::NDRange;
using oclsim::WorkItem;

BinaryConv2d::BinaryConv2d(std::string name, PackedTensor weights,
                           std::vector<BatchNormParams> bn,
                           std::vector<float> bias, ConvGeometry geom)
    : name_(std::move(name)), weights_(std::move(weights)), bn_(std::move(bn)),
      bias_(std::move(bias)), geom_(geom) {
  const std::int64_t c_out = weights_.shape().n;
  PB_CHECK(static_cast<std::int64_t>(bn_.size()) == c_out,
           name_ << ": BN channel count " << bn_.size() << " != C_out "
                 << c_out);
  PB_CHECK(weights_.shape().h == geom_.kernel_h &&
               weights_.shape().w == geom_.kernel_w,
           name_ << ": filter bank spatial dims disagree with geometry");
  folded_ = fold_batch_norm(bn_, bias_);
}

std::int64_t BinaryConv2d::param_bytes() const {
  // Packed 1-bit weights + per-channel float xi + 1 gamma-sign bit/channel.
  const std::int64_t c_out = weights_.shape().n;
  return weights_.bytes() + c_out * 4 + ceil_div(c_out, 8);
}

std::int64_t BinaryConv2d::param_count() const {
  const Shape& s = weights_.shape();
  return s.n * s.h * s.w * s.c + 5 * s.n;  // weights + (gamma,beta,mu,sigma,b)
}

const bitpack::CompressedFilterBank& BinaryConv2d::compressed_bank() const {
  std::call_once(bank_once_, [this] {
    if (bank_ == nullptr) {
      bank_ = std::make_shared<const bitpack::CompressedFilterBank>(
          bitpack::CompressedFilterBank::build(weights_));
    }
  });
  return *bank_;
}

void BinaryConv2d::adopt_bank(
    std::shared_ptr<const bitpack::CompressedFilterBank> bank) const {
  PB_CHECK(bank != nullptr, name_ << ": cannot adopt a null compression bank");
  std::call_once(bank_once_, [this, &bank] { bank_ = std::move(bank); });
  PB_CHECK(bank == nullptr,
           name_ << ": compression bank adopted after it was already built");
}

const PackedTensor& BinaryConv2d::checked_input(const Blob& in) const {
  const auto* packed = std::get_if<PackedTensor>(&in);
  PB_CHECK(packed != nullptr,
           name_ << ": binary conv expects a packed binary input");
  PB_CHECK(packed->shape().c == in_channels(),
           name_ << ": input has " << packed->shape().c << " channels, filter "
                 << in_channels());
  return *packed;
}

void BinaryConv2d::plan(PlanContext& pc) const {
  const BlobDesc& in = pc.in();
  PB_CHECK(in.kind == BlobKind::kPacked,
           name_ << ": binary conv expects a packed binary input, got "
                 << in.str());
  PB_CHECK(in.shape.c == in_channels(),
           name_ << ": input has " << in.shape.c << " channels, filter "
                 << in_channels());
  const std::int64_t oh = geom_.out_h(in.shape.h);
  const std::int64_t ow = geom_.out_w(in.shape.w);
  KernelVariant v = select_variant(in.shape, pc.opts());
  // Scratch liveness mirrors execute() exactly: the im2col panel for the
  // bit-GEMM lowering, the legacy zeros span only without the interior
  // split, the byte map for separate packing, and the materialized int32
  // sums for the no-integration pipeline.
  const std::int64_t out_count = in.shape.n * oh * ow * out_channels();
  if (v.path == KernelVariant::Path::kConvGemm) {
    const std::int64_t words = ceil_div(in.shape.c, bitpack::kWordBits);
    pc.need_words(in.shape.n * oh * ow * geom_.kernel_h * geom_.kernel_w *
                  words);
  } else {
    if (!v.interior_split) {
      pc.need_words(ceil_div(in.shape.c, bitpack::kWordBits));
    }
    if (v.path == KernelVariant::Path::kConvSeparatePack) {
      pc.need_u8(out_count);
    } else if (v.path == KernelVariant::Path::kConvUnfused) {
      pc.need_i32(out_count);
      pc.need_u8(out_count);
    }
  }
  pc.select(std::move(v));
  pc.produce(BlobDesc{BlobKind::kPacked,
                      Shape{in.shape.n, oh, ow, out_channels()}});
}

Blob BinaryConv2d::forward(ExecContext& ctx, const Blob& in) const {
  const PackedTensor& packed = checked_input(in);
  if (ctx.stats != nullptr) ++ctx.stats->variant_selections;
  return execute(ctx, packed, select_variant(packed.shape(), ctx.opts));
}

Blob BinaryConv2d::run(ExecContext& ctx, const Blob& in,
                       const PlanStep& step) const {
  if (step.fused_pool != nullptr) {
    return forward_fused_pool(ctx, checked_input(in), step);
  }
  return execute(ctx, checked_input(in), step.variant);
}

PackedTensor BinaryConv2d::execute(ExecContext& ctx, const PackedTensor& in,
                                   const KernelVariant& v) const {
  if (v.path == KernelVariant::Path::kConvUnfused) {
    return forward_unfused(ctx, in, v);
  }
  if (v.path == KernelVariant::Path::kConvGemm) {
    return forward_gemm(ctx, in, v);
  }
  if (v.path == KernelVariant::Path::kConvFused && v.reuse) {
    return forward_fused_dedup(ctx, in, v);
  }
  return forward_fused(ctx, in, v,
                       v.path == KernelVariant::Path::kConvFused);
}

namespace {

/// Shared geometry snapshot the kernel bodies capture by value, including
/// the interior output box [x0,x1) x [y0,y1): the output rectangle whose
/// windows never touch padding, which runs the branch-free fast path.
struct ConvDims {
  std::int64_t n, ih, iw, c_in, oh, ow, c_out, kh, kw, sh, sw, ph, pw, words;
  std::int64_t y0, y1, x0, x1;
};

ConvDims make_dims(const Shape& in_shape, std::int64_t c_out,
                   const ConvGeometry& g) {
  ConvDims d{};
  d.n = in_shape.n;
  d.ih = in_shape.h;
  d.iw = in_shape.w;
  d.c_in = in_shape.c;
  d.oh = g.out_h(d.ih);
  d.ow = g.out_w(d.iw);
  d.c_out = c_out;
  d.kh = g.kernel_h;
  d.kw = g.kernel_w;
  d.sh = g.stride_h;
  d.sw = g.stride_w;
  d.ph = g.pad_h;
  d.pw = g.pad_w;
  d.words = ceil_div(d.c_in, bitpack::kWordBits);
  const InteriorBox box = interior_box(g, d.ih, d.iw, d.oh, d.ow);
  d.y0 = box.y0;
  d.y1 = box.y1;
  d.x0 = box.x0;
  d.x1 = box.x1;
  return d;
}

ConvDims make_dims(const PackedTensor& in, const PackedTensor& weights,
                   const ConvGeometry& g) {
  return make_dims(in.shape(), weights.shape().n, g);
}

/// Pre-optimization inner loop, kept as the interior-split ablation arm:
/// one short xor_popcount per kernel tap with a per-tap padding branch;
/// out-of-bounds input pixels use the all-zero span (-1 padding).
inline std::int64_t window_mismatches_taps(const PackedTensor& in,
                                           const PackedTensor& weights,
                                           const ConvDims& d, std::int64_t n,
                                           std::int64_t oy, std::int64_t ox,
                                           std::int64_t co,
                                           const std::uint64_t* zeros,
                                           bitpack::PackWidth pw) {
  std::int64_t mism = 0;
  for (std::int64_t kh = 0; kh < d.kh; ++kh) {
    const std::int64_t iy = oy * d.sh - d.ph + kh;
    for (std::int64_t kw = 0; kw < d.kw; ++kw) {
      const std::int64_t ix = ox * d.sw - d.pw + kw;
      const bool inside = iy >= 0 && iy < d.ih && ix >= 0 && ix < d.iw;
      const std::uint64_t* span = inside ? in.pixel(n, iy, ix) : zeros;
      mism += bitpack::xor_popcount(span, weights.pixel(co, kh, kw), d.words,
                                    pw);
    }
  }
  return mism;
}

/// Fast path for windows fully inside the input: the kw taps of one filter
/// row are contiguous in both operands (NHWC packing), so the whole window
/// is one strided xor+popcount — kh input rows (pitch iw*words) against the
/// contiguous filter (pitch kw*words). No bounds test, no zeros span.
inline std::int64_t window_mismatches_interior(const PackedTensor& in,
                                               const PackedTensor& weights,
                                               const ConvDims& d,
                                               std::int64_t n, std::int64_t iy0,
                                               std::int64_t ix0,
                                               std::int64_t co,
                                               bitpack::PackWidth pw) {
  return bitpack::xor_popcount_2d(in.pixel(n, iy0, ix0), d.iw * d.words,
                                  weights.pixel(co, 0, 0), d.kw * d.words,
                                  d.kw * d.words, d.kh, pw);
}

/// Border windows, still row-fused: each filter row splits into at most
/// [left-pad | in-bounds run | right-pad]. A padding tap xors the all-zero
/// span against the weights, so its mismatch count is just the popcount of
/// the weight span — the pad segments need no zeros buffer at all.
inline std::int64_t window_mismatches_border(const PackedTensor& in,
                                             const PackedTensor& weights,
                                             const ConvDims& d, std::int64_t n,
                                             std::int64_t oy, std::int64_t ox,
                                             std::int64_t co,
                                             bitpack::PackWidth pw) {
  const std::int64_t iy0 = oy * d.sh - d.ph;
  const std::int64_t ix0 = ox * d.sw - d.pw;
  const std::int64_t lo = std::clamp<std::int64_t>(-ix0, 0, d.kw);
  const std::int64_t hi = std::clamp<std::int64_t>(d.iw - ix0, 0, d.kw);
  std::int64_t mism = 0;
  for (std::int64_t kh = 0; kh < d.kh; ++kh) {
    const std::int64_t iy = iy0 + kh;
    const std::uint64_t* wrow = weights.pixel(co, kh, 0);
    if (iy < 0 || iy >= d.ih || hi <= lo) {
      mism += bitpack::popcount_words(wrow, d.kw * d.words);
      continue;
    }
    if (lo > 0) mism += bitpack::popcount_words(wrow, lo * d.words);
    if (hi < d.kw) {
      mism += bitpack::popcount_words(wrow + hi * d.words,
                                      (d.kw - hi) * d.words);
    }
    mism += bitpack::xor_popcount(in.pixel(n, iy, ix0 + lo),
                                  wrow + lo * d.words, (hi - lo) * d.words,
                                  pw);
  }
  return mism;
}

/// Window accumulator honoring the interior-split option. `y_interior` is
/// the hoisted per-row bounds test so the inner x loop pays one compare.
inline std::int64_t window_mismatches(const PackedTensor& in,
                                      const PackedTensor& weights,
                                      const ConvDims& d, std::int64_t n,
                                      std::int64_t oy, std::int64_t ox,
                                      std::int64_t co,
                                      const std::uint64_t* zeros,
                                      bitpack::PackWidth pw, bool split,
                                      bool y_interior) {
  if (!split) {
    return window_mismatches_taps(in, weights, d, n, oy, ox, co, zeros, pw);
  }
  if (y_interior && ox >= d.x0 && ox < d.x1) {
    return window_mismatches_interior(in, weights, d, n, oy * d.sh - d.ph,
                                      ox * d.sw - d.pw, co, pw);
  }
  return window_mismatches_border(in, weights, d, n, oy, ox, co, pw);
}

/// Path A's per-group window accumulator: the 8 filters of workload group g
/// scored at once. Interior windows run the SHARED-WINDOW schedule — each
/// input span is loaded once and re-used across the 8 contiguous filters of
/// the group (xor_popcount_2d_x8) instead of 8 independent window passes
/// re-reading the same spans. Border/per-tap windows keep the per-filter
/// routines (the border fraction is small and pad-clamped spans differ per
/// row anyway).
inline void group_mismatches(const PackedTensor& in,
                             const PackedTensor& weights, const ConvDims& d,
                             std::int64_t n, std::int64_t oy, std::int64_t ox,
                             std::int64_t g, const std::uint64_t* zeros,
                             bitpack::PackWidth pw, bool split,
                             bool y_interior, std::int64_t mism[8]) {
  if (split && y_interior && ox >= d.x0 && ox < d.x1) {
    bitpack::xor_popcount_2d_x8(
        in.pixel(n, oy * d.sh - d.ph, ox * d.sw - d.pw), d.iw * d.words,
        weights.pixel(g * 8, 0, 0), d.kh * d.kw * d.words, d.kw * d.words,
        d.kw * d.words, d.kh, pw, mism);
    return;
  }
  for (int f = 0; f < 8; ++f) {
    mism[f] = window_mismatches(in, weights, d, n, oy, ox, g * 8 + f, zeros,
                                pw, split, y_interior);
  }
}

/// Dedup'd per-group window accumulator (DESIGN.md §12): lane f computes
/// its window only when it is its group's first lane with that exact filter
/// content (`lanes[f] == f`); duplicate lanes copy the earlier result —
/// legal for interior AND border windows, since identical filters score
/// identically against any window. Distinct interior lanes run the plain
/// row-fused whole-window reduction; bit-exact with group_mismatches.
inline void group_mismatches_dedup(const PackedTensor& in,
                                   const PackedTensor& weights,
                                   const ConvDims& d, std::int64_t n,
                                   std::int64_t oy, std::int64_t ox,
                                   std::int64_t g, const std::uint8_t* lanes,
                                   bitpack::PackWidth pw, bool y_interior,
                                   std::int64_t mism[8]) {
  const bool interior = y_interior && ox >= d.x0 && ox < d.x1;
  for (int f = 0; f < 8; ++f) {
    if (lanes[f] != f) {
      mism[f] = mism[lanes[f]];
      continue;
    }
    mism[f] = interior
                  ? window_mismatches_interior(in, weights, d, n,
                                               oy * d.sh - d.ph,
                                               ox * d.sw - d.pw, g * 8 + f, pw)
                  : window_mismatches_border(in, weights, d, n, oy, ox,
                                             g * 8 + f, pw);
  }
}

/// Path A epilogue: folded-BN threshold sign over the 8 group results,
/// packed into one byte (Fig. 4's private-memory byte).
inline std::uint8_t group_byte(const std::int64_t mism[8], std::int64_t g,
                               std::int64_t len, const FoldedBatchNorm& fb,
                               bool branch_free) {
  std::uint8_t byte = 0;
  for (int f = 0; f < 8; ++f) {
    const std::size_t ci = static_cast<std::size_t>(g * 8 + f);
    const float x1 = static_cast<float>(len - 2 * mism[f]);
    const bool bit = branch_free
                         ? binarize_eqn9(x1, fb.xi[ci], fb.gamma_pos[ci] != 0)
                         : binarize_eqn8(x1, fb.xi[ci], fb.gamma_pos[ci] != 0);
    if (bit) byte = static_cast<std::uint8_t>(byte | (1u << f));
  }
  return byte;
}

/// Bit-lanes charged per conv window at granularity `pw`. The row-fused
/// path streams kh spans of kw*words words with a scalar tail — no lane is
/// ever wasted (span-keyed selection never overshoots the span), so it is
/// charged the exact word bits. The per-tap path pads each of the kh*kw
/// taps to the vector width (narrow layers waste the tail lanes).
inline double window_bitops(const ConvDims& d, bitpack::PackWidth pw,
                            bool split) {
  if (split) {
    const std::int64_t row_bits = d.kw * d.words * bitpack::kWordBits;
    return 2.0 * static_cast<double>(d.kh) * static_cast<double>(row_bits);
  }
  const std::int64_t pwbits = bitpack::bits(pw);
  const std::int64_t tap_bits = ceil_div(d.c_in, pwbits) * pwbits;
  return 2.0 * static_cast<double>(d.kh * d.kw) *
         static_cast<double>(tap_bits);
}

/// Work tally of the window-accumulation portion shared by every conv path
/// (see costs.hpp). Row fusion shows up as fewer scalar bookkeeping ops and
/// kh instead of kh*kw span setups per window; border windows pay up to one
/// extra pad-popcount span per filter row. `shared_window` (path A only —
/// its work item owns the whole 8-filter group) amortizes each interior
/// input-span setup over the group's 8 filters.
void charge_windows(KernelCost& cost, const ConvDims& d,
                    const EngineOptions& opts, bool split,
                    bool shared_window) {
  const double outputs = static_cast<double>(d.n) * d.oh * d.ow * d.c_out;
  const double interior =
      split ? static_cast<double>(d.n) * (d.y1 - d.y0) * (d.x1 - d.x0) *
                  d.c_out
            : 0.0;
  const double border = outputs - interior;
  const double kh = static_cast<double>(d.kh);
  const double taps = static_cast<double>(d.kh * d.kw);
  cost.span_setup_cycles = costs::kSpanSetupCycles;
  if (split) {
    cost.scalar_ops = interior * 1.0 + border * kh;
    const double interior_spans =
        shared_window ? costs::shared_window_spans(kh) : kh;
    cost.span_count = interior * interior_spans + border * 2.0 * kh;
    cost.instr_overhead_cycles = costs::instr_overhead_fused(opts);
  } else {
    cost.scalar_ops = outputs * taps;
    cost.span_count = outputs * taps;
    cost.instr_overhead_cycles = costs::instr_overhead(opts);
  }
}

/// Modeled time on the fixed reference profile used for ahead-of-time path
/// selection. A pure function of the cost tally — never of the session's
/// device — so plan replay (artifact decode) reselects identically.
double reference_gpu_ms(const KernelCost& cost) {
  static const oclsim::DeviceProfile ref =
      oclsim::DeviceProfile::snapdragon855();
  return oclsim::modeled_ms(cost, ref, oclsim::ExecUnit::kGpu);
}

/// Packed activation/filter byte sizes from geometry alone (plan time has
/// no tensors yet). Mirrors PackedTensor::bytes() for the NHWC layout.
double packed_in_bytes(const ConvDims& d) {
  return static_cast<double>(d.n * d.ih * d.iw * d.words) * 8.0;
}
double packed_weight_bytes(const ConvDims& d) {
  return static_cast<double>(d.c_out * d.kh * d.kw * d.words) * 8.0;
}
double packed_out_bytes(const ConvDims& d) {
  return static_cast<double>(d.n * d.oh * d.ow *
                             ceil_div(d.c_out, bitpack::kWordBits)) *
         8.0;
}

/// Selection-side estimate of the window-streaming schedule (path A when
/// `path_a`, else path B's conv + pack pair). Charges exactly what
/// forward_fused() charges at dispatch time, so the roofline comparison and
/// the recorded modeled times cannot disagree.
double modeled_window_ms(const ConvDims& d, const EngineOptions& opts,
                         bool path_a) {
  const double outputs = static_cast<double>(d.n) * d.oh * d.ow * d.c_out;
  const auto pw = opts.conv_pack_width(d.c_in, d.kw);
  const bool split = opts.interior_split;
  KernelCost cost;
  cost.bitop_bits = outputs * window_bitops(d, pw, split);
  charge_windows(cost, d, opts, split, /*shared_window=*/path_a);
  cost.scalar_ops += outputs * 4.0;
  cost.pack_width_bits = bitpack::bits(
      split ? bitpack::cap_pack_width_to_span(pw, d.kw * d.words) : pw);
  cost.bytes_read = packed_in_bytes(d) + packed_weight_bytes(d) +
                    static_cast<double>(d.c_out) * 5.0;
  cost.coalescing = costs::coalescing(opts);
  cost.alu_efficiency = costs::binary_kernel_eff(opts);
  if (path_a) {
    cost.bytes_written = packed_out_bytes(d);
    return reference_gpu_ms(cost);
  }
  cost.bytes_written = outputs;  // the 0/1 byte map
  KernelCost pack;
  pack.scalar_ops = outputs;
  pack.bytes_read = outputs;
  pack.bytes_written = packed_out_bytes(d);
  pack.coalescing = costs::coalescing(opts);
  pack.alu_efficiency = costs::kAuxKernelEff;
  return reference_gpu_ms(cost) + reference_gpu_ms(pack);
}

/// Selection-side estimate of the bit-GEMM lowering: the im2col panel build
/// plus the register-tiled GEMM (mirrors forward_gemm()'s tallies). The
/// panel traffic and the second launch are what small geometries lose on;
/// large ones win it back through the tile-amortized span setup, the lower
/// per-op overhead and the pack width keyed on the full K span.
double modeled_gemm_ms(const ConvDims& d, const EngineOptions& opts) {
  const std::int64_t k_words = d.kh * d.kw * d.words;
  const std::int64_t m = d.n * d.oh * d.ow;
  const double outputs = static_cast<double>(m) * d.c_out;
  const double panel_bytes = static_cast<double>(m * k_words) * 8.0;

  KernelCost col;
  col.scalar_ops = static_cast<double>(m * k_words);
  col.bytes_read = panel_bytes;
  col.bytes_written = panel_bytes;
  col.coalescing = costs::coalescing(opts);
  col.alu_efficiency = costs::kAuxKernelEff;

  const auto pw = opts.pack_width_for_span(d.c_in, k_words);
  const double tiles = static_cast<double>(ceil_div(m, bitpack::kGemmMr)) *
                       static_cast<double>(d.c_out / 8);
  KernelCost gemm;
  gemm.bitop_bits =
      outputs * 2.0 * static_cast<double>(k_words) * bitpack::kWordBits;
  gemm.pack_width_bits =
      bitpack::bits(bitpack::cap_pack_width_to_span(pw, k_words));
  gemm.instr_overhead_cycles = costs::instr_overhead_gemm(opts);
  gemm.span_count = tiles;
  gemm.span_setup_cycles = costs::kGemmTileSetupCycles;
  gemm.scalar_ops = outputs * 4.0;  // threshold compare + byte/bit insert
  gemm.bytes_read = panel_bytes + packed_weight_bytes(d) +
                    static_cast<double>(d.c_out) * 5.0;
  gemm.bytes_written = packed_out_bytes(d);
  gemm.coalescing = costs::coalescing(opts);
  gemm.alu_efficiency = costs::binary_kernel_eff(opts);
  return reference_gpu_ms(col) + reference_gpu_ms(gemm);
}

/// Window-accumulation tally of the dedup'd path-A schedule (DESIGN.md
/// §12): every group computes one window per DISTINCT lane and copies exact
/// duplicates, so span setups, border row walks and bit-ops all scale by
/// the bank's distinct-lane fraction. Interior bookkeeping stays one op per
/// output (the copy is as cheap as the accumulate it replaces).
void charge_windows_dedup(KernelCost& cost, const ConvDims& d,
                          const EngineOptions& opts, double distinct_frac) {
  const double outputs = static_cast<double>(d.n) * d.oh * d.ow * d.c_out;
  const double interior =
      static_cast<double>(d.n) * (d.y1 - d.y0) * (d.x1 - d.x0) * d.c_out;
  const double border = outputs - interior;
  const double kh = static_cast<double>(d.kh);
  cost.span_setup_cycles = costs::kSpanSetupCycles;
  cost.scalar_ops = interior * 1.0 + border * kh * distinct_frac;
  cost.span_count = interior * costs::dedup_window_spans(kh, distinct_frac) +
                    border * 2.0 * kh * distinct_frac;
  cost.instr_overhead_cycles = costs::instr_overhead_fused(opts);
}

/// Selection-side estimate of the dedup'd path-A schedule. Mirrors
/// forward_fused_dedup()'s tallies exactly (same expressions), so the
/// roofline comparison and the recorded modeled times cannot disagree.
/// Only meaningful with the interior split on (the reuse gate requires it).
double modeled_window_dedup_ms(const ConvDims& d, const EngineOptions& opts,
                               const bitpack::CompressedFilterBank& bank) {
  const double outputs = static_cast<double>(d.n) * d.oh * d.ow * d.c_out;
  const double distinct_frac =
      static_cast<double>(bank.distinct_group_lanes()) /
      static_cast<double>(d.c_out);
  const auto pw = opts.conv_pack_width(d.c_in, d.kw);
  KernelCost cost;
  cost.bitop_bits =
      outputs * window_bitops(d, pw, /*split=*/true) * distinct_frac;
  charge_windows_dedup(cost, d, opts, distinct_frac);
  cost.scalar_ops += outputs * 4.0;
  cost.pack_width_bits =
      bitpack::bits(bitpack::cap_pack_width_to_span(pw, d.kw * d.words));
  cost.bytes_read = packed_in_bytes(d) +
                    packed_weight_bytes(d) * distinct_frac +
                    static_cast<double>(d.c_out) * 5.0;
  cost.bytes_written = packed_out_bytes(d);
  cost.coalescing = costs::coalescing(opts);
  cost.alu_efficiency = costs::binary_kernel_eff(opts);
  return reference_gpu_ms(cost);
}

/// Selection-side estimate of the partial-popcount reuse GEMM: the same
/// im2col panel, then stage 1 scores each unique dictionary row once per
/// register tile and stage 2 patches referencing filters at
/// kReuseDeltaWordOps per delta word. Mirrors forward_gemm()'s reuse branch
/// exactly.
double modeled_gemm_reuse_ms(const ConvDims& d, const EngineOptions& opts,
                             const bitpack::CompressedFilterBank& bank) {
  const std::int64_t k_words = d.kh * d.kw * d.words;
  const std::int64_t m = d.n * d.oh * d.ow;
  const double outputs = static_cast<double>(m) * d.c_out;
  const double panel_bytes = static_cast<double>(m * k_words) * 8.0;

  KernelCost col;
  col.scalar_ops = static_cast<double>(m * k_words);
  col.bytes_read = panel_bytes;
  col.bytes_written = panel_bytes;
  col.coalescing = costs::coalescing(opts);
  col.alu_efficiency = costs::kAuxKernelEff;

  const auto pw = opts.pack_width_for_span(d.c_in, k_words);
  const double m_tiles = static_cast<double>(ceil_div(m, bitpack::kGemmMr));
  const double unique = static_cast<double>(bank.unique_rows());
  const double delta_words = static_cast<double>(bank.stats().delta_words);
  KernelCost gemm;
  gemm.bitop_bits = costs::reuse_gemm_bitop_bits(
      static_cast<double>(m), unique, static_cast<double>(k_words),
      delta_words);
  gemm.pack_width_bits =
      bitpack::bits(bitpack::cap_pack_width_to_span(pw, k_words));
  gemm.instr_overhead_cycles = costs::instr_overhead_gemm(opts);
  // One stage-1 span per unique row plus one stage-2 patch/epilogue pass
  // per filter group, per tile.
  gemm.span_count = m_tiles * (unique + static_cast<double>(d.c_out / 8));
  gemm.span_setup_cycles = costs::kGemmTileSetupCycles;
  gemm.scalar_ops = outputs * 5.0;  // cached-partial fetch + threshold/byte
  gemm.bytes_read = panel_bytes +
                    static_cast<double>(bank.stats().encoded_bytes) +
                    static_cast<double>(d.c_out) * 5.0;
  gemm.bytes_written = packed_out_bytes(d);
  gemm.coalescing = costs::coalescing(opts);
  gemm.alu_efficiency = costs::binary_kernel_eff(opts);
  return reference_gpu_ms(col) + reference_gpu_ms(gemm);
}

}  // namespace

KernelVariant BinaryConv2d::select_variant(const Shape& in_shape,
                                           const EngineOptions& opts) const {
  KernelVariant v;
  v.interior_split = opts.interior_split;
  v.pack_width = opts.conv_pack_width(in_shape.c, geom_.kernel_w);
  const std::int64_t ow = geom_.out_w(in_shape.w);
  v.tile_ow = opts.conv_tile_ow <= 0 ? ow : std::min(opts.conv_tile_ow, ow);
  // Path D (DESIGN.md §11) needs the fused folded-BN epilogue and whole
  // filter groups; where legal, kAuto takes it only when the roofline model
  // says the lowering wins this geometry on the reference profile. Both the
  // eligibility test and the comparison are pure functions of
  // (options, geometry), which artifact plan replay depends on.
  const bool gemm_legal = opts.fuse_bn_binarize && opts.integrate_packing &&
                          out_channels() % 8 == 0;
  if (gemm_legal && opts.conv_path != ConvPathPreference::kRowFused) {
    const ConvDims d = make_dims(in_shape, out_channels(), geom_);
    const bool take_gemm =
        opts.conv_path == ConvPathPreference::kGemm ||
        modeled_gemm_ms(d, opts) <
            modeled_window_ms(
                d, opts,
                /*path_a=*/in_channels() <= opts.packing_channel_threshold);
    if (take_gemm) {
      v.path = KernelVariant::Path::kConvGemm;
      v.kernel = "im2col+bitgemm";
      // The GEMM inner loop streams the full K = kh*kw*words panel row, so
      // its granularity is keyed on that span, not the row-fused kw*words.
      v.pack_width =
          opts.pack_width_for_span(in_shape.c, d.kh * d.kw * d.words);
      v.tile_ow = bitpack::kGemmMr;  // M rows per register tile
      // Partial-popcount reuse (DESIGN.md §12): legal when the stage-1
      // partials fit the fixed per-work-item buffer; taken when the bank's
      // measured redundancy beats the plain tile on the reference roofline.
      // The bank is a deterministic function of the weights, so selection
      // stays replay-exact.
      if (opts.weight_compress == WeightCompress::kAuto) {
        const bitpack::CompressedFilterBank& bank = compressed_bank();
        if (bank.unique_rows() <= bitpack::kReuseMaxDict &&
            bank.unique_rows() < out_channels() &&
            modeled_gemm_reuse_ms(d, opts, bank) < modeled_gemm_ms(d, opts)) {
          v.reuse = true;
          v.kernel = "im2col+bitgemm_reuse";
        }
      }
      return v;
    }
  }
  if (!opts.fuse_bn_binarize) {
    v.path = KernelVariant::Path::kConvUnfused;
    v.kernel = "bconv_raw+bn_binarize+pack";
  } else if (opts.integrate_packing &&
             in_channels() <= opts.packing_channel_threshold &&
             out_channels() % 8 == 0) {
    v.path = KernelVariant::Path::kConvFused;
    v.kernel = "bconv_fused";
    // Duplicate-lane dedup of the shared-window schedule (DESIGN.md §12):
    // only exact within-group duplicates are legal here (delta patches
    // would change the window math), so the gate is the bank's distinct
    // lane count plus the roofline comparison.
    if (opts.weight_compress == WeightCompress::kAuto && opts.interior_split) {
      const bitpack::CompressedFilterBank& bank = compressed_bank();
      if (bank.distinct_group_lanes() < out_channels()) {
        const ConvDims d = make_dims(in_shape, out_channels(), geom_);
        if (modeled_window_dedup_ms(d, opts, bank) <
            modeled_window_ms(d, opts, /*path_a=*/true)) {
          v.reuse = true;
          v.kernel = "bconv_fused_dedup";
        }
      }
    }
  } else {
    v.path = KernelVariant::Path::kConvSeparatePack;
    v.kernel = "bconv_nopack+pack";
  }
  return v;
}

PackedTensor BinaryConv2d::forward_fused(ExecContext& ctx,
                                         const PackedTensor& in,
                                         const KernelVariant& v,
                                         bool integrate_packing) const {
  const ConvDims d = make_dims(in, weights_, geom_);
  PackedTensor out = ctx.make_packed(Shape{d.n, d.oh, d.ow, d.c_out});
  const bool split = v.interior_split;
  const std::uint64_t* zeros =
      split ? nullptr : ctx.arena.zero_words(d.words);
  const auto pw = v.pack_width;
  const bool branch_free = ctx.opts.branch_free_binarize;
  const std::int64_t len = d.kh * d.kw * d.c_in;
  const std::int64_t tile = std::min(v.tile_ow, d.ow);
  const std::int64_t tiles_x = ceil_div(d.ow, tile);
  const FoldedBatchNorm& fb = folded_;

  // Work tally (see costs.hpp): xor + popcount bit-lanes per window span,
  // padded to the processing vector width (narrow layers waste the tail
  // lanes of one vector, not a whole 64-bit word), plus window accumulation,
  // span setups and the threshold test per output value.
  const double outputs = static_cast<double>(d.n) * d.oh * d.ow * d.c_out;
  KernelCost cost;
  cost.bitop_bits = outputs * window_bitops(d, pw, split);
  charge_windows(cost, d, ctx.opts, split, /*shared_window=*/integrate_packing);
  cost.scalar_ops += outputs * 4.0;  // threshold compare + byte/bit insert
  cost.pack_width_bits = bitpack::bits(
      split ? bitpack::cap_pack_width_to_span(pw, d.kw * d.words) : pw);
  cost.bytes_read = static_cast<double>(in.bytes() + weights_.bytes()) +
                    static_cast<double>(d.c_out) * 5.0;
  cost.coalescing = costs::coalescing(ctx.opts);
  cost.alu_efficiency = costs::binary_kernel_eff(ctx.opts);

  if (integrate_packing) {
    // Path A — Fig. 4: one work item owns a tile of output columns for the
    // 8 filters of its group and stores one byte per column; interior
    // windows run the shared-window schedule (group_mismatches).
    const std::int64_t groups = d.c_out / 8;
    cost.bytes_written = static_cast<double>(out.bytes());
    auto* out_bytes = reinterpret_cast<std::uint8_t*>(out.data());
    ctx.queue.enqueue(
        name_ + ".bconv_fused", NDRange{tiles_x, d.oh, d.n * groups}, cost,
        [&, d, pw, branch_free, len, groups, split, tile,
         zeros](const WorkItem& it) {
          const std::int64_t n = it.z / groups;
          const std::int64_t g = it.z % groups;
          const bool y_in = it.y >= d.y0 && it.y < d.y1;
          const std::int64_t x_end =
              std::min(d.ow, (it.x + 1) * tile);
          for (std::int64_t ox = it.x * tile; ox < x_end; ++ox) {
            std::int64_t mism[8];
            group_mismatches(in, weights_, d, n, it.y, ox, g, zeros, pw,
                             split, y_in, mism);
            out_bytes[out.word_offset(n, it.y, ox, 0) * 8 + g] =
                group_byte(mism, g, len, fb, branch_free);
          }
        });
    return out;
  }

  // Path B — fused math, separate packing kernel (wide layers, §VI-B).
  // The 0/1 byte map lives in the engine arena, not a per-forward vector.
  const std::int64_t bit_count = d.n * d.oh * d.ow * d.c_out;
  std::uint8_t* bits = ctx.arena.u8(bit_count);
  KernelCost conv_cost = cost;
  conv_cost.bytes_written = static_cast<double>(bit_count);
  ctx.queue.enqueue(
      name_ + ".bconv_nopack", NDRange{tiles_x, d.oh, d.n * d.c_out},
      conv_cost,
      [&, d, pw, branch_free, len, split, tile, zeros,
       bits](const WorkItem& it) {
        const std::int64_t n = it.z / d.c_out;
        const std::int64_t co = it.z % d.c_out;
        const bool y_in = it.y >= d.y0 && it.y < d.y1;
        const std::int64_t x_end = std::min(d.ow, (it.x + 1) * tile);
        for (std::int64_t ox = it.x * tile; ox < x_end; ++ox) {
          const std::int64_t mism = window_mismatches(
              in, weights_, d, n, it.y, ox, co, zeros, pw, split, y_in);
          const float x1 = static_cast<float>(len - 2 * mism);
          const std::size_t ci = static_cast<std::size_t>(co);
          const bool bit =
              branch_free ? binarize_eqn9(x1, fb.xi[ci], fb.gamma_pos[ci] != 0)
                          : binarize_eqn8(x1, fb.xi[ci], fb.gamma_pos[ci] != 0);
          bits[static_cast<std::size_t>(
              ((n * d.oh + it.y) * d.ow + ox) * d.c_out + co)] = bit ? 1 : 0;
        }
      });

  // Packing pass: one work item per output word.
  const std::int64_t owords = out.words_per_pixel();
  KernelCost pack_cost;
  pack_cost.scalar_ops = static_cast<double>(bit_count);
  pack_cost.bytes_read = static_cast<double>(bit_count);
  pack_cost.bytes_written = static_cast<double>(out.bytes());
  pack_cost.coalescing = costs::coalescing(ctx.opts);
  pack_cost.alu_efficiency = costs::kAuxKernelEff;
  ctx.queue.enqueue(
      name_ + ".pack", NDRange{d.ow, d.oh, d.n * owords}, pack_cost,
      [&, d, owords, bits](const WorkItem& it) {
        const std::int64_t n = it.z / owords;
        const std::int64_t j = it.z % owords;
        std::uint64_t word = 0;
        const std::int64_t base =
            ((n * d.oh + it.y) * d.ow + it.x) * d.c_out + j * 64;
        const std::int64_t limit = std::min<std::int64_t>(64, d.c_out - j * 64);
        for (std::int64_t b = 0; b < limit; ++b) {
          if (bits[static_cast<std::size_t>(base + b)] != 0) {
            word |= (std::uint64_t{1} << b);
          }
        }
        out.data()[out.word_offset(n, it.y, it.x, j)] = word;
      });
  return out;
}

PackedTensor BinaryConv2d::forward_unfused(ExecContext& ctx,
                                           const PackedTensor& in,
                                           const KernelVariant& v) const {
  // Path C — the pre-integration pipeline: three kernels and two
  // materialized intermediates (what §V-B's fusion eliminates). Both
  // intermediates live in the engine arena.
  const ConvDims d = make_dims(in, weights_, geom_);
  PackedTensor out = ctx.make_packed(Shape{d.n, d.oh, d.ow, d.c_out});
  const bool split = v.interior_split;
  const std::uint64_t* zeros =
      split ? nullptr : ctx.arena.zero_words(d.words);
  const auto pw = v.pack_width;
  const std::int64_t len = d.kh * d.kw * d.c_in;
  const std::int64_t tile = std::min(v.tile_ow, d.ow);
  const std::int64_t tiles_x = ceil_div(d.ow, tile);
  const double outputs = static_cast<double>(d.n) * d.oh * d.ow * d.c_out;
  const std::int64_t out_count = d.n * d.oh * d.ow * d.c_out;

  // Kernel 1: raw binary convolution, int32 sums out.
  std::int32_t* sums = ctx.arena.i32(out_count);
  KernelCost conv_cost;
  conv_cost.bitop_bits = outputs * window_bitops(d, pw, split);
  charge_windows(conv_cost, d, ctx.opts, split, /*shared_window=*/false);
  conv_cost.pack_width_bits = bitpack::bits(
      split ? bitpack::cap_pack_width_to_span(pw, d.kw * d.words) : pw);
  conv_cost.bytes_read = static_cast<double>(in.bytes() + weights_.bytes());
  conv_cost.bytes_written = outputs * 4.0;
  conv_cost.coalescing = costs::coalescing(ctx.opts);
  conv_cost.alu_efficiency = costs::binary_kernel_eff(ctx.opts);
  ctx.queue.enqueue(
      name_ + ".bconv_raw", NDRange{tiles_x, d.oh, d.n * d.c_out}, conv_cost,
      [&, d, pw, len, split, tile, zeros, sums](const WorkItem& it) {
        const std::int64_t n = it.z / d.c_out;
        const std::int64_t co = it.z % d.c_out;
        const bool y_in = it.y >= d.y0 && it.y < d.y1;
        const std::int64_t x_end = std::min(d.ow, (it.x + 1) * tile);
        for (std::int64_t ox = it.x * tile; ox < x_end; ++ox) {
          const std::int64_t mism = window_mismatches(
              in, weights_, d, n, it.y, ox, co, zeros, pw, split, y_in);
          sums[static_cast<std::size_t>(
              ((n * d.oh + it.y) * d.ow + ox) * d.c_out + co)] =
              static_cast<std::int32_t>(len - 2 * mism);
        }
      });

  // Kernel 2: full floating-point batch-norm + sign binarization.
  std::uint8_t* bits = ctx.arena.u8(out_count);
  KernelCost bn_cost;
  bn_cost.scalar_ops = outputs * 6.0;  // add, sub, div, mul, add, compare
  bn_cost.bytes_read = outputs * 4.0 + static_cast<double>(d.c_out) * 20.0;
  bn_cost.bytes_written = outputs;
  bn_cost.coalescing = costs::coalescing(ctx.opts);
  bn_cost.alu_efficiency = costs::kAuxKernelEff;
  const std::vector<BatchNormParams>& bn = bn_;
  const std::vector<float>& bias = bias_;
  ctx.queue.enqueue_chunked(
      name_ + ".bn_binarize", NDRange{out_count}, bn_cost,
      [&, d, sums, bits](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          const std::size_t ci = static_cast<std::size_t>(i % d.c_out);
          const float x3 = batch_norm_reference(
              static_cast<float>(sums[static_cast<std::size_t>(i)]), bn[ci],
              bias.empty() ? 0.0f : bias[ci]);
          bits[static_cast<std::size_t>(i)] = binarize_sign(x3) ? 1 : 0;
        }
      });

  // Kernel 3: packing (same as path B's second kernel).
  const std::int64_t owords = out.words_per_pixel();
  KernelCost pack_cost;
  pack_cost.scalar_ops = outputs;
  pack_cost.bytes_read = outputs;
  pack_cost.bytes_written = static_cast<double>(out.bytes());
  pack_cost.coalescing = costs::coalescing(ctx.opts);
  pack_cost.alu_efficiency = costs::kAuxKernelEff;
  ctx.queue.enqueue(
      name_ + ".pack", NDRange{d.ow, d.oh, d.n * owords}, pack_cost,
      [&, d, owords, bits](const WorkItem& it) {
        const std::int64_t n = it.z / owords;
        const std::int64_t j = it.z % owords;
        std::uint64_t word = 0;
        const std::int64_t base =
            ((n * d.oh + it.y) * d.ow + it.x) * d.c_out + j * 64;
        const std::int64_t limit = std::min<std::int64_t>(64, d.c_out - j * 64);
        for (std::int64_t b = 0; b < limit; ++b) {
          if (bits[static_cast<std::size_t>(base + b)] != 0) {
            word |= (std::uint64_t{1} << b);
          }
        }
        out.data()[out.word_offset(n, it.y, it.x, j)] = word;
      });
  return out;
}

PackedTensor BinaryConv2d::forward_gemm(ExecContext& ctx,
                                        const PackedTensor& in,
                                        const KernelVariant& v) const {
  // Path D — bit-GEMM lowering (DESIGN.md §11). Kernel 1 lowers the packed
  // input to an im2col panel: one row of K = kh*kw*words words per output
  // pixel, padding resolved once here as zero-filled segments (the all-(-1)
  // packed value), so the GEMM sees a dense M x K bit-matrix with no bounds
  // tests. Kernel 2 walks MR x 8 register tiles: each tile holds its 32
  // mismatch accumulators in registers across the whole K reduction and
  // applies the same folded-BN group-byte epilogue as path A, so results
  // are bit-exact with the window-streaming schedule.
  const ConvDims d = make_dims(in, weights_, geom_);
  PackedTensor out = ctx.make_packed(Shape{d.n, d.oh, d.ow, d.c_out});
  const std::int64_t k_words = d.kh * d.kw * d.words;
  const std::int64_t m = d.n * d.oh * d.ow;
  std::uint64_t* panel = ctx.arena.words(m * k_words);
  const double panel_bytes = static_cast<double>(m * k_words) * 8.0;

  KernelCost col_cost;
  col_cost.scalar_ops = static_cast<double>(m * k_words);
  col_cost.bytes_read = panel_bytes;
  col_cost.bytes_written = panel_bytes;
  col_cost.coalescing = costs::coalescing(ctx.opts);
  col_cost.alu_efficiency = costs::kAuxKernelEff;
  ctx.queue.enqueue(
      name_ + ".im2col", NDRange{d.ow, d.oh, d.n}, col_cost,
      [&, d, k_words, panel](const WorkItem& it) {
        const std::int64_t n = it.z;
        std::uint64_t* row =
            panel + (((n * d.oh + it.y) * d.ow) + it.x) * k_words;
        const std::int64_t iy0 = it.y * d.sh - d.ph;
        const std::int64_t ix0 = it.x * d.sw - d.pw;
        // Column clamp is x-invariant per row: [lo, hi) taps are in bounds.
        const std::int64_t lo = std::clamp<std::int64_t>(-ix0, 0, d.kw);
        const std::int64_t hi = std::clamp<std::int64_t>(d.iw - ix0, 0, d.kw);
        const std::size_t row_bytes =
            static_cast<std::size_t>(d.kw * d.words) * 8;
        for (std::int64_t ky = 0; ky < d.kh; ++ky) {
          const std::int64_t iy = iy0 + ky;
          std::uint64_t* dst = row + ky * d.kw * d.words;
          if (iy < 0 || iy >= d.ih || hi <= lo) {
            std::memset(dst, 0, row_bytes);
            continue;
          }
          if (lo > 0) {
            std::memset(dst, 0, static_cast<std::size_t>(lo * d.words) * 8);
          }
          std::memcpy(dst + lo * d.words, in.pixel(n, iy, ix0 + lo),
                      static_cast<std::size_t>((hi - lo) * d.words) * 8);
          if (hi < d.kw) {
            std::memset(dst + hi * d.words, 0,
                        static_cast<std::size_t>((d.kw - hi) * d.words) * 8);
          }
        }
      });

  const std::int64_t m_tiles = ceil_div(m, bitpack::kGemmMr);
  const std::int64_t groups = d.c_out / 8;
  const bool branch_free = ctx.opts.branch_free_binarize;
  const std::int64_t len = d.kh * d.kw * d.c_in;
  const std::int64_t out_pitch = out.words_per_pixel() * 8;  // bytes/pixel
  const FoldedBatchNorm& fb = folded_;
  const double outputs = static_cast<double>(m) * d.c_out;
  auto* out_bytes_reuse = reinterpret_cast<std::uint8_t*>(out.data());

  if (v.reuse) {
    // Partial-popcount reuse schedule (DESIGN.md §12): one work item per
    // register tile scores every unique dictionary row ONCE (stage 1,
    // partials in a fixed stack buffer — never the shared arena, so
    // parallel work items cannot collide and warm forwards stay
    // zero-allocation), then derives all c_out filters from the cached
    // partials plus their delta corrections (stage 2). Bit-exact with the
    // plain tile against the reconstructed weights.
    const bitpack::CompressedFilterBank& bank = compressed_bank();
    const double unique = static_cast<double>(bank.unique_rows());
    const double delta_words = static_cast<double>(bank.stats().delta_words);
    KernelCost reuse_cost;
    reuse_cost.bitop_bits = costs::reuse_gemm_bitop_bits(
        static_cast<double>(m), unique, static_cast<double>(k_words),
        delta_words);
    reuse_cost.pack_width_bits = bitpack::bits(
        bitpack::cap_pack_width_to_span(v.pack_width, k_words));
    reuse_cost.instr_overhead_cycles = costs::instr_overhead_gemm(ctx.opts);
    reuse_cost.span_count = static_cast<double>(m_tiles) *
                            (unique + static_cast<double>(groups));
    reuse_cost.span_setup_cycles = costs::kGemmTileSetupCycles;
    reuse_cost.scalar_ops = outputs * 5.0;
    reuse_cost.bytes_read = panel_bytes +
                            static_cast<double>(bank.stats().encoded_bytes) +
                            static_cast<double>(d.c_out) * 5.0;
    reuse_cost.bytes_written = packed_out_bytes(d);
    reuse_cost.coalescing = costs::coalescing(ctx.opts);
    reuse_cost.alu_efficiency = costs::binary_kernel_eff(ctx.opts);
    ctx.queue.enqueue(
        name_ + ".bitgemm_reuse", NDRange{m_tiles, 1, 1}, reuse_cost,
        [&, d, k_words, m, out_pitch, branch_free, len, groups, panel,
         out_bytes_reuse](const WorkItem& it) {
          const std::int64_t m0 = it.x * bitpack::kGemmMr;
          const std::int64_t rows =
              std::min<std::int64_t>(bitpack::kGemmMr, m - m0);
          std::int64_t partials[bitpack::kReuseMaxDict * bitpack::kGemmMr];
          bitpack::xor_popcount_dict(panel + m0 * k_words, k_words, bank,
                                     rows, partials);
          std::int64_t mism[bitpack::kGemmMr * 8];
          for (std::int64_t g = 0; g < groups; ++g) {
            bitpack::xor_popcount_gemm_reuse_x8(panel + m0 * k_words, k_words,
                                                bank, g, rows, partials,
                                                mism);
            for (std::int64_t r = 0; r < rows; ++r) {
              out_bytes_reuse[(m0 + r) * out_pitch + g] =
                  group_byte(&mism[r * 8], g, len, fb, branch_free);
            }
          }
        });
    return out;
  }

  KernelCost gemm_cost;
  gemm_cost.bitop_bits =
      outputs * 2.0 * static_cast<double>(k_words) * bitpack::kWordBits;
  gemm_cost.pack_width_bits = bitpack::bits(
      bitpack::cap_pack_width_to_span(v.pack_width, k_words));
  gemm_cost.instr_overhead_cycles = costs::instr_overhead_gemm(ctx.opts);
  gemm_cost.span_count =
      static_cast<double>(m_tiles) * static_cast<double>(groups);
  gemm_cost.span_setup_cycles = costs::kGemmTileSetupCycles;
  gemm_cost.scalar_ops = outputs * 4.0;  // threshold compare + byte insert
  gemm_cost.bytes_read = panel_bytes +
                         static_cast<double>(weights_.bytes()) +
                         static_cast<double>(d.c_out) * 5.0;
  gemm_cost.bytes_written = static_cast<double>(out.bytes());
  gemm_cost.coalescing = costs::coalescing(ctx.opts);
  gemm_cost.alu_efficiency = costs::binary_kernel_eff(ctx.opts);
  auto* out_bytes = reinterpret_cast<std::uint8_t*>(out.data());
  ctx.queue.enqueue(
      name_ + ".bitgemm", NDRange{m_tiles, groups, 1}, gemm_cost,
      [&, d, k_words, m, out_pitch, branch_free, len,
       panel](const WorkItem& it) {
        const std::int64_t m0 = it.x * bitpack::kGemmMr;
        const std::int64_t rows =
            std::min<std::int64_t>(bitpack::kGemmMr, m - m0);
        const std::int64_t g = it.y;
        std::int64_t mism[bitpack::kGemmMr * 8];
        bitpack::xor_popcount_gemm_x8(panel + m0 * k_words, k_words,
                                      weights_.pixel(g * 8, 0, 0), k_words,
                                      k_words, rows, mism);
        for (std::int64_t r = 0; r < rows; ++r) {
          out_bytes[(m0 + r) * out_pitch + g] =
              group_byte(&mism[r * 8], g, len, fb, branch_free);
        }
      });
  return out;
}

PackedTensor BinaryConv2d::forward_fused_dedup(ExecContext& ctx,
                                               const PackedTensor& in,
                                               const KernelVariant& v) const {
  // Path A with the duplicate-lane table (DESIGN.md §12): selection only
  // takes this variant with the interior split on, so there is no per-tap
  // ablation arm here. Work and traffic scale by the bank's distinct-lane
  // fraction; results are bit-exact with forward_fused.
  const ConvDims d = make_dims(in, weights_, geom_);
  PackedTensor out = ctx.make_packed(Shape{d.n, d.oh, d.ow, d.c_out});
  const bitpack::CompressedFilterBank& bank = compressed_bank();
  const std::uint8_t* lane_src = bank.lane_sources().data();
  const double distinct_frac =
      static_cast<double>(bank.distinct_group_lanes()) /
      static_cast<double>(d.c_out);
  const auto pw = v.pack_width;
  const bool branch_free = ctx.opts.branch_free_binarize;
  const std::int64_t len = d.kh * d.kw * d.c_in;
  const std::int64_t tile = std::min(v.tile_ow, d.ow);
  const std::int64_t tiles_x = ceil_div(d.ow, tile);
  const std::int64_t groups = d.c_out / 8;
  const FoldedBatchNorm& fb = folded_;

  // Mirrors modeled_window_dedup_ms exactly (same expressions), so the
  // recorded modeled time equals what selection compared.
  const double outputs = static_cast<double>(d.n) * d.oh * d.ow * d.c_out;
  KernelCost cost;
  cost.bitop_bits =
      outputs * window_bitops(d, pw, /*split=*/true) * distinct_frac;
  charge_windows_dedup(cost, d, ctx.opts, distinct_frac);
  cost.scalar_ops += outputs * 4.0;  // threshold compare + byte/bit insert
  cost.pack_width_bits =
      bitpack::bits(bitpack::cap_pack_width_to_span(pw, d.kw * d.words));
  cost.bytes_read = packed_in_bytes(d) +
                    packed_weight_bytes(d) * distinct_frac +
                    static_cast<double>(d.c_out) * 5.0;
  cost.bytes_written = packed_out_bytes(d);
  cost.coalescing = costs::coalescing(ctx.opts);
  cost.alu_efficiency = costs::binary_kernel_eff(ctx.opts);

  auto* out_bytes = reinterpret_cast<std::uint8_t*>(out.data());
  ctx.queue.enqueue(
      name_ + ".bconv_fused_dedup", NDRange{tiles_x, d.oh, d.n * groups},
      cost,
      [&, d, pw, branch_free, len, groups, tile,
       lane_src](const WorkItem& it) {
        const std::int64_t n = it.z / groups;
        const std::int64_t g = it.z % groups;
        const bool y_in = it.y >= d.y0 && it.y < d.y1;
        const std::int64_t x_end = std::min(d.ow, (it.x + 1) * tile);
        for (std::int64_t ox = it.x * tile; ox < x_end; ++ox) {
          std::int64_t mism[8];
          group_mismatches_dedup(in, weights_, d, n, it.y, ox, g,
                                 lane_src + g * 8, pw, y_in, mism);
          out_bytes[out.word_offset(n, it.y, ox, 0) * 8 + g] =
              group_byte(mism, g, len, fb, branch_free);
        }
      });
  return out;
}

PackedTensor BinaryConv2d::forward_fused_pool(ExecContext& ctx,
                                              const PackedTensor& in,
                                              const PlanStep& step) const {
  // Fused conv→pool step: path A's conv bytes for one pool window row land
  // in a small stack row buffer, the window max (bitwise OR over the ±1
  // domain) folds them in registers, and only the POOLED packed map is
  // written — the full-size conv activation map never exists. Legality
  // (checked at plan time): non-overlapping gap-free pool windows
  // (stride == size), so every conv output is computed exactly once.
  const KernelVariant& v = step.variant;
  const ConvDims d = make_dims(in, weights_, geom_);
  const PoolGeometry pg =
      static_cast<const MaxPool2d*>(step.fused_pool)->geometry();
  const std::int64_t poh = step.out.shape.h;
  const std::int64_t pow_ = step.out.shape.w;
  const std::int64_t lp = pg.lead_pad();
  PackedTensor out = ctx.make_packed(step.out.shape);

  const bool split = v.interior_split;
  const std::uint64_t* zeros =
      split ? nullptr : ctx.arena.zero_words(d.words);
  const auto pw = v.pack_width;
  const bool branch_free = ctx.opts.branch_free_binarize;
  const std::int64_t len = d.kh * d.kw * d.c_in;
  const std::int64_t tile = std::max<std::int64_t>(
      1, std::min(v.tile_ow, pow_));
  const std::int64_t tiles_x = ceil_div(pow_, tile);
  const std::int64_t groups = d.c_out / 8;
  const FoldedBatchNorm& fb = folded_;

  // Conv work is unchanged (every conv output is still computed once); the
  // pool adds its OR bit-ops, and the memory side drops the intermediate:
  // only the pooled map is written, nothing re-read.
  const double conv_outputs =
      static_cast<double>(d.n) * d.oh * d.ow * d.c_out;
  const double pooled_outputs =
      static_cast<double>(d.n) * poh * pow_ * d.c_out;
  KernelCost cost;
  cost.bitop_bits = conv_outputs * window_bitops(d, pw, split) +
                    pooled_outputs *
                        static_cast<double>(pg.size * pg.size - 1);
  charge_windows(cost, d, ctx.opts, split, /*shared_window=*/true);
  cost.scalar_ops += conv_outputs * 4.0;  // threshold + byte insert
  cost.pack_width_bits = bitpack::bits(
      split ? bitpack::cap_pack_width_to_span(pw, d.kw * d.words) : pw);
  cost.bytes_read = static_cast<double>(in.bytes() + weights_.bytes()) +
                    static_cast<double>(d.c_out) * 5.0;
  cost.bytes_written = static_cast<double>(out.bytes());
  cost.coalescing = costs::coalescing(ctx.opts);
  cost.alu_efficiency = costs::binary_kernel_eff(ctx.opts);

  auto* out_bytes = reinterpret_cast<std::uint8_t*>(out.data());
  ctx.queue.enqueue(
      name_ + ".bconv_fused_pool", NDRange{tiles_x, poh, d.n * groups}, cost,
      [&, d, pg, lp, poh, pow_, pw, branch_free, len, groups, split, tile,
       zeros](const WorkItem& it) {
        const std::int64_t n = it.z / groups;
        const std::int64_t g = it.z % groups;
        const std::int64_t px0 = it.x * tile;
        const std::int64_t px1 = std::min(pow_, px0 + tile);
        // Conv columns this tile's windows touch, clamped to the conv map
        // (the clamp is what "same"-style tail windows rely on).
        const std::int64_t cx0 =
            std::max<std::int64_t>(0, px0 * pg.stride - lp);
        const std::int64_t cx1 = std::min(
            d.ow, (px1 - 1) * pg.stride - lp + pg.size);
        const std::int64_t span = cx1 - cx0;
        // Row buffer: one conv-byte row per pool window row, filled once
        // per (tile, window row) and consumed by every window of the tile.
        std::array<std::uint8_t, 3 * 64> rowbuf{};
        const std::int64_t cy_base = it.y * pg.stride - lp;
        std::uint8_t row_valid = 0;
        for (std::int64_t ky = 0; ky < pg.size; ++ky) {
          const std::int64_t cy = cy_base + ky;
          if (cy < 0 || cy >= d.oh || span <= 0) continue;
          row_valid = static_cast<std::uint8_t>(row_valid | (1u << ky));
          const bool y_in = cy >= d.y0 && cy < d.y1;
          std::uint8_t* row = rowbuf.data() + ky * span;
          for (std::int64_t cx = cx0; cx < cx1; ++cx) {
            std::int64_t mism[8];
            group_mismatches(in, weights_, d, n, cy, cx, g, zeros, pw,
                             split, y_in, mism);
            row[cx - cx0] = group_byte(mism, g, len, fb, branch_free);
          }
        }
        for (std::int64_t px = px0; px < px1; ++px) {
          std::uint8_t acc = 0;  // all -1: the pool padding value
          for (std::int64_t ky = 0; ky < pg.size; ++ky) {
            if ((row_valid & (1u << ky)) == 0) continue;
            const std::uint8_t* row = rowbuf.data() + ky * span;
            for (std::int64_t kx = 0; kx < pg.size; ++kx) {
              const std::int64_t cx = px * pg.stride - lp + kx;
              if (cx < cx0 || cx >= cx1) continue;
              acc = static_cast<std::uint8_t>(acc | row[cx - cx0]);
            }
          }
          out_bytes[out.word_offset(n, it.y, px, 0) * 8 + g] = acc;
        }
      });
  return out;
}

}  // namespace phonebit::core
