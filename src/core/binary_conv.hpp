// PhoneBit — fused binary convolution (the paper's central operator).
//
// Computes conv -> batch-norm -> binarize over channel-packed inputs using
// xor+popcount (Eqn 1) and the folded threshold ξ (Eqns 5–8), with the
// branch-free Eqn 9 decision. Three execution paths mirror §V-B/§VI-B:
//
//   A. fully fused  — one kernel; each work item computes 8 filters,
//      binarizes 8 results and packs them into one byte (Fig. 4).
//      Taken when layer integration is on and C_in <= the private-memory
//      threshold (256 channels by default).
//   B. separate packing — fused conv+BN+binarize emits a 0/1 byte map; a
//      second kernel packs bytes into words. Taken for wide layers.
//   C. no integration (ablation) — conv emits raw int32 sums, a second
//      kernel applies full floating-point BN + sign, a third packs. This is
//      the configuration the layer-integration ablation measures against.
//   D. bit-GEMM (DESIGN.md §11) — an im2col kernel lowers the input to an
//      M x K bit-panel, then a register-tiled XOR-popcount GEMM scores
//      MR x 8 output tiles per pass. Chosen ahead of time per geometry by a
//      roofline comparison against the window-streaming schedule (or pinned
//      via EngineOptions::conv_path); big geometries win on tile-amortized
//      setup and full-K-span vectors, small ones keep path A.
//
// Binary-domain padding: the ±1 encoding has no zero, so padded positions
// contribute -1 per channel (all-zero packed words), the standard BNN
// convention. The float reference used by tests pads with -1 accordingly.
//
// All paths share a row-fused window accumulator (DESIGN.md §4): the kw taps
// of one filter row are contiguous in the NHWC-packed layout, so an interior
// window — precomputed as the output rectangle that never touches padding —
// is ONE strided xor+popcount over the whole filter, and border windows
// resolve padding per filter row (a padded tap's mismatches are just the
// popcount of its weight span). EngineOptions::interior_split turns the
// specialization off for ablation; conv_tile_ow sets the output-x tile each
// work item owns. Intermediates live in the engine's ScratchArena.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bitpack/compress.hpp"
#include "bitpack/packed_tensor.hpp"
#include "core/bn_fold.hpp"
#include "core/layer.hpp"
#include "core/plan.hpp"

namespace phonebit::core {

class BinaryConv2d final : public Layer {
 public:
  /// `weights`: packed filter bank with logical shape (C_out, KH, KW, C_in).
  /// `bn`/`bias`: per-output-channel trained parameters (folded offline in
  /// the constructor; kept raw for the no-integration ablation path).
  BinaryConv2d(std::string name, bitpack::PackedTensor weights,
               std::vector<BatchNormParams> bn, std::vector<float> bias,
               ConvGeometry geom);

  const std::string& name() const override { return name_; }
  Blob forward(ExecContext& ctx, const Blob& in) const override;
  void plan(PlanContext& pc) const override;
  Blob run(ExecContext& ctx, const Blob& in,
           const PlanStep& step) const override;

  std::int64_t param_bytes() const override;
  std::int64_t param_count() const override;

  const ConvGeometry& geometry() const noexcept { return geom_; }
  std::int64_t out_channels() const noexcept { return weights_.shape().n; }
  std::int64_t in_channels() const noexcept { return weights_.shape().c; }
  const bitpack::PackedTensor& weights() const noexcept { return weights_; }
  const FoldedBatchNorm& folded_bn() const noexcept { return folded_; }
  const std::vector<BatchNormParams>& raw_bn() const noexcept { return bn_; }
  const std::vector<float>& bias() const noexcept { return bias_; }

  /// Dictionary/index/delta factorization of the filter bank (DESIGN.md
  /// §12). Built lazily and deterministically from the packed weights on
  /// first use (compile-time selection, v4 artifact save, compress-stats) —
  /// one std::call_once guards the build, so concurrent compiles are safe —
  /// or adopted verbatim by the artifact loader so loading never
  /// re-clusters.
  const bitpack::CompressedFilterBank& compressed_bank() const;
  /// Installs a pre-built bank (the artifact loader, before any forward).
  void adopt_bank(
      std::shared_ptr<const bitpack::CompressedFilterBank> bank) const;

 private:
  /// Ahead-of-time kernel selection from input geometry + options: the
  /// execution path (A/B/C), the pack width (span- or channel-keyed), the
  /// interior split and the resolved output-x tile. Called once at compile;
  /// the uncompiled forward() re-derives it per call.
  KernelVariant select_variant(const Shape& in_shape,
                               const EngineOptions& opts) const;
  /// Validated input extraction shared by forward()/run().
  const bitpack::PackedTensor& checked_input(const Blob& in) const;

  bitpack::PackedTensor execute(ExecContext& ctx,
                                const bitpack::PackedTensor& in,
                                const KernelVariant& v) const;
  bitpack::PackedTensor forward_fused(ExecContext& ctx,
                                      const bitpack::PackedTensor& in,
                                      const KernelVariant& v,
                                      bool integrate_packing) const;
  bitpack::PackedTensor forward_unfused(ExecContext& ctx,
                                        const bitpack::PackedTensor& in,
                                        const KernelVariant& v) const;
  /// Path D — bit-GEMM lowering (DESIGN.md §11): an im2col kernel lowers
  /// the packed input to an M x K bit-panel (padding resolved to zero-fill
  /// once), then a register-tiled GEMM kernel scores kGemmMr x 8 output
  /// tiles per pass with the accumulators held in registers for the whole
  /// K reduction, finishing with path A's folded-BN group-byte epilogue.
  bitpack::PackedTensor forward_gemm(ExecContext& ctx,
                                     const bitpack::PackedTensor& in,
                                     const KernelVariant& v) const;
  /// Path A with the duplicate-lane table (DESIGN.md §12): each workload
  /// group computes one window per DISTINCT lane (exact-duplicate filters
  /// copy the earlier lane's mismatch count) — selected only under
  /// WeightCompress::kAuto when the bank's dedup fraction wins the roofline
  /// comparison; bit-exact with forward_fused's shared-window schedule.
  bitpack::PackedTensor forward_fused_dedup(ExecContext& ctx,
                                            const bitpack::PackedTensor& in,
                                            const KernelVariant& v) const;
  /// Compiled conv→pool fused step (plan.cpp's rewrite, DESIGN.md §7): one
  /// kernel computes path-A conv bytes into a per-row register buffer and
  /// ORs each pool window out of it, emitting the pooled packed map
  /// directly — the unpooled conv activation map is never written.
  bitpack::PackedTensor forward_fused_pool(ExecContext& ctx,
                                           const bitpack::PackedTensor& in,
                                           const PlanStep& step) const;

  std::string name_;
  bitpack::PackedTensor weights_;
  std::vector<BatchNormParams> bn_;
  std::vector<float> bias_;
  FoldedBatchNorm folded_;
  ConvGeometry geom_;
  // Lazily built (or loader-adopted) compression bank. Layers live behind
  // Network::emplace's unique_ptr, so the immovable once_flag is fine.
  mutable std::once_flag bank_once_;
  mutable std::shared_ptr<const bitpack::CompressedFilterBank> bank_;
};

}  // namespace phonebit::core
