// PhoneBit — the trained-model IR.
//
// The paper's deployment flow (Fig. 2) starts from a model trained by an
// existing BNN framework and converts it to the PhoneBit format. FloatModel
// is that interchange point in this repo: a layer-spec list plus full-
// precision weights/BN parameters. The PhoneBit converter binarizes and
// folds it (core/converter.*); the baseline engines execute it directly at
// full precision; the model-size accounting (Table II) reads both.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "core/bn_fold.hpp"
#include "core/pooling.hpp"
#include "tensor/tensor.hpp"

namespace phonebit::core {

/// Post-conv activation in the full-precision model. Binary layers replace
/// the activation with binarization when converted (standard BNN practice);
/// baselines apply it as trained.
enum class Activation { kNone, kRelu, kLeakyRelu };

/// Full-precision convolution layer description.
struct ConvLayerSpec {
  std::string name;
  std::int64_t c_in = 0;
  std::int64_t c_out = 0;
  ConvGeometry geom;
  bool batch_norm = true;
  Activation act = Activation::kRelu;
  /// AlexNet-style local response normalization follows this conv. The
  /// TFLite-like GPU delegate rejects graphs containing it (DESIGN.md §4).
  bool lrn_after = false;
};

/// Max-pool layer description.
struct PoolLayerSpec {
  std::string name;
  PoolGeometry geom;
};

/// Dense layer description.
struct DenseLayerSpec {
  std::string name;
  std::int64_t in_features = 0;
  std::int64_t out_features = 0;
  bool batch_norm = true;
  Activation act = Activation::kRelu;
};

using LayerSpec = std::variant<ConvLayerSpec, PoolLayerSpec, DenseLayerSpec>;

/// Architecture description: input shape + ordered layer specs.
struct NetworkSpec {
  std::string name;
  Shape input{1, 224, 224, 3};
  std::vector<LayerSpec> layers;

  /// Trained parameter count of the full-precision model.
  std::int64_t float_param_count() const;
  /// Full-precision serialized size in bytes (fp32).
  std::int64_t float_param_bytes() const { return float_param_count() * 4; }
};

/// Trained weights of one conv layer (w laid out (C_out, KH, KW, C_in)).
struct ConvWeights {
  FloatTensor w;
  std::vector<float> bias;
  std::vector<BatchNormParams> bn;  // empty when batch_norm == false
};

/// Trained weights of one dense layer (w laid out (units, 1, 1, features)).
struct DenseWeights {
  FloatTensor w;
  std::vector<float> bias;
  std::vector<BatchNormParams> bn;
};

using LayerWeights = std::variant<std::monostate, ConvWeights, DenseWeights>;

/// A trained full-precision model: spec + per-layer weights.
struct FloatModel {
  NetworkSpec spec;
  std::vector<LayerWeights> weights;  // parallel to spec.layers

  /// Deterministic synthetic "trained" model: Gaussian weights scaled per
  /// fan-in, BN statistics in realistic ranges. Substitutes for checkpoints
  /// this environment cannot train (DESIGN.md §2).
  static FloatModel random(NetworkSpec spec, std::uint64_t seed);

  /// Like random(), but with the filter-row redundancy trained binary nets
  /// exhibit (the kernel-compression observation, PAPERS.md), synthesized
  /// explicitly: within every aligned group of 8 conv output channels the
  /// filters share one base draw — lanes 1..3 as exact sign copies, lanes
  /// 4..7 with a sparse scattering of sign flips. After binarization the
  /// packed bank factors into few dictionary rows plus small XOR deltas;
  /// the compression benches and artifact-shrink tests measure on these.
  /// Dense layers and all BN/bias parameters keep random()'s draws.
  static FloatModel random_redundant(NetworkSpec spec, std::uint64_t seed);
};

}  // namespace phonebit::core
