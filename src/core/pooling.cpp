#include "core/pooling.hpp"

#include "bitpack/packed_tensor.hpp"
#include "core/costs.hpp"

namespace phonebit::core {

using bitpack::PackedTensor;
using oclsim::KernelCost;
using oclsim::NDRange;
using oclsim::WorkItem;

void MaxPool2d::plan(PlanContext& pc) const {
  const BlobDesc& in = pc.in();
  PB_CHECK(in.kind == BlobKind::kPacked,
           name_ << ": max pool expects packed input, got " << in.str());
  KernelVariant v;
  v.kernel = "maxpool_or";
  v.pack_width = bitpack::PackWidth::k64;
  pc.select(std::move(v));
  pc.produce(BlobDesc{BlobKind::kPacked,
                      Shape{in.shape.n, geom_.out_dim(in.shape.h),
                            geom_.out_dim(in.shape.w), in.shape.c}});
}

Blob MaxPool2d::forward(ExecContext& ctx, const Blob& in) const {
  const auto* packed = std::get_if<PackedTensor>(&in);
  PB_CHECK(packed != nullptr, name_ << ": max pool expects packed input");
  const Shape& is = packed->shape();
  const std::int64_t oh = geom_.out_dim(is.h);
  const std::int64_t ow = geom_.out_dim(is.w);
  PackedTensor out = ctx.make_packed(Shape{is.n, oh, ow, is.c});
  const std::int64_t words = packed->words_per_pixel();

  KernelCost cost;
  const double opixels = static_cast<double>(is.n) * oh * ow;
  cost.bitop_bits = opixels * static_cast<double>(is.c) *
                    static_cast<double>(geom_.size * geom_.size - 1);
  cost.pack_width_bits = 64;
  cost.bytes_read = static_cast<double>(packed->bytes());
  cost.bytes_written = static_cast<double>(out.bytes());
  cost.coalescing = costs::coalescing(ctx.opts);
  cost.alu_efficiency = costs::kAuxKernelEff;

  ctx.queue.enqueue(
      name_ + ".maxpool_or", NDRange{ow, oh, is.n * words}, cost,
      [&, oh, ow, words](const WorkItem& it) {
        const std::int64_t n = it.z / words;
        const std::int64_t j = it.z % words;
        std::uint64_t acc = 0;  // all -1: the padding value
        for (std::int64_t ky = 0; ky < geom_.size; ++ky) {
          const std::int64_t iy = it.y * geom_.stride - geom_.lead_pad() + ky;
          if (iy < 0 || iy >= is.h) continue;
          for (std::int64_t kx = 0; kx < geom_.size; ++kx) {
            const std::int64_t ix = it.x * geom_.stride - geom_.lead_pad() + kx;
            if (ix < 0 || ix >= is.w) continue;
            acc |= packed->data()[packed->word_offset(n, iy, ix, j)];
          }
        }
        out.data()[out.word_offset(n, it.y, it.x, j)] = acc;
      });
  return out;
}

}  // namespace phonebit::core
