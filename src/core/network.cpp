#include "core/network.hpp"

namespace phonebit::core {

ForwardResult Network::forward(ExecContext& ctx, Blob input) const {
  PB_CHECK(!layers_.empty(), name_ << ": network has no layers");
  ForwardResult result;
  result.report.reserve(layers_.size());
  Blob blob = std::move(input);
  for (const auto& layer : layers_) {
    const std::size_t mark = ctx.queue.event_mark();
    blob = layer->forward(ctx, blob);
    const oclsim::EventSlice s = ctx.queue.slice_events(mark);
    LayerReport r;
    r.name = layer->name();
    r.modeled_ms = s.modeled_ms;
    r.host_ms = s.host_ms;
    r.launches = s.launches;
    r.cost = s.cost;
    result.modeled_ms += s.modeled_ms;
    result.host_ms += s.host_ms;
    result.report.push_back(std::move(r));
  }
  result.output = std::move(blob);
  return result;
}

FloatTensor Network::forward_float(ExecContext& ctx,
                                   const U8Tensor& image) const {
  ForwardResult result = forward(ctx, Blob{image});
  auto* f = std::get_if<FloatTensor>(&result.output);
  PB_CHECK(f != nullptr,
           name_ << ": network does not end in a full-precision layer");
  return std::move(*f);
}

std::int64_t Network::param_bytes() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l->param_bytes();
  return total;
}

std::int64_t Network::param_count() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l->param_count();
  return total;
}

}  // namespace phonebit::core
