#include "core/network.hpp"

namespace phonebit::core {

Blob Network::forward(ExecContext& ctx, Blob input) {
  PB_CHECK(!layers_.empty(), name_ << ": network has no layers");
  report_.clear();
  report_.reserve(layers_.size());
  Blob blob = std::move(input);
  for (const auto& layer : layers_) {
    const std::size_t events_before = ctx.queue.events().size();
    blob = layer->forward(ctx, blob);
    LayerReport r;
    r.name = layer->name();
    for (std::size_t i = events_before; i < ctx.queue.events().size(); ++i) {
      const auto& ev = ctx.queue.events()[i];
      r.modeled_ms += ev.modeled_ms;
      r.host_ms += ev.host_ms;
      r.launches += ev.cost.launches;
      r.cost += ev.cost;
    }
    // The += above double-counts the first event's launch baseline; reset to
    // the true count.
    r.cost.launches = r.launches;
    report_.push_back(std::move(r));
  }
  return blob;
}

FloatTensor Network::forward_float(ExecContext& ctx, const U8Tensor& image) {
  Blob out = forward(ctx, Blob{image});
  auto* f = std::get_if<FloatTensor>(&out);
  PB_CHECK(f != nullptr,
           name_ << ": network does not end in a full-precision layer");
  return std::move(*f);
}

std::int64_t Network::param_bytes() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l->param_bytes();
  return total;
}

std::int64_t Network::param_count() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l->param_count();
  return total;
}

double Network::last_modeled_ms() const {
  double s = 0.0;
  for (const auto& r : report_) s += r.modeled_ms;
  return s;
}

double Network::last_host_ms() const {
  double s = 0.0;
  for (const auto& r : report_) s += r.host_ms;
  return s;
}

}  // namespace phonebit::core
