#include "core/network.hpp"

#include "core/plan.hpp"

namespace phonebit::core {

ForwardResult Network::forward(ExecContext& ctx, Blob input) const {
  // Compatibility path: compile-and-run on every call. Both paths execute
  // the same compiled steps, so forward() is bit-exact with a cached plan —
  // it just re-plans (and re-selects variants) each time, which is what
  // SessionStats::variant_selections counts.
  const ExecutionPlan plan =
      compile(ctx.opts, describe_blob(input), ctx.stats);
  return plan.run(ctx, input);
}

FloatTensor Network::forward_float(ExecContext& ctx,
                                   const U8Tensor& image) const {
  ForwardResult result = forward(ctx, Blob{image});
  auto* f = std::get_if<FloatTensor>(&result.output);
  PB_CHECK(f != nullptr,
           name_ << ": network does not end in a full-precision layer");
  return std::move(*f);
}

std::int64_t Network::param_bytes() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l->param_bytes();
  return total;
}

std::int64_t Network::param_count() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l->param_count();
  return total;
}

}  // namespace phonebit::core
