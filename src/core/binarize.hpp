// PhoneBit — binarization decision (Eqns 7–9).
//
// After folding, the sign of x3 = (gamma/sigma)(x1 - xi) depends only on
// x1 vs xi and the sign of gamma (Eqn 8). GPUs pay for divergent branches,
// so §VI-C rewrites the four-way check as the Karnaugh-reduced boolean
// function x4 = (A xor B) or C with A = (x1 < xi), B = (gamma > 0),
// C = (x1 == xi), evaluated with OpenCL's isless/isgreater/isequal.
#pragma once

#include "simd/vec.hpp"

namespace phonebit::core {

/// Eqn 8: the divergent reference implementation (four-way branch).
inline bool binarize_eqn8(float x1, float xi, bool gamma_pos) {
  if (gamma_pos) {
    if (x1 >= xi) return true;   // x1 >= xi, gamma > 0 -> 1
    return false;                // x1 <  xi, gamma > 0 -> 0
  }
  if (x1 <= xi) return true;     // x1 <= xi, gamma < 0 -> 1
  return false;                  // x1 >  xi, gamma < 0 -> 0
}

/// Eqn 9: branch-free x4 = (A xor B) or C.
inline bool binarize_eqn9(float x1, float xi, bool gamma_pos) {
  const int a = simd::isless(x1, xi);
  const int b = gamma_pos ? 1 : 0;
  const int c = simd::isequal(x1, xi);
  return ((a ^ b) | c) != 0;
}

/// Plain Eqn 7 sign binarization (x4 = 1 iff x >= 0); the pack-time rule.
inline bool binarize_sign(float x) { return x >= 0.0f; }

}  // namespace phonebit::core
