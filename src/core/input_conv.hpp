// PhoneBit — first-layer convolution over 8-bit integer input (Eqn 2).
//
// Camera images are not binary, so the first conv splits each 8-bit input
// into 8 bit-planes I_k and accumulates s = sum_k 2^k <I_k * W> where <>
// is a binary convolution of the 0/1 plane against ±1 weights:
//   sum_i p_i w_i = 2*popcount(p AND w) - popcount(p).
// The weight-independent popcount term equals the window's integer pixel
// sum, so it is hoisted out of the per-filter loop. BN + binarization fuse
// at the end exactly as in BinaryConv2d. This 8x plane overhead is why the
// paper's Fig. 5 shows conv1 gaining only ~23x vs ~45x for middle layers.
#pragma once

#include <string>
#include <vector>

#include "bitpack/packed_tensor.hpp"
#include "core/bn_fold.hpp"
#include "core/layer.hpp"

namespace phonebit::core {

class InputConv2d final : public Layer {
 public:
  /// `weights`: packed (C_out, KH, KW, C_in) sign-binarized filters.
  InputConv2d(std::string name, bitpack::PackedTensor weights,
              std::vector<BatchNormParams> bn, std::vector<float> bias,
              ConvGeometry geom);

  const std::string& name() const override { return name_; }

  /// Input blob must be a U8Tensor (the decoded image). Output is packed.
  Blob forward(ExecContext& ctx, const Blob& in) const override;

  std::int64_t param_bytes() const override;
  std::int64_t param_count() const override;

  const ConvGeometry& geometry() const noexcept { return geom_; }
  std::int64_t out_channels() const noexcept { return weights_.shape().n; }
  std::int64_t in_channels() const noexcept { return weights_.shape().c; }
  const bitpack::PackedTensor& weights() const noexcept { return weights_; }
  const FoldedBatchNorm& folded_bn() const noexcept { return folded_; }

 private:
  std::string name_;
  bitpack::PackedTensor weights_;
  std::vector<BatchNormParams> bn_;
  std::vector<float> bias_;
  FoldedBatchNorm folded_;
  ConvGeometry geom_;
};

}  // namespace phonebit::core
