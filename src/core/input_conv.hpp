// PhoneBit — first-layer convolution over 8-bit integer input (Eqn 2).
//
// Camera images are not binary, so the first conv splits each 8-bit input
// into 8 bit-planes I_k and accumulates s = sum_k 2^k <I_k * W> where <>
// is a binary convolution of the 0/1 plane against ±1 weights:
//   sum_i p_i w_i = 2*popcount(p AND w) - popcount(p).
// The weight-independent popcount term equals the window's integer pixel
// sum, so it is hoisted out of the per-filter loop. BN + binarization fuse
// at the end exactly as in BinaryConv2d. This 8x plane overhead is why the
// paper's Fig. 5 shows conv1 gaining only ~23x vs ~45x for middle layers.
//
// Row fusion applies per plane exactly as in BinaryConv2d (DESIGN.md §4):
// the kw taps of one filter row are contiguous in both the 0/1 plane and
// the weights, so an interior window is ONE strided and_popcount per plane
// and border windows clamp each filter row to its in-bounds run — a padded
// tap ANDs against an all-zero plane and contributes nothing, so the border
// path needs no zeros span at all. `interior_split` off restores the
// per-tap loop with its per-tap padding branch as the ablation baseline.
// The 8 bit planes live in the session arena (planned scratch), not in
// per-forward heap allocations.
#pragma once

#include <string>
#include <vector>

#include "bitpack/packed_tensor.hpp"
#include "core/bn_fold.hpp"
#include "core/layer.hpp"
#include "core/plan.hpp"

namespace phonebit::core {

class InputConv2d final : public Layer {
 public:
  /// `weights`: packed (C_out, KH, KW, C_in) sign-binarized filters.
  InputConv2d(std::string name, bitpack::PackedTensor weights,
              std::vector<BatchNormParams> bn, std::vector<float> bias,
              ConvGeometry geom);

  const std::string& name() const override { return name_; }

  /// Input blob must be a U8Tensor (the decoded image). Output is packed.
  Blob forward(ExecContext& ctx, const Blob& in) const override;
  void plan(PlanContext& pc) const override;
  Blob run(ExecContext& ctx, const Blob& in,
           const PlanStep& step) const override;

  std::int64_t param_bytes() const override;
  std::int64_t param_count() const override;

  const ConvGeometry& geometry() const noexcept { return geom_; }
  std::int64_t out_channels() const noexcept { return weights_.shape().n; }
  std::int64_t in_channels() const noexcept { return weights_.shape().c; }
  const bitpack::PackedTensor& weights() const noexcept { return weights_; }
  const FoldedBatchNorm& folded_bn() const noexcept { return folded_; }
  const std::vector<BatchNormParams>& raw_bn() const noexcept { return bn_; }
  const std::vector<float>& bias() const noexcept { return bias_; }

 private:
  KernelVariant select_variant(const Shape& in_shape,
                               const EngineOptions& opts) const;
  const U8Tensor& checked_input(const Blob& in) const;
  /// Arena words needed for the 8 bit planes (+ legacy zeros span).
  std::int64_t scratch_words(const Shape& in_shape, bool split) const;
  bitpack::PackedTensor execute(ExecContext& ctx, const U8Tensor& image,
                                const KernelVariant& v) const;

  std::string name_;
  bitpack::PackedTensor weights_;
  std::vector<BatchNormParams> bn_;
  std::vector<float> bias_;
  FoldedBatchNorm folded_;
  ConvGeometry geom_;
};

}  // namespace phonebit::core
