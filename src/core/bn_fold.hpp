// PhoneBit — offline batch-normalization folding (Eqns 3–6).
//
// A binary conv block is conv -> bias -> BN -> binarize. With
//   x2 = x1 + b                      (Eqn 3, conv bias)
//   x3 = gamma * (x2 - mu) / sigma + beta   (Eqn 4, BN)
// substituting gives x3 = (gamma / sigma) * (x1 - xi) with
//   xi = mu - beta * sigma / gamma - b      (Eqn 6).
// Since only the sign of x3 survives binarization, the runtime needs just
// xi and sign(gamma) per channel — both computed here, offline.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace phonebit::core {

/// Trained batch-norm parameters of one channel (sigma is the standard
/// deviation, i.e. sqrt(var + eps), matching the paper's notation).
struct BatchNormParams {
  float gamma = 1.0f;
  float beta = 0.0f;
  float mu = 0.0f;
  float sigma = 1.0f;
};

/// The folded per-channel constants the fused kernel consumes.
struct FoldedBatchNorm {
  std::vector<float> xi;          ///< threshold per output channel (Eqn 6)
  std::vector<std::uint8_t> gamma_pos;  ///< 1 iff gamma > 0

  std::int64_t channels() const noexcept {
    return static_cast<std::int64_t>(xi.size());
  }

  /// Identity fold (xi = 0, gamma > 0): plain sign binarization.
  static FoldedBatchNorm identity(std::int64_t channels) {
    FoldedBatchNorm f;
    f.xi.assign(static_cast<std::size_t>(channels), 0.0f);
    f.gamma_pos.assign(static_cast<std::size_t>(channels), 1);
    return f;
  }
};

/// Folds per-channel BN parameters and conv biases into (xi, sign(gamma)).
/// Channels with gamma == 0 carry no information after BN + binarize; the
/// paper prunes them (footnote 2) and we reject them here.
inline FoldedBatchNorm fold_batch_norm(const std::vector<BatchNormParams>& bn,
                                       const std::vector<float>& bias) {
  PB_CHECK(bias.empty() || bias.size() == bn.size(),
           "bias count " << bias.size() << " != channel count " << bn.size());
  FoldedBatchNorm out;
  out.xi.reserve(bn.size());
  out.gamma_pos.reserve(bn.size());
  for (std::size_t c = 0; c < bn.size(); ++c) {
    const BatchNormParams& p = bn[c];
    PB_CHECK(p.gamma != 0.0f,
             "gamma == 0 at channel " << c << ": prune the channel offline");
    PB_CHECK(p.sigma > 0.0f, "sigma must be positive at channel " << c);
    const float b = bias.empty() ? 0.0f : bias[c];
    out.xi.push_back(p.mu - p.beta * p.sigma / p.gamma - b);
    out.gamma_pos.push_back(p.gamma > 0.0f ? 1 : 0);
  }
  return out;
}

/// Reference (unfused) BN transform for one value — used by tests and the
/// no-integration ablation path: x3 = gamma * (x1 + b - mu) / sigma + beta.
inline float batch_norm_reference(float x1, const BatchNormParams& p,
                                  float bias) {
  return p.gamma * (x1 + bias - p.mu) / p.sigma + p.beta;
}

}  // namespace phonebit::core
