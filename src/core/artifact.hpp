// PhoneBit — serializable compiled artifacts (.pba).
//
// PhoneBit's deployment story (Fig. 2) is ahead-of-time: the converter runs
// on a workstation and the phone receives a ready-to-run artifact, never
// paying conversion or planning cost at startup. The .pbm model format
// (model_format.hpp) ships the *network*; this module ships the *compiled*
// network — the layer graph with its BN-folded packed weights PLUS the
// ExecutionPlan that Network::compile produced: per-step kernel selections
// (conv path, pack width, interior split, tile, fusion rewrites), the
// activation-slot table with its fixed slab offsets, and the exact
// scratch/slab peaks. load() reconstructs an immutable Network +
// ExecutionPlan with ZERO re-planning: no shape inference, no liveness
// pass, no kernel selection — the plan's implicit in-memory invariants are
// an explicit on-disk contract, validated field by field.
//
// Container layout (all fields host little-endian; DESIGN.md §8):
//
//   byte  0  u32  magic            "PBA!" (0x21414250)
//   byte  4  u32  format version   (kMinFormatVersion..kFormatVersion)
//   byte  8  u32  endianness mark  0x01020304 as written by the producer
//   byte 12  u32  header bytes     32
//   byte 16  u64  payload bytes    (file size - 32 must equal this)
//   byte 24  u64  payload FNV-1a64 checksum
//   byte 32  payload: five framed sections, in fixed order
//              [u32 tag | u64 body bytes | body]
//            tags: 1 network, 2 options, 3 input, 4 plan, 5 target
//
// Format v2 added the target section: the device-profile key the artifact
// was compiled (and RAM-validated) for — empty when the producer did not
// target a specific profile. Fleet repositories route on it; `pbc dump`
// prints it.
//
// Format v4 added weight compression (DESIGN.md §12): the options record
// carries the weight_compress knob, kernel variants carry the reuse flag,
// plan steps carry their compression stats, and BinaryConv2d records gain a
// storage-mode byte — mode 1 stores the filter bank as dictionary + row
// indices + XOR deltas (picked per layer only when strictly smaller than
// raw; the loader reconstructs the exact weights and hands the layer the
// decoded bank, so loading never re-clusters). v3 files still load; save()
// writes v3 whenever the plan was compiled with WeightCompress::kOff, so
// default-configuration artifacts stay byte-identical across this change.
//
// Every load-time mismatch — bad magic/version/endianness, truncation,
// checksum failure, invalid enum, violated structural invariant (weight
// pad words, slot-table layout, step edges, scratch peaks) — throws
// InvalidArgument naming the offending section and absolute byte offset.
// The loader never trusts a length or enum it has not checked, so a
// corrupted or truncated file fails loudly instead of crashing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "core/plan.hpp"
#include "oclsim/device_profile.hpp"

namespace phonebit::artifact {

// --- container constants (the stable on-disk contract; tests pin these) ---

inline constexpr std::uint32_t kMagic = 0x21414250u;  // "PBA!" little-endian
inline constexpr std::uint32_t kFormatVersion = 4;  // v4: weight compression
/// Oldest format the loader still accepts (v3: conv_path + path D). save()
/// emits v3 when the plan has weight compression off — byte-identical to
/// pre-v4 producers — and v4 otherwise.
inline constexpr std::uint32_t kMinFormatVersion = 3;
inline constexpr std::uint32_t kEndianMark = 0x01020304u;
inline constexpr std::int64_t kHeaderBytes = 32;

/// Header field offsets (bytes from the start of the file).
inline constexpr std::int64_t kMagicOffset = 0;
inline constexpr std::int64_t kVersionOffset = 4;
inline constexpr std::int64_t kEndianOffset = 8;
inline constexpr std::int64_t kHeaderBytesOffset = 12;
inline constexpr std::int64_t kPayloadBytesOffset = 16;
inline constexpr std::int64_t kChecksumOffset = 24;

/// Section tags, in their required file order.
enum class Section : std::uint32_t {
  kNetwork = 1,  ///< layer graph + packed weights + raw BN/bias params
  kOptions = 2,  ///< the EngineOptions snapshot the plan was compiled with
  kInput = 3,    ///< the BlobDesc the plan accepts
  kPlan = 4,     ///< steps, kernel variants, slot table, peaks
  kTarget = 5,   ///< device-profile key the artifact targets (may be empty)
};

const char* section_name(Section s) noexcept;

/// One entry of an artifact's section table (body offsets are absolute file
/// offsets). Exposed for tooling (`pbc dump`) and for the corruption tests,
/// which need to aim byte flips at a specific section.
struct SectionInfo {
  Section tag{};
  std::int64_t body_offset = 0;
  std::int64_t body_bytes = 0;
};

/// Reads just the header + section frames of `path` (magic/version/
/// endianness/length validated; checksum and bodies NOT decoded).
std::vector<SectionInfo> section_table(const std::string& path);

/// A deserialized artifact: the network owns the layers, the plan holds
/// non-owning pointers into them — keep both together (moving the struct is
/// safe; layers live on the heap behind stable unique_ptrs).
struct LoadedArtifact {
  std::unique_ptr<core::Network> network;
  core::ExecutionPlan plan;
  /// Device-profile key (oclsim::profile_by_name vocabulary) the producer
  /// compiled for; empty when untargeted.
  std::string target_profile;
};

/// Serializes `net` + the plan compiled from it to `path`. Throws
/// InvalidArgument when the plan does not belong to `net` or a layer is not
/// serializable, FormatError on I/O failure. Output is deterministic: the
/// same (network, plan, target) always produces byte-identical files, so
/// artifact checksums are stable build outputs. `target_profile` is
/// recorded verbatim in the target section (empty = untargeted).
void save(const core::Network& net, const core::ExecutionPlan& plan,
          const std::string& path, const std::string& target_profile = {});

/// Loads an artifact written by save(): reconstructs the Network and its
/// ExecutionPlan with zero re-planning, validating the full structural
/// contract along the way. Throws InvalidArgument naming the offending
/// section and byte offset on any mismatch.
LoadedArtifact load(const std::string& path);

/// The artifact payload checksum (FNV-1a 64) — exposed so tests and tools
/// can recompute/patch the header after a deliberate payload edit.
std::uint64_t checksum(const void* data, std::size_t n) noexcept;

/// Byte-exact RAM fit check shared by Engine::load_artifact and
/// compile_for_profile: params + activation slab + scratch peak must fit
/// `profile.ram_mb`. Throws OutOfMemoryError itemizing every component
/// against the budget (so fleet placement failures are diagnosable);
/// profiles with no RAM figure (ram_mb == 0) skip the check. `context`
/// names the artifact/model in the message.
void check_profile_fit(const core::Network& net,
                       const core::ExecutionPlan& plan,
                       const oclsim::DeviceProfile& profile,
                       const std::string& context);

/// Compile-once-per-profile entry point (the Fig. 2 converter's fleet
/// mode): compiles `net` for `input` under `opts`, validates the byte-exact
/// RAM fit against the profile registered under `profile_key`
/// (oclsim::profile_by_name), and writes the artifact to `path` with the
/// key recorded in the target section. Throws OutOfMemoryError when the
/// compiled plan cannot fit that device, before anything is written.
core::ExecutionPlan compile_for_profile(const core::Network& net,
                                        const core::EngineOptions& opts,
                                        const core::BlobDesc& input,
                                        const std::string& profile_key,
                                        const std::string& path);

}  // namespace phonebit::artifact
