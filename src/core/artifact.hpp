// PhoneBit — serializable compiled artifacts (.pba).
//
// PhoneBit's deployment story (Fig. 2) is ahead-of-time: the converter runs
// on a workstation and the phone receives a ready-to-run artifact, never
// paying conversion or planning cost at startup. The .pbm model format
// (model_format.hpp) ships the *network*; this module ships the *compiled*
// network — the layer graph with its BN-folded packed weights PLUS the
// ExecutionPlan that Network::compile produced: per-step kernel selections
// (conv path, pack width, interior split, tile, fusion rewrites), the
// activation-slot table with its fixed slab offsets, and the exact
// scratch/slab peaks. load() reconstructs an immutable Network +
// ExecutionPlan with ZERO re-planning: no shape inference, no liveness
// pass, no kernel selection — the plan's implicit in-memory invariants are
// an explicit on-disk contract, validated field by field.
//
// Container layout (all fields host little-endian; DESIGN.md §8):
//
//   byte  0  u32  magic            "PBA!" (0x21414250)
//   byte  4  u32  format version   (exact match required; no back-compat)
//   byte  8  u32  endianness mark  0x01020304 as written by the producer
//   byte 12  u32  header bytes     32
//   byte 16  u64  payload bytes    (file size - 32 must equal this)
//   byte 24  u64  payload FNV-1a64 checksum
//   byte 32  payload: four framed sections, in fixed order
//              [u32 tag | u64 body bytes | body]
//            tags: 1 network, 2 options, 3 input, 4 plan
//
// Every load-time mismatch — bad magic/version/endianness, truncation,
// checksum failure, invalid enum, violated structural invariant (weight
// pad words, slot-table layout, step edges, scratch peaks) — throws
// InvalidArgument naming the offending section and absolute byte offset.
// The loader never trusts a length or enum it has not checked, so a
// corrupted or truncated file fails loudly instead of crashing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "core/plan.hpp"

namespace phonebit::artifact {

// --- container constants (the stable on-disk contract; tests pin these) ---

inline constexpr std::uint32_t kMagic = 0x21414250u;  // "PBA!" little-endian
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kEndianMark = 0x01020304u;
inline constexpr std::int64_t kHeaderBytes = 32;

/// Header field offsets (bytes from the start of the file).
inline constexpr std::int64_t kMagicOffset = 0;
inline constexpr std::int64_t kVersionOffset = 4;
inline constexpr std::int64_t kEndianOffset = 8;
inline constexpr std::int64_t kHeaderBytesOffset = 12;
inline constexpr std::int64_t kPayloadBytesOffset = 16;
inline constexpr std::int64_t kChecksumOffset = 24;

/// Section tags, in their required file order.
enum class Section : std::uint32_t {
  kNetwork = 1,  ///< layer graph + packed weights + raw BN/bias params
  kOptions = 2,  ///< the EngineOptions snapshot the plan was compiled with
  kInput = 3,    ///< the BlobDesc the plan accepts
  kPlan = 4,     ///< steps, kernel variants, slot table, peaks
};

const char* section_name(Section s) noexcept;

/// One entry of an artifact's section table (body offsets are absolute file
/// offsets). Exposed for tooling (`pbc dump`) and for the corruption tests,
/// which need to aim byte flips at a specific section.
struct SectionInfo {
  Section tag{};
  std::int64_t body_offset = 0;
  std::int64_t body_bytes = 0;
};

/// Reads just the header + section frames of `path` (magic/version/
/// endianness/length validated; checksum and bodies NOT decoded).
std::vector<SectionInfo> section_table(const std::string& path);

/// A deserialized artifact: the network owns the layers, the plan holds
/// non-owning pointers into them — keep both together (moving the struct is
/// safe; layers live on the heap behind stable unique_ptrs).
struct LoadedArtifact {
  std::unique_ptr<core::Network> network;
  core::ExecutionPlan plan;
};

/// Serializes `net` + the plan compiled from it to `path`. Throws
/// InvalidArgument when the plan does not belong to `net` or a layer is not
/// serializable, FormatError on I/O failure. Output is deterministic: the
/// same (network, plan) always produces byte-identical files, so artifact
/// checksums are stable build outputs.
void save(const core::Network& net, const core::ExecutionPlan& plan,
          const std::string& path);

/// Loads an artifact written by save(): reconstructs the Network and its
/// ExecutionPlan with zero re-planning, validating the full structural
/// contract along the way. Throws InvalidArgument naming the offending
/// section and byte offset on any mismatch.
LoadedArtifact load(const std::string& path);

/// The artifact payload checksum (FNV-1a 64) — exposed so tests and tools
/// can recompute/patch the header after a deliberate payload edit.
std::uint64_t checksum(const void* data, std::size_t n) noexcept;

}  // namespace phonebit::artifact
