// PhoneBit — engine configuration.
//
// Every optimization the paper describes is a switch here so the ablation
// benchmarks can turn them off one at a time (DESIGN.md §3). Defaults are
// the paper's configuration.
#pragma once

#include <cstdint>

#include "bitpack/binary_ops.hpp"
#include "tensor/shape.hpp"

namespace phonebit::core {

/// Which conv execution path the planner may pick for BinaryConv2d steps.
/// kAuto lets ahead-of-time selection choose between the row-fused window
/// schedule (path A) and the register-tiled bit-GEMM lowering (path D) per
/// geometry via the roofline model on a fixed reference profile, so the
/// choice is a pure function of (options, geometry) — the determinism the
/// artifact codec's plan replay depends on. The pinned values exist for
/// ablation benches and for tests that assert a specific kernel shape.
enum class ConvPathPreference : std::uint8_t {
  kAuto = 0,      ///< roofline-selected per geometry (default)
  kRowFused = 1,  ///< always the window-streaming paths A/B/C
  kGemm = 2,      ///< always the bit-GEMM path D (where legal)
};

/// Weight-compression policy (DESIGN.md §12). Compression is always
/// lossless — the dictionary/index/delta factorization reconstructs the
/// packed filter bank bit-exactly — so the knob only controls where it is
/// applied. kOff keeps today's behaviour byte-for-byte (v3 artifacts, raw
/// weight records). kLossless compresses artifact storage (format v4) but
/// executes the plain kernels. kAuto additionally lets ahead-of-time
/// selection pick the partial-popcount reuse kernels where the roofline
/// model says the measured redundancy pays for the delta corrections.
enum class WeightCompress : std::uint8_t {
  kOff = 0,       ///< raw weights, format v3, plain kernels (default)
  kLossless = 1,  ///< compressed .pba storage only, execution unchanged
  kAuto = 2,      ///< compressed storage + roofline-selected reuse kernels
};

/// Tunable engine behaviour (all paper defaults ON).
struct EngineOptions {
  /// §V-B layer integration: fuse binary-conv + batch-norm + binarization
  /// into a single kernel using the folded threshold ξ.
  bool fuse_bn_binarize = true;

  /// §VI-C: use the Karnaugh-reduced branch-free Eqn 9 instead of the
  /// divergent four-way Eqn 8.
  bool branch_free_binarize = true;

  /// §VI-B workload optimization: one work item computes 8 filters and packs
  /// their bits into one byte in private memory (Fig. 4).
  bool integrate_packing = true;

  /// Plan-level cross-layer fusion (DESIGN.md §7): rewrite compiled
  /// `BinaryConv2d → MaxPool` step chains into one fused step whose conv
  /// epilogue applies the pool max (bitwise OR over conv output bytes) in
  /// registers and emits the pooled packed map directly — the full-size
  /// conv activation map is never written. Fuses only when the producing
  /// conv compiled to the fully fused path A and the pool windows are
  /// non-overlapping and gap-free (stride == size, size <= 3); other chains
  /// keep their separate steps. Off = every layer is its own step (the
  /// per-layer-attribution / ablation configuration).
  bool fuse_conv_pool = true;

  /// §VI-B: channel threshold above which packing runs as a separate kernel
  /// (private memory cannot hold the 8-filter working set).
  std::int64_t packing_channel_threshold = 256;

  /// Interior/border specialization of the binary conv (DESIGN.md §4): the
  /// output rectangle whose windows never touch padding runs a branch-free
  /// row-fused fast path (one strided xor+popcount per window); only border
  /// rows/columns take the guarded path. When false, every window runs the
  /// pre-optimization per-tap loop — kept as the ablation baseline.
  bool interior_split = true;

  /// Output-x tile width of the conv fast path: one work item owns a run of
  /// `conv_tile_ow` consecutive output columns, amortizing per-item dispatch
  /// and keeping the filter row hot. 0 means one tile spans the whole row.
  std::int64_t conv_tile_ow = 8;

  /// §V-A.2: pick xor/popcount vector granularity per layer from its channel
  /// count. When false, `fixed_pack_width` is used everywhere.
  bool auto_pack_width = true;
  bitpack::PackWidth fixed_pack_width = bitpack::PackWidth::k64;

  /// Pack-width selection key for the row-fused conv fast path: key the
  /// granularity on the fused span length `kw * words` (the contiguous run
  /// the interior kernel actually streams, instruction count minimized tail
  /// included — select_pack_width_for_span) instead of C_in. Only consulted
  /// when `interior_split` fuses rows; the per-tap ablation path always
  /// keys on C_in. Default ON: the bench_kernels ablation (the `/fast-ckey`
  /// records in BENCH_kernels.json) shows the span key cuts the narrow
  /// 7x7/c64 layer ~20% host time (7 scalar words become 1 ulong4 op + 3
  /// tail words) and ties within noise on wide layers, where both keys
  /// resolve to the same width.
  bool span_keyed_pack_width = true;

  /// Conv path policy (DESIGN.md §11): under kAuto the planner compares the
  /// modeled time of the window-streaming schedule against the bit-GEMM
  /// lowering per conv geometry and records the winner in the plan; kRowFused
  /// / kGemm force one side (the ablation / bench configuration). Path D is
  /// only ever eligible when the fused epilogue applies (fuse_bn_binarize &&
  /// integrate_packing && c_out % 8 == 0) — otherwise the A/B/C fallback
  /// rules decide exactly as before this option existed.
  ConvPathPreference conv_path = ConvPathPreference::kAuto;

  /// Weight-compression policy (DESIGN.md §12): kOff is byte-identical to
  /// the pre-compression engine; kLossless/kAuto store conv filter banks as
  /// dictionary + row indices + XOR deltas in v4 artifacts; kAuto also
  /// enables the partial-popcount reuse kernels where selection says the
  /// bank's redundancy wins. Off by default so existing artifacts, byte
  /// walks, and bench ablations are untouched.
  WeightCompress weight_compress = WeightCompress::kOff;

  /// §VI-A.1 vectorized load/store. Turning this off models scalar loads:
  /// worse effective bandwidth and extra per-access overhead.
  bool vectorized_loads = true;

  /// §V-A.1 data layout. kNCHW models the Caffe/Torch default for the layout
  /// ablation (bit packing then walks a strided channel dimension).
  Layout layout = Layout::kNHWC;

  friend bool operator==(const EngineOptions&, const EngineOptions&) =
      default;

  /// Resolves the pack width for a layer with `channels` input channels.
  bitpack::PackWidth pack_width_for(std::int64_t channels) const {
    return auto_pack_width ? bitpack::select_pack_width(channels)
                           : fixed_pack_width;
  }

  /// Resolves the pack width for a kernel streaming contiguous spans of
  /// `span_words` words: keyed on the span when `span_keyed_pack_width` is
  /// on (minimizing the per-span instruction count, tail included), else on
  /// the channel count as before.
  bitpack::PackWidth pack_width_for_span(std::int64_t channels,
                                         std::int64_t span_words) const {
    if (!auto_pack_width) return fixed_pack_width;
    return span_keyed_pack_width
               ? bitpack::select_pack_width_for_span(span_words)
               : bitpack::select_pack_width(channels);
  }

  /// Pack width of a conv's inner loop under the current keying: the fused
  /// row span `kw * words` when the interior split fuses rows, the per-tap
  /// channel count otherwise. Shared by the binary and bit-plane convs so
  /// their variant selection cannot drift.
  bitpack::PackWidth conv_pack_width(std::int64_t channels,
                                     std::int64_t kernel_w) const {
    const std::int64_t words = ceil_div(channels, bitpack::kWordBits);
    return interior_split ? pack_width_for_span(channels, kernel_w * words)
                          : pack_width_for(channels);
  }
};

}  // namespace phonebit::core
