// PhoneBit — engine configuration.
//
// Every optimization the paper describes is a switch here so the ablation
// benchmarks can turn them off one at a time (DESIGN.md §3). Defaults are
// the paper's configuration.
#pragma once

#include <cstdint>

#include "bitpack/binary_ops.hpp"
#include "tensor/shape.hpp"

namespace phonebit::core {

/// Tunable engine behaviour (all paper defaults ON).
struct EngineOptions {
  /// §V-B layer integration: fuse binary-conv + batch-norm + binarization
  /// into a single kernel using the folded threshold ξ.
  bool fuse_bn_binarize = true;

  /// §VI-C: use the Karnaugh-reduced branch-free Eqn 9 instead of the
  /// divergent four-way Eqn 8.
  bool branch_free_binarize = true;

  /// §VI-B workload optimization: one work item computes 8 filters and packs
  /// their bits into one byte in private memory (Fig. 4).
  bool integrate_packing = true;

  /// §VI-B: channel threshold above which packing runs as a separate kernel
  /// (private memory cannot hold the 8-filter working set).
  std::int64_t packing_channel_threshold = 256;

  /// Interior/border specialization of the binary conv (DESIGN.md §4): the
  /// output rectangle whose windows never touch padding runs a branch-free
  /// row-fused fast path (one strided xor+popcount per window); only border
  /// rows/columns take the guarded path. When false, every window runs the
  /// pre-optimization per-tap loop — kept as the ablation baseline.
  bool interior_split = true;

  /// Output-x tile width of the conv fast path: one work item owns a run of
  /// `conv_tile_ow` consecutive output columns, amortizing per-item dispatch
  /// and keeping the filter row hot. 0 means one tile spans the whole row.
  std::int64_t conv_tile_ow = 8;

  /// §V-A.2: pick xor/popcount vector granularity per layer from its channel
  /// count. When false, `fixed_pack_width` is used everywhere.
  bool auto_pack_width = true;
  bitpack::PackWidth fixed_pack_width = bitpack::PackWidth::k64;

  /// §VI-A.1 vectorized load/store. Turning this off models scalar loads:
  /// worse effective bandwidth and extra per-access overhead.
  bool vectorized_loads = true;

  /// §V-A.1 data layout. kNCHW models the Caffe/Torch default for the layout
  /// ablation (bit packing then walks a strided channel dimension).
  Layout layout = Layout::kNHWC;

  /// Resolves the pack width for a layer with `channels` input channels.
  bitpack::PackWidth pack_width_for(std::int64_t channels) const {
    return auto_pack_width ? bitpack::select_pack_width(channels)
                           : fixed_pack_width;
  }
};

}  // namespace phonebit::core
