// PhoneBit — layer abstraction.
//
// A network is a pipeline of layers exchanging Blobs. A Blob is either a
// float tensor (full-precision boundary layers), an 8-bit image (network
// input, Eqn 2) or a channel-packed binary tensor (everything in between —
// the engine never materializes float activations for binary layers).
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "bitpack/packed_tensor.hpp"
#include "core/arena.hpp"
#include "core/options.hpp"
#include "oclsim/runtime.hpp"
#include "tensor/tensor.hpp"

namespace phonebit::core {

/// The value flowing between layers.
using Blob = std::variant<FloatTensor, U8Tensor, bitpack::PackedTensor>;

/// Logical shape of whichever tensor the blob holds.
inline const Shape& blob_shape(const Blob& b) {
  if (const auto* f = std::get_if<FloatTensor>(&b)) return f->shape();
  if (const auto* u = std::get_if<U8Tensor>(&b)) return u->shape();
  return std::get<bitpack::PackedTensor>(b).shape();
}

/// Counters a session keeps about how its forwards were driven. The compile
/// contract is asserted through these: after Network::compile, forwards via
/// ExecutionPlan::run perform ZERO kernel-variant re-selection — only the
/// uncompiled compile-and-run wrapper keeps selecting per call.
struct SessionStats {
  /// Kernel-variant derivations (each layer planned counts one). Grows once
  /// per compile; flat across ExecutionPlan::run calls.
  std::int64_t variant_selections = 0;
  /// Plans compiled through this session's context.
  std::int64_t compiles = 0;
  /// Forwards executed through a compiled plan.
  std::int64_t planned_runs = 0;
};

/// Caller-owned cache for InputConv2d's bitplane split of ONE input blob.
/// Serving cascades attach it through RunOptions::planes: the first stage
/// that consumes the input fills the cache (the split kernel writes its
/// planes here instead of session scratch, same modeled cost), and every
/// later stage over the SAME geometry reads the planes back and skips the
/// split kernel entirely — the modeled saving is deterministic, so cascade
/// placement can price it. A cache is only valid for one input value; the
/// caller resets `filled` (or uses a fresh cache) per request.
struct InputPlaneCache {
  Shape shape{};                     ///< input shape the planes were split from
  std::vector<std::uint64_t> words;  ///< 8 bit-planes, plane_words each
  bool filled = false;

  /// Forget the cached planes (buffer capacity is kept for reuse).
  void reset() noexcept { filled = false; }
};

/// Slot-backed storage for the current step's output: a disjoint region of
/// the session arena's activation slab, assigned by the compiled plan's
/// liveness pass. Layers never touch this directly — they allocate their
/// output through ExecContext::make_packed/make_float, which hands out a
/// borrowed view when a binding is present and falls back to an owning
/// tensor (counted by the buffer-allocation hook) when it is not.
struct OutputBinding {
  std::uint64_t* base = nullptr;  ///< 8-byte-aligned slab region
  std::int64_t bytes = 0;         ///< region size (>= the step's blob)
};

/// Execution state threaded through a forward pass. Produced by an
/// ExecSession (engine.hpp); every member references session-owned state, so
/// a context must not outlive its session. `opts` is the session's
/// EngineOptions snapshot — layers see a stable configuration for the whole
/// session even if the engine's options are reconfigured mid-flight.
/// `stats` (optional) receives the compile/selection counters.
struct ExecContext {
  oclsim::CommandQueue& queue;
  const EngineOptions& opts;
  ScratchArena& arena;
  SessionStats* stats = nullptr;
  /// The compiled runner's slot binding for the CURRENT step's output
  /// (empty on the uncompiled path and for the owned network output).
  OutputBinding out = {};
  /// Optional bitplane cache for the network input (cascade reuse seam);
  /// null outside cascade serving. Only InputConv2d consults it.
  InputPlaneCache* planes = nullptr;

  /// Allocates the step's packed output: a view over the bound slot when
  /// one is present (padding words zeroed when C is not word-aligned, so
  /// byte-granular producers inherit the all-zero-padding invariant from
  /// recycled slab memory), else a fresh owning tensor. Consumes the
  /// binding — one output per step.
  bitpack::PackedTensor make_packed(const Shape& shape) {
    const std::int64_t words =
        shape.n * shape.h * shape.w * ceil_div(shape.c, bitpack::kWordBits);
    if (out.base != nullptr && words * 8 <= out.bytes) {
      std::uint64_t* base = out.base;
      out = {};
      if (shape.c % bitpack::kWordBits != 0) {
        std::memset(base, 0, static_cast<std::size_t>(words) * 8);
      }
      return bitpack::PackedTensor(shape, base);
    }
    out = {};
    return bitpack::PackedTensor(shape);
  }

  /// Allocates the step's float output: slab view if bound (uncleared —
  /// float producers write every element), else owning. Consumes the
  /// binding.
  FloatTensor make_float(const Shape& shape, Layout layout = Layout::kNHWC) {
    if (out.base != nullptr && shape.elems() * 4 <= out.bytes) {
      float* base = reinterpret_cast<float*>(out.base);
      out = {};
      return FloatTensor(shape, layout, base);
    }
    out = {};
    return FloatTensor(shape, layout);
  }
};

class PlanContext;  // plan.hpp — compile-time shape/variant negotiation
struct PlanStep;    // plan.hpp — one compiled layer invocation

/// Base class for all PhoneBit layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Layer instance name ("conv2", "pool1", ...).
  virtual const std::string& name() const = 0;

  /// Runs the layer, enqueueing its kernels on ctx.queue. Uncompiled path:
  /// the kernel variant is re-derived from ctx.opts on every call.
  virtual Blob forward(ExecContext& ctx, const Blob& in) const = 0;

  /// Compile hook (plan.hpp): validate the input descriptor in `pc` (throw
  /// InvalidArgument to fail the compile), declare the output descriptor,
  /// select the kernel variant and register scratch needs. Runs once per
  /// Network::compile — never on the forward hot path.
  virtual void plan(PlanContext& pc) const = 0;

  /// Compiled path: run with the variant selected at compile time instead
  /// of re-deriving it from ctx.opts. Layers without variants fall back to
  /// forward().
  virtual Blob run(ExecContext& ctx, const Blob& in,
                   const PlanStep& step) const {
    (void)step;
    return forward(ctx, in);
  }

  /// On-device parameter footprint in bytes (packed weights count packed;
  /// used for the Table II model-size accounting).
  virtual std::int64_t param_bytes() const { return 0; }

  /// Number of trained parameters (for reporting).
  virtual std::int64_t param_count() const { return 0; }
};

/// Per-layer timing extracted from the queue's profiling events.
struct LayerReport {
  std::string name;
  double modeled_ms = 0.0;
  double host_ms = 0.0;
  int launches = 0;
  oclsim::KernelCost cost;
};

}  // namespace phonebit::core
