// PhoneBit — full-precision convolution for the network's last layer.
//
// The paper keeps the final layer in float (e.g. YOLOv2-Tiny's conv9, which
// must emit real-valued box/objectness activations) and accelerates it with
// the OpenCL float4 `dot` built-in — the source of the ~3x conv9 speedup in
// Fig. 5. A packed binary input is expanded to ±1 floats first.
#pragma once

#include <string>
#include <vector>

#include "core/layer.hpp"
#include "core/plan.hpp"

namespace phonebit::core {

class FloatConv2d final : public Layer {
 public:
  /// `weights`: float filter bank (C_out, KH, KW, C_in) in NHWC order.
  FloatConv2d(std::string name, FloatTensor weights, std::vector<float> bias,
              ConvGeometry geom);

  const std::string& name() const override { return name_; }

  /// Accepts a packed binary blob (unpacked to ±1 on the queue) or floats.
  /// Output is always a FloatTensor.
  Blob forward(ExecContext& ctx, const Blob& in) const override;
  void plan(PlanContext& pc) const override;

  std::int64_t param_bytes() const override;
  std::int64_t param_count() const override;

  const ConvGeometry& geometry() const noexcept { return geom_; }
  std::int64_t out_channels() const noexcept { return weights_.shape().n; }
  std::int64_t in_channels() const noexcept { return weights_.shape().c; }
  const FloatTensor& weights() const noexcept { return weights_; }
  const std::vector<float>& bias() const noexcept { return bias_; }

 private:
  FloatTensor conv(ExecContext& ctx, const FloatTensor& in) const;

  std::string name_;
  FloatTensor weights_;
  std::vector<float> bias_;
  ConvGeometry geom_;
};

}  // namespace phonebit::core
