// PhoneBit — pooling layers.
//
// Max pooling over the ±1 binary domain is a bitwise OR of the packed words
// in the window: +1 is present iff any window bit is set, and out-of-range
// (padding) contributes the domain minimum -1 (zero words) — exactly the
// float max-pool semantics restricted to {-1, +1}. One work item owns one
// packed output word, so 64 channels pool per OR chain.
#pragma once

#include <string>

#include "core/layer.hpp"
#include "core/plan.hpp"

namespace phonebit::core {

/// Pooling window geometry (square windows, the form all three benchmark
/// networks use; padding supports YOLOv2-Tiny's stride-1 "same" pool6).
struct PoolGeometry {
  std::int64_t size = 2;
  std::int64_t stride = 2;
  std::int64_t pad = 0;
  /// Darknet-style "same" pooling: output = ceil(in/stride), windows anchored
  /// at oy*stride with bottom/right overflow ignored (YOLOv2-Tiny's stride-1
  /// pool6 keeps 13x13 this way).
  bool tail_pad = false;

  std::int64_t out_dim(std::int64_t in) const {
    PB_CHECK(stride > 0, "pool stride must be positive");
    if (tail_pad) return (in + stride - 1) / stride;
    const std::int64_t span = in + 2 * pad - size;
    PB_CHECK(span >= 0, "pool window larger than padded input");
    return span / stride + 1;
  }

  /// Top/left tap offset (tail_pad mode anchors windows at the origin).
  std::int64_t lead_pad() const noexcept { return tail_pad ? 0 : pad; }
};

/// Max pooling over packed binary feature maps (bitwise OR).
class MaxPool2d final : public Layer {
 public:
  MaxPool2d(std::string name, PoolGeometry geom)
      : name_(std::move(name)), geom_(geom) {}

  const std::string& name() const override { return name_; }
  Blob forward(ExecContext& ctx, const Blob& in) const override;
  void plan(PlanContext& pc) const override;

  const PoolGeometry& geometry() const noexcept { return geom_; }

 private:
  std::string name_;
  PoolGeometry geom_;
};

}  // namespace phonebit::core
