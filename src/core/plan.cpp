#include "core/plan.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/binary_conv.hpp"
#include "core/pooling.hpp"

namespace phonebit::core {

namespace {

/// Widest conv-output span one fused work item may buffer (bytes per conv
/// row in its register/stack row buffer); the fused tile width is clamped
/// so the span fits.
constexpr std::int64_t kMaxFusedSpanBytes = 64;
/// Largest pool window edge the fused epilogue's row buffer covers.
constexpr std::int64_t kMaxFusedPoolSize = 3;

/// Legality of the conv→pool rewrite (DESIGN.md §7). The chain fuses only
/// when (a) the producer compiled to the fully fused path A — its epilogue
/// already binarizes+packs in registers, so the pool OR composes for free;
/// (b) the consumer is a MaxPool2d whose windows are non-overlapping and
/// gap-free (stride == size): every conv output feeds exactly one window,
/// so nothing is recomputed and nothing is skipped; and (c) the window is
/// small enough for the per-row buffer. Overlapping pools (YOLOv2-Tiny's
/// stride-1 "same" pool6) would recompute conv outputs up to size² times —
/// they keep their own step. In a branching graph the conv output would
/// also need exactly one consumer; the linear pipeline gives that for free.
bool can_fuse_conv_pool(const PlanStep& conv, const PlanStep& pool) {
  if (conv.variant.path != KernelVariant::Path::kConvFused) return false;
  if (dynamic_cast<const BinaryConv2d*>(conv.layer) == nullptr) return false;
  const auto* mp = dynamic_cast<const MaxPool2d*>(pool.layer);
  if (mp == nullptr) return false;
  return fused_pool_geometry_legal(mp->geometry());
}

}  // namespace

bool fused_pool_geometry_legal(const PoolGeometry& g) noexcept {
  return g.stride == g.size && g.size >= 2 && g.size <= kMaxFusedPoolSize;
}

std::int64_t max_fused_tile(const PoolGeometry& g) noexcept {
  return std::max<std::int64_t>(
      1, (kMaxFusedSpanBytes - g.size) / g.stride + 1);
}

BlobDesc describe_blob(const Blob& b) {
  if (const auto* f = std::get_if<FloatTensor>(&b)) {
    return BlobDesc{BlobKind::kFloat, f->shape()};
  }
  if (const auto* u = std::get_if<U8Tensor>(&b)) {
    return BlobDesc{BlobKind::kU8, u->shape()};
  }
  return BlobDesc{BlobKind::kPacked, std::get<bitpack::PackedTensor>(b).shape()};
}

ExecutionPlan Network::compile(const Engine& engine,
                               const BlobDesc& input) const {
  return compile(engine.options(), input, nullptr);
}

ExecutionPlan Network::compile(const EngineOptions& opts, const BlobDesc& input,
                               SessionStats* stats) const {
  PB_CHECK(!layers_.empty(), name_ << ": cannot compile an empty network");
  ExecutionPlan plan;
  plan.name_ = name_;
  plan.opts_ = opts;
  plan.input_ = input;
  plan.steps_.reserve(layers_.size());

  // (a) + (c): one pass of shape inference, validation and ahead-of-time
  // variant selection. A layer whose contract is violated throws here, with
  // the network+layer context, before any kernel could run.
  BlobDesc cur = input;
  for (const auto& layer : layers_) {
    PlanContext pc(cur, opts, stats);
    layer->plan(pc);
    PB_CHECK(pc.produced_, name_ << "." << layer->name()
                                 << ": plan() declared no output descriptor");
    PlanStep step;
    step.layer = layer.get();
    step.in = cur;
    step.out = pc.out_;
    step.variant = std::move(pc.variant_);
    step.scratch = pc.scratch_;
    step.display = layer->name();
    // Per-step compression accounting (DESIGN.md §12): recorded in the plan
    // so dumps and `pbc dump` print per-layer redundancy without touching
    // the layers. The bank is deterministic in the weights, so the values
    // replay identically on artifact load.
    if (opts.weight_compress != WeightCompress::kOff) {
      if (const auto* conv = dynamic_cast<const BinaryConv2d*>(layer.get())) {
        const bitpack::CompressStats& cs = conv->compressed_bank().stats();
        step.wcomp.unique_rows = cs.unique_rows;
        step.wcomp.raw_bytes = cs.raw_bytes;
        step.wcomp.encoded_bytes = cs.encoded_bytes;
      }
    }
    plan.steps_.push_back(std::move(step));
    cur = plan.steps_.back().out;
  }

  // (d) Cross-layer fusion. Rewrites `BinaryConv2d → MaxPool` chains into
  // one fused step: the conv epilogue pools its output bytes in registers
  // and emits the pooled packed map directly, so the full-size conv
  // activation map (the chain's dominant memory traffic) is never written.
  // Runs BEFORE liveness so slots are sized for the pooled blob.
  if (opts.fuse_conv_pool) {
    std::vector<PlanStep> fused;
    fused.reserve(plan.steps_.size());
    for (std::size_t i = 0; i < plan.steps_.size(); ++i) {
      PlanStep step = std::move(plan.steps_[i]);
      if (i + 1 < plan.steps_.size() &&
          can_fuse_conv_pool(step, plan.steps_[i + 1])) {
        const PlanStep& pool = plan.steps_[i + 1];
        step.fused_pool = pool.layer;
        step.fused_mid = step.out;
        step.out = pool.out;
        // The fused conv→pool kernel keeps the plain shared-window schedule;
        // the dedup reuse variant does not compose with its row buffer, so
        // fusion (the bigger win — the conv map is never written) takes
        // precedence and the reuse flag is cleared before serialization.
        if (step.variant.reuse) {
          step.variant.reuse = false;
          step.variant.kernel = "bconv_fused";
        }
        step.variant.kernel += "+maxpool";
        step.display += "+" + pool.layer->name();
        // Re-clamp the output-x tile to the POOLED row and the fused row
        // buffer: one work item buffers (tile-1)*stride + size conv bytes
        // per window row.
        const auto& pg =
            static_cast<const MaxPool2d*>(pool.layer)->geometry();
        step.variant.tile_ow = std::max<std::int64_t>(
            1, std::min({step.variant.tile_ow, step.out.shape.w,
                         max_fused_tile(pg)}));
        ++i;  // the pool step is absorbed
      }
      fused.push_back(std::move(step));
    }
    plan.steps_ = std::move(fused);
  }

  // (b) Buffer liveness. The pipeline is linear: intermediate i (output of
  // step i) is live only until step i+1 consumes it, so a ping-pong pair of
  // slots covers every schedule and the peak is known exactly. The final
  // output is handed to the caller (or staged in the slab's output region
  // for borrow_output runs), never recycled. Scratch lifetimes never cross
  // a step, so the scratch peak per typed pool is a running max.
  const std::size_t n = plan.steps_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) {
      const int slot = static_cast<int>(i % 2);
      plan.steps_[i].slot = slot;
      if (plan.slots_.size() <= static_cast<std::size_t>(slot)) {
        plan.slots_.resize(static_cast<std::size_t>(slot) + 1);
      }
      ActivationSlot& s = plan.slots_[static_cast<std::size_t>(slot)];
      const std::int64_t bytes = plan.steps_[i].out.bytes();
      if (bytes > s.bytes) s.bytes = bytes;
    }
    plan.scratch_peak_.max_with(plan.steps_[i].scratch);
  }

  // Slab layout: each slot gets a fixed 8-byte-aligned region, with the
  // output staging region last. The slab is reserved byte-exactly at run.
  std::int64_t off = 0;
  for (ActivationSlot& s : plan.slots_) {
    s.offset = off;
    off += slab_align(s.bytes);
  }
  plan.output_offset_ = off;
  plan.slab_bytes_ = off + slab_align(plan.steps_.back().out.bytes());

  if (stats != nullptr) ++stats->compiles;
  return plan;
}

ForwardResult ExecutionPlan::run(ExecSession& session, const Blob& input,
                                 const RunOptions& ro) const {
  ExecContext ctx = session.context();
  return run(ctx, input, ro);
}

ForwardResult ExecutionPlan::run(ExecContext& ctx, const Blob& input,
                                 const RunOptions& ro) const {
  const BlobDesc got = describe_blob(input);
  PB_CHECK(got == input_, name_ << ": plan was compiled for input "
                                << input_.str() << ", got " << got.str());
  // The liveness pass's exact peaks: after this, no step grows the arena —
  // a strict no-op on a warm session (no growth event, no accounting move).
  ctx.arena.reserve(scratch_peak_.i32, scratch_peak_.f32, scratch_peak_.u8,
                    scratch_peak_.words, slab_bytes_);
  std::uint64_t* slab = ctx.arena.slab(slab_bytes_);
  // Execution uses the compiled options snapshot, so the plan behaves
  // identically on every session regardless of the session's own snapshot.
  ExecContext exec{ctx.queue, opts_, ctx.arena, ctx.stats};
  exec.planes = ro.planes;

  ForwardResult result;
  result.report.reserve(steps_.size());
  // The caller's input is only read; each step's product replaces the
  // previous one (a cheap view move once slots back the intermediates).
  Blob produced;
  const Blob* cur = &input;
  for (const PlanStep& step : steps_) {
    // Bind the step's output to its slab region: intermediates to their
    // ping-pong slot; the network output to the staging region when the
    // caller asked for a borrowed view (zero-allocation mode), otherwise
    // unbound so make_* hands out an owning tensor the caller keeps.
    if (step.slot >= 0) {
      const ActivationSlot& s = slots_[static_cast<std::size_t>(step.slot)];
      exec.out = OutputBinding{slab + s.offset / 8, s.bytes};
    } else if (ro.borrow_output) {
      exec.out = OutputBinding{slab + output_offset_ / 8, step.out.bytes()};
    } else {
      exec.out = OutputBinding{};
    }
    const std::size_t mark = exec.queue.event_mark();
    produced = step.layer->run(exec, *cur, step);
    cur = &produced;
    exec.out = OutputBinding{};
    const oclsim::EventSlice s = exec.queue.slice_events(mark);
    LayerReport r;
    r.name = step.name();
    r.modeled_ms = s.modeled_ms;
    r.host_ms = s.host_ms;
    r.launches = s.launches;
    r.cost = s.cost;
    result.modeled_ms += s.modeled_ms;
    result.host_ms += s.host_ms;
    result.report.push_back(std::move(r));
  }
  PB_CHECK(describe_blob(produced) == steps_.back().out,
           name_ << ": executed output disagrees with the compiled plan");
  result.output = std::move(produced);
  if (ctx.stats != nullptr) ++ctx.stats->planned_runs;
  return result;
}

namespace {

/// Conv-path letter for plan dumps (the DESIGN.md §4/§11 naming). Null for
/// layers with a single kernel schedule.
const char* conv_path_letter(KernelVariant::Path p) {
  switch (p) {
    case KernelVariant::Path::kConvFused: return "A";
    case KernelVariant::Path::kConvSeparatePack: return "B";
    case KernelVariant::Path::kConvUnfused: return "C";
    case KernelVariant::Path::kConvGemm: return "D";
    case KernelVariant::Path::kDefault: return nullptr;
  }
  return nullptr;
}

std::string human_bytes(std::int64_t b) {
  std::ostringstream os;
  if (b >= 1 << 20) {
    os << static_cast<double>(b) / (1 << 20) << " MiB";
  } else if (b >= 1 << 10) {
    os << static_cast<double>(b) / (1 << 10) << " KiB";
  } else {
    os << b << " B";
  }
  return os.str();
}

}  // namespace

std::string ExecutionPlan::dump() const {
  std::ostringstream os;
  os << "plan '" << name_ << "': " << input_.str() << " -> "
     << output().str() << ", " << steps_.size() << " steps\n";
  os << "  activation slab: " << human_bytes(slab_bytes_) << " ("
     << slots_.size() << " slots, peak "
     << human_bytes(peak_activation_bytes()) << ")";
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    os << (i == 0 ? "  [" : " ") << "slot" << i << "="
       << human_bytes(slots_[i].bytes) << "@" << slots_[i].offset;
  }
  if (!slots_.empty()) os << " out@" << output_offset_ << "]";
  os << "\n  scratch peak: " << human_bytes(peak_scratch_bytes()) << " (i32 "
     << scratch_peak_.i32 << ", f32 " << scratch_peak_.f32 << ", u8 "
     << scratch_peak_.u8 << ", words " << scratch_peak_.words << ")\n";
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const PlanStep& st = steps_[i];
    os << "  [" << i << "] " << st.name() << ": " << st.in.str();
    if (st.fused_pool != nullptr) os << " -> (" << st.fused_mid.str() << ")";
    os << " -> " << st.out.str() << "  kernel=" << st.variant.kernel;
    if (const char* letter = conv_path_letter(st.variant.path)) {
      os << " path=" << letter;
    }
    os << " pw=" << bitpack::bits(st.variant.pack_width)
       << (st.variant.interior_split ? " split" : "")
       << (st.variant.reuse ? " reuse" : "");
    if (st.variant.path == KernelVariant::Path::kConvGemm) {
      // The GEMM register-tile shape: tile_ow M-rows x the 8-filter group.
      os << " tile=" << st.variant.tile_ow << "x8";
    } else if (st.variant.tile_ow > 0) {
      os << " tile=" << st.variant.tile_ow;
    }
    if (st.slot >= 0) {
      os << " slot=" << st.slot << "@"
         << slots_[static_cast<std::size_t>(st.slot)].offset;
    } else {
      os << " slot=out@" << output_offset_;
    }
    if (st.scratch.bytes() > 0) {
      os << " scratch=" << human_bytes(st.scratch.bytes());
    }
    if (st.wcomp.unique_rows > 0) {
      os << " wcomp=" << st.wcomp.unique_rows << "u/"
         << human_bytes(st.wcomp.raw_bytes) << "->"
         << human_bytes(std::min(st.wcomp.encoded_bytes, st.wcomp.raw_bytes));
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace phonebit::core
