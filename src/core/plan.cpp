#include "core/plan.hpp"

#include <sstream>
#include <utility>

namespace phonebit::core {

BlobDesc describe_blob(const Blob& b) {
  if (const auto* f = std::get_if<FloatTensor>(&b)) {
    return BlobDesc{BlobKind::kFloat, f->shape()};
  }
  if (const auto* u = std::get_if<U8Tensor>(&b)) {
    return BlobDesc{BlobKind::kU8, u->shape()};
  }
  return BlobDesc{BlobKind::kPacked, std::get<bitpack::PackedTensor>(b).shape()};
}

ExecutionPlan Network::compile(const Engine& engine,
                               const BlobDesc& input) const {
  return compile(engine.options(), input, nullptr);
}

ExecutionPlan Network::compile(const EngineOptions& opts, const BlobDesc& input,
                               SessionStats* stats) const {
  PB_CHECK(!layers_.empty(), name_ << ": cannot compile an empty network");
  ExecutionPlan plan;
  plan.name_ = name_;
  plan.opts_ = opts;
  plan.input_ = input;
  plan.steps_.reserve(layers_.size());

  // (a) + (c): one pass of shape inference, validation and ahead-of-time
  // variant selection. A layer whose contract is violated throws here, with
  // the network+layer context, before any kernel could run.
  BlobDesc cur = input;
  for (const auto& layer : layers_) {
    PlanContext pc(cur, opts, stats);
    layer->plan(pc);
    PB_CHECK(pc.produced_, name_ << "." << layer->name()
                                 << ": plan() declared no output descriptor");
    PlanStep step;
    step.layer = layer.get();
    step.in = cur;
    step.out = pc.out_;
    step.variant = std::move(pc.variant_);
    step.scratch = pc.scratch_;
    plan.steps_.push_back(std::move(step));
    cur = plan.steps_.back().out;
  }

  // (b) Buffer liveness. The pipeline is linear: intermediate i (output of
  // step i) is live only until step i+1 consumes it, so a ping-pong pair of
  // slots covers every schedule and the peak is known exactly. The final
  // output is handed to the caller, never recycled. Scratch lifetimes never
  // cross a step, so the scratch peak per typed pool is a running max.
  const std::size_t n = plan.steps_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) {
      const int slot = static_cast<int>(i % 2);
      plan.steps_[i].slot = slot;
      if (plan.slots_.size() <= static_cast<std::size_t>(slot)) {
        plan.slots_.resize(static_cast<std::size_t>(slot) + 1);
      }
      ActivationSlot& s = plan.slots_[static_cast<std::size_t>(slot)];
      const std::int64_t bytes = plan.steps_[i].out.bytes();
      if (bytes > s.bytes) s.bytes = bytes;
    }
    plan.scratch_peak_.max_with(plan.steps_[i].scratch);
  }

  if (stats != nullptr) ++stats->compiles;
  return plan;
}

ForwardResult ExecutionPlan::run(ExecSession& session, Blob input) const {
  ExecContext ctx = session.context();
  return run(ctx, std::move(input));
}

ForwardResult ExecutionPlan::run(ExecContext& ctx, Blob input) const {
  const BlobDesc got = describe_blob(input);
  PB_CHECK(got == input_, name_ << ": plan was compiled for input "
                                << input_.str() << ", got " << got.str());
  // The liveness pass's exact peak: after this, no step grows the arena.
  ctx.arena.reserve(scratch_peak_.i32, scratch_peak_.u8, scratch_peak_.words);
  // Execution uses the compiled options snapshot, so the plan behaves
  // identically on every session regardless of the session's own snapshot.
  ExecContext exec{ctx.queue, opts_, ctx.arena, ctx.stats};

  ForwardResult result;
  result.report.reserve(steps_.size());
  Blob blob = std::move(input);
  for (const PlanStep& step : steps_) {
    const std::size_t mark = exec.queue.event_mark();
    blob = step.layer->run(exec, blob, step);
    const oclsim::EventSlice s = exec.queue.slice_events(mark);
    LayerReport r;
    r.name = step.layer->name();
    r.modeled_ms = s.modeled_ms;
    r.host_ms = s.host_ms;
    r.launches = s.launches;
    r.cost = s.cost;
    result.modeled_ms += s.modeled_ms;
    result.host_ms += s.host_ms;
    result.report.push_back(std::move(r));
  }
  PB_CHECK(describe_blob(blob) == steps_.back().out,
           name_ << ": executed output disagrees with the compiled plan");
  result.output = std::move(blob);
  if (ctx.stats != nullptr) ++ctx.stats->planned_runs;
  return result;
}

namespace {

std::string human_bytes(std::int64_t b) {
  std::ostringstream os;
  if (b >= 1 << 20) {
    os << static_cast<double>(b) / (1 << 20) << " MiB";
  } else if (b >= 1 << 10) {
    os << static_cast<double>(b) / (1 << 10) << " KiB";
  } else {
    os << b << " B";
  }
  return os.str();
}

}  // namespace

std::string ExecutionPlan::dump() const {
  std::ostringstream os;
  os << "plan '" << name_ << "': " << input_.str() << " -> "
     << output().str() << ", " << steps_.size() << " steps\n";
  os << "  activation slots: " << slots_.size() << " (peak "
     << human_bytes(peak_activation_bytes()) << ")";
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    os << (i == 0 ? "  [" : " ") << "slot" << i << "="
       << human_bytes(slots_[i].bytes) << (i + 1 == slots_.size() ? "]" : "");
  }
  os << "\n  scratch peak: " << human_bytes(peak_scratch_bytes()) << " (i32 "
     << scratch_peak_.i32 << ", u8 " << scratch_peak_.u8 << ", words "
     << scratch_peak_.words << ")\n";
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const PlanStep& st = steps_[i];
    os << "  [" << i << "] " << st.layer->name() << ": " << st.in.str()
       << " -> " << st.out.str() << "  kernel=" << st.variant.kernel
       << " pw=" << bitpack::bits(st.variant.pack_width)
       << (st.variant.interior_split ? " split" : "");
    if (st.variant.tile_ow > 0) os << " tile=" << st.variant.tile_ow;
    if (st.slot >= 0) {
      os << " slot=" << st.slot;
    } else {
      os << " slot=out";
    }
    if (st.scratch.bytes() > 0) {
      os << " scratch=" << human_bytes(st.scratch.bytes());
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace phonebit::core
