// PhoneBit — umbrella public header.
//
// #include "core/phonebit.hpp" pulls in the whole public inference API:
// simulated device, engine, layers, converter and model format.
#pragma once

#include "core/artifact.hpp"
#include "core/binarize.hpp"
#include "core/binary_conv.hpp"
#include "core/bn_fold.hpp"
#include "core/converter.hpp"
#include "core/dense.hpp"
#include "core/engine.hpp"
#include "core/float_conv.hpp"
#include "core/float_model.hpp"
#include "core/input_conv.hpp"
#include "core/layer.hpp"
#include "core/model_format.hpp"
#include "core/network.hpp"
#include "core/options.hpp"
#include "core/plan.hpp"
#include "core/pooling.hpp"
