// PhoneBit — compiled execution plans.
//
// PhoneBit's speed comes from decisions the hot path should never re-make:
// which conv path runs, at what vector granularity, over which interior box,
// with how much scratch. Network::compile walks the layer pipeline ONCE to
//   (a) infer every inter-layer blob shape/kind and validate the pipeline
//       up front (a malformed network fails at compile, not mid-forward),
//   (b) run a buffer-liveness pass assigning each intermediate blob a
//       ping-pong slot id with a fixed byte offset into the session arena's
//       activation slab, and computing the exact activation/scratch peaks
//       before the first forward (both reserved byte-exactly at run; every
//       intermediate tensor is a borrowed view over its slot, so a warm
//       session performs zero buffer allocations per forward),
//   (c) select each layer's kernel variant (execution path, pack width,
//       interior split, tile width) once from geometry + EngineOptions,
//   (d) resolve fusion: BN+binarize folds into the producing kernel where
//       the layer contract allows (path A/B vs the unfused path C), and a
//       plan-level pass rewrites `BinaryConv2d → MaxPool` chains into one
//       fused step whose epilogue pools conv bytes in registers — the
//       full-size conv activation map is never written (DESIGN.md §7).
// The resulting ExecutionPlan is immutable and shareable: any number of
// sessions can run one plan concurrently, the same way they share a const
// Network. This is the compiled-model / per-invocation cut daBNN and Larq
// Compute Engine make (DESIGN.md §6).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bitpack/binary_ops.hpp"
#include "core/engine.hpp"
#include "core/network.hpp"

namespace phonebit::artifact {
class PlanCodec;  // artifact.cpp — (de)serializes plans field by field
}

namespace phonebit::core {

/// Rounds a slab region up to the arena's 8-byte word alignment. Shared by
/// the liveness pass (plan.cpp) and the artifact loader's slab-layout
/// revalidation (artifact.cpp) so the two cannot disagree.
inline std::int64_t slab_align(std::int64_t bytes) noexcept {
  return ceil_div(bytes, 8) * 8;
}

struct PoolGeometry;  // pooling.hpp

/// Pool-side legality of the conv→pool fused step (DESIGN.md §7): windows
/// non-overlapping and gap-free (stride == size), small enough for the
/// fused kernel's fixed per-row buffer. Shared by the compile-time rewrite
/// (plan.cpp) and the artifact loader's revalidation (artifact.cpp) — the
/// fused kernel indexes a fixed stack buffer by this geometry, so a
/// deserialized step must re-pass the SAME predicate or a checksum-resealed
/// artifact could drive an out-of-bounds write.
bool fused_pool_geometry_legal(const PoolGeometry& g) noexcept;

/// Largest output-x tile a fused step may record for pool geometry `g`:
/// one work item buffers (tile-1)*stride + size conv bytes per window row,
/// which must fit the fused kernel's fixed row buffer. Shared like
/// fused_pool_geometry_legal (the loader rejects tiles beyond this cap).
std::int64_t max_fused_tile(const PoolGeometry& g) noexcept;

/// Which alternative of the Blob variant a planned edge carries.
enum class BlobKind { kFloat, kU8, kPacked };

inline const char* blob_kind_name(BlobKind k) noexcept {
  switch (k) {
    case BlobKind::kFloat: return "f32";
    case BlobKind::kU8: return "u8";
    case BlobKind::kPacked: return "packed";
  }
  return "?";
}

/// Compile-time descriptor of a blob flowing between layers: the variant
/// kind plus the logical shape. This is what shape inference propagates.
struct BlobDesc {
  BlobKind kind = BlobKind::kFloat;
  Shape shape{};

  /// Storage footprint of a blob with this descriptor (packed tensors count
  /// packed words; used by the liveness pass to size activation slots).
  std::int64_t bytes() const noexcept {
    switch (kind) {
      case BlobKind::kFloat: return shape.elems() * 4;
      case BlobKind::kU8: return shape.elems();
      case BlobKind::kPacked:
        return shape.n * shape.h * shape.w *
               ceil_div(shape.c, bitpack::kWordBits) * 8;
    }
    return 0;
  }

  friend bool operator==(const BlobDesc&, const BlobDesc&) = default;

  std::string str() const {
    return std::string(blob_kind_name(kind)) + shape.str();
  }
};

/// Descriptor of the blob a forward pass is about to consume/produce.
BlobDesc describe_blob(const Blob& b);

/// Ahead-of-time kernel selection for one layer: everything the layer used
/// to re-derive from EngineOptions + input geometry on every forward.
struct KernelVariant {
  /// Conv execution path (DESIGN.md §4). kDefault for layers with a single
  /// kernel schedule (pooling, dense, float layers).
  enum class Path {
    kDefault,
    kConvFused,         ///< path A: one kernel, 8 filters/byte in private mem
    kConvSeparatePack,  ///< path B: fused math + separate packing kernel
    kConvUnfused,       ///< path C: no integration (ablation pipeline)
    kConvGemm,          ///< path D: im2col + register-tiled bit-GEMM tiles
  };

  Path path = Path::kDefault;
  /// Vector granularity of the xor/and+popcount inner loop.
  bitpack::PackWidth pack_width = bitpack::PackWidth::k64;
  /// Interior/border specialization on (row-fused fast path).
  bool interior_split = false;
  /// Resolved output-x tile width (0 = the layer does not tile).
  std::int64_t tile_ow = 0;
  /// Partial-popcount reuse schedule selected (DESIGN.md §12): path D scores
  /// unique dictionary rows once per tile and patches referencing filters;
  /// path A computes one window per distinct lane of a filter group and
  /// copies duplicates. Only ever true under WeightCompress::kAuto when the
  /// roofline model says the bank's measured redundancy wins; bit-exact with
  /// the plain schedule either way.
  bool reuse = false;
  /// Kernel family, for plan dumps ("bconv_fused", "maxpool_or", ...).
  std::string kernel;
};

/// Scratch-arena requirement of one step, in elements per typed pool. The
/// liveness pass folds these into the plan's exact peak: scratch lifetimes
/// never cross a step, so the peak per pool is the max over steps.
struct ScratchNeed {
  std::int64_t i32 = 0;
  std::int64_t f32 = 0;
  std::int64_t u8 = 0;
  std::int64_t words = 0;

  std::int64_t bytes() const noexcept {
    return i32 * 4 + f32 * 4 + u8 + words * 8;
  }
  void max_with(const ScratchNeed& o) noexcept {
    i32 = i32 > o.i32 ? i32 : o.i32;
    f32 = f32 > o.f32 ? f32 : o.f32;
    u8 = u8 > o.u8 ? u8 : o.u8;
    words = words > o.words ? words : o.words;
  }
};

/// Per-step weight-compression accounting (DESIGN.md §12): filled at
/// compile for BinaryConv2d steps when `weight_compress` is not kOff, so
/// plan dumps and `pbc dump` can print per-layer redundancy without
/// touching the layers. All-zero for other layers / when compression is
/// off; serialized with v4 plans and revalidated on load.
struct StepCompression {
  std::int64_t unique_rows = 0;    ///< dictionary rows of the filter bank
  std::int64_t raw_bytes = 0;      ///< packed weight bytes, uncompressed
  std::int64_t encoded_bytes = 0;  ///< dict+index+delta serialized bytes
  friend bool operator==(const StepCompression&, const StepCompression&) =
      default;
};

/// One compiled layer invocation — possibly covering a fused chain of
/// layers (the conv→pool rewrite, DESIGN.md §7).
struct PlanStep {
  const Layer* layer = nullptr;
  BlobDesc in{};
  BlobDesc out{};
  KernelVariant variant{};
  ScratchNeed scratch{};
  /// Weight-compression stats of this step's filter bank (all-zero unless
  /// the step is a BinaryConv2d compiled with weight_compress != kOff).
  StepCompression wcomp{};
  /// Activation slot holding this step's output (-1: the network output,
  /// which is handed to the caller rather than recycled).
  int slot = -1;
  /// Fused trailing max-pool (null: no fusion). When set, `out` is the
  /// POOLED descriptor, `fused_mid` the conv's unpooled output descriptor
  /// (never materialized — the epilogue pools conv bytes in registers),
  /// and `layer` remains the producing conv, which executes both.
  const Layer* fused_pool = nullptr;
  BlobDesc fused_mid{};
  /// Display name ("conv2", or "conv2+pool2" when fused) — precomputed at
  /// compile so the hot run loop never concatenates strings.
  std::string display;

  const std::string& name() const noexcept { return display; }
};

/// One slot of the statically laid-out activation slab: sized to the
/// largest intermediate blob the liveness pass assigned to it, placed at a
/// fixed byte offset in the session arena's slab.
struct ActivationSlot {
  std::int64_t bytes = 0;
  std::int64_t offset = 0;  ///< 8-byte-aligned offset into the slab
};

/// Per-run knobs of ExecutionPlan::run.
struct RunOptions {
  /// Hand the network output out as a borrowed VIEW into the session's
  /// activation slab instead of a fresh owning tensor: the steady-state
  /// zero-allocation serving mode. The view is valid until the next run on
  /// the same session; callers that keep outputs must copy them out.
  bool borrow_output = false;
  /// Optional bitplane cache for the plan's input (layer.hpp). When set and
  /// the cache is empty, InputConv2d's split kernel fills it (same modeled
  /// cost as the uncached run); when set and already filled for this input
  /// geometry, the split kernel is SKIPPED and the planes are read back —
  /// the cascade packed-input reuse seam. Null = no caching.
  InputPlaneCache* planes = nullptr;
};

/// What Layer::plan sees: the inferred input descriptor and the options the
/// plan is being compiled against. The layer validates its contract (throw
/// InvalidArgument to fail the compile), declares its output descriptor,
/// selects its kernel variant and registers scratch needs.
class PlanContext {
 public:
  PlanContext(BlobDesc input, const EngineOptions& opts, SessionStats* stats)
      : in_(std::move(input)), opts_(opts), stats_(stats) {}

  const BlobDesc& in() const noexcept { return in_; }
  const EngineOptions& opts() const noexcept { return opts_; }

  /// Declares the step's output descriptor (required).
  void produce(BlobDesc out) {
    out_ = std::move(out);
    produced_ = true;
  }

  /// Records the step's ahead-of-time kernel selection. Counted against the
  /// session's variant_selections stat — after compile, forwards through the
  /// plan never select again (the zero-re-selection contract).
  void select(KernelVariant v) {
    variant_ = std::move(v);
    if (stats_ != nullptr) ++stats_->variant_selections;
  }

  /// Scratch-arena requirements of this step (elements, per typed pool).
  /// The arena keeps ONE live span per kind (every i32()/f32()/u8()/words()
  /// call returns the same pool base), so a layer needing several same-kind
  /// buffers must carve them out of a single combined request — and its
  /// declarations here must sum to that request (InputConv2d's planes +
  /// zeros span is the pattern). Requests of different kinds are disjoint.
  void need_i32(std::int64_t n) { scratch_.i32 += n; }
  void need_f32(std::int64_t n) { scratch_.f32 += n; }
  void need_u8(std::int64_t n) { scratch_.u8 += n; }
  void need_words(std::int64_t n) { scratch_.words += n; }

 private:
  friend class Network;
  // The artifact loader replays each layer's plan() against the
  // deserialized descriptors to prove a loaded step's shapes are exactly
  // what the layer would infer (artifact.cpp).
  friend class ::phonebit::artifact::PlanCodec;

  BlobDesc in_;
  const EngineOptions& opts_;
  SessionStats* stats_;
  BlobDesc out_{};
  bool produced_ = false;
  KernelVariant variant_{};
  ScratchNeed scratch_{};
};

/// A compiled network: the per-layer steps, the activation-slot layout and
/// the exact scratch peak. Immutable after compile; holds non-owning layer
/// pointers, so a plan must not outlive the Network it was compiled from.
class ExecutionPlan {
 public:
  const std::string& network_name() const noexcept { return name_; }
  /// The EngineOptions snapshot the plan was compiled against — execution
  /// uses THIS snapshot, so a plan behaves identically on every session.
  const EngineOptions& options() const noexcept { return opts_; }

  const std::vector<PlanStep>& steps() const noexcept { return steps_; }
  const std::vector<ActivationSlot>& slots() const noexcept { return slots_; }

  const BlobDesc& input() const noexcept { return input_; }
  const BlobDesc& output() const noexcept { return steps_.back().out; }

  /// Exact scratch-arena peak (per typed pool / total bytes) of one forward
  /// through this plan. ExecutionPlan::run reserves exactly this before the
  /// first step, so the arena never grows mid-forward.
  const ScratchNeed& scratch_peak() const noexcept { return scratch_peak_; }
  std::int64_t peak_scratch_bytes() const noexcept {
    return scratch_peak_.bytes();
  }

  /// Peak bytes of live intermediate activations under the ping-pong slot
  /// assignment (sum of slot sizes — at most two slots are ever live).
  std::int64_t peak_activation_bytes() const noexcept {
    std::int64_t total = 0;
    for (const ActivationSlot& s : slots_) total += s.bytes;
    return total;
  }

  /// Exact size of the session-arena activation slab one forward needs:
  /// every slot's 8-byte-aligned region plus the output staging region
  /// (used by borrow_output runs). Reserved alongside the scratch peak.
  std::int64_t slab_bytes() const noexcept { return slab_bytes_; }

  /// Byte offset of the output staging region inside the slab (the region
  /// borrow_output runs hand out as the result view).
  std::int64_t output_offset() const noexcept { return output_offset_; }

  /// Runs the plan on a session: reserves the exact scratch/slab peaks,
  /// executes every step with its compiled variant (no per-forward
  /// re-selection), backing each intermediate activation with its assigned
  /// slab slot — a warm session performs ZERO buffer allocations per
  /// forward (one owning output tensor unless `opts.borrow_output`) — and
  /// slices the per-step report from the session queue. The input blob
  /// must match the descriptor the plan was compiled for.
  ForwardResult run(ExecSession& session, const Blob& input,
                    const RunOptions& opts = {}) const;
  /// Same, against an already-built context (the context's options are
  /// superseded by the plan's compiled snapshot). The input is only read —
  /// never copied or consumed — so a steady-state caller can reuse one
  /// input blob across forwards without any per-call buffer traffic.
  ForwardResult run(ExecContext& ctx, const Blob& input,
                    const RunOptions& opts = {}) const;

  /// Human-readable plan: steps, variants, slots, peak bytes (the
  /// quickstart `plan_dump` mode prints this).
  std::string dump() const;

 private:
  friend class Network;
  // The artifact codec rebuilds a plan field by field from a validated
  // .pba payload — the ONE path besides Network::compile that may
  // construct a plan (artifact.hpp).
  friend class ::phonebit::artifact::PlanCodec;

  // Only Network::compile and the artifact loader build plans: a
  // default-constructed plan would have no steps, making output()/run()
  // meaningless.
  ExecutionPlan() = default;

  std::string name_;
  EngineOptions opts_{};
  BlobDesc input_{};
  std::vector<PlanStep> steps_;
  std::vector<ActivationSlot> slots_;
  ScratchNeed scratch_peak_{};
  std::int64_t slab_bytes_ = 0;      ///< slots + output staging, 8-aligned
  std::int64_t output_offset_ = 0;   ///< output staging region in the slab
};

}  // namespace phonebit::core
