// PhoneBit — tensor shapes and data layouts.
//
// The paper's locality argument (§V-A.1) is about NHWC vs NCHW: channel-
// direction bit packing needs the channel dimension innermost so packed words
// are unit-stride in memory. Both layouts are first-class here so the layout
// ablation can measure the difference.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace phonebit {

/// Memory order of a rank-4 activation tensor.
enum class Layout {
  kNHWC,  ///< channels innermost — PhoneBit's locality-friendly layout
  kNCHW,  ///< Caffe/Torch default — used by the CNNdroid-like baseline
};

/// Human-readable layout name.
inline const char* to_string(Layout l) {
  return l == Layout::kNHWC ? "NHWC" : "NCHW";
}

/// Logical dimensions of a rank-4 tensor (batch, height, width, channels).
/// The logical shape is layout-independent; Layout only fixes memory order.
struct Shape {
  std::int64_t n = 1;
  std::int64_t h = 1;
  std::int64_t w = 1;
  std::int64_t c = 1;

  std::int64_t elems() const noexcept { return n * h * w * c; }

  friend bool operator==(const Shape&, const Shape&) = default;

  std::string str() const {
    return "[" + std::to_string(n) + "," + std::to_string(h) + "," +
           std::to_string(w) + "," + std::to_string(c) + "]";
  }
};

/// Convolution geometry shared by every engine in the repo.
struct ConvGeometry {
  std::int64_t kernel_h = 3;
  std::int64_t kernel_w = 3;
  std::int64_t stride_h = 1;
  std::int64_t stride_w = 1;
  std::int64_t pad_h = 0;
  std::int64_t pad_w = 0;

  /// Output spatial size for an input extent.
  std::int64_t out_dim(std::int64_t in, std::int64_t kernel, std::int64_t stride,
                       std::int64_t pad) const {
    PB_CHECK(stride > 0, "stride must be positive");
    const std::int64_t span = in + 2 * pad - kernel;
    PB_CHECK(span >= 0, "kernel " << kernel << " larger than padded input " << in + 2 * pad);
    return span / stride + 1;
  }

  std::int64_t out_h(std::int64_t in_h) const {
    return out_dim(in_h, kernel_h, stride_h, pad_h);
  }
  std::int64_t out_w(std::int64_t in_w) const {
    return out_dim(in_w, kernel_w, stride_w, pad_w);
  }
};

/// The interior output rectangle [x0,x1) x [y0,y1): output positions whose
/// windows lie fully inside the input, i.e. never touch padding. The
/// branch-free row-fused conv fast paths specialize on it (DESIGN.md §4);
/// shared here so the binary and bit-plane convs compute one geometry.
struct InteriorBox {
  std::int64_t y0 = 0, y1 = 0, x0 = 0, x1 = 0;
};

inline InteriorBox interior_box(const ConvGeometry& g, std::int64_t ih,
                                std::int64_t iw, std::int64_t oh,
                                std::int64_t ow) {
  const auto clamp = [](std::int64_t v, std::int64_t lo, std::int64_t hi) {
    return v < lo ? lo : (v > hi ? hi : v);
  };
  InteriorBox b;
  // Interior rows: oy*stride - pad >= 0 and oy*stride - pad + kernel <= in.
  b.y0 = clamp((g.pad_h + g.stride_h - 1) / g.stride_h, 0, oh);
  const std::int64_t ymax = ih - g.kernel_h + g.pad_h;
  b.y1 = ymax < 0 ? b.y0 : clamp(ymax / g.stride_h + 1, b.y0, oh);
  b.x0 = clamp((g.pad_w + g.stride_w - 1) / g.stride_w, 0, ow);
  const std::int64_t xmax = iw - g.kernel_w + g.pad_w;
  b.x1 = xmax < 0 ? b.x0 : clamp(xmax / g.stride_w + 1, b.x0, ow);
  return b;
}

}  // namespace phonebit
