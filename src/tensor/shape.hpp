// PhoneBit — tensor shapes and data layouts.
//
// The paper's locality argument (§V-A.1) is about NHWC vs NCHW: channel-
// direction bit packing needs the channel dimension innermost so packed words
// are unit-stride in memory. Both layouts are first-class here so the layout
// ablation can measure the difference.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace phonebit {

/// Memory order of a rank-4 activation tensor.
enum class Layout {
  kNHWC,  ///< channels innermost — PhoneBit's locality-friendly layout
  kNCHW,  ///< Caffe/Torch default — used by the CNNdroid-like baseline
};

/// Human-readable layout name.
inline const char* to_string(Layout l) {
  return l == Layout::kNHWC ? "NHWC" : "NCHW";
}

/// Logical dimensions of a rank-4 tensor (batch, height, width, channels).
/// The logical shape is layout-independent; Layout only fixes memory order.
struct Shape {
  std::int64_t n = 1;
  std::int64_t h = 1;
  std::int64_t w = 1;
  std::int64_t c = 1;

  std::int64_t elems() const noexcept { return n * h * w * c; }

  friend bool operator==(const Shape&, const Shape&) = default;

  std::string str() const {
    return "[" + std::to_string(n) + "," + std::to_string(h) + "," +
           std::to_string(w) + "," + std::to_string(c) + "]";
  }
};

/// Convolution geometry shared by every engine in the repo.
struct ConvGeometry {
  std::int64_t kernel_h = 3;
  std::int64_t kernel_w = 3;
  std::int64_t stride_h = 1;
  std::int64_t stride_w = 1;
  std::int64_t pad_h = 0;
  std::int64_t pad_w = 0;

  /// Output spatial size for an input extent.
  std::int64_t out_dim(std::int64_t in, std::int64_t kernel, std::int64_t stride,
                       std::int64_t pad) const {
    PB_CHECK(stride > 0, "stride must be positive");
    const std::int64_t span = in + 2 * pad - kernel;
    PB_CHECK(span >= 0, "kernel " << kernel << " larger than padded input " << in + 2 * pad);
    return span / stride + 1;
  }

  std::int64_t out_h(std::int64_t in_h) const {
    return out_dim(in_h, kernel_h, stride_h, pad_h);
  }
  std::int64_t out_w(std::int64_t in_w) const {
    return out_dim(in_w, kernel_w, stride_w, pad_w);
  }
};

}  // namespace phonebit
