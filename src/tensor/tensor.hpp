// PhoneBit — dense rank-4 host tensors.
//
// A Tensor<T> holds contiguous storage in either NHWC or NCHW order. The
// logical index (n, h, w, c) is layout-independent; at()/operator() map it to
// the right linear offset, and to_layout() converts between orders (used by
// the layout ablation and the NCHW baseline).
//
// Storage is either OWNED (the default: a zero-initialized heap buffer,
// counted by the buffer-allocation hook) or BORROWED (a view over caller
// memory — the compiled execution path backs activation tensors with the
// session arena's slot slab, so a warm forward allocates nothing). Copying
// always deep-copies into owned storage; moving transfers the view.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/alloc_count.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/shape.hpp"

namespace phonebit {

template <typename T>
class Tensor {
 public:
  Tensor() = default;

  /// Allocates zero-initialized owned storage for `shape` in `layout` order.
  explicit Tensor(Shape shape, Layout layout = Layout::kNHWC)
      : shape_(shape), layout_(layout), owned_(checked_size(shape), T{}),
        data_(owned_.data()) {
    count_buffer_alloc();
  }

  /// Borrowed-storage view over `storage` (>= elems() elements, caller
  /// keeps it alive and aligned). Contents are NOT cleared — the producer
  /// must write every element it later reads.
  Tensor(Shape shape, Layout layout, T* storage)
      : shape_(shape), layout_(layout), data_(storage) {
    PB_CHECK(storage != nullptr, "null tensor view storage");
    (void)checked_size(shape);
  }

  /// Copies deep-copy into owned storage (a copy of a view owns its data).
  Tensor(const Tensor& o)
      : shape_(o.shape_), layout_(o.layout_),
        owned_(o.data_ == nullptr
                   ? std::vector<T>()
                   : std::vector<T>(o.data_, o.data_ + o.elems())),
        data_(owned_.empty() ? nullptr : owned_.data()) {
    if (!owned_.empty()) count_buffer_alloc();
  }
  Tensor& operator=(const Tensor& o) {
    if (this != &o) *this = Tensor(o);
    return *this;
  }
  // Moves preserve the storage mode: a moved vector keeps its buffer
  // address, so data_ stays valid for owners and views alike.
  Tensor(Tensor&& o) noexcept
      : shape_(std::exchange(o.shape_, Shape{})), layout_(o.layout_),
        owned_(std::move(o.owned_)), data_(std::exchange(o.data_, nullptr)) {}
  Tensor& operator=(Tensor&& o) noexcept {
    if (this != &o) {
      shape_ = std::exchange(o.shape_, Shape{});
      layout_ = o.layout_;
      owned_ = std::move(o.owned_);
      data_ = std::exchange(o.data_, nullptr);
    }
    return *this;
  }

  const Shape& shape() const noexcept { return shape_; }
  Layout layout() const noexcept { return layout_; }
  std::int64_t elems() const noexcept { return shape_.elems(); }
  std::int64_t bytes() const noexcept {
    return elems() * static_cast<std::int64_t>(sizeof(T));
  }

  /// False when this tensor is a borrowed view (slot-backed activation).
  bool owns_storage() const noexcept {
    return data_ == nullptr || !owned_.empty();
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }

  /// Linear offset of logical index (n,h,w,c) under this tensor's layout.
  std::int64_t offset(std::int64_t n, std::int64_t h, std::int64_t w,
                      std::int64_t c) const noexcept {
    if (layout_ == Layout::kNHWC) {
      return ((n * shape_.h + h) * shape_.w + w) * shape_.c + c;
    }
    return ((n * shape_.c + c) * shape_.h + h) * shape_.w + w;
  }

  /// Checked element access.
  T& at(std::int64_t n, std::int64_t h, std::int64_t w, std::int64_t c) {
    check_index(n, h, w, c);
    return data_[offset(n, h, w, c)];
  }
  const T& at(std::int64_t n, std::int64_t h, std::int64_t w,
              std::int64_t c) const {
    check_index(n, h, w, c);
    return data_[offset(n, h, w, c)];
  }

  /// Unchecked element access (hot loops).
  T& operator()(std::int64_t n, std::int64_t h, std::int64_t w,
                std::int64_t c) noexcept {
    return data_[offset(n, h, w, c)];
  }
  const T& operator()(std::int64_t n, std::int64_t h, std::int64_t w,
                      std::int64_t c) const noexcept {
    return data_[offset(n, h, w, c)];
  }

  /// Fills every element with `v`.
  void fill(T v) { std::fill(data_, data_ + elems(), v); }

  /// Fills with deterministic pseudo-random values (float: N(0, sigma)).
  void fill_random(Rng& rng, float sigma = 1.0f) {
    for (std::int64_t i = 0; i < elems(); ++i) {
      if constexpr (std::is_floating_point_v<T>) {
        data_[i] = static_cast<T>(rng.normal() * sigma);
      } else {
        data_[i] = static_cast<T>(rng());
      }
    }
  }

  /// Returns a copy of this tensor converted to `target` layout.
  Tensor<T> to_layout(Layout target) const {
    if (target == layout_) return *this;
    Tensor<T> out(shape_, target);
    for (std::int64_t n = 0; n < shape_.n; ++n)
      for (std::int64_t h = 0; h < shape_.h; ++h)
        for (std::int64_t w = 0; w < shape_.w; ++w)
          for (std::int64_t c = 0; c < shape_.c; ++c)
            out(n, h, w, c) = (*this)(n, h, w, c);
    return out;
  }

  /// Spatially zero-pads (pad_h rows top+bottom, pad_w cols left+right).
  Tensor<T> pad_spatial(std::int64_t pad_h, std::int64_t pad_w,
                        T value = T{}) const {
    PB_CHECK(pad_h >= 0 && pad_w >= 0, "negative padding");
    Tensor<T> out(
        Shape{shape_.n, shape_.h + 2 * pad_h, shape_.w + 2 * pad_w, shape_.c},
        layout_);
    out.fill(value);
    for (std::int64_t n = 0; n < shape_.n; ++n)
      for (std::int64_t h = 0; h < shape_.h; ++h)
        for (std::int64_t w = 0; w < shape_.w; ++w)
          for (std::int64_t c = 0; c < shape_.c; ++c)
            out(n, h + pad_h, w + pad_w, c) = (*this)(n, h, w, c);
    return out;
  }

 private:
  static std::size_t checked_size(const Shape& shape) {
    PB_CHECK(shape.n > 0 && shape.h > 0 && shape.w > 0 && shape.c > 0,
             "tensor dims must be positive: " << shape.str());
    return static_cast<std::size_t>(shape.elems());
  }

  void check_index(std::int64_t n, std::int64_t h, std::int64_t w,
                   std::int64_t c) const {
    PB_CHECK(n >= 0 && n < shape_.n && h >= 0 && h < shape_.h && w >= 0 &&
                 w < shape_.w && c >= 0 && c < shape_.c,
             "index (" << n << "," << h << "," << w << "," << c
                       << ") out of range for " << shape_.str());
  }

  Shape shape_{};
  Layout layout_ = Layout::kNHWC;
  std::vector<T> owned_;  // empty for borrowed views
  T* data_ = nullptr;
};

using FloatTensor = Tensor<float>;
using U8Tensor = Tensor<std::uint8_t>;

/// Max absolute elementwise difference between two same-shaped tensors.
inline float max_abs_diff(const FloatTensor& a, const FloatTensor& b) {
  PB_CHECK(a.shape() == b.shape(), "shape mismatch: " << a.shape().str()
                                                      << " vs " << b.shape().str());
  float m = 0.0f;
  const Shape& s = a.shape();
  for (std::int64_t n = 0; n < s.n; ++n)
    for (std::int64_t h = 0; h < s.h; ++h)
      for (std::int64_t w = 0; w < s.w; ++w)
        for (std::int64_t c = 0; c < s.c; ++c)
          m = std::max(m, std::fabs(a(n, h, w, c) - b(n, h, w, c)));
  return m;
}

/// True when tensors match within `tol` everywhere.
inline bool allclose(const FloatTensor& a, const FloatTensor& b,
                     float tol = 1e-5f) {
  return a.shape() == b.shape() && max_abs_diff(a, b) <= tol;
}

}  // namespace phonebit
