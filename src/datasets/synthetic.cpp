#include "datasets/synthetic.hpp"

#include <cmath>

#include "common/fixed_point.hpp"
#include "common/rng.hpp"

namespace phonebit::datasets {

U8Tensor random_image(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  U8Tensor img(shape, Layout::kNHWC);
  for (std::int64_t i = 0; i < img.elems(); ++i) {
    img.data()[i] = static_cast<std::uint8_t>(rng() & 0xff);
  }
  return img;
}

U8Tensor cifar_like_image(std::uint64_t seed) {
  Rng rng(seed);
  U8Tensor img(Shape{1, 32, 32, 3}, Layout::kNHWC);
  const float fx = rng.uniform(0.1f, 0.5f);
  const float fy = rng.uniform(0.1f, 0.5f);
  const float phase = rng.uniform(0.0f, 6.28f);
  for (std::int64_t h = 0; h < 32; ++h)
    for (std::int64_t w = 0; w < 32; ++w)
      for (std::int64_t c = 0; c < 3; ++c) {
        const float base =
            0.5f + 0.35f * std::sin(fx * static_cast<float>(w) +
                                    fy * static_cast<float>(h) + phase +
                                    0.8f * static_cast<float>(c));
        const float noisy = base + 0.08f * (rng.uniform() - 0.5f);
        img(0, h, w, c) = to_u8_pixel(noisy);
      }
  return img;
}

U8Tensor voc_like_image(std::int64_t hw, std::uint64_t seed) {
  Rng rng(seed);
  U8Tensor img(Shape{1, hw, hw, 3}, Layout::kNHWC);
  // Textured background.
  for (std::int64_t h = 0; h < hw; ++h)
    for (std::int64_t w = 0; w < hw; ++w)
      for (std::int64_t c = 0; c < 3; ++c) {
        const float v = 0.35f +
                        0.1f * std::sin(0.05f * static_cast<float>(h + w)) +
                        0.05f * (rng.uniform() - 0.5f);
        img(0, h, w, c) = to_u8_pixel(v);
      }
  // A few bright box-shaped "objects".
  const int boxes = 3;
  for (int b = 0; b < boxes; ++b) {
    const std::int64_t bw = static_cast<std::int64_t>(rng.below(
                                static_cast<std::uint64_t>(hw / 4))) +
                            hw / 8;
    const std::int64_t bh = static_cast<std::int64_t>(rng.below(
                                static_cast<std::uint64_t>(hw / 4))) +
                            hw / 8;
    const std::int64_t x0 = static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(hw - bw)));
    const std::int64_t y0 = static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(hw - bh)));
    const float r = rng.uniform(0.6f, 1.0f);
    const float g = rng.uniform(0.2f, 0.9f);
    const float bl = rng.uniform(0.2f, 0.9f);
    for (std::int64_t h = y0; h < y0 + bh; ++h)
      for (std::int64_t w = x0; w < x0 + bw; ++w) {
        img(0, h, w, 0) = to_u8_pixel(r);
        img(0, h, w, 1) = to_u8_pixel(g);
        img(0, h, w, 2) = to_u8_pixel(bl);
      }
  }
  return img;
}

U8Tensor upscale(const U8Tensor& in, std::int64_t out_h, std::int64_t out_w) {
  const Shape& is = in.shape();
  U8Tensor out(Shape{is.n, out_h, out_w, is.c}, Layout::kNHWC);
  for (std::int64_t n = 0; n < is.n; ++n)
    for (std::int64_t h = 0; h < out_h; ++h)
      for (std::int64_t w = 0; w < out_w; ++w) {
        const std::int64_t sh = h * is.h / out_h;
        const std::int64_t sw = w * is.w / out_w;
        for (std::int64_t c = 0; c < is.c; ++c) {
          out(n, h, w, c) = in(n, sh, sw, c);
        }
      }
  return out;
}

PatternDataset PatternDataset::make(std::int64_t count, std::int64_t classes,
                                    std::int64_t hw, std::uint64_t seed) {
  Rng rng(seed);
  PatternDataset ds;
  ds.classes = classes;
  ds.images.reserve(static_cast<std::size_t>(count));
  ds.labels.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    const int label = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(classes)));
    // Class-conditional orientation; frequency/phase jitter within class.
    const float theta =
        3.14159f * static_cast<float>(label) / static_cast<float>(classes);
    const float freq = 0.6f + 0.1f * rng.uniform();
    const float phase = rng.uniform(0.0f, 6.28f);
    FloatTensor img(Shape{1, hw, hw, 1}, Layout::kNHWC);
    for (std::int64_t h = 0; h < hw; ++h)
      for (std::int64_t w = 0; w < hw; ++w) {
        const float u = std::cos(theta) * static_cast<float>(w) +
                        std::sin(theta) * static_cast<float>(h);
        const float v = 0.5f + 0.4f * std::sin(freq * u + phase) +
                        0.15f * (rng.uniform() - 0.5f);
        img(0, h, w, 0) = v;
      }
    ds.images.push_back(std::move(img));
    ds.labels.push_back(label);
  }
  return ds;
}

}  // namespace phonebit::datasets
