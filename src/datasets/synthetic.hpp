// PhoneBit — synthetic data generators.
//
// The environment has no CIFAR10/VOC2007 files, so every experiment runs on
// deterministic synthetic inputs: runtime/energy results do not depend on
// pixel content (the engines are data-oblivious), and the accuracy-gap
// experiment uses a separable pattern-classification task the trainer can
// actually learn (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace phonebit::datasets {

/// Deterministic pseudo-random 8-bit image of the given shape.
U8Tensor random_image(const Shape& shape, std::uint64_t seed);

/// CIFAR-like 32x32x3 image with smooth class-dependent structure.
U8Tensor cifar_like_image(std::uint64_t seed);

/// VOC-like image at the given extent: textured background plus a few
/// box-shaped "objects" (exercises the detection example's decode path).
U8Tensor voc_like_image(std::int64_t hw, std::uint64_t seed);

/// Nearest-neighbour upscale (e.g. CIFAR 32x32 -> AlexNet 227x227).
U8Tensor upscale(const U8Tensor& in, std::int64_t out_h, std::int64_t out_w);

/// A labeled classification set over class-conditional oriented sinusoid
/// patterns + noise; linearly inseparable in pixel space but easily learned
/// by a small CNN. Used by the trainer to reproduce Table II's accuracy-gap
/// shape.
struct PatternDataset {
  std::vector<FloatTensor> images;  ///< each (1,H,W,C), values in [0,1]
  std::vector<int> labels;
  std::int64_t classes = 0;

  static PatternDataset make(std::int64_t count, std::int64_t classes,
                             std::int64_t hw, std::uint64_t seed);
};

}  // namespace phonebit::datasets
