#include "serve/cascade.hpp"

#include <algorithm>

#include "serve/virtual_time.hpp"

namespace phonebit::serve {

GateVerdict evaluate_gate(const StageGate& gate, const core::Blob& output) {
  GateVerdict v;
  switch (gate.kind) {
    case StageGate::Kind::kAlways:
      v.ok = true;
      v.pass = true;
      return v;
    case StageGate::Kind::kMaxAtLeast: {
      const auto* f = std::get_if<FloatTensor>(&output);
      if (f == nullptr) {
        v.error = "kMaxAtLeast gate needs a float stage output";
        return v;
      }
      float best = f->data()[0];
      const std::int64_t n = f->elems();
      for (std::int64_t i = 1; i < n; ++i) {
        best = std::max(best, f->data()[i]);
      }
      v.ok = true;
      v.pass = best >= gate.threshold;
      return v;
    }
  }
  v.error = "unknown gate kind";
  return v;
}

void validate_cascade(const CascadeSpec& spec, const std::string& who) {
  PB_CHECK(!spec.stages.empty(),
           who << ": cascade '" << spec.name << "' has no stages");
  PB_CHECK(static_cast<int>(spec.stages.size()) <= kMaxCascadeStages,
           who << ": cascade '" << spec.name << "' has "
               << spec.stages.size() << " stages — fault keying supports at "
               << "most " << kMaxCascadeStages);
  for (std::size_t s = 0; s < spec.stages.size(); ++s) {
    PB_CHECK(!spec.stages[s].model.empty(),
             who << ": cascade '" << spec.name << "' stage " << s
                 << " names no model");
  }
}

void finalize_cascade_summary(CascadeSummary& summary,
                              const CascadeSpec& spec) {
  const std::size_t nstages = spec.stages.size();
  summary.cascade = spec.name;
  summary.stages.assign(nstages, CascadeStageStats{});
  std::vector<std::vector<double>> ok_latency(nstages);
  for (std::size_t s = 0; s < nstages; ++s) {
    summary.stages[s].model = spec.stages[s].model;
  }

  for (const CascadeRequestResult& rr : summary.results) {
    switch (rr.status.code) {
      case StatusCode::kOk:
        ++summary.ok;
        if (rr.gated_out) {
          ++summary.gated_out;
        } else {
          ++summary.full_runs;
        }
        break;
      case StatusCode::kShed:
        ++summary.shed;
        break;
      case StatusCode::kDeadlineExceeded:
        ++summary.deadline_exceeded;
        break;
      case StatusCode::kFailed:
        ++summary.failed;
        break;
    }
    for (std::size_t s = 0; s < rr.stages.size() && s < nstages; ++s) {
      const StageOutcome& so = rr.stages[s];
      CascadeStageStats& st = summary.stages[s];
      ++st.entered;
      st.retries += so.retries;
      summary.retries += so.retries;
      switch (so.status.code) {
        case StatusCode::kOk:
          ++st.ok;
          ok_latency[s].push_back(so.latency_ms);
          st.max_ms = std::max(st.max_ms, so.latency_ms);
          if (so.gate_passed) {
            ++st.gate_passed;
          } else if (rr.status.ok()) {
            // Ok stage whose gate did not advance the request: either the
            // gate stopped it (non-final stage) or it is the final stage of
            // a full run — only the former counts as a gate stop.
            if (s + 1 < nstages && rr.gated_out &&
                s + 1 == rr.stages.size()) {
              ++st.gate_stopped;
            }
          }
          if (so.reused_planes) ++st.reused_planes;
          break;
        case StatusCode::kShed:
          ++st.shed;
          break;
        case StatusCode::kDeadlineExceeded:
          ++st.deadline_exceeded;
          break;
        case StatusCode::kFailed:
          ++st.failed;
          break;
      }
    }
  }
  for (std::size_t s = 0; s < nstages; ++s) {
    std::sort(ok_latency[s].begin(), ok_latency[s].end());
    summary.stages[s].p50_ms = percentile(ok_latency[s], 50.0);
    summary.stages[s].p99_ms = percentile(ok_latency[s], 99.0);
  }
}

}  // namespace phonebit::serve
