#include "serve/fleet.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <utility>

#include "core/artifact.hpp"
#include "oclsim/runtime.hpp"
#include "serve/virtual_time.hpp"

namespace phonebit::serve {

FleetServer::FleetServer(FleetConfig config, FaultPlan faults,
                         std::string name)
    : config_(std::move(config)), faults_(faults),
      name_(name.empty() ? "fleet" : std::move(name)) {
  PB_CHECK(!config_.shards.empty(), "FleetServer needs at least one shard");
  shards_.reserve(config_.shards.size());
  for (std::size_t i = 0; i < config_.shards.size(); ++i) {
    const ShardSpec& spec = config_.shards[i];
    auto s = std::make_unique<Shard>();
    s->spec = spec;
    if (s->spec.name.empty()) {
      s->spec.name = spec.profile + "/" + std::to_string(i);
    }
    // profile_by_name throws InvalidArgument (naming the known keys) for a
    // bad spec — the fleet fails at construction, not at first request.
    s->profile = oclsim::profile_by_name(spec.profile);
    if (spec.ram_mb > 0) s->profile.ram_mb = spec.ram_mb;
    s->device = std::make_shared<oclsim::Device>(s->profile,
                                                 spec.host_threads);
    s->engine = std::make_unique<core::Engine>(s->device);
    shards_.push_back(std::move(s));
  }
}

FleetServer::Shard& FleetServer::shard_at(int shard) {
  PB_CHECK(shard >= 0 && shard < shard_count(),
           "FleetServer '" << name_ << "': shard index " << shard
                           << " out of range [0, " << shard_count() << ")");
  return *shards_[static_cast<std::size_t>(shard)];
}

const FleetServer::Shard& FleetServer::shard_at(int shard) const {
  PB_CHECK(shard >= 0 && shard < shard_count(),
           "FleetServer '" << name_ << "': shard index " << shard
                           << " out of range [0, " << shard_count() << ")");
  return *shards_[static_cast<std::size_t>(shard)];
}

core::Engine& FleetServer::engine(int shard) {
  return *shard_at(shard).engine;
}

const oclsim::DeviceProfile& FleetServer::shard_profile(int shard) const {
  return shard_at(shard).profile;
}

const ShardSpec& FleetServer::shard_spec(int shard) const {
  return shard_at(shard).spec;
}

FleetServer::Entry* FleetServer::find_entry(Shard& s,
                                            const std::string& model) {
  for (Entry& e : s.repo) {
    if (e.model == model) return &e;
  }
  return nullptr;
}

const FleetServer::Entry* FleetServer::find_entry(
    const Shard& s, const std::string& model) const {
  for (const Entry& e : s.repo) {
    if (e.model == model) return &e;
  }
  return nullptr;
}

FleetServer::Snapshot FleetServer::snapshot(int shard,
                                            const std::string& model) const {
  std::lock_guard<std::mutex> lock(repo_mu_);
  const Entry* e = find_entry(shard_at(shard), model);
  if (e == nullptr) return {};
  return Snapshot{e->artifact, e->runner, e->version};
}

std::shared_ptr<const artifact::LoadedArtifact> FleetServer::checked_load(
    int shard, const std::string& path) {
  // The fault-sequence number is consumed BEFORE the real load so an
  // injected failure is deterministic no matter how the filesystem behaves.
  const std::uint64_t seq = load_seq_++;
  Shard& s = shard_at(shard);
  PB_CHECK(!faults_.artifact_load_fails(seq),
           "FleetServer '" << name_ << "': injected artifact-load fault for '"
                           << path << "' on shard '" << s.spec.name
                           << "' (load " << seq << ")");
  // Engine::load_artifact validates against THIS shard's profile: an
  // artifact over the profile's RAM budget throws the itemized
  // OutOfMemoryError and registers nothing.
  return s.engine->load_artifact_shared(path);
}

void FleetServer::load_model(const std::string& model,
                             const std::vector<std::string>& per_shard_paths) {
  PB_CHECK(static_cast<int>(per_shard_paths.size()) == shard_count(),
           "FleetServer '" << name_ << "': load_model needs one path per "
                           << "shard (" << shard_count() << "), got "
                           << per_shard_paths.size());
  for (int i = 0; i < shard_count(); ++i) {
    if (per_shard_paths[static_cast<std::size_t>(i)].empty()) continue;
    load_model_on(i, model, per_shard_paths[static_cast<std::size_t>(i)]);
  }
}

void FleetServer::load_model_on(int shard, const std::string& model,
                                const std::string& path) {
  std::lock_guard<std::mutex> lock(repo_mu_);
  Shard& s = shard_at(shard);
  PB_CHECK(find_entry(s, model) == nullptr,
           "FleetServer '" << name_ << "': model '" << model
                           << "' is already loaded on shard '" << s.spec.name
                           << "' — use swap_model_on");
  auto art = checked_load(shard, path);
  Entry e;
  e.model = model;
  e.artifact = art;
  e.version = 1;
  e.runner = std::make_shared<BatchRunner>(
      *s.engine, art, config_.exec_workers,
      name_ + ":" + s.spec.name + ":" + model + "@v1");
  s.repo.push_back(std::move(e));
}

void FleetServer::swap_model_on(int shard, const std::string& model,
                                const std::string& path) {
  std::lock_guard<std::mutex> lock(repo_mu_);
  Shard& s = shard_at(shard);
  Entry* e = find_entry(s, model);
  PB_CHECK(e != nullptr, "FleetServer '"
                             << name_ << "': cannot swap model '" << model
                             << "' on shard '" << s.spec.name
                             << "' — not loaded");
  // Load + validate against this shard's profile FIRST: if this throws
  // (fault seam, corrupt file, over this profile's RAM budget), the entry
  // is untouched and the old version keeps serving on this shard.
  auto art = checked_load(shard, path);
  e->artifact = art;
  ++e->version;
  e->runner = std::make_shared<BatchRunner>(
      *s.engine, art, config_.exec_workers,
      name_ + ":" + s.spec.name + ":" + model + "@v" +
          std::to_string(e->version));
}

std::uint64_t FleetServer::version_on(int shard,
                                      const std::string& model) const {
  std::lock_guard<std::mutex> lock(repo_mu_);
  const Entry* e = find_entry(shard_at(shard), model);
  return e != nullptr ? e->version : 0;
}

std::size_t FleetServer::compiled_plans() const {
  std::lock_guard<std::mutex> lock(repo_mu_);
  std::size_t n = 0;
  for (const auto& s : shards_) {
    for (const Entry& e : s->repo) n += e.runner->compiled_plans();
  }
  return n;
}

int FleetServer::total_arena_growth_events() const {
  std::lock_guard<std::mutex> lock(repo_mu_);
  int n = 0;
  for (const auto& s : shards_) {
    for (const Entry& e : s->repo) n += e.runner->total_arena_growth_events();
  }
  return n;
}

FleetSummary FleetServer::run(std::vector<Request> workload) {
  PB_CHECK(!running_.exchange(true, std::memory_order_acq_rel),
           "FleetServer '" << name_
                           << "': run called concurrently — a fleet serves "
                              "one trace at a time");
  struct RunningGuard {
    std::atomic<bool>& flag;
    ~RunningGuard() { flag.store(false, std::memory_order_release); }
  } guard{running_};

  const double wall0 = now_ms();
  const int nshards = shard_count();
  FleetSummary summary;
  summary.requests = static_cast<int>(workload.size());
  summary.results.resize(workload.size());
  summary.assignment.assign(static_cast<std::size_t>(nshards), 0);

  // Arrivals in virtual-time order, stable in submission order for ties —
  // fault keying stays on the SUBMISSION index, so reordering equal
  // timestamps cannot change a verdict.
  std::vector<std::size_t> order(workload.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&workload](std::size_t a, std::size_t b) {
                     return workload[a].arrival_ms < workload[b].arrival_ms;
                   });

  // Per-shard virtual machinery: lane heaps + admission queues, exactly
  // ModelServer's but N of them. All times are virtual ms.
  std::vector<LaneHeap> lanes;
  lanes.reserve(static_cast<std::size_t>(nshards));
  for (int i = 0; i < nshards; ++i) lanes.emplace_back(config_.lanes_per_shard);
  std::vector<std::deque<double>> waiting(static_cast<std::size_t>(nshards));
  std::vector<double> busy_ms(static_cast<std::size_t>(nshards), 0.0);
  std::vector<double> shard_end(static_cast<std::size_t>(nshards), 0.0);
  std::vector<int> max_depth(static_cast<std::size_t>(nshards), 0);

  struct ExecGroup {
    int shard = 0;
    std::shared_ptr<BatchRunner> runner;
    std::vector<std::size_t> indices;
  };
  std::vector<ExecGroup> groups;
  std::vector<std::shared_ptr<const artifact::LoadedArtifact>> pinned;

  // Scratch reused across requests.
  std::vector<Snapshot> snaps(static_cast<std::size_t>(nshards));
  std::vector<int> candidates;

  for (const std::size_t idx : order) {
    Request& rq = workload[idx];
    FleetRequestResult& rr = summary.results[idx];
    const double t = std::max(rq.arrival_ms, 0.0);

    // Requests whose dispatch time has passed have left every queue.
    for (int si = 0; si < nshards; ++si) {
      auto& w = waiting[static_cast<std::size_t>(si)];
      while (!w.empty() && w.front() <= t) w.pop_front();
    }

    // Candidates: shards serving this model at this request's exact shape.
    const core::BlobDesc desc = core::describe_blob(rq.input);
    candidates.clear();
    bool model_anywhere = false;
    for (int si = 0; si < nshards; ++si) {
      snaps[static_cast<std::size_t>(si)] = snapshot(si, rq.model);
      const Snapshot& snap = snaps[static_cast<std::size_t>(si)];
      if (snap.artifact == nullptr) continue;
      model_anywhere = true;
      if (snap.artifact->plan.input() == desc) candidates.push_back(si);
    }
    if (candidates.empty()) {
      rr.status.code = StatusCode::kFailed;
      if (!model_anywhere) {
        rr.status.error =
            "model '" + rq.model + "' is not loaded on any shard";
      } else {
        for (int si = 0; si < nshards; ++si) {
          const Snapshot& snap = snaps[static_cast<std::size_t>(si)];
          if (snap.artifact == nullptr) continue;
          rr.status.error = "model '" + rq.model + "' serves " +
                            snap.artifact->plan.input().str() + ", got " +
                            desc.str();
          break;
        }
      }
      continue;
    }

    // Per-shard modeled latency: one probe forward on the lowest-index
    // candidate records the kernel event log; replay_modeled_ms prices it
    // for every shard's profile (exact — costs are geometry-pure). Cached
    // per (probe plan, shape); a hot-swap on the probe shard changes the
    // plan pointer and naturally re-probes.
    const int probe_shard = candidates.front();
    const Snapshot& probe_snap = snaps[static_cast<std::size_t>(probe_shard)];
    const void* key = &probe_snap.artifact->plan;
    const std::vector<double>* costs = nullptr;
    for (const ProbeEntry& p : probe_cache_) {
      if (p.plan == key && p.desc == desc) {
        costs = &p.per_shard_ms;
        break;
      }
    }
    if (costs == nullptr) {
      Shard& ps = shard_at(probe_shard);
      if (ps.probe == nullptr) {
        ps.probe =
            std::make_unique<core::ExecSession>(ps.engine->create_session());
      }
      ps.probe->reset_profile();
      (void)probe_snap.artifact->plan.run(*ps.probe, rq.input);
      const auto& events = ps.probe->queue().events();
      ProbeEntry entry;
      entry.plan = key;
      entry.desc = desc;
      entry.per_shard_ms.reserve(static_cast<std::size_t>(nshards));
      for (int si = 0; si < nshards; ++si) {
        entry.per_shard_ms.push_back(
            oclsim::replay_modeled_ms(events, shard_at(si).profile));
      }
      probe_cache_.push_back(std::move(entry));
      costs = &probe_cache_.back().per_shard_ms;
    }

    // Placement: score every candidate, try best first, spill past full
    // shards, shed only when every candidate is full.
    struct Scored {
      double score;
      int shard;
    };
    std::vector<Scored> scored;
    scored.reserve(candidates.size());
    for (const int si : candidates) {
      const double wait =
          std::max(0.0, lanes[static_cast<std::size_t>(si)].min() - t);
      scored.push_back(Scored{(*costs)[static_cast<std::size_t>(si)] +
                                  config_.wait_weight * wait,
                              si});
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                if (a.score != b.score) return a.score < b.score;
                return a.shard < b.shard;
              });
    int placed = -1;
    for (const Scored& sc : scored) {
      const auto si = static_cast<std::size_t>(sc.shard);
      const int depth = static_cast<int>(waiting[si].size());
      max_depth[si] = std::max(max_depth[si], depth);
      if (depth >= config_.queue_limit) {
        ++rr.spillovers;  // reject-to-next-shard, not reject-the-user
        continue;
      }
      placed = sc.shard;
      break;
    }
    summary.spillovers += rr.spillovers;
    if (placed < 0) {
      // Every candidate is at its watermark: now, and only now, shed.
      rr.status.code = StatusCode::kShed;
      continue;
    }

    const auto pi = static_cast<std::size_t>(placed);
    const Snapshot& snap = snaps[pi];
    rr.shard = placed;
    rr.plan_version = snap.version;
    ++summary.assignment[pi];

    // Dispatch: wait for the earliest of the shard's lanes.
    const double start = std::max(t, lanes[pi].min());
    rr.queue_ms = start - t;
    waiting[pi].push_back(start);
    max_depth[pi] =
        std::max(max_depth[pi], static_cast<int>(waiting[pi].size()));

    const double deadline =
        rq.deadline_ms > 0.0
            ? rq.deadline_ms
            : (rq.deadline_ms < 0.0 ? 0.0 : config_.default_deadline_ms);
    // Deadline shed at dispatch, BEFORE execution: zero lane cost.
    if (deadline > 0.0 && start - t > deadline) {
      rr.status.code = StatusCode::kDeadlineExceeded;
      rr.latency_ms = start - t;
      continue;
    }

    // Attempt loop in virtual time (simulate_attempts, shared with
    // ModelServer; keyed on the submission index so fleet and
    // single-server draws line up for the same trace).
    const double modeled = (*costs)[pi];
    const AttemptOutcome at = simulate_attempts(
        faults_, idx, modeled, config_.max_retries, config_.retry_backoff_ms,
        start, t, deadline);
    rr.attempts = at.attempts;
    rr.retries = at.retries;
    if (at.ok) {
      rr.status.code = StatusCode::kOk;
    } else if (at.gave_up_deadline) {
      rr.status.code = StatusCode::kDeadlineExceeded;
    } else {
      rr.status.code = StatusCode::kFailed;
      rr.status.error = "transient fault persisted after " +
                        std::to_string(at.attempts) + " attempts";
    }
    summary.retries += rr.retries;
    lanes[pi].advance_min(start + at.dur_ms);
    busy_ms[pi] += at.dur_ms;
    shard_end[pi] = std::max(shard_end[pi], start + at.dur_ms);
    rr.latency_ms = start + at.dur_ms - t;

    if (rr.status.ok()) {
      pinned.push_back(snap.artifact);
      ExecGroup* g = nullptr;
      for (ExecGroup& cand : groups) {
        if (cand.runner == snap.runner) g = &cand;
      }
      if (g == nullptr) {
        groups.push_back(ExecGroup{placed, snap.runner, {}});
        g = &groups.back();
      }
      g->indices.push_back(idx);
    }
  }

  // --- Phase 2: real execution, per shard, per model version ------------
  //
  // Only admitted requests execute. Each group is one batch on its shard's
  // BatchRunner, so outputs are bit-exact with a standalone run of that
  // plan regardless of worker count or which profile the shard models.
  for (ExecGroup& g : groups) {
    std::vector<core::Blob> inputs;
    inputs.reserve(g.indices.size());
    for (const std::size_t idx : g.indices) {
      inputs.push_back(std::move(workload[idx].input));
    }
    BatchSummary batch = g.runner->run(std::move(inputs));
    for (std::size_t k = 0; k < g.indices.size(); ++k) {
      FleetRequestResult& rr = summary.results[g.indices[k]];
      if (batch.statuses[k].ok()) {
        rr.result = std::move(batch.results[k]);
      } else {
        rr.status = std::move(batch.statuses[k]);
      }
    }
  }

  // --- Accounting --------------------------------------------------------
  summary.makespan_ms =
      *std::max_element(shard_end.begin(), shard_end.end());
  std::vector<std::vector<double>> ok_latency(
      static_cast<std::size_t>(nshards));
  summary.shards.resize(static_cast<std::size_t>(nshards));
  for (int si = 0; si < nshards; ++si) {
    ShardStats& st = summary.shards[static_cast<std::size_t>(si)];
    st.shard = shard_at(si).spec.name;
    st.profile = shard_at(si).spec.profile;
    st.max_queue_depth = max_depth[static_cast<std::size_t>(si)];
    st.busy_ms = busy_ms[static_cast<std::size_t>(si)];
  }
  for (std::size_t i = 0; i < workload.size(); ++i) {
    const FleetRequestResult& rr = summary.results[i];
    ShardStats* st =
        rr.shard >= 0 ? &summary.shards[static_cast<std::size_t>(rr.shard)]
                      : nullptr;
    if (st != nullptr) {
      ++st->requests;
      st->retries += rr.retries;
    }
    switch (rr.status.code) {
      case StatusCode::kOk:
        ++summary.ok;
        if (st != nullptr) {
          ++st->ok;
          ok_latency[static_cast<std::size_t>(rr.shard)].push_back(
              rr.latency_ms);
          st->max_ms = std::max(st->max_ms, rr.latency_ms);
        }
        break;
      case StatusCode::kShed:
        ++summary.shed;
        break;
      case StatusCode::kDeadlineExceeded:
        ++summary.deadline_exceeded;
        if (st != nullptr) ++st->deadline_exceeded;
        break;
      case StatusCode::kFailed:
        ++summary.failed;
        if (st != nullptr) ++st->failed;
        break;
    }
  }
  for (int si = 0; si < nshards; ++si) {
    const auto s = static_cast<std::size_t>(si);
    std::sort(ok_latency[s].begin(), ok_latency[s].end());
    ShardStats& st = summary.shards[s];
    st.p50_ms = percentile(ok_latency[s], 50.0);
    st.p99_ms = percentile(ok_latency[s], 99.0);
    if (summary.makespan_ms > 0.0) {
      st.utilization =
          st.busy_ms / (static_cast<double>(config_.lanes_per_shard) *
                        summary.makespan_ms);
    }
  }
  summary.wall_ms = now_ms() - wall0;
  return summary;
}

CascadeSummary FleetServer::run_cascade(const CascadeSpec& spec,
                                        std::vector<Request> workload) {
  validate_cascade(spec, "FleetServer '" + name_ + "'");
  PB_CHECK(!running_.exchange(true, std::memory_order_acq_rel),
           "FleetServer '" << name_
                           << "': run called concurrently — a fleet serves "
                              "one trace at a time");
  struct RunningGuard {
    std::atomic<bool>& flag;
    ~RunningGuard() { flag.store(false, std::memory_order_release); }
  } guard{running_};

  const double wall0 = now_ms();
  const int nshards = shard_count();
  const int nstages = static_cast<int>(spec.stages.size());
  CascadeSummary summary;
  summary.requests = static_cast<int>(workload.size());
  summary.results.resize(workload.size());
  summary.stage_assignment.assign(
      static_cast<std::size_t>(nstages),
      std::vector<int>(static_cast<std::size_t>(nshards), 0));

  // Per-request cascade walk state. `cache_shard` is the shard whose device
  // holds this request's filled input plane cache (-1: none yet): later
  // stages price at the split-skipped reuse cost THERE and at the plain
  // cost everywhere else, so reuse affinity competes with device speed and
  // queue wait inside the normal placement score.
  struct Walk {
    double arrive = 0.0;
    bool active = true;
    int cache_shard = -1;
    core::InputPlaneCache planes;
  };
  std::vector<Walk> walks(workload.size());
  for (std::size_t i = 0; i < workload.size(); ++i) {
    walks[i].arrive = std::max(workload[i].arrival_ms, 0.0);
  }

  // Per-shard lane heaps span ALL stages (one fleet, one virtual clock);
  // admission queues are fresh per stage round, mirroring ModelServer's
  // cascade (stage rounds drain in priority order, DESIGN.md §13).
  std::vector<LaneHeap> lanes;
  lanes.reserve(static_cast<std::size_t>(nshards));
  for (int i = 0; i < nshards; ++i) lanes.emplace_back(config_.lanes_per_shard);

  struct ExecReq {
    std::size_t idx;
    bool attach_planes;
  };
  struct ExecGroup {
    std::shared_ptr<BatchRunner> runner;
    std::vector<ExecReq> reqs;
  };
  std::vector<std::shared_ptr<const artifact::LoadedArtifact>> pinned;

  std::vector<Snapshot> snaps(static_cast<std::size_t>(nshards));
  std::vector<int> candidates;
  std::vector<std::size_t> entrants;

  for (int s = 0; s < nstages; ++s) {
    const CascadeStageSpec& stage = spec.stages[static_cast<std::size_t>(s)];
    entrants.clear();
    for (std::size_t i = 0; i < workload.size(); ++i) {
      if (walks[i].active) entrants.push_back(i);
    }
    if (entrants.empty()) break;
    std::stable_sort(entrants.begin(), entrants.end(),
                     [&walks](std::size_t a, std::size_t b) {
                       return walks[a].arrive < walks[b].arrive;
                     });

    std::vector<std::deque<double>> waiting(
        static_cast<std::size_t>(nshards));
    std::vector<ExecGroup> groups;

    for (const std::size_t idx : entrants) {
      Request& rq = workload[idx];
      Walk& wk = walks[idx];
      CascadeRequestResult& rr = summary.results[idx];
      const double t = wk.arrive;
      const double t0 = std::max(rq.arrival_ms, 0.0);

      rr.stages.emplace_back();
      StageOutcome& so = rr.stages.back();

      for (int si = 0; si < nshards; ++si) {
        auto& w = waiting[static_cast<std::size_t>(si)];
        while (!w.empty() && w.front() <= t) w.pop_front();
      }

      // Candidates: shards serving this stage's model at the request's
      // exact shape (every stage consumes the ORIGINAL input).
      const core::BlobDesc desc = core::describe_blob(rq.input);
      candidates.clear();
      bool model_anywhere = false;
      for (int si = 0; si < nshards; ++si) {
        snaps[static_cast<std::size_t>(si)] = snapshot(si, stage.model);
        const Snapshot& snap = snaps[static_cast<std::size_t>(si)];
        if (snap.artifact == nullptr) continue;
        model_anywhere = true;
        if (snap.artifact->plan.input() == desc) candidates.push_back(si);
      }
      if (candidates.empty()) {
        so.status.code = StatusCode::kFailed;
        so.status.error =
            "cascade '" + spec.name + "' stage " + std::to_string(s) +
            (model_anywhere
                 ? " ('" + stage.model + "') serves a different shape"
                 : ": model '" + stage.model + "' is not loaded on any shard");
        rr.status = so.status;
        wk.active = false;
        continue;
      }

      // Cascade cost probe: one fill forward (empty plane cache — plain
      // cost) and, when the plan is cache-active, one reuse forward
      // (filled cache) on the lowest-index candidate; BOTH event logs
      // replay against every shard's profile.
      const int probe_shard = candidates.front();
      const Snapshot& probe_snap =
          snaps[static_cast<std::size_t>(probe_shard)];
      const void* key = &probe_snap.artifact->plan;
      const CascadeProbeEntry* probe = nullptr;
      for (const CascadeProbeEntry& p : cascade_probe_cache_) {
        if (p.plan == key && p.desc == desc) {
          probe = &p;
          break;
        }
      }
      if (probe == nullptr) {
        Shard& ps = shard_at(probe_shard);
        if (ps.probe == nullptr) {
          ps.probe = std::make_unique<core::ExecSession>(
              ps.engine->create_session());
        }
        core::InputPlaneCache cache;
        core::RunOptions ro;
        ro.planes = &cache;
        CascadeProbeEntry entry;
        entry.plan = key;
        entry.desc = desc;
        ps.probe->reset_profile();
        (void)probe_snap.artifact->plan.run(*ps.probe, rq.input, ro);
        entry.cache_active = cache.filled;
        entry.plain_ms.reserve(static_cast<std::size_t>(nshards));
        for (int si = 0; si < nshards; ++si) {
          entry.plain_ms.push_back(oclsim::replay_modeled_ms(
              ps.probe->queue().events(), shard_at(si).profile));
        }
        if (entry.cache_active) {
          ps.probe->reset_profile();
          (void)probe_snap.artifact->plan.run(*ps.probe, rq.input, ro);
          entry.reuse_ms.reserve(static_cast<std::size_t>(nshards));
          for (int si = 0; si < nshards; ++si) {
            entry.reuse_ms.push_back(oclsim::replay_modeled_ms(
                ps.probe->queue().events(), shard_at(si).profile));
          }
        } else {
          entry.reuse_ms = entry.plain_ms;
        }
        cascade_probe_cache_.push_back(std::move(entry));
        probe = &cascade_probe_cache_.back();
      }

      // Placement: plain cost everywhere except the shard holding this
      // request's filled planes, which prices the split-skipped path.
      struct Scored {
        double score;
        int shard;
      };
      std::vector<Scored> scored;
      scored.reserve(candidates.size());
      auto stage_cost = [&](int si) {
        const auto u = static_cast<std::size_t>(si);
        return (probe->cache_active && wk.cache_shard == si)
                   ? probe->reuse_ms[u]
                   : probe->plain_ms[u];
      };
      for (const int si : candidates) {
        const double wait =
            std::max(0.0, lanes[static_cast<std::size_t>(si)].min() - t);
        scored.push_back(
            Scored{stage_cost(si) + config_.wait_weight * wait, si});
      }
      std::sort(scored.begin(), scored.end(),
                [](const Scored& a, const Scored& b) {
                  if (a.score != b.score) return a.score < b.score;
                  return a.shard < b.shard;
                });
      int placed = -1;
      for (const Scored& sc : scored) {
        const auto si = static_cast<std::size_t>(sc.shard);
        if (static_cast<int>(waiting[si].size()) >= config_.queue_limit) {
          ++so.spillovers;
          continue;
        }
        placed = sc.shard;
        break;
      }
      if (placed < 0) {
        so.status.code = StatusCode::kShed;
        rr.status = so.status;
        rr.latency_ms = t - t0;
        wk.active = false;
        continue;
      }

      const auto pi = static_cast<std::size_t>(placed);
      const Snapshot& snap = snaps[pi];
      so.shard = placed;
      so.plan_version = snap.version;
      ++summary.stage_assignment[static_cast<std::size_t>(s)][pi];

      const double start = std::max(t, lanes[pi].min());
      so.queue_ms = start - t;
      rr.queue_ms += so.queue_ms;
      waiting[pi].push_back(start);

      const double deadline =
          rq.deadline_ms > 0.0
              ? rq.deadline_ms
              : (rq.deadline_ms < 0.0 ? 0.0 : config_.default_deadline_ms);
      // CASCADE-level deadline: budget measured from the ORIGINAL arrival.
      if (deadline > 0.0 && start - t0 > deadline) {
        so.status.code = StatusCode::kDeadlineExceeded;
        so.latency_ms = start - t;
        rr.status = so.status;
        rr.latency_ms = start - t0;
        wk.active = false;
        continue;
      }

      const bool reuse = probe->cache_active && wk.cache_shard == placed;
      const AttemptOutcome at = simulate_attempts(
          faults_, cascade_fault_key(idx, s), stage_cost(placed),
          config_.max_retries, config_.retry_backoff_ms, start, t0, deadline);
      so.attempts = at.attempts;
      so.retries = at.retries;
      so.reused_planes = reuse;
      lanes[pi].advance_min(start + at.dur_ms);
      so.latency_ms = start + at.dur_ms - t;
      if (!at.ok) {
        so.status.code = at.gave_up_deadline ? StatusCode::kDeadlineExceeded
                                             : StatusCode::kFailed;
        if (!at.gave_up_deadline) {
          so.status.error = "transient fault persisted after " +
                            std::to_string(at.attempts) + " attempts";
        }
        rr.status = so.status;
        rr.latency_ms = start + at.dur_ms - t0;
        wk.active = false;
        continue;
      }

      so.status.code = StatusCode::kOk;
      wk.arrive = start + at.dur_ms;
      // An Ok run through a cache-active plan fills the request's planes
      // ON THIS SHARD (decision-time knowledge: the probe already said the
      // plan fills the cache). The cache is attached for execution only on
      // its home shard.
      if (probe->cache_active && wk.cache_shard < 0) wk.cache_shard = placed;
      const bool attach = probe->cache_active && wk.cache_shard == placed;
      pinned.push_back(snap.artifact);
      ExecGroup* g = nullptr;
      for (ExecGroup& cand : groups) {
        if (cand.runner == snap.runner) g = &cand;
      }
      if (g == nullptr) {
        groups.push_back(ExecGroup{snap.runner, {}});
        g = &groups.back();
      }
      g->reqs.push_back(ExecReq{idx, attach});
    }

    // Stage-s phase 2: real forwards, borrowed inputs, planes attached on
    // their home shard only.
    for (ExecGroup& g : groups) {
      std::vector<const core::Blob*> inputs;
      std::vector<core::InputPlaneCache*> planes;
      inputs.reserve(g.reqs.size());
      planes.reserve(g.reqs.size());
      for (const ExecReq& er : g.reqs) {
        inputs.push_back(&workload[er.idx].input);
        planes.push_back(er.attach_planes ? &walks[er.idx].planes : nullptr);
      }
      BatchSummary batch = g.runner->run(inputs, planes);
      for (std::size_t k = 0; k < g.reqs.size(); ++k) {
        const std::size_t idx = g.reqs[k].idx;
        CascadeRequestResult& rr = summary.results[idx];
        StageOutcome& so = rr.stages.back();
        if (!batch.statuses[k].ok()) {
          so.status = batch.statuses[k];
          rr.status = std::move(batch.statuses[k]);
          walks[idx].active = false;
          continue;
        }
        rr.result = std::move(batch.results[k]);
      }
    }

    // Gates, after the stage barrier (last stage's gate is ignored).
    for (ExecGroup& g : groups) {
      for (const ExecReq& er : g.reqs) {
        Walk& wk = walks[er.idx];
        if (!wk.active) continue;
        CascadeRequestResult& rr = summary.results[er.idx];
        StageOutcome& so = rr.stages.back();
        const double t0 = std::max(workload[er.idx].arrival_ms, 0.0);
        if (s + 1 == nstages) {
          rr.latency_ms = wk.arrive - t0;
          wk.active = false;
          continue;
        }
        const GateVerdict v = evaluate_gate(stage.gate, rr.result.output);
        if (!v.ok) {
          so.status.code = StatusCode::kFailed;
          so.status.error = "cascade '" + spec.name + "' stage " +
                            std::to_string(s) + " gate: " + v.error;
          rr.status = so.status;
          rr.latency_ms = wk.arrive - t0;
          wk.active = false;
          continue;
        }
        if (v.pass) {
          so.gate_passed = true;
        } else {
          rr.gated_out = true;
          rr.latency_ms = wk.arrive - t0;
          wk.active = false;
        }
      }
    }
  }

  finalize_cascade_summary(summary, spec);
  summary.wall_ms = now_ms() - wall0;
  return summary;
}

}  // namespace phonebit::serve
