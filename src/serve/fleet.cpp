#include "serve/fleet.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <utility>

#include "core/artifact.hpp"
#include "oclsim/runtime.hpp"
#include "serve/virtual_time.hpp"

namespace phonebit::serve {

FleetServer::FleetServer(FleetConfig config, FaultPlan faults,
                         std::string name)
    : config_(std::move(config)), faults_(faults),
      name_(name.empty() ? "fleet" : std::move(name)) {
  PB_CHECK(!config_.shards.empty(), "FleetServer needs at least one shard");
  shards_.reserve(config_.shards.size());
  for (std::size_t i = 0; i < config_.shards.size(); ++i) {
    const ShardSpec& spec = config_.shards[i];
    auto s = std::make_unique<Shard>();
    s->spec = spec;
    if (s->spec.name.empty()) {
      s->spec.name = spec.profile + "/" + std::to_string(i);
    }
    // profile_by_name throws InvalidArgument (naming the known keys) for a
    // bad spec — the fleet fails at construction, not at first request.
    s->profile = oclsim::profile_by_name(spec.profile);
    if (spec.ram_mb > 0) s->profile.ram_mb = spec.ram_mb;
    s->device = std::make_shared<oclsim::Device>(s->profile,
                                                 spec.host_threads);
    s->engine = std::make_unique<core::Engine>(s->device);
    shards_.push_back(std::move(s));
  }
}

FleetServer::Shard& FleetServer::shard_at(int shard) {
  PB_CHECK(shard >= 0 && shard < shard_count(),
           "FleetServer '" << name_ << "': shard index " << shard
                           << " out of range [0, " << shard_count() << ")");
  return *shards_[static_cast<std::size_t>(shard)];
}

const FleetServer::Shard& FleetServer::shard_at(int shard) const {
  PB_CHECK(shard >= 0 && shard < shard_count(),
           "FleetServer '" << name_ << "': shard index " << shard
                           << " out of range [0, " << shard_count() << ")");
  return *shards_[static_cast<std::size_t>(shard)];
}

core::Engine& FleetServer::engine(int shard) {
  return *shard_at(shard).engine;
}

const oclsim::DeviceProfile& FleetServer::shard_profile(int shard) const {
  return shard_at(shard).profile;
}

const ShardSpec& FleetServer::shard_spec(int shard) const {
  return shard_at(shard).spec;
}

FleetServer::Entry* FleetServer::find_entry(Shard& s,
                                            const std::string& model) {
  for (Entry& e : s.repo) {
    if (e.model == model) return &e;
  }
  return nullptr;
}

const FleetServer::Entry* FleetServer::find_entry(
    const Shard& s, const std::string& model) const {
  for (const Entry& e : s.repo) {
    if (e.model == model) return &e;
  }
  return nullptr;
}

FleetServer::Snapshot FleetServer::snapshot(int shard,
                                            const std::string& model) const {
  std::lock_guard<std::mutex> lock(repo_mu_);
  const Entry* e = find_entry(shard_at(shard), model);
  if (e == nullptr) return {};
  return Snapshot{e->artifact, e->runner, e->version};
}

std::shared_ptr<const artifact::LoadedArtifact> FleetServer::checked_load(
    int shard, const std::string& path) {
  // The fault-sequence number is consumed BEFORE the real load so an
  // injected failure is deterministic no matter how the filesystem behaves.
  const std::uint64_t seq = load_seq_++;
  Shard& s = shard_at(shard);
  PB_CHECK(!faults_.artifact_load_fails(seq),
           "FleetServer '" << name_ << "': injected artifact-load fault for '"
                           << path << "' on shard '" << s.spec.name
                           << "' (load " << seq << ")");
  // Engine::load_artifact validates against THIS shard's profile: an
  // artifact over the profile's RAM budget throws the itemized
  // OutOfMemoryError and registers nothing.
  return s.engine->load_artifact_shared(path);
}

void FleetServer::load_model(const std::string& model,
                             const std::vector<std::string>& per_shard_paths) {
  PB_CHECK(static_cast<int>(per_shard_paths.size()) == shard_count(),
           "FleetServer '" << name_ << "': load_model needs one path per "
                           << "shard (" << shard_count() << "), got "
                           << per_shard_paths.size());
  for (int i = 0; i < shard_count(); ++i) {
    if (per_shard_paths[static_cast<std::size_t>(i)].empty()) continue;
    load_model_on(i, model, per_shard_paths[static_cast<std::size_t>(i)]);
  }
}

void FleetServer::load_model_on(int shard, const std::string& model,
                                const std::string& path) {
  std::lock_guard<std::mutex> lock(repo_mu_);
  Shard& s = shard_at(shard);
  PB_CHECK(find_entry(s, model) == nullptr,
           "FleetServer '" << name_ << "': model '" << model
                           << "' is already loaded on shard '" << s.spec.name
                           << "' — use swap_model_on");
  auto art = checked_load(shard, path);
  Entry e;
  e.model = model;
  e.artifact = art;
  e.version = 1;
  e.runner = std::make_shared<BatchRunner>(
      *s.engine, art, config_.exec_workers,
      name_ + ":" + s.spec.name + ":" + model + "@v1");
  s.repo.push_back(std::move(e));
}

void FleetServer::swap_model_on(int shard, const std::string& model,
                                const std::string& path) {
  std::lock_guard<std::mutex> lock(repo_mu_);
  Shard& s = shard_at(shard);
  Entry* e = find_entry(s, model);
  PB_CHECK(e != nullptr, "FleetServer '"
                             << name_ << "': cannot swap model '" << model
                             << "' on shard '" << s.spec.name
                             << "' — not loaded");
  // Load + validate against this shard's profile FIRST: if this throws
  // (fault seam, corrupt file, over this profile's RAM budget), the entry
  // is untouched and the old version keeps serving on this shard.
  auto art = checked_load(shard, path);
  e->artifact = art;
  ++e->version;
  e->runner = std::make_shared<BatchRunner>(
      *s.engine, art, config_.exec_workers,
      name_ + ":" + s.spec.name + ":" + model + "@v" +
          std::to_string(e->version));
}

std::uint64_t FleetServer::version_on(int shard,
                                      const std::string& model) const {
  std::lock_guard<std::mutex> lock(repo_mu_);
  const Entry* e = find_entry(shard_at(shard), model);
  return e != nullptr ? e->version : 0;
}

std::size_t FleetServer::compiled_plans() const {
  std::lock_guard<std::mutex> lock(repo_mu_);
  std::size_t n = 0;
  for (const auto& s : shards_) {
    for (const Entry& e : s->repo) n += e.runner->compiled_plans();
  }
  return n;
}

int FleetServer::total_arena_growth_events() const {
  std::lock_guard<std::mutex> lock(repo_mu_);
  int n = 0;
  for (const auto& s : shards_) {
    for (const Entry& e : s->repo) n += e.runner->total_arena_growth_events();
  }
  return n;
}

FleetSummary FleetServer::run(std::vector<Request> workload) {
  PB_CHECK(!running_.exchange(true, std::memory_order_acq_rel),
           "FleetServer '" << name_
                           << "': run called concurrently — a fleet serves "
                              "one trace at a time");
  struct RunningGuard {
    std::atomic<bool>& flag;
    ~RunningGuard() { flag.store(false, std::memory_order_release); }
  } guard{running_};

  const double wall0 = now_ms();
  const int nshards = shard_count();
  FleetSummary summary;
  summary.requests = static_cast<int>(workload.size());
  summary.results.resize(workload.size());
  summary.assignment.assign(static_cast<std::size_t>(nshards), 0);

  // Arrivals in virtual-time order, stable in submission order for ties —
  // fault keying stays on the SUBMISSION index, so reordering equal
  // timestamps cannot change a verdict.
  std::vector<std::size_t> order(workload.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&workload](std::size_t a, std::size_t b) {
                     return workload[a].arrival_ms < workload[b].arrival_ms;
                   });

  // Per-shard virtual machinery: lane heaps + admission queues, exactly
  // ModelServer's but N of them. All times are virtual ms.
  std::vector<LaneHeap> lanes;
  lanes.reserve(static_cast<std::size_t>(nshards));
  for (int i = 0; i < nshards; ++i) lanes.emplace_back(config_.lanes_per_shard);
  std::vector<std::deque<double>> waiting(static_cast<std::size_t>(nshards));
  std::vector<double> busy_ms(static_cast<std::size_t>(nshards), 0.0);
  std::vector<double> shard_end(static_cast<std::size_t>(nshards), 0.0);
  std::vector<int> max_depth(static_cast<std::size_t>(nshards), 0);

  struct ExecGroup {
    int shard = 0;
    std::shared_ptr<BatchRunner> runner;
    std::vector<std::size_t> indices;
  };
  std::vector<ExecGroup> groups;
  std::vector<std::shared_ptr<const artifact::LoadedArtifact>> pinned;

  // Scratch reused across requests.
  std::vector<Snapshot> snaps(static_cast<std::size_t>(nshards));
  std::vector<int> candidates;

  for (const std::size_t idx : order) {
    Request& rq = workload[idx];
    FleetRequestResult& rr = summary.results[idx];
    const double t = std::max(rq.arrival_ms, 0.0);

    // Requests whose dispatch time has passed have left every queue.
    for (int si = 0; si < nshards; ++si) {
      auto& w = waiting[static_cast<std::size_t>(si)];
      while (!w.empty() && w.front() <= t) w.pop_front();
    }

    // Candidates: shards serving this model at this request's exact shape.
    const core::BlobDesc desc = core::describe_blob(rq.input);
    candidates.clear();
    bool model_anywhere = false;
    for (int si = 0; si < nshards; ++si) {
      snaps[static_cast<std::size_t>(si)] = snapshot(si, rq.model);
      const Snapshot& snap = snaps[static_cast<std::size_t>(si)];
      if (snap.artifact == nullptr) continue;
      model_anywhere = true;
      if (snap.artifact->plan.input() == desc) candidates.push_back(si);
    }
    if (candidates.empty()) {
      rr.status.code = StatusCode::kFailed;
      if (!model_anywhere) {
        rr.status.error =
            "model '" + rq.model + "' is not loaded on any shard";
      } else {
        for (int si = 0; si < nshards; ++si) {
          const Snapshot& snap = snaps[static_cast<std::size_t>(si)];
          if (snap.artifact == nullptr) continue;
          rr.status.error = "model '" + rq.model + "' serves " +
                            snap.artifact->plan.input().str() + ", got " +
                            desc.str();
          break;
        }
      }
      continue;
    }

    // Per-shard modeled latency: one probe forward on the lowest-index
    // candidate records the kernel event log; replay_modeled_ms prices it
    // for every shard's profile (exact — costs are geometry-pure). Cached
    // per (probe plan, shape); a hot-swap on the probe shard changes the
    // plan pointer and naturally re-probes.
    const int probe_shard = candidates.front();
    const Snapshot& probe_snap = snaps[static_cast<std::size_t>(probe_shard)];
    const void* key = &probe_snap.artifact->plan;
    const std::vector<double>* costs = nullptr;
    for (const ProbeEntry& p : probe_cache_) {
      if (p.plan == key && p.desc == desc) {
        costs = &p.per_shard_ms;
        break;
      }
    }
    if (costs == nullptr) {
      Shard& ps = shard_at(probe_shard);
      if (ps.probe == nullptr) {
        ps.probe =
            std::make_unique<core::ExecSession>(ps.engine->create_session());
      }
      ps.probe->reset_profile();
      (void)probe_snap.artifact->plan.run(*ps.probe, rq.input);
      const auto& events = ps.probe->queue().events();
      ProbeEntry entry;
      entry.plan = key;
      entry.desc = desc;
      entry.per_shard_ms.reserve(static_cast<std::size_t>(nshards));
      for (int si = 0; si < nshards; ++si) {
        entry.per_shard_ms.push_back(
            oclsim::replay_modeled_ms(events, shard_at(si).profile));
      }
      probe_cache_.push_back(std::move(entry));
      costs = &probe_cache_.back().per_shard_ms;
    }

    // Placement: score every candidate, try best first, spill past full
    // shards, shed only when every candidate is full.
    struct Scored {
      double score;
      int shard;
    };
    std::vector<Scored> scored;
    scored.reserve(candidates.size());
    for (const int si : candidates) {
      const double wait =
          std::max(0.0, lanes[static_cast<std::size_t>(si)].min() - t);
      scored.push_back(Scored{(*costs)[static_cast<std::size_t>(si)] +
                                  config_.wait_weight * wait,
                              si});
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                if (a.score != b.score) return a.score < b.score;
                return a.shard < b.shard;
              });
    int placed = -1;
    for (const Scored& sc : scored) {
      const auto si = static_cast<std::size_t>(sc.shard);
      const int depth = static_cast<int>(waiting[si].size());
      max_depth[si] = std::max(max_depth[si], depth);
      if (depth >= config_.queue_limit) {
        ++rr.spillovers;  // reject-to-next-shard, not reject-the-user
        continue;
      }
      placed = sc.shard;
      break;
    }
    summary.spillovers += rr.spillovers;
    if (placed < 0) {
      // Every candidate is at its watermark: now, and only now, shed.
      rr.status.code = StatusCode::kShed;
      continue;
    }

    const auto pi = static_cast<std::size_t>(placed);
    const Snapshot& snap = snaps[pi];
    rr.shard = placed;
    rr.plan_version = snap.version;
    ++summary.assignment[pi];

    // Dispatch: wait for the earliest of the shard's lanes.
    const double start = std::max(t, lanes[pi].min());
    rr.queue_ms = start - t;
    waiting[pi].push_back(start);
    max_depth[pi] =
        std::max(max_depth[pi], static_cast<int>(waiting[pi].size()));

    const double deadline =
        rq.deadline_ms > 0.0
            ? rq.deadline_ms
            : (rq.deadline_ms < 0.0 ? 0.0 : config_.default_deadline_ms);
    // Deadline shed at dispatch, BEFORE execution: zero lane cost.
    if (deadline > 0.0 && start - t > deadline) {
      rr.status.code = StatusCode::kDeadlineExceeded;
      rr.latency_ms = start - t;
      continue;
    }

    // Attempt loop in virtual time (ModelServer's, keyed on the submission
    // index so fleet and single-server draws line up for the same trace).
    const double modeled = (*costs)[pi];
    double dur = 0.0;
    rr.status.code = StatusCode::kOk;
    for (int a = 0;; ++a) {
      ++rr.attempts;
      dur += modeled + faults_.latency_spike_ms(idx, a);
      if (!faults_.transient_fault(idx, a)) break;  // attempt succeeded
      if (a == config_.max_retries) {
        rr.status.code = StatusCode::kFailed;
        rr.status.error = "transient fault persisted after " +
                          std::to_string(rr.attempts) + " attempts";
        break;
      }
      dur += config_.retry_backoff_ms;
      ++rr.retries;
      if (deadline > 0.0 && start + dur + modeled - t > deadline) {
        rr.status.code = StatusCode::kDeadlineExceeded;
        break;
      }
    }
    summary.retries += rr.retries;
    lanes[pi].advance_min(start + dur);
    busy_ms[pi] += dur;
    shard_end[pi] = std::max(shard_end[pi], start + dur);
    rr.latency_ms = start + dur - t;

    if (rr.status.ok()) {
      pinned.push_back(snap.artifact);
      ExecGroup* g = nullptr;
      for (ExecGroup& cand : groups) {
        if (cand.runner == snap.runner) g = &cand;
      }
      if (g == nullptr) {
        groups.push_back(ExecGroup{placed, snap.runner, {}});
        g = &groups.back();
      }
      g->indices.push_back(idx);
    }
  }

  // --- Phase 2: real execution, per shard, per model version ------------
  //
  // Only admitted requests execute. Each group is one batch on its shard's
  // BatchRunner, so outputs are bit-exact with a standalone run of that
  // plan regardless of worker count or which profile the shard models.
  for (ExecGroup& g : groups) {
    std::vector<core::Blob> inputs;
    inputs.reserve(g.indices.size());
    for (const std::size_t idx : g.indices) {
      inputs.push_back(std::move(workload[idx].input));
    }
    BatchSummary batch = g.runner->run(std::move(inputs));
    for (std::size_t k = 0; k < g.indices.size(); ++k) {
      FleetRequestResult& rr = summary.results[g.indices[k]];
      if (batch.statuses[k].ok()) {
        rr.result = std::move(batch.results[k]);
      } else {
        rr.status = std::move(batch.statuses[k]);
      }
    }
  }

  // --- Accounting --------------------------------------------------------
  summary.makespan_ms =
      *std::max_element(shard_end.begin(), shard_end.end());
  std::vector<std::vector<double>> ok_latency(
      static_cast<std::size_t>(nshards));
  summary.shards.resize(static_cast<std::size_t>(nshards));
  for (int si = 0; si < nshards; ++si) {
    ShardStats& st = summary.shards[static_cast<std::size_t>(si)];
    st.shard = shard_at(si).spec.name;
    st.profile = shard_at(si).spec.profile;
    st.max_queue_depth = max_depth[static_cast<std::size_t>(si)];
    st.busy_ms = busy_ms[static_cast<std::size_t>(si)];
  }
  for (std::size_t i = 0; i < workload.size(); ++i) {
    const FleetRequestResult& rr = summary.results[i];
    ShardStats* st =
        rr.shard >= 0 ? &summary.shards[static_cast<std::size_t>(rr.shard)]
                      : nullptr;
    if (st != nullptr) {
      ++st->requests;
      st->retries += rr.retries;
    }
    switch (rr.status.code) {
      case StatusCode::kOk:
        ++summary.ok;
        if (st != nullptr) {
          ++st->ok;
          ok_latency[static_cast<std::size_t>(rr.shard)].push_back(
              rr.latency_ms);
          st->max_ms = std::max(st->max_ms, rr.latency_ms);
        }
        break;
      case StatusCode::kShed:
        ++summary.shed;
        break;
      case StatusCode::kDeadlineExceeded:
        ++summary.deadline_exceeded;
        if (st != nullptr) ++st->deadline_exceeded;
        break;
      case StatusCode::kFailed:
        ++summary.failed;
        if (st != nullptr) ++st->failed;
        break;
    }
  }
  for (int si = 0; si < nshards; ++si) {
    const auto s = static_cast<std::size_t>(si);
    std::sort(ok_latency[s].begin(), ok_latency[s].end());
    ShardStats& st = summary.shards[s];
    st.p50_ms = percentile(ok_latency[s], 50.0);
    st.p99_ms = percentile(ok_latency[s], 99.0);
    if (summary.makespan_ms > 0.0) {
      st.utilization =
          st.busy_ms / (static_cast<double>(config_.lanes_per_shard) *
                        summary.makespan_ms);
    }
  }
  summary.wall_ms = now_ms() - wall0;
  return summary;
}

}  // namespace phonebit::serve
