// PhoneBit serve — shared virtual-time primitives.
//
// The serving determinism story (DESIGN.md §9–§10) hinges on running every
// admission/deadline/retry/placement decision against VIRTUAL time: arrival
// timestamps from the workload trace plus geometry-deterministic modeled
// latencies, draining through a fixed number of simulated service lanes.
// These helpers are that machinery, shared by BatchRunner, ModelServer and
// FleetServer so single-server and fleet placement agree on one clock.
#pragma once

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "serve/fault.hpp"

namespace phonebit::serve {

/// Real host wall clock, ms — used only for reporting (`wall_ms`), never
/// for decisions.
inline double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

/// Nearest-rank percentile of an ascending-sorted sample.
///
/// Defined over the full q range: q <= 0 answers the minimum, q >= 100 the
/// maximum, and any in-between q the smallest element whose rank covers
/// q% of the sample (so a single-element sample answers that element for
/// every q, and an even-sized sample answers the lower-middle element at
/// q=50 — nearest-rank, not interpolated). The ascending-sorted
/// precondition is debug-asserted, not silently mis-answered.
inline double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  assert(std::is_sorted(sorted.begin(), sorted.end()) &&
         "percentile() requires an ascending-sorted sample");
  if (q <= 0.0) return sorted.front();
  if (q >= 100.0) return sorted.back();
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q / 100.0 * n));
  if (rank > 0) --rank;
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

/// Outcome of simulate_attempts: the virtual service duration actually
/// spent on the request plus the attempt/retry accounting.
struct AttemptOutcome {
  double dur_ms = 0.0;      ///< virtual ms the lane is occupied
  int attempts = 0;         ///< execution attempts actually priced
  int retries = 0;          ///< backoffs actually taken (== attempts-1 capped)
  bool ok = false;          ///< an attempt succeeded
  bool gave_up_deadline = false;  ///< stopped because no retry budget left
};

/// Prices the bounded retry-with-backoff loop for one dispatched request in
/// virtual time. `idx` keys the FaultPlan, `start` is the lane dispatch
/// time, `t0` the request's ORIGINAL arrival (deadline epoch — for cascades
/// this is the cascade submission time, so the budget spans stages), and
/// `deadline_ms <= 0` means no deadline.
///
/// Semantics (the retry-deadline fix, pinned by test_model_server):
///   - an attempt runs, costing modeled + its injected spike;
///   - success → done; max_retries exhausted → Failed;
///   - otherwise the server asks BEFORE committing to a retry whether the
///     NEXT attempt — backoff + modeled + the next attempt's own spike —
///     still fits the deadline budget. If it cannot, the server gives up
///     right there: the backoff is NOT added to the latency and the retry
///     is NOT counted, because that attempt never ran.
inline AttemptOutcome simulate_attempts(const FaultPlan& faults,
                                        std::uint64_t idx, double modeled,
                                        int max_retries, double backoff_ms,
                                        double start, double t0,
                                        double deadline_ms) {
  AttemptOutcome out;
  for (int a = 0;; ++a) {
    ++out.attempts;
    out.dur_ms += modeled + faults.latency_spike_ms(idx, a);
    if (!faults.transient_fault(idx, a)) {
      out.ok = true;
      return out;
    }
    if (a == max_retries) return out;  // transient fault persisted → Failed
    const double next_cost =
        backoff_ms + modeled + faults.latency_spike_ms(idx, a + 1);
    if (deadline_ms > 0.0 && start + out.dur_ms + next_cost - t0 > deadline_ms) {
      out.gave_up_deadline = true;
      return out;
    }
    out.dur_ms += backoff_ms;
    ++out.retries;
  }
}

/// Min-heap of simulated lane free-times (smallest on top). One heap = the
/// decision concurrency of one server/shard; deliberately independent of
/// the real exec_workers thread count.
struct LaneHeap {
  explicit LaneHeap(int lanes)
      : free_ms(static_cast<std::size_t>(lanes > 0 ? lanes : 1), 0.0) {}

  double min() const noexcept { return free_ms.front(); }

  /// Advances the earliest-free lane to `until`.
  void advance_min(double until) {
    std::pop_heap(free_ms.begin(), free_ms.end(), std::greater<>{});
    free_ms.back() = until;
    std::push_heap(free_ms.begin(), free_ms.end(), std::greater<>{});
  }

  std::vector<double> free_ms;  // heap-ordered, std::greater comparator
};

}  // namespace phonebit::serve
