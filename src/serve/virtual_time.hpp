// PhoneBit serve — shared virtual-time primitives.
//
// The serving determinism story (DESIGN.md §9–§10) hinges on running every
// admission/deadline/retry/placement decision against VIRTUAL time: arrival
// timestamps from the workload trace plus geometry-deterministic modeled
// latencies, draining through a fixed number of simulated service lanes.
// These helpers are that machinery, shared by BatchRunner, ModelServer and
// FleetServer so single-server and fleet placement agree on one clock.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <functional>
#include <vector>

namespace phonebit::serve {

/// Real host wall clock, ms — used only for reporting (`wall_ms`), never
/// for decisions.
inline double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

/// Nearest-rank percentile of an ascending-sorted sample.
inline double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q / 100.0 * n));
  if (rank > 0) --rank;
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

/// Min-heap of simulated lane free-times (smallest on top). One heap = the
/// decision concurrency of one server/shard; deliberately independent of
/// the real exec_workers thread count.
struct LaneHeap {
  explicit LaneHeap(int lanes)
      : free_ms(static_cast<std::size_t>(lanes > 0 ? lanes : 1), 0.0) {}

  double min() const noexcept { return free_ms.front(); }

  /// Advances the earliest-free lane to `until`.
  void advance_min(double until) {
    std::pop_heap(free_ms.begin(), free_ms.end(), std::greater<>{});
    free_ms.back() = until;
    std::push_heap(free_ms.begin(), free_ms.end(), std::greater<>{});
  }

  std::vector<double> free_ms;  // heap-ordered, std::greater comparator
};

}  // namespace phonebit::serve
