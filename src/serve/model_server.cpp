#include "serve/model_server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <functional>
#include <numeric>
#include <utility>

#include "core/artifact.hpp"
#include "serve/virtual_time.hpp"

namespace phonebit::serve {

ModelServer::ModelServer(core::Engine& engine, ServerConfig config,
                         FaultPlan faults, std::string name)
    : engine_(engine), config_(config), faults_(faults),
      name_(name.empty() ? "model-server" : std::move(name)) {}

ModelServer::Entry* ModelServer::find_entry(const std::string& model) {
  for (Entry& e : repo_) {
    if (e.model == model) return &e;
  }
  return nullptr;
}

const ModelServer::Entry* ModelServer::find_entry(
    const std::string& model) const {
  for (const Entry& e : repo_) {
    if (e.model == model) return &e;
  }
  return nullptr;
}

ModelServer::Snapshot ModelServer::snapshot(const std::string& model) const {
  std::lock_guard<std::mutex> lock(repo_mu_);
  const Entry* e = find_entry(model);
  if (e == nullptr) return {};
  return Snapshot{e->artifact, e->runner, e->version};
}

std::shared_ptr<const artifact::LoadedArtifact> ModelServer::checked_load(
    const std::string& path) {
  // Every load attempt consumes one fault-sequence number BEFORE the real
  // load, so an injected failure is deterministic no matter how the real
  // filesystem behaves.
  const std::uint64_t seq = load_seq_++;
  PB_CHECK(!faults_.artifact_load_fails(seq),
           "ModelServer '" << name_ << "': injected artifact-load fault for '"
                           << path << "' (load " << seq << ")");
  return engine_.load_artifact_shared(path);
}

void ModelServer::load_model(const std::string& model,
                             const std::string& path) {
  std::lock_guard<std::mutex> lock(repo_mu_);
  PB_CHECK(find_entry(model) == nullptr,
           "ModelServer '" << name_ << "': model '" << model
                           << "' is already loaded — use swap_model");
  // checked_load throws on any validation/fault failure, in which case
  // nothing was registered.
  auto art = checked_load(path);
  Entry e;
  e.model = model;
  e.artifact = art;
  e.version = 1;
  e.runner = std::make_shared<BatchRunner>(
      engine_, art, config_.exec_workers, name_ + ":" + model + "@v1");
  repo_.push_back(std::move(e));
}

void ModelServer::swap_model(const std::string& model,
                             const std::string& path) {
  std::lock_guard<std::mutex> lock(repo_mu_);
  Entry* e = find_entry(model);
  PB_CHECK(e != nullptr, "ModelServer '" << name_ << "': cannot swap model '"
                                         << model << "' — not loaded");
  // Load + validate FIRST: if this throws, the entry is untouched and the
  // old artifact keeps serving (rollback is the no-op).
  auto art = checked_load(path);
  e->artifact = art;
  ++e->version;
  // A fresh runner bound to the new artifact; in-flight batches hold the
  // old runner via their own shared_ptr and drain on the old plan.
  e->runner = std::make_shared<BatchRunner>(
      engine_, art, config_.exec_workers,
      name_ + ":" + model + "@v" + std::to_string(e->version));
}

std::uint64_t ModelServer::version(const std::string& model) const {
  std::lock_guard<std::mutex> lock(repo_mu_);
  const Entry* e = find_entry(model);
  return e != nullptr ? e->version : 0;
}

std::vector<std::string> ModelServer::models() const {
  std::lock_guard<std::mutex> lock(repo_mu_);
  std::vector<std::string> names;
  names.reserve(repo_.size());
  for (const Entry& e : repo_) names.push_back(e.model);
  return names;
}

double ModelServer::modeled_ms_for(const Snapshot& snap,
                                   const core::Blob& input) {
  const core::BlobDesc desc = core::describe_blob(input);
  const void* key = &snap.artifact->plan;
  for (const ProbeEntry& p : probe_cache_) {
    if (p.plan == key && p.desc == desc) return p.modeled_ms;
  }
  // First sight of this (artifact, shape): one probe forward on the
  // server's own session measures the modeled device latency every later
  // virtual-time decision uses. Modeled time is a pure function of the
  // plan and the input GEOMETRY, so one probe covers every request of the
  // shape (test_artifact pins this determinism).
  if (probe_ == nullptr) {
    probe_ = std::make_unique<core::ExecSession>(engine_.create_session());
  }
  probe_->reset_profile();
  const core::ForwardResult r = snap.artifact->plan.run(*probe_, input);
  probe_cache_.push_back(ProbeEntry{key, desc, r.modeled_ms});
  return r.modeled_ms;
}

ServerSummary ModelServer::run(std::vector<Request> workload,
                               std::vector<SwapEvent> swaps) {
  PB_CHECK(!running_.exchange(true, std::memory_order_acq_rel),
           "ModelServer '" << name_
                           << "': run called concurrently — a server serves "
                              "one trace at a time");
  struct RunningGuard {
    std::atomic<bool>& flag;
    ~RunningGuard() { flag.store(false, std::memory_order_release); }
  } guard{running_};

  const double wall0 = now_ms();
  ServerSummary summary;
  summary.requests = static_cast<int>(workload.size());
  summary.results.resize(workload.size());

  // Process arrivals in virtual-time order, stable in submission order for
  // ties — fault keying stays on the SUBMISSION index, so reordering equal
  // timestamps cannot change a verdict.
  std::vector<std::size_t> order(workload.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&workload](std::size_t a, std::size_t b) {
                     return workload[a].arrival_ms < workload[b].arrival_ms;
                   });
  std::stable_sort(swaps.begin(), swaps.end(),
                   [](const SwapEvent& a, const SwapEvent& b) {
                     return a.at_ms < b.at_ms;
                   });

  // A scheduled swap applies the moment virtual time passes at_ms — either
  // at an arrival or at a dispatch, whichever the timeline reaches first.
  std::size_t swap_cursor = 0;
  auto apply_swaps_until = [this, &swaps, &swap_cursor, &summary](double t) {
    while (swap_cursor < swaps.size() && swaps[swap_cursor].at_ms <= t) {
      const SwapEvent& ev = swaps[swap_cursor++];
      try {
        swap_model(ev.model, ev.path);
        ++summary.swaps;
      } catch (const Error&) {
        // Injected load fault or a corrupt/over-budget artifact: the old
        // version keeps serving — the swap rolled back.
        ++summary.swap_rollbacks;
      }
    }
  };

  // --- Phase 1: deterministic admission/deadline/retry simulation -------
  //
  // `lanes` simulated service lanes drain a single FIFO admission queue.
  // `waiting` holds the dispatch times of admitted-but-not-yet-dispatched
  // requests (nondecreasing, so expiring the front is enough). All times
  // are virtual ms; nothing here depends on host timing or exec_workers.
  LaneHeap lanes(config_.lanes);
  std::deque<double> waiting;
  struct ExecGroup {
    std::shared_ptr<BatchRunner> runner;
    std::vector<std::size_t> indices;
  };
  std::vector<ExecGroup> groups;
  std::vector<std::shared_ptr<const artifact::LoadedArtifact>> pinned;
  struct PerModelDepth {
    std::string model;
    int max_depth = 0;
  };
  std::vector<PerModelDepth> depths;
  auto note_depth = [&depths, &summary](const std::string& model, int d) {
    summary.max_queue_depth = std::max(summary.max_queue_depth, d);
    for (PerModelDepth& e : depths) {
      if (e.model == model) {
        e.max_depth = std::max(e.max_depth, d);
        return;
      }
    }
    depths.push_back(PerModelDepth{model, d});
  };

  for (const std::size_t idx : order) {
    Request& rq = workload[idx];
    RequestResult& rr = summary.results[idx];
    const double t = std::max(rq.arrival_ms, 0.0);
    apply_swaps_until(t);

    // Requests whose dispatch time has passed have left the queue.
    while (!waiting.empty() && waiting.front() <= t) waiting.pop_front();
    const int depth = static_cast<int>(waiting.size());
    note_depth(rq.model, depth);

    Snapshot snap = snapshot(rq.model);
    if (snap.artifact == nullptr) {
      rr.status.code = StatusCode::kFailed;
      rr.status.error = "model '" + rq.model + "' is not loaded";
      continue;
    }
    rr.plan_version = snap.version;

    // Load shedding, reject-newest: past the watermark the arriving
    // request is refused before it costs anything.
    if (depth >= config_.queue_limit) {
      rr.status.code = StatusCode::kShed;
      continue;
    }

    // Dispatch: the request waits until the earliest lane frees up. A
    // swap scheduled during the wait applies before the request routes —
    // new requests route to the new plan, in-flight ones keep theirs.
    const double start = std::max(t, lanes.min());
    apply_swaps_until(start);
    snap = snapshot(rq.model);
    rr.plan_version = snap.version;
    rr.queue_ms = start - t;
    note_depth(rq.model, static_cast<int>(waiting.size()) + 1);
    waiting.push_back(start);

    const double deadline =
        rq.deadline_ms > 0.0
            ? rq.deadline_ms
            : (rq.deadline_ms < 0.0 ? 0.0 : config_.default_deadline_ms);

    // Deadline shed happens at dispatch, BEFORE execution: the lane pops
    // the expired request, drops it at zero cost and takes the next one.
    if (deadline > 0.0 && start - t > deadline) {
      rr.status.code = StatusCode::kDeadlineExceeded;
      rr.latency_ms = start - t;
      continue;
    }

    // Admission-time validation: a request whose blob does not match the
    // plan's descriptor can never run — fail it as a value, costing the
    // lane nothing (one poisoned input, zero collateral damage).
    const core::BlobDesc desc = core::describe_blob(rq.input);
    if (!(desc == snap.artifact->plan.input())) {
      rr.status.code = StatusCode::kFailed;
      rr.status.error = "model '" + rq.model + "' serves " +
                        snap.artifact->plan.input().str() + ", got " +
                        desc.str();
      continue;
    }

    // Attempt loop, virtual time: each attempt costs the plan's modeled
    // latency plus any injected spike; an injected transient failure
    // retries after a backoff while both the retry budget AND the
    // deadline budget allow another full attempt (simulate_attempts,
    // virtual_time.hpp — the give-up check prices the NEXT attempt,
    // backoff + spike included, BEFORE committing to it).
    const double modeled = modeled_ms_for(snap, rq.input);
    const AttemptOutcome at = simulate_attempts(
        faults_, idx, modeled, config_.max_retries, config_.retry_backoff_ms,
        start, t, deadline);
    rr.attempts = at.attempts;
    rr.retries = at.retries;
    if (at.ok) {
      rr.status.code = StatusCode::kOk;
    } else if (at.gave_up_deadline) {
      rr.status.code = StatusCode::kDeadlineExceeded;
    } else {
      rr.status.code = StatusCode::kFailed;
      rr.status.error = "transient fault persisted after " +
                        std::to_string(at.attempts) + " attempts";
    }
    summary.retries += rr.retries;
    lanes.advance_min(start + at.dur_ms);
    rr.latency_ms = start + at.dur_ms - t;

    if (rr.status.ok()) {
      // Queue for real execution, grouped by the runner (= model version)
      // that served it. The pinned artifact keeps the version alive even
      // if a swap replaces it before phase 2 drains.
      pinned.push_back(snap.artifact);
      ExecGroup* g = nullptr;
      for (ExecGroup& cand : groups) {
        if (cand.runner == snap.runner) g = &cand;
      }
      if (g == nullptr) {
        groups.push_back(ExecGroup{snap.runner, {}});
        g = &groups.back();
      }
      g->indices.push_back(idx);
    }
  }
  // Swaps scheduled after the last arrival still apply (the server's state
  // after the trace reflects every event in it).
  if (!swaps.empty()) apply_swaps_until(swaps.back().at_ms);

  // --- Phase 2: real execution of the admitted requests -----------------
  //
  // Only now do forwards run — shed and expired requests never executed.
  // Each group runs as one batch on its version's BatchRunner, so outputs
  // are bit-exact with a standalone run of that plan regardless of worker
  // count; an unexpected execution failure downgrades that request (and
  // only that request) to kFailed.
  for (ExecGroup& g : groups) {
    std::vector<core::Blob> inputs;
    inputs.reserve(g.indices.size());
    for (const std::size_t idx : g.indices) {
      inputs.push_back(std::move(workload[idx].input));
    }
    BatchSummary batch = g.runner->run(std::move(inputs));
    for (std::size_t k = 0; k < g.indices.size(); ++k) {
      RequestResult& rr = summary.results[g.indices[k]];
      if (batch.statuses[k].ok()) {
        rr.result = std::move(batch.results[k]);
      } else {
        rr.status = std::move(batch.statuses[k]);
      }
    }
  }

  // --- Accounting: every request resolves to exactly one status ---------
  struct PerModelAgg {
    ModelStats stats;
    std::vector<double> ok_latency;
  };
  std::vector<PerModelAgg> agg;
  auto model_agg = [&agg](const std::string& model) -> PerModelAgg& {
    for (PerModelAgg& e : agg) {
      if (e.stats.model == model) return e;
    }
    agg.push_back(PerModelAgg{});
    agg.back().stats.model = model;
    return agg.back();
  };
  for (std::size_t i = 0; i < workload.size(); ++i) {
    const RequestResult& rr = summary.results[i];
    PerModelAgg& m = model_agg(workload[i].model);
    ++m.stats.requests;
    m.stats.retries += rr.retries;
    switch (rr.status.code) {
      case StatusCode::kOk:
        ++summary.ok;
        ++m.stats.ok;
        m.ok_latency.push_back(rr.latency_ms);
        m.stats.max_ms = std::max(m.stats.max_ms, rr.latency_ms);
        break;
      case StatusCode::kShed:
        ++summary.shed;
        ++m.stats.shed;
        break;
      case StatusCode::kDeadlineExceeded:
        ++summary.deadline_exceeded;
        ++m.stats.deadline_exceeded;
        break;
      case StatusCode::kFailed:
        ++summary.failed;
        ++m.stats.failed;
        break;
    }
  }
  for (PerModelAgg& m : agg) {
    std::sort(m.ok_latency.begin(), m.ok_latency.end());
    m.stats.p50_ms = percentile(m.ok_latency, 50.0);
    m.stats.p99_ms = percentile(m.ok_latency, 99.0);
    for (const PerModelDepth& d : depths) {
      if (d.model == m.stats.model) m.stats.max_queue_depth = d.max_depth;
    }
    summary.models.push_back(std::move(m.stats));
  }
  summary.wall_ms = now_ms() - wall0;
  return summary;
}

const ModelServer::CascadeProbeEntry& ModelServer::cascade_probe(
    const Snapshot& snap, const core::Blob& input) {
  const core::BlobDesc desc = core::describe_blob(input);
  const void* key = &snap.artifact->plan;
  for (const CascadeProbeEntry& p : cascade_probe_cache_) {
    if (p.plan == key && p.desc == desc) return p;
  }
  if (probe_ == nullptr) {
    probe_ = std::make_unique<core::ExecSession>(engine_.create_session());
  }
  // Two probe forwards per (plan, shape): a FILL run against an empty
  // plane cache (the split kernel's cost is unchanged, so this doubles as
  // the plain-cost probe) and — when the plan actually filled the cache,
  // i.e. it starts with an interior-split input conv — a REUSE run against
  // the filled cache, pricing the split-skipped path. Both are geometry-
  // pure, so one pair of probes covers every request of the shape.
  core::InputPlaneCache cache;
  core::RunOptions ro;
  ro.planes = &cache;
  probe_->reset_profile();
  const core::ForwardResult fill = snap.artifact->plan.run(*probe_, input, ro);
  CascadeProbeEntry e;
  e.plan = key;
  e.desc = desc;
  e.plain_ms = fill.modeled_ms;
  e.cache_active = cache.filled;
  e.reuse_ms = e.plain_ms;
  if (e.cache_active) {
    probe_->reset_profile();
    const core::ForwardResult reuse =
        snap.artifact->plan.run(*probe_, input, ro);
    e.reuse_ms = reuse.modeled_ms;
  }
  cascade_probe_cache_.push_back(e);
  return cascade_probe_cache_.back();
}

CascadeSummary ModelServer::run_cascade(const CascadeSpec& spec,
                                        std::vector<Request> workload,
                                        std::vector<SwapEvent> swaps) {
  validate_cascade(spec, "ModelServer '" + name_ + "'");
  PB_CHECK(!running_.exchange(true, std::memory_order_acq_rel),
           "ModelServer '" << name_
                           << "': run called concurrently — a server serves "
                              "one trace at a time");
  struct RunningGuard {
    std::atomic<bool>& flag;
    ~RunningGuard() { flag.store(false, std::memory_order_release); }
  } guard{running_};

  const double wall0 = now_ms();
  const int nstages = static_cast<int>(spec.stages.size());
  CascadeSummary summary;
  summary.requests = static_cast<int>(workload.size());
  summary.results.resize(workload.size());

  std::stable_sort(swaps.begin(), swaps.end(),
                   [](const SwapEvent& a, const SwapEvent& b) {
                     return a.at_ms < b.at_ms;
                   });

  // Pre-resolved swap timeline. Unlike run(), a cascade revisits EARLIER
  // virtual times after later ones — the stage barrier decides every
  // stage-s arrival (including late ones) before any stage-s+1 dispatch —
  // so a monotone "apply swaps up to now" cursor would leak a swap that a
  // late request's stage-s decision pulled in into an early request's
  // stage-s+1 dispatch. Instead the swaps commit to the repository upfront
  // in timestamp order (same load-sequence fault keying, same final repo
  // state) while recording each model's (timestamp, snapshot) history, and
  // every dispatch resolves its artifact AT ITS OWN virtual time.
  struct SwapPoint {
    double at_ms;
    Snapshot snap;
  };
  struct ModelTimeline {
    std::string model;
    Snapshot base;  ///< pre-trace snapshot (artifact may be null)
    std::vector<SwapPoint> points;  ///< committed swaps, timestamp order
  };
  std::vector<ModelTimeline> timelines;
  auto timeline_for = [&timelines, this](const std::string& m) -> ModelTimeline& {
    for (ModelTimeline& tl : timelines) {
      if (tl.model == m) return tl;
    }
    timelines.push_back(ModelTimeline{m, snapshot(m), {}});
    return timelines.back();
  };
  for (const CascadeStageSpec& stage : spec.stages) timeline_for(stage.model);
  for (const SwapEvent& ev : swaps) {
    timeline_for(ev.model);  // capture the base BEFORE the swap commits
    try {
      swap_model(ev.model, ev.path);
      ++summary.swaps;
      timeline_for(ev.model).points.push_back(
          SwapPoint{ev.at_ms, snapshot(ev.model)});
    } catch (const Error&) {
      ++summary.swap_rollbacks;
    }
  }
  auto snapshot_at = [&timelines, this](const std::string& m,
                                        double t) -> Snapshot {
    for (const ModelTimeline& tl : timelines) {
      if (tl.model != m) continue;
      Snapshot s = tl.base;
      for (const SwapPoint& p : tl.points) {
        if (p.at_ms > t) break;
        s = p.snap;
      }
      return s;
    }
    return snapshot(m);
  };

  // Per-request cascade walk state. `arrive` is the virtual time the
  // request reaches its NEXT stage (stage 0: its trace arrival); `planes`
  // is the per-request input bitplane cache the first executed stage fills
  // and later stages reuse; `planes_on` mirrors whether it is filled —
  // known at DECISION time from the probe's cache_active, so pricing never
  // depends on real execution.
  struct Walk {
    double arrive = 0.0;
    bool active = true;
    bool planes_on = false;
    core::InputPlaneCache planes;
  };
  std::vector<Walk> walks(workload.size());
  for (std::size_t i = 0; i < workload.size(); ++i) {
    walks[i].arrive = std::max(workload[i].arrival_ms, 0.0);
    summary.results[i].status.code = StatusCode::kOk;
  }

  // ONE lane heap spans all stages: a cascade serves on the same simulated
  // device as its single-model traces, so stage s+1's dispatches contend
  // with stage s's. Lane free-times only move forward, which deliberately
  // models stage rounds draining in priority order (DESIGN.md §13).
  LaneHeap lanes(config_.lanes);

  struct ExecReq {
    std::size_t idx;
    bool attach_planes;
  };
  struct ExecGroup {
    std::shared_ptr<BatchRunner> runner;
    std::vector<ExecReq> reqs;
  };
  std::vector<std::shared_ptr<const artifact::LoadedArtifact>> pinned;

  std::vector<std::size_t> entrants;
  for (int s = 0; s < nstages; ++s) {
    const CascadeStageSpec& stage = spec.stages[static_cast<std::size_t>(s)];
    // Stage barrier: all stage-s decisions in (stage arrival, submission)
    // order, then all stage-s forwards, then the gates. The ordering is a
    // pure function of virtual time, so the whole walk is deterministic.
    entrants.clear();
    for (std::size_t i = 0; i < workload.size(); ++i) {
      if (walks[i].active) entrants.push_back(i);
    }
    if (entrants.empty()) break;
    std::stable_sort(entrants.begin(), entrants.end(),
                     [&walks](std::size_t a, std::size_t b) {
                       return walks[a].arrive < walks[b].arrive;
                     });

    // Fresh admission queue per stage round (the shared lanes carry the
    // cross-stage load); shed/deadline/desc checks mirror run() exactly.
    std::deque<double> waiting;
    std::vector<ExecGroup> groups;

    for (const std::size_t idx : entrants) {
      Request& rq = workload[idx];
      Walk& wk = walks[idx];
      CascadeRequestResult& rr = summary.results[idx];
      const double t = wk.arrive;
      const double t0 = std::max(rq.arrival_ms, 0.0);

      rr.stages.emplace_back();
      StageOutcome& so = rr.stages.back();

      while (!waiting.empty() && waiting.front() <= t) waiting.pop_front();
      const int depth = static_cast<int>(waiting.size());

      Snapshot snap = snapshot_at(stage.model, t);
      if (snap.artifact == nullptr) {
        so.status.code = StatusCode::kFailed;
        so.status.error = "model '" + stage.model + "' is not loaded";
        rr.status = so.status;
        wk.active = false;
        continue;
      }
      so.plan_version = snap.version;

      if (depth >= config_.queue_limit) {
        so.status.code = StatusCode::kShed;
        rr.status = so.status;
        rr.latency_ms = t - t0;
        wk.active = false;
        continue;
      }

      const double start = std::max(t, lanes.min());
      snap = snapshot_at(stage.model, start);
      so.plan_version = snap.version;
      so.queue_ms = start - t;
      rr.queue_ms += so.queue_ms;
      waiting.push_back(start);

      const double deadline =
          rq.deadline_ms > 0.0
              ? rq.deadline_ms
              : (rq.deadline_ms < 0.0 ? 0.0 : config_.default_deadline_ms);

      // CASCADE-level deadline: the budget is measured from the request's
      // ORIGINAL arrival t0, so stage s inherits what earlier stages left.
      if (deadline > 0.0 && start - t0 > deadline) {
        so.status.code = StatusCode::kDeadlineExceeded;
        so.latency_ms = start - t;
        rr.status = so.status;
        rr.latency_ms = start - t0;
        wk.active = false;
        continue;
      }

      const core::BlobDesc desc = core::describe_blob(rq.input);
      if (!(desc == snap.artifact->plan.input())) {
        so.status.code = StatusCode::kFailed;
        so.status.error = "cascade '" + spec.name + "' stage " +
                          std::to_string(s) + " ('" + stage.model +
                          "') serves " + snap.artifact->plan.input().str() +
                          ", got " + desc.str();
        rr.status = so.status;
        wk.active = false;
        continue;
      }

      const CascadeProbeEntry& probe = cascade_probe(snap, rq.input);
      const bool reuse = wk.planes_on && probe.cache_active;
      const double modeled = reuse ? probe.reuse_ms : probe.plain_ms;
      const AttemptOutcome at = simulate_attempts(
          faults_, cascade_fault_key(idx, s), modeled, config_.max_retries,
          config_.retry_backoff_ms, start, t0, deadline);
      so.attempts = at.attempts;
      so.retries = at.retries;
      so.reused_planes = reuse;
      lanes.advance_min(start + at.dur_ms);
      so.latency_ms = start + at.dur_ms - t;
      if (!at.ok) {
        so.status.code = at.gave_up_deadline ? StatusCode::kDeadlineExceeded
                                             : StatusCode::kFailed;
        if (!at.gave_up_deadline) {
          so.status.error = "transient fault persisted after " +
                            std::to_string(at.attempts) + " attempts";
        }
        rr.status = so.status;
        rr.latency_ms = start + at.dur_ms - t0;
        wk.active = false;
        continue;
      }

      so.status.code = StatusCode::kOk;
      wk.arrive = start + at.dur_ms;
      pinned.push_back(snap.artifact);
      ExecGroup* g = nullptr;
      for (ExecGroup& cand : groups) {
        if (cand.runner == snap.runner) g = &cand;
      }
      if (g == nullptr) {
        groups.push_back(ExecGroup{snap.runner, {}});
        g = &groups.back();
      }
      g->reqs.push_back(ExecReq{idx, probe.cache_active});
      // Decision-time knowledge: an Ok run through a cache-active plan
      // leaves the request's planes filled for its later stages.
      wk.planes_on = wk.planes_on || probe.cache_active;
    }

    // Stage-s phase 2: real forwards of this stage's admitted requests.
    // Inputs are BORROWED — every stage reads the same original blob — and
    // cache-active requests hand their plane cache to the runner.
    for (ExecGroup& g : groups) {
      std::vector<const core::Blob*> inputs;
      std::vector<core::InputPlaneCache*> planes;
      inputs.reserve(g.reqs.size());
      planes.reserve(g.reqs.size());
      for (const ExecReq& er : g.reqs) {
        inputs.push_back(&workload[er.idx].input);
        planes.push_back(er.attach_planes ? &walks[er.idx].planes : nullptr);
      }
      BatchSummary batch = g.runner->run(inputs, planes);
      for (std::size_t k = 0; k < g.reqs.size(); ++k) {
        const std::size_t idx = g.reqs[k].idx;
        CascadeRequestResult& rr = summary.results[idx];
        StageOutcome& so = rr.stages.back();
        if (!batch.statuses[k].ok()) {
          so.status = batch.statuses[k];
          rr.status = std::move(batch.statuses[k]);
          walks[idx].active = false;
          continue;
        }
        rr.result = std::move(batch.results[k]);
      }
    }

    // Gates: sequenced after the stage barrier, so every verdict is read
    // off a finished forward. The LAST stage's gate is ignored — reaching
    // it Ok completes the cascade as a full run.
    for (ExecGroup& g : groups) {
      for (const ExecReq& er : g.reqs) {
        Walk& wk = walks[er.idx];
        if (!wk.active) continue;  // execution failure above
        CascadeRequestResult& rr = summary.results[er.idx];
        StageOutcome& so = rr.stages.back();
        const double t0 = std::max(workload[er.idx].arrival_ms, 0.0);
        if (s + 1 == nstages) {
          rr.latency_ms = wk.arrive - t0;
          wk.active = false;
          continue;
        }
        const GateVerdict v = evaluate_gate(stage.gate, rr.result.output);
        if (!v.ok) {
          so.status.code = StatusCode::kFailed;
          so.status.error = "cascade '" + spec.name + "' stage " +
                            std::to_string(s) + " gate: " + v.error;
          rr.status = so.status;
          rr.latency_ms = wk.arrive - t0;
          wk.active = false;
          continue;
        }
        if (v.pass) {
          so.gate_passed = true;
        } else {
          rr.gated_out = true;
          rr.latency_ms = wk.arrive - t0;
          wk.active = false;
        }
      }
    }
  }

  finalize_cascade_summary(summary, spec);
  summary.wall_ms = now_ms() - wall0;
  return summary;
}

}  // namespace phonebit::serve
