#include "serve/model_server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <functional>
#include <numeric>
#include <utility>

#include "core/artifact.hpp"
#include "serve/virtual_time.hpp"

namespace phonebit::serve {

ModelServer::ModelServer(core::Engine& engine, ServerConfig config,
                         FaultPlan faults, std::string name)
    : engine_(engine), config_(config), faults_(faults),
      name_(name.empty() ? "model-server" : std::move(name)) {}

ModelServer::Entry* ModelServer::find_entry(const std::string& model) {
  for (Entry& e : repo_) {
    if (e.model == model) return &e;
  }
  return nullptr;
}

const ModelServer::Entry* ModelServer::find_entry(
    const std::string& model) const {
  for (const Entry& e : repo_) {
    if (e.model == model) return &e;
  }
  return nullptr;
}

ModelServer::Snapshot ModelServer::snapshot(const std::string& model) const {
  std::lock_guard<std::mutex> lock(repo_mu_);
  const Entry* e = find_entry(model);
  if (e == nullptr) return {};
  return Snapshot{e->artifact, e->runner, e->version};
}

std::shared_ptr<const artifact::LoadedArtifact> ModelServer::checked_load(
    const std::string& path) {
  // Every load attempt consumes one fault-sequence number BEFORE the real
  // load, so an injected failure is deterministic no matter how the real
  // filesystem behaves.
  const std::uint64_t seq = load_seq_++;
  PB_CHECK(!faults_.artifact_load_fails(seq),
           "ModelServer '" << name_ << "': injected artifact-load fault for '"
                           << path << "' (load " << seq << ")");
  return engine_.load_artifact_shared(path);
}

void ModelServer::load_model(const std::string& model,
                             const std::string& path) {
  std::lock_guard<std::mutex> lock(repo_mu_);
  PB_CHECK(find_entry(model) == nullptr,
           "ModelServer '" << name_ << "': model '" << model
                           << "' is already loaded — use swap_model");
  // checked_load throws on any validation/fault failure, in which case
  // nothing was registered.
  auto art = checked_load(path);
  Entry e;
  e.model = model;
  e.artifact = art;
  e.version = 1;
  e.runner = std::make_shared<BatchRunner>(
      engine_, art, config_.exec_workers, name_ + ":" + model + "@v1");
  repo_.push_back(std::move(e));
}

void ModelServer::swap_model(const std::string& model,
                             const std::string& path) {
  std::lock_guard<std::mutex> lock(repo_mu_);
  Entry* e = find_entry(model);
  PB_CHECK(e != nullptr, "ModelServer '" << name_ << "': cannot swap model '"
                                         << model << "' — not loaded");
  // Load + validate FIRST: if this throws, the entry is untouched and the
  // old artifact keeps serving (rollback is the no-op).
  auto art = checked_load(path);
  e->artifact = art;
  ++e->version;
  // A fresh runner bound to the new artifact; in-flight batches hold the
  // old runner via their own shared_ptr and drain on the old plan.
  e->runner = std::make_shared<BatchRunner>(
      engine_, art, config_.exec_workers,
      name_ + ":" + model + "@v" + std::to_string(e->version));
}

std::uint64_t ModelServer::version(const std::string& model) const {
  std::lock_guard<std::mutex> lock(repo_mu_);
  const Entry* e = find_entry(model);
  return e != nullptr ? e->version : 0;
}

std::vector<std::string> ModelServer::models() const {
  std::lock_guard<std::mutex> lock(repo_mu_);
  std::vector<std::string> names;
  names.reserve(repo_.size());
  for (const Entry& e : repo_) names.push_back(e.model);
  return names;
}

double ModelServer::modeled_ms_for(const Snapshot& snap,
                                   const core::Blob& input) {
  const core::BlobDesc desc = core::describe_blob(input);
  const void* key = &snap.artifact->plan;
  for (const ProbeEntry& p : probe_cache_) {
    if (p.plan == key && p.desc == desc) return p.modeled_ms;
  }
  // First sight of this (artifact, shape): one probe forward on the
  // server's own session measures the modeled device latency every later
  // virtual-time decision uses. Modeled time is a pure function of the
  // plan and the input GEOMETRY, so one probe covers every request of the
  // shape (test_artifact pins this determinism).
  if (probe_ == nullptr) {
    probe_ = std::make_unique<core::ExecSession>(engine_.create_session());
  }
  probe_->reset_profile();
  const core::ForwardResult r = snap.artifact->plan.run(*probe_, input);
  probe_cache_.push_back(ProbeEntry{key, desc, r.modeled_ms});
  return r.modeled_ms;
}

ServerSummary ModelServer::run(std::vector<Request> workload,
                               std::vector<SwapEvent> swaps) {
  PB_CHECK(!running_.exchange(true, std::memory_order_acq_rel),
           "ModelServer '" << name_
                           << "': run called concurrently — a server serves "
                              "one trace at a time");
  struct RunningGuard {
    std::atomic<bool>& flag;
    ~RunningGuard() { flag.store(false, std::memory_order_release); }
  } guard{running_};

  const double wall0 = now_ms();
  ServerSummary summary;
  summary.requests = static_cast<int>(workload.size());
  summary.results.resize(workload.size());

  // Process arrivals in virtual-time order, stable in submission order for
  // ties — fault keying stays on the SUBMISSION index, so reordering equal
  // timestamps cannot change a verdict.
  std::vector<std::size_t> order(workload.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&workload](std::size_t a, std::size_t b) {
                     return workload[a].arrival_ms < workload[b].arrival_ms;
                   });
  std::stable_sort(swaps.begin(), swaps.end(),
                   [](const SwapEvent& a, const SwapEvent& b) {
                     return a.at_ms < b.at_ms;
                   });

  // A scheduled swap applies the moment virtual time passes at_ms — either
  // at an arrival or at a dispatch, whichever the timeline reaches first.
  std::size_t swap_cursor = 0;
  auto apply_swaps_until = [this, &swaps, &swap_cursor, &summary](double t) {
    while (swap_cursor < swaps.size() && swaps[swap_cursor].at_ms <= t) {
      const SwapEvent& ev = swaps[swap_cursor++];
      try {
        swap_model(ev.model, ev.path);
        ++summary.swaps;
      } catch (const Error&) {
        // Injected load fault or a corrupt/over-budget artifact: the old
        // version keeps serving — the swap rolled back.
        ++summary.swap_rollbacks;
      }
    }
  };

  // --- Phase 1: deterministic admission/deadline/retry simulation -------
  //
  // `lanes` simulated service lanes drain a single FIFO admission queue.
  // `waiting` holds the dispatch times of admitted-but-not-yet-dispatched
  // requests (nondecreasing, so expiring the front is enough). All times
  // are virtual ms; nothing here depends on host timing or exec_workers.
  LaneHeap lanes(config_.lanes);
  std::deque<double> waiting;
  struct ExecGroup {
    std::shared_ptr<BatchRunner> runner;
    std::vector<std::size_t> indices;
  };
  std::vector<ExecGroup> groups;
  std::vector<std::shared_ptr<const artifact::LoadedArtifact>> pinned;
  struct PerModelDepth {
    std::string model;
    int max_depth = 0;
  };
  std::vector<PerModelDepth> depths;
  auto note_depth = [&depths, &summary](const std::string& model, int d) {
    summary.max_queue_depth = std::max(summary.max_queue_depth, d);
    for (PerModelDepth& e : depths) {
      if (e.model == model) {
        e.max_depth = std::max(e.max_depth, d);
        return;
      }
    }
    depths.push_back(PerModelDepth{model, d});
  };

  for (const std::size_t idx : order) {
    Request& rq = workload[idx];
    RequestResult& rr = summary.results[idx];
    const double t = std::max(rq.arrival_ms, 0.0);
    apply_swaps_until(t);

    // Requests whose dispatch time has passed have left the queue.
    while (!waiting.empty() && waiting.front() <= t) waiting.pop_front();
    const int depth = static_cast<int>(waiting.size());
    note_depth(rq.model, depth);

    Snapshot snap = snapshot(rq.model);
    if (snap.artifact == nullptr) {
      rr.status.code = StatusCode::kFailed;
      rr.status.error = "model '" + rq.model + "' is not loaded";
      continue;
    }
    rr.plan_version = snap.version;

    // Load shedding, reject-newest: past the watermark the arriving
    // request is refused before it costs anything.
    if (depth >= config_.queue_limit) {
      rr.status.code = StatusCode::kShed;
      continue;
    }

    // Dispatch: the request waits until the earliest lane frees up. A
    // swap scheduled during the wait applies before the request routes —
    // new requests route to the new plan, in-flight ones keep theirs.
    const double start = std::max(t, lanes.min());
    apply_swaps_until(start);
    snap = snapshot(rq.model);
    rr.plan_version = snap.version;
    rr.queue_ms = start - t;
    note_depth(rq.model, static_cast<int>(waiting.size()) + 1);
    waiting.push_back(start);

    const double deadline =
        rq.deadline_ms > 0.0
            ? rq.deadline_ms
            : (rq.deadline_ms < 0.0 ? 0.0 : config_.default_deadline_ms);

    // Deadline shed happens at dispatch, BEFORE execution: the lane pops
    // the expired request, drops it at zero cost and takes the next one.
    if (deadline > 0.0 && start - t > deadline) {
      rr.status.code = StatusCode::kDeadlineExceeded;
      rr.latency_ms = start - t;
      continue;
    }

    // Admission-time validation: a request whose blob does not match the
    // plan's descriptor can never run — fail it as a value, costing the
    // lane nothing (one poisoned input, zero collateral damage).
    const core::BlobDesc desc = core::describe_blob(rq.input);
    if (!(desc == snap.artifact->plan.input())) {
      rr.status.code = StatusCode::kFailed;
      rr.status.error = "model '" + rq.model + "' serves " +
                        snap.artifact->plan.input().str() + ", got " +
                        desc.str();
      continue;
    }

    // Attempt loop, virtual time: each attempt costs the plan's modeled
    // latency plus any injected spike; an injected transient failure
    // retries after a backoff while both the retry budget AND the
    // deadline budget allow another full attempt.
    const double modeled = modeled_ms_for(snap, rq.input);
    double dur = 0.0;
    rr.status.code = StatusCode::kOk;
    for (int a = 0;; ++a) {
      ++rr.attempts;
      dur += modeled + faults_.latency_spike_ms(idx, a);
      if (!faults_.transient_fault(idx, a)) break;  // attempt succeeded
      if (a == config_.max_retries) {
        rr.status.code = StatusCode::kFailed;
        rr.status.error = "transient fault persisted after " +
                          std::to_string(rr.attempts) + " attempts";
        break;
      }
      dur += config_.retry_backoff_ms;
      ++rr.retries;
      if (deadline > 0.0 && start + dur + modeled - t > deadline) {
        // Another full attempt cannot finish inside the deadline — give
        // up now instead of burning a lane on a doomed retry.
        rr.status.code = StatusCode::kDeadlineExceeded;
        break;
      }
    }
    summary.retries += rr.retries;
    lanes.advance_min(start + dur);
    rr.latency_ms = start + dur - t;

    if (rr.status.ok()) {
      // Queue for real execution, grouped by the runner (= model version)
      // that served it. The pinned artifact keeps the version alive even
      // if a swap replaces it before phase 2 drains.
      pinned.push_back(snap.artifact);
      ExecGroup* g = nullptr;
      for (ExecGroup& cand : groups) {
        if (cand.runner == snap.runner) g = &cand;
      }
      if (g == nullptr) {
        groups.push_back(ExecGroup{snap.runner, {}});
        g = &groups.back();
      }
      g->indices.push_back(idx);
    }
  }
  // Swaps scheduled after the last arrival still apply (the server's state
  // after the trace reflects every event in it).
  if (!swaps.empty()) apply_swaps_until(swaps.back().at_ms);

  // --- Phase 2: real execution of the admitted requests -----------------
  //
  // Only now do forwards run — shed and expired requests never executed.
  // Each group runs as one batch on its version's BatchRunner, so outputs
  // are bit-exact with a standalone run of that plan regardless of worker
  // count; an unexpected execution failure downgrades that request (and
  // only that request) to kFailed.
  for (ExecGroup& g : groups) {
    std::vector<core::Blob> inputs;
    inputs.reserve(g.indices.size());
    for (const std::size_t idx : g.indices) {
      inputs.push_back(std::move(workload[idx].input));
    }
    BatchSummary batch = g.runner->run(std::move(inputs));
    for (std::size_t k = 0; k < g.indices.size(); ++k) {
      RequestResult& rr = summary.results[g.indices[k]];
      if (batch.statuses[k].ok()) {
        rr.result = std::move(batch.results[k]);
      } else {
        rr.status = std::move(batch.statuses[k]);
      }
    }
  }

  // --- Accounting: every request resolves to exactly one status ---------
  struct PerModelAgg {
    ModelStats stats;
    std::vector<double> ok_latency;
  };
  std::vector<PerModelAgg> agg;
  auto model_agg = [&agg](const std::string& model) -> PerModelAgg& {
    for (PerModelAgg& e : agg) {
      if (e.stats.model == model) return e;
    }
    agg.push_back(PerModelAgg{});
    agg.back().stats.model = model;
    return agg.back();
  };
  for (std::size_t i = 0; i < workload.size(); ++i) {
    const RequestResult& rr = summary.results[i];
    PerModelAgg& m = model_agg(workload[i].model);
    ++m.stats.requests;
    m.stats.retries += rr.retries;
    switch (rr.status.code) {
      case StatusCode::kOk:
        ++summary.ok;
        ++m.stats.ok;
        m.ok_latency.push_back(rr.latency_ms);
        m.stats.max_ms = std::max(m.stats.max_ms, rr.latency_ms);
        break;
      case StatusCode::kShed:
        ++summary.shed;
        ++m.stats.shed;
        break;
      case StatusCode::kDeadlineExceeded:
        ++summary.deadline_exceeded;
        ++m.stats.deadline_exceeded;
        break;
      case StatusCode::kFailed:
        ++summary.failed;
        ++m.stats.failed;
        break;
    }
  }
  for (PerModelAgg& m : agg) {
    std::sort(m.ok_latency.begin(), m.ok_latency.end());
    m.stats.p50_ms = percentile(m.ok_latency, 50.0);
    m.stats.p99_ms = percentile(m.ok_latency, 99.0);
    for (const PerModelDepth& d : depths) {
      if (d.model == m.stats.model) m.stats.max_queue_depth = d.max_depth;
    }
    summary.models.push_back(std::move(m.stats));
  }
  summary.wall_ms = now_ms() - wall0;
  return summary;
}

}  // namespace phonebit::serve
