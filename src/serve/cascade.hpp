// PhoneBit serve — model cascades on the serving plane.
//
// The Face-Classification-Android deployment shape (ROADMAP, DESIGN.md
// §13): one request routes through a NAMED LINEAR PIPELINE of models —
// detector → classifier — where each stage's output gates the next stage
// through a threshold predicate. A request that fails the gate ("no face
// found") completes right there, Ok, without ever paying for the
// downstream stages; a request that passes advances with the virtual
// clock still running.
//
// Three properties carry over from the single-model serving plane and one
// is new:
//   - DETERMINISM: every stage's admission/deadline/retry/placement
//     decision runs in virtual time against the same simulated lanes as
//     ModelServer/FleetServer, so per-stage shed/deadline/retry counts and
//     shard assignments are bit-identical across real worker counts.
//     Stages execute under a stage barrier (all stage-s decisions, then
//     all stage-s forwards, then the gates), so gate verdicts — which
//     depend on real outputs — are sequenced deterministically too.
//   - CASCADE-LEVEL DEADLINE: a request's deadline budget is measured
//     from its ORIGINAL arrival and spans every stage; stage N+1 inherits
//     whatever stage N left of it.
//   - PER-STAGE HOT-SWAP: stages resolve their artifact snapshot at
//     dispatch exactly like single-model serving, so swapping one stage's
//     model mid-trace never drains (or corrupts) the cascade.
//   - PACKED-INPUT REUSE (new): every stage consumes the request's
//     original input, so the input bitplane split (InputConv2d kernel 1)
//     is a pure function shared by all stages. The first executed stage
//     fills a per-request core::InputPlaneCache; later stages on the same
//     device skip the split kernel entirely. The saving is part of the
//     modeled cost, so fleet placement prices it — a stage is cheaper on
//     the shard that already holds the request's planes (reuse affinity).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "serve/batch_runner.hpp"

namespace phonebit::serve {

/// Threshold predicate deciding whether a stage's output advances the
/// request to the next stage.
struct StageGate {
  enum class Kind {
    kAlways,     ///< every Ok output advances (plain chaining)
    kMaxAtLeast  ///< advance when max(float output) >= threshold
  };
  Kind kind = Kind::kAlways;
  float threshold = 0.0f;  ///< kMaxAtLeast only
};

/// One stage of a cascade: which model serves it and the gate applied to
/// its output. The LAST stage's gate is ignored — its output is the
/// cascade's result.
struct CascadeStageSpec {
  std::string model;
  StageGate gate;
};

/// A named linear pipeline of stages. Every stage consumes the request's
/// ORIGINAL input blob (the packed-input-reuse contract); stages whose
/// plan serves a different input descriptor fail the request as a value.
struct CascadeSpec {
  std::string name;
  std::vector<CascadeStageSpec> stages;
};

/// Gate verdict as a value: `pass` is meaningful only when `ok`. A
/// kMaxAtLeast gate over a non-float output cannot be evaluated — the
/// request fails with `error` instead of guessing.
struct GateVerdict {
  bool ok = false;
  bool pass = false;
  std::string error;
};

/// Evaluates `gate` on a stage's executed output.
GateVerdict evaluate_gate(const StageGate& gate, const core::Blob& output);

/// Virtual-time accounting of ONE stage of one request's cascade walk.
struct StageOutcome {
  RequestStatus status;
  int shard = -1;      ///< fleet placement; -1 on a single-server cascade
  int spillovers = 0;  ///< fleet: better-scored shards skipped because full
  int attempts = 0;
  int retries = 0;
  std::uint64_t plan_version = 0;
  bool reused_planes = false;  ///< priced (and ran) with the split skipped
  bool gate_passed = false;    ///< Ok AND the stage's gate advanced it
  double queue_ms = 0.0;       ///< wait between stage arrival and dispatch
  double latency_ms = 0.0;     ///< stage arrival -> stage completion
};

/// One request's cascade outcome. `status` is the terminal verdict: Ok
/// when the cascade completed (either the last stage ran, or a gate
/// stopped it early — `gated_out` tells them apart); otherwise the status
/// of the stage that killed it. `stages` holds one StageOutcome per stage
/// the request ENTERED, in stage order.
struct CascadeRequestResult {
  RequestStatus status;
  core::ForwardResult result;  ///< final executed stage's result (Ok only)
  std::vector<StageOutcome> stages;
  bool gated_out = false;   ///< completed early at a gate (status is Ok)
  double queue_ms = 0.0;    ///< total virtual queueing across stages
  double latency_ms = 0.0;  ///< original arrival -> terminal event
};

/// Per-stage aggregate over one cascade run.
struct CascadeStageStats {
  std::string model;
  int entered = 0;  ///< requests that reached this stage
  int ok = 0;
  int shed = 0;
  int deadline_exceeded = 0;
  int failed = 0;
  int retries = 0;
  int gate_passed = 0;   ///< Ok outputs the gate advanced
  int gate_stopped = 0;  ///< Ok outputs the gate completed early
  int reused_planes = 0; ///< stage runs that skipped the input split
  /// Nearest-rank percentiles of Ok requests' stage latency.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Everything one run_cascade produced. Accounting invariant:
/// ok + shed + deadline_exceeded + failed == requests, and
/// ok == gated_out + full_runs.
struct CascadeSummary {
  std::string cascade;
  std::vector<CascadeRequestResult> results;  ///< submission order

  int requests = 0;
  int ok = 0;
  int shed = 0;
  int deadline_exceeded = 0;
  int failed = 0;
  int retries = 0;    ///< all stages, all requests
  int gated_out = 0;  ///< Ok requests a gate completed early
  int full_runs = 0;  ///< Ok requests that executed every stage

  int swaps = 0;           ///< ModelServer cascades: committed hot-swaps
  int swap_rollbacks = 0;  ///< ModelServer cascades: failed-load rollbacks

  double wall_ms = 0.0;  ///< real host wall time of the whole run

  std::vector<CascadeStageStats> stages;  ///< one entry per spec stage
  /// Fleet cascades only: requests placed per (stage, shard) — the pinned
  /// histogram the cascade soak asserts bit-identical across worker
  /// counts. Empty on single-server cascades.
  std::vector<std::vector<int>> stage_assignment;
};

/// Validates a spec's static contract (nonempty, <= kMaxCascadeStages
/// stages, every stage names a model); throws InvalidArgument. `who` names
/// the server in the error text.
void validate_cascade(const CascadeSpec& spec, const std::string& who);

/// Fault-plan keying for stage `stage` of submission `idx`: cascade
/// attempts draw from per-(request, stage) streams so the verdicts stay
/// pure functions of the trace, independent of interleaving.
constexpr int kMaxCascadeStages = 64;
inline std::uint64_t cascade_fault_key(std::size_t idx, int stage) {
  return (static_cast<std::uint64_t>(idx) << 6) |
         static_cast<std::uint64_t>(stage);
}

/// Fills the aggregate fields of `summary` (totals, per-stage stats,
/// percentiles) from its per-request results. Callers populate `results`,
/// `requests`, `stage_assignment` and the swap counters first.
void finalize_cascade_summary(CascadeSummary& summary,
                              const CascadeSpec& spec);

}  // namespace phonebit::serve
