// PhoneBit serve — heterogeneous device-fleet serving.
//
// One process, N simulated phones. A FleetServer owns N shards, each shard
// pairing an oclsim device profile (Adreno-class tiers with distinct RAM
// budgets) with its OWN Device + Engine, its own per-profile artifact
// repository (fed by `pbc compile-fleet`, one .pba per profile) and its own
// ModelServer-style simulated lane set. This is the sharding leg of the
// ROADMAP north star: the request stream of millions of users does not fit
// one device, so requests are PLACED across a fleet of unequal devices.
//
// Placement is cost-model aware. For every request the fleet scores each
// candidate shard (a shard serving the request's model at the right shape):
//
//   score(shard) = modeled_ms(plan on shard's profile)
//                + wait_weight * max(0, shard_lane_free - now)
//
// i.e. how long THIS device would take, plus how long the request would
// wait for one of the shard's lanes. Big inputs route to big devices
// because the first term grows fastest on weak profiles; a loaded flagship
// loses to an idle mid-tier once its queue passes the speed gap. Shards are
// tried best-score-first; a full shard (admission queue at its watermark)
// spills the request to the next candidate — reject-to-next-shard before
// rejecting the user — and only when EVERY candidate is full is the request
// shed.
//
// The modeled-latency term needs the plan's cost on every profile WITHOUT
// standing up a live run per shard: one probe forward on the lowest-index
// shard holding the model records the kernel event log, and
// oclsim::replay_modeled_ms re-prices that log for each shard's profile
// (exactly — a KernelCost is geometry-pure, see runtime.hpp). One probe per
// (model, shape) covers the whole fleet.
//
// DETERMINISM extends DESIGN.md §9 to multiple shards: placement, spill,
// shed, deadline and retry verdicts all run in virtual time against the
// per-shard lane heaps, so the per-shard assignment histogram and every
// count are bit-identical across runs and real worker counts (asserted by
// tests/test_fleet.cpp's soak and the `pbc fleet-check` smoke). Real
// forwards then execute per shard, per model version, through the same
// zero-compile / zero-allocation BatchRunner path as a single server —
// outputs are bit-exact across profiles because oclsim kernels do real
// host arithmetic; only the modeled clock differs.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "serve/batch_runner.hpp"
#include "serve/fault.hpp"
#include "serve/model_server.hpp"

namespace phonebit::serve {

/// One shard of the fleet: which simulated phone, and how many real host
/// threads its device pool gets.
struct ShardSpec {
  std::string name;     ///< display name; defaults to "<profile>/<index>"
  std::string profile;  ///< oclsim::profile_by_name key, e.g. "sd855"
  int host_threads = 2; ///< device work-item threads (<=0: hardware)
  /// Overrides the profile's RAM budget in MB (the same SoC ships in
  /// different memory SKUs); 0 keeps the profile default. Artifact loads on
  /// this shard validate against the override.
  std::int64_t ram_mb = 0;
};

/// Fleet-wide serving configuration. Per-shard knobs apply to every shard;
/// `lanes_per_shard` is the SIMULATED decision concurrency of one shard,
/// deliberately independent of `exec_workers` (real threads per shard
/// runner) — changing real parallelism never changes a placement verdict.
struct FleetConfig {
  std::vector<ShardSpec> shards;
  int exec_workers = 2;      ///< real execution threads per shard runner
  int lanes_per_shard = 2;   ///< simulated service lanes per shard
  int queue_limit = 8;       ///< per-shard admission watermark (spill past it)
  int max_retries = 2;       ///< retry budget per request
  double retry_backoff_ms = 0.25;
  double default_deadline_ms = 0.0;  ///< 0 = requests have no deadline
  /// Weight of the virtual queue-wait term in the placement score. 1.0 =
  /// one ms of waiting costs as much as one ms of compute; 0 = route purely
  /// by device speed (the flagship takes everything until it sheds).
  double wait_weight = 1.0;
};

/// Per-request outcome, FleetServer flavor: ModelServer's accounting plus
/// where the request landed and how it got there.
struct FleetRequestResult {
  RequestStatus status;
  core::ForwardResult result;  ///< engaged only when status.ok()

  int shard = -1;      ///< index into config().shards; -1 = never placed
  int spillovers = 0;  ///< better-scored shards skipped because full
  int attempts = 0;
  int retries = 0;
  std::uint64_t plan_version = 0;
  double queue_ms = 0.0;    ///< virtual wait between arrival and dispatch
  double latency_ms = 0.0;  ///< virtual end-to-end latency (0 when shed)
};

/// Per-shard accounting of one fleet run.
struct ShardStats {
  std::string shard;    ///< ShardSpec::name
  std::string profile;  ///< profile key
  int requests = 0;     ///< requests PLACED on this shard
  int ok = 0;
  int deadline_exceeded = 0;
  int failed = 0;
  int retries = 0;
  int max_queue_depth = 0;
  double busy_ms = 0.0;      ///< virtual lane-occupancy total
  double utilization = 0.0;  ///< busy_ms / (lanes_per_shard * makespan_ms)
  double p50_ms = 0.0;       ///< Ok-request virtual latency percentiles
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Everything one FleetServer::run produced. Accounting invariant:
/// ok + shed + deadline_exceeded + failed == requests, and
/// sum(assignment) == requests - shed - failed-before-placement.
struct FleetSummary {
  std::vector<FleetRequestResult> results;  ///< submission order

  int requests = 0;
  int ok = 0;
  int shed = 0;  ///< every candidate shard was full
  int deadline_exceeded = 0;
  int failed = 0;
  int retries = 0;
  int spillovers = 0;  ///< total reject-to-next-shard hops

  double makespan_ms = 0.0;  ///< latest virtual lane-busy instant, fleet-wide
  double wall_ms = 0.0;      ///< real host wall time of the whole run

  std::vector<ShardStats> shards;  ///< one entry per shard, fleet order
  /// Requests placed per shard (== shards[i].requests): the pinned
  /// histogram the soak test asserts bit-identical across worker counts.
  std::vector<int> assignment;
};

/// The fleet control plane. Construction builds every shard's Device +
/// Engine; load_model_on/swap_model_on manage the per-shard repositories
/// (thread-safe, also against a concurrent run()); run() places and serves
/// a workload trace.
class FleetServer {
 public:
  explicit FleetServer(FleetConfig config, FaultPlan faults = {},
                       std::string name = {});

  int shard_count() const noexcept { return static_cast<int>(shards_.size()); }
  const FleetConfig& config() const noexcept { return config_; }
  const FaultPlan& faults() const noexcept { return faults_; }
  const std::string& name() const noexcept { return name_; }

  /// The shard's engine / simulated device profile (shard ∈ [0, count)).
  core::Engine& engine(int shard);
  const oclsim::DeviceProfile& shard_profile(int shard) const;
  const ShardSpec& shard_spec(int shard) const;

  /// Loads one .pba per shard under one model name: per_shard_paths[i]
  /// loads on shard i (an empty string skips that shard — the model simply
  /// is not served there). Each attempted load is all-or-nothing per shard;
  /// a failure (fault seam, corrupt file, over-RAM for that profile) throws
  /// after earlier shards registered — callers wanting transactional
  /// all-shards semantics load per shard themselves.
  void load_model(const std::string& model,
                  const std::vector<std::string>& per_shard_paths);

  /// Loads the .pba at `path` into shard `shard`'s repository (version 1).
  /// Validated against THAT shard's profile: an artifact over the profile's
  /// RAM budget throws OutOfMemoryError (itemized) and registers nothing.
  void load_model_on(int shard, const std::string& model,
                     const std::string& path);

  /// Atomic per-shard hot-swap: load + validate against the shard's
  /// profile FIRST; only a fully validated artifact replaces the entry
  /// (version + 1). On failure the exception escapes and the OLD version
  /// keeps serving on that shard — rollback across profiles is the no-op.
  void swap_model_on(int shard, const std::string& model,
                     const std::string& path);

  /// Current version of `model` on `shard` (1 = initial load), 0 if absent.
  std::uint64_t version_on(int shard, const std::string& model) const;

  /// Serves a workload trace: deterministic virtual-time placement across
  /// the shards, then parallel per-shard execution of the admitted
  /// requests. One run() at a time per fleet (concurrent calls throw);
  /// swap_model_on from OTHER threads stays legal.
  FleetSummary run(std::vector<Request> workload);

  /// Serves a workload trace through a model CASCADE across the fleet
  /// (cascade.hpp, DESIGN.md §13): every stage of a request is placed
  /// INDEPENDENTLY — stage N+1 may land on a different shard than stage N —
  /// by the same cost-plus-wait score as run(), with one cascade twist:
  /// once a stage has filled the request's input plane cache on a shard,
  /// that shard prices later stages at the split-skipped (reuse) cost, so
  /// reuse affinity emerges from scoring instead of being hard-wired. The
  /// deadline budget spans all stages from the original arrival, and the
  /// per-(stage, shard) placement histogram (CascadeSummary::
  /// stage_assignment) is bit-identical across exec_workers. Requests'
  /// `model` fields are ignored (the spec routes).
  CascadeSummary run_cascade(const CascadeSpec& spec,
                             std::vector<Request> workload);

  /// Zero-compile serving surface: distinct descriptors compiled by any
  /// shard runner so far — stays 0 while every request matches its
  /// artifact's descriptor (the acceptance contract).
  std::size_t compiled_plans() const;

  /// Sum of arena growth events over every shard runner's sessions — flat
  /// in steady state (the zero-allocation serving contract).
  int total_arena_growth_events() const;

 private:
  /// One per-shard repository entry (ModelServer::Entry shape).
  struct Entry {
    std::string model;
    std::shared_ptr<const artifact::LoadedArtifact> artifact;
    std::shared_ptr<BatchRunner> runner;
    std::uint64_t version = 0;
  };

  /// A shard: the simulated phone, its engine, its repository and its
  /// probe session (lazily minted for cost probes).
  struct Shard {
    ShardSpec spec;
    oclsim::DeviceProfile profile;
    std::shared_ptr<oclsim::Device> device;
    std::unique_ptr<core::Engine> engine;
    std::vector<Entry> repo;
    std::unique_ptr<core::ExecSession> probe;
  };

  /// Snapshot of one shard's entry taken under the repository lock.
  struct Snapshot {
    std::shared_ptr<const artifact::LoadedArtifact> artifact;
    std::shared_ptr<BatchRunner> runner;
    std::uint64_t version = 0;
  };

  Shard& shard_at(int shard);
  const Shard& shard_at(int shard) const;
  Entry* find_entry(Shard& s, const std::string& model);
  const Entry* find_entry(const Shard& s, const std::string& model) const;
  Snapshot snapshot(int shard, const std::string& model) const;

  /// Loads + validates `path` for shard `shard` (fault seam + that shard's
  /// profile validation). Consumes one fleet-wide load-sequence number for
  /// FaultPlan::artifact_load_fails. Caller holds repo_mu_.
  std::shared_ptr<const artifact::LoadedArtifact> checked_load(
      int shard, const std::string& path);

  const FleetConfig config_;
  const FaultPlan faults_;
  const std::string name_;

  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex repo_mu_;
  std::uint64_t load_seq_ = 0;  ///< fleet-wide load attempts (fault keying)

  /// Probe cache (caller-thread only; guarded by one-run-at-a-time).
  struct ProbeEntry {
    const void* plan = nullptr;
    core::BlobDesc desc{};
    std::vector<double> per_shard_ms;
  };
  std::vector<ProbeEntry> probe_cache_;

  /// Cascade pricing across profiles: the probe shard runs a FILL forward
  /// (empty plane cache — same cost as plain) and, when the plan is
  /// cache-active, a REUSE forward (filled cache, split skipped); both
  /// event logs replay per profile, giving every shard's plain and reuse
  /// cost from one probe pair.
  struct CascadeProbeEntry {
    const void* plan = nullptr;
    core::BlobDesc desc{};
    std::vector<double> plain_ms;  ///< per shard
    std::vector<double> reuse_ms;  ///< per shard
    bool cache_active = false;
  };
  std::vector<CascadeProbeEntry> cascade_probe_cache_;

  std::atomic<bool> running_{false};
};

}  // namespace phonebit::serve
