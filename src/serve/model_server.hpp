// PhoneBit serve — the fault-tolerant serving control plane.
//
// ModelServer is the layer a production deployment talks to: a repository
// of loaded .pba artifacts keyed by model name, fronted by admission
// control (bounded queue with load shedding), per-request deadlines,
// bounded retry-with-backoff for transient faults, and atomic artifact
// hot-swap on a live server. Underneath, every admitted request executes
// through a per-model-version BatchRunner (batch_runner.hpp), so the
// zero-compile / zero-allocation artifact serving path is unchanged.
//
// Failure is a value: every submitted request comes back with exactly one
// RequestStatus — Ok, Shed (rejected at admission, never executed),
// DeadlineExceeded (past its budget before execution could complete), or
// Failed{error} (bad input, exhausted retries). Nothing is lost and one
// poisoned request never destroys its neighbors.
//
// DETERMINISM is the design's organizing trick (DESIGN.md §9): admission,
// deadline, retry and shed decisions run against VIRTUAL time — the
// workload's arrival timestamps plus the engine's deterministic modeled
// device latencies — on a fixed number of simulated service lanes
// (`ServerConfig::lanes`), not against host wall time. The modeled latency
// of a plan depends only on geometry, so the entire decision sequence is a
// pure function of (workload, config, fault plan): the same seed and trace
// produce bit-identical shed/retry/failure counts whether real execution
// uses 1 worker or 16, run after run. Real forwards then execute in
// parallel for the requests that were admitted — requests that were shed
// or expired are never executed at all.
//
// Hot-swap lifecycle: swap_model loads + validates the incoming artifact
// FIRST; only a fully validated artifact replaces the repository entry
// (version bump, fresh BatchRunner). A corrupt or over-budget artifact
// throws and the old model keeps serving — rollback is the no-op. Requests
// capture a shared_ptr to their artifact at dispatch, so in-flight work
// finishes on the old plan while new requests route to the new one; every
// request runs against exactly one plan version, never a mix. Scheduled
// SwapEvents inside a run() trace apply at a virtual timestamp, making the
// version served per request deterministic too.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "serve/batch_runner.hpp"
#include "serve/cascade.hpp"
#include "serve/fault.hpp"

namespace phonebit::serve {

/// One request of a workload trace: which model, what input, when it
/// arrives (virtual ms since trace start) and how long it is willing to
/// wait end-to-end (0 = use ServerConfig::default_deadline_ms; negative =
/// explicitly no deadline).
struct Request {
  std::string model;
  core::Blob input;
  double arrival_ms = 0.0;
  double deadline_ms = 0.0;
};

/// A scheduled hot-swap inside a run() trace: at virtual time `at_ms`,
/// replace `model` with the artifact at `path` (subject to load validation
/// and FaultPlan::artifact_load_fails — a failed load rolls back).
struct SwapEvent {
  double at_ms = 0.0;
  std::string model;
  std::string path;
};

/// Per-request outcome: the status, the forward result (Ok only), and the
/// virtual-time accounting every decision was made with.
struct RequestResult {
  RequestStatus status;
  core::ForwardResult result;  ///< engaged only when status.ok()

  int attempts = 0;  ///< execution attempts accounted (1 + retries), 0 if shed
  int retries = 0;   ///< retries consumed by injected transient faults
  std::uint64_t plan_version = 0;  ///< model version that served (or shed) it
  double queue_ms = 0.0;    ///< virtual wait between arrival and dispatch
  double latency_ms = 0.0;  ///< virtual end-to-end latency (0 when shed)
};

/// Per-model serving statistics, BatchSummary-style.
struct ModelStats {
  std::string model;
  int requests = 0;
  int ok = 0;
  int shed = 0;
  int deadline_exceeded = 0;
  int failed = 0;
  int retries = 0;
  /// Nearest-rank percentiles of Ok requests' virtual end-to-end latency.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  /// Largest admission-queue depth observed at this model's arrivals.
  int max_queue_depth = 0;
};

/// Everything one run() produced: per-request results (submission order)
/// plus the aggregate and per-model accounting. The accounting invariant —
/// ok + shed + deadline_exceeded + failed == requests — is the "zero lost
/// requests" contract.
struct ServerSummary {
  std::vector<RequestResult> results;

  int requests = 0;
  int ok = 0;
  int shed = 0;
  int deadline_exceeded = 0;
  int failed = 0;
  int retries = 0;

  int swaps = 0;            ///< scheduled swaps that committed
  int swap_rollbacks = 0;   ///< scheduled swaps that failed load and rolled back
  int max_queue_depth = 0;  ///< largest admission-queue depth observed

  double wall_ms = 0.0;  ///< real host wall time of the whole run

  std::vector<ModelStats> models;  ///< one entry per model seen in the trace
};

/// Serving configuration. `lanes` is the SIMULATED service concurrency the
/// admission/deadline decisions run against — it is deliberately separate
/// from `exec_workers` (the real threads forwards execute on) so that
/// changing real parallelism never changes a single admission verdict.
struct ServerConfig {
  int exec_workers = 4;  ///< real execution threads per model runner
  int lanes = 4;         ///< simulated service lanes (decision concurrency)
  /// Admission watermark: a request arriving while this many admitted
  /// requests are still waiting (not yet dispatched to a lane) is shed —
  /// reject-newest, the arriving request gets StatusCode::kShed.
  int queue_limit = 8;
  int max_retries = 2;            ///< retry budget per request
  double retry_backoff_ms = 0.25; ///< virtual backoff added before a retry
  double default_deadline_ms = 0.0;  ///< 0 = requests have no deadline
};

/// The multi-model serving control plane. One server fronts one Engine;
/// load_model/swap_model manage the artifact repository (thread-safe, also
/// against a concurrent run()), run() serves a workload trace.
class ModelServer {
 public:
  explicit ModelServer(core::Engine& engine, ServerConfig config = {},
                       FaultPlan faults = {}, std::string name = {});

  /// Loads the .pba at `path` into the repository as `name` (version 1).
  /// Subject to FaultPlan::artifact_load_fails and the engine's device
  /// validation — on any failure the model is NOT registered and the
  /// exception escapes. Re-loading an existing name throws (use swap).
  void load_model(const std::string& name, const std::string& path);

  /// Atomic hot-swap: load + validate the artifact at `path`, then replace
  /// `name`'s entry (version + 1). On load failure the exception escapes
  /// and the OLD artifact keeps serving — a swap is all-or-nothing.
  /// In-flight requests hold their dispatch-time artifact and finish on it.
  void swap_model(const std::string& name, const std::string& path);

  /// Current version of `name` (1 = initial load), 0 if not loaded.
  std::uint64_t version(const std::string& name) const;

  /// Loaded model names, in load order.
  std::vector<std::string> models() const;

  /// Serves a workload trace: deterministic admission/deadline/retry
  /// decisions in virtual time, then parallel execution of the admitted
  /// requests. `swaps` schedules hot-swaps at virtual timestamps inside
  /// the trace. One run() at a time per server (concurrent calls throw,
  /// naming the server); swap_model from OTHER threads stays legal.
  ServerSummary run(std::vector<Request> workload,
                    std::vector<SwapEvent> swaps = {});

  /// Serves a workload trace through a model CASCADE (cascade.hpp,
  /// DESIGN.md §13): each request walks `spec`'s stages in order, every
  /// stage consuming the request's ORIGINAL input; a stage's gate decides
  /// whether the next stage runs. Stage decisions use the same virtual-time
  /// machinery as run() — per-stage shed/deadline/retry counts are
  /// bit-identical across exec_workers — and a request's deadline budget
  /// spans ALL its stages, measured from its original arrival. `swaps`
  /// schedules per-stage hot-swaps at virtual timestamps: a stage resolves
  /// its artifact at dispatch, so one stage swapping never drains the
  /// cascade. Requests' `model` fields are ignored (the spec routes).
  CascadeSummary run_cascade(const CascadeSpec& spec,
                             std::vector<Request> workload,
                             std::vector<SwapEvent> swaps = {});

  const ServerConfig& config() const noexcept { return config_; }
  const FaultPlan& faults() const noexcept { return faults_; }
  const std::string& name() const noexcept { return name_; }

 private:
  /// One repository entry: the loaded artifact, the runner bound to it,
  /// and the version counter. Runners are shared_ptr so a swap can replace
  /// the entry while an older runner finishes its in-flight batch.
  struct Entry {
    std::string model;
    std::shared_ptr<const artifact::LoadedArtifact> artifact;
    std::shared_ptr<BatchRunner> runner;
    std::uint64_t version = 0;
  };

  /// Snapshot of an entry taken under the repository lock at dispatch.
  struct Snapshot {
    std::shared_ptr<const artifact::LoadedArtifact> artifact;
    std::shared_ptr<BatchRunner> runner;
    std::uint64_t version = 0;
  };

  Entry* find_entry(const std::string& model);
  const Entry* find_entry(const std::string& model) const;
  Snapshot snapshot(const std::string& model) const;

  /// Loads + validates `path` (fault seam + device validation). Each call
  /// consumes one load-sequence number for FaultPlan::artifact_load_fails.
  std::shared_ptr<const artifact::LoadedArtifact> checked_load(
      const std::string& path);

  /// Modeled device latency of one forward of `input` through `snap`'s
  /// plan — geometry-deterministic, measured once per (artifact, desc) on
  /// the probe session and cached.
  double modeled_ms_for(const Snapshot& snap, const core::Blob& input);

  core::Engine& engine_;
  const ServerConfig config_;
  const FaultPlan faults_;
  const std::string name_;

  mutable std::mutex repo_mu_;
  std::vector<Entry> repo_;
  std::uint64_t load_seq_ = 0;  ///< artifact loads attempted (fault keying)

  /// Probe session + modeled-latency cache (caller-thread only; guarded by
  /// the one-run-at-a-time contract).
  std::unique_ptr<core::ExecSession> probe_;
  struct ProbeEntry {
    const void* plan = nullptr;
    core::BlobDesc desc{};
    double modeled_ms = 0.0;
  };
  std::vector<ProbeEntry> probe_cache_;

  /// Cascade pricing (DESIGN.md §13): a stage costs `plain_ms` on a cold
  /// request and `reuse_ms` when the request already carries filled input
  /// planes (the split kernel is skipped). `cache_active` records whether
  /// this plan participates in plane caching at all (interior-split input
  /// conv) — measured once per (plan, desc) by probing twice: a fill run
  /// against an empty cache, then a reuse run against the filled one.
  struct CascadeProbeEntry {
    const void* plan = nullptr;
    core::BlobDesc desc{};
    double plain_ms = 0.0;
    double reuse_ms = 0.0;
    bool cache_active = false;
  };
  std::vector<CascadeProbeEntry> cascade_probe_cache_;
  const CascadeProbeEntry& cascade_probe(const Snapshot& snap,
                                         const core::Blob& input);

  std::atomic<bool> running_{false};
};

}  // namespace phonebit::serve
