// PhoneBit serve — multi-request execution on one engine.
//
// The first real serving scenario on top of the session API: a BatchRunner
// fans N independent inputs across a private pool of request workers. Each
// request checks a session out of the shared Engine (private command queue +
// warm arena from the engine's pool) and executes the network's compiled
// ExecutionPlan — the plan (like the network) is const and shared, so all
// requests share one copy of the weights AND one set of ahead-of-time
// kernel selections. Per-request ForwardResults come back in input order
// together with an aggregate throughput/latency summary including p50/p95/
// p99 tail latency.
//
// Failure is a value here, not an exception escape: each request's outcome
// comes back as a RequestStatus next to its result, so one poisoned input
// cannot destroy its neighbors' finished work (run_or_throw keeps the old
// throwing contract for callers that want it).
//
// Request-level parallelism is intentionally a *separate* thread pool from
// the simulated device's work-item pool: request workers block in
// CommandQueue::enqueue while device workers chew through kernel chunks, so
// nesting both on one pool would let a blocked request starve the kernels it
// is waiting on.
#pragma once

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/threadpool.hpp"
#include "core/engine.hpp"
#include "core/network.hpp"
#include "core/plan.hpp"

namespace phonebit::artifact {
struct LoadedArtifact;  // core/artifact.hpp
}

namespace phonebit::serve {

/// Outcome classification of one served request. Every request submitted to
/// the serving layer is accounted for with exactly one of these — nothing is
/// silently dropped (DESIGN.md §9):
///   kOk               the forward ran; `results[i]` holds its output.
///   kShed             rejected at admission (queue over its watermark) —
///                     never executed.
///   kDeadlineExceeded past its deadline before execution could complete —
///                     shed at dispatch or abandoned between retries, never
///                     half-run.
///   kFailed           the request itself failed (bad input, exhausted
///                     transient-fault retries); `error` carries the text.
enum class StatusCode { kOk, kShed, kDeadlineExceeded, kFailed };

const char* status_name(StatusCode c) noexcept;

struct RequestStatus {
  StatusCode code = StatusCode::kOk;
  std::string error;  ///< kFailed only: the failing request's error text

  bool ok() const noexcept { return code == StatusCode::kOk; }
};

/// Aggregate outcome of one batch of independent requests.
struct BatchSummary {
  /// Per-request results, in input order. A request that did not reach kOk
  /// leaves its slot default-constructed — its neighbors' results are
  /// preserved regardless.
  std::vector<core::ForwardResult> results;

  /// Per-request outcome, in input order (same length as `results`).
  std::vector<RequestStatus> statuses;

  int requests = 0;
  int ok = 0;      ///< requests with StatusCode::kOk
  int failed = 0;  ///< requests with StatusCode::kFailed
  int workers = 0;

  double wall_ms = 0.0;           ///< host wall time of the whole batch
  double throughput_rps = 0.0;    ///< requests / host wall second
  double total_modeled_ms = 0.0;  ///< sum of per-request modeled device ms
  double mean_modeled_ms = 0.0;   ///< mean per-request modeled latency (Ok)
  double max_modeled_ms = 0.0;    ///< slowest request's modeled latency

  /// Tail latency over the batch's per-request modeled latencies
  /// (nearest-rank percentiles over Ok requests; p50 <= p95 <= p99 <= max).
  double p50_modeled_ms = 0.0;
  double p95_modeled_ms = 0.0;
  double p99_modeled_ms = 0.0;

  /// Per-layer report summed across every Ok request (same layer order as
  /// the network; costs merged with KernelCost::accumulate).
  std::vector<core::LayerReport> merged_layers;
};

/// Runs batches of independent inputs through one (engine, network) pair.
/// The runner owns its worker threads AND one long-lived ExecSession per
/// worker: requests of the same plan reuse the worker's slot-backed
/// activation slab and scratch arena verbatim (the plan's reserve is a
/// warm no-op), so the steady-state per-request hot path performs zero
/// arena growth and zero buffer allocations beyond each request's owned
/// output tensor. Requests execute through the COMPILED path: the runner
/// compiles one ExecutionPlan per distinct input descriptor (lazily, on
/// first sight) and every matching request shares it, so the per-request
/// hot path does no shape inference and no kernel-variant selection.
class BatchRunner {
 public:
  /// `workers` <= 0 selects a small default (4). A runner serves one run()
  /// at a time; create one runner per concurrent batch stream. `name` tags
  /// the runner in error messages (defaults to the network's name).
  BatchRunner(core::Engine& engine, const core::Network& net, int workers = 0,
              std::string name = {});

  /// Serves a LOADED artifact (Engine::load_artifact): every worker runs
  /// the artifact's deserialized ExecutionPlan directly — the deployment
  /// configuration where the serving process never compiles at all.
  /// Requests whose input matches the artifact's descriptor share its plan
  /// (pinned to the artifact's compiled options snapshot — engine
  /// reconfiguration does not touch it); other shapes fall back to the
  /// lazy compile cache against the artifact's network. The runner keeps
  /// the artifact alive for its own lifetime.
  BatchRunner(core::Engine& engine,
              std::shared_ptr<const artifact::LoadedArtifact> artifact,
              int workers = 0, std::string name = {});

  /// Forwards every input, blocking until the whole batch is done. Never
  /// throws for per-request failures: each request's outcome lands in
  /// `statuses` (kOk or kFailed{error}) and a failed request leaves every
  /// neighbor's finished result intact.
  BatchSummary run(std::vector<core::Blob> inputs);

  /// Like run(), but borrowing the inputs and attaching a per-request
  /// InputPlaneCache (cascade packed-input reuse, DESIGN.md §13): the
  /// caller keeps ownership of the blobs — a cascade feeds the SAME input
  /// to several stages without copying it — and `planes[i]` (nullable) is
  /// handed to request i's plan run via RunOptions::planes, so a filled
  /// cache skips the input bitplane split and an empty one is filled for
  /// the request's later stages. `planes` may be empty (no caches) or must
  /// match `inputs` in length. Cache-carrying requests are never fused
  /// into micro-batches — a cache is keyed to ONE single-image input.
  BatchSummary run(const std::vector<const core::Blob*>& inputs,
                   const std::vector<core::InputPlaneCache*>& planes);

  /// Legacy contract: like run(), but rethrows the first failed request's
  /// original exception after the whole batch has drained (all neighbors
  /// still ran to completion first).
  BatchSummary run_or_throw(std::vector<core::Blob> inputs);

  int workers() const noexcept { return pool_.size(); }

  /// Micro-batching (DESIGN.md §11): when `n` > 1, run() fuses up to `n`
  /// consecutive single-image (N == 1) U8 requests of the same shape into
  /// ONE batched forward through a batched (N > 1) compiled plan, then
  /// splits the output rows back to the per-request result slots. The
  /// per-image dispatch overhead (kernel launches, plan walk) amortizes
  /// across the group — the batched plan runs the same launch count as one
  /// image. Grouped requests report the group's modeled/host latency split
  /// evenly; the per-layer report is attributed to the group's first
  /// request. Only plans whose output is a float tensor batch (the
  /// classifier-head serving shape); other requests run singly. Takes
  /// effect on the next run(): the setting is atomic (relaxed — there is
  /// no data it publishes) and run() reads it exactly ONCE at batch start,
  /// so a concurrent set_micro_batch never tears a batch's grouping.
  void set_micro_batch(int n) noexcept {
    micro_batch_.store(n < 1 ? 1 : n, std::memory_order_relaxed);
  }
  int micro_batch() const noexcept {
    return micro_batch_.load(std::memory_order_relaxed);
  }

  /// Fused multi-request forwards performed over this runner's lifetime
  /// (groups of >= 2; singles don't count). Stable hook for tests.
  std::int64_t batched_dispatches() const noexcept {
    return batched_dispatches_.load(std::memory_order_relaxed);
  }

  /// The tag used in this runner's error messages.
  const std::string& name() const noexcept { return name_; }

  /// True while a run() is in flight on some thread (acquire load — safe to
  /// poll from other threads; the value is advisory, a concurrent run() is
  /// still rejected atomically by run itself).
  bool busy() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Distinct input descriptors compiled so far (plan-cache size).
  std::size_t compiled_plans() const;

  /// Worker sessions minted so far (lazily, at most workers()): stable
  /// across batches — sessions are reused, not re-created per request.
  std::size_t sessions() const noexcept { return sessions_.size(); }

  /// Sum of ScratchArena::growth_events over the worker sessions — flat in
  /// steady state (the zero-arena-growth serving contract).
  int total_arena_growth_events() const;

 private:
  /// Returns the cached plan for `desc`, compiling it on first sight.
  std::shared_ptr<const core::ExecutionPlan> plan_for(
      const core::BlobDesc& desc);

  /// Shared body of every run flavor: `inputs` are borrowed (the by-value
  /// overloads keep the owning vector alive on their frame), `planes`
  /// (empty or input-parallel) carries per-request plane caches, and
  /// `first_error` (optional) receives the first failed request's original
  /// exception for rethrowing.
  BatchSummary run_impl(const std::vector<const core::Blob*>& inputs,
                        const std::vector<core::InputPlaneCache*>& planes,
                        std::exception_ptr* first_error);

  core::Engine& engine_;
  const core::Network& net_;
  /// Set on the artifact constructor only: keeps the loaded network (which
  /// `net_` references) and its plan alive, and pins the plan served for
  /// the artifact's input descriptor.
  std::shared_ptr<const artifact::LoadedArtifact> artifact_;
  std::string name_;
  ThreadPool pool_;
  /// One persistent session per worker, created lazily on the run() caller
  /// thread. Worker w exclusively owns sessions_[w] while a batch runs —
  /// which is why a runner serves ONE run() at a time: `running_` turns a
  /// concurrent second call (which would race two forwards onto one
  /// session's activation slab) into an InvalidArgument naming the runner
  /// instead of corruption. The flag is claimed with an acq_rel exchange
  /// and released with a release store, so the losing caller's error path
  /// synchronizes-with the winning run (clean under TSan).
  std::vector<std::unique_ptr<core::ExecSession>> sessions_;
  std::atomic<bool> running_{false};
  std::atomic<int> micro_batch_{1};
  std::atomic<std::int64_t> batched_dispatches_{0};
  mutable std::mutex plan_mu_;
  std::vector<std::pair<core::BlobDesc,
                        std::shared_ptr<const core::ExecutionPlan>>>
      plans_;
};

}  // namespace phonebit::serve
