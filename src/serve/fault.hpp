// PhoneBit serve — deterministic fault injection.
//
// A FaultPlan decides, ahead of time and reproducibly, which serving
// operations fail: transient per-attempt session failures, synthetic
// latency spikes, and artifact-load failures during hot-swap. Every
// decision is a PURE FUNCTION of (seed, operation identity) — a
// counter-based hash, not a shared RNG stream — so the verdicts do not
// depend on thread interleaving, worker count, or the order in which the
// server happens to consult them. That property is what makes the
// robustness suite assertable: the same seed and workload produce
// bit-identical shed/retry/failure counts on 1 worker or 16, run after run
// (tests/test_model_server.cpp).
//
// The plan is threaded through ModelServer's seams (model_server.hpp):
//   - transient_fault(request, attempt): the attempt observes a transient
//     device/session failure; the server retries with backoff.
//   - latency_spike_ms(request, attempt): extra virtual milliseconds the
//     attempt takes (queueing pressure + deadline pressure downstream).
//   - artifact_load_fails(load_seq): the load_seq-th artifact load/swap of
//     the server's lifetime fails; a hot-swap rolls back to the old model.
#pragma once

#include <cstdint>
#include <string>

namespace phonebit::serve {

/// Deterministic fault-injection plan. Default-constructed = fault-free
/// (every rate 0; all queries answer "no fault" without hashing).
struct FaultPlan {
  std::uint64_t seed = 0;

  /// Probability an execution attempt observes a transient failure.
  double transient_rate = 0.0;
  /// Probability an attempt is slowed by a synthetic latency spike...
  double spike_rate = 0.0;
  /// ...of this many virtual milliseconds.
  double spike_ms = 0.0;
  /// Probability an artifact load (initial load or hot-swap) fails.
  double artifact_load_rate = 0.0;

  /// True when any fault class can fire.
  bool enabled() const noexcept {
    return transient_rate > 0.0 || spike_rate > 0.0 ||
           artifact_load_rate > 0.0;
  }

  /// Does attempt `attempt` of request `request` fail transiently?
  bool transient_fault(std::uint64_t request, int attempt) const noexcept;

  /// Synthetic latency added to attempt `attempt` of request `request`
  /// (0.0 when the attempt is not spiked).
  double latency_spike_ms(std::uint64_t request, int attempt) const noexcept;

  /// Does the `load_seq`-th artifact load of the server's lifetime fail?
  bool artifact_load_fails(std::uint64_t load_seq) const noexcept;

  /// One-line description ("faults{seed=7 transient=10% spike=5%/2ms}").
  std::string str() const;
};

}  // namespace phonebit::serve
