#include "serve/batch_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <mutex>
#include <utility>
#include <variant>

#include "core/artifact.hpp"
#include "serve/virtual_time.hpp"

namespace phonebit::serve {

namespace {

/// The artifact constructor binds net_ to the loaded network — reject a
/// null artifact before the reference member is formed.
const core::Network& artifact_network(
    const std::shared_ptr<const artifact::LoadedArtifact>& art) {
  PB_CHECK(art != nullptr && art->network != nullptr,
           "BatchRunner needs a loaded artifact");
  return *art->network;
}

/// What a status's error text shows for a non-Error exception.
std::string describe_exception(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown exception";
  }
}

/// One dispatch unit of a run: `count` consecutive requests starting at
/// `begin`, fused into one batched forward when count > 1.
struct DispatchGroup {
  std::size_t begin = 0;
  std::size_t count = 1;
};

/// A request is micro-batchable when it is a single-image U8 tensor — the
/// classifier-head serving shape whose per-image rows are contiguous in
/// both the stacked input and the float output batch.
const U8Tensor* batchable_image(const core::Blob& b) {
  const auto* u8 = std::get_if<U8Tensor>(&b);
  return u8 != nullptr && u8->shape().n == 1 ? u8 : nullptr;
}

/// Borrowed-input view of an owning batch (the by-value run() overloads
/// keep the vector alive on their own frame while run_impl borrows it).
std::vector<const core::Blob*> borrow_all(
    const std::vector<core::Blob>& inputs) {
  std::vector<const core::Blob*> ptrs;
  ptrs.reserve(inputs.size());
  for (const core::Blob& b : inputs) ptrs.push_back(&b);
  return ptrs;
}

/// Partitions the batch into dispatch groups: runs of up to `micro_batch`
/// consecutive same-shape single-image U8 requests fuse; everything else
/// stays a group of one. Requests carrying an InputPlaneCache never fuse —
/// a cache holds the planes of exactly ONE single-image input, and a
/// batched forward would neither fill nor consume it meaningfully.
std::vector<DispatchGroup> plan_groups(
    const std::vector<const core::Blob*>& inputs,
    const std::vector<core::InputPlaneCache*>& planes, int micro_batch) {
  const auto has_cache = [&planes](std::size_t i) {
    return i < planes.size() && planes[i] != nullptr;
  };
  std::vector<DispatchGroup> groups;
  groups.reserve(inputs.size());
  std::size_t i = 0;
  while (i < inputs.size()) {
    DispatchGroup g{i, 1};
    if (micro_batch > 1 && !has_cache(i)) {
      if (const U8Tensor* first = batchable_image(*inputs[i])) {
        while (i + g.count < inputs.size() &&
               g.count < static_cast<std::size_t>(micro_batch)) {
          const U8Tensor* next = batchable_image(*inputs[i + g.count]);
          if (next == nullptr || has_cache(i + g.count) ||
              !(next->shape() == first->shape()) ||
              next->layout() != first->layout()) {
            break;
          }
          ++g.count;
        }
      }
    }
    groups.push_back(g);
    i += g.count;
  }
  return groups;
}

}  // namespace

const char* status_name(StatusCode c) noexcept {
  switch (c) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kShed: return "shed";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kFailed: return "failed";
  }
  return "?";
}

BatchRunner::BatchRunner(core::Engine& engine, const core::Network& net,
                         int workers, std::string name)
    : engine_(engine), net_(net),
      name_(name.empty() ? net.name() : std::move(name)),
      pool_(workers > 0 ? workers : 4) {}

BatchRunner::BatchRunner(
    core::Engine& engine,
    std::shared_ptr<const artifact::LoadedArtifact> artifact, int workers,
    std::string name)
    : engine_(engine), net_(artifact_network(artifact)),
      artifact_(std::move(artifact)),
      name_(name.empty() ? net_.name() : std::move(name)),
      pool_(workers > 0 ? workers : 4) {}

std::shared_ptr<const core::ExecutionPlan> BatchRunner::plan_for(
    const core::BlobDesc& desc) {
  // Artifact fast path: requests matching the shipped descriptor run the
  // deserialized plan as-is — no compile, no cache, no options staleness
  // (the artifact IS the pinned snapshot). The aliasing shared_ptr keeps
  // the whole artifact (plan + the network its steps point into) alive.
  if (artifact_ != nullptr && desc == artifact_->plan.input()) {
    return std::shared_ptr<const core::ExecutionPlan>(artifact_,
                                                      &artifact_->plan);
  }
  std::lock_guard<std::mutex> lock(plan_mu_);
  // Plans embed the options they were compiled against; if the engine was
  // reconfigured between batches (the ablation workflow), the cache is
  // stale as a whole — drop it so requests never run an outdated snapshot.
  if (!plans_.empty() &&
      !(plans_.front().second->options() == engine_.options())) {
    plans_.clear();
  }
  for (const auto& [d, plan] : plans_) {
    if (d == desc) return plan;
  }
  // First request with this shape pays the (one-off, O(layers)) compile;
  // every later request shares the immutable plan across sessions.
  auto plan = std::make_shared<const core::ExecutionPlan>(
      net_.compile(engine_.options(), desc));
  plans_.emplace_back(desc, plan);
  return plan;
}

std::size_t BatchRunner::compiled_plans() const {
  std::lock_guard<std::mutex> lock(plan_mu_);
  return plans_.size();
}

int BatchRunner::total_arena_growth_events() const {
  int total = 0;
  for (const auto& s : sessions_) {
    if (s != nullptr) total += s->arena().growth_events();
  }
  return total;
}

BatchSummary BatchRunner::run(std::vector<core::Blob> inputs) {
  return run_impl(borrow_all(inputs), {}, nullptr);
}

BatchSummary BatchRunner::run(
    const std::vector<const core::Blob*>& inputs,
    const std::vector<core::InputPlaneCache*>& planes) {
  PB_CHECK(planes.empty() || planes.size() == inputs.size(),
           "BatchRunner '" << name_ << "': planes must be empty or match "
                           << "inputs (" << planes.size() << " vs "
                           << inputs.size() << ")");
  for (const core::Blob* b : inputs) {
    PB_CHECK(b != nullptr, "BatchRunner '" << name_ << "': null input blob");
  }
  return run_impl(inputs, planes, nullptr);
}

BatchSummary BatchRunner::run_or_throw(std::vector<core::Blob> inputs) {
  std::exception_ptr first_error;
  BatchSummary summary = run_impl(borrow_all(inputs), {}, &first_error);
  if (first_error != nullptr) std::rethrow_exception(first_error);
  return summary;
}

BatchSummary BatchRunner::run_impl(
    const std::vector<const core::Blob*>& inputs,
    const std::vector<core::InputPlaneCache*>& planes,
    std::exception_ptr* first_error) {
  // One run() at a time per runner (documented contract): the persistent
  // worker sessions are exclusively owned per batch, so a concurrent call
  // must fail loudly rather than race two forwards onto one session. The
  // acq_rel exchange claims the runner; the guard's release store hands it
  // back, pairing with the next winner's acquire.
  PB_CHECK(!running_.exchange(true, std::memory_order_acq_rel),
           "BatchRunner '" << name_
                           << "': run called concurrently — a runner serves "
                              "one batch at a time; create one runner per "
                              "concurrent stream");
  struct RunningGuard {
    std::atomic<bool>& flag;
    ~RunningGuard() { flag.store(false, std::memory_order_release); }
  } guard{running_};

  BatchSummary summary;
  summary.requests = static_cast<int>(inputs.size());
  summary.workers = pool_.size();
  summary.results.resize(inputs.size());
  summary.statuses.resize(inputs.size());
  if (inputs.empty()) return summary;

  // Persistent worker sessions, minted once on the caller thread (at most
  // one per worker) and reused across requests AND batches: request i runs
  // on session i % workers, so each session's slot-backed activation slab
  // and scratch arena stay warm — the plan's reserve is a no-op and the
  // steady-state request path never grows an arena.
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(pool_.size()),
                            inputs.size());
  while (sessions_.size() < workers) {
    sessions_.push_back(
        std::make_unique<core::ExecSession>(engine_.create_session()));
  }

  // One task per worker owning a strided share of the requests (not
  // parallel_for: its small-n inline path would serialize the batch on
  // this thread). A local completion group keeps the runner independent of
  // anything else submitted to the pool. A request that throws records a
  // kFailed status in ITS slot and the loop moves on — neighbors keep
  // their results (first-error-wins destroyed them before PR 6).
  std::mutex mu;
  std::condition_variable cv;
  std::size_t pending = workers;
  std::exception_ptr batch_error;

  // Dispatch units: with micro-batching on, runs of same-shape single-image
  // requests fuse into one batched forward each; workers own a strided
  // share of GROUPS so a fused group never spans two sessions. The
  // micro-batch knob is read exactly once per batch (it is atomic, so a
  // concurrent set_micro_batch can never tear this batch's grouping).
  const std::vector<DispatchGroup> groups =
      plan_groups(inputs, planes, micro_batch_.load(std::memory_order_relaxed));

  const double t0 = now_ms();
  for (std::size_t w = 0; w < workers; ++w) {
    pool_.submit([this, &inputs, &planes, &summary, &groups, &mu, &cv,
                  &pending, &batch_error, w, workers] {
      std::exception_ptr error;
      core::ExecSession& session = *sessions_[w];
      const auto run_single = [&](std::size_t i) {
        try {
          const auto plan = plan_for(core::describe_blob(*inputs[i]));
          session.reset_profile();
          core::RunOptions ro;
          if (i < planes.size()) ro.planes = planes[i];
          summary.results[i] = plan->run(session, *inputs[i], ro);
        } catch (...) {
          summary.statuses[i].code = StatusCode::kFailed;
          summary.statuses[i].error =
              describe_exception(std::current_exception());
          if (error == nullptr) error = std::current_exception();
        }
      };
      for (std::size_t gi = w; gi < groups.size(); gi += workers) {
        const DispatchGroup& g = groups[gi];
        bool fused = false;
        if (g.count > 1) {
          try {
            // One batched forward for the whole group: stack the images
            // (per-image rows are contiguous under both layouts), run the
            // batched plan, split the output rows back per request.
            core::BlobDesc desc = core::describe_blob(*inputs[g.begin]);
            desc.shape.n = static_cast<std::int64_t>(g.count);
            const auto plan = plan_for(desc);
            if (plan->output().kind == core::BlobKind::kFloat) {
              const auto& first = std::get<U8Tensor>(*inputs[g.begin]);
              U8Tensor batch(desc.shape, first.layout());
              const std::int64_t per = first.elems();
              for (std::size_t r = 0; r < g.count; ++r) {
                std::memcpy(
                    batch.data() + static_cast<std::int64_t>(r) * per,
                    std::get<U8Tensor>(*inputs[g.begin + r]).data(),
                    static_cast<std::size_t>(per));
              }
              session.reset_profile();
              core::ForwardResult res =
                  plan->run(session, core::Blob{std::move(batch)});
              batched_dispatches_.fetch_add(1, std::memory_order_relaxed);
              const FloatTensor& out = res.float_output();
              Shape row_shape = out.shape();
              row_shape.n = 1;
              const std::int64_t row =
                  out.elems() / static_cast<std::int64_t>(g.count);
              for (std::size_t r = 0; r < g.count; ++r) {
                core::ForwardResult& slot = summary.results[g.begin + r];
                FloatTensor one(row_shape, out.layout());
                std::memcpy(one.data(),
                            out.data() + static_cast<std::int64_t>(r) * row,
                            static_cast<std::size_t>(row) * sizeof(float));
                slot.output = std::move(one);
                slot.modeled_ms =
                    res.modeled_ms / static_cast<double>(g.count);
                slot.host_ms = res.host_ms / static_cast<double>(g.count);
              }
              // Per-layer attribution goes to the group's first request;
              // followers keep empty reports (the summary merge skips them).
              summary.results[g.begin].report = std::move(res.report);
              fused = true;
            }
          } catch (...) {
            // A failed fused dispatch falls back to singles so an innocent
            // group member is never failed by a neighbor.
            fused = false;
          }
        }
        if (!fused) {
          for (std::size_t r = 0; r < g.count; ++r) run_single(g.begin + r);
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      if (error != nullptr && batch_error == nullptr) batch_error = error;
      if (--pending == 0) cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&pending] { return pending == 0; });
  }
  summary.wall_ms = now_ms() - t0;
  if (first_error != nullptr) *first_error = batch_error;

  // Latency/throughput aggregation plus the per-layer merge over the Ok
  // requests: layer order is identical across requests (one shared
  // network), so slot j of every report describes the same layer. Failed
  // requests are counted but contribute nothing — their result slots are
  // default-constructed.
  std::vector<double> latencies;
  latencies.reserve(summary.results.size());
  for (std::size_t i = 0; i < summary.results.size(); ++i) {
    if (!summary.statuses[i].ok()) {
      ++summary.failed;
      continue;
    }
    ++summary.ok;
    const core::ForwardResult& r = summary.results[i];
    latencies.push_back(r.modeled_ms);
    summary.total_modeled_ms += r.modeled_ms;
    summary.max_modeled_ms = std::max(summary.max_modeled_ms, r.modeled_ms);
    if (summary.merged_layers.empty() && !r.report.empty()) {
      summary.merged_layers.resize(r.report.size());
      for (std::size_t j = 0; j < r.report.size(); ++j) {
        summary.merged_layers[j].name = r.report[j].name;
        summary.merged_layers[j].launches = 0;
        summary.merged_layers[j].cost = oclsim::KernelCost::accumulator();
      }
    }
    // Micro-batched group followers carry empty reports — nothing to merge.
    if (r.report.size() != summary.merged_layers.size()) continue;
    for (std::size_t j = 0; j < r.report.size(); ++j) {
      core::LayerReport& m = summary.merged_layers[j];
      m.modeled_ms += r.report[j].modeled_ms;
      m.host_ms += r.report[j].host_ms;
      m.launches += r.report[j].launches;
      m.cost.accumulate(r.report[j].cost);
    }
  }
  std::sort(latencies.begin(), latencies.end());
  summary.p50_modeled_ms = percentile(latencies, 50.0);
  summary.p95_modeled_ms = percentile(latencies, 95.0);
  summary.p99_modeled_ms = percentile(latencies, 99.0);
  summary.mean_modeled_ms =
      summary.ok > 0 ? summary.total_modeled_ms / summary.ok : 0.0;
  summary.throughput_rps = summary.wall_ms > 0
                               ? 1e3 * static_cast<double>(summary.requests) /
                                     summary.wall_ms
                               : 0.0;
  return summary;
}

}  // namespace phonebit::serve
