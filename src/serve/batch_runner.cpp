#include "serve/batch_runner.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <utility>

namespace phonebit::serve {

namespace {

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

}  // namespace

BatchRunner::BatchRunner(core::Engine& engine, const core::Network& net,
                         int workers)
    : engine_(engine), net_(net), pool_(workers > 0 ? workers : 4) {}

BatchSummary BatchRunner::run(std::vector<core::Blob> inputs) {
  BatchSummary summary;
  summary.requests = static_cast<int>(inputs.size());
  summary.workers = pool_.size();
  summary.results.resize(inputs.size());
  if (inputs.empty()) return summary;

  // One task per request (not parallel_for: its small-n inline path would
  // serialize the batch on this thread, and requests are coarse enough that
  // chunking buys nothing). A local completion group keeps the runner
  // independent of anything else submitted to the pool.
  std::mutex mu;
  std::condition_variable cv;
  std::size_t pending = inputs.size();
  std::exception_ptr first_error;

  const double t0 = now_ms();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    pool_.submit([this, &inputs, &summary, &mu, &cv, &pending, &first_error,
                  i] {
      std::exception_ptr error;
      try {
        core::ExecSession session = engine_.create_session();
        core::ExecContext ctx = session.context();
        summary.results[i] = net_.forward(ctx, std::move(inputs[i]));
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (error != nullptr && first_error == nullptr) first_error = error;
      if (--pending == 0) cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&pending] { return pending == 0; });
  }
  summary.wall_ms = now_ms() - t0;
  if (first_error != nullptr) std::rethrow_exception(first_error);

  // Latency/throughput aggregation plus the per-layer merge: layer order is
  // identical across requests (one shared network), so slot j of every
  // report describes the same layer.
  for (const core::ForwardResult& r : summary.results) {
    summary.total_modeled_ms += r.modeled_ms;
    summary.max_modeled_ms = std::max(summary.max_modeled_ms, r.modeled_ms);
    if (summary.merged_layers.empty()) {
      summary.merged_layers.resize(r.report.size());
      for (std::size_t j = 0; j < r.report.size(); ++j) {
        summary.merged_layers[j].name = r.report[j].name;
        summary.merged_layers[j].launches = 0;
        summary.merged_layers[j].cost = oclsim::KernelCost::accumulator();
      }
    }
    for (std::size_t j = 0; j < r.report.size(); ++j) {
      core::LayerReport& m = summary.merged_layers[j];
      m.modeled_ms += r.report[j].modeled_ms;
      m.host_ms += r.report[j].host_ms;
      m.launches += r.report[j].launches;
      m.cost.accumulate(r.report[j].cost);
    }
  }
  summary.mean_modeled_ms =
      summary.total_modeled_ms / static_cast<double>(summary.requests);
  summary.throughput_rps = summary.wall_ms > 0
                               ? 1e3 * static_cast<double>(summary.requests) /
                                     summary.wall_ms
                               : 0.0;
  return summary;
}

}  // namespace phonebit::serve
