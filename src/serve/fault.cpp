#include "serve/fault.hpp"

#include <sstream>

namespace phonebit::serve {

namespace {

/// splitmix64 finalizer — the same mixer Rng uses for seeding.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Counter-based uniform draw in [0, 1): a pure function of the key, so a
/// verdict never depends on how many OTHER verdicts were drawn before it
/// (the property a shared RNG stream cannot give a multi-threaded server).
double uniform(std::uint64_t seed, std::uint64_t stream, std::uint64_t a,
               std::uint64_t b) noexcept {
  const std::uint64_t h = mix(mix(mix(seed ^ (stream * 0xa24baed4963ee407ull)) + a) + b);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool FaultPlan::transient_fault(std::uint64_t request,
                                int attempt) const noexcept {
  return transient_rate > 0.0 &&
         uniform(seed, 1, request, static_cast<std::uint64_t>(attempt)) <
             transient_rate;
}

double FaultPlan::latency_spike_ms(std::uint64_t request,
                                   int attempt) const noexcept {
  return (spike_rate > 0.0 &&
          uniform(seed, 2, request, static_cast<std::uint64_t>(attempt)) <
              spike_rate)
             ? spike_ms
             : 0.0;
}

bool FaultPlan::artifact_load_fails(std::uint64_t load_seq) const noexcept {
  return artifact_load_rate > 0.0 &&
         uniform(seed, 3, load_seq, 0) < artifact_load_rate;
}

std::string FaultPlan::str() const {
  std::ostringstream os;
  os << "faults{seed=" << seed;
  if (!enabled()) {
    os << " none}";
    return os.str();
  }
  if (transient_rate > 0.0) os << " transient=" << transient_rate * 100 << "%";
  if (spike_rate > 0.0) {
    os << " spike=" << spike_rate * 100 << "%/" << spike_ms << "ms";
  }
  if (artifact_load_rate > 0.0) {
    os << " artifact_load=" << artifact_load_rate * 100 << "%";
  }
  os << "}";
  return os.str();
}

}  // namespace phonebit::serve
