// PhoneBit — flattening packed feature maps for dense layers.
#pragma once

#include "bitpack/packed_tensor.hpp"

namespace phonebit::bitpack {

/// Flattens (N,H,W,C) packed bits into (N,1,1,H*W*C). When C is a multiple
/// of 64 the packed words are already the flattened bit vector (NHWC with
/// channels innermost), so this is a straight copy; otherwise bits are
/// re-packed to close the per-pixel padding gaps.
inline PackedTensor flatten_packed(const PackedTensor& in) {
  const Shape& s = in.shape();
  PackedTensor out(Shape{s.n, 1, 1, s.h * s.w * s.c});
  if (s.c % kWordBits == 0) {
    std::copy(in.data(), in.data() + in.total_words(), out.data());
    return out;
  }
  for (std::int64_t n = 0; n < s.n; ++n) {
    std::int64_t bit = 0;
    for (std::int64_t h = 0; h < s.h; ++h)
      for (std::int64_t w = 0; w < s.w; ++w)
        for (std::int64_t c = 0; c < s.c; ++c, ++bit)
          if (in.get(n, h, w, c)) out.set(n, 0, 0, bit, true);
  }
  return out;
}

}  // namespace phonebit::bitpack
