// PhoneBit — packing/unpacking between float tensors and packed binary
// tensors, plus the bit-plane splitter for the 8-bit first layer (Eqn 2).
#pragma once

#include <array>
#include <cstdint>

#include "bitpack/packed_tensor.hpp"
#include "tensor/tensor.hpp"

namespace phonebit::bitpack {

/// Sign-binarizes a float NHWC tensor: bit = 1 iff value >= 0 (+1), else 0
/// (-1). This is the paper's Eqn 7 binarization applied at pack time.
PackedTensor pack_signs(const FloatTensor& t);

/// Expands a packed tensor back to floats in {-1, +1} (testing/debug).
FloatTensor unpack_signs(const PackedTensor& p);

/// Splits an 8-bit NHWC image into 8 packed bit-planes: plane[k] holds bit k
/// of every pixel/channel (Eqn 2: I = sum_k 2^k * I_k, k = 0..7).
std::array<PackedTensor, 8> split_bit_planes(const U8Tensor& image);

/// Packs a float filter bank laid out as (C_out, KH, KW, C_in) NHWC into a
/// PackedTensor with the same logical shape (weights binarized by sign).
PackedTensor pack_filter_signs(const FloatTensor& filters);

}  // namespace phonebit::bitpack
