// PhoneBit — channel-packed binary tensors.
//
// The paper's core data structure (§V-A): an NHWC tensor whose channel
// dimension is packed 1 bit per channel into 64-bit words. Because channels
// are innermost (minor-to-major NHWC order), the packed words of one pixel
// are contiguous and the packed words of adjacent pixels follow each other —
// the layout that makes the binary-conv inner loop unit-stride and
// memory-coalescible on the GPU.
//
// Bit convention: bit = 1 encodes +1, bit = 0 encodes -1 (sign binarization).
// Padding bits beyond the true channel count are always 0 in both
// activations and weights, so xor over the padded tail contributes no
// mismatches and the Eqn-1 dot can use the true channel length.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "tensor/shape.hpp"

namespace phonebit::bitpack {

/// Number of channel bits stored per word.
inline constexpr std::int64_t kWordBits = 64;

/// Rank-4 binary tensor, channel dimension packed into uint64 words.
/// Also used for weight banks with the interpretation (n=C_out, h=KH, w=KW,
/// c=C_in) so conv kernels can reuse the same unit-stride span math.
class PackedTensor {
 public:
  PackedTensor() = default;

  /// Allocates a zeroed packed tensor for logical shape `shape` (the channel
  /// count is the *unpacked* bit count).
  explicit PackedTensor(Shape shape)
      : shape_(checked_shape(shape)),
        words_per_pixel_(ceil_div(shape.c, kWordBits)),
        data_(static_cast<std::size_t>(shape.n * shape.h * shape.w *
                                       words_per_pixel_),
              0) {}

  const Shape& shape() const noexcept { return shape_; }
  std::int64_t channels() const noexcept { return shape_.c; }
  std::int64_t words_per_pixel() const noexcept { return words_per_pixel_; }
  std::int64_t total_words() const noexcept {
    return static_cast<std::int64_t>(data_.size());
  }
  /// Packed storage footprint in bytes (the model-size accounting uses this).
  std::int64_t bytes() const noexcept { return total_words() * 8; }

  std::uint64_t* data() noexcept { return data_.data(); }
  const std::uint64_t* data() const noexcept { return data_.data(); }

  /// Linear word offset of pixel (n,h,w), word j in [0, words_per_pixel).
  std::int64_t word_offset(std::int64_t n, std::int64_t h, std::int64_t w,
                           std::int64_t j = 0) const noexcept {
    return ((n * shape_.h + h) * shape_.w + w) * words_per_pixel_ + j;
  }

  /// Pointer to the packed channel span of pixel (n,h,w).
  std::uint64_t* pixel(std::int64_t n, std::int64_t h, std::int64_t w) noexcept {
    return data_.data() + word_offset(n, h, w);
  }
  const std::uint64_t* pixel(std::int64_t n, std::int64_t h,
                             std::int64_t w) const noexcept {
    return data_.data() + word_offset(n, h, w);
  }

  /// Reads channel bit c of pixel (n,h,w).
  bool get(std::int64_t n, std::int64_t h, std::int64_t w,
           std::int64_t c) const {
    check_index(n, h, w, c);
    const std::uint64_t word =
        data_[static_cast<std::size_t>(word_offset(n, h, w, c / kWordBits))];
    return get_bit(word, static_cast<int>(c % kWordBits));
  }

  /// Writes channel bit c of pixel (n,h,w).
  void set(std::int64_t n, std::int64_t h, std::int64_t w, std::int64_t c,
           bool bit) {
    check_index(n, h, w, c);
    auto& word =
        data_[static_cast<std::size_t>(word_offset(n, h, w, c / kWordBits))];
    word = set_bit(word, static_cast<int>(c % kWordBits), bit);
  }

  friend bool operator==(const PackedTensor& a, const PackedTensor& b) {
    return a.shape_ == b.shape_ && a.data_ == b.data_;
  }

 private:
  static Shape checked_shape(const Shape& shape) {
    PB_CHECK(shape.n > 0 && shape.h > 0 && shape.w > 0 && shape.c > 0,
             "packed tensor dims must be positive: " << shape.str());
    return shape;
  }

  void check_index(std::int64_t n, std::int64_t h, std::int64_t w,
                   std::int64_t c) const {
    PB_CHECK(n >= 0 && n < shape_.n && h >= 0 && h < shape_.h && w >= 0 &&
                 w < shape_.w && c >= 0 && c < shape_.c,
             "packed index (" << n << "," << h << "," << w << "," << c
                              << ") out of range for " << shape_.str());
  }

  Shape shape_{};
  std::int64_t words_per_pixel_ = 0;
  std::vector<std::uint64_t> data_;
};

}  // namespace phonebit::bitpack
