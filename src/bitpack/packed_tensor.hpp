// PhoneBit — channel-packed binary tensors.
//
// The paper's core data structure (§V-A): an NHWC tensor whose channel
// dimension is packed 1 bit per channel into 64-bit words. Because channels
// are innermost (minor-to-major NHWC order), the packed words of one pixel
// are contiguous and the packed words of adjacent pixels follow each other —
// the layout that makes the binary-conv inner loop unit-stride and
// memory-coalescible on the GPU.
//
// Bit convention: bit = 1 encodes +1, bit = 0 encodes -1 (sign binarization).
// Padding bits beyond the true channel count are always 0 in both
// activations and weights, so xor over the padded tail contributes no
// mismatches and the Eqn-1 dot can use the true channel length.
#pragma once

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "common/alloc_count.hpp"
#include "common/bitops.hpp"
#include "common/error.hpp"
#include "tensor/shape.hpp"

namespace phonebit::bitpack {

/// Number of channel bits stored per word.
inline constexpr std::int64_t kWordBits = 64;

/// Rank-4 binary tensor, channel dimension packed into uint64 words.
/// Also used for weight banks with the interpretation (n=C_out, h=KH, w=KW,
/// c=C_in) so conv kernels can reuse the same unit-stride span math.
///
/// Storage is owned (zeroed heap buffer, counted by the buffer-allocation
/// hook) or borrowed — a view over session-arena slot memory the compiled
/// runner hands to layers, so warm forwards allocate nothing. A borrowed
/// view is NOT cleared on construction: producers that write byte-granular
/// output must zero the padding words themselves (ExecContext::make_packed
/// does this when C is not word-aligned). Copies always deep-copy.
class PackedTensor {
 public:
  PackedTensor() = default;

  /// Allocates a zeroed packed tensor for logical shape `shape` (the channel
  /// count is the *unpacked* bit count).
  explicit PackedTensor(Shape shape)
      : shape_(checked_shape(shape)),
        words_per_pixel_(ceil_div(shape.c, kWordBits)),
        total_words_(shape.n * shape.h * shape.w * words_per_pixel_),
        owned_(static_cast<std::size_t>(total_words_), 0),
        data_(owned_.data()) {
    count_buffer_alloc();
  }

  /// Borrowed-storage view over `storage` (>= total_words() words, caller
  /// keeps it alive, 8-byte aligned). Contents are left as-is.
  PackedTensor(Shape shape, std::uint64_t* storage)
      : shape_(checked_shape(shape)),
        words_per_pixel_(ceil_div(shape.c, kWordBits)),
        total_words_(shape.n * shape.h * shape.w * words_per_pixel_),
        data_(storage) {
    PB_CHECK(storage != nullptr, "null packed-tensor view storage");
  }

  PackedTensor(const PackedTensor& o)
      : shape_(o.shape_), words_per_pixel_(o.words_per_pixel_),
        total_words_(o.total_words_),
        owned_(o.data_ == nullptr
                   ? std::vector<std::uint64_t>()
                   : std::vector<std::uint64_t>(o.data_,
                                                o.data_ + o.total_words_)),
        data_(owned_.empty() ? nullptr : owned_.data()) {
    if (!owned_.empty()) count_buffer_alloc();
  }
  PackedTensor& operator=(const PackedTensor& o) {
    if (this != &o) *this = PackedTensor(o);
    return *this;
  }
  PackedTensor(PackedTensor&& o) noexcept
      : shape_(std::exchange(o.shape_, Shape{})),
        words_per_pixel_(o.words_per_pixel_), total_words_(o.total_words_),
        owned_(std::move(o.owned_)), data_(std::exchange(o.data_, nullptr)) {}
  PackedTensor& operator=(PackedTensor&& o) noexcept {
    if (this != &o) {
      shape_ = std::exchange(o.shape_, Shape{});
      words_per_pixel_ = o.words_per_pixel_;
      total_words_ = o.total_words_;
      owned_ = std::move(o.owned_);
      data_ = std::exchange(o.data_, nullptr);
    }
    return *this;
  }

  const Shape& shape() const noexcept { return shape_; }
  std::int64_t channels() const noexcept { return shape_.c; }
  std::int64_t words_per_pixel() const noexcept { return words_per_pixel_; }
  std::int64_t total_words() const noexcept { return total_words_; }
  /// Packed storage footprint in bytes (the model-size accounting uses this).
  std::int64_t bytes() const noexcept { return total_words() * 8; }

  /// False when this tensor is a borrowed view (slot-backed activation).
  bool owns_storage() const noexcept {
    return data_ == nullptr || !owned_.empty();
  }

  std::uint64_t* data() noexcept { return data_; }
  const std::uint64_t* data() const noexcept { return data_; }

  /// Linear word offset of pixel (n,h,w), word j in [0, words_per_pixel).
  std::int64_t word_offset(std::int64_t n, std::int64_t h, std::int64_t w,
                           std::int64_t j = 0) const noexcept {
    return ((n * shape_.h + h) * shape_.w + w) * words_per_pixel_ + j;
  }

  /// Pointer to the packed channel span of pixel (n,h,w).
  std::uint64_t* pixel(std::int64_t n, std::int64_t h, std::int64_t w) noexcept {
    return data_ + word_offset(n, h, w);
  }
  const std::uint64_t* pixel(std::int64_t n, std::int64_t h,
                             std::int64_t w) const noexcept {
    return data_ + word_offset(n, h, w);
  }

  /// Reads channel bit c of pixel (n,h,w).
  bool get(std::int64_t n, std::int64_t h, std::int64_t w,
           std::int64_t c) const {
    check_index(n, h, w, c);
    const std::uint64_t word = data_[word_offset(n, h, w, c / kWordBits)];
    return get_bit(word, static_cast<int>(c % kWordBits));
  }

  /// Writes channel bit c of pixel (n,h,w).
  void set(std::int64_t n, std::int64_t h, std::int64_t w, std::int64_t c,
           bool bit) {
    check_index(n, h, w, c);
    auto& word = data_[word_offset(n, h, w, c / kWordBits)];
    word = set_bit(word, static_cast<int>(c % kWordBits), bit);
  }

  /// True when every bit beyond the true channel count is zero in every
  /// pixel's tail word — the pad-word invariant the xor/and+popcount
  /// kernels rely on (and pack.cpp guarantees for freshly packed data).
  /// The artifact loader re-checks it on deserialized weight banks so a
  /// corrupted file cannot smuggle phantom channels into the Eqn-1 dot.
  bool padding_clear() const noexcept {
    const std::int64_t rem = shape_.c % kWordBits;
    if (rem == 0 || data_ == nullptr) return true;
    const std::uint64_t pad_mask = ~((std::uint64_t{1} << rem) - 1);
    const std::int64_t pixels = shape_.n * shape_.h * shape_.w;
    for (std::int64_t p = 0; p < pixels; ++p) {
      if ((data_[p * words_per_pixel_ + words_per_pixel_ - 1] & pad_mask) !=
          0) {
        return false;
      }
    }
    return true;
  }

  /// Value equality: same logical shape and identical packed words,
  /// regardless of which side owns its storage.
  friend bool operator==(const PackedTensor& a, const PackedTensor& b) {
    if (!(a.shape_ == b.shape_)) return false;
    if (a.data_ == b.data_) return true;
    if (a.data_ == nullptr || b.data_ == nullptr) return false;
    return std::memcmp(a.data_, b.data_,
                       static_cast<std::size_t>(a.total_words_) * 8) == 0;
  }

 private:
  static Shape checked_shape(const Shape& shape) {
    PB_CHECK(shape.n > 0 && shape.h > 0 && shape.w > 0 && shape.c > 0,
             "packed tensor dims must be positive: " << shape.str());
    return shape;
  }

  void check_index(std::int64_t n, std::int64_t h, std::int64_t w,
                   std::int64_t c) const {
    PB_CHECK(n >= 0 && n < shape_.n && h >= 0 && h < shape_.h && w >= 0 &&
                 w < shape_.w && c >= 0 && c < shape_.c,
             "packed index (" << n << "," << h << "," << w << "," << c
                              << ") out of range for " << shape_.str());
  }

  Shape shape_{};
  std::int64_t words_per_pixel_ = 0;
  std::int64_t total_words_ = 0;
  std::vector<std::uint64_t> owned_;  // empty for borrowed views
  std::uint64_t* data_ = nullptr;
};

}  // namespace phonebit::bitpack
