#include "bitpack/pack.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace phonebit::bitpack {

PackedTensor pack_signs(const FloatTensor& t) {
  PB_CHECK(t.layout() == Layout::kNHWC,
           "pack_signs requires NHWC input (got " << to_string(t.layout())
                                                  << "); convert first");
  const Shape& s = t.shape();
  PackedTensor out(s);
  // Hot loop over raw spans: NHWC channels are contiguous per pixel, so
  // each packed word accumulates in a register and stores once — no
  // per-bit member loads or read-modify-write word traffic.
  const float* src = t.data();
  std::uint64_t* dst = out.data();
  const std::int64_t pixels = s.n * s.h * s.w;
  const std::int64_t wpp = out.words_per_pixel();
  for (std::int64_t p = 0; p < pixels; ++p) {
    const float* px = src + p * s.c;
    std::uint64_t* words = dst + p * wpp;
    for (std::int64_t j = 0; j < wpp; ++j) {
      const std::int64_t limit =
          std::min<std::int64_t>(kWordBits, s.c - j * kWordBits);
      std::uint64_t acc = 0;
      for (std::int64_t b = 0; b < limit; ++b) {
        if (px[j * kWordBits + b] >= 0.0f) acc |= std::uint64_t{1} << b;
      }
      words[j] = acc;
    }
  }
  return out;
}

FloatTensor unpack_signs(const PackedTensor& p) {
  const Shape& s = p.shape();
  FloatTensor out(s, Layout::kNHWC);
  for (std::int64_t n = 0; n < s.n; ++n)
    for (std::int64_t h = 0; h < s.h; ++h)
      for (std::int64_t w = 0; w < s.w; ++w)
        for (std::int64_t c = 0; c < s.c; ++c)
          out(n, h, w, c) = p.get(n, h, w, c) ? 1.0f : -1.0f;
  return out;
}

std::array<PackedTensor, 8> split_bit_planes(const U8Tensor& image) {
  PB_CHECK(image.layout() == Layout::kNHWC,
           "split_bit_planes requires NHWC input");
  const Shape& s = image.shape();
  std::array<PackedTensor, 8> planes{
      PackedTensor(s), PackedTensor(s), PackedTensor(s), PackedTensor(s),
      PackedTensor(s), PackedTensor(s), PackedTensor(s), PackedTensor(s)};
  for (std::int64_t n = 0; n < s.n; ++n)
    for (std::int64_t h = 0; h < s.h; ++h)
      for (std::int64_t w = 0; w < s.w; ++w) {
        for (std::int64_t c = 0; c < s.c; ++c) {
          const std::uint8_t px = image(n, h, w, c);
          for (int k = 0; k < 8; ++k) {
            if ((px >> k) & 1) {
              planes[static_cast<std::size_t>(k)].set(n, h, w, c, true);
            }
          }
        }
      }
  return planes;
}

PackedTensor pack_filter_signs(const FloatTensor& filters) {
  return pack_signs(filters);
}

}  // namespace phonebit::bitpack
