#include "bitpack/pack.hpp"

#include "common/error.hpp"

namespace phonebit::bitpack {

PackedTensor pack_signs(const FloatTensor& t) {
  PB_CHECK(t.layout() == Layout::kNHWC,
           "pack_signs requires NHWC input (got " << to_string(t.layout())
                                                  << "); convert first");
  const Shape& s = t.shape();
  PackedTensor out(s);
  for (std::int64_t n = 0; n < s.n; ++n)
    for (std::int64_t h = 0; h < s.h; ++h)
      for (std::int64_t w = 0; w < s.w; ++w) {
        std::uint64_t* words = out.pixel(n, h, w);
        for (std::int64_t c = 0; c < s.c; ++c) {
          if (t(n, h, w, c) >= 0.0f) {
            words[c / kWordBits] |= (std::uint64_t{1} << (c % kWordBits));
          }
        }
      }
  return out;
}

FloatTensor unpack_signs(const PackedTensor& p) {
  const Shape& s = p.shape();
  FloatTensor out(s, Layout::kNHWC);
  for (std::int64_t n = 0; n < s.n; ++n)
    for (std::int64_t h = 0; h < s.h; ++h)
      for (std::int64_t w = 0; w < s.w; ++w)
        for (std::int64_t c = 0; c < s.c; ++c)
          out(n, h, w, c) = p.get(n, h, w, c) ? 1.0f : -1.0f;
  return out;
}

std::array<PackedTensor, 8> split_bit_planes(const U8Tensor& image) {
  PB_CHECK(image.layout() == Layout::kNHWC,
           "split_bit_planes requires NHWC input");
  const Shape& s = image.shape();
  std::array<PackedTensor, 8> planes{
      PackedTensor(s), PackedTensor(s), PackedTensor(s), PackedTensor(s),
      PackedTensor(s), PackedTensor(s), PackedTensor(s), PackedTensor(s)};
  for (std::int64_t n = 0; n < s.n; ++n)
    for (std::int64_t h = 0; h < s.h; ++h)
      for (std::int64_t w = 0; w < s.w; ++w) {
        for (std::int64_t c = 0; c < s.c; ++c) {
          const std::uint8_t px = image(n, h, w, c);
          for (int k = 0; k < 8; ++k) {
            if ((px >> k) & 1) {
              planes[static_cast<std::size_t>(k)].set(n, h, w, c, true);
            }
          }
        }
      }
  return planes;
}

PackedTensor pack_filter_signs(const FloatTensor& filters) {
  return pack_signs(filters);
}

}  // namespace phonebit::bitpack
