#include "bitpack/binary_ops.hpp"

#include <cstring>

#include "common/error.hpp"
#include "simd/vec.hpp"

namespace phonebit::bitpack {
namespace {

// Narrow-granularity kernels view the 64-bit words as byte/short/int lanes;
// wide-granularity kernels process ulongN vectors with a scalar tail.

template <typename Lane>
std::int64_t xor_popcount_narrow(const std::uint64_t* a,
                                 const std::uint64_t* b,
                                 std::int64_t nwords) {
  const auto* pa = reinterpret_cast<const Lane*>(a);
  const auto* pb = reinterpret_cast<const Lane*>(b);
  const std::int64_t n = nwords * static_cast<std::int64_t>(8 / sizeof(Lane));
  std::int64_t total = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    total += popcount(static_cast<Lane>(pa[i] ^ pb[i]));
  }
  return total;
}

template <typename Lane>
std::int64_t and_popcount_narrow(const std::uint64_t* a,
                                 const std::uint64_t* b,
                                 std::int64_t nwords) {
  const auto* pa = reinterpret_cast<const Lane*>(a);
  const auto* pb = reinterpret_cast<const Lane*>(b);
  const std::int64_t n = nwords * static_cast<std::int64_t>(8 / sizeof(Lane));
  std::int64_t total = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    total += popcount(static_cast<Lane>(pa[i] & pb[i]));
  }
  return total;
}

// Wide kernels accumulate popcounts lane-wise (simd::popcount_accumulate)
// and reduce once per span, keeping the horizontal add out of the loop.
template <int Lanes>
std::int64_t xor_popcount_wide(const std::uint64_t* a, const std::uint64_t* b,
                               std::int64_t nwords) {
  using V = simd::vec<std::uint64_t, Lanes>;
  V acc{};
  std::int64_t tail = 0;
  std::int64_t i = 0;
  for (; i + Lanes <= nwords; i += Lanes) {
    const V va = simd::vload<std::uint64_t, Lanes>(0, a + i);
    const V vb = simd::vload<std::uint64_t, Lanes>(0, b + i);
    simd::popcount_accumulate(acc, va ^ vb);
  }
  for (; i < nwords; ++i) tail += popcount(a[i] ^ b[i]);
  return simd::reduce_add(acc) + tail;
}

/// Whole-window kernel: `rows` strided spans of `row_words` words, the lane
/// accumulator carried across every row and reduced once at the very end.
template <int Lanes>
std::int64_t xor_popcount_2d_wide(const std::uint64_t* a,
                                  std::int64_t a_stride,
                                  const std::uint64_t* b,
                                  std::int64_t b_stride,
                                  std::int64_t row_words, std::int64_t rows) {
  using V = simd::vec<std::uint64_t, Lanes>;
  V acc{};
  std::int64_t tail = 0;
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::uint64_t* pa = a + r * a_stride;
    const std::uint64_t* pb = b + r * b_stride;
    std::int64_t i = 0;
    for (; i + Lanes <= row_words; i += Lanes) {
      const V va = simd::vload<std::uint64_t, Lanes>(0, pa + i);
      const V vb = simd::vload<std::uint64_t, Lanes>(0, pb + i);
      simd::popcount_accumulate(acc, va ^ vb);
    }
    for (; i < row_words; ++i) tail += popcount(pa[i] ^ pb[i]);
  }
  return simd::reduce_add(acc) + tail;
}

/// AND-flavoured whole-window kernel (the bit-plane first layer's fused
/// inner loop): identical schedule to xor_popcount_2d_wide.
template <int Lanes>
std::int64_t and_popcount_2d_wide(const std::uint64_t* a,
                                  std::int64_t a_stride,
                                  const std::uint64_t* b,
                                  std::int64_t b_stride,
                                  std::int64_t row_words, std::int64_t rows) {
  using V = simd::vec<std::uint64_t, Lanes>;
  V acc{};
  std::int64_t tail = 0;
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::uint64_t* pa = a + r * a_stride;
    const std::uint64_t* pb = b + r * b_stride;
    std::int64_t i = 0;
    for (; i + Lanes <= row_words; i += Lanes) {
      const V va = simd::vload<std::uint64_t, Lanes>(0, pa + i);
      const V vb = simd::vload<std::uint64_t, Lanes>(0, pb + i);
      simd::popcount_accumulate(acc, va & vb);
    }
    for (; i < row_words; ++i) tail += popcount(pa[i] & pb[i]);
  }
  return simd::reduce_add(acc) + tail;
}

// Shared-window kernels: one pass over the input window spans scores the 8
// filters of a workload group. The input vector is loaded once per chunk
// and reused across the 8 weight streams (the compiler keeps it in a
// register), so the group pays 9 loads per chunk instead of 16 and one loop
// prologue per row instead of 8.
template <int Lanes, bool And>
void popcount_2d_x8_wide(const std::uint64_t* a, std::int64_t a_stride,
                         const std::uint64_t* b, std::int64_t b_pitch,
                         std::int64_t b_stride, std::int64_t row_words,
                         std::int64_t rows, std::int64_t out[8]) {
  using V = simd::vec<std::uint64_t, Lanes>;
  V acc[8]{};
  std::int64_t tail[8] = {};
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::uint64_t* pa = a + r * a_stride;
    const std::uint64_t* pb = b + r * b_stride;
    std::int64_t i = 0;
    for (; i + Lanes <= row_words; i += Lanes) {
      const V va = simd::vload<std::uint64_t, Lanes>(0, pa + i);
      for (int f = 0; f < 8; ++f) {
        const V vb = simd::vload<std::uint64_t, Lanes>(0, pb + f * b_pitch + i);
        simd::popcount_accumulate(acc[f], And ? va & vb : va ^ vb);
      }
    }
    for (; i < row_words; ++i) {
      const std::uint64_t wa = pa[i];
      for (int f = 0; f < 8; ++f) {
        const std::uint64_t wb = pb[f * b_pitch + i];
        tail[f] += popcount(And ? wa & wb : wa ^ wb);
      }
    }
  }
  for (int f = 0; f < 8; ++f) out[f] = simd::reduce_add(acc[f]) + tail[f];
}

// Word-granularity shared-window loop for the narrow widths (no lane
// accumulator to carry; the sharing of the input load is the whole point).
template <bool And>
void popcount_2d_x8_words(const std::uint64_t* a, std::int64_t a_stride,
                          const std::uint64_t* b, std::int64_t b_pitch,
                          std::int64_t b_stride, std::int64_t row_words,
                          std::int64_t rows, std::int64_t out[8]) {
  std::int64_t acc[8] = {};
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::uint64_t* pa = a + r * a_stride;
    const std::uint64_t* pb = b + r * b_stride;
    for (std::int64_t i = 0; i < row_words; ++i) {
      const std::uint64_t wa = pa[i];
      for (int f = 0; f < 8; ++f) {
        const std::uint64_t wb = pb[f * b_pitch + i];
        acc[f] += popcount(And ? wa & wb : wa ^ wb);
      }
    }
  }
  for (int f = 0; f < 8; ++f) out[f] = acc[f];
}

template <bool And>
void popcount_2d_x8(const std::uint64_t* a, std::int64_t a_stride,
                    const std::uint64_t* b, std::int64_t b_pitch,
                    std::int64_t b_stride, std::int64_t row_words,
                    std::int64_t rows, PackWidth w, std::int64_t out[8]) {
  PB_CHECK(row_words >= 0 && rows >= 0, "negative span geometry");
  switch (w) {
    case PackWidth::k128:
      return popcount_2d_x8_wide<2, And>(a, a_stride, b, b_pitch, b_stride,
                                         row_words, rows, out);
    case PackWidth::k256:
      return popcount_2d_x8_wide<4, And>(a, a_stride, b, b_pitch, b_stride,
                                         row_words, rows, out);
    case PackWidth::k512:
      return popcount_2d_x8_wide<8, And>(a, a_stride, b, b_pitch, b_stride,
                                         row_words, rows, out);
    case PackWidth::k1024:
      return popcount_2d_x8_wide<16, And>(a, a_stride, b, b_pitch, b_stride,
                                          row_words, rows, out);
    default:
      return popcount_2d_x8_words<And>(a, a_stride, b, b_pitch, b_stride,
                                       row_words, rows, out);
  }
}

template <int Lanes>
std::int64_t and_popcount_wide(const std::uint64_t* a, const std::uint64_t* b,
                               std::int64_t nwords) {
  using V = simd::vec<std::uint64_t, Lanes>;
  V acc{};
  std::int64_t tail = 0;
  std::int64_t i = 0;
  for (; i + Lanes <= nwords; i += Lanes) {
    const V va = simd::vload<std::uint64_t, Lanes>(0, a + i);
    const V vb = simd::vload<std::uint64_t, Lanes>(0, b + i);
    simd::popcount_accumulate(acc, va & vb);
  }
  for (; i < nwords; ++i) tail += popcount(a[i] & b[i]);
  return simd::reduce_add(acc) + tail;
}

}  // namespace

PackWidth select_pack_width_for_span(std::int64_t span_words) noexcept {
  // instrs(W) = floor(span/lanes) vector ops + (span % lanes) scalar tail
  // ops; sub-word granularities only split words into more instructions, so
  // candidates start at one word. Widths whose lane count overshoots the
  // whole span never issue a vector op and are skipped.
  PackWidth best = PackWidth::k64;
  std::int64_t best_instrs = span_words;
  for (const PackWidth w : {PackWidth::k128, PackWidth::k256, PackWidth::k512,
                            PackWidth::k1024}) {
    const std::int64_t lanes = bits(w) / static_cast<int>(kWordBits);
    if (lanes > span_words) break;
    const std::int64_t instrs = span_words / lanes + span_words % lanes;
    if (instrs <= best_instrs) {
      best = w;
      best_instrs = instrs;
    }
  }
  return best;
}

PackWidth cap_pack_width_to_span(PackWidth w,
                                 std::int64_t span_words) noexcept {
  while (bits(w) / static_cast<int>(kWordBits) > span_words &&
         w != PackWidth::k64) {
    w = static_cast<PackWidth>(bits(w) / 2);
  }
  return w;
}

PackWidth select_pack_width(std::int64_t channels) noexcept {
  // Widest granularity whose span still fits the packed channel run of one
  // pixel; below 64 channels narrow kernels avoid wasted lanes.
  if (channels >= 1024) return PackWidth::k1024;
  if (channels >= 512) return PackWidth::k512;
  if (channels >= 256) return PackWidth::k256;
  if (channels >= 128) return PackWidth::k128;
  if (channels >= 64) return PackWidth::k64;
  if (channels >= 32) return PackWidth::k32;
  if (channels >= 16) return PackWidth::k16;
  return PackWidth::k8;
}

std::int64_t xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                          std::int64_t nwords, PackWidth w) {
  PB_CHECK(nwords >= 0, "negative word count");
  switch (w) {
    case PackWidth::k8:
      return xor_popcount_narrow<std::uint8_t>(a, b, nwords);
    case PackWidth::k16:
      return xor_popcount_narrow<std::uint16_t>(a, b, nwords);
    case PackWidth::k32:
      return xor_popcount_narrow<std::uint32_t>(a, b, nwords);
    case PackWidth::k64: {
      std::int64_t total = 0;
      for (std::int64_t i = 0; i < nwords; ++i) total += popcount(a[i] ^ b[i]);
      return total;
    }
    case PackWidth::k128:
      return xor_popcount_wide<2>(a, b, nwords);
    case PackWidth::k256:
      return xor_popcount_wide<4>(a, b, nwords);
    case PackWidth::k512:
      return xor_popcount_wide<8>(a, b, nwords);
    case PackWidth::k1024:
      return xor_popcount_wide<16>(a, b, nwords);
  }
  throw InvalidArgument("unknown pack width");
}

std::int64_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                          std::int64_t nwords, PackWidth w) {
  PB_CHECK(nwords >= 0, "negative word count");
  switch (w) {
    case PackWidth::k8:
      return and_popcount_narrow<std::uint8_t>(a, b, nwords);
    case PackWidth::k16:
      return and_popcount_narrow<std::uint16_t>(a, b, nwords);
    case PackWidth::k32:
      return and_popcount_narrow<std::uint32_t>(a, b, nwords);
    case PackWidth::k64: {
      std::int64_t total = 0;
      for (std::int64_t i = 0; i < nwords; ++i) total += popcount(a[i] & b[i]);
      return total;
    }
    case PackWidth::k128:
      return and_popcount_wide<2>(a, b, nwords);
    case PackWidth::k256:
      return and_popcount_wide<4>(a, b, nwords);
    case PackWidth::k512:
      return and_popcount_wide<8>(a, b, nwords);
    case PackWidth::k1024:
      return and_popcount_wide<16>(a, b, nwords);
  }
  throw InvalidArgument("unknown pack width");
}

std::int64_t xor_popcount_2d(const std::uint64_t* a, std::int64_t a_stride,
                             const std::uint64_t* b, std::int64_t b_stride,
                             std::int64_t row_words, std::int64_t rows,
                             PackWidth w) {
  PB_CHECK(row_words >= 0 && rows >= 0, "negative span geometry");
  switch (w) {
    case PackWidth::k128:
      return xor_popcount_2d_wide<2>(a, a_stride, b, b_stride, row_words,
                                     rows);
    case PackWidth::k256:
      return xor_popcount_2d_wide<4>(a, a_stride, b, b_stride, row_words,
                                     rows);
    case PackWidth::k512:
      return xor_popcount_2d_wide<8>(a, a_stride, b, b_stride, row_words,
                                     rows);
    case PackWidth::k1024:
      return xor_popcount_2d_wide<16>(a, a_stride, b, b_stride, row_words,
                                      rows);
    default: {
      // Narrow granularities have no cross-row accumulator to carry; reuse
      // the per-span kernels row by row.
      std::int64_t total = 0;
      for (std::int64_t r = 0; r < rows; ++r) {
        total += xor_popcount(a + r * a_stride, b + r * b_stride, row_words,
                              w);
      }
      return total;
    }
  }
}

std::int64_t and_popcount_2d(const std::uint64_t* a, std::int64_t a_stride,
                             const std::uint64_t* b, std::int64_t b_stride,
                             std::int64_t row_words, std::int64_t rows,
                             PackWidth w) {
  PB_CHECK(row_words >= 0 && rows >= 0, "negative span geometry");
  switch (w) {
    case PackWidth::k128:
      return and_popcount_2d_wide<2>(a, a_stride, b, b_stride, row_words,
                                     rows);
    case PackWidth::k256:
      return and_popcount_2d_wide<4>(a, a_stride, b, b_stride, row_words,
                                     rows);
    case PackWidth::k512:
      return and_popcount_2d_wide<8>(a, a_stride, b, b_stride, row_words,
                                     rows);
    case PackWidth::k1024:
      return and_popcount_2d_wide<16>(a, a_stride, b, b_stride, row_words,
                                      rows);
    default: {
      // Narrow granularities have no cross-row accumulator to carry; reuse
      // the per-span kernels row by row.
      std::int64_t total = 0;
      for (std::int64_t r = 0; r < rows; ++r) {
        total += and_popcount(a + r * a_stride, b + r * b_stride, row_words,
                              w);
      }
      return total;
    }
  }
}

void xor_popcount_2d_x8(const std::uint64_t* a, std::int64_t a_stride,
                        const std::uint64_t* b, std::int64_t b_pitch,
                        std::int64_t b_stride, std::int64_t row_words,
                        std::int64_t rows, PackWidth w, std::int64_t out[8]) {
  popcount_2d_x8<false>(a, a_stride, b, b_pitch, b_stride, row_words, rows, w,
                        out);
}

void and_popcount_2d_x8(const std::uint64_t* a, std::int64_t a_stride,
                        const std::uint64_t* b, std::int64_t b_pitch,
                        std::int64_t b_stride, std::int64_t row_words,
                        std::int64_t rows, PackWidth w, std::int64_t out[8]) {
  popcount_2d_x8<true>(a, a_stride, b, b_pitch, b_stride, row_words, rows, w,
                       out);
}

namespace {

/// One MRx8 register tile with a compile-time row count, so the accumulator
/// block is a true register array (no variable indexing in the hot loop).
/// 32-bit accumulators suffice: a tile's mismatch count is bounded by
/// k_words * 64, far under 2^31 for any real layer.
template <int Rows>
void gemm_tile(const std::uint64_t* a, std::int64_t a_stride,
               const std::uint64_t* b, std::int64_t b_pitch,
               std::int64_t k_words, std::int64_t* out) {
  std::int32_t acc[Rows][8] = {};
  for (std::int64_t k = 0; k < k_words; ++k) {
    std::uint64_t aw[Rows];
    for (int r = 0; r < Rows; ++r) aw[r] = a[r * a_stride + k];
    for (int f = 0; f < 8; ++f) {
      const std::uint64_t bw = b[f * b_pitch + k];
      for (int r = 0; r < Rows; ++r) {
        acc[r][f] += static_cast<std::int32_t>(popcount(aw[r] ^ bw));
      }
    }
  }
  for (int r = 0; r < Rows; ++r) {
    for (int f = 0; f < 8; ++f) out[r * 8 + f] = acc[r][f];
  }
}

}  // namespace

void xor_popcount_gemm_x8(const std::uint64_t* a, std::int64_t a_stride,
                          const std::uint64_t* b, std::int64_t b_pitch,
                          std::int64_t k_words, std::int64_t rows,
                          std::int64_t* out) {
  PB_CHECK(k_words >= 0 && rows >= 1 && rows <= kGemmMr,
           "bad GEMM tile geometry");
  switch (rows) {
    case 1: return gemm_tile<1>(a, a_stride, b, b_pitch, k_words, out);
    case 2: return gemm_tile<2>(a, a_stride, b, b_pitch, k_words, out);
    case 3: return gemm_tile<3>(a, a_stride, b, b_pitch, k_words, out);
    default: return gemm_tile<4>(a, a_stride, b, b_pitch, k_words, out);
  }
}

std::int64_t popcount_words(const std::uint64_t* a, std::int64_t nwords) {
  std::int64_t total = 0;
  for (std::int64_t i = 0; i < nwords; ++i) total += popcount(a[i]);
  return total;
}

}  // namespace phonebit::bitpack
