#include "bitpack/compress.hpp"

#include <cstring>
#include <map>

namespace phonebit::bitpack {
namespace {

// Patch-equality of two filters that share a dictionary row: identical CSR
// spans mean identical reconstructed content, which is what the path-A
// dedup schedule needs to let one lane copy another's mismatch counts.
bool same_encoding(const std::vector<std::uint32_t>& row_index,
                   const std::vector<std::uint32_t>& begin,
                   const std::vector<FilterDelta>& deltas, std::int64_t fa,
                   std::int64_t fb) {
  if (row_index[fa] != row_index[fb]) return false;
  const std::uint32_t na = begin[fa + 1] - begin[fa];
  if (na != begin[fb + 1] - begin[fb]) return false;
  for (std::uint32_t i = 0; i < na; ++i) {
    if (!(deltas[begin[fa] + i] == deltas[begin[fb] + i])) return false;
  }
  return true;
}

}  // namespace

std::int64_t compressed_encoded_bytes(std::int64_t filters,
                                      std::int64_t k_words,
                                      std::int64_t unique_rows,
                                      std::int64_t delta_words) noexcept {
  return 8 +                        // k_words (i64)
         4 +                        // unique row count (u32)
         unique_rows * k_words * 8  // dictionary words
         + filters * 4              // per-filter row index (u32)
         + 4                        // total delta count (u32)
         + (filters + 1) * 4        // CSR delta offsets (u32)
         + delta_words * 12;        // word (u32) + mask (u64) per entry
}

CompressedFilterBank CompressedFilterBank::build(const PackedTensor& weights) {
  PB_CHECK(weights.data() != nullptr, "cannot compress an empty filter bank");
  const Shape shape = weights.shape();
  const std::int64_t nf = shape.n;
  const std::int64_t k = shape.h * shape.w * weights.words_per_pixel();

  CompressedFilterBank bank;
  bank.shape_ = shape;
  bank.k_words_ = k;
  bank.row_index_.reserve(static_cast<std::size_t>(nf));
  bank.delta_begin_.reserve(static_cast<std::size_t>(nf) + 1);
  bank.delta_begin_.push_back(0);

  // Content -> first filter index with that content. std::map (not
  // unordered) so iteration/clustering is fully deterministic.
  std::map<std::vector<std::uint64_t>, std::int64_t> seen;

  for (std::int64_t f = 0; f < nf; ++f) {
    const std::uint64_t* row = weights.pixel(f, 0, 0);
    std::vector<std::uint64_t> key(row, row + k);
    const auto it = seen.find(key);
    if (it != seen.end()) {
      // Exact duplicate of an earlier filter: share its whole encoding.
      const std::int64_t prev = it->second;
      bank.row_index_.push_back(bank.row_index_[prev]);
      for (std::uint32_t e = bank.delta_begin_[prev];
           e < bank.delta_begin_[prev + 1]; ++e) {
        bank.deltas_.push_back(bank.deltas_[e]);
      }
      bank.delta_begin_.push_back(
          static_cast<std::uint32_t>(bank.deltas_.size()));
      continue;
    }
    seen.emplace(std::move(key), f);

    // Nearest existing dictionary row by differing-word count; lowest index
    // wins ties so the pass is order-deterministic.
    const std::int64_t unique = bank.unique_rows();
    std::int64_t best_u = -1;
    std::int64_t best_cnt = k + 1;
    for (std::int64_t u = 0; u < unique; ++u) {
      const std::uint64_t* d = bank.dict_row(u);
      std::int64_t cnt = 0;
      for (std::int64_t w = 0; w < k && cnt < best_cnt; ++w) {
        cnt += (row[w] != d[w]) ? 1 : 0;
      }
      if (cnt < best_cnt) {
        best_cnt = cnt;
        best_u = u;
      }
    }
    // Near-duplicate threshold: a patch is worth it while it touches at
    // most a third of the row — 12 bytes/entry vs 8 bytes/word raw, plus
    // the reuse kernels' per-entry correction cost.
    if (best_u >= 0 && best_cnt * 3 <= k) {
      bank.row_index_.push_back(static_cast<std::uint32_t>(best_u));
      const std::uint64_t* d = bank.dict_row(best_u);
      for (std::int64_t w = 0; w < k; ++w) {
        if (row[w] != d[w]) {
          bank.deltas_.push_back(
              {static_cast<std::uint32_t>(w), row[w] ^ d[w]});
        }
      }
    } else {
      bank.row_index_.push_back(static_cast<std::uint32_t>(unique));
      bank.dict_.insert(bank.dict_.end(), row, row + k);
    }
    bank.delta_begin_.push_back(
        static_cast<std::uint32_t>(bank.deltas_.size()));
  }

  bank.finalize();
  return bank;
}

CompressedFilterBank::CompressedFilterBank(Shape filter_shape,
                                           std::vector<std::uint64_t> dict,
                                           std::vector<std::uint32_t> row_index,
                                           std::vector<std::uint32_t> delta_begin,
                                           std::vector<FilterDelta> deltas)
    : shape_(filter_shape),
      k_words_(filter_shape.h * filter_shape.w *
               ceil_div(filter_shape.c, kWordBits)),
      dict_(std::move(dict)),
      row_index_(std::move(row_index)),
      delta_begin_(std::move(delta_begin)),
      deltas_(std::move(deltas)) {
  PB_CHECK(k_words_ > 0 && !dict_.empty() &&
               static_cast<std::int64_t>(dict_.size()) % k_words_ == 0,
           "compressed bank dictionary size " << dict_.size()
                                              << " not a multiple of k_words "
                                              << k_words_);
  PB_CHECK(static_cast<std::int64_t>(row_index_.size()) == shape_.n &&
               static_cast<std::int64_t>(delta_begin_.size()) == shape_.n + 1,
           "compressed bank index sizes do not match filter count "
               << shape_.n);
  finalize();
}

void CompressedFilterBank::finalize() {
  const std::int64_t nf = shape_.n;
  stats_.filters = nf;
  stats_.k_words = k_words_;
  stats_.unique_rows = unique_rows();
  stats_.delta_words = static_cast<std::int64_t>(deltas_.size());
  std::int64_t empty_patches = 0;
  for (std::int64_t f = 0; f < nf; ++f) {
    if (delta_begin_[f + 1] == delta_begin_[f]) {
      ++empty_patches;
    } else {
      ++stats_.delta_filters;
    }
  }
  // Every dictionary row is owned by exactly one patch-free filter (the one
  // appended verbatim); any other patch-free filter is an exact duplicate.
  stats_.exact_dups = empty_patches - stats_.unique_rows;
  stats_.raw_bytes = nf * k_words_ * 8;
  stats_.encoded_bytes = compressed_encoded_bytes(
      nf, k_words_, stats_.unique_rows, stats_.delta_words);

  lane_src_.resize(static_cast<std::size_t>(nf));
  if (nf % 8 == 0) {
    for (std::int64_t g = 0; g < nf / 8; ++g) {
      for (std::int64_t f = 0; f < 8; ++f) {
        std::int64_t src = f;
        for (std::int64_t s = 0; s < f; ++s) {
          if (same_encoding(row_index_, delta_begin_, deltas_, g * 8 + s,
                            g * 8 + f)) {
            src = s;
            break;
          }
        }
        lane_src_[g * 8 + f] = static_cast<std::uint8_t>(src);
        if (src == f) ++distinct_lanes_;
      }
    }
  } else {
    for (std::int64_t f = 0; f < nf; ++f) {
      lane_src_[f] = static_cast<std::uint8_t>(f % 8);
    }
    distinct_lanes_ = nf;
  }
}

PackedTensor CompressedFilterBank::reconstruct() const {
  PackedTensor weights(shape_);
  for (std::int64_t f = 0; f < shape_.n; ++f) {
    std::uint64_t* row = weights.pixel(f, 0, 0);
    std::memcpy(row, dict_row(row_index_[f]),
                static_cast<std::size_t>(k_words_) * 8);
    for (std::uint32_t e = delta_begin_[f]; e < delta_begin_[f + 1]; ++e) {
      row[deltas_[e].word] ^= deltas_[e].mask;
    }
  }
  return weights;
}

namespace {

// Stage-1 inner loop at a fixed row count so the per-row accumulators stay
// in registers, mirroring the gemm_tile<Rows> discipline in binary_ops.cpp.
template <int Rows>
void dict_tile(const std::uint64_t* a, std::int64_t a_stride,
               const std::uint64_t* dict, std::int64_t k_words,
               std::int64_t unique, std::int64_t* partials) {
  for (std::int64_t u = 0; u < unique; ++u) {
    const std::uint64_t* d = dict + u * k_words;
    std::int32_t acc[Rows] = {};
    for (std::int64_t w = 0; w < k_words; ++w) {
      const std::uint64_t dw = d[w];
      for (int r = 0; r < Rows; ++r) {
        acc[r] += popcount(a[r * a_stride + w] ^ dw);
      }
    }
    for (int r = 0; r < Rows; ++r) partials[u * kGemmMr + r] = acc[r];
  }
}

}  // namespace

void xor_popcount_dict(const std::uint64_t* a, std::int64_t a_stride,
                       const CompressedFilterBank& bank, std::int64_t rows,
                       std::int64_t* partials) {
  PB_CHECK(rows >= 1 && rows <= kGemmMr,
           "xor_popcount_dict rows " << rows << " outside [1, " << kGemmMr
                                     << "]");
  PB_CHECK(bank.unique_rows() <= kReuseMaxDict,
           "dictionary too large for reuse partials: " << bank.unique_rows());
  const std::uint64_t* dict = bank.dict().data();
  const std::int64_t k = bank.k_words();
  const std::int64_t u = bank.unique_rows();
  switch (rows) {
    case 1: dict_tile<1>(a, a_stride, dict, k, u, partials); break;
    case 2: dict_tile<2>(a, a_stride, dict, k, u, partials); break;
    case 3: dict_tile<3>(a, a_stride, dict, k, u, partials); break;
    default: dict_tile<4>(a, a_stride, dict, k, u, partials); break;
  }
}

void xor_popcount_gemm_reuse_x8(const std::uint64_t* a, std::int64_t a_stride,
                                const CompressedFilterBank& bank,
                                std::int64_t group, std::int64_t rows,
                                const std::int64_t* partials,
                                std::int64_t* out) {
  const auto& row_index = bank.row_index();
  const auto& begin = bank.delta_begin();
  const auto& deltas = bank.deltas();
  const std::int64_t base = group * 8;
  for (std::int64_t f = 0; f < 8; ++f) {
    const std::int64_t fi = base + f;
    const std::uint32_t u = row_index[fi];
    for (std::int64_t r = 0; r < rows; ++r) {
      out[r * 8 + f] = partials[u * kGemmMr + r];
    }
    if (begin[fi] == begin[fi + 1]) continue;
    const std::uint64_t* d = bank.dict_row(u);
    for (std::uint32_t e = begin[fi]; e < begin[fi + 1]; ++e) {
      const std::int64_t w = deltas[e].word;
      const std::uint64_t m = deltas[e].mask;
      const std::uint64_t dw = d[w];
      for (std::int64_t r = 0; r < rows; ++r) {
        // filter word = dict ^ mask, so popcount(a ^ filter) differs from
        // the cached popcount(a ^ dict) by exactly this correction.
        const std::uint64_t x = a[r * a_stride + w] ^ dw;
        out[r * 8 + f] += popcount(x ^ m) - popcount(x);
      }
    }
  }
}

}  // namespace phonebit::bitpack
