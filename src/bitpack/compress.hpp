// PhoneBit — compile-time weight compression for packed binary filter banks.
//
// "Exploiting Kernel Compression on BNNs" (PAPERS.md) observes that trained
// binary filter banks are highly redundant: many flattened filter rows are
// bit-identical or differ in a handful of words. A packed conv weight bank
// (n=C_out, h=KH, w=KW, c=C_in) stores each filter as one contiguous row of
// k_words = KH*KW*ceil(C_in/64) words, so redundancy factors cleanly into
//
//   dictionary  — the unique (canonical) filter rows, k_words each
//   row_index   — per filter, which dictionary row it references
//   deltas      — per filter, a sparse XOR patch (word index + mask) applied
//                 on top of its dictionary row; exact duplicates have none
//
// Reconstruction is exact (dict[row_index[f]] ^ deltas[f] == filter f), so
// compression is lossless and every consumer stays bit-exact.
//
// Beyond storage, the factorization feeds a partial-popcount reuse schedule
// for the bit-GEMM conv path (DESIGN.md §12): for one im2col tile the
// popcount reduction against each *unique* dictionary row is computed once;
// each referencing filter's mismatch count is then the cached partial plus a
// per-delta-word correction popcount(x ^ mask) - popcount(x), which touches
// only the patched words. With u unique rows and d total delta words this
// turns c_out full K reductions into u full reductions + d word fixups.
#pragma once

#include <cstdint>
#include <vector>

#include "bitpack/binary_ops.hpp"
#include "bitpack/packed_tensor.hpp"

namespace phonebit::bitpack {

/// One sparse XOR patch entry: filter word `word` differs from its
/// dictionary row by the nonzero bit set `mask`.
struct FilterDelta {
  std::uint32_t word = 0;
  std::uint64_t mask = 0;
  friend bool operator==(const FilterDelta&, const FilterDelta&) = default;
};

/// Aggregate compression accounting for one filter bank (pbc compress-stats
/// and the per-step plan records are printed from this).
struct CompressStats {
  std::int64_t filters = 0;       ///< C_out
  std::int64_t k_words = 0;       ///< words per flattened filter row
  std::int64_t unique_rows = 0;   ///< dictionary rows
  std::int64_t exact_dups = 0;    ///< filters with a dup row and no deltas
  std::int64_t delta_filters = 0; ///< filters carrying a nonempty patch
  std::int64_t delta_words = 0;   ///< total patch entries across filters
  std::int64_t raw_bytes = 0;     ///< filters * k_words * 8
  std::int64_t encoded_bytes = 0; ///< serialized dict+index+delta footprint
  double ratio() const {
    return encoded_bytes > 0 ? static_cast<double>(raw_bytes) /
                                   static_cast<double>(encoded_bytes)
                             : 1.0;
  }
  friend bool operator==(const CompressStats&, const CompressStats&) = default;
};

/// Hard cap on dictionary rows eligible for the partial-popcount reuse
/// kernels: stage-1 partials live in a fixed per-work-item stack buffer of
/// kReuseMaxDict * kGemmMr accumulators (~8 KB), never in the shared arena,
/// so parallel work items cannot collide and warm forwards stay
/// zero-allocation. Banks with more unique rows still compress for storage;
/// they just keep the plain kernels.
inline constexpr std::int64_t kReuseMaxDict = 256;

/// Lossless dictionary/index/delta factorization of one packed filter bank.
/// Built deterministically from the weights (same bank for the same bytes,
/// on every thread and every load), or adopted verbatim from an artifact so
/// `Engine::load_artifact` never re-clusters.
class CompressedFilterBank {
 public:
  /// Deterministic single-pass clustering (DESIGN.md §12): filters in index
  /// order; a content-identical earlier filter shares its dictionary row and
  /// patch; otherwise the filter is matched against existing dictionary rows
  /// (lowest index wins ties) and encoded as a delta patch when it differs
  /// in at most k_words/3 words; otherwise it opens a new dictionary row.
  static CompressedFilterBank build(const PackedTensor& weights);

  /// Adopts pre-validated parts (the artifact loader). `filter_shape` is the
  /// weight-bank shape (n=C_out, h=KH, w=KW, c=C_in); vectors must satisfy
  /// the invariants build() guarantees — the loader revalidates before
  /// constructing.
  CompressedFilterBank(Shape filter_shape, std::vector<std::uint64_t> dict,
                       std::vector<std::uint32_t> row_index,
                       std::vector<std::uint32_t> delta_begin,
                       std::vector<FilterDelta> deltas);

  const Shape& filter_shape() const noexcept { return shape_; }
  std::int64_t k_words() const noexcept { return k_words_; }
  std::int64_t num_filters() const noexcept { return shape_.n; }
  std::int64_t unique_rows() const noexcept {
    return static_cast<std::int64_t>(dict_.size()) / k_words_;
  }
  const std::uint64_t* dict_row(std::int64_t i) const noexcept {
    return dict_.data() + i * k_words_;
  }
  const std::vector<std::uint64_t>& dict() const noexcept { return dict_; }
  const std::vector<std::uint32_t>& row_index() const noexcept {
    return row_index_;
  }
  /// CSR offsets into deltas(): filter f's patch is [begin[f], begin[f+1]).
  const std::vector<std::uint32_t>& delta_begin() const noexcept {
    return delta_begin_;
  }
  const std::vector<FilterDelta>& deltas() const noexcept { return deltas_; }
  const CompressStats& stats() const noexcept { return stats_; }

  /// Exact inverse of build(): the packed weight bank, bit-identical to the
  /// tensor the bank was built from.
  PackedTensor reconstruct() const;

  /// Per-workload-group duplicate-lane table for the path-A shared-window
  /// dedup schedule: lane f of group g computes its window only when
  /// lane_sources()[g*8+f] == f; otherwise it copies the mismatch count of
  /// the (identical) earlier lane it points at. Identity when C_out is not
  /// a multiple of 8. Size num_filters().
  const std::vector<std::uint8_t>& lane_sources() const noexcept {
    return lane_src_;
  }
  /// Number of lanes that actually compute (lane_sources()[f] == f's
  /// position); == num_filters() when no intra-group duplicates exist.
  std::int64_t distinct_group_lanes() const noexcept { return distinct_lanes_; }

  friend bool operator==(const CompressedFilterBank& a,
                         const CompressedFilterBank& b) {
    return a.shape_ == b.shape_ && a.dict_ == b.dict_ &&
           a.row_index_ == b.row_index_ && a.delta_begin_ == b.delta_begin_ &&
           a.deltas_ == b.deltas_;
  }

 private:
  CompressedFilterBank() = default;  // build() fills the parts in place

  void finalize();  // stats_, lane_src_, distinct_lanes_ from the parts

  Shape shape_{};
  std::int64_t k_words_ = 0;
  std::vector<std::uint64_t> dict_;
  std::vector<std::uint32_t> row_index_;
  std::vector<std::uint32_t> delta_begin_;
  std::vector<FilterDelta> deltas_;
  std::vector<std::uint8_t> lane_src_;
  std::int64_t distinct_lanes_ = 0;
  CompressStats stats_{};
};

/// Serialized byte footprint of the dictionary/index/delta sections exactly
/// as the v4 artifact writer frames them (k_words i64 + unique u32 + dict
/// words + per-filter index u32 + delta count u32 + CSR offsets u32 + 12
/// bytes per delta entry). save() picks compressed storage only when this
/// beats filters*k_words*8.
std::int64_t compressed_encoded_bytes(std::int64_t filters,
                                      std::int64_t k_words,
                                      std::int64_t unique_rows,
                                      std::int64_t delta_words) noexcept;

/// Stage 1 of the reuse schedule: popcount(xor) of each of `rows` im2col
/// rows of A (row r at `a + r * a_stride`, k_words long) against every
/// dictionary row of `bank`, written to
/// `partials[u * kGemmMr + r]`. One call per GEMM m-tile covers every
/// filter group; requires bank.unique_rows() <= kReuseMaxDict.
void xor_popcount_dict(const std::uint64_t* a, std::int64_t a_stride,
                       const CompressedFilterBank& bank, std::int64_t rows,
                       std::int64_t* partials);

/// Stage 2: mismatch counts for the 8 filters of `group` derived from the
/// stage-1 partials — filter f's accumulator starts at its dictionary row's
/// partial and each patch entry contributes popcount(x ^ mask) - popcount(x)
/// where x = a_word ^ dict_word. `out[r * 8 + f]` matches
/// xor_popcount_gemm_x8 against the reconstructed weights bit-exactly.
void xor_popcount_gemm_reuse_x8(const std::uint64_t* a, std::int64_t a_stride,
                                const CompressedFilterBank& bank,
                                std::int64_t group, std::int64_t rows,
                                const std::int64_t* partials,
                                std::int64_t* out);

}  // namespace phonebit::bitpack
