// PhoneBit — binary dot-product primitives (Eqn 1 of the paper).
//
// The inner loops of every binary convolution/dense kernel reduce to
// "xor two packed spans and popcount", executed at a chosen vectorization
// granularity: the paper packs with OpenCL vector types from uchar (8-bit)
// up to ulong16 (1024-bit) and selects the kernel by channel count (§V-A.2).
// The memory format is always 64-bit words; PackWidth selects how wide the
// *processing* vectors are, which is what the granularity ablation measures.
#pragma once

#include <cstdint>

#include "bitpack/packed_tensor.hpp"

namespace phonebit::bitpack {

/// Vectorization granularity for bit-wise kernels, in bits.
enum class PackWidth : int {
  k8 = 8,      ///< uchar
  k16 = 16,    ///< ushort
  k32 = 32,    ///< uint
  k64 = 64,    ///< ulong
  k128 = 128,  ///< ulong2
  k256 = 256,  ///< ulong4
  k512 = 512,  ///< ulong8
  k1024 = 1024 ///< ulong16 — the paper's widest granularity
};

/// Width in bits as an int.
constexpr int bits(PackWidth w) noexcept { return static_cast<int>(w); }

/// The paper selects "the optimal bit packing strategy and computing kernel
/// according to channel dimensions": the widest vector that does not
/// overshoot one pixel's packed channel span.
PackWidth select_pack_width(std::int64_t channels) noexcept;

/// popcount(xor(a, b)) over `nwords` 64-bit words, processed at granularity
/// `w`. With the ±1 encoding this counts sign mismatches, so the Eqn-1 dot
/// is `len - 2 * xor_popcount(...)`.
std::int64_t xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                          std::int64_t nwords, PackWidth w);

/// popcount(and(a, b)) over `nwords` words at granularity `w`; used by the
/// 0/1 bit-plane first layer (Eqn 2).
std::int64_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                          std::int64_t nwords, PackWidth w);

/// Strided multi-span accumulate: popcount(xor) summed over `rows` spans of
/// `row_words` words each, where consecutive spans of `a` start `a_stride`
/// words apart and spans of `b` start `b_stride` words apart. In the
/// NHWC-packed layout one binary-conv window is exactly this shape — the kw
/// taps of a filter row are contiguous in both operands, so `a` walks kh
/// input rows (stride = image row pitch) against kh contiguous weight rows —
/// and the whole window reduces to ONE call instead of kh*kw short ones.
/// Wide granularities keep a vector lane accumulator across all rows and
/// reduce once at the end (simd::popcount_accumulate).
std::int64_t xor_popcount_2d(const std::uint64_t* a, std::int64_t a_stride,
                             const std::uint64_t* b, std::int64_t b_stride,
                             std::int64_t row_words, std::int64_t rows,
                             PackWidth w);

/// popcount(a) over `nwords` words.
std::int64_t popcount_words(const std::uint64_t* a, std::int64_t nwords);

/// Eqn 1: dot of two ±1 vectors of true length `len` stored in packed spans
/// (padding bits zero in both operands).
inline std::int64_t binary_dot(const std::uint64_t* a, const std::uint64_t* b,
                               std::int64_t nwords, std::int64_t len,
                               PackWidth w = PackWidth::k64) {
  return len - 2 * xor_popcount(a, b, nwords, w);
}

/// Dot of a 0/1 bit-plane `p` against ±1 weights `wbits`:
/// sum_i p_i * w_i = 2*popcount(p & w) - popcount(p).
inline std::int64_t plane_dot(const std::uint64_t* p,
                              const std::uint64_t* wbits, std::int64_t nwords,
                              PackWidth w = PackWidth::k64) {
  return 2 * and_popcount(p, wbits, nwords, w) - popcount_words(p, nwords);
}

}  // namespace phonebit::bitpack
