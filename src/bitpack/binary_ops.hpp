// PhoneBit — binary dot-product primitives (Eqn 1 of the paper).
//
// The inner loops of every binary convolution/dense kernel reduce to
// "xor two packed spans and popcount", executed at a chosen vectorization
// granularity: the paper packs with OpenCL vector types from uchar (8-bit)
// up to ulong16 (1024-bit) and selects the kernel by channel count (§V-A.2).
// The memory format is always 64-bit words; PackWidth selects how wide the
// *processing* vectors are, which is what the granularity ablation measures.
#pragma once

#include <cstdint>

#include "bitpack/packed_tensor.hpp"

namespace phonebit::bitpack {

/// Vectorization granularity for bit-wise kernels, in bits.
enum class PackWidth : int {
  k8 = 8,      ///< uchar
  k16 = 16,    ///< ushort
  k32 = 32,    ///< uint
  k64 = 64,    ///< ulong
  k128 = 128,  ///< ulong2
  k256 = 256,  ///< ulong4
  k512 = 512,  ///< ulong8
  k1024 = 1024 ///< ulong16 — the paper's widest granularity
};

/// Width in bits as an int.
constexpr int bits(PackWidth w) noexcept { return static_cast<int>(w); }

/// The paper selects "the optimal bit packing strategy and computing kernel
/// according to channel dimensions": the widest vector that does not
/// overshoot one pixel's packed channel span.
PackWidth select_pack_width(std::int64_t channels) noexcept;

/// Granularity for a row-fused span of `span_words` 64-bit words: the width
/// minimizing the per-row instruction count (full vectors + scalar tail
/// words), ties to the wider vector. Unlike the channel rule this accounts
/// for the tail — a 12-word span runs 3 exact ulong4 ops rather than one
/// ulong8 op plus 4 scalar tail words (the bench_kernels `/fast-ckey`
/// ablation keyed the decision).
PackWidth select_pack_width_for_span(std::int64_t span_words) noexcept;

/// Caps `w` to the widest granularity whose lane count fits `span_words`
/// (floor one word): a vector wider than the whole span executes as the
/// 64-bit scalar tail loop, so cost models must not charge it at the wide
/// rate. Span-keyed selection never overshoots — only fixed-width
/// ablations hit the cap.
PackWidth cap_pack_width_to_span(PackWidth w,
                                 std::int64_t span_words) noexcept;

/// popcount(xor(a, b)) over `nwords` 64-bit words, processed at granularity
/// `w`. With the ±1 encoding this counts sign mismatches, so the Eqn-1 dot
/// is `len - 2 * xor_popcount(...)`.
std::int64_t xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                          std::int64_t nwords, PackWidth w);

/// popcount(and(a, b)) over `nwords` words at granularity `w`; used by the
/// 0/1 bit-plane first layer (Eqn 2).
std::int64_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                          std::int64_t nwords, PackWidth w);

/// Strided multi-span accumulate: popcount(xor) summed over `rows` spans of
/// `row_words` words each, where consecutive spans of `a` start `a_stride`
/// words apart and spans of `b` start `b_stride` words apart. In the
/// NHWC-packed layout one binary-conv window is exactly this shape — the kw
/// taps of a filter row are contiguous in both operands, so `a` walks kh
/// input rows (stride = image row pitch) against kh contiguous weight rows —
/// and the whole window reduces to ONE call instead of kh*kw short ones.
/// Wide granularities keep a vector lane accumulator across all rows and
/// reduce once at the end (simd::popcount_accumulate).
std::int64_t xor_popcount_2d(const std::uint64_t* a, std::int64_t a_stride,
                             const std::uint64_t* b, std::int64_t b_stride,
                             std::int64_t row_words, std::int64_t rows,
                             PackWidth w);

/// AND-flavoured strided multi-span accumulate — the same whole-window
/// reduction for the 0/1 bit-plane first layer (Eqn 2): one call covers all
/// kh rows of a plane window against the contiguous filter rows, lane
/// accumulator carried across rows.
std::int64_t and_popcount_2d(const std::uint64_t* a, std::int64_t a_stride,
                             const std::uint64_t* b, std::int64_t b_stride,
                             std::int64_t row_words, std::int64_t rows,
                             PackWidth w);

/// Shared-window schedule: xor_popcount_2d of ONE input window against the
/// 8 filters of a workload group in a single pass. Each input span is
/// loaded once per row and scored against all 8 weight streams (filter f's
/// rows start at `b + f*b_pitch`, strided `b_stride` apart), with one
/// mismatch accumulator per filter — instead of 8 independent window
/// passes each re-reading the same input spans. `out[f]` receives filter
/// f's mismatch count; results are bit-exact with 8 xor_popcount_2d calls.
/// Narrow granularities (< 128 bits) have no cross-row lane accumulator
/// and run the shared loop at word granularity.
void xor_popcount_2d_x8(const std::uint64_t* a, std::int64_t a_stride,
                        const std::uint64_t* b, std::int64_t b_pitch,
                        std::int64_t b_stride, std::int64_t row_words,
                        std::int64_t rows, PackWidth w, std::int64_t out[8]);

/// AND-flavoured shared-window schedule for the bit-plane first layer: one
/// pass over a 0/1 plane window scores the 8 filters of the group.
void and_popcount_2d_x8(const std::uint64_t* a, std::int64_t a_stride,
                        const std::uint64_t* b, std::int64_t b_pitch,
                        std::int64_t b_stride, std::int64_t row_words,
                        std::int64_t rows, PackWidth w, std::int64_t out[8]);

/// M-rows of one bit-GEMM register tile (the conv path-D microkernel).
inline constexpr int kGemmMr = 4;

/// Register-tiled bit-GEMM microkernel (DESIGN.md §11): scores up to
/// kGemmMr im2col rows of A (row r at `a + r * a_stride`, `k_words` long)
/// against the 8 contiguous weight panels of one filter group (filter f's
/// panel at `b + f * b_pitch`) in one pass over the K dimension. The
/// rows x 8 mismatch accumulators live in registers for the whole
/// reduction, so each k-word of A is loaded once per 8 filters and each
/// weight word once per `rows` outputs — `rows` + 8 loads feed rows*8
/// xor+popcount+add ops per K step, versus one load per op when windows
/// are streamed independently. `out[r * 8 + f]` receives row r's mismatch
/// count against filter f; bit-exact with rows*8 xor_popcount calls.
void xor_popcount_gemm_x8(const std::uint64_t* a, std::int64_t a_stride,
                          const std::uint64_t* b, std::int64_t b_pitch,
                          std::int64_t k_words, std::int64_t rows,
                          std::int64_t* out);

/// popcount(a) over `nwords` words.
std::int64_t popcount_words(const std::uint64_t* a, std::int64_t nwords);

/// Eqn 1: dot of two ±1 vectors of true length `len` stored in packed spans
/// (padding bits zero in both operands).
inline std::int64_t binary_dot(const std::uint64_t* a, const std::uint64_t* b,
                               std::int64_t nwords, std::int64_t len,
                               PackWidth w = PackWidth::k64) {
  return len - 2 * xor_popcount(a, b, nwords, w);
}

/// Dot of a 0/1 bit-plane `p` against ±1 weights `wbits`:
/// sum_i p_i * w_i = 2*popcount(p & w) - popcount(p).
inline std::int64_t plane_dot(const std::uint64_t* p,
                              const std::uint64_t* wbits, std::int64_t nwords,
                              PackWidth w = PackWidth::k64) {
  return 2 * and_popcount(p, wbits, nwords, w) - popcount_words(p, nwords);
}

}  // namespace phonebit::bitpack
