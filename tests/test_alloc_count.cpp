// The zero-allocation contract of compiled forwards (DESIGN.md §7),
// asserted through the buffer-allocation hook (common/alloc_count.hpp):
// every owning Tensor/PackedTensor allocation and every ScratchArena/
// ArenaPool growth bumps a process-wide counter, so snapshotting it around
// warm forwards proves the hot path allocated nothing. With slot-backed
// activations every intermediate is a borrowed view over the session
// arena's slab; the only per-forward allocation left is the owned output
// tensor handed to the caller — and RunOptions::borrow_output removes even
// that, for a true zero-allocation steady state.
#include <gtest/gtest.h>

#include <cstring>

#include "common/alloc_count.hpp"
#include "core/phonebit.hpp"
#include "datasets/synthetic.hpp"
#include "models/zoo.hpp"
#include "test_util.hpp"

namespace phonebit {
namespace {

using core::ExecutionPlan;
using core::FloatModel;
using core::RunOptions;

TEST(AllocCount, WarmCompiledForwardAllocatesNothing) {
  const FloatModel model = FloatModel::random(models::quicknet(10), 501);
  const U8Tensor image = datasets::cifar_like_image(502);
  auto net = core::convert_to_phonebit(model);
  core::Engine engine(testing::test_device());
  const ExecutionPlan plan = net->compile(
      engine, core::BlobDesc{core::BlobKind::kU8, image.shape()});

  auto session = engine.create_session();
  // One input blob, reused across forwards (run() only reads it).
  const core::Blob input{image};
  // Warm-up: the first run reserves the exact scratch + slab peaks.
  const auto reference = plan.run(session, input);
  const FloatTensor expected = reference.float_output();

  // Steady state, borrowed output: ZERO buffer allocations per forward.
  RunOptions borrow;
  borrow.borrow_output = true;
  const std::int64_t before = buffer_alloc_count();
  const int grows_before = session.arena().growth_events();
  for (int i = 0; i < 5; ++i) {
    const auto result = plan.run(session, input, borrow);
    // The borrowed output is a slab view — correct until the next run.
    const auto* out = std::get_if<FloatTensor>(&result.output);
    ASSERT_NE(out, nullptr);
    EXPECT_FALSE(out->owns_storage()) << "run " << i;
    EXPECT_TRUE(testing::expect_bitexact(*out, expected)) << "run " << i;
  }
  EXPECT_EQ(buffer_alloc_count(), before)
      << "a warm compiled forward heap-allocated a buffer";
  EXPECT_EQ(session.arena().growth_events(), grows_before);

  // Default mode: exactly ONE owning allocation per forward — the output
  // tensor handed to the caller (which must outlive the session's slab).
  const std::int64_t before_owned = buffer_alloc_count();
  const auto owned = plan.run(session, input);
  EXPECT_EQ(buffer_alloc_count(), before_owned + 1);
  EXPECT_TRUE(std::get<FloatTensor>(owned.output).owns_storage());
  EXPECT_TRUE(testing::expect_bitexact(owned.float_output(), expected));
}

/// The contract holds with the conv→pool fusion off too (every layer its
/// own slot-backed step), and across the ablation conv paths B and C whose
/// intermediates live in arena scratch.
TEST(AllocCount, WarmForwardAllocatesNothingAcrossConvPaths) {
  struct OptCase {
    const char* label;
    core::EngineOptions opts;
  };
  std::vector<OptCase> cases;
  cases.push_back({"paper-default", core::EngineOptions{}});
  core::EngineOptions no_pool_fuse;
  no_pool_fuse.fuse_conv_pool = false;
  cases.push_back({"no-conv-pool-fusion", no_pool_fuse});
  core::EngineOptions no_fuse;
  no_fuse.fuse_bn_binarize = false;  // path C
  cases.push_back({"no-fusion", no_fuse});
  core::EngineOptions no_integrate;
  no_integrate.integrate_packing = false;  // path B
  cases.push_back({"separate-pack", no_integrate});
  core::EngineOptions gemm;
  gemm.conv_path = core::ConvPathPreference::kGemm;  // path D: im2col panel
  cases.push_back({"bit-gemm", gemm});

  const FloatModel model = FloatModel::random(models::quicknet(10), 503);
  const U8Tensor image = datasets::cifar_like_image(504);
  auto net = core::convert_to_phonebit(model);

  for (const OptCase& c : cases) {
    core::Engine engine(testing::test_device(), c.opts);
    const ExecutionPlan plan = net->compile(
        engine, core::BlobDesc{core::BlobKind::kU8, image.shape()});
    auto session = engine.create_session();
    const core::Blob input{image};
    plan.run(session, input);  // warm-up

    RunOptions borrow;
    borrow.borrow_output = true;
    const std::int64_t before = buffer_alloc_count();
    for (int i = 0; i < 3; ++i) {
      plan.run(session, input, borrow);
    }
    EXPECT_EQ(buffer_alloc_count(), before) << c.label;
  }
}

/// Batched (N > 1) plans keep both halves of the contract: the session
/// arena lands byte-exactly on the liveness pass's batched peaks (slab +
/// scratch scale with N — including path D's N-scaled im2col panel), and
/// warm borrowed-output forwards through the batched plan allocate nothing.
TEST(AllocCount, BatchedPlanPeaksExactAndWarmForwardAllocatesNothing) {
  const FloatModel model = FloatModel::random(models::quicknet(10), 505);
  const U8Tensor image = datasets::cifar_like_image(506);
  auto net = core::convert_to_phonebit(model);

  struct OptCase {
    const char* label;
    core::EngineOptions opts;
  };
  std::vector<OptCase> cases;
  cases.push_back({"auto", core::EngineOptions{}});
  core::EngineOptions gemm;
  gemm.conv_path = core::ConvPathPreference::kGemm;
  cases.push_back({"bit-gemm", gemm});

  for (const OptCase& c : cases) {
    for (const std::int64_t n : {std::int64_t{2}, std::int64_t{4}}) {
      Shape bshape = image.shape();
      bshape.n = n;
      U8Tensor batch(bshape, image.layout());
      for (std::int64_t b = 0; b < n; ++b) {
        std::memcpy(batch.data() + b * image.elems(), image.data(),
                    static_cast<std::size_t>(image.elems()));
      }
      core::Engine engine(testing::test_device(), c.opts);
      const ExecutionPlan plan = net->compile(
          engine, core::BlobDesc{core::BlobKind::kU8, bshape});
      auto session = engine.create_session();
      ASSERT_EQ(session.arena().capacity_bytes(), 0) << c.label;
      const core::Blob input{batch};
      plan.run(session, input);  // warm-up: reserves the exact peaks
      // Byte-exact: the batched liveness pass predicted this capacity.
      EXPECT_EQ(session.arena().capacity_bytes(),
                plan.peak_scratch_bytes() + plan.slab_bytes())
          << c.label << " n=" << n;

      RunOptions borrow;
      borrow.borrow_output = true;
      const std::int64_t before = buffer_alloc_count();
      const int grows_before = session.arena().growth_events();
      for (int i = 0; i < 3; ++i) {
        plan.run(session, input, borrow);
      }
      EXPECT_EQ(buffer_alloc_count(), before)
          << c.label << " n=" << n
          << ": a warm batched forward heap-allocated a buffer";
      EXPECT_EQ(session.arena().growth_events(), grows_before)
          << c.label << " n=" << n;
    }
  }
}

/// Compressed-weight plans (PR 9) keep the whole contract: the lazily
/// built filter banks and the reuse kernels' stage-1 partials live off the
/// arena (compile-time shared_ptr and per-work-item stack respectively),
/// so the arena lands byte-exactly on the plan's peaks and warm forwards
/// stay zero-allocation — storage-only (kLossless) and reuse-selected
/// (kAuto) alike, on both the fused default path and the bit-GEMM path
/// where the reuse kernels run.
TEST(AllocCount, WarmCompressedForwardAllocatesNothingAndPeaksExact) {
  const core::FloatModel model =
      FloatModel::random_redundant(models::quicknet(10), 507);
  const U8Tensor image = datasets::cifar_like_image(508);
  auto net = core::convert_to_phonebit(model);

  struct OptCase {
    const char* label;
    core::WeightCompress compress;
    core::ConvPathPreference path;
  };
  const OptCase cases[] = {
      {"lossless", core::WeightCompress::kLossless,
       core::ConvPathPreference::kAuto},
      {"auto", core::WeightCompress::kAuto, core::ConvPathPreference::kAuto},
      {"auto-gemm", core::WeightCompress::kAuto,
       core::ConvPathPreference::kGemm},
  };
  for (const OptCase& c : cases) {
    core::EngineOptions opts;
    opts.weight_compress = c.compress;
    opts.conv_path = c.path;
    core::Engine engine(testing::test_device(), opts);
    const ExecutionPlan plan = net->compile(
        engine, core::BlobDesc{core::BlobKind::kU8, image.shape()});
    auto session = engine.create_session();
    ASSERT_EQ(session.arena().capacity_bytes(), 0) << c.label;
    const core::Blob input{image};
    plan.run(session, input);  // warm-up: reserves the exact peaks
    // Byte-exact: compression changed neither scratch nor slab demand.
    EXPECT_EQ(session.arena().capacity_bytes(),
              plan.peak_scratch_bytes() + plan.slab_bytes())
        << c.label;

    RunOptions borrow;
    borrow.borrow_output = true;
    const std::int64_t before = buffer_alloc_count();
    const int grows_before = session.arena().growth_events();
    for (int i = 0; i < 3; ++i) {
      plan.run(session, input, borrow);
    }
    EXPECT_EQ(buffer_alloc_count(), before)
        << c.label << ": a warm compressed forward heap-allocated a buffer";
    EXPECT_EQ(session.arena().growth_events(), grows_before) << c.label;
  }
}

}  // namespace
}  // namespace phonebit
