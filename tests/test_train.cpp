// Trainer extension: the Table II accuracy-gap shape — float learns the
// task, STE-binarized learns it with a small gap.
#include <gtest/gtest.h>

#include "datasets/synthetic.hpp"
#include "train/trainer.hpp"

namespace phonebit {
namespace {

class TrainerTest : public ::testing::Test {
 protected:
  static constexpr std::int64_t kHw = 12;
  static constexpr std::int64_t kClasses = 4;
  datasets::PatternDataset train_ =
      datasets::PatternDataset::make(600, kClasses, kHw, 123);
  datasets::PatternDataset test_ =
      datasets::PatternDataset::make(200, kClasses, kHw, 456);
};

TEST_F(TrainerTest, FloatModelLearnsTheTask) {
  train::TrainConfig cfg;
  cfg.epochs = 25;
  const auto r = train::train_mlp(train_, test_, cfg);
  EXPECT_GT(r.test_accuracy, 0.85f) << "float failed to learn";
  // Loss decreases over training.
  ASSERT_GE(r.loss_curve.size(), 2u);
  EXPECT_LT(r.loss_curve.back(), r.loss_curve.front());
}

TEST_F(TrainerTest, BinarizedModelLearnsWithSmallGap) {
  train::TrainConfig fp;
  fp.epochs = 25;
  const auto rf = train::train_mlp(train_, test_, fp);

  train::TrainConfig bin = fp;
  bin.binarize = true;
  const auto rb = train::train_mlp(train_, test_, bin);

  // The Table II shape: a few points of accuracy, not tens.
  EXPECT_GT(rb.test_accuracy, 0.6f) << "binary collapsed";
  EXPECT_GE(rf.test_accuracy + 0.02f, rb.test_accuracy)
      << "binary should not beat float by a margin";
  EXPECT_LT(rf.test_accuracy - rb.test_accuracy, 0.3f)
      << "binary gap implausibly large";
}

TEST_F(TrainerTest, DeterministicGivenSeed) {
  train::TrainConfig cfg;
  cfg.epochs = 3;
  const auto a = train::train_mlp(train_, test_, cfg);
  const auto b = train::train_mlp(train_, test_, cfg);
  EXPECT_EQ(a.test_accuracy, b.test_accuracy);
  EXPECT_EQ(a.loss_curve, b.loss_curve);
}

TEST(TrainerErrors, EmptyDatasetRejected) {
  datasets::PatternDataset empty;
  datasets::PatternDataset ok =
      datasets::PatternDataset::make(10, 2, 8, 1);
  EXPECT_THROW(train::train_mlp(empty, ok, {}), InvalidArgument);
}

TEST(Datasets, PatternsAreClassConditional) {
  const auto ds = datasets::PatternDataset::make(50, 4, 12, 9);
  EXPECT_EQ(ds.images.size(), 50u);
  EXPECT_EQ(ds.labels.size(), 50u);
  for (const int l : ds.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 4);
  }
  for (const auto& img : ds.images) {
    EXPECT_EQ(img.shape(), (Shape{1, 12, 12, 1}));
  }
}

TEST(Datasets, GeneratorsDeterministic) {
  const auto a = datasets::cifar_like_image(5);
  const auto b = datasets::cifar_like_image(5);
  for (std::int64_t i = 0; i < a.elems(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]);
  }
  const auto up = datasets::upscale(a, 227, 227);
  EXPECT_EQ(up.shape(), (Shape{1, 227, 227, 3}));
  EXPECT_EQ(up(0, 0, 0, 0), a(0, 0, 0, 0));
}

}  // namespace
}  // namespace phonebit
