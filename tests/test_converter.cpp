// The Fig. 2 converter: structural mapping from float models to PhoneBit
// networks, and its error handling.
#include <gtest/gtest.h>

#include "core/phonebit.hpp"
#include "models/zoo.hpp"
#include "test_util.hpp"

namespace phonebit {
namespace {

using core::FloatModel;

TEST(Converter, LayerKindMapping) {
  const auto model = FloatModel::random(models::quicknet(10), 1);
  auto net = core::convert_to_phonebit(model);
  ASSERT_EQ(net->size(), model.spec.layers.size());
  const auto& layers = net->layers();
  // quicknet: conv-pool-conv-pool-conv-pool-fc-fc.
  EXPECT_NE(dynamic_cast<core::InputConv2d*>(layers[0].get()), nullptr)
      << "first conv must take the 8-bit bit-plane path";
  EXPECT_NE(dynamic_cast<core::MaxPool2d*>(layers[1].get()), nullptr);
  EXPECT_NE(dynamic_cast<core::BinaryConv2d*>(layers[2].get()), nullptr);
  EXPECT_NE(dynamic_cast<core::BinaryConv2d*>(layers[4].get()), nullptr);
  EXPECT_NE(dynamic_cast<core::BinaryDense*>(layers[6].get()), nullptr);
  EXPECT_NE(dynamic_cast<core::FloatDense*>(layers[7].get()), nullptr)
      << "last layer must stay full precision";
}

TEST(Converter, YoloLastConvStaysFloat) {
  models::ZooOptions zoo;
  zoo.shrink_log2 = 3;
  const auto model = FloatModel::random(models::yolov2_tiny(zoo), 2);
  auto net = core::convert_to_phonebit(model);
  EXPECT_NE(dynamic_cast<core::FloatConv2d*>(net->layers().back().get()),
            nullptr)
      << "conv9 (detection head) must stay full precision";
  // And conv8 (the one before) is binary.
  EXPECT_NE(
      dynamic_cast<core::BinaryConv2d*>(
          net->layers()[net->size() - 2].get()),
      nullptr);
}

TEST(Converter, EmptyModelRejected) {
  FloatModel model;
  model.spec.name = "empty";
  EXPECT_THROW(core::convert_to_phonebit(model), InvalidArgument);
}

TEST(Converter, MismatchedWeightListRejected) {
  auto model = FloatModel::random(models::quicknet(10), 3);
  model.weights.pop_back();
  EXPECT_THROW(core::convert_to_phonebit(model), InvalidArgument);
}

TEST(Converter, NonlinearLastLayerRejected) {
  // The full-precision output layer must be linear (its activation cannot
  // be folded into a binarization threshold).
  auto spec = models::quicknet(10);
  std::get<core::DenseLayerSpec>(spec.layers.back()).act =
      core::Activation::kRelu;
  const auto model = FloatModel::random(spec, 4);
  EXPECT_THROW(core::convert_to_phonebit(model), InvalidArgument);
}

TEST(Converter, BnFreeLayersGetIdentityFold) {
  // A model without BN converts fine: thresholds reduce to -bias.
  auto spec = models::quicknet(10);
  for (auto& layer : spec.layers) {
    if (auto* c = std::get_if<core::ConvLayerSpec>(&layer)) {
      c->batch_norm = false;
    }
    if (auto* d = std::get_if<core::DenseLayerSpec>(&layer)) {
      d->batch_norm = false;
    }
  }
  const auto model = FloatModel::random(spec, 5);
  auto net = core::convert_to_phonebit(model);
  const auto* conv2 = dynamic_cast<core::BinaryConv2d*>(net->layers()[2].get());
  ASSERT_NE(conv2, nullptr);
  const auto& w = std::get<core::ConvWeights>(model.weights[2]);
  for (std::size_t c = 0; c < w.bias.size(); ++c) {
    EXPECT_FLOAT_EQ(conv2->folded_bn().xi[c], -w.bias[c]);
    EXPECT_EQ(conv2->folded_bn().gamma_pos[c], 1);
  }
}

TEST(Converter, WeightSignsSurviveConversion) {
  const auto model = FloatModel::random(models::quicknet(10), 6);
  auto net = core::convert_to_phonebit(model);
  const auto* conv2 = dynamic_cast<core::BinaryConv2d*>(net->layers()[2].get());
  ASSERT_NE(conv2, nullptr);
  const auto& w = std::get<core::ConvWeights>(model.weights[2]);
  const Shape& s = w.w.shape();
  for (std::int64_t co = 0; co < s.n; ++co)
    for (std::int64_t kh = 0; kh < s.h; ++kh)
      for (std::int64_t kw = 0; kw < s.w; ++kw)
        for (std::int64_t c = 0; c < s.c; ++c) {
          ASSERT_EQ(conv2->weights().get(co, kh, kw, c),
                    w.w(co, kh, kw, c) >= 0.0f)
              << "weight sign lost at (" << co << "," << kh << "," << kw
              << "," << c << ")";
        }
}

TEST(Converter, ParamAccountingConsistent) {
  const auto model = FloatModel::random(models::quicknet(10), 7);
  auto net = core::convert_to_phonebit(model);
  // Binary weights count 1 bit each; the converted model must be far
  // smaller than fp32 but larger than weights/32 alone (thresholds, last
  // layer).
  const auto full = model.spec.float_param_bytes();
  EXPECT_LT(net->param_bytes(), full / 4);
  EXPECT_GT(net->param_bytes(), full / 64);
}

}  // namespace
}  // namespace phonebit
