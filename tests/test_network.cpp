// End-to-end: converted PhoneBit networks vs the float-domain BNN reference,
// for every engine-option combination, plus report bookkeeping.
#include <gtest/gtest.h>

#include "baselines/bnn_reference.hpp"
#include "core/phonebit.hpp"
#include "datasets/synthetic.hpp"
#include "models/zoo.hpp"
#include "test_util.hpp"

namespace phonebit {
namespace {

using core::EngineOptions;
using core::FloatModel;

FloatModel quick_model(std::uint64_t seed = 11) {
  return FloatModel::random(models::quicknet(10), seed);
}

TEST(Network, QuicknetMatchesBnnReference) {
  const FloatModel model = quick_model();
  const U8Tensor image = datasets::cifar_like_image(1);

  const auto ref = baselines::bnn_reference_forward(model, image);

  core::Engine engine(testing::test_device());
  auto ctx = engine.context();
  auto net = core::convert_to_phonebit(model);
  const FloatTensor out = net->forward_float(ctx, image);

  EXPECT_TRUE(allclose(out, ref.output, 1e-3f))
      << "max diff " << max_abs_diff(out, ref.output);
}

struct OptionCase {
  bool fuse;
  bool branch_free;
  bool integrate;
  bool vec_loads;
  const char* label;
};

class NetworkOptions : public ::testing::TestWithParam<OptionCase> {};

TEST_P(NetworkOptions, OutputInvariantUnderOptimizations) {
  const OptionCase p = GetParam();
  const FloatModel model = quick_model();
  const U8Tensor image = datasets::cifar_like_image(2);
  const auto ref = baselines::bnn_reference_forward(model, image);

  EngineOptions opts;
  opts.fuse_bn_binarize = p.fuse;
  opts.branch_free_binarize = p.branch_free;
  opts.integrate_packing = p.integrate;
  opts.vectorized_loads = p.vec_loads;
  core::Engine engine(testing::test_device(), opts);
  auto ctx = engine.context();
  auto net = core::convert_to_phonebit(model);
  const FloatTensor out = net->forward_float(ctx, image);
  EXPECT_TRUE(allclose(out, ref.output, 1e-3f)) << p.label;
}

INSTANTIATE_TEST_SUITE_P(
    AllToggles, NetworkOptions,
    ::testing::Values(OptionCase{true, true, true, true, "paper-default"},
                      OptionCase{false, true, true, true, "no-fusion"},
                      OptionCase{true, false, true, true, "divergent"},
                      OptionCase{true, true, false, true, "separate-pack"},
                      OptionCase{true, true, true, false, "scalar-loads"},
                      OptionCase{false, false, false, false, "all-off"}));

TEST(Network, PerLayerReportsPopulated) {
  const FloatModel model = quick_model();
  core::Engine engine(testing::test_device());
  auto ctx = engine.context();
  auto net = core::convert_to_phonebit(model);
  net->forward_float(ctx, datasets::cifar_like_image(3));

  const auto& report = net->last_report();
  ASSERT_EQ(report.size(), net->size());
  for (const auto& r : report) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_GT(r.modeled_ms, 0.0);
    EXPECT_GE(r.launches, 1);
  }
  EXPECT_GT(net->last_modeled_ms(), 0.0);
}

TEST(Network, FusionReducesModeledTimeAndLaunches) {
  const FloatModel model = quick_model();
  const U8Tensor image = datasets::cifar_like_image(4);

  auto run = [&](bool fuse) {
    EngineOptions opts;
    opts.fuse_bn_binarize = fuse;
    core::Engine engine(testing::test_device(), opts);
    auto ctx = engine.context();
    auto net = core::convert_to_phonebit(model);
    net->forward_float(ctx, image);
    int launches = 0;
    for (const auto& r : net->last_report()) launches += r.launches;
    return std::pair<double, int>(net->last_modeled_ms(), launches);
  };

  const auto [fused_ms, fused_launches] = run(true);
  const auto [unfused_ms, unfused_launches] = run(false);
  EXPECT_LT(fused_ms, unfused_ms);
  EXPECT_LT(fused_launches, unfused_launches);
}

TEST(Network, ModelSizeIsRoughly32xSmaller) {
  const FloatModel model = quick_model();
  auto net = core::convert_to_phonebit(model);
  const double full = static_cast<double>(model.spec.float_param_bytes());
  const double bnn = static_cast<double>(net->param_bytes());
  // Not exactly 32x: the last layer stays fp32 and per-channel thresholds
  // are stored. Expect a large but sane compression factor.
  EXPECT_GT(full / bnn, 5.0);
  EXPECT_LT(full / bnn, 32.0);
}

TEST(Network, EmptyNetworkRejected) {
  core::Network net("empty");
  core::Engine engine(testing::test_device());
  auto ctx = engine.context();
  EXPECT_THROW(net.forward(ctx, core::Blob{datasets::cifar_like_image(5)}),
               InvalidArgument);
}

TEST(Network, ShrunkYoloMatchesReference) {
  models::ZooOptions zoo;
  zoo.shrink_log2 = 3;  // 52x52 input (must survive five stride-2 pools)
  const FloatModel model = FloatModel::random(models::yolov2_tiny(zoo), 21);
  const U8Tensor image =
      datasets::voc_like_image(model.spec.input.h, 6);

  const auto ref = baselines::bnn_reference_forward(model, image);
  core::Engine engine(testing::test_device());
  auto ctx = engine.context();
  auto net = core::convert_to_phonebit(model);
  const FloatTensor out = net->forward_float(ctx, image);
  EXPECT_TRUE(allclose(out, ref.output, 1e-2f))
      << "max diff " << max_abs_diff(out, ref.output);
}

}  // namespace
}  // namespace phonebit
