// End-to-end: converted PhoneBit networks vs the float-domain BNN reference,
// for every engine-option combination, plus report bookkeeping.
#include <gtest/gtest.h>

#include "baselines/bnn_reference.hpp"
#include "core/phonebit.hpp"
#include "datasets/synthetic.hpp"
#include "models/zoo.hpp"
#include "test_util.hpp"

namespace phonebit {
namespace {

using core::EngineOptions;
using core::FloatModel;

FloatModel quick_model(std::uint64_t seed = 11) {
  return FloatModel::random(models::quicknet(10), seed);
}

TEST(Network, QuicknetMatchesBnnReference) {
  const FloatModel model = quick_model();
  const U8Tensor image = datasets::cifar_like_image(1);

  const auto ref = baselines::bnn_reference_forward(model, image);

  core::Engine engine(testing::test_device());
  auto session = engine.create_session();
  auto ctx = session.context();
  auto net = core::convert_to_phonebit(model);
  const FloatTensor out = net->forward_float(ctx, image);

  EXPECT_TRUE(allclose(out, ref.output, 1e-3f))
      << "max diff " << max_abs_diff(out, ref.output);
}

struct OptionCase {
  bool fuse;
  bool branch_free;
  bool integrate;
  bool vec_loads;
  const char* label;
};

class NetworkOptions : public ::testing::TestWithParam<OptionCase> {};

TEST_P(NetworkOptions, OutputInvariantUnderOptimizations) {
  const OptionCase p = GetParam();
  const FloatModel model = quick_model();
  const U8Tensor image = datasets::cifar_like_image(2);
  const auto ref = baselines::bnn_reference_forward(model, image);

  EngineOptions opts;
  opts.fuse_bn_binarize = p.fuse;
  opts.branch_free_binarize = p.branch_free;
  opts.integrate_packing = p.integrate;
  opts.vectorized_loads = p.vec_loads;
  core::Engine engine(testing::test_device(), opts);
  auto session = engine.create_session();
  auto ctx = session.context();
  auto net = core::convert_to_phonebit(model);
  const FloatTensor out = net->forward_float(ctx, image);
  EXPECT_TRUE(allclose(out, ref.output, 1e-3f)) << p.label;
}

INSTANTIATE_TEST_SUITE_P(
    AllToggles, NetworkOptions,
    ::testing::Values(OptionCase{true, true, true, true, "paper-default"},
                      OptionCase{false, true, true, true, "no-fusion"},
                      OptionCase{true, false, true, true, "divergent"},
                      OptionCase{true, true, false, true, "separate-pack"},
                      OptionCase{true, true, true, false, "scalar-loads"},
                      OptionCase{false, false, false, false, "all-off"}));

TEST(Network, PerLayerReportsPopulated) {
  const FloatModel model = quick_model();
  core::Engine engine(testing::test_device());
  auto session = engine.create_session();
  auto ctx = session.context();
  auto net = core::convert_to_phonebit(model);
  const auto result =
      net->forward(ctx, core::Blob{datasets::cifar_like_image(3)});

  // One report entry per compiled STEP: the conv→pool rewrite fuses
  // quicknet's two BinaryConv2d→MaxPool chains, so two entries fewer than
  // layers (with "conv+pool" names covering both).
  ASSERT_EQ(result.report.size(), net->size() - 2);
  double launch_weighted_sum = 0.0;
  for (const auto& r : result.report) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_GT(r.modeled_ms, 0.0);
    EXPECT_GE(r.launches, 1);
    // The aggregated cost's launch count must equal the event sum exactly
    // (the accumulate() fix: no re-count of the first event's baseline).
    EXPECT_EQ(r.cost.launches, r.launches);
    launch_weighted_sum += r.modeled_ms;
  }
  EXPECT_GT(result.modeled_ms, 0.0);
  EXPECT_NEAR(result.modeled_ms, launch_weighted_sum, 1e-12);
}

TEST(Network, FusionReducesModeledTimeAndLaunches) {
  const FloatModel model = quick_model();
  const U8Tensor image = datasets::cifar_like_image(4);

  auto run = [&](bool fuse) {
    EngineOptions opts;
    opts.fuse_bn_binarize = fuse;
    core::Engine engine(testing::test_device(), opts);
    auto session = engine.create_session();
    auto ctx = session.context();
    auto net = core::convert_to_phonebit(model);
    const auto result = net->forward(ctx, core::Blob{image});
    int launches = 0;
    for (const auto& r : result.report) launches += r.launches;
    return std::pair<double, int>(result.modeled_ms, launches);
  };

  const auto [fused_ms, fused_launches] = run(true);
  const auto [unfused_ms, unfused_launches] = run(false);
  EXPECT_LT(fused_ms, unfused_ms);
  EXPECT_LT(fused_launches, unfused_launches);
}

TEST(Network, ModelSizeIsRoughly32xSmaller) {
  const FloatModel model = quick_model();
  auto net = core::convert_to_phonebit(model);
  const double full = static_cast<double>(model.spec.float_param_bytes());
  const double bnn = static_cast<double>(net->param_bytes());
  // Not exactly 32x: the last layer stays fp32 and per-channel thresholds
  // are stored. Expect a large but sane compression factor.
  EXPECT_GT(full / bnn, 5.0);
  EXPECT_LT(full / bnn, 32.0);
}

TEST(Network, ForwardFloatRejectsBinaryEndingNetwork) {
  // A network whose last layer emits a packed binary blob has no float
  // output; forward_float's end-in-float contract must fire, and the
  // underlying forward() result must still be reachable via forward().
  const FloatTensor w =
      testing::random_sign_tensor(Shape{16, 3, 3, 3}, 1234);
  const auto bn = testing::random_bn(16, 1235);
  ConvGeometry g;
  g.pad_h = g.pad_w = 1;

  core::Network net("binary-tail");
  net.emplace<core::InputConv2d>("conv1", bitpack::pack_filter_signs(w), bn,
                                 std::vector<float>{}, g);

  core::Engine engine(testing::test_device());
  auto session = engine.create_session();
  auto ctx = session.context();
  const U8Tensor image = datasets::cifar_like_image(1236);
  EXPECT_THROW(net.forward_float(ctx, image), InvalidArgument);

  // forward() itself is fine — the output is simply a packed blob, and
  // float_output() reports the same contract violation.
  const auto result = net.forward(ctx, core::Blob{image});
  EXPECT_TRUE(
      std::holds_alternative<bitpack::PackedTensor>(result.output));
  EXPECT_THROW(result.float_output(), InvalidArgument);
}

TEST(Network, EmptyNetworkRejected) {
  core::Network net("empty");
  core::Engine engine(testing::test_device());
  auto session = engine.create_session();
  auto ctx = session.context();
  EXPECT_THROW(net.forward(ctx, core::Blob{datasets::cifar_like_image(5)}),
               InvalidArgument);
}

TEST(Network, ShrunkYoloMatchesReference) {
  models::ZooOptions zoo;
  zoo.shrink_log2 = 3;  // 52x52 input (must survive five stride-2 pools)
  const FloatModel model = FloatModel::random(models::yolov2_tiny(zoo), 21);
  const U8Tensor image =
      datasets::voc_like_image(model.spec.input.h, 6);

  const auto ref = baselines::bnn_reference_forward(model, image);
  core::Engine engine(testing::test_device());
  auto session = engine.create_session();
  auto ctx = session.context();
  auto net = core::convert_to_phonebit(model);
  const FloatTensor out = net->forward_float(ctx, image);
  EXPECT_TRUE(allclose(out, ref.output, 1e-2f))
      << "max diff " << max_abs_diff(out, ref.output);
}

}  // namespace
}  // namespace phonebit
