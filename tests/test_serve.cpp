// serve::BatchRunner — fan-out of independent requests across sessions of
// one engine: bit-exactness vs serial, aggregate summary bookkeeping, warm
// pool reuse across batches, and error propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "core/phonebit.hpp"
#include "datasets/synthetic.hpp"
#include "models/zoo.hpp"
#include "serve/batch_runner.hpp"
#include "serve/virtual_time.hpp"
#include "test_util.hpp"

namespace phonebit {
namespace {

using core::FloatModel;

std::unique_ptr<core::Network> quick_net(std::uint64_t seed = 71) {
  return core::convert_to_phonebit(
      FloatModel::random(models::quicknet(10), seed));
}

std::vector<core::Blob> make_inputs(int n, std::uint64_t seed) {
  std::vector<core::Blob> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.emplace_back(
        datasets::cifar_like_image(seed + static_cast<std::uint64_t>(i)));
  }
  return inputs;
}

TEST(BatchRunner, MatchesSerialBitExactly) {
  auto net = quick_net();
  core::Engine engine(testing::test_device());

  constexpr int kRequests = 8;
  serve::BatchRunner runner(engine, *net, /*workers=*/4);
  auto summary = runner.run(make_inputs(kRequests, 900));

  ASSERT_EQ(summary.requests, kRequests);
  ASSERT_EQ(summary.results.size(), static_cast<std::size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    auto session = engine.create_session();
    auto ctx = session.context();
    const auto serial = net->forward(
        ctx, core::Blob{datasets::cifar_like_image(
                 900 + static_cast<std::uint64_t>(i))});
    EXPECT_TRUE(testing::expect_bitexact(
        summary.results[static_cast<std::size_t>(i)], serial))
        << "request " << i << " diverged from serial";
  }
}

TEST(BatchRunner, SummaryAggregatesPerRequestReports) {
  auto net = quick_net(72);
  core::Engine engine(testing::test_device());
  serve::BatchRunner runner(engine, *net, 4);
  const auto summary = runner.run(make_inputs(6, 950));

  EXPECT_EQ(summary.workers, 4);
  EXPECT_GT(summary.wall_ms, 0.0);
  EXPECT_GT(summary.throughput_rps, 0.0);

  double total = 0.0, max_ms = 0.0;
  for (const auto& r : summary.results) {
    EXPECT_GT(r.modeled_ms, 0.0);
    total += r.modeled_ms;
    max_ms = std::max(max_ms, r.modeled_ms);
  }
  EXPECT_NEAR(summary.total_modeled_ms, total, 1e-9);
  EXPECT_NEAR(summary.mean_modeled_ms, total / 6.0, 1e-9);
  EXPECT_NEAR(summary.max_modeled_ms, max_ms, 1e-12);

  // Tail latency: nearest-rank percentiles over the per-request modeled
  // latencies, monotone and bounded by the max.
  EXPECT_GT(summary.p50_modeled_ms, 0.0);
  EXPECT_LE(summary.p50_modeled_ms, summary.p95_modeled_ms);
  EXPECT_LE(summary.p95_modeled_ms, summary.p99_modeled_ms);
  EXPECT_LE(summary.p99_modeled_ms, summary.max_modeled_ms);

  // All six requests shared one input shape -> exactly one compiled plan.
  EXPECT_EQ(runner.compiled_plans(), 1u);

  // Per-step merge: one slot per compiled plan step (fused conv+pool
  // chains report as one entry), costs/launches summed over every request,
  // modeled total consistent with the request totals.
  const core::ExecutionPlan plan = net->compile(
      engine.options(),
      core::BlobDesc{core::BlobKind::kU8, Shape{1, 32, 32, 3}});
  ASSERT_EQ(summary.merged_layers.size(), plan.steps().size());
  double merged_total = 0.0;
  for (std::size_t j = 0; j < summary.merged_layers.size(); ++j) {
    const auto& m = summary.merged_layers[j];
    EXPECT_EQ(m.name, plan.steps()[j].name());
    EXPECT_GE(m.launches, summary.requests);  // >= 1 launch per request
    EXPECT_EQ(m.cost.launches, m.launches);
    merged_total += m.modeled_ms;
  }
  EXPECT_NEAR(merged_total, total, 1e-9);
}

TEST(BatchRunner, WarmBatchesStopAllocating) {
  auto net = quick_net(73);
  auto device = testing::test_device();
  core::Engine engine(device);
  serve::BatchRunner runner(engine, *net, 4);

  runner.run(make_inputs(8, 1000));  // warm-up batch mints the arenas
  const int created = engine.arena_pool().created();
  EXPECT_LE(created, 4);
  const std::int64_t warm_bytes = device->allocated_bytes();

  for (int round = 0; round < 2; ++round) {
    runner.run(make_inputs(8, 1100 + static_cast<std::uint64_t>(round)));
    EXPECT_EQ(engine.arena_pool().created(), created) << "round " << round;
    EXPECT_EQ(device->allocated_bytes(), warm_bytes) << "round " << round;
  }
}

/// Worker sessions (and their slot-backed activation arenas) persist across
/// requests AND batches of the same plan: after the warm-up batch the
/// runner mints no sessions and no arena grows — the plan's per-run reserve
/// is a warm no-op, not a per-request re-reserve.
TEST(BatchRunner, ReusesWorkerSessionArenasInSteadyState) {
  auto net = quick_net(77);
  auto device = testing::test_device();
  core::Engine engine(device);
  serve::BatchRunner runner(engine, *net, 4);
  EXPECT_EQ(runner.sessions(), 0u);  // sessions are minted lazily

  runner.run(make_inputs(8, 1400));  // warm-up: sessions + exact reserves
  const std::size_t sessions = runner.sessions();
  EXPECT_EQ(sessions, 4u);
  const int warm_growth = runner.total_arena_growth_events();
  EXPECT_GT(warm_growth, 0);
  const std::int64_t warm_bytes = device->allocated_bytes();

  for (int round = 0; round < 3; ++round) {
    runner.run(make_inputs(8, 1500 + static_cast<std::uint64_t>(round)));
    // Zero arena growth in steady state: same sessions, same arenas, same
    // capacities, no device-memory movement.
    EXPECT_EQ(runner.sessions(), sessions) << "round " << round;
    EXPECT_EQ(runner.total_arena_growth_events(), warm_growth)
        << "round " << round;
    EXPECT_EQ(device->allocated_bytes(), warm_bytes) << "round " << round;
  }
}

TEST(BatchRunner, RecompilesWhenEngineOptionsChange) {
  // The plan cache embeds the options snapshot: reconfiguring the engine
  // between batches must drop it, not serve stale compiled variants.
  auto net = quick_net(76);
  core::Engine engine(testing::test_device());
  serve::BatchRunner runner(engine, *net, 2);
  const auto fused = runner.run(make_inputs(2, 1300));
  engine.options().fuse_bn_binarize = false;
  const auto unfused = runner.run(make_inputs(2, 1300));

  int fused_launches = 0, unfused_launches = 0;
  for (const auto& m : fused.merged_layers) fused_launches += m.launches;
  for (const auto& m : unfused.merged_layers) unfused_launches += m.launches;
  EXPECT_LT(fused_launches, unfused_launches);
  EXPECT_EQ(runner.compiled_plans(), 1u);  // stale entry replaced, not kept
}

TEST(BatchRunner, EmptyBatchIsANoop) {
  auto net = quick_net(74);
  core::Engine engine(testing::test_device());
  serve::BatchRunner runner(engine, *net, 2);
  const auto summary = runner.run({});
  EXPECT_EQ(summary.requests, 0);
  EXPECT_TRUE(summary.results.empty());
  EXPECT_TRUE(summary.merged_layers.empty());
}

TEST(BatchRunner, RunOrThrowPropagatesRequestErrors) {
  auto net = quick_net(75);
  core::Engine engine(testing::test_device());
  serve::BatchRunner runner(engine, *net, 2);

  // Request 2 feeds a float tensor where the input conv expects a U8 image;
  // its InvalidArgument must surface on the caller thread after the batch
  // (the legacy first-error contract, kept behind run_or_throw).
  auto inputs = make_inputs(4, 1200);
  inputs[2] = core::Blob{FloatTensor(Shape{1, 32, 32, 3}, Layout::kNHWC)};
  EXPECT_THROW(runner.run_or_throw(std::move(inputs)), InvalidArgument);
}

TEST(BatchRunner, FailedRequestKeepsNeighborsResults) {
  // Failure is a value: run() classifies the poisoned request kFailed and
  // every neighbor's finished result survives (before PR 6 the first error
  // threw the whole batch away).
  auto net = quick_net(78);
  core::Engine engine(testing::test_device());
  serve::BatchRunner runner(engine, *net, 2);

  auto inputs = make_inputs(5, 1250);
  inputs[2] = core::Blob{FloatTensor(Shape{1, 32, 32, 3}, Layout::kNHWC)};
  const auto summary = runner.run(std::move(inputs));

  ASSERT_EQ(summary.statuses.size(), 5u);
  EXPECT_EQ(summary.ok, 4);
  EXPECT_EQ(summary.failed, 1);
  EXPECT_EQ(summary.statuses[2].code, serve::StatusCode::kFailed);
  EXPECT_FALSE(summary.statuses[2].error.empty());
  for (int i = 0; i < 5; ++i) {
    if (i == 2) continue;
    ASSERT_TRUE(summary.statuses[static_cast<std::size_t>(i)].ok());
    auto session = engine.create_session();
    auto ctx = session.context();
    const auto serial = net->forward(
        ctx, core::Blob{datasets::cifar_like_image(
                 1250 + static_cast<std::uint64_t>(i))});
    EXPECT_TRUE(testing::expect_bitexact(
        summary.results[static_cast<std::size_t>(i)], serial))
        << "neighbor " << i << " lost its result";
  }
  // The failed slot contributes nothing to the latency aggregation.
  EXPECT_EQ(summary.results[2].report.size(), 0u);
  EXPECT_GT(summary.p50_modeled_ms, 0.0);
}

TEST(BatchRunner, ConcurrentSecondRunIsRejectedNamingTheRunner) {
  // The one-run-at-a-time contract: a second run() while a batch is in
  // flight must throw InvalidArgument naming the runner — atomically
  // (acq_rel exchange on running_), never corrupting the first batch.
  auto net = quick_net(79);
  core::Engine engine(testing::test_device());
  serve::BatchRunner runner(engine, *net, 2, "streamA");
  EXPECT_EQ(runner.name(), "streamA");

  // A batch big enough to stay in flight while this thread races it.
  std::thread first([&runner] { runner.run(make_inputs(128, 1600)); });
  while (!runner.busy()) std::this_thread::yield();
  try {
    runner.run(make_inputs(1, 1700));
    ADD_FAILURE() << "concurrent second run was not rejected";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("streamA"), std::string::npos)
        << e.what();
  }
  first.join();

  // The runner is serviceable again after the rejected call.
  const auto summary = runner.run(make_inputs(2, 1800));
  EXPECT_EQ(summary.ok, 2);
}

TEST(BatchRunner, MicroBatchingFusesRequestsAndStaysBitExact) {
  // Micro-batching (DESIGN.md §11): with micro_batch=4, consecutive
  // same-shape single-image requests fuse into batched (N>1) forwards
  // through one batched compiled plan — and every per-request result must
  // stay bit-identical to the unfused micro_batch=1 run.
  auto net = quick_net(81);
  core::Engine engine(testing::test_device());

  constexpr int kRequests = 10;  // 4 + 4 + 2 under micro_batch=4
  serve::BatchRunner serial_runner(engine, *net, /*workers=*/2);
  EXPECT_EQ(serial_runner.micro_batch(), 1);
  const auto serial = serial_runner.run(make_inputs(kRequests, 2000));
  ASSERT_EQ(serial.ok, kRequests);
  EXPECT_EQ(serial_runner.batched_dispatches(), 0);

  serve::BatchRunner fused_runner(engine, *net, /*workers=*/2);
  fused_runner.set_micro_batch(4);
  EXPECT_EQ(fused_runner.micro_batch(), 4);
  const auto fused = fused_runner.run(make_inputs(kRequests, 2000));
  ASSERT_EQ(fused.ok, kRequests);
  EXPECT_GT(fused_runner.batched_dispatches(), 0)
      << "micro_batch=4 over same-shape requests never fused a group";

  for (int i = 0; i < kRequests; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    // Output bits only: grouped requests report the group's latency split
    // evenly, so modeled_ms legitimately differs from the serial run.
    EXPECT_TRUE(testing::expect_bitexact(fused.results[s].float_output(),
                                         serial.results[s].float_output()))
        << "request " << i << " diverged under micro-batching";
  }

  // Degenerate settings clamp instead of misbehaving.
  fused_runner.set_micro_batch(0);
  EXPECT_EQ(fused_runner.micro_batch(), 1);
}

// Regression (PR 10): micro_batch_ was a plain int, so set_micro_batch
// from another thread during run() was a data race — undefined behavior
// that TSan flags on the old code. Now it is atomic and read ONCE per
// run(), so a concurrent flip can pick either grouping but can never tear
// one batch's grouping mid-run or corrupt a result.
TEST(BatchRunner, ConcurrentSetMicroBatchDuringRunIsSafeAndBitExact) {
  auto net = quick_net(82);
  core::Engine engine(testing::test_device());

  constexpr int kRequests = 8;
  serve::BatchRunner serial_runner(engine, *net, /*workers=*/2);
  const auto serial = serial_runner.run(make_inputs(kRequests, 2500));
  ASSERT_EQ(serial.ok, kRequests);

  serve::BatchRunner runner(engine, *net, /*workers=*/2);
  for (int round = 0; round < 4; ++round) {
    std::atomic<bool> stop{false};
    std::thread flipper([&runner, &stop] {
      int n = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        runner.set_micro_batch(1 + (n++ % 4));
      }
    });
    const auto fused = runner.run(make_inputs(kRequests, 2500));
    stop.store(true, std::memory_order_relaxed);
    flipper.join();

    ASSERT_EQ(fused.ok, kRequests) << "round " << round;
    for (int i = 0; i < kRequests; ++i) {
      const std::size_t s = static_cast<std::size_t>(i);
      EXPECT_TRUE(testing::expect_bitexact(fused.results[s].float_output(),
                                           serial.results[s].float_output()))
          << "round " << round << " request " << i;
    }
  }
}

// Regression (PR 10): percentile() indexed rank ceil(q/100*n)-1 without
// clamping, so q<=0 underflowed the rank on the old code and q>=100 could
// read past the end; both now answer the defined extremes.
TEST(Percentile, DefinedOverTheFullRankRange) {
  const std::vector<double> one{42.0};
  for (const double q : {-10.0, 0.0, 50.0, 99.0, 100.0, 250.0}) {
    EXPECT_EQ(serve::percentile(one, q), 42.0) << "q=" << q;
  }

  const std::vector<double> even{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(serve::percentile(even, -5.0), 1.0);
  EXPECT_EQ(serve::percentile(even, 0.0), 1.0);
  EXPECT_EQ(serve::percentile(even, 25.0), 1.0);   // rank ceil(1)-1
  EXPECT_EQ(serve::percentile(even, 50.0), 2.0);   // lower middle, no interp
  EXPECT_EQ(serve::percentile(even, 75.0), 3.0);
  EXPECT_EQ(serve::percentile(even, 99.0), 4.0);
  EXPECT_EQ(serve::percentile(even, 100.0), 4.0);
  EXPECT_EQ(serve::percentile(even, 400.0), 4.0);

  const std::vector<double> odd{10.0, 20.0, 30.0};
  EXPECT_EQ(serve::percentile(odd, 50.0), 20.0);
  EXPECT_EQ(serve::percentile(odd, 34.0), 20.0);  // rank ceil(1.02)-1
  EXPECT_EQ(serve::percentile(odd, 33.0), 10.0);  // rank ceil(0.99)-1

  EXPECT_EQ(serve::percentile({}, 50.0), 0.0);  // empty sample is defined
}

}  // namespace
}  // namespace phonebit
