// Baseline frameworks: numerical agreement with the reference ops, the
// mechanical OOM/CRASH gates, quantization error, layout invariance.
#include <gtest/gtest.h>

#include "baselines/bnn_reference.hpp"
#include "baselines/float_ops.hpp"
#include "baselines/framework.hpp"
#include "baselines/quantized_ops.hpp"
#include "datasets/synthetic.hpp"
#include "models/zoo.hpp"
#include "test_util.hpp"

namespace phonebit {
namespace {

using baselines::FloatFramework;
using core::FloatModel;

FloatModel small_classic_model(std::uint64_t seed = 90) {
  models::ZooOptions zoo;
  zoo.shrink_log2 = 4;
  zoo.bnn_batch_norm = false;  // classic float form, with LRN in AlexNet
  return FloatModel::random(models::alexnet(zoo), seed);
}

/// Serial reference forward of a float model (mirrors the executor's
/// semantics: conv+bias -> BN -> act -> LRN -> pool -> dense).
FloatTensor reference_forward(const FloatModel& model, const U8Tensor& img) {
  FloatTensor x = baselines::u8_to_float(img);
  for (std::size_t i = 0; i < model.spec.layers.size(); ++i) {
    const auto& layer = model.spec.layers[i];
    if (const auto* c = std::get_if<core::ConvLayerSpec>(&layer)) {
      const auto& w = std::get<core::ConvWeights>(model.weights[i]);
      x = baselines::conv2d_ref(x, w.w, w.bias, c->geom);
      if (c->batch_norm && !w.bn.empty()) x = baselines::batch_norm_ref(x, w.bn);
      x = baselines::activate_ref(x, c->act);
      if (c->lrn_after) x = baselines::lrn_ref(x);
    } else if (const auto* p = std::get_if<core::PoolLayerSpec>(&layer)) {
      x = baselines::maxpool_ref(x, p->geom);
    } else if (const auto* d = std::get_if<core::DenseLayerSpec>(&layer)) {
      const auto& w = std::get<core::DenseWeights>(model.weights[i]);
      x = baselines::dense_ref(x, w.w, w.bias);
      if (d->batch_norm && !w.bn.empty()) x = baselines::batch_norm_ref(x, w.bn);
      x = baselines::activate_ref(x, d->act);
    }
  }
  return x;
}

TEST(Baselines, TfliteCpuMatchesReference) {
  const FloatModel model = small_classic_model();
  const U8Tensor img = datasets::random_image(model.spec.input, 5);
  oclsim::Device dev(oclsim::DeviceProfile::snapdragon855(), 4);
  const auto result = FloatFramework::tflite_cpu().run(dev, model, img);
  const FloatTensor ref = reference_forward(model, img);
  EXPECT_LT(max_abs_diff(result.output, ref) /
                (1.0f + max_abs_diff(ref, FloatTensor(ref.shape()))),
            1e-3f);
  EXPECT_GT(result.modeled_ms, 0.0);
  EXPECT_FALSE(result.layers.empty());
}

TEST(Baselines, CnndroidNchwMatchesNhwcNumerics) {
  // Same model, both layouts: identical logical outputs.
  const FloatModel model = small_classic_model(91);
  const U8Tensor img = datasets::random_image(model.spec.input, 6);
  oclsim::Device dev(oclsim::DeviceProfile::snapdragon855(), 4);
  const auto nchw = FloatFramework::cnndroid_gpu().run(dev, model, img);
  const auto nhwc = FloatFramework::tflite_cpu().run(dev, model, img);
  EXPECT_TRUE(allclose(nchw.output, nhwc.output, 1e-2f))
      << max_abs_diff(nchw.output, nhwc.output);
}

TEST(Baselines, CnndroidOomOnVgg16) {
  // VGG16 weights x2 resident copies exceed the 1 GB app budget (Table III
  // OOM rows) on BOTH devices — the gate is the app heap, not device RAM.
  const auto spec = models::vgg16({0, false});
  FloatModel model;  // gates fire before weights are touched
  model.spec = spec;
  model.weights.resize(spec.layers.size());
  const U8Tensor img(Shape{1, 4, 4, 3});
  for (const char* soc : {"820", "855"}) {
    oclsim::Device dev(std::string(soc) == "820"
                           ? oclsim::DeviceProfile::snapdragon820()
                           : oclsim::DeviceProfile::snapdragon855(),
                       1);
    EXPECT_THROW(FloatFramework::cnndroid_gpu().run(dev, model, img),
                 OutOfMemoryError);
    EXPECT_THROW(FloatFramework::cnndroid_cpu().run(dev, model, img),
                 OutOfMemoryError);
  }
}

TEST(Baselines, CnndroidRunsAlexnetAndYolo) {
  // The same gate must NOT fire for the smaller models.
  for (auto spec : {models::alexnet({0, false}), models::yolov2_tiny({0, false})}) {
    FloatModel model;
    model.spec = spec;
    model.weights.resize(spec.layers.size());
    const double budget_mb = 1024;
    EXPECT_LT(static_cast<double>(spec.float_param_bytes()) * 2.0,
              budget_mb * 1024 * 1024)
        << spec.name;
  }
}

TEST(Baselines, TfliteGpuCrashesOnLrn) {
  // Float AlexNet contains LRN -> delegate rejects the graph (CRASH row).
  const auto spec = models::alexnet({0, false});
  FloatModel model;
  model.spec = spec;
  model.weights.resize(spec.layers.size());
  oclsim::Device dev(oclsim::DeviceProfile::snapdragon855(), 1);
  EXPECT_THROW(
      FloatFramework::tflite_gpu().run(dev, model, U8Tensor(Shape{1, 4, 4, 3})),
      UnsupportedOperationError);
}

TEST(Baselines, TfliteGpuCrashesOnVggBufferSize) {
  // VGG16 fc1 weights (392 MB fp32) exceed the 256 MB delegate buffer cap.
  const auto spec = models::vgg16({0, false});
  auto model = FloatModel::random(
      [&] {
        // Shrink everything except fc1 is impossible cheaply; instead verify
        // the gate arithmetic directly and exercise the code path on a
        // doctored small model.
        return models::quicknet(10);
      }(),
      92);
  // Direct gate arithmetic for the real model:
  std::int64_t max_bytes = 0;
  for (const auto& layer : spec.layers) {
    if (const auto* d = std::get_if<core::DenseLayerSpec>(&layer)) {
      max_bytes =
          std::max(max_bytes, d->in_features * d->out_features * 4);
    }
  }
  EXPECT_GT(max_bytes, 256ll * 1024 * 1024);

  // Code-path check with a tightened cap:
  auto tight = FloatFramework::tflite_gpu();
  baselines::FrameworkTraits traits = tight.traits();
  traits.max_buffer_bytes = 100000;  // quicknet fc1 (128x1024 fp32) exceeds it
  FloatFramework tiny_cap("TFLite-GPU-tiny", traits);
  oclsim::Device dev(oclsim::DeviceProfile::snapdragon855(), 1);
  EXPECT_THROW(
      tiny_cap.run(dev, model, datasets::cifar_like_image(1)),
      UnsupportedOperationError);
}

TEST(Baselines, TfliteGpuRunsYolo) {
  // No LRN, no oversized buffer: YOLOv2-Tiny must pass the gates (the paper
  // reports a real number for this cell).
  models::ZooOptions zoo;
  zoo.shrink_log2 = 4;
  zoo.bnn_batch_norm = false;
  const FloatModel model = FloatModel::random(models::yolov2_tiny(zoo), 93);
  oclsim::Device dev(oclsim::DeviceProfile::snapdragon855(), 4);
  const U8Tensor img = datasets::voc_like_image(model.spec.input.h, 7);
  EXPECT_NO_THROW(FloatFramework::tflite_gpu().run(dev, model, img));
}

TEST(Baselines, QuantizedConvCloseToFloat) {
  // Real int8 arithmetic: relative output error stays small.
  const FloatTensor in = testing::random_float_tensor(Shape{1, 8, 8, 16}, 94);
  const FloatTensor w = testing::random_float_tensor(Shape{8, 3, 3, 16}, 95);
  const auto bias = testing::random_bias(8, 96);
  ConvGeometry g;
  g.pad_h = g.pad_w = 1;

  const auto qin = baselines::QuantizedTensor::from_float(in);
  const auto qw = baselines::QuantizedFilter::from_float(w);
  const FloatTensor qout = baselines::quantized_conv2d(qin, qw, bias, g);
  const FloatTensor ref = baselines::conv2d_ref(in, w, bias, g);

  float ref_mag = 0.0f;
  for (std::int64_t i = 0; i < ref.elems(); ++i) {
    ref_mag = std::max(ref_mag, std::fabs(ref.data()[i]));
  }
  EXPECT_LT(max_abs_diff(qout, ref), 0.05f * ref_mag);
}

TEST(Baselines, QuantizedRoundtripError) {
  const FloatTensor t = testing::random_float_tensor(Shape{1, 4, 4, 8}, 97);
  const auto q = baselines::QuantizedTensor::from_float(t);
  const FloatTensor back = q.to_float();
  // Error bounded by one quantization step.
  EXPECT_LT(max_abs_diff(t, back), q.params.scale * 0.51f + 1e-6f);
}

TEST(Baselines, QuantParamsCoverRangeAndEncodeZero) {
  const auto p = QuantParams::for_range(-3.0f, 5.0f);
  EXPECT_EQ(p.dequantize(p.quantize(0.0f)), 0.0f);
  EXPECT_NEAR(p.dequantize(p.quantize(5.0f)), 5.0f, p.scale);
  EXPECT_NEAR(p.dequantize(p.quantize(-3.0f)), -3.0f, p.scale);
}

TEST(Baselines, FrameworkRoster) {
  EXPECT_EQ(FloatFramework::cnndroid_cpu().name(), "CNNdroid-CPU");
  EXPECT_EQ(FloatFramework::cnndroid_gpu().name(), "CNNdroid-GPU");
  EXPECT_EQ(FloatFramework::tflite_cpu().name(), "TFLite-CPU");
  EXPECT_EQ(FloatFramework::tflite_gpu().name(), "TFLite-GPU");
  EXPECT_EQ(FloatFramework::tflite_quant().name(), "TFLite-Quant");
  EXPECT_TRUE(FloatFramework::tflite_quant().traits().quantized_int8);
  EXPECT_TRUE(FloatFramework::cnndroid_gpu().traits().layout == Layout::kNCHW);
}

}  // namespace
}  // namespace phonebit
