// Cross-module integration: shrunken paper networks through the whole
// pipeline (convert -> serialize -> infer -> profile -> power), PhoneBit vs
// baselines vs reference.
#include <gtest/gtest.h>

#include "baselines/bnn_reference.hpp"
#include "baselines/framework.hpp"
#include "core/phonebit.hpp"
#include "datasets/synthetic.hpp"
#include "energy/power_model.hpp"
#include "models/zoo.hpp"
#include "test_util.hpp"

namespace phonebit {
namespace {

using baselines::FloatFramework;
using core::FloatModel;

struct NetCase {
  const char* which;
  int shrink;
};

class ShrunkNets : public ::testing::TestWithParam<NetCase> {
 protected:
  static core::NetworkSpec spec_for(const NetCase& p, bool bnn) {
    models::ZooOptions zoo;
    zoo.shrink_log2 = p.shrink;
    zoo.bnn_batch_norm = bnn;
    if (std::string(p.which) == "alexnet") return models::alexnet(zoo);
    if (std::string(p.which) == "vgg16") return models::vgg16(zoo);
    return models::yolov2_tiny(zoo);
  }
};

TEST_P(ShrunkNets, PhonebitMatchesBnnReference) {
  const auto model = FloatModel::random(spec_for(GetParam(), true), 500);
  const U8Tensor image = datasets::random_image(model.spec.input, 501);
  const auto ref = baselines::bnn_reference_forward(model, image);

  core::Engine engine(testing::test_device());
  auto session = engine.create_session();
  auto ctx = session.context();
  auto net = core::convert_to_phonebit(model);
  const FloatTensor out = net->forward_float(ctx, image);
  EXPECT_TRUE(allclose(out, ref.output, 2e-2f))
      << GetParam().which << ": max diff " << max_abs_diff(out, ref.output);
}

INSTANTIATE_TEST_SUITE_P(PaperNetsSmall, ShrunkNets,
                         ::testing::Values(NetCase{"yolo", 3},
                                           NetCase{"alexnet", 4},
                                           NetCase{"vgg16", 4}));

TEST(Integration, MidsizeBinaryConvBeatsFloatConvByOrderOfMagnitude) {
  // The Fig. 5 mechanism at a representative middle-layer geometry
  // (26x26x256 -> 256, 3x3): PhoneBit's fused binary kernel vs the
  // CNNdroid-style float conv, same device, modeled time.
  const std::int64_t hw = 26, c = 256;
  const FloatTensor in = testing::random_sign_tensor(Shape{1, hw, hw, c}, 550);
  const FloatTensor w = testing::random_sign_tensor(Shape{c, 3, 3, c}, 551);
  const auto bn = testing::random_bn(c, 552);
  ConvGeometry g;
  g.pad_h = g.pad_w = 1;

  core::Engine engine(testing::test_device());
  auto session = engine.create_session();
  auto ctx = session.context();
  core::BinaryConv2d bconv("bconv", bitpack::pack_filter_signs(w), bn, {}, g);
  bconv.forward(ctx, core::Blob{bitpack::pack_signs(in)});
  const double phonebit_ms = session.queue().total_modeled_ms();

  // CNNdroid-equivalent single conv layer on the same geometry.
  core::NetworkSpec spec;
  spec.name = "one-conv";
  spec.input = Shape{1, hw, hw, c};
  core::ConvLayerSpec cs;
  cs.name = "conv";
  cs.c_in = c;
  cs.c_out = c;
  cs.geom = g;
  cs.batch_norm = false;
  cs.act = core::Activation::kNone;
  spec.layers.push_back(cs);
  const FloatModel fm = FloatModel::random(spec, 553);
  U8Tensor img(Shape{1, hw, hw, c});
  const auto cnndroid = FloatFramework::cnndroid_gpu().run(
      *testing::test_device(), fm, img);

  EXPECT_GT(cnndroid.modeled_ms / phonebit_ms, 10.0)
      << "phonebit " << phonebit_ms << "ms vs cnndroid "
      << cnndroid.modeled_ms << "ms";
}

TEST(Integration, FullPipelineQuicknet) {
  // Train-shape -> convert -> save -> load -> infer -> profile -> power.
  const auto model = FloatModel::random(models::quicknet(10), 600);
  auto net = core::convert_to_phonebit(model);

  const std::string path = ::testing::TempDir() + "pipeline.pbm";
  core::save_model(*net, path);
  auto loaded = core::load_model(path);
  std::remove(path.c_str());

  auto device = std::make_shared<oclsim::Device>(
      oclsim::DeviceProfile::snapdragon820(), 4);
  core::Engine engine(device);
  auto session = engine.create_session();
  auto ctx = session.context();
  const U8Tensor image = datasets::cifar_like_image(601);
  const FloatTensor out = loaded->forward_float(ctx, image);
  EXPECT_EQ(out.shape().c, 10);  // 10 classes

  const auto power = energy::estimate_power(session.queue().events(),
                                            device->profile());
  EXPECT_GT(power.avg_power_mw, device->profile().idle_mw);
  EXPECT_GT(power.fps, 0.0);
  EXPECT_GT(power.fps_per_watt, 0.0);
}

TEST(Integration, BatchConsistency) {
  // A batch of 3 images gives the same outputs as 3 single-image runs.
  const auto model = FloatModel::random(models::quicknet(10), 700);
  auto net = core::convert_to_phonebit(model);
  core::Engine engine(testing::test_device());
  auto session = engine.create_session();
  auto ctx = session.context();

  U8Tensor batch(Shape{3, 32, 32, 3});
  std::vector<U8Tensor> singles;
  for (int i = 0; i < 3; ++i) {
    const U8Tensor img = datasets::cifar_like_image(
        800 + static_cast<std::uint64_t>(i));
    singles.push_back(img);
    for (std::int64_t h = 0; h < 32; ++h)
      for (std::int64_t w = 0; w < 32; ++w)
        for (std::int64_t c = 0; c < 3; ++c)
          batch(i, h, w, c) = img(0, h, w, c);
  }
  const FloatTensor batched = net->forward_float(ctx, batch);
  for (int i = 0; i < 3; ++i) {
    const FloatTensor single = net->forward_float(ctx, singles[i]);
    for (std::int64_t c = 0; c < batched.shape().c; ++c) {
      ASSERT_FLOAT_EQ(batched(i, 0, 0, c), single(0, 0, 0, c))
          << "sample " << i << " class " << c;
    }
  }
}

TEST(Integration, EngineOnBothDevicesSameOutputs) {
  const auto model = FloatModel::random(models::quicknet(10), 900);
  const U8Tensor image = datasets::cifar_like_image(901);

  auto run = [&](oclsim::DeviceProfile profile) {
    auto device = std::make_shared<oclsim::Device>(std::move(profile), 2);
    core::Engine engine(device);
    auto session = engine.create_session();
    auto ctx = session.context();
    auto net = core::convert_to_phonebit(model);
    return net->forward_float(ctx, image);
  };
  const FloatTensor a = run(oclsim::DeviceProfile::snapdragon820());
  const FloatTensor b = run(oclsim::DeviceProfile::snapdragon855());
  EXPECT_TRUE(allclose(a, b, 0.0f)) << "device profile must not change math";
}

}  // namespace
}  // namespace phonebit
