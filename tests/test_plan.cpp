// ExecutionPlan — the compile subsystem: shape inference + compile-time
// validation, buffer-liveness slot assignment and exact scratch peaks,
// ahead-of-time kernel selection (zero re-selection / zero arena growth on
// the compiled hot path), and bit-exactness of compiled vs uncompiled
// forwards across the model zoo.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "baselines/bnn_reference.hpp"
#include "core/phonebit.hpp"
#include "datasets/synthetic.hpp"
#include "models/zoo.hpp"
#include "test_util.hpp"

namespace phonebit {
namespace {

using core::BlobDesc;
using core::BlobKind;
using core::EngineOptions;
using core::ExecutionPlan;
using core::FloatModel;
using core::KernelVariant;

FloatModel quick_model(std::uint64_t seed = 81) {
  return FloatModel::random(models::quicknet(10), seed);
}

BlobDesc u8_desc(const Shape& s) { return BlobDesc{BlobKind::kU8, s}; }

TEST(Plan, ShapeInferenceWalksThePipeline) {
  const FloatModel model = quick_model();
  auto net = core::convert_to_phonebit(model);
  // Structural assertions about the one-step-per-layer pipeline use the
  // fusion-off configuration; the conv→pool rewrite has its own tests.
  EngineOptions opts;
  opts.fuse_conv_pool = false;
  const ExecutionPlan plan =
      net->compile(opts, u8_desc(model.spec.input));

  ASSERT_EQ(plan.steps().size(), net->size());
  EXPECT_EQ(plan.input().kind, BlobKind::kU8);
  EXPECT_EQ(plan.output().kind, BlobKind::kFloat);
  EXPECT_EQ(plan.output().shape.c, 10);
  // Every edge is consistent: step i's output is step i+1's input.
  for (std::size_t i = 0; i + 1 < plan.steps().size(); ++i) {
    EXPECT_EQ(plan.steps()[i].out, plan.steps()[i + 1].in) << "edge " << i;
  }
  // Linear pipeline -> ping-pong liveness: at most two activation slots,
  // intermediates alternate between them, the network output owns none.
  ASSERT_LE(plan.slots().size(), 2u);
  for (std::size_t i = 0; i + 1 < plan.steps().size(); ++i) {
    const int slot = plan.steps()[i].slot;
    ASSERT_GE(slot, 0);
    EXPECT_EQ(slot, static_cast<int>(i % 2));
    EXPECT_GE(plan.slots()[static_cast<std::size_t>(slot)].bytes,
              plan.steps()[i].out.bytes());
  }
  EXPECT_EQ(plan.steps().back().slot, -1);
  EXPECT_GT(plan.peak_activation_bytes(), 0);
}

TEST(Plan, CompiledMatchesUncompiledAcrossZoo) {
  struct Case {
    std::string name;
    core::NetworkSpec spec;
    std::uint64_t seed;
  };
  std::vector<Case> cases;
  cases.push_back({"quicknet", models::quicknet(10), 90});
  models::ZooOptions yolo_zoo;
  yolo_zoo.shrink_log2 = 3;
  cases.push_back({"yolov2-tiny", models::yolov2_tiny(yolo_zoo), 91});
  models::ZooOptions big_zoo;
  big_zoo.shrink_log2 = 4;
  cases.push_back({"alexnet", models::alexnet(big_zoo), 92});
  cases.push_back({"vgg16", models::vgg16(big_zoo), 93});

  for (const Case& c : cases) {
    const FloatModel model = FloatModel::random(c.spec, c.seed);
    const U8Tensor image = datasets::random_image(model.spec.input, c.seed);
    auto net = core::convert_to_phonebit(model);
    core::Engine engine(testing::test_device());

    auto s1 = engine.create_session();
    auto ctx = s1.context();
    const auto uncompiled = net->forward(ctx, core::Blob{image});

    const ExecutionPlan plan = net->compile(engine, u8_desc(image.shape()));
    auto s2 = engine.create_session();
    const auto compiled = plan.run(s2, core::Blob{image});

    // Shared comparator: output bits AND modeled time must agree.
    EXPECT_TRUE(testing::expect_bitexact(compiled, uncompiled))
        << c.name << ": compiled forward diverged from uncompiled";
  }
}

TEST(Plan, CompiledMatchesBnnReference) {
  const FloatModel model = quick_model(95);
  const U8Tensor image = datasets::cifar_like_image(96);
  const auto ref = baselines::bnn_reference_forward(model, image);

  auto net = core::convert_to_phonebit(model);
  core::Engine engine(testing::test_device());
  const ExecutionPlan plan = net->compile(engine, u8_desc(image.shape()));
  auto session = engine.create_session();
  const auto result = plan.run(session, core::Blob{image});
  EXPECT_TRUE(allclose(result.float_output(), ref.output, 1e-3f));
}

/// The liveness pass's memory prediction is exact: a fresh arena, after one
/// compiled forward, holds exactly peak_scratch_bytes() + slab_bytes() (the
/// slot-backed activation slab) — across option sets exercising every conv
/// path (A, B, C, and the zeros-span legacy arm).
TEST(Plan, ArenaPeakMatchesLivenessPrediction) {
  struct OptCase {
    const char* label;
    EngineOptions opts;
  };
  std::vector<OptCase> cases;
  cases.push_back({"paper-default", EngineOptions{}});
  EngineOptions no_fuse;
  no_fuse.fuse_bn_binarize = false;  // path C: i32 sums + u8 bits
  cases.push_back({"no-fusion", no_fuse});
  EngineOptions no_integrate;
  no_integrate.integrate_packing = false;  // path B: u8 bit map
  cases.push_back({"separate-pack", no_integrate});
  EngineOptions taps;
  taps.interior_split = false;  // legacy zeros span in the words pool
  cases.push_back({"per-tap", taps});

  const FloatModel model = quick_model(97);
  const U8Tensor image = datasets::cifar_like_image(98);
  auto net = core::convert_to_phonebit(model);

  bool some_case_uses_scratch = false;
  for (const OptCase& c : cases) {
    core::Engine engine(testing::test_device(), c.opts);
    const ExecutionPlan plan = net->compile(engine, u8_desc(image.shape()));
    auto session = engine.create_session();
    // A fresh pool arena is cold: capacity after one forward must land
    // exactly on the liveness pass's number, not a geometric overshoot.
    ASSERT_EQ(session.arena().capacity_bytes(), 0) << c.label;
    plan.run(session, core::Blob{image});
    EXPECT_EQ(session.arena().capacity_bytes(),
              plan.peak_scratch_bytes() + plan.slab_bytes())
        << c.label;
    EXPECT_GT(plan.slab_bytes(), 0) << c.label;
    if (plan.peak_scratch_bytes() > 0) some_case_uses_scratch = true;
  }
  EXPECT_TRUE(some_case_uses_scratch);
}

TEST(Plan, ZeroGrowthAndZeroReselectionAfterCompile) {
  const FloatModel model = quick_model(99);
  const U8Tensor image = datasets::cifar_like_image(100);
  auto net = core::convert_to_phonebit(model);
  core::Engine engine(testing::test_device());
  const ExecutionPlan plan = net->compile(engine, u8_desc(image.shape()));

  auto session = engine.create_session();
  FloatTensor first(Shape{1, 1, 1, 1}, Layout::kNHWC);
  for (int i = 0; i < 3; ++i) {
    const auto result = plan.run(session, core::Blob{image});
    if (i == 0) {
      first = result.float_output();
    } else {
      EXPECT_TRUE(testing::expect_bitexact(result.float_output(), first))
          << i;
    }
    // Zero kernel-variant re-selection on the compiled path: selection
    // happened at compile (through the engine, not this session), so the
    // session's counter stays at zero while planned_runs advances.
    EXPECT_EQ(session.stats().variant_selections, 0) << "run " << i;
    EXPECT_EQ(session.stats().planned_runs, i + 1);
    // Zero arena growth after the first run's exact reservation.
    if (i == 0) continue;
    EXPECT_EQ(session.arena().capacity_bytes(),
              plan.peak_scratch_bytes() + plan.slab_bytes());
  }
  const int grows_after_first = session.arena().growth_events();
  plan.run(session, core::Blob{image});
  EXPECT_EQ(session.arena().growth_events(), grows_after_first);

  // The uncompiled wrapper, by contrast, re-plans every call: the selection
  // counter moves once per layer per forward.
  auto ctx = session.context();
  net->forward(ctx, core::Blob{image});
  EXPECT_EQ(session.stats().variant_selections,
            static_cast<std::int64_t>(net->size()));
  EXPECT_EQ(session.stats().compiles, 1);
  net->forward(ctx, core::Blob{image});
  EXPECT_EQ(session.stats().variant_selections,
            static_cast<std::int64_t>(2 * net->size()));
}

/// Malformed pipelines fail at compile time — with the offending layer in
/// the message — and never reach a kernel launch.
TEST(Plan, MalformedPipelineFailsAtCompile) {
  core::Engine engine(testing::test_device());

  // A BinaryConv2d first layer can't consume the 8-bit camera image.
  {
    const FloatTensor w = testing::random_sign_tensor(Shape{16, 3, 3, 8}, 1);
    core::Network net("wrong-kind");
    net.emplace<core::BinaryConv2d>("conv1", bitpack::pack_filter_signs(w),
                                    testing::random_bn(16, 2),
                                    std::vector<float>{}, ConvGeometry{});
    EXPECT_THROW(
        net.compile(engine, BlobDesc{BlobKind::kU8, Shape{1, 32, 32, 3}}),
        InvalidArgument);
  }

  // Channel mismatch mid-pipeline: conv2 expects 32 channels, gets 16.
  {
    ConvGeometry g;
    g.pad_h = g.pad_w = 1;
    const FloatTensor w1 = testing::random_sign_tensor(Shape{16, 3, 3, 3}, 3);
    const FloatTensor w2 =
        testing::random_sign_tensor(Shape{32, 3, 3, 32}, 4);
    core::Network net("channel-mismatch");
    net.emplace<core::InputConv2d>("conv1", bitpack::pack_filter_signs(w1),
                                   testing::random_bn(16, 5),
                                   std::vector<float>{}, g);
    net.emplace<core::BinaryConv2d>("conv2", bitpack::pack_filter_signs(w2),
                                    testing::random_bn(32, 6),
                                    std::vector<float>{}, g);
    try {
      net.compile(engine, BlobDesc{BlobKind::kU8, Shape{1, 32, 32, 3}});
      FAIL() << "compile accepted a channel-mismatched pipeline";
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find("conv2"), std::string::npos);
    }
    // The failure happened during compile: no session was involved, and a
    // forward through a session reports the same error before any launch.
    auto session = engine.create_session();
    auto ctx = session.context();
    EXPECT_THROW(net.forward(ctx, core::Blob{datasets::cifar_like_image(7)}),
                 InvalidArgument);
    EXPECT_EQ(session.queue().events().size(), 0u);
  }

  // A window larger than the padded input is a geometry error at compile.
  {
    ConvGeometry g;
    g.kernel_h = g.kernel_w = 9;
    const FloatTensor w = testing::random_sign_tensor(Shape{16, 9, 9, 3}, 8);
    core::Network net("window-too-big");
    net.emplace<core::InputConv2d>("conv1", bitpack::pack_filter_signs(w),
                                   testing::random_bn(16, 9),
                                   std::vector<float>{}, g);
    EXPECT_THROW(
        net.compile(engine, BlobDesc{BlobKind::kU8, Shape{1, 4, 4, 3}}),
        InvalidArgument);
  }

  // Empty networks can't compile.
  {
    core::Network net("empty");
    EXPECT_THROW(
        net.compile(engine, BlobDesc{BlobKind::kU8, Shape{1, 8, 8, 3}}),
        InvalidArgument);
  }
}

TEST(Plan, RunRejectsMismatchedInput) {
  const FloatModel model = quick_model(101);
  auto net = core::convert_to_phonebit(model);
  core::Engine engine(testing::test_device());
  const ExecutionPlan plan =
      net->compile(engine, u8_desc(model.spec.input));
  auto session = engine.create_session();
  // Wrong kind entirely.
  EXPECT_THROW(
      plan.run(session, core::Blob{FloatTensor(model.spec.input,
                                               Layout::kNHWC)}),
      InvalidArgument);
  // Right kind, wrong extent.
  EXPECT_THROW(plan.run(session,
                        core::Blob{datasets::random_image(
                            Shape{1, 16, 16, 3}, 102)}),
               InvalidArgument);
}

TEST(Plan, VariantsRecordAheadOfTimeSelection) {
  const FloatModel model = quick_model(103);
  auto net = core::convert_to_phonebit(model);
  core::Engine engine(testing::test_device());
  const ExecutionPlan plan =
      net->compile(engine, u8_desc(model.spec.input));

  // quicknet under paper defaults: every binary conv is narrow enough for
  // the fully fused path A with the interior split on (and, followed by
  // its pool, the conv→pool rewrite).
  bool saw_conv = false;
  for (const auto& step : plan.steps()) {
    if (step.variant.kernel.rfind("bconv_fused", 0) == 0) {
      saw_conv = true;
      EXPECT_EQ(step.variant.path, KernelVariant::Path::kConvFused);
      EXPECT_TRUE(step.variant.interior_split);
      EXPECT_GT(step.variant.tile_ow, 0);
    }
  }
  EXPECT_TRUE(saw_conv);

  // The ablation options flow into the compiled variants.
  EngineOptions unfused;
  unfused.fuse_bn_binarize = false;
  const ExecutionPlan plan_c =
      net->compile(unfused, u8_desc(model.spec.input));
  for (const auto& step : plan_c.steps()) {
    EXPECT_NE(step.variant.path, KernelVariant::Path::kConvFused)
        << step.layer->name();
  }
  EXPECT_GT(plan_c.scratch_peak().i32, 0);

  // dump() carries the plan_dump surface: slots, variants, peak bytes.
  const std::string dump = plan.dump();
  EXPECT_NE(dump.find("slot"), std::string::npos);
  EXPECT_NE(dump.find("pw="), std::string::npos);
  EXPECT_NE(dump.find("scratch peak"), std::string::npos);
  EXPECT_NE(dump.find("bconv_fused"), std::string::npos);
}

/// The conv→pool rewrite: fused plans collapse `BinaryConv2d → MaxPool`
/// chains into single steps with pooled output descriptors and per-slot
/// slab offsets, and the dump surfaces both.
TEST(Plan, FusesConvPoolChains) {
  const FloatModel model = quick_model(301);
  auto net = core::convert_to_phonebit(model);
  core::Engine engine(testing::test_device());
  const ExecutionPlan plan = net->compile(engine, u8_desc(model.spec.input));

  // quicknet: conv2+pool2 and conv3+pool3 fuse (conv1 is the bit-plane
  // input conv and keeps its own pool), so two steps disappear.
  ASSERT_EQ(plan.steps().size(), net->size() - 2);
  int fused_steps = 0;
  for (const auto& step : plan.steps()) {
    if (step.fused_pool == nullptr) continue;
    ++fused_steps;
    EXPECT_EQ(step.variant.path, KernelVariant::Path::kConvFused);
    EXPECT_NE(step.variant.kernel.find("+maxpool"), std::string::npos);
    // The pooled descriptor replaced the conv output; the conv output
    // survives only as the never-materialized fused_mid.
    EXPECT_EQ(step.out.shape.h, step.fused_mid.shape.h / 2);
    EXPECT_EQ(step.out.shape.c, step.fused_mid.shape.c);
    EXPECT_NE(step.name().find("+pool"), std::string::npos);
  }
  EXPECT_EQ(fused_steps, 2);

  // Slots are sized/offset for the POOLED blobs; the dump prints fused
  // kernels and per-slot backing offsets.
  const std::string dump = plan.dump();
  EXPECT_NE(dump.find("+maxpool"), std::string::npos);
  EXPECT_NE(dump.find("@"), std::string::npos);
  EXPECT_NE(dump.find("activation slab"), std::string::npos);

  // The ablation switch restores one step per layer.
  EngineOptions unfused;
  unfused.fuse_conv_pool = false;
  EXPECT_EQ(net->compile(unfused, u8_desc(model.spec.input)).steps().size(),
            net->size());
}

/// Zoo-wide fused-vs-unfused bit-exactness: the fused epilogue's in-register
/// pool must reproduce the separate pool step exactly.
TEST(Plan, FusedMatchesUnfusedAcrossZoo) {
  struct Case {
    std::string name;
    core::NetworkSpec spec;
    std::uint64_t seed;
  };
  std::vector<Case> cases;
  cases.push_back({"quicknet", models::quicknet(10), 310});
  models::ZooOptions yolo_zoo;
  yolo_zoo.shrink_log2 = 3;
  cases.push_back({"yolov2-tiny", models::yolov2_tiny(yolo_zoo), 311});
  models::ZooOptions big_zoo;
  big_zoo.shrink_log2 = 4;
  cases.push_back({"alexnet", models::alexnet(big_zoo), 312});
  cases.push_back({"vgg16", models::vgg16(big_zoo), 313});

  for (const Case& c : cases) {
    const FloatModel model = FloatModel::random(c.spec, c.seed);
    const U8Tensor image = datasets::random_image(model.spec.input, c.seed);
    auto net = core::convert_to_phonebit(model);
    core::Engine engine(testing::test_device());

    EngineOptions fused_opts = engine.options();
    fused_opts.fuse_conv_pool = true;
    EngineOptions unfused_opts = engine.options();
    unfused_opts.fuse_conv_pool = false;
    const ExecutionPlan fused =
        net->compile(fused_opts, u8_desc(image.shape()));
    const ExecutionPlan unfused =
        net->compile(unfused_opts, u8_desc(image.shape()));

    auto s1 = engine.create_session();
    auto s2 = engine.create_session();
    const auto a = fused.run(s1, core::Blob{image});
    const auto b = unfused.run(s2, core::Blob{image});
    // Output bits only — fusion legitimately CHANGES the modeled time
    // (that is the point), so the ForwardResult overload does not apply.
    EXPECT_TRUE(testing::expect_bitexact(a.output, b.output))
        << c.name << ": fused forward diverged from unfused";
    EXPECT_LE(a.modeled_ms, b.modeled_ms)
        << c.name << ": fusion did not help modeled time";
  }
}

namespace fusion_cases {

/// Two-layer conv→pool net over a packed input, fused vs unfused.
void expect_fused_bit_exact(std::int64_t hw, std::int64_t c_in,
                            std::int64_t c_out, std::int64_t conv_stride,
                            core::PoolGeometry pg, bool expect_fused,
                            std::uint64_t seed) {
  ConvGeometry g;
  g.stride_h = g.stride_w = conv_stride;
  g.pad_h = g.pad_w = 1;
  const FloatTensor w =
      testing::random_sign_tensor(Shape{c_out, 3, 3, c_in}, seed);
  core::Network net("conv-pool");
  net.emplace<core::BinaryConv2d>("conv", bitpack::pack_filter_signs(w),
                                  testing::random_bn(c_out, seed + 1),
                                  std::vector<float>{}, g);
  net.emplace<core::MaxPool2d>("pool", pg);

  const FloatTensor acts =
      testing::random_sign_tensor(Shape{1, hw, hw, c_in}, seed + 2);
  const core::Blob input{bitpack::pack_signs(acts)};
  const BlobDesc desc = core::describe_blob(input);

  core::Engine engine(testing::test_device());
  EngineOptions fused_opts = engine.options();
  EngineOptions unfused_opts = engine.options();
  unfused_opts.fuse_conv_pool = false;
  const ExecutionPlan fused = net.compile(fused_opts, desc);
  const ExecutionPlan unfused = net.compile(unfused_opts, desc);
  EXPECT_EQ(fused.steps().size(), expect_fused ? 1u : 2u)
      << hw << "x" << hw << " stride " << conv_stride;

  auto s1 = engine.create_session();
  auto s2 = engine.create_session();
  const auto a = fused.run(s1, input);
  const auto b = unfused.run(s2, input);
  EXPECT_TRUE(phonebit::testing::expect_bitexact(a.output, b.output))
      << "pooled bits diverged (" << hw << "x" << hw << ", conv stride "
      << conv_stride << ")";
}

}  // namespace fusion_cases

/// Fusion correctness at the geometry edges: odd spatial dims where the
/// tail-padded pool window clamps, a stride-2 conv feeding the pool, and
/// the legality rules (overlapping windows and non-path-A convs do NOT
/// fuse).
TEST(Plan, FusionHandlesClampedAndStridedPools) {
  // Odd conv output (9x9) + darknet-style tail_pad stride-2 pool: output
  // ceil(9/2) = 5, the last window row/column clamps to in-bounds taps.
  core::PoolGeometry tail;
  tail.size = 2;
  tail.stride = 2;
  tail.tail_pad = true;
  fusion_cases::expect_fused_bit_exact(9, 64, 16, 1, tail, true, 320);

  // Even input, plain 2x2/s2 pool, conv stride 2 feeding it.
  core::PoolGeometry plain;
  plain.size = 2;
  plain.stride = 2;
  fusion_cases::expect_fused_bit_exact(17, 64, 16, 2, plain, true, 321);

  // Odd input with the non-padded pool (window never clamps, trailing row
  // dropped) — still fused, still exact.
  fusion_cases::expect_fused_bit_exact(11, 64, 24, 1, plain, true, 322);

  // Lead-padded pool (pad=1, stride==size): the first window starts at
  // -1, exercising the fused kernel's negative-cx/cy clamp.
  core::PoolGeometry lead;
  lead.size = 2;
  lead.stride = 2;
  lead.pad = 1;
  fusion_cases::expect_fused_bit_exact(9, 64, 16, 1, lead, true, 324);

  // Legality: YOLOv2-Tiny's overlapping stride-1 "same" pool would
  // recompute conv outputs — stays a separate step (and stays correct).
  core::PoolGeometry same;
  same.size = 2;
  same.stride = 1;
  same.tail_pad = true;
  fusion_cases::expect_fused_bit_exact(9, 64, 16, 1, same, false, 323);
}

/// Legality: only path-A convs fuse — a conv compiled to the separate-pack
/// path B (channels above the private-memory threshold) keeps its pool.
TEST(Plan, FusionSkipsNonPathAConvs) {
  ConvGeometry g;
  g.pad_h = g.pad_w = 1;
  const FloatTensor w =
      testing::random_sign_tensor(Shape{16, 3, 3, 64}, 330);
  core::Network net("wide-conv-pool");
  net.emplace<core::BinaryConv2d>("conv", bitpack::pack_filter_signs(w),
                                  testing::random_bn(16, 331),
                                  std::vector<float>{}, g);
  core::PoolGeometry pg;
  net.emplace<core::MaxPool2d>("pool", pg);

  EngineOptions opts;
  opts.packing_channel_threshold = 32;  // force path B for c_in = 64
  opts.conv_path = core::ConvPathPreference::kRowFused;  // keep D out of it
  const ExecutionPlan plan = net.compile(
      opts, BlobDesc{BlobKind::kPacked, Shape{1, 8, 8, 64}});
  ASSERT_EQ(plan.steps().size(), 2u);
  EXPECT_EQ(plan.steps()[0].variant.path,
            KernelVariant::Path::kConvSeparatePack);
  EXPECT_EQ(plan.steps()[0].fused_pool, nullptr);
}

/// One plan, many sessions: concurrent compiled forwards are bit-exact and
/// the shared plan never re-selects.
TEST(Plan, SharedAcrossConcurrentSessions) {
  const FloatModel model = quick_model(105);
  auto net = core::convert_to_phonebit(model);
  core::Engine engine(testing::test_device());
  const ExecutionPlan plan =
      net->compile(engine, u8_desc(model.spec.input));

  std::vector<U8Tensor> images;
  for (int i = 0; i < 8; ++i) {
    images.push_back(
        datasets::cifar_like_image(400 + static_cast<std::uint64_t>(i)));
  }
  std::vector<FloatTensor> serial;
  for (const auto& img : images) {
    auto session = engine.create_session();
    serial.push_back(plan.run(session, core::Blob{img}).float_output());
  }

  std::vector<FloatTensor> out(images.size(),
                               FloatTensor(Shape{1, 1, 1, 1}, Layout::kNHWC));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int f = 0; f < 2; ++f) {
        const std::size_t i = static_cast<std::size_t>(t * 2 + f);
        auto session = engine.create_session();
        out[i] = plan.run(session, core::Blob{images[i]}).float_output();
        EXPECT_EQ(session.stats().variant_selections, 0);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t i = 0; i < images.size(); ++i) {
    EXPECT_TRUE(testing::expect_bitexact(out[i], serial[i]))
        << "forward " << i;
  }
}

}  // namespace
}  // namespace phonebit
