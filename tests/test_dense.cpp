// Binary and float dense layers vs references.
#include <gtest/gtest.h>

#include "baselines/float_ops.hpp"
#include "bitpack/pack.hpp"
#include "core/phonebit.hpp"
#include "test_util.hpp"

namespace phonebit {
namespace {

using core::BinaryDense;
using core::FloatDense;

struct DenseCase {
  std::int64_t h, w, c, units;
};

class BinaryDenseParam : public ::testing::TestWithParam<DenseCase> {};

TEST_P(BinaryDenseParam, MatchesFloatReference) {
  const DenseCase p = GetParam();
  const std::uint64_t seed = 4000 + static_cast<std::uint64_t>(p.c + p.units);
  const std::int64_t features = p.h * p.w * p.c;
  const FloatTensor in =
      testing::random_sign_tensor(Shape{2, p.h, p.w, p.c}, seed);
  const FloatTensor w =
      testing::random_sign_tensor(Shape{p.units, 1, 1, features}, seed + 1);
  const auto bn = testing::random_bn(p.units, seed + 2);
  const auto bias = testing::random_bias(p.units, seed + 3);

  core::Engine engine(testing::test_device());
  auto session = engine.create_session();
  auto ctx = session.context();
  BinaryDense dense("fc", bitpack::pack_signs(w), bn, bias);
  auto out = dense.forward(ctx, core::Blob{bitpack::pack_signs(in)});

  // Reference: dense over ±1, folded BN, Eqn 8.
  const FloatTensor x1 = baselines::dense_ref(in, w, {});
  const auto folded = core::fold_batch_norm(bn, bias);
  FloatTensor ref(x1.shape(), Layout::kNHWC);
  for (std::int64_t n = 0; n < x1.shape().n; ++n)
    for (std::int64_t u = 0; u < p.units; ++u) {
      const std::size_t ci = static_cast<std::size_t>(u);
      ref(n, 0, 0, u) = core::binarize_eqn8(x1(n, 0, 0, u), folded.xi[ci],
                                            folded.gamma_pos[ci] != 0)
                            ? 1.0f
                            : -1.0f;
    }
  EXPECT_TRUE(testing::packed_equals_signs(
      std::get<bitpack::PackedTensor>(out), ref));
}

INSTANTIATE_TEST_SUITE_P(Shapes, BinaryDenseParam,
                         ::testing::Values(DenseCase{1, 1, 64, 8},
                                           DenseCase{4, 4, 64, 32},
                                           DenseCase{2, 2, 33, 16},  // gap path
                                           DenseCase{6, 6, 256, 64},
                                           DenseCase{1, 1, 128, 128}));

TEST(BinaryDense, RequiresUnitsMultipleOf8) {
  const FloatTensor w = testing::random_sign_tensor(Shape{12, 1, 1, 64}, 1);
  EXPECT_THROW(BinaryDense("fc", bitpack::pack_signs(w),
                           testing::random_bn(12, 2), {}),
               InvalidArgument);
}

TEST(BinaryDense, FeatureMismatchRejected) {
  const FloatTensor w = testing::random_sign_tensor(Shape{8, 1, 1, 64}, 3);
  core::Engine engine(testing::test_device());
  auto session = engine.create_session();
  auto ctx = session.context();
  BinaryDense dense("fc", bitpack::pack_signs(w), testing::random_bn(8, 4),
                    {});
  const FloatTensor in = testing::random_sign_tensor(Shape{1, 1, 1, 96}, 5);
  EXPECT_THROW(dense.forward(ctx, core::Blob{bitpack::pack_signs(in)}),
               InvalidArgument);
}

TEST(FloatDense, MatchesReferenceOnPackedInput) {
  const FloatTensor in = testing::random_sign_tensor(Shape{2, 2, 2, 64}, 6);
  const FloatTensor w = testing::random_float_tensor(Shape{10, 1, 1, 256}, 7);
  const auto bias = testing::random_bias(10, 8);

  core::Engine engine(testing::test_device());
  auto session = engine.create_session();
  auto ctx = session.context();
  FloatDense dense("fc8", w, bias);
  auto out = dense.forward(ctx, core::Blob{bitpack::pack_signs(in)});
  const FloatTensor ref = baselines::dense_ref(in, w, bias);
  EXPECT_TRUE(allclose(std::get<FloatTensor>(out), ref, 1e-4f));
}

TEST(FloatDense, MatchesReferenceOnFloatInput) {
  const FloatTensor in = testing::random_float_tensor(Shape{3, 1, 1, 37}, 9);
  const FloatTensor w = testing::random_float_tensor(Shape{5, 1, 1, 37}, 10);
  core::Engine engine(testing::test_device());
  auto session = engine.create_session();
  auto ctx = session.context();
  FloatDense dense("fc", w, {});
  auto out = dense.forward(ctx, core::Blob{in});
  EXPECT_TRUE(allclose(std::get<FloatTensor>(out),
                       baselines::dense_ref(in, w, {}), 1e-4f));
}

TEST(FloatDense, FlattensSpatialFloatInput) {
  const FloatTensor in = testing::random_float_tensor(Shape{1, 3, 3, 4}, 11);
  const FloatTensor w = testing::random_float_tensor(Shape{6, 1, 1, 36}, 12);
  core::Engine engine(testing::test_device());
  auto session = engine.create_session();
  auto ctx = session.context();
  FloatDense dense("fc", w, {});
  auto out = dense.forward(ctx, core::Blob{in});
  EXPECT_TRUE(allclose(std::get<FloatTensor>(out),
                       baselines::dense_ref(in, w, {}), 1e-4f));
}

TEST(Dense, ParamAccounting) {
  const FloatTensor wb = testing::random_sign_tensor(Shape{16, 1, 1, 64}, 13);
  BinaryDense bd("fc", bitpack::pack_signs(wb), testing::random_bn(16, 14),
                 {});
  EXPECT_EQ(bd.param_bytes(), 16 * 64 / 8 + 16 * 4 + 2);
  EXPECT_EQ(bd.param_count(), 16 * 64 + 5 * 16);

  const FloatTensor wf = testing::random_float_tensor(Shape{10, 1, 1, 20}, 15);
  FloatDense fd("fc", wf, testing::random_bias(10, 16));
  EXPECT_EQ(fd.param_bytes(), 10 * 20 * 4 + 10 * 4);
  EXPECT_EQ(fd.param_count(), 10 * 20 + 10);
}

}  // namespace
}  // namespace phonebit
