// Interior/border fast-path coverage: the row-fused branch-free conv must
// equal the float-domain reference exactly where the specialization's index
// arithmetic can go wrong — odd strides, asymmetric padding, 1x1 and 7x7
// kernels, channel counts off the 64-bit word boundary — and the engine
// arena must stop growing after the first (warm-up) forward.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/float_ops.hpp"
#include "bitpack/pack.hpp"
#include "core/phonebit.hpp"
#include "test_util.hpp"

namespace phonebit {
namespace {

using core::BinaryConv2d;
using core::EngineOptions;

/// Reference: ±1 conv (pad -1), folded BN, Eqn 8 -> ±1 tensor.
FloatTensor reference_bconv(const FloatTensor& in, const FloatTensor& w,
                            const std::vector<core::BatchNormParams>& bn,
                            const ConvGeometry& g) {
  const FloatTensor x1 = baselines::conv2d_ref(in, w, {}, g, -1.0f);
  const auto folded = core::fold_batch_norm(bn, {});
  FloatTensor out(x1.shape(), Layout::kNHWC);
  const Shape& s = x1.shape();
  for (std::int64_t n = 0; n < s.n; ++n)
    for (std::int64_t h = 0; h < s.h; ++h)
      for (std::int64_t wd = 0; wd < s.w; ++wd)
        for (std::int64_t c = 0; c < s.c; ++c) {
          const std::size_t ci = static_cast<std::size_t>(c);
          out(n, h, wd, c) =
              core::binarize_eqn8(x1(n, h, wd, c), folded.xi[ci],
                                  folded.gamma_pos[ci] != 0)
                  ? 1.0f
                  : -1.0f;
        }
  return out;
}

struct FastPathCase {
  std::int64_t c_in;      // includes counts that are not multiples of 64
  std::int64_t k;         // 1x1 .. 7x7
  std::int64_t stride_h, stride_w;
  std::int64_t pad_h, pad_w;  // asymmetric on purpose
};

class FastPathSweep : public ::testing::TestWithParam<FastPathCase> {};

TEST_P(FastPathSweep, FastPathEqualsReferenceOnAllPaths) {
  const FastPathCase p = GetParam();
  const std::int64_t hw = 13;
  if (hw + 2 * std::min(p.pad_h, p.pad_w) < p.k) {
    GTEST_SKIP() << "window larger than padded input";
  }
  const std::uint64_t seed =
      9100 + static_cast<std::uint64_t>(p.c_in * 13 + p.k * 7 + p.stride_h +
                                        p.pad_h * 3 + p.pad_w);
  const FloatTensor in =
      testing::random_sign_tensor(Shape{2, hw, hw, p.c_in}, seed);
  const FloatTensor w =
      testing::random_sign_tensor(Shape{16, p.k, p.k, p.c_in}, seed + 1);
  const auto bn = testing::random_bn(16, seed + 2);
  ConvGeometry g;
  g.kernel_h = g.kernel_w = p.k;
  g.stride_h = p.stride_h;
  g.stride_w = p.stride_w;
  g.pad_h = p.pad_h;
  g.pad_w = p.pad_w;

  const FloatTensor ref = reference_bconv(in, w, bn, g);
  const core::Blob input{bitpack::pack_signs(in)};

  auto check = [&](EngineOptions opts, const char* tag) {
    core::Engine engine(testing::test_device(), opts);
    auto session = engine.create_session();
    auto ctx = session.context();
    BinaryConv2d conv("conv", bitpack::pack_filter_signs(w), bn, {}, g);
    const auto out = conv.forward(ctx, input);
    EXPECT_TRUE(testing::packed_equals_signs(
        std::get<bitpack::PackedTensor>(out), ref))
        << tag << ": c_in=" << p.c_in << " k=" << p.k << " stride="
        << p.stride_h << "/" << p.stride_w << " pad=" << p.pad_h << "/"
        << p.pad_w;
  };

  EngineOptions fast;  // path A (or B when wide), interior split on
  check(fast, "fast");
  EngineOptions no_split;  // per-tap ablation arm must agree bit-exactly
  no_split.interior_split = false;
  check(no_split, "taps");
  EngineOptions separate_pack;  // path B
  separate_pack.integrate_packing = false;
  check(separate_pack, "nopack");
  EngineOptions unfused;  // path C
  unfused.fuse_bn_binarize = false;
  check(unfused, "unfused");
  EngineOptions row_tile;  // whole-row tiles exercise the tile clamp
  row_tile.conv_tile_ow = 0;
  check(row_tile, "rowtile");
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, FastPathSweep,
    ::testing::Values(
        // 1x1: no rows to fuse, interior == everything (pad 0)
        FastPathCase{40, 1, 1, 1, 0, 0}, FastPathCase{100, 1, 2, 1, 0, 1},
        // 3x3 with asymmetric padding and odd/mixed strides
        FastPathCase{24, 3, 1, 1, 2, 0}, FastPathCase{24, 3, 3, 1, 1, 2},
        FastPathCase{72, 3, 1, 3, 0, 2}, FastPathCase{200, 3, 3, 3, 2, 1},
        // 5x5 straddling the word boundary
        FastPathCase{63, 5, 1, 1, 2, 2}, FastPathCase{65, 5, 2, 2, 0, 4},
        // 7x7 including pad wider than half the kernel
        FastPathCase{40, 7, 1, 1, 3, 3}, FastPathCase{24, 7, 3, 3, 6, 0},
        FastPathCase{129, 7, 2, 2, 3, 5}));

TEST(FastPath, PadWiderThanKernelWindowsFullyInPadding) {
  // pad_w=2 with k=1 puts the leftmost/rightmost output columns entirely in
  // padding — the border path's all-pad row case.
  const FloatTensor in = testing::random_sign_tensor(Shape{1, 5, 5, 40}, 77);
  const FloatTensor w = testing::random_sign_tensor(Shape{16, 1, 1, 40}, 78);
  const auto bn = testing::random_bn(16, 79);
  ConvGeometry g;
  g.kernel_h = g.kernel_w = 1;
  g.pad_h = 0;
  g.pad_w = 2;
  core::Engine engine(testing::test_device());
  auto session = engine.create_session();
  auto ctx = session.context();
  BinaryConv2d conv("conv", bitpack::pack_filter_signs(w), bn, {}, g);
  const auto out = conv.forward(ctx, core::Blob{bitpack::pack_signs(in)});
  EXPECT_TRUE(testing::packed_equals_signs(
      std::get<bitpack::PackedTensor>(out), reference_bconv(in, w, bn, g)));
}

/// The no-per-forward-allocation contract: after one warm-up forward the
/// engine arena has reached its high-water mark and repeated forwards reuse
/// it verbatim — growth_events() must not move, on any conv path.
TEST(FastPath, ArenaStopsGrowingAfterWarmup) {
  const FloatTensor in = testing::random_sign_tensor(Shape{1, 9, 9, 320}, 90);
  const FloatTensor w = testing::random_sign_tensor(Shape{32, 3, 3, 320}, 91);
  const auto bn = testing::random_bn(32, 92);
  ConvGeometry g;
  g.pad_h = g.pad_w = 1;

  for (const bool fuse : {true, false}) {
    for (const bool split : {true, false}) {
      EngineOptions opts;
      opts.fuse_bn_binarize = fuse;
      opts.interior_split = split;
      core::Engine engine(testing::test_device(), opts);
      auto session = engine.create_session();
      auto ctx = session.context();
      // c_in=320 > packing threshold forces path B when fused, so the byte
      // map intermediate (the arena's hot customer) is exercised either way.
      BinaryConv2d conv("conv", bitpack::pack_filter_signs(w), bn, {}, g);
      const core::Blob input{bitpack::pack_signs(in)};

      conv.forward(ctx, input);  // warm-up: arena reaches high-water mark
      const int grows = session.arena().growth_events();
      const std::int64_t cap = session.arena().capacity_bytes();
      for (int i = 0; i < 5; ++i) conv.forward(ctx, input);
      EXPECT_EQ(session.arena().growth_events(), grows)
          << "fuse=" << fuse << " split=" << split;
      EXPECT_EQ(session.arena().capacity_bytes(), cap)
          << "fuse=" << fuse << " split=" << split;
    }
  }
}

/// Arena growth is visible to the simulated device's memory accounting. The
/// session returns its arena to the engine's pool warm (still accounted);
/// only tearing down the engine releases the bytes.
TEST(FastPath, ArenaAccountsAgainstDevice) {
  auto device = testing::test_device();
  const std::int64_t before = device->allocated_bytes();
  {
    core::Engine engine(device);
    {
      auto session = engine.create_session();
      session.arena().u8(1 << 16);
      EXPECT_GE(device->allocated_bytes(), before + (1 << 16));
    }
    // Session gone, arena pooled: bytes stay accounted (warm reuse).
    EXPECT_GE(device->allocated_bytes(), before + (1 << 16));
  }
  EXPECT_EQ(device->allocated_bytes(), before);
}

}  // namespace
}  // namespace phonebit
