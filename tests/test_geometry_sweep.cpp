// Property sweep: the packed engine must agree with the float-domain
// reference over the cross product of kernel size x stride x padding x
// channel width — the combinatorial space where index arithmetic bugs hide.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/float_ops.hpp"
#include "bitpack/pack.hpp"
#include "core/phonebit.hpp"
#include "test_util.hpp"

namespace phonebit {
namespace {

using SweepParam = std::tuple<int, int, int, int>;  // kernel, stride, pad, c

class ConvGeometrySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ConvGeometrySweep, PackedConvMatchesReference) {
  const auto [k, stride, pad, c] = GetParam();
  const std::int64_t hw = 11;
  if (hw + 2 * pad < k) GTEST_SKIP() << "window larger than input";

  const std::uint64_t seed =
      7000 + static_cast<std::uint64_t>(k * 1000 + stride * 100 + pad * 10 + c);
  const FloatTensor in =
      testing::random_sign_tensor(Shape{1, hw, hw, c}, seed);
  const FloatTensor w =
      testing::random_sign_tensor(Shape{8, k, k, c}, seed + 1);
  const auto bn = testing::random_bn(8, seed + 2);
  ConvGeometry g;
  g.kernel_h = g.kernel_w = k;
  g.stride_h = g.stride_w = stride;
  g.pad_h = g.pad_w = pad;

  core::Engine engine(testing::test_device());
  auto session = engine.create_session();
  auto ctx = session.context();
  core::BinaryConv2d conv("conv", bitpack::pack_filter_signs(w), bn, {}, g);
  const auto out = conv.forward(ctx, core::Blob{bitpack::pack_signs(in)});

  // Reference: ±1 conv with -1 padding, folded BN, Eqn 8.
  const FloatTensor x1 = baselines::conv2d_ref(in, w, {}, g, -1.0f);
  const auto folded = core::fold_batch_norm(bn, {});
  FloatTensor ref(x1.shape(), Layout::kNHWC);
  const Shape& s = x1.shape();
  for (std::int64_t y = 0; y < s.h; ++y)
    for (std::int64_t x = 0; x < s.w; ++x)
      for (std::int64_t ch = 0; ch < s.c; ++ch) {
        const std::size_t ci = static_cast<std::size_t>(ch);
        ref(0, y, x, ch) =
            core::binarize_eqn8(x1(0, y, x, ch), folded.xi[ci],
                                folded.gamma_pos[ci] != 0)
                ? 1.0f
                : -1.0f;
      }
  EXPECT_TRUE(testing::packed_equals_signs(
      std::get<bitpack::PackedTensor>(out), ref))
      << "k=" << k << " stride=" << stride << " pad=" << pad << " c=" << c;
}

INSTANTIATE_TEST_SUITE_P(
    KernelStridePadChannels, ConvGeometrySweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),   // kernel
                       ::testing::Values(1, 2, 3),      // stride
                       ::testing::Values(0, 1, 2),      // pad
                       ::testing::Values(8, 33, 64)),   // channels
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "s" +
             std::to_string(std::get<1>(info.param)) + "p" +
             std::to_string(std::get<2>(info.param)) + "c" +
             std::to_string(std::get<3>(info.param));
    });

class PoolGeometrySweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(PoolGeometrySweep, PackedPoolMatchesReference) {
  const auto [size, stride, tail] = GetParam();
  const std::int64_t hw = 13;
  const FloatTensor in = testing::random_sign_tensor(
      Shape{1, hw, hw, 40},
      8000 + static_cast<std::uint64_t>(size * 10 + stride));
  core::PoolGeometry g;
  g.size = size;
  g.stride = stride;
  g.tail_pad = tail;
  if (!tail && hw < size) GTEST_SKIP();

  core::Engine engine(testing::test_device());
  auto session = engine.create_session();
  auto ctx = session.context();
  core::MaxPool2d pool("pool", g);
  const auto out = pool.forward(ctx, core::Blob{bitpack::pack_signs(in)});
  EXPECT_TRUE(testing::packed_equals_signs(
      std::get<bitpack::PackedTensor>(out),
      baselines::maxpool_ref(in, g, -1.0f)))
      << "size=" << size << " stride=" << stride << " tail=" << tail;
}

INSTANTIATE_TEST_SUITE_P(SizeStrideTail, PoolGeometrySweep,
                         ::testing::Combine(::testing::Values(2, 3),
                                            ::testing::Values(1, 2, 3),
                                            ::testing::Bool()));

}  // namespace
}  // namespace phonebit
