// Common substrate: RNG determinism and distributions, fixed-point
// quantization helpers, error machinery, logging levels.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/fixed_point.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"

namespace phonebit {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    // Different seeds diverge almost surely.
    if (va != c()) return;
  }
  FAIL() << "seeds 42 and 43 produced identical streams";
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const float u = rng.uniform();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(u, -2.0f);
    EXPECT_LT(u, 3.0f);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(2);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u) << "all residues should appear";
}

TEST(Rng, SignIsPlusMinusOne) {
  Rng rng(4);
  int pos = 0;
  for (int i = 0; i < 1000; ++i) {
    const float s = rng.sign();
    EXPECT_TRUE(s == 1.0f || s == -1.0f);
    if (s > 0) ++pos;
  }
  EXPECT_GT(pos, 400);
  EXPECT_LT(pos, 600);
}

TEST(QuantParams, RoundtripWithinOneStep) {
  const auto p = QuantParams::for_range(-1.5f, 2.5f);
  for (float x = -1.5f; x <= 2.5f; x += 0.1f) {
    EXPECT_NEAR(p.dequantize(p.quantize(x)), x, p.scale * 0.51f);
  }
}

TEST(QuantParams, ClampsOutOfRange) {
  const auto p = QuantParams::for_range(0.0f, 1.0f);
  EXPECT_EQ(p.quantize(-5.0f), 0);
  EXPECT_EQ(p.quantize(5.0f), 255);
}

TEST(QuantParams, DegenerateRangeWidened) {
  const auto p = QuantParams::for_range(0.0f, 0.0f);
  EXPECT_GT(p.scale, 0.0f);
  EXPECT_EQ(p.dequantize(p.quantize(0.0f)), 0.0f);
}

TEST(FixedPoint, U8Pixel) {
  EXPECT_EQ(to_u8_pixel(0.0f), 0);
  EXPECT_EQ(to_u8_pixel(1.0f), 255);
  EXPECT_EQ(to_u8_pixel(0.5f), 128);
  EXPECT_EQ(to_u8_pixel(-3.0f), 0);
  EXPECT_EQ(to_u8_pixel(42.0f), 255);
}

TEST(Errors, HierarchyCatchable) {
  // Every library exception is catchable as phonebit::Error.
  try {
    throw OutOfMemoryError("boom");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  try {
    throw UnsupportedOperationError("nope");
  } catch (const Error&) {
    SUCCEED();
  }
}

TEST(Errors, PbCheckMessageCarriesContext) {
  try {
    const int n = -3;
    PB_CHECK(n > 0, "n must be positive, got " << n);
    FAIL();
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("n > 0"), std::string::npos);
    EXPECT_NE(msg.find("got -3"), std::string::npos);
  }
}

TEST(Logging, LevelRoundtrip) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(prev);
}

}  // namespace
}  // namespace phonebit
