// Batch-norm folding (Eqns 3–6) and the binarization decision (Eqns 7–9).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/binarize.hpp"
#include "core/bn_fold.hpp"

namespace phonebit::core {
namespace {

TEST(BnFold, XiMatchesEqn6) {
  // xi = mu - beta*sigma/gamma - b.
  std::vector<BatchNormParams> bn{{2.0f, 0.5f, 3.0f, 4.0f}};
  std::vector<float> bias{0.25f};
  const auto f = fold_batch_norm(bn, bias);
  ASSERT_EQ(f.channels(), 1);
  EXPECT_FLOAT_EQ(f.xi[0], 3.0f - 0.5f * 4.0f / 2.0f - 0.25f);
  EXPECT_EQ(f.gamma_pos[0], 1);

  bn[0].gamma = -2.0f;
  const auto g = fold_batch_norm(bn, bias);
  EXPECT_FLOAT_EQ(g.xi[0], 3.0f + 0.5f * 4.0f / 2.0f - 0.25f);
  EXPECT_EQ(g.gamma_pos[0], 0);
}

TEST(BnFold, RejectsZeroGammaAndBadSigma) {
  std::vector<BatchNormParams> bn{{0.0f, 0.0f, 0.0f, 1.0f}};
  EXPECT_THROW(fold_batch_norm(bn, {}), InvalidArgument);
  bn[0] = {1.0f, 0.0f, 0.0f, 0.0f};
  EXPECT_THROW(fold_batch_norm(bn, {}), InvalidArgument);
  bn[0] = {1.0f, 0.0f, 0.0f, -1.0f};
  EXPECT_THROW(fold_batch_norm(bn, {}), InvalidArgument);
}

TEST(BnFold, BiasCountMismatchRejected) {
  std::vector<BatchNormParams> bn(4);
  EXPECT_THROW(fold_batch_norm(bn, std::vector<float>(3)), InvalidArgument);
  EXPECT_NO_THROW(fold_batch_norm(bn, std::vector<float>(4)));
  EXPECT_NO_THROW(fold_batch_norm(bn, {}));
}

TEST(BnFold, FoldedSignEqualsReferenceBnSign) {
  // Property: sign(BN(x1 + b)) == Eqn 8 over folded constants.
  Rng rng(5);
  for (int trial = 0; trial < 2000; ++trial) {
    BatchNormParams p;
    p.gamma = rng.uniform(0.2f, 2.0f) * rng.sign();
    p.beta = rng.normal();
    p.mu = rng.normal() * 3.0f;
    p.sigma = rng.uniform(0.3f, 3.0f);
    const float bias = rng.normal();
    const float x1 = std::floor(rng.normal() * 20.0f);  // integer conv sums

    const auto f = fold_batch_norm({p}, {bias});
    const float x3 = batch_norm_reference(x1, p, bias);
    const bool ref = x3 >= 0.0f;
    const bool got = binarize_eqn8(x1, f.xi[0], f.gamma_pos[0] != 0);
    // Knife-edge cases (|x3| ~ 0) are legitimately ambiguous in float.
    if (std::fabs(x3) > 1e-4f) {
      EXPECT_EQ(got, ref) << "gamma=" << p.gamma << " x1=" << x1
                          << " xi=" << f.xi[0];
    }
  }
}

TEST(Binarize, Eqn9EqualsEqn8Everywhere) {
  // Exhaustive truth table plus random sweep: the Karnaugh-reduced
  // (A xor B) or C must equal the four-way branch for all inputs.
  const float values[] = {-2.0f, -1.0f, -0.5f, 0.0f, 0.5f, 1.0f, 2.0f};
  for (const float x1 : values)
    for (const float xi : values)
      for (const bool gpos : {true, false}) {
        EXPECT_EQ(binarize_eqn9(x1, xi, gpos), binarize_eqn8(x1, xi, gpos))
            << "x1=" << x1 << " xi=" << xi << " gpos=" << gpos;
      }
  Rng rng(6);
  for (int trial = 0; trial < 5000; ++trial) {
    const float x1 = rng.normal() * 10.0f;
    const float xi = rng.normal() * 10.0f;
    const bool gpos = rng.sign() > 0;
    EXPECT_EQ(binarize_eqn9(x1, xi, gpos), binarize_eqn8(x1, xi, gpos));
  }
}

TEST(Binarize, Eqn8Semantics) {
  // gamma > 0: 1 iff x1 >= xi; gamma < 0: 1 iff x1 <= xi (Eqn 8).
  EXPECT_TRUE(binarize_eqn8(2.0f, 1.0f, true));
  EXPECT_TRUE(binarize_eqn8(1.0f, 1.0f, true));
  EXPECT_FALSE(binarize_eqn8(0.5f, 1.0f, true));
  EXPECT_TRUE(binarize_eqn8(0.5f, 1.0f, false));
  EXPECT_TRUE(binarize_eqn8(1.0f, 1.0f, false));
  EXPECT_FALSE(binarize_eqn8(2.0f, 1.0f, false));
}

TEST(Binarize, SignRule) {
  EXPECT_TRUE(binarize_sign(0.0f));
  EXPECT_TRUE(binarize_sign(3.0f));
  EXPECT_FALSE(binarize_sign(-0.001f));
}

TEST(BnFold, IdentityFold) {
  const auto f = FoldedBatchNorm::identity(5);
  EXPECT_EQ(f.channels(), 5);
  for (int c = 0; c < 5; ++c) {
    EXPECT_EQ(f.xi[static_cast<std::size_t>(c)], 0.0f);
    EXPECT_EQ(f.gamma_pos[static_cast<std::size_t>(c)], 1);
  }
}

}  // namespace
}  // namespace phonebit::core
