// BinaryConv2d vs the float-domain reference, across geometries, channel
// widths (straddling the 8-filter packing threshold), execution paths and
// option toggles.
#include <gtest/gtest.h>

#include "baselines/float_ops.hpp"
#include "bitpack/pack.hpp"
#include "core/phonebit.hpp"
#include "test_util.hpp"

namespace phonebit {
namespace {

using baselines::conv2d_ref;
using core::BinaryConv2d;
using core::EngineOptions;
using core::ExecContext;

/// Reference: ±1 conv (pad -1), folded BN, Eqn 8 -> ±1 tensor.
FloatTensor reference_bconv(const FloatTensor& in, const FloatTensor& w,
                            const std::vector<core::BatchNormParams>& bn,
                            const std::vector<float>& bias,
                            const ConvGeometry& g) {
  const FloatTensor x1 = conv2d_ref(in, w, {}, g, -1.0f);
  const auto folded = core::fold_batch_norm(bn, bias);
  FloatTensor out(x1.shape(), Layout::kNHWC);
  const Shape& s = x1.shape();
  for (std::int64_t n = 0; n < s.n; ++n)
    for (std::int64_t h = 0; h < s.h; ++h)
      for (std::int64_t wd = 0; wd < s.w; ++wd)
        for (std::int64_t c = 0; c < s.c; ++c) {
          const std::size_t ci = static_cast<std::size_t>(c);
          out(n, h, wd, c) =
              core::binarize_eqn8(x1(n, h, wd, c), folded.xi[ci],
                                  folded.gamma_pos[ci] != 0)
                  ? 1.0f
                  : -1.0f;
        }
  return out;
}

struct ConvCase {
  std::int64_t c_in, c_out, hw, k, stride, pad;
};

class BinaryConvParam : public ::testing::TestWithParam<ConvCase> {};

TEST_P(BinaryConvParam, MatchesFloatReference) {
  const ConvCase p = GetParam();
  const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(
                                        p.c_in * 31 + p.c_out * 7 + p.k);
  const FloatTensor in =
      testing::random_sign_tensor(Shape{1, p.hw, p.hw, p.c_in}, seed);
  const FloatTensor w = testing::random_sign_tensor(
      Shape{p.c_out, p.k, p.k, p.c_in}, seed + 1);
  const auto bn = testing::random_bn(p.c_out, seed + 2);
  const auto bias = testing::random_bias(p.c_out, seed + 3);
  ConvGeometry g;
  g.kernel_h = g.kernel_w = p.k;
  g.stride_h = g.stride_w = p.stride;
  g.pad_h = g.pad_w = p.pad;

  core::Engine engine(testing::test_device());
  auto session = engine.create_session();
  auto ctx = session.context();
  BinaryConv2d conv("conv", bitpack::pack_filter_signs(w), bn, bias, g);
  const auto out = conv.forward(ctx, core::Blob{bitpack::pack_signs(in)});
  const auto& packed = std::get<bitpack::PackedTensor>(out);

  const FloatTensor ref = reference_bconv(in, w, bn, bias, g);
  EXPECT_TRUE(testing::packed_equals_signs(packed, ref))
      << "c_in=" << p.c_in << " c_out=" << p.c_out << " k=" << p.k
      << " stride=" << p.stride << " pad=" << p.pad;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BinaryConvParam,
    ::testing::Values(
        // channel widths straddling word and threshold boundaries
        ConvCase{8, 8, 6, 3, 1, 1}, ConvCase{16, 24, 7, 3, 1, 1},
        ConvCase{32, 16, 8, 3, 1, 0}, ConvCase{48, 8, 6, 3, 1, 1},
        ConvCase{64, 32, 6, 3, 1, 1}, ConvCase{96, 16, 5, 3, 1, 1},
        ConvCase{128, 8, 5, 3, 1, 1}, ConvCase{200, 16, 5, 3, 1, 1},
        ConvCase{256, 16, 4, 3, 1, 1},
        // > 256 input channels: separate packing path (B)
        ConvCase{320, 16, 4, 3, 1, 1}, ConvCase{512, 8, 3, 3, 1, 1},
        // kernel/stride/pad variations
        ConvCase{16, 16, 9, 1, 1, 0}, ConvCase{16, 16, 9, 5, 1, 2},
        ConvCase{16, 16, 9, 3, 2, 1}, ConvCase{16, 16, 11, 3, 3, 0},
        ConvCase{24, 40, 8, 2, 2, 0}));

TEST(BinaryConv, AllExecutionPathsAgree) {
  const Shape ishape{2, 9, 9, 40};
  const FloatTensor in = testing::random_sign_tensor(ishape, 42);
  const FloatTensor w = testing::random_sign_tensor(Shape{16, 3, 3, 40}, 43);
  const auto bn = testing::random_bn(16, 44);
  const auto bias = testing::random_bias(16, 45);
  ConvGeometry g;
  g.pad_h = g.pad_w = 1;

  auto run = [&](EngineOptions opts) {
    core::Engine engine(testing::test_device(), opts);
    auto session = engine.create_session();
    auto ctx = session.context();
    BinaryConv2d conv("conv", bitpack::pack_filter_signs(w), bn, bias, g);
    auto out = conv.forward(ctx, core::Blob{bitpack::pack_signs(in)});
    return bitpack::unpack_signs(std::get<bitpack::PackedTensor>(out));
  };

  EngineOptions fused;                       // path A
  EngineOptions separate_pack;               // path B
  separate_pack.integrate_packing = false;
  EngineOptions unfused;                     // path C
  unfused.fuse_bn_binarize = false;
  EngineOptions divergent;                   // Eqn 8 instead of Eqn 9
  divergent.branch_free_binarize = false;

  const FloatTensor a = run(fused);
  EXPECT_TRUE(allclose(a, run(separate_pack), 0.0f));
  EXPECT_TRUE(allclose(a, run(unfused), 0.0f));
  EXPECT_TRUE(allclose(a, run(divergent), 0.0f));
}

TEST(BinaryConv, PackWidthDoesNotChangeResults) {
  const FloatTensor in = testing::random_sign_tensor(Shape{1, 8, 8, 192}, 50);
  const FloatTensor w = testing::random_sign_tensor(Shape{8, 3, 3, 192}, 51);
  const auto bn = testing::random_bn(8, 52);
  ConvGeometry g;
  g.pad_h = g.pad_w = 1;

  FloatTensor first;
  bool have_first = false;
  for (const auto pw :
       {bitpack::PackWidth::k8, bitpack::PackWidth::k16, bitpack::PackWidth::k32,
        bitpack::PackWidth::k64, bitpack::PackWidth::k128,
        bitpack::PackWidth::k256, bitpack::PackWidth::k512,
        bitpack::PackWidth::k1024}) {
    EngineOptions opts;
    opts.auto_pack_width = false;
    opts.fixed_pack_width = pw;
    core::Engine engine(testing::test_device(), opts);
    auto session = engine.create_session();
    auto ctx = session.context();
    BinaryConv2d conv("conv", bitpack::pack_filter_signs(w), bn, {}, g);
    auto out = conv.forward(ctx, core::Blob{bitpack::pack_signs(in)});
    FloatTensor got = bitpack::unpack_signs(std::get<bitpack::PackedTensor>(out));
    if (!have_first) {
      first = std::move(got);
      have_first = true;
    } else {
      EXPECT_TRUE(allclose(first, got, 0.0f))
          << "pack width " << bitpack::bits(pw);
    }
  }
}

TEST(BinaryConv, RejectsWrongChannelCount) {
  const FloatTensor w = testing::random_sign_tensor(Shape{8, 3, 3, 16}, 60);
  const auto bn = testing::random_bn(8, 61);
  core::Engine engine(testing::test_device());
  auto session = engine.create_session();
  auto ctx = session.context();
  core::BinaryConv2d conv("conv", bitpack::pack_filter_signs(w), bn, {},
                          ConvGeometry{});
  const FloatTensor in = testing::random_sign_tensor(Shape{1, 6, 6, 24}, 62);
  EXPECT_THROW(conv.forward(ctx, core::Blob{bitpack::pack_signs(in)}),
               InvalidArgument);
}

TEST(BinaryConv, RejectsFloatInput) {
  const FloatTensor w = testing::random_sign_tensor(Shape{8, 3, 3, 16}, 63);
  const auto bn = testing::random_bn(8, 64);
  core::Engine engine(testing::test_device());
  auto session = engine.create_session();
  auto ctx = session.context();
  core::BinaryConv2d conv("conv", bitpack::pack_filter_signs(w), bn, {},
                          ConvGeometry{});
  EXPECT_THROW(
      conv.forward(ctx, core::Blob{testing::random_float_tensor(
                            Shape{1, 6, 6, 16}, 65)}),
      InvalidArgument);
}

}  // namespace
}  // namespace phonebit
