// Binary dot-product primitives: Eqn 1 and the bit-plane identity, across
// every vectorization granularity.
#include <gtest/gtest.h>

#include <vector>

#include "bitpack/binary_ops.hpp"
#include "common/bitops.hpp"
#include "common/rng.hpp"

namespace phonebit {
namespace {

using bitpack::PackWidth;

std::vector<std::uint64_t> random_words(std::int64_t n, std::uint64_t seed,
                                        std::int64_t valid_bits) {
  Rng rng(seed);
  std::vector<std::uint64_t> v(static_cast<std::size_t>(n));
  std::int64_t bits_left = valid_bits;
  for (auto& w : v) {
    w = rng();
    if (bits_left < 64) w &= low_mask<std::uint64_t>(static_cast<int>(bits_left));
    bits_left = std::max<std::int64_t>(0, bits_left - 64);
  }
  return v;
}

/// Scalar ground truth for the ±1 dot product.
std::int64_t dot_reference(const std::vector<std::uint64_t>& a,
                           const std::vector<std::uint64_t>& b,
                           std::int64_t len) {
  std::int64_t dot = 0;
  for (std::int64_t i = 0; i < len; ++i) {
    const bool ba = get_bit(a[static_cast<std::size_t>(i / 64)],
                            static_cast<int>(i % 64));
    const bool bb = get_bit(b[static_cast<std::size_t>(i / 64)],
                            static_cast<int>(i % 64));
    dot += (ba == bb) ? 1 : -1;
  }
  return dot;
}

class PackWidthParam : public ::testing::TestWithParam<PackWidth> {};

TEST_P(PackWidthParam, Eqn1HoldsForRandomVectors) {
  const PackWidth pw = GetParam();
  for (const std::int64_t len : {1, 3, 63, 64, 65, 127, 192, 300, 1024, 2050}) {
    const std::int64_t nwords = ceil_div(len, 64);
    const auto a = random_words(nwords, 100 + static_cast<std::uint64_t>(len),
                                len);
    const auto b = random_words(nwords, 200 + static_cast<std::uint64_t>(len),
                                len);
    const std::int64_t got =
        bitpack::binary_dot(a.data(), b.data(), nwords, len, pw);
    EXPECT_EQ(got, dot_reference(a, b, len))
        << "len=" << len << " width=" << bits(pw);
  }
}

TEST_P(PackWidthParam, XorPopcountMatches64BitBaseline) {
  const PackWidth pw = GetParam();
  const std::int64_t nwords = 37;
  const auto a = random_words(nwords, 1, nwords * 64);
  const auto b = random_words(nwords, 2, nwords * 64);
  EXPECT_EQ(bitpack::xor_popcount(a.data(), b.data(), nwords, pw),
            bitpack::xor_popcount(a.data(), b.data(), nwords, PackWidth::k64));
  EXPECT_EQ(bitpack::and_popcount(a.data(), b.data(), nwords, pw),
            bitpack::and_popcount(a.data(), b.data(), nwords, PackWidth::k64));
}

INSTANTIATE_TEST_SUITE_P(AllWidths, PackWidthParam,
                         ::testing::Values(PackWidth::k8, PackWidth::k16,
                                           PackWidth::k32, PackWidth::k64,
                                           PackWidth::k128, PackWidth::k256,
                                           PackWidth::k512, PackWidth::k1024));

TEST(BitOps, PlaneDotIdentity) {
  // sum p_i w_i with p in {0,1}, w in {-1,+1} == 2*pc(p&w) - pc(p).
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t len = 1 + static_cast<std::int64_t>(rng.below(300));
    const std::int64_t nwords = ceil_div(len, 64);
    const auto p = random_words(nwords, 300 + trial, len);
    const auto w = random_words(nwords, 400 + trial, len);
    std::int64_t ref = 0;
    for (std::int64_t i = 0; i < len; ++i) {
      const bool pi = get_bit(p[static_cast<std::size_t>(i / 64)],
                              static_cast<int>(i % 64));
      const bool wi = get_bit(w[static_cast<std::size_t>(i / 64)],
                              static_cast<int>(i % 64));
      if (pi) ref += wi ? 1 : -1;
    }
    EXPECT_EQ(bitpack::plane_dot(p.data(), w.data(), nwords), ref);
  }
}

TEST(BitOps, SelectPackWidthTracksChannelCount) {
  using bitpack::select_pack_width;
  EXPECT_EQ(select_pack_width(3), PackWidth::k8);
  EXPECT_EQ(select_pack_width(8), PackWidth::k8);
  EXPECT_EQ(select_pack_width(16), PackWidth::k16);
  EXPECT_EQ(select_pack_width(31), PackWidth::k16);
  EXPECT_EQ(select_pack_width(32), PackWidth::k32);
  EXPECT_EQ(select_pack_width(64), PackWidth::k64);
  EXPECT_EQ(select_pack_width(128), PackWidth::k128);
  EXPECT_EQ(select_pack_width(256), PackWidth::k256);
  EXPECT_EQ(select_pack_width(512), PackWidth::k512);
  EXPECT_EQ(select_pack_width(1024), PackWidth::k1024);
  EXPECT_EQ(select_pack_width(4096), PackWidth::k1024);
}

TEST(BitOps, ScalarHelpers) {
  EXPECT_EQ(popcount<std::uint64_t>(0), 0);
  EXPECT_EQ(popcount<std::uint64_t>(~0ull), 64);
  EXPECT_EQ(popcount<std::uint8_t>(0xA5), 4);
  EXPECT_EQ(round_up(0, 8), 0);
  EXPECT_EQ(round_up(1, 8), 8);
  EXPECT_EQ(round_up(64, 64), 64);
  EXPECT_EQ(ceil_div(65, 64), 2);
  EXPECT_EQ(set_bit<std::uint8_t>(0, 3, true), 8);
  EXPECT_EQ(set_bit<std::uint8_t>(0xFF, 0, false), 0xFE);
  EXPECT_TRUE(get_bit<std::uint8_t>(8, 3));
  EXPECT_EQ(low_mask<std::uint64_t>(0), 0u);
  EXPECT_EQ(low_mask<std::uint64_t>(64), ~0ull);
  EXPECT_EQ(low_mask<std::uint64_t>(3), 7u);
}

TEST(BitOps, ZeroLengthSpans) {
  const std::uint64_t w = 0;
  EXPECT_EQ(bitpack::xor_popcount(&w, &w, 0, PackWidth::k64), 0);
  EXPECT_EQ(bitpack::binary_dot(&w, &w, 0, 0), 0);
}

}  // namespace
}  // namespace phonebit
