// serve::FleetServer — heterogeneous sharding across device profiles.
//
// The suite proves the PR 7 fleet contract:
//   - cost replay: one probe forward's kernel event log, re-priced with
//     oclsim::replay_modeled_ms, equals EXACTLY what a live run on another
//     profile reports — placement scores need no engine per profile;
//   - cost-aware placement: an idle fleet routes to the fastest profile;
//     the wait term spreads load once queues build; a full shard spills to
//     the next candidate and only an all-full fleet sheds;
//   - per-profile correctness: the same input served by shards on
//     different profiles is bit-exact on output (modeled time differs),
//     zoo-wide for quicknet + yolov2tiny-s3;
//   - per-profile repositories: an artifact over a shard's RAM budget is
//     rejected with an itemized OutOfMemoryError and the shard keeps
//     serving its old version (hot-swap rollback across profiles);
//   - zero compiles / zero allocations: warm fleet serving runs entirely
//     from .pba artifacts, flat under the alloc_count hook;
//   - the soak: >=1000 requests over 3 profiles with faults and an
//     overload burst produce bit-identical placement (assignment
//     histogram pinned) whether shards execute with 1 or 16 real workers.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/alloc_count.hpp"
#include "core/phonebit.hpp"
#include "datasets/synthetic.hpp"
#include "models/zoo.hpp"
#include "serve/fleet.hpp"
#include "test_util.hpp"

namespace phonebit {
namespace {

using core::ExecutionPlan;
using core::FloatModel;
using serve::FaultPlan;
using serve::FleetConfig;
using serve::FleetServer;
using serve::FleetSummary;
using serve::Request;
using serve::ShardSpec;
using serve::StatusCode;

core::Blob image(std::uint64_t seed) {
  return core::Blob{datasets::cifar_like_image(seed)};
}

/// `n` quicknet requests arriving `gap_ms` apart from `start_ms`.
std::vector<Request> steady(const std::string& model, int n,
                            std::uint64_t seed, double gap_ms,
                            double start_ms = 0.0) {
  std::vector<Request> w;
  for (int i = 0; i < n; ++i) {
    Request r;
    r.model = model;
    r.input = image(seed + static_cast<std::uint64_t>(i));
    r.arrival_ms = start_ms + gap_ms * i;
    w.push_back(std::move(r));
  }
  return w;
}

/// Zero lost requests: every submitted request resolves to exactly one
/// status; only Ok requests carry a result.
void expect_nothing_lost(const FleetSummary& s) {
  EXPECT_EQ(s.ok + s.shed + s.deadline_exceeded + s.failed, s.requests);
  ASSERT_EQ(s.results.size(), static_cast<std::size_t>(s.requests));
  int placed = 0;
  for (const auto& rr : s.results) {
    if (rr.shard >= 0) ++placed;
    if (rr.status.code == StatusCode::kShed) EXPECT_EQ(rr.shard, -1);
  }
  int assigned = 0;
  for (const int n : s.assignment) assigned += n;
  EXPECT_EQ(assigned, placed);
}

class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One compile engine mints every artifact (compile is profile-free;
    // validation happens per profile at load).
    engine_ = std::make_unique<core::Engine>(testing::test_device());
  }

  void TearDown() override {
    for (const std::string& p : temp_paths_) std::remove(p.c_str());
  }

  /// Compiles a seeded quicknet checkpoint into a .pba targeted at
  /// `profile` (empty = untargeted) and returns the path.
  std::string save_quicknet(const std::string& tag, std::uint64_t seed,
                            const std::string& profile = {}) {
    const std::string path =
        std::string(::testing::TempDir()) + "fleet_" + tag + ".pba";
    const FloatModel model = FloatModel::random(models::quicknet(10), seed);
    auto net = core::convert_to_phonebit(model);
    const core::BlobDesc desc{core::BlobKind::kU8, Shape{1, 32, 32, 3}};
    if (profile.empty()) {
      const ExecutionPlan plan = net->compile(*engine_, desc);
      artifact::save(*net, plan, path);
    } else {
      artifact::compile_for_profile(*net, engine_->options(), desc, profile,
                                    path);
    }
    temp_paths_.push_back(path);
    return path;
  }

  /// Reference forward of `input` through the artifact at `path`.
  core::ForwardResult reference(const std::string& path,
                                const core::Blob& input) {
    const auto art = engine_->load_artifact_shared(path);
    auto session = engine_->create_session();
    return art->plan.run(session, input);
  }

  /// Three-tier fleet config: flagship, mid, entry.
  static FleetConfig three_tier(int exec_workers) {
    FleetConfig cfg;
    cfg.shards.push_back(ShardSpec{"flag", "sd855", 2});
    cfg.shards.push_back(ShardSpec{"mid", "sd660", 2});
    cfg.shards.push_back(ShardSpec{"entry", "sd625", 2});
    cfg.exec_workers = exec_workers;
    cfg.lanes_per_shard = 2;
    cfg.queue_limit = 4;
    return cfg;
  }

  std::unique_ptr<core::Engine> engine_;
  std::vector<std::string> temp_paths_;
};

// ---------------------------------------------------------------------------
// 1. Cost replay: the oclsim seam placement is built on.
// ---------------------------------------------------------------------------

// One probe run's event log, re-priced for another profile, must equal
// EXACTLY (bitwise, not approximately) the total a live run on that profile
// reports — KernelCost is geometry-pure, so only the roofline re-pricing
// differs. This is what lets one probe price a plan for the whole fleet.
TEST_F(FleetTest, ReplayedEventLogMatchesLiveRunExactly) {
  const FloatModel model = FloatModel::random(models::quicknet(10), 33);
  auto net = core::convert_to_phonebit(model);
  const core::BlobDesc desc{core::BlobKind::kU8, Shape{1, 32, 32, 3}};
  // Engine-free compile: the plan is profile-independent by construction.
  const ExecutionPlan plan = net->compile(engine_->options(), desc);
  const core::Blob input = image(12);

  const oclsim::DeviceProfile p855 = oclsim::profile_by_name("sd855");
  const oclsim::DeviceProfile p625 = oclsim::profile_by_name("sd625");

  auto run_on = [&](const oclsim::DeviceProfile& profile,
                    std::vector<oclsim::KernelEvent>* events) {
    auto device = std::make_shared<oclsim::Device>(profile, 2);
    core::Engine engine(device, engine_->options());
    auto session = engine.create_session();
    session.reset_profile();
    (void)plan.run(session, input);
    if (events != nullptr) *events = session.queue().events();
    return session.queue().total_modeled_ms();
  };

  std::vector<oclsim::KernelEvent> events;
  const double live855 = run_on(p855, &events);
  const double live625 = run_on(p625, nullptr);

  ASSERT_FALSE(events.empty());
  // Same profile: replay is the identity.
  EXPECT_EQ(oclsim::replay_modeled_ms(events, p855), live855);
  // Foreign profile: replaying the 855's log prices the 625 exactly.
  EXPECT_EQ(oclsim::replay_modeled_ms(events, p625), live625);
  // The tiers are genuinely distinct — placement has a signal to act on.
  EXPECT_GT(live625, live855);
}

// ---------------------------------------------------------------------------
// 2. Placement policy.
// ---------------------------------------------------------------------------

TEST_F(FleetTest, IdleFleetRoutesToFastestProfile) {
  const std::string art = save_quicknet("fast", 101);
  FleetServer fleet(three_tier(2));
  fleet.load_model("qn", {art, art, art});

  // Far-apart arrivals: every queue is empty at every arrival, so the
  // modeled-latency term decides alone — everything lands on the flagship.
  const FleetSummary s = fleet.run(steady("qn", 8, 500, 1000.0));
  expect_nothing_lost(s);
  EXPECT_EQ(s.ok, 8);
  EXPECT_EQ(s.assignment, (std::vector<int>{8, 0, 0}));
  EXPECT_EQ(s.spillovers, 0);
}

TEST_F(FleetTest, WaitTermSpreadsLoadAcrossTiers) {
  const std::string art = save_quicknet("spread", 102);
  // wait_weight 0: queue depth is free, the flagship soaks everything
  // (until it spills at the watermark — use a tall limit to avoid that).
  FleetConfig greedy = three_tier(2);
  greedy.queue_limit = 1000;
  greedy.wait_weight = 0.0;
  FleetServer fleet_greedy(greedy);
  fleet_greedy.load_model("qn", {art, art, art});
  const FleetSummary sg = fleet_greedy.run(steady("qn", 30, 600, 0.05));
  EXPECT_EQ(sg.assignment, (std::vector<int>{30, 0, 0}));

  // wait_weight 1: a ms of queueing costs a ms — once the flagship's
  // lanes are busy past the speed gap, slower-but-idle shards win.
  FleetConfig fair = three_tier(2);
  fair.queue_limit = 1000;
  fair.wait_weight = 1.0;
  FleetServer fleet_fair(fair);
  fleet_fair.load_model("qn", {art, art, art});
  const FleetSummary sf = fleet_fair.run(steady("qn", 30, 600, 0.05));
  expect_nothing_lost(sf);
  int used = 0;
  for (const int n : sf.assignment) used += n > 0 ? 1 : 0;
  EXPECT_GE(used, 2) << "wait term never moved load off the flagship";
  EXPECT_EQ(sf.ok, 30);
}

TEST_F(FleetTest, SpillsToNextShardBeforeShedding) {
  const std::string art = save_quicknet("spill", 103);
  FleetConfig cfg = three_tier(2);
  cfg.queue_limit = 2;
  FleetServer fleet(cfg);
  fleet.load_model("qn", {art, art, art});

  // A simultaneous burst far past fleet capacity: 3 shards x limit 2 can
  // hold 6 waiting requests; the rest must shed — but only after probing
  // every shard (spillovers), never before.
  const FleetSummary s = fleet.run(steady("qn", 18, 700, 0.0));
  expect_nothing_lost(s);
  EXPECT_GT(s.spillovers, 0);
  EXPECT_GT(s.shed, 0);
  EXPECT_EQ(s.shed + s.ok, 18);
  for (const int n : s.assignment) EXPECT_GT(n, 0);
  for (const auto& rr : s.results) {
    if (rr.status.code == StatusCode::kShed) {
      // A shed request visited EVERY candidate before giving up.
      EXPECT_EQ(rr.spillovers, 3);
    }
  }
}

TEST_F(FleetTest, ModelMissingEverywhereFailsAsValue) {
  const std::string art = save_quicknet("missing", 104);
  FleetServer fleet(three_tier(2));
  fleet.load_model_on(0, "qn", art);

  std::vector<Request> w = steady("qn", 1, 800, 1.0);
  w.push_back(Request{"ghost", image(9), 2.0, 0.0});
  const FleetSummary s = fleet.run(std::move(w));
  expect_nothing_lost(s);
  EXPECT_EQ(s.ok, 1);
  EXPECT_EQ(s.failed, 1);
  EXPECT_NE(s.results[1].status.error.find("not loaded on any shard"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// 3. Per-profile correctness: outputs are profile-invariant, zoo-wide.
// ---------------------------------------------------------------------------

// The same input forced onto three different profiles must produce
// bit-exact outputs — oclsim kernels do real host arithmetic; the profile
// only changes the modeled clock. Each profile is addressed directly by
// loading the model under a shard-local name (empty path = not served
// there), so the test pins one request to each tier regardless of what the
// placement policy would prefer.
TEST_F(FleetTest, SameInputBitExactAcrossProfilesZooWide) {
  struct Case {
    const char* name;
    const char* zoo;
    int shrink;
  };
  for (const Case& c : {Case{"quicknet", "quicknet", 0},
                        Case{"yolov2tiny-s3", "yolov2-tiny", 3}}) {
    SCOPED_TRACE(c.name);
    models::ZooOptions zoo;
    zoo.shrink_log2 = c.shrink;
    const auto spec = models::spec_by_name(c.zoo, zoo, std::nullopt);
    auto net = core::convert_to_phonebit(FloatModel::random(spec, 207));
    const core::BlobDesc desc{core::BlobKind::kU8, spec.input};

    // One artifact per profile, pbc-compile-fleet style.
    std::vector<std::string> paths;
    for (const std::string key : {"sd855", "sd660", "sd625"}) {
      const std::string path = std::string(::testing::TempDir()) +
                               "fleet_zoo_" + std::string(c.name) + "." +
                               key + ".pba";
      artifact::compile_for_profile(*net, engine_->options(), desc, key,
                                    path);
      temp_paths_.push_back(path);
      paths.push_back(path);
    }

    FleetServer fleet(three_tier(2));
    // "m0" served only by the flagship, "m1" by the mid tier, "m2" by the
    // entry tier — one model name per shard.
    fleet.load_model("m0", {paths[0], "", ""});
    fleet.load_model("m1", {"", paths[1], ""});
    fleet.load_model("m2", {"", "", paths[2]});

    const core::Blob input{datasets::random_image(spec.input, 99)};
    std::vector<Request> w;
    for (int i = 0; i < 3; ++i) {
      w.push_back(Request{"m" + std::to_string(i), core::Blob{input}, 0.0,
                          0.0});
    }
    const FleetSummary s = fleet.run(std::move(w));
    expect_nothing_lost(s);
    ASSERT_EQ(s.ok, 3);
    // One request per shard — all three profiles actually served.
    EXPECT_EQ(s.assignment, (std::vector<int>{1, 1, 1}));
    const core::ForwardResult ref = reference(paths[0], input);
    for (const auto& rr : s.results) {
      EXPECT_EQ(rr.shard, &rr - s.results.data());
      EXPECT_TRUE(testing::expect_bitexact(rr.result.output, ref.output))
          << "shard " << rr.shard << " output diverged";
    }
    // Modeled latency is NOT profile-invariant: the entry tier is slower.
    EXPECT_GT(s.results[2].latency_ms, s.results[0].latency_ms);
  }
}

// ---------------------------------------------------------------------------
// 4. Per-profile repositories: RAM validation + rollback across profiles.
// ---------------------------------------------------------------------------

// Loading an artifact compiled for a big profile into a small-RAM shard
// throws an itemized OutOfMemoryError and leaves the shard serving its old
// version — hot-swap rollback across profiles.
TEST_F(FleetTest, OverBudgetArtifactRejectedAndOldVersionKeepsServing) {
  // A model big enough that MB-granular budgets can sit below it:
  // yolov2tiny-s2 needs a few MB of params + slab + scratch.
  models::ZooOptions zoo;
  zoo.shrink_log2 = 2;
  const auto spec = models::spec_by_name("yolov2-tiny", zoo, std::nullopt);
  auto net = core::convert_to_phonebit(FloatModel::random(spec, 301));
  const core::BlobDesc desc{core::BlobKind::kU8, spec.input};
  const std::string big_path =
      std::string(::testing::TempDir()) + "fleet_big.sd855.pba";
  const ExecutionPlan plan = artifact::compile_for_profile(
      *net, engine_->options(), desc, "sd855", big_path);
  temp_paths_.push_back(big_path);

  const std::int64_t need = net->param_bytes() + plan.slab_bytes() +
                            plan.peak_scratch_bytes();
  ASSERT_GT(need, std::int64_t{1} << 20)
      << "model too small to under-budget at MB granularity";
  std::int64_t small_mb = need >> 20;  // floor(need / 1MB) MB <= need
  if ((small_mb << 20) == need) --small_mb;
  ASSERT_GE(small_mb, 1);

  FleetConfig cfg;
  cfg.shards.push_back(ShardSpec{"big", "sd855", 2});
  cfg.shards.push_back(ShardSpec{"small", "sd625", 2, small_mb});
  FleetServer fleet(cfg);

  // The small shard serves quicknet v1 (fits comfortably under any MB
  // budget that holds the yolo artifact's params alone).
  const std::string qn = save_quicknet("rollback", 302);
  fleet.load_model("qn", {qn, qn});
  ASSERT_EQ(fleet.version_on(1, "qn"), 1u);

  // Fresh load of the big artifact on the small shard: itemized rejection.
  try {
    fleet.load_model_on(1, "det", big_path);
    FAIL() << "over-budget artifact was accepted";
  } catch (const OutOfMemoryError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("param bytes"), std::string::npos) << msg;
    EXPECT_NE(msg.find("activation-slab bytes"), std::string::npos) << msg;
    EXPECT_NE(msg.find("scratch-peak bytes"), std::string::npos) << msg;
    EXPECT_NE(msg.find("over budget by"), std::string::npos) << msg;
  }
  EXPECT_EQ(fleet.version_on(1, "det"), 0u);

  // Hot-swap of the served model to the big artifact: rollback — version
  // unchanged, and the shard still serves the OLD weights bit-exactly.
  EXPECT_THROW(fleet.swap_model_on(1, "qn", big_path), OutOfMemoryError);
  EXPECT_EQ(fleet.version_on(1, "qn"), 1u);

  // The big shard takes the same artifact without complaint.
  fleet.load_model_on(0, "det", big_path);
  EXPECT_EQ(fleet.version_on(0, "det"), 1u);

  // The rolled-back shard still serves the OLD weights: address the small
  // shard directly via a shard-local model name and compare bit-exactly.
  fleet.load_model("qn-small", {"", qn});
  EXPECT_THROW(fleet.swap_model_on(1, "qn-small", big_path),
               OutOfMemoryError);
  const core::Blob input = image(77);
  std::vector<Request> w;
  w.push_back(Request{"qn-small", core::Blob{input}, 0.0, 0.0});
  const FleetSummary s = fleet.run(std::move(w));
  ASSERT_EQ(s.ok, 1);
  EXPECT_EQ(s.results[0].shard, 1);
  EXPECT_EQ(s.results[0].plan_version, 1u);
  const core::ForwardResult ref = reference(qn, input);
  EXPECT_TRUE(testing::expect_bitexact(s.results[0].result.output,
                                       ref.output))
      << "rolled-back shard served wrong weights";
}

// A successful per-shard hot-swap bumps the version and serves the new
// weights on that shard only.
TEST_F(FleetTest, PerShardHotSwapServesNewVersion) {
  const std::string v1 = save_quicknet("swap_v1", 401);
  const std::string v2 = save_quicknet("swap_v2", 402);
  FleetServer fleet(three_tier(2));
  // One model name per shard so each tier can be addressed directly.
  fleet.load_model("a", {v1, "", ""});
  fleet.load_model("b", {"", v1, ""});
  fleet.load_model("c", {"", "", v1});
  fleet.swap_model_on(1, "b", v2);
  EXPECT_EQ(fleet.version_on(0, "a"), 1u);
  EXPECT_EQ(fleet.version_on(1, "b"), 2u);
  EXPECT_EQ(fleet.version_on(2, "c"), 1u);

  const core::Blob input = image(55);
  std::vector<Request> w;
  for (const char* m : {"a", "b", "c"}) {
    w.push_back(Request{m, core::Blob{input}, 0.0, 0.0});
  }
  const FleetSummary s = fleet.run(std::move(w));
  ASSERT_EQ(s.ok, 3);
  EXPECT_EQ(s.assignment, (std::vector<int>{1, 1, 1}));
  const core::ForwardResult ref1 = reference(v1, input);
  const core::ForwardResult ref2 = reference(v2, input);
  for (const auto& rr : s.results) {
    const core::ForwardResult& want = rr.shard == 1 ? ref2 : ref1;
    EXPECT_EQ(rr.plan_version, rr.shard == 1 ? 2u : 1u);
    EXPECT_TRUE(testing::expect_bitexact(rr.result.output, want.output))
        << "shard " << rr.shard << " served the wrong version";
  }
}

// ---------------------------------------------------------------------------
// 5. Zero compiles, zero allocations in the warm serving process.
// ---------------------------------------------------------------------------

TEST_F(FleetTest, WarmFleetServesWithZeroCompilesAndZeroAllocGrowth) {
  std::vector<std::string> paths;
  for (const std::string key : {"sd855", "sd660", "sd625"}) {
    paths.push_back(save_quicknet("warm_" + key, 501, key));
  }
  FleetConfig cfg = three_tier(2);
  cfg.wait_weight = 1.0;
  FleetServer fleet(cfg);
  fleet.load_model("qn", paths);

  // Warm-up: probe forward, session minting, first batches, arena growth.
  const FleetSummary warm = fleet.run(steady("qn", 24, 600, 0.2));
  expect_nothing_lost(warm);
  ASSERT_GT(warm.ok, 0);

  // Steady state: the only allocations are each Ok request's one owned
  // output tensor; arenas never grow; nothing is ever compiled. The
  // workload is minted BEFORE the window — inputs are the caller's.
  std::vector<Request> work = steady("qn", 24, 600, 0.2);
  const std::int64_t allocs_before = buffer_alloc_count();
  const int grows_before = fleet.total_arena_growth_events();
  const FleetSummary s = fleet.run(std::move(work));
  expect_nothing_lost(s);
  ASSERT_GT(s.ok, 0);
  EXPECT_EQ(buffer_alloc_count() - allocs_before,
            static_cast<std::int64_t>(s.ok))
      << "a warm fleet forward heap-allocated beyond its output";
  EXPECT_EQ(fleet.total_arena_growth_events(), grows_before);
  EXPECT_EQ(fleet.compiled_plans(), 0u)
      << "the serving process compiled — artifacts must carry every plan";
}

// ---------------------------------------------------------------------------
// 6. The deterministic soak (the `fleet_soak` ctest).
// ---------------------------------------------------------------------------

FleetSummary soak_once(const std::vector<std::string>& paths,
                       int exec_workers) {
  FleetConfig cfg;
  cfg.shards.push_back(ShardSpec{"flag", "sd855", 2});
  cfg.shards.push_back(ShardSpec{"mid", "sd660", 2});
  cfg.shards.push_back(ShardSpec{"entry", "sd625", 2});
  cfg.exec_workers = exec_workers;
  cfg.lanes_per_shard = 2;
  cfg.queue_limit = 5;
  cfg.max_retries = 2;
  cfg.retry_backoff_ms = 0.5;
  cfg.wait_weight = 1.0;

  FaultPlan faults;
  faults.seed = 0xF1EE7;
  faults.transient_rate = 0.08;
  faults.spike_rate = 0.05;
  faults.spike_ms = 1.5;

  FleetServer fleet(cfg, faults, "soak");
  fleet.load_model("qn", paths);

  // 1050 requests: steady traffic tight enough to queue every tier, two
  // overload bursts, a tail that drains.
  std::vector<Request> w = steady("qn", 800, 1000, 0.3);
  for (Request& r : steady("qn", 120, 3000, 0.0, 110.0)) {
    w.push_back(std::move(r));  // burst 1
  }
  for (Request& r : steady("qn", 80, 4000, 0.0, 290.0)) {
    w.push_back(std::move(r));  // burst 2
  }
  for (Request& r : steady("qn", 50, 5000, 2.0, 440.0)) {
    w.push_back(std::move(r));  // drain tail
  }
  return fleet.run(std::move(w));
}

TEST_F(FleetTest, SoakPlacementIsBitIdenticalAcrossWorkerCounts) {
  std::vector<std::string> paths;
  for (const std::string key : {"sd855", "sd660", "sd625"}) {
    paths.push_back(save_quicknet("soak_" + key, 601, key));
  }

  const FleetSummary s1 = soak_once(paths, 1);
  expect_nothing_lost(s1);
  ASSERT_EQ(s1.requests, 1050);
  EXPECT_GT(s1.ok, 0);
  EXPECT_GT(s1.shed, 0);
  EXPECT_GT(s1.retries, 0);
  EXPECT_GT(s1.spillovers, 0);

  // The pinned assignment histogram: modeled time is machine-independent,
  // so this exact split must reproduce everywhere, forever. A change here
  // means the placement policy (or the cost model) changed — that is a
  // reviewable event, not noise.
  EXPECT_EQ(s1.assignment, (std::vector<int>{698, 161, 28}));

  const FleetSummary s16 = soak_once(paths, 16);
  EXPECT_EQ(s1.ok, s16.ok);
  EXPECT_EQ(s1.shed, s16.shed);
  EXPECT_EQ(s1.deadline_exceeded, s16.deadline_exceeded);
  EXPECT_EQ(s1.failed, s16.failed);
  EXPECT_EQ(s1.retries, s16.retries);
  EXPECT_EQ(s1.spillovers, s16.spillovers);
  EXPECT_EQ(s1.assignment, s16.assignment);
  ASSERT_EQ(s1.results.size(), s16.results.size());
  for (std::size_t i = 0; i < s1.results.size(); ++i) {
    const auto& a = s1.results[i];
    const auto& b = s16.results[i];
    ASSERT_EQ(a.status.code, b.status.code) << "request " << i;
    EXPECT_EQ(a.shard, b.shard) << "request " << i;
    EXPECT_EQ(a.spillovers, b.spillovers) << "request " << i;
    EXPECT_EQ(a.attempts, b.attempts) << "request " << i;
    EXPECT_EQ(a.retries, b.retries) << "request " << i;
    EXPECT_EQ(a.plan_version, b.plan_version) << "request " << i;
    EXPECT_EQ(a.queue_ms, b.queue_ms) << "request " << i;
    EXPECT_EQ(a.latency_ms, b.latency_ms) << "request " << i;
    if (a.status.ok()) {
      EXPECT_TRUE(testing::expect_bitexact(a.result.output, b.result.output))
          << "request " << i;
    }
  }

  // Shard accounting closes: per-shard outcomes sum to the fleet totals.
  int ok = 0, dl = 0, failed = 0, placed = 0;
  for (const auto& st : s1.shards) {
    ok += st.ok;
    dl += st.deadline_exceeded;
    failed += st.failed;
    placed += st.requests;
    EXPECT_GE(st.utilization, 0.0);
    EXPECT_LE(st.utilization, 1.0);
  }
  EXPECT_EQ(ok, s1.ok);
  EXPECT_EQ(dl, s1.deadline_exceeded);
  EXPECT_EQ(placed, s1.requests - s1.shed -
                        (s1.failed - failed) /* failed before placement */);
}

}  // namespace
}  // namespace phonebit
