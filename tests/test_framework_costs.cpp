// Baseline framework cost/time properties: the structural relationships the
// Table III comparisons rest on, checked at small scale where every engine
// really executes.
#include <gtest/gtest.h>

#include "baselines/framework.hpp"
#include "core/phonebit.hpp"
#include "datasets/synthetic.hpp"
#include "models/zoo.hpp"
#include "test_util.hpp"

namespace phonebit {
namespace {

using baselines::FloatFramework;
using core::FloatModel;

class FrameworkCosts : public ::testing::Test {
 protected:
  static const FloatModel& model() {
    static const FloatModel m = [] {
      models::ZooOptions zoo;
      zoo.shrink_log2 = 4;
      zoo.bnn_batch_norm = false;
      return FloatModel::random(models::yolov2_tiny(zoo), 40);
    }();
    return m;
  }
  static const U8Tensor& image() {
    static const U8Tensor img =
        datasets::random_image(model().spec.input, 41);
    return img;
  }
  static double run_ms(const FloatFramework& fw,
                       const oclsim::DeviceProfile& profile) {
    oclsim::Device dev(profile, 2);
    return fw.run(dev, model(), image()).modeled_ms;
  }
};

TEST_F(FrameworkCosts, QuantFasterThanFloatCpu) {
  const auto p = oclsim::DeviceProfile::snapdragon855();
  EXPECT_LT(run_ms(FloatFramework::tflite_quant(), p),
            run_ms(FloatFramework::tflite_cpu(), p));
}

TEST_F(FrameworkCosts, CnndroidCpuIsSlowest) {
  const auto p = oclsim::DeviceProfile::snapdragon855();
  const double cnndroid_cpu = run_ms(FloatFramework::cnndroid_cpu(), p);
  EXPECT_GT(cnndroid_cpu, run_ms(FloatFramework::cnndroid_gpu(), p));
  EXPECT_GT(cnndroid_cpu, run_ms(FloatFramework::tflite_cpu(), p));
  EXPECT_GT(cnndroid_cpu, run_ms(FloatFramework::tflite_quant(), p));
}

TEST_F(FrameworkCosts, Sd855BeatsSd820EveryFramework) {
  for (const auto& fw :
       {FloatFramework::cnndroid_cpu(), FloatFramework::cnndroid_gpu(),
        FloatFramework::tflite_cpu(), FloatFramework::tflite_gpu(),
        FloatFramework::tflite_quant()}) {
    EXPECT_LT(run_ms(fw, oclsim::DeviceProfile::snapdragon855()),
              run_ms(fw, oclsim::DeviceProfile::snapdragon820()))
        << fw.name();
  }
}

TEST_F(FrameworkCosts, SeparateBiasKernelsAddLaunches) {
  // CNNdroid issues bias as its own kernel; TFLite fuses it.
  oclsim::Device dev(oclsim::DeviceProfile::snapdragon855(), 2);
  const auto cnndroid = FloatFramework::cnndroid_gpu().run(dev, model(), image());
  const auto tflite = FloatFramework::tflite_cpu().run(dev, model(), image());
  int cnndroid_launches = 0, tflite_launches = 0;
  for (const auto& l : cnndroid.layers) cnndroid_launches += l.launches;
  for (const auto& l : tflite.layers) tflite_launches += l.launches;
  EXPECT_GT(cnndroid_launches, tflite_launches);
}

TEST_F(FrameworkCosts, PerLayerReportsCoverAllLayers) {
  oclsim::Device dev(oclsim::DeviceProfile::snapdragon855(), 2);
  const auto result = FloatFramework::tflite_cpu().run(dev, model(), image());
  ASSERT_EQ(result.layers.size(), model().spec.layers.size());
  double sum = 0;
  for (const auto& l : result.layers) {
    EXPECT_FALSE(l.name.empty());
    sum += l.modeled_ms;
  }
  EXPECT_NEAR(sum, result.modeled_ms, 1e-9);
}

TEST_F(FrameworkCosts, GateOrderMemoryBeforeExecution) {
  // The OOM gate must fire during graph preparation, before any kernel runs:
  // a full-size spec with deliberately absent weights still OOMs (it would
  // fault on the weights if execution started).
  FloatModel hollow;
  hollow.spec = models::yolov2_tiny({0, false});
  hollow.weights.resize(hollow.spec.layers.size());  // all monostate
  baselines::FrameworkTraits traits = FloatFramework::cnndroid_gpu().traits();
  traits.app_budget_mb = 1;
  FloatFramework tiny("tiny-budget", traits);
  oclsim::Device dev(oclsim::DeviceProfile::snapdragon855(), 1);
  EXPECT_THROW(tiny.run(dev, hollow, U8Tensor(Shape{1, 4, 4, 3})),
               OutOfMemoryError);
}

TEST_F(FrameworkCosts, QuantizedOutputTracksFloatOutput) {
  // Our quant executor shares float numerics (cost differs); outputs agree.
  oclsim::Device dev(oclsim::DeviceProfile::snapdragon855(), 2);
  const auto f = FloatFramework::tflite_cpu().run(dev, model(), image());
  const auto q = FloatFramework::tflite_quant().run(dev, model(), image());
  EXPECT_TRUE(allclose(f.output, q.output, 1e-3f));
}

TEST(FrameworkCostsUnit, JavaStyleDividesThroughput) {
  // CNNdroid-CPU's single-threaded scalar model: modeled time scales with
  // cores x lanes relative to an identical non-java engine.
  models::ZooOptions zoo;
  zoo.shrink_log2 = 4;
  zoo.bnn_batch_norm = false;
  const auto model = FloatModel::random(models::alexnet(zoo), 42);
  const auto image = datasets::random_image(model.spec.input, 43);
  baselines::FrameworkTraits java = FloatFramework::cnndroid_cpu().traits();
  java.app_budget_mb = 0;
  baselines::FrameworkTraits vec = java;
  vec.java_style = false;
  oclsim::Device dev(oclsim::DeviceProfile::snapdragon855(), 2);
  const double tj =
      FloatFramework("java", java).run(dev, model, image).modeled_ms;
  const double tv =
      FloatFramework("vec", vec).run(dev, model, image).modeled_ms;
  const auto& p = dev.profile();
  // Compute-bound layers dominate, so the ratio approaches cores x lanes
  // (diluted by per-layer dispatch overhead and memory time).
  EXPECT_GT(tj / tv, p.cpu_cores * p.cpu_simd_fp32_lanes * 0.4);
  EXPECT_LT(tj / tv,
            static_cast<double>(p.cpu_cores) * p.cpu_simd_fp32_lanes);
}

}  // namespace
}  // namespace phonebit
