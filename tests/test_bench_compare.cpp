// The bench_kernels --check gate (bench/bench_util.hpp's
// compare_bench_records): modeled-time regressions AND missing tracked
// records must both fail the check — a bench that silently stops producing
// a record tracked in BENCH_kernels.json is a coverage regression, not a
// pass.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "bench/bench_util.hpp"

namespace phonebit {
namespace {

using bench::BenchRecord;
using bench::compare_bench_records;

std::vector<BenchRecord> baseline() {
  return {
      {"bconv", "3x3/s1/fast", 1.0, 5.0},
      {"bconv", "7x7/s2/fast", 2.0, 8.0},
      {"pack_signs", "32x32/c64", 0.5, 0.0},  // host-only: never time-gated
  };
}

TEST(BenchCompare, PassesWhenAllRecordsMatchWithinTolerance) {
  auto fresh = baseline();
  fresh[0].modeled_ms = 5.05;  // +1% < 2% tolerance
  const auto sum = compare_bench_records(fresh, baseline(), 2.0, nullptr);
  EXPECT_TRUE(sum.ok());
  EXPECT_EQ(sum.checked, 2);  // the host-only record is matched, not gated
  EXPECT_EQ(sum.regressions, 0);
  EXPECT_EQ(sum.missing, 0);
}

TEST(BenchCompare, FailsOnModeledTimeRegression) {
  auto fresh = baseline();
  fresh[1].modeled_ms = 9.0;  // +12.5% > 2%
  const auto sum = compare_bench_records(fresh, baseline(), 2.0, nullptr);
  EXPECT_FALSE(sum.ok());
  EXPECT_EQ(sum.regressions, 1);
  EXPECT_EQ(sum.missing, 0);
}

TEST(BenchCompare, FailsWhenTrackedRecordGoesMissing) {
  // A tracked record absent from the fresh run must fail exactly like a
  // regression — even when every record that IS produced looks fine.
  auto fresh = baseline();
  fresh.erase(fresh.begin());  // "bconv 3x3/s1/fast" no longer produced
  const auto sum = compare_bench_records(fresh, baseline(), 2.0, nullptr);
  EXPECT_FALSE(sum.ok());
  EXPECT_EQ(sum.missing, 1);
  EXPECT_EQ(sum.regressions, 0);
  EXPECT_EQ(sum.checked, 1);
}

TEST(BenchCompare, MissingHostOnlyRecordStillFails) {
  // Host-only records (modeled <= 0) are exempt from time gating but NOT
  // from the presence gate.
  auto fresh = baseline();
  fresh.pop_back();  // drop "pack_signs"
  const auto sum = compare_bench_records(fresh, baseline(), 2.0, nullptr);
  EXPECT_FALSE(sum.ok());
  EXPECT_EQ(sum.missing, 1);
}

/// The optional weight-footprint fields (PR 9): records that carry them
/// round trip through the JSON writer/reader, records that don't keep
/// parsing exactly as before, and the comparison gate treats both alike —
/// the ratio is informational, never gated.
TEST(BenchCompare, OptionalWeightFieldsRoundTripAndStayUngated) {
  const std::string path =
      std::string(::testing::TempDir()) + "phonebit_bench_compat.json";
  std::vector<BenchRecord> out = baseline();   // old-shape records
  BenchRecord comp{"bconv", "3x3/s1/compressed", 1.0, 5.0};
  comp.weights_bytes = 2812;
  comp.weights_ratio = 1.64;
  out.push_back(comp);
  ASSERT_TRUE(bench::write_bench_json(path, "kernels", out));

  std::vector<BenchRecord> in;
  ASSERT_TRUE(bench::read_bench_json(path, in));
  std::remove(path.c_str());
  ASSERT_EQ(in.size(), out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(in[i].op, out[i].op) << i;
    EXPECT_EQ(in[i].geometry, out[i].geometry) << i;
    EXPECT_DOUBLE_EQ(in[i].modeled_ms, out[i].modeled_ms) << i;
    EXPECT_EQ(in[i].weights_bytes, out[i].weights_bytes) << i;
    EXPECT_DOUBLE_EQ(in[i].weights_ratio, out[i].weights_ratio) << i;
  }

  // A fresh run whose ratio DRIFTS but whose modeled time holds passes:
  // compression footprint is reported, not gated.
  auto fresh = in;
  fresh.back().weights_bytes = 4000;
  fresh.back().weights_ratio = 1.10;
  const auto sum = compare_bench_records(fresh, in, 2.0, nullptr);
  EXPECT_TRUE(sum.ok());
  EXPECT_EQ(sum.checked, 3);  // the compressed record IS time-gated
}

/// A half-written record (weights_bytes without ratio) is a parse error,
/// not a silently dropped field.
TEST(BenchCompare, TruncatedWeightFieldsRejected) {
  const std::string path =
      std::string(::testing::TempDir()) + "phonebit_bench_trunc.json";
  {
    std::ofstream f(path);
    f << "{\n  \"bench\": \"kernels\",\n  \"records\": [\n"
      << "    {\"op\": \"bconv\", \"geometry\": \"g\", \"host_ms\": 1.0, "
         "\"modeled_ms\": 2.0, \"weights_bytes\": 99}\n  ]\n}\n";
  }
  std::vector<BenchRecord> in;
  EXPECT_FALSE(bench::read_bench_json(path, in));
  std::remove(path.c_str());
}

TEST(BenchCompare, ImprovementsAndNewRecordsAreFine) {
  auto fresh = baseline();
  fresh[0].modeled_ms = 3.0;                       // faster: ok
  fresh.push_back({"new_op", "geo", 1.0, 1.0});    // untracked extra: ok
  const auto sum = compare_bench_records(fresh, baseline(), 2.0, nullptr);
  EXPECT_TRUE(sum.ok());
}

}  // namespace
}  // namespace phonebit
