// OpenCL-style vector types: operator surface, built-ins, load/store.
#include <gtest/gtest.h>

#include "simd/vec.hpp"

namespace phonebit::simd {
namespace {

TEST(Simd, BroadcastAndLaneAccess) {
  const uint4 v(7u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], 7u);
  const uchar4 w(1, 2, 3, 4);
  EXPECT_EQ(w[0], 1);
  EXPECT_EQ(w[3], 4);
}

TEST(Simd, ElementwiseArithmetic) {
  const float4 a(1.0f, 2.0f, 3.0f, 4.0f);
  const float4 b(10.0f, 20.0f, 30.0f, 40.0f);
  const float4 sum = a + b;
  const float4 prod = a * b;
  EXPECT_EQ(sum[2], 33.0f);
  EXPECT_EQ(prod[3], 160.0f);
  EXPECT_EQ((b - a)[0], 9.0f);
}

TEST(Simd, BitwiseOps) {
  const ulong2 a(0xF0F0ull, 0x0F0Full);
  const ulong2 b(0xFF00ull, 0x00FFull);
  EXPECT_EQ((a ^ b)[0], 0x0FF0ull);
  EXPECT_EQ((a & b)[1], 0x000Full);
  EXPECT_EQ((a | b)[0], 0xFFF0ull);
  EXPECT_EQ((~a)[0], ~0xF0F0ull);
}

TEST(Simd, PopcountPerLaneAndTotal) {
  const ulong4 v(0xFFull, 0x0ull, 0x3ull, ~0ull);
  const ulong4 pc = popcount(v);
  EXPECT_EQ(pc[0], 8u);
  EXPECT_EQ(pc[1], 0u);
  EXPECT_EQ(pc[2], 2u);
  EXPECT_EQ(pc[3], 64u);
  EXPECT_EQ(popcount_total(v), 74);
  EXPECT_EQ(reduce_add(pc), 74);
}

TEST(Simd, Select) {
  const uint4 a(0u), b(9u);
  const vec<int, 4> mask(0, 1, 0, 1);
  const uint4 r = select(a, b, mask);
  EXPECT_EQ(r[0], 0u);
  EXPECT_EQ(r[1], 9u);
  EXPECT_EQ(r[3], 9u);
}

TEST(Simd, RelationalBuiltins) {
  EXPECT_EQ(isless(1.0f, 2.0f), 1);
  EXPECT_EQ(isless(2.0f, 1.0f), 0);
  EXPECT_EQ(isgreater(2.0f, 1.0f), 1);
  EXPECT_EQ(isequal(1.5f, 1.5f), 1);
  EXPECT_EQ(isequal(1.5f, 1.6f), 0);
}

TEST(Simd, VloadVstoreRoundtrip) {
  const std::uint64_t src[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto v = vload<std::uint64_t, 4>(1, src);  // words 4..7
  EXPECT_EQ(v[0], 5u);
  EXPECT_EQ(v[3], 8u);
  std::uint64_t dst[8] = {};
  vstore(v, 0, dst);
  EXPECT_EQ(dst[0], 5u);
  EXPECT_EQ(dst[3], 8u);
}

TEST(Simd, DotFloat4) {
  const float4 a(1.0f, 2.0f, 3.0f, 4.0f);
  const float4 b(4.0f, 3.0f, 2.0f, 1.0f);
  EXPECT_FLOAT_EQ(dot(a, b), 20.0f);
}

TEST(Simd, BitWidths) {
  EXPECT_EQ((bit_width<uchar2>()), 16);
  EXPECT_EQ((bit_width<uint4>()), 128);
  EXPECT_EQ((bit_width<ulong16>()), 1024);  // the paper's widest granularity
}

TEST(Simd, Equality) {
  EXPECT_EQ(uint4(3u), uint4(3u));
  EXPECT_FALSE(uint4(3u) == uint4(4u));
}

}  // namespace
}  // namespace phonebit::simd
